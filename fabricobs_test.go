package hostsim_test

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"
	"time"

	"hostsim"
)

// fpHash compresses a fabric fingerprint to a pinnable hex digest (the
// raw strings run to kilobytes on 16-host runs).
func fpHash(r *hostsim.Result) string {
	return fmt.Sprintf("%x", sha256.Sum256([]byte(fabricFingerprint(r))))
}

// Pre-observatory fingerprints of the checker-armed incast runs below,
// captured before the fabricobs hooks existed. They pin two properties
// at once: adding the observer hook points did not move a single
// measurement of an unobserved run, and arming the observatory does not
// either.
const (
	fabObsPin8  = "5b181928400a506e7be914b765596f0be8471654e4fde7edc0293584f89ed99d"
	fabObsPin16 = "eedb1a375d474bdb9a3c26fb4d93637cd5a44513324aea2604b2c3594add279c"
)

// TestFabricObsTransparency is the observatory's anchor property: a
// checker-armed incast must produce byte-identical measurements with the
// observatory off and on, and both must match the pre-PR pin — the
// telemetry layer observes the run without perturbing it.
func TestFabricObsTransparency(t *testing.T) {
	for _, tc := range []struct {
		hosts int
		pin   string
	}{{8, fabObsPin8}, {16, fabObsPin16}} {
		t.Run(fmt.Sprintf("%dhosts", tc.hosts), func(t *testing.T) {
			wl := hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)
			off, err := hostsim.Run(fabCfg(tc.hosts), wl)
			if err != nil {
				t.Fatal(err)
			}
			cfg := fabCfg(tc.hosts)
			cfg.FabricObs = &hostsim.FabricObsOptions{}
			on, err := hostsim.Run(cfg, wl)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := fpHash(off), fpHash(on); a != b {
				t.Errorf("arming the observatory changed the physics:\n off: %s\n  on: %s", a, b)
			}
			if h := fpHash(off); h != tc.pin {
				t.Errorf("unobserved %d-host run diverged from the pre-observatory pin:\n got: %s\nwant: %s",
					tc.hosts, h, tc.pin)
			}
			if len(on.PortReports) != tc.hosts {
				t.Errorf("got %d port reports, want %d", len(on.PortReports), tc.hosts)
			}
			if off.PortReports != nil || off.FabricTimeline != nil {
				t.Error("unobserved run carries observatory artifacts")
			}
		})
	}
}

// TestFabricObsLedgerReconciliation runs the full loss zoo — shared-buffer
// admission drops, Bernoulli wire loss and DCTCP ECN marks — with the
// conservation checker armed fail-fast, then reconciles the observatory's
// per-port ledger against it: each port satisfies the checker's
// in == forwarded + admission_drops rule and the egress conservation
// identity, and the ledger sums reproduce the switch totals exactly.
func TestFabricObsLedgerReconciliation(t *testing.T) {
	cfg := fabCfg(8)
	cfg.Fabric.SharedBufferKB = 256
	cfg.FabricObs = &hostsim.FabricObsOptions{}
	cfg.LossRate = 0.001
	cfg.ECNMarkKB = 64
	cfg.Stack.CC = "dctcp"
	res, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0))
	if err != nil {
		t.Fatal(err) // checker fail-fast: any conservation break lands here
	}
	var in, adm, loss, del, marks, inflight int64
	for _, p := range res.PortReports {
		if p.InFrames != p.Forwarded+p.AdmissionDrops {
			t.Errorf("port %d: ingress ledger inexact: in %d != forwarded %d + admission drops %d",
				p.Port, p.InFrames, p.Forwarded, p.AdmissionDrops)
		}
		if p.Enqueued != p.Delivered+p.WireLossDrops+p.InFlight {
			t.Errorf("port %d: egress ledger inexact: enqueued %d != delivered %d + wire loss %d + in flight %d",
				p.Port, p.Enqueued, p.Delivered, p.WireLossDrops, p.InFlight)
		}
		in += p.InFrames
		adm += p.AdmissionDrops
		loss += p.WireLossDrops
		del += p.Delivered
		marks += p.ECNMarks
		inflight += p.InFlight
	}
	fab := res.Fabric
	if in != fab.InFrames || adm != fab.BufferDrops || loss != fab.LossDrops ||
		marks != fab.Marked || del != fab.Delivered {
		t.Errorf("ledger sums diverge from switch totals:\nledger: in=%d adm=%d loss=%d del=%d marks=%d\ntotals: in=%d adm=%d loss=%d del=%d marks=%d",
			in, adm, loss, del, marks,
			fab.InFrames, fab.BufferDrops, fab.LossDrops, fab.Delivered, fab.Marked)
	}
	if adm == 0 || loss == 0 || marks == 0 {
		t.Errorf("scenario must exercise every attribution class: adm=%d loss=%d marks=%d", adm, loss, marks)
	}
	if res.FabricTimeline.Len() == 0 {
		t.Error("empty fabric timeline")
	}
}

// fabObsArtifacts renders every observatory export of one result as a
// single byte string.
func fabObsArtifacts(t *testing.T, r *hostsim.Result) string {
	t.Helper()
	var sb strings.Builder
	for _, step := range []struct {
		name  string
		write func() error
	}{
		{"report", func() error { return r.WriteFabricReport(&sb) }},
		{"jsonl", func() error { return r.WriteFabricReportJSONL(&sb) }},
		{"trace", func() error { return r.WriteFabricTrace(&sb) }},
		{"ts", func() error { return r.FabricTimeline.WriteCSV(&sb) }},
	} {
		if err := step.write(); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
	}
	sb.WriteString(r.FormatFabricReport())
	return sb.String()
}

// TestFabricObsArtifactDeterminism extends the batch-determinism property
// to the observatory's exports: every artifact — ledger CSV and JSONL,
// Perfetto trace, time-series, text report — must be byte-identical
// between -jobs 1 and -jobs 8, and across repeated rendering.
func TestFabricObsArtifactDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run property")
	}
	mk := func(hosts, bufKB int) hostsim.Job {
		cfg := fabCfg(hosts)
		cfg.Check = nil // determinism property, not a conservation one
		cfg.Fabric.SharedBufferKB = bufKB
		cfg.FabricObs = &hostsim.FabricObsOptions{BurstThresholdKB: 64}
		return hostsim.Job{Config: cfg, Workload: hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)}
	}
	jobs := []hostsim.Job{mk(8, 256), mk(16, 0), mk(4, 64)}
	serial, err := hostsim.RunMany(jobs, hostsim.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := hostsim.RunMany(jobs, hostsim.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		a := fabObsArtifacts(t, serial[i])
		if b := fabObsArtifacts(t, par[i]); a != b {
			t.Errorf("job %d: observatory artifacts diverged between -jobs 1 and -jobs 8", i)
		}
		if b := fabObsArtifacts(t, serial[i]); a != b {
			t.Errorf("job %d: repeated rendering of the same result diverged", i)
		}
	}
}

// TestFabricObsRejects pins the configuration errors.
func TestFabricObsRejects(t *testing.T) {
	wl := hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
	noFab := hostsim.Config{
		Stack: hostsim.AllOptimizations(), Seed: 1,
		Warmup: time.Millisecond, Duration: time.Millisecond,
		FabricObs: &hostsim.FabricObsOptions{},
	}
	if _, err := hostsim.Run(noFab, wl); err == nil {
		t.Error("FabricObs without Fabric: expected an error")
	}
	neg := fabCfg(4)
	neg.FabricObs = &hostsim.FabricObsOptions{BurstThresholdKB: -1}
	if _, err := hostsim.Run(neg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)); err == nil {
		t.Error("negative FabricObs option: expected an error")
	}
	// Writers on a run without the observatory must error, not panic.
	plain, err := hostsim.Run(fabCfg(4), hostsim.LongFlowWorkload(hostsim.PatternIncast, 0))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := plain.WriteFabricReport(&sb); err == nil {
		t.Error("WriteFabricReport without FabricObs: expected an error")
	}
}
