package hostsim

import (
	"fmt"
	"time"

	"hostsim/internal/core"
	"hostsim/internal/skb"
	"hostsim/internal/units"
	"hostsim/internal/workload"
)

// builtWorkload holds the running applications and measurement snapshots
// for per-class goodput deltas.
type builtWorkload struct {
	long    []*workload.LongFlow
	clients []*workload.RPCClient

	// senderIdx/receiverIdx pick the representative hosts for the
	// Result.Sender/Result.Receiver views. Direct mode is always (0, 1);
	// fabric incast swaps to (1, 0) so Sender is one of the sending hosts.
	senderIdx   int
	receiverIdx int

	longBase     units.Bytes
	longBaseEach []units.Bytes
	rpcBase      units.Bytes
	rpcDone      int64
}

// flowClasses derives the profiler's default flow → class labeling from
// the workload: both directions of every bulk-transfer connection are
// "long", every RPC connection "rpc".
func flowClasses(b *builtWorkload) map[int32]string {
	m := make(map[int32]string)
	for _, lf := range b.long {
		m[int32(lf.Sender.TxFlow())] = "long"
		m[int32(lf.Sender.RxFlow())] = "long"
	}
	for _, c := range b.clients {
		m[int32(c.EP.TxFlow())] = "rpc"
		m[int32(c.EP.RxFlow())] = "rpc"
	}
	return m
}

// msgSizes derives the message tracer's flow → message-size map from the
// workload: long flows message on their 128KB iPerf write unit (tx
// direction only — the reverse direction carries no data), RPC
// connections on the request/response size in both directions (requests
// out, responses back). A positive override replaces every natural size.
func msgSizes(b *builtWorkload, override int64) map[skb.FlowID]units.Bytes {
	m := make(map[skb.FlowID]units.Bytes)
	size := func(natural units.Bytes) units.Bytes {
		if override > 0 {
			return units.Bytes(override)
		}
		return natural
	}
	for _, lf := range b.long {
		m[lf.Sender.TxFlow()] = size(workload.WriteChunk)
	}
	for _, c := range b.clients {
		m[c.EP.TxFlow()] = size(c.Size)
		m[c.EP.RxFlow()] = size(c.Size)
	}
	return m
}

func buildWorkload(sender, receiver *core.Host, wl Workload) (*builtWorkload, error) {
	b := &builtWorkload{receiverIdx: 1}
	switch wl.Kind {
	case "long":
		p, err := parsePattern(wl.Pattern)
		if err != nil {
			return nil, err
		}
		n := wl.N
		if p == workload.Single {
			n = 1
		}
		if wl.RemoteNUMA {
			if p != workload.Single {
				return nil, fmt.Errorf("hostsim: RemoteNUMA supports the single pattern only")
			}
			// Application on the first core of NUMA node 2 (NIC on node 0).
			rc := receiver.Spec().CoresOnNode(2)[0]
			sEP, rEP := core.OpenConn(sender, 0, receiver, rc)
			b.long = []*workload.LongFlow{workload.StartLongFlow(sEP, rEP)}
			return b, nil
		}
		b.long = workload.LongFlows(sender, receiver, p, n)
		return b, nil

	case "rpc":
		if wl.RPCClients <= 0 || wl.RPCSize <= 0 {
			return nil, fmt.Errorf("hostsim: rpc workload needs RPCClients and RPCSize")
		}
		serverCore := 0
		if wl.RemoteNUMA {
			serverCore = receiver.Spec().CoresOnNode(2)[0]
		}
		clients, _ := workload.RPCIncast(sender, receiver, wl.RPCClients, serverCore, units.Bytes(wl.RPCSize))
		b.clients = clients
		return b, nil

	case "mixed":
		if wl.RPCSize <= 0 {
			wl.RPCSize = 4096
		}
		shortCore := 0
		if wl.Segregate {
			shortCore = 1
		}
		lf, clients, _ := workload.MixedSplit(sender, receiver, 0, shortCore, wl.MixedShort, units.Bytes(wl.RPCSize))
		b.long = []*workload.LongFlow{lf}
		b.clients = clients
		return b, nil

	default:
		return nil, fmt.Errorf("hostsim: unknown workload kind %q", wl.Kind)
	}
}

// buildFabricWorkload places the long-flow patterns across the cluster's
// hosts rather than across one pair's cores: incast is hosts 1..H-1 each
// sending one flow into host 0, outcast the reverse, one-to-one pairs the
// hosts off two at a time, and all-to-all runs one flow per ordered host
// pair. The pattern scale comes from the host count, so Workload.N is
// ignored; cores on a hot host fill round-robin like the paper's
// multi-flow placements. RPC and mixed workloads (and RemoteNUMA) remain
// pair-topology options.
func buildFabricWorkload(c *core.Cluster, wl Workload) (*builtWorkload, error) {
	if wl.Kind != "long" {
		return nil, fmt.Errorf("hostsim: fabric topologies support the long workload only (got %q)", wl.Kind)
	}
	if wl.RemoteNUMA {
		return nil, fmt.Errorf("hostsim: RemoteNUMA is a pair-topology option")
	}
	p, err := parsePattern(wl.Pattern)
	if err != nil {
		return nil, err
	}
	hosts := c.Hosts()
	h := len(hosts)
	cores := hosts[0].Spec().NumCores()
	b := &builtWorkload{receiverIdx: 1}
	open := func(s, sCore, r, rCore int) {
		sEP, rEP := c.OpenConn(s, sCore, r, rCore)
		b.long = append(b.long, workload.StartLongFlow(sEP, rEP))
	}
	switch p {
	case workload.Single:
		open(0, 0, 1, 0)
	case workload.OneToOne:
		if h%2 != 0 {
			return nil, fmt.Errorf("hostsim: one-to-one needs an even host count (got %d)", h)
		}
		for i := 0; i < h; i += 2 {
			open(i, 0, i+1, 0)
		}
	case workload.Incast:
		b.senderIdx, b.receiverIdx = 1, 0
		for i := 1; i < h; i++ {
			open(i, 0, 0, (i-1)%cores)
		}
	case workload.Outcast:
		for i := 1; i < h; i++ {
			open(0, (i-1)%cores, i, 0)
		}
	case workload.AllToAll:
		for i := 0; i < h; i++ {
			for j := 0; j < h; j++ {
				if i == j {
					continue
				}
				// Each host numbers its flows toward the other hosts 0..H-2;
				// that index picks the core, so every host spreads its H-1
				// outgoing (and incoming) flows across its cores evenly.
				sCore := j
				if j > i {
					sCore--
				}
				rCore := i
				if i > j {
					rCore--
				}
				open(i, sCore%cores, j, rCore%cores)
			}
		}
	}
	return b, nil
}

func parsePattern(p Pattern) (workload.Pattern, error) {
	switch p {
	case PatternSingle:
		return workload.Single, nil
	case PatternOneToOne:
		return workload.OneToOne, nil
	case PatternIncast:
		return workload.Incast, nil
	case PatternOutcast:
		return workload.Outcast, nil
	case PatternAllToAll:
		return workload.AllToAll, nil
	default:
		return 0, fmt.Errorf("hostsim: unknown pattern %q", p)
	}
}

// snapshot records baselines at the start of the measurement window.
func (b *builtWorkload) snapshot() {
	b.longBase = 0
	b.longBaseEach = b.longBaseEach[:0]
	for _, lf := range b.long {
		d := lf.Receiver.Conn().Stats().DeliveredBytes
		b.longBase += d
		b.longBaseEach = append(b.longBaseEach, d)
	}
	b.rpcBase, b.rpcDone = 0, 0
	for _, c := range b.clients {
		b.rpcBase += c.EP.Conn().Stats().DeliveredBytes
		b.rpcDone += c.Completed
	}
}

// deltas reports per-class progress over the window.
func (b *builtWorkload) deltas(window time.Duration) (rpcs int64, longGbps, rpcGbps float64) {
	var longBytes units.Bytes
	for _, lf := range b.long {
		longBytes += lf.Receiver.Conn().Stats().DeliveredBytes
	}
	longBytes -= b.longBase
	var rpcBytes units.Bytes
	for _, c := range b.clients {
		rpcBytes += c.EP.Conn().Stats().DeliveredBytes
		rpcs += c.Completed
	}
	rpcBytes -= b.rpcBase
	rpcs -= b.rpcDone
	// RPC goodput is reported one-way (response bytes delivered to the
	// clients), following netperf's transaction-byte convention.
	return rpcs, units.RateOf(longBytes, window).Gigabits(),
		units.RateOf(rpcBytes, window).Gigabits()
}

// perFlow returns each long flow's goodput over the window (Gbps).
func (b *builtWorkload) perFlow(window time.Duration) []float64 {
	if len(b.long) == 0 {
		return nil
	}
	out := make([]float64, len(b.long))
	for i, lf := range b.long {
		d := lf.Receiver.Conn().Stats().DeliveredBytes - b.longBaseEach[i]
		out[i] = units.RateOf(d, window).Gigabits()
	}
	return out
}

// jain computes Jain's fairness index over per-flow goodputs: 1 is
// perfectly fair, 1/n is maximally unfair.
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

func hostRetransmits(h *core.Host) int64 {
	st := h.AggregateConnStats()
	return st.Retransmits
}

func hostAcksSent(h *core.Host) int64 {
	st := h.AggregateConnStats()
	return st.AcksSent
}
