package hostsim_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"hostsim/internal/figures"
	"hostsim/internal/validate"
)

// validateRC is the configuration the committed FINDINGS baseline was
// generated with: the standard measurement window, invariant checker
// armed — identical (up to Jobs, which never changes output) to
// TestFiguresGolden's, so the two tests share every simulation through
// the figures run memo.
func validateRC() figures.RunConfig {
	rc := figures.Default()
	rc.Jobs = runtime.NumCPU()
	rc.Check = true
	return rc
}

// TestGoldenTablesAllHypothesized is the meta-test tying the golden
// corpus to the claim inventory: every golden figure table is referenced
// by at least one hypothesis, so no figure can silently drift out of the
// observatory's coverage.
func TestGoldenTablesAllHypothesized(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]bool{}
	for _, h := range validate.Hypotheses {
		for _, s := range h.Sources {
			sources[s] = true
		}
	}
	checked := 0
	for _, ent := range entries {
		id := strings.TrimSuffix(ent.Name(), ".txt")
		if _, ok := figures.ByID(id); !ok {
			continue // non-figure goldens (pcap traces, tail reports)
		}
		checked++
		if !sources[id] {
			t.Errorf("golden table %s is referenced by no hypothesis", id)
		}
	}
	if checked < 50 {
		t.Errorf("only %d golden figure tables found; expected the full corpus", checked)
	}
}

// TestValidateFindingsBaseline regenerates the full FINDINGS report at
// the committed configuration and requires (a) every gate hypothesis to
// pass and (b) the committed FINDINGS.md / findings.json baselines to
// match byte-for-byte — the same contract the golden figure tables have.
// Regenerate the baselines after a deliberate model change with:
//
//	go run ./cmd/validate -out FINDINGS.md -json findings.json
func TestValidateFindingsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure regeneration")
	}
	rep, err := validate.Run(validate.Hypotheses, validateRC())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range rep.Hypotheses {
		if h.Severity == "gate" && !h.Pass {
			t.Errorf("gate hypothesis %s FAILED (err %.3g): %s", h.ID, h.ErrMag, h.Claim)
		}
	}
	if !rep.GateOK() {
		t.Errorf("gate verdict: %d/%d gate hypotheses failed", rep.GateFail, rep.GateFail+rep.GatePass)
	}

	wantMD, err := os.ReadFile("FINDINGS.md")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	if got := rep.Markdown(); got != string(wantMD) {
		t.Errorf("FINDINGS.md is stale; regenerate with: go run ./cmd/validate -out FINDINGS.md -json findings.json")
	}
	wantJSON, err := os.ReadFile("findings.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	gotJSON, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("findings.json is stale; regenerate with: go run ./cmd/validate -out FINDINGS.md -json findings.json")
	}
}

// TestValidateNegativeControl proves the gate can actually fail: a
// deliberately mis-calibrated cost model (data-copy cycles tripled) must
// flip value-pinning gate hypotheses to FAIL, while the same subset
// passes at the committed calibration. This guards against vacuous
// predicates — a hypothesis set that passes under any cost model gates
// nothing.
func TestValidateNegativeControl(t *testing.T) {
	if testing.Short() {
		t.Skip("extra full-window simulations")
	}
	subset, err := validate.Filter(validate.Hypotheses, "all",
		[]string{"fig3a-headline", "fig3d-receiver-copy-half"})
	if err != nil {
		t.Fatal(err)
	}

	base, err := validate.Run(subset, validateRC())
	if err != nil {
		t.Fatal(err)
	}
	if !base.GateOK() {
		t.Fatalf("control subset fails at the committed calibration: %+v", base.Hypotheses)
	}

	rc := validateRC()
	rc.CostScale = map[string]float64{"CopyHit": 3}
	perturbed, err := validate.Run(subset, rc)
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.GateOK() {
		t.Error("tripling CopyHit flipped no gate hypothesis; the gate is vacuous")
	}
	flipped := 0
	for _, h := range perturbed.Hypotheses {
		if !h.Pass {
			flipped++
			if h.ErrMag <= 1 {
				t.Errorf("%s failed but consumed only %.3g of its band", h.ID, h.ErrMag)
			}
		}
	}
	if flipped == 0 {
		t.Error("no hypothesis flipped under the perturbed cost model")
	}
}
