package hostsim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTimelineNilWithoutTelemetry(t *testing.T) {
	res, err := Run(quickCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != nil {
		t.Error("Timeline must be nil when Config.Telemetry is unset")
	}
}

func TestTelemetryTimelinePopulated(t *testing.T) {
	cfg := quickCfg(AllOptimizations())
	cfg.Telemetry = &Telemetry{SampleInterval: 500 * time.Microsecond}
	res, err := Run(cfg, LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if tl == nil || tl.Len() == 0 {
		t.Fatal("Timeline missing or empty")
	}
	// 8ms window at 500µs spacing: 16 samples starting at warm-up.
	if tl.Len() != 16 {
		t.Errorf("Len = %d, want 16", tl.Len())
	}
	if tl.Times[0] != cfg.Warmup {
		t.Errorf("first sample at %v, want warm-up boundary %v", tl.Times[0], cfg.Warmup)
	}
	for _, name := range []string{
		"sender/written_bytes", "receiver/copied_bytes",
		"sender/nic/tx_frames", "receiver/nic/ring_occupancy",
		"receiver/ddio/hit_rate", "receiver/core00/softirq_us",
		"sender/flow001/cwnd_bytes", "sender/flow001/srtt_ns",
	} {
		vals, ok := tl.Column(name)
		if !ok {
			t.Errorf("metric %q missing from timeline (have %d columns)", name, len(tl.Names))
			continue
		}
		if len(vals) != tl.Len() {
			t.Errorf("%q has %d samples, want %d", name, len(vals), tl.Len())
		}
	}
	// The run actually moved data, so the last copied_bytes sample is > 0.
	if vals, _ := tl.Column("receiver/copied_bytes"); vals[len(vals)-1] == 0 {
		t.Error("receiver/copied_bytes never advanced")
	}
}

// Enabling telemetry must not perturb the simulation: the sampler is a
// pure read interleaved with the event queue.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	base := quickCfg(AllOptimizations())
	plain, err := Run(base, LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Telemetry = &Telemetry{}
	sampled, err := Run(cfg, LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if plain.ThroughputGbps != sampled.ThroughputGbps {
		t.Errorf("throughput changed: %v vs %v", plain.ThroughputGbps, sampled.ThroughputGbps)
	}
	if plain.Sender.BusyCores != sampled.Sender.BusyCores ||
		plain.Receiver.BusyCores != sampled.Receiver.BusyCores {
		t.Error("busy-core accounting changed under telemetry")
	}
}

// Two same-seed runs must serialize to byte-identical timelines: the
// determinism contract of netsim -telemetry-out.
func TestTelemetryDeterministicBytes(t *testing.T) {
	render := func() (string, string) {
		cfg := quickCfg(AllOptimizations())
		cfg.Telemetry = &Telemetry{SampleInterval: time.Millisecond}
		res, err := Run(cfg, LongFlowWorkload(PatternIncast, 4))
		if err != nil {
			t.Fatal(err)
		}
		var csv, jsonl strings.Builder
		if err := res.Timeline.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := res.Timeline.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		return csv.String(), jsonl.String()
	}
	csv1, jsonl1 := render()
	csv2, jsonl2 := render()
	if csv1 != csv2 {
		t.Error("CSV timelines differ across identical runs")
	}
	if jsonl1 != jsonl2 {
		t.Error("JSONL timelines differ across identical runs")
	}
}

func TestWriteChromeTraceRoundTrips(t *testing.T) {
	cfg := quickCfg(AllOptimizations())
	cfg.TraceEvents = 1 << 14
	cfg.TraceSpans = true
	res, err := Run(cfg, LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome trace empty")
	}
	phases := make(map[string]int)
	for _, e := range events {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("event missing %q: %v", field, e)
			}
		}
		phases[e["ph"].(string)]++
	}
	if phases["M"] != 2 {
		t.Errorf("want 2 process metadata events, got %d", phases["M"])
	}
	if phases["X"] == 0 {
		t.Error("no execution spans in the trace (TraceSpans set)")
	}
	if phases["i"] == 0 {
		t.Error("no instant events in the trace")
	}
}

func TestTraceSpansRequiresTraceEvents(t *testing.T) {
	cfg := quickCfg(AllOptimizations())
	cfg.TraceSpans = true
	if _, err := Run(cfg, LongFlowWorkload(PatternSingle, 1)); err == nil {
		t.Error("TraceSpans without TraceEvents should be rejected")
	}
}

func TestTelemetryConfigValidation(t *testing.T) {
	for name, tel := range map[string]*Telemetry{
		"negative interval": {SampleInterval: -time.Microsecond},
		"negative samples":  {MaxSamples: -1},
	} {
		cfg := quickCfg(AllOptimizations())
		cfg.Telemetry = tel
		if _, err := Run(cfg, LongFlowWorkload(PatternSingle, 1)); err == nil {
			t.Errorf("%s should be rejected", name)
		}
	}
}
