// Command fabcheck validates a fabric-observatory export written by
// `netsim -fabric-report` (CSV or JSONL) and, optionally, the matching
// `-fabric-ts-out` time-series. It re-asserts the invariants the
// exporter guarantees:
//
//   - ledger exactness per port: in_frames == forwarded + admission_drops
//     and enqueued == delivered + wire_loss_drops + in_flight — every
//     frame the fabric ever saw is accounted for, none double-counted;
//   - ordered hop-latency quantiles (p50 <= p99 <= max, mean <= max);
//   - bursts sorted by start time, each referencing a known port with a
//     matching host label, contributing-flow frames summing to at most
//     the burst's frame count;
//   - strictly monotone sample timestamps in the time-series, with the
//     occupancy column and one backlog column per port present.
//
// Exit status is non-zero on any violation; CI uses it as the fabric
// observability smoke check.
//
// Usage: fabcheck <report.{csv|jsonl}> [timeseries.{csv|jsonl}]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// portRow is one parsed port-ledger line; field order follows the CSV
// header in internal/fabricobs/report.go.
type portRow struct {
	Port          int     `json:"port"`
	Host          string  `json:"host"`
	In            int64   `json:"in_frames"`
	Forwarded     int64   `json:"forwarded"`
	AdmDrops      int64   `json:"admission_drops"`
	AdmDropBytes  int64   `json:"admission_drop_bytes"`
	Enqueued      int64   `json:"enqueued"`
	Delivered     int64   `json:"delivered"`
	WireLoss      int64   `json:"wire_loss_drops"`
	InFlight      int64   `json:"in_flight"`
	ECNMarks      int64   `json:"ecn_marks"`
	TxBytes       int64   `json:"tx_bytes"`
	Utilization   float64 `json:"utilization"`
	PeakBacklog   int64   `json:"peak_backlog_bytes"`
	PeakOccupancy int64   `json:"peak_occupancy_bytes"`
	HopMeanNS     int64   `json:"hop_mean_ns"`
	HopP50NS      int64   `json:"hop_p50_ns"`
	HopP99NS      int64   `json:"hop_p99_ns"`
	HopMaxNS      int64   `json:"hop_max_ns"`
	Bursts        int64   `json:"bursts"`
}

type burstRow struct {
	Port          int    `json:"port"`
	Host          string `json:"host"`
	StartNS       int64  `json:"start_ns"`
	DurationNS    int64  `json:"duration_ns"`
	PeakBacklog   int64  `json:"peak_backlog_bytes"`
	PeakOccupancy int64  `json:"peak_occupancy_bytes"`
	Frames        int64  `json:"frames"`
	AdmDrops      int64  `json:"admission_drops"`
	Truncated     bool   `json:"truncated"`
	Flows         string `json:"flows"`
}

func main() {
	if len(os.Args) != 2 && len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: fabcheck <report.{csv|jsonl}> [timeseries.{csv|jsonl}]")
		os.Exit(2)
	}
	ports, bursts := readReport(os.Args[1])
	checkLedger(os.Args[1], ports)
	checkBursts(os.Args[1], ports, bursts)
	var drops, marks int64
	for _, p := range ports {
		drops += p.AdmDrops + p.WireLoss
		marks += p.ECNMarks
	}
	fmt.Printf("%s: %d ports, %d bursts, ledger exact (%d drops, %d marks attributed)\n",
		os.Args[1], len(ports), len(bursts), drops, marks)
	if len(os.Args) == 3 {
		checkTimeline(os.Args[2], ports)
	}
}

// readReport dispatches on suffix: .jsonl streams are type-discriminated
// objects, everything else is the two-section CSV.
func readReport(path string) ([]portRow, []burstRow) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	if strings.HasSuffix(path, ".jsonl") {
		return parseJSONL(path, data)
	}
	return parseCSV(path, data)
}

func parseJSONL(path string, data []byte) (ports []portRow, bursts []burstRow) {
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		var disc struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &disc); err != nil {
			fail("%s line %d: %v", path, i+1, err)
		}
		switch disc.Type {
		case "port":
			var p portRow
			if err := json.Unmarshal([]byte(line), &p); err != nil {
				fail("%s line %d: %v", path, i+1, err)
			}
			ports = append(ports, p)
		case "burst":
			var b burstRow
			if err := json.Unmarshal([]byte(line), &b); err != nil {
				fail("%s line %d: %v", path, i+1, err)
			}
			bursts = append(bursts, b)
		default:
			fail("%s line %d: unknown type %q", path, i+1, disc.Type)
		}
	}
	return ports, bursts
}

// parseCSV splits the report on its blank line: the port section above,
// the burst section below, each with its own header row.
func parseCSV(path string, data []byte) (ports []portRow, bursts []burstRow) {
	sections := strings.SplitN(strings.TrimRight(string(data), "\n"), "\n\n", 2)
	if len(sections) != 2 {
		fail("%s: missing blank-line separator between port and burst sections", path)
	}
	plines := strings.Split(sections[0], "\n")
	if !strings.HasPrefix(plines[0], "port,host,in_frames,") {
		fail("%s: unexpected port header %q", path, plines[0])
	}
	for _, line := range plines[1:] {
		f := fields(path, line, 20)
		ports = append(ports, portRow{
			Port: int(num(path, f[0])), Host: f[1],
			In: num(path, f[2]), Forwarded: num(path, f[3]),
			AdmDrops: num(path, f[4]), AdmDropBytes: num(path, f[5]),
			Enqueued: num(path, f[6]), Delivered: num(path, f[7]),
			WireLoss: num(path, f[8]), InFlight: num(path, f[9]),
			ECNMarks: num(path, f[10]), TxBytes: num(path, f[11]),
			Utilization: fnum(path, f[12]),
			PeakBacklog: num(path, f[13]), PeakOccupancy: num(path, f[14]),
			HopMeanNS: num(path, f[15]), HopP50NS: num(path, f[16]),
			HopP99NS: num(path, f[17]), HopMaxNS: num(path, f[18]),
			Bursts: num(path, f[19]),
		})
	}
	blines := strings.Split(sections[1], "\n")
	if !strings.HasPrefix(blines[0], "port,host,start_ns,") {
		fail("%s: unexpected burst header %q", path, blines[0])
	}
	for _, line := range blines[1:] {
		f := fields(path, line, 10)
		bursts = append(bursts, burstRow{
			Port: int(num(path, f[0])), Host: f[1],
			StartNS: num(path, f[2]), DurationNS: num(path, f[3]),
			PeakBacklog: num(path, f[4]), PeakOccupancy: num(path, f[5]),
			Frames: num(path, f[6]), AdmDrops: num(path, f[7]),
			Truncated: f[8] == "true", Flows: f[9],
		})
	}
	return ports, bursts
}

func checkLedger(path string, ports []portRow) {
	if len(ports) == 0 {
		fail("%s: no port rows", path)
	}
	for _, p := range ports {
		for name, v := range map[string]int64{
			"in_frames": p.In, "forwarded": p.Forwarded,
			"admission_drops": p.AdmDrops, "admission_drop_bytes": p.AdmDropBytes,
			"enqueued": p.Enqueued, "delivered": p.Delivered,
			"wire_loss_drops": p.WireLoss, "in_flight": p.InFlight,
			"ecn_marks": p.ECNMarks, "tx_bytes": p.TxBytes, "bursts": p.Bursts,
		} {
			if v < 0 {
				fail("port %d (%s): negative %s %d", p.Port, p.Host, name, v)
			}
		}
		if p.In != p.Forwarded+p.AdmDrops {
			fail("port %d (%s): ingress ledger inexact: in %d != forwarded %d + admission_drops %d",
				p.Port, p.Host, p.In, p.Forwarded, p.AdmDrops)
		}
		if p.Enqueued != p.Delivered+p.WireLoss+p.InFlight {
			fail("port %d (%s): egress ledger inexact: enqueued %d != delivered %d + wire_loss %d + in_flight %d",
				p.Port, p.Host, p.Enqueued, p.Delivered, p.WireLoss, p.InFlight)
		}
		// Quantiles come from a log-bucketed histogram (bucket growth
		// 1.165x) while mean and max are exact, so a quantile may land up
		// to one bucket above the true max; order within each family is
		// still strict.
		if p.HopP50NS > p.HopP99NS || p.HopMeanNS > p.HopMaxNS ||
			float64(p.HopP99NS) > float64(p.HopMaxNS)*1.166+1 {
			fail("port %d (%s): hop-latency quantiles out of order: p50 %d p99 %d mean %d max %d",
				p.Port, p.Host, p.HopP50NS, p.HopP99NS, p.HopMeanNS, p.HopMaxNS)
		}
		if p.Utilization < 0 || p.Utilization > 1.001 {
			fail("port %d (%s): utilization %g outside [0,1]", p.Port, p.Host, p.Utilization)
		}
	}
}

func checkBursts(path string, ports []portRow, bursts []burstRow) {
	byPort := map[int]portRow{}
	for _, p := range ports {
		byPort[p.Port] = p
	}
	retained := map[int]int64{}
	prev := int64(-1)
	for i, b := range bursts {
		p, ok := byPort[b.Port]
		if !ok {
			fail("burst %d: unknown port %d", i, b.Port)
		}
		if b.Host != p.Host {
			fail("burst %d: host %q, port %d ledger says %q", i, b.Host, b.Port, p.Host)
		}
		if b.StartNS < prev {
			fail("burst %d: start %dns before previous burst %dns — not time-sorted", i, b.StartNS, prev)
		}
		prev = b.StartNS
		if b.DurationNS < 0 || b.Frames < 0 || b.AdmDrops < 0 {
			fail("burst %d: negative duration/frames/drops", i)
		}
		var flowSum int64
		if b.Flows != "" {
			for _, pair := range strings.Split(b.Flows, ";") {
				var flow, frames int64
				if _, err := fmt.Sscanf(pair, "%d:%d", &flow, &frames); err != nil {
					fail("burst %d: malformed flow pair %q", i, pair)
				}
				flowSum += frames
			}
		}
		if flowSum > b.Frames {
			fail("burst %d: contributing flows carry %d frames, burst saw only %d", i, flowSum, b.Frames)
		}
		retained[b.Port]++
	}
	for port, n := range retained {
		if n > byPort[port].Bursts {
			fail("port %d: %d bursts retained but ledger counts only %d", port, n, byPort[port].Bursts)
		}
	}
}

// checkTimeline asserts strictly increasing timestamps and the presence
// of the occupancy column plus one backlog column per ledger port.
func checkTimeline(path string, ports []portRow) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var names []string
	var times []int64
	if strings.HasSuffix(path, ".jsonl") {
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		var header struct {
			Names []string `json:"names"`
		}
		if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
			fail("%s: header: %v", path, err)
		}
		names = header.Names
		for i, line := range lines[1:] {
			var row struct {
				T int64     `json:"t_ns"`
				V []float64 `json:"v"`
			}
			if err := json.Unmarshal([]byte(line), &row); err != nil {
				fail("%s line %d: %v", path, i+2, err)
			}
			if len(row.V) != len(names) {
				fail("%s line %d: %d values for %d metrics", path, i+2, len(row.V), len(names))
			}
			times = append(times, row.T)
		}
	} else {
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		cols := strings.Split(lines[0], ",")
		if cols[0] != "time_ns" {
			fail("%s: header starts with %q, want time_ns", path, cols[0])
		}
		names = cols[1:]
		for i, line := range lines[1:] {
			f := strings.Split(line, ",")
			if len(f) != len(cols) {
				fail("%s line %d: %d fields, header has %d", path, i+2, len(f), len(cols))
			}
			times = append(times, num(path, f[0]))
		}
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	if !have["occupancy_bytes"] {
		fail("%s: missing occupancy_bytes column", path)
	}
	for _, p := range ports {
		col := fmt.Sprintf("port%03d/backlog_bytes", p.Port)
		if !have[col] {
			fail("%s: missing %s column for ledger port %d", path, col, p.Port)
		}
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			fail("%s: sample %d at %dns not after sample %d at %dns — timestamps must be strictly monotone",
				path, i, times[i], i-1, times[i-1])
		}
	}
	fmt.Printf("%s: %d samples x %d metrics, timestamps strictly monotone\n",
		path, len(times), len(names))
}

func fields(path, line string, want int) []string {
	f := strings.Split(line, ",")
	if len(f) != want {
		fail("%s: row %q has %d fields, want %d", path, line, len(f), want)
	}
	return f
}

func num(path, s string) int64 {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		fail("%s: bad integer %q", path, s)
	}
	return v
}

func fnum(path, s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		fail("%s: bad float %q", path, s)
	}
	return v
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fabcheck: "+format+"\n", args...)
	os.Exit(1)
}
