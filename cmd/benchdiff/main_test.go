package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCapture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseCapturePlainText(t *testing.T) {
	path := writeCapture(t, "bench.txt", strings.Join([]string{
		"goos: linux",
		"BenchmarkEngine-8   193   6034160 ns/op   728385 B/op   2346 allocs/op",
		"BenchmarkWheel-8    500   2000000 ns/op",
		"PASS",
	}, "\n"))
	got, order, err := parseCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "BenchmarkEngine" || order[1] != "BenchmarkWheel" {
		t.Fatalf("order = %v", order)
	}
	b := got["BenchmarkEngine"]
	if b.nsOp != 6034160 || b.bOp != 728385 || b.allocsOp != 2346 {
		t.Errorf("BenchmarkEngine = %+v", b)
	}
	if got["BenchmarkWheel"].allocsOp != 0 {
		t.Errorf("missing allocs should parse as 0: %+v", got["BenchmarkWheel"])
	}
}

func TestParseCaptureJSONStream(t *testing.T) {
	// test2json splits the name and measurements across output events.
	path := writeCapture(t, "bench.json", strings.Join([]string{
		`{"Action":"output","Output":"BenchmarkEngine-8   "}`,
		`{"Action":"output","Output":"100\t5000000 ns/op\t100 B/op\t7 allocs/op\n"}`,
		`{"Action":"run","Test":"BenchmarkEngine"}`,
	}, "\n"))
	got, _, err := parseCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	if b := got["BenchmarkEngine"]; b.nsOp != 5000000 || b.allocsOp != 7 {
		t.Errorf("BenchmarkEngine = %+v", b)
	}
}

func TestRegressions(t *testing.T) {
	old := map[string]bench{
		"BenchmarkA":    {nsOp: 1000, allocsOp: 10},
		"BenchmarkB":    {nsOp: 1000, allocsOp: 10},
		"BenchmarkC":    {nsOp: 1000, allocsOp: 10},
		"BenchmarkGone": {nsOp: 1000},
	}
	new_ := map[string]bench{
		"BenchmarkA":   {nsOp: 1040, allocsOp: 10}, // +4% ns/op: inside threshold
		"BenchmarkB":   {nsOp: 1200, allocsOp: 10}, // +20% ns/op: regression
		"BenchmarkC":   {nsOp: 1000, allocsOp: 12}, // +20% allocs/op: regression
		"BenchmarkNew": {nsOp: 9999},               // unpaired: ignored
	}
	order := []string{"BenchmarkA", "BenchmarkB", "BenchmarkC", "BenchmarkGone"}
	regs := regressions(old, new_, order, 5)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2 entries", regs)
	}
	if !strings.Contains(regs[0], "BenchmarkB") || !strings.Contains(regs[0], "ns/op") {
		t.Errorf("regs[0] = %q", regs[0])
	}
	if !strings.Contains(regs[1], "BenchmarkC") || !strings.Contains(regs[1], "allocs/op") {
		t.Errorf("regs[1] = %q", regs[1])
	}
	if regs := regressions(old, new_, order, 25); len(regs) != 0 {
		t.Errorf("threshold 25%% should pass, got %v", regs)
	}
}
