// Command benchdiff compares two benchmark captures written by the
// Makefile's bench-* targets (`go test -json -bench ...`, e.g.
// BENCH_engine.json): it pairs benchmarks by name and prints old-vs-new
// ns/op and allocs/op with relative deltas, plus B/op when present.
// Benchmarks appearing in only one capture are listed separately. With a
// single argument it just prints that capture as a table.
//
// With -threshold <pct> (and two captures) benchdiff becomes a CI gate:
// it exits non-zero when any paired benchmark regresses by more than
// <pct> percent in ns/op or allocs/op, listing the offenders on stderr.
//
// Usage: benchdiff [-threshold <pct>] <old.json> [<new.json>]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// bench is one benchmark result distilled from the `go test -json`
// stream. A name can legitimately recur across packages; captures here
// keep the first occurrence and warn, since the bench-* targets use
// disjoint -bench patterns per package.
type bench struct {
	nsOp     float64
	bOp      float64
	allocsOp float64
}

// resultLine matches the textual benchmark result embedded in a test2json
// Output event, e.g.
//
//	BenchmarkEngineWheelIPerf-8   193   6034160 ns/op   728385 B/op   2346 allocs/op
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)

func parseCapture(path string) (map[string]bench, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	// test2json splits one benchmark result across several output
	// events (the name is flushed before the measurements), so first
	// reassemble the raw text stream, then match complete lines.
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string
			Output string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			// Tolerate plain-text captures (`go test -bench` without
			// -json) by taking the raw line instead.
			text.WriteString(sc.Text())
			text.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	out := map[string]bench{}
	var order []string
	for _, line := range strings.Split(text.String(), "\n") {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		if _, dup := out[name]; dup {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: duplicate %s, keeping first\n", path, name)
			continue
		}
		b := bench{}
		b.nsOp, _ = strconv.ParseFloat(m[2], 64)
		rest := strings.Fields(m[3])
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			switch rest[i+1] {
			case "B/op":
				b.bOp = v
			case "allocs/op":
				b.allocsOp = v
			}
		}
		out[name] = b
		order = append(order, name)
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, order, nil
}

// delta renders new relative to old as a signed percentage.
func delta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// regressions returns the paired benchmarks whose ns/op or allocs/op
// grew by more than threshold percent, in old-capture order.
func regressions(old, new_ map[string]bench, order []string, threshold float64) []string {
	grew := func(o, n float64) bool {
		return o > 0 && (n-o)/o*100 > threshold
	}
	var out []string
	for _, name := range order {
		o := old[name]
		n, ok := new_[name]
		if !ok {
			continue
		}
		switch {
		case grew(o.nsOp, n.nsOp):
			out = append(out, fmt.Sprintf("%s: ns/op %.0f -> %.0f (%s)", name, o.nsOp, n.nsOp, delta(o.nsOp, n.nsOp)))
		case grew(o.allocsOp, n.allocsOp):
			out = append(out, fmt.Sprintf("%s: allocs/op %.0f -> %.0f (%s)", name, o.allocsOp, n.allocsOp, delta(o.allocsOp, n.allocsOp)))
		}
	}
	return out
}

func main() {
	threshold := flag.Float64("threshold", -1,
		"fail (exit 1) when any benchmark regresses more than this percent in ns/op or allocs/op (< 0 = report only)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold <pct>] <old.json> [<new.json>]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) != 1 && len(args) != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *threshold >= 0 && len(args) != 2 {
		fmt.Fprintln(os.Stderr, "benchdiff: -threshold needs two captures to compare")
		os.Exit(2)
	}
	old, order, err := parseCapture(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)

	if len(args) == 1 {
		fmt.Fprintf(w, "%-40s %14s %14s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
		for _, name := range order {
			b := old[name]
			fmt.Fprintf(w, "%-40s %14.0f %14.0f %12.0f\n", name, b.nsOp, b.bOp, b.allocsOp)
		}
		w.Flush()
		return
	}

	new_, newOrder, err := parseCapture(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "%-40s %12s %12s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ", "old allocs", "new allocs", "Δ")
	var onlyOld, onlyNew []string
	for _, name := range order {
		o := old[name]
		n, ok := new_[name]
		if !ok {
			onlyOld = append(onlyOld, name)
			continue
		}
		fmt.Fprintf(w, "%-40s %12.0f %12.0f %8s %10.0f %10.0f %8s\n",
			name, o.nsOp, n.nsOp, delta(o.nsOp, n.nsOp),
			o.allocsOp, n.allocsOp, delta(o.allocsOp, n.allocsOp))
	}
	for _, name := range newOrder {
		if _, ok := old[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	if len(onlyOld) > 0 {
		fmt.Fprintf(w, "only in %s: %s\n", args[0], strings.Join(onlyOld, ", "))
	}
	if len(onlyNew) > 0 {
		fmt.Fprintf(w, "only in %s: %s\n", args[1], strings.Join(onlyNew, ", "))
	}
	w.Flush()

	if *threshold >= 0 {
		if regs := regressions(old, new_, order, *threshold); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.1f%%:\n", len(regs), *threshold)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: no regression beyond %.1f%%\n", *threshold)
	}
}
