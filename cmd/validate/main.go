// Command validate is the hypothesis engine's CLI: it regenerates the
// figure tables the selected paper-claim hypotheses reference, evaluates
// them, and writes a deterministic FINDINGS report (markdown) plus a
// machine-readable JSON twin. Gate hypotheses failing => exit code 1, so
// `make validate` doubles as the fidelity gate.
//
// Usage:
//
//	validate                          # all hypotheses -> stdout
//	validate -out FINDINGS.md -json findings.json
//	validate -severity gate           # gate subset only (CI smoke)
//	validate -only fig3a-ladder,fig4-numa-penalty
//	validate -list                    # list hypotheses and exit
//	validate -scale CopyHit=3         # evaluate under a perturbed cost model
//	validate -sens headline           # one-factor sensitivity sweeps
//	validate -sens CopyHit,TCPRxPerSKB -factors 0.5,2 -sens-out SENSITIVITY.md
//
// Output is byte-identical at any -jobs value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hostsim/internal/figures"
	"hostsim/internal/validate"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "validate: "+format+"\n", args...)
	os.Exit(code)
}

// parseScale parses "Knob=Factor,Knob=Factor" into a CostScale map.
func parseScale(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -scale entry %q (want Knob=Factor)", part)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -scale factor in %q: %v", part, err)
		}
		out[k] = f
	}
	return out, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func writeOut(path string, data []byte) {
	if path == "" || path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail(1, "%v", err)
	}
}

func main() {
	var (
		out      = flag.String("out", "-", "markdown report destination (- = stdout)")
		jsonOut  = flag.String("json", "", "also write the machine-readable report here")
		severity = flag.String("severity", "all", "evaluate hypotheses of this severity: all, gate, advisory")
		only     = flag.String("only", "", "comma-separated hypothesis ids (empty = all selected by -severity)")
		list     = flag.Bool("list", false, "list hypotheses and exit")
		dur      = flag.Duration("dur", 25*time.Millisecond, "measurement window (simulated)")
		warmup   = flag.Duration("warmup", 15*time.Millisecond, "warm-up (simulated, excluded)")
		seed     = flag.Int64("seed", 7, "simulation seed")
		jobs     = flag.Int("jobs", runtime.NumCPU(), "simulations run concurrently (1 = serial)")
		chk      = flag.Bool("check", true, "arm the conservation-law invariant checker")
		scale    = flag.String("scale", "", "perturb the cost model: Knob=Factor,... (see hostsim.CostNames)")
		sens     = flag.String("sens", "", "sensitivity mode: 'headline' or comma-separated cost knobs")
		factors  = flag.String("factors", "", "sensitivity factors (default 0.5,0.8,1.25,2)")
		sensOut  = flag.String("sens-out", "-", "sensitivity report destination (- = stdout)")
	)
	flag.Parse()

	if *list {
		for _, h := range validate.Hypotheses {
			fmt.Printf("%-28s %-8s [%s]\n  %s\n", h.ID, h.Severity, strings.Join(h.Sources, " "), h.Claim)
		}
		return
	}

	hyps, err := validate.Filter(validate.Hypotheses, *severity, splitList(*only))
	if err != nil {
		fail(2, "%v", err)
	}
	costScale, err := parseScale(*scale)
	if err != nil {
		fail(2, "%v", err)
	}
	rc := figures.RunConfig{Seed: *seed, Warmup: *warmup, Duration: *dur,
		Jobs: *jobs, Check: *chk, CostScale: costScale}

	start := time.Now()
	if *sens != "" {
		var knobs []string
		if *sens != "headline" {
			knobs = splitList(*sens)
		}
		var fs []float64
		for _, f := range splitList(*factors) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				fail(2, "bad -factors entry %q: %v", f, err)
			}
			fs = append(fs, v)
		}
		sw, err := validate.Sweep(hyps, rc, knobs, fs)
		if err != nil {
			fail(1, "%v", err)
		}
		writeOut(*sensOut, []byte(sw.Markdown()))
		if *jsonOut != "" {
			b, err := sw.JSON()
			if err != nil {
				fail(1, "encoding sweep: %v", err)
			}
			writeOut(*jsonOut, b)
		}
		fmt.Fprintf(os.Stderr, "validate: %d sweep points, %d fragile / %d robust hypotheses in %v\n",
			len(sw.Points), len(sw.Fragile), len(sw.Robust), time.Since(start).Round(time.Millisecond))
		return
	}

	rep, err := validate.Run(hyps, rc)
	if err != nil {
		fail(1, "%v", err)
	}
	writeOut(*out, []byte(rep.Markdown()))
	if *jsonOut != "" {
		b, err := rep.JSON()
		if err != nil {
			fail(1, "encoding report: %v", err)
		}
		writeOut(*jsonOut, b)
	}
	fmt.Fprintf(os.Stderr, "validate: %d hypotheses over %d tables in %v (gate %d/%d, advisory %d/%d)\n",
		len(rep.Hypotheses), len(rep.Tables), time.Since(start).Round(time.Millisecond),
		rep.GatePass, rep.GatePass+rep.GateFail, rep.AdvisoryPass, rep.AdvisoryPass+rep.AdvisoryFail)
	if !rep.GateOK() {
		os.Exit(1)
	}
}
