// Command tailcheck validates a hostsim message-trace export written by
// `netsim -mtrace-out` (a Chrome trace-event JSON array of exemplar span
// trees) and, optionally, the matching `-tail-report` text. It checks
// the structural invariants the exporter guarantees — every stage slice
// names a known stage, timestamps and durations are non-negative, and
// each exemplar's stage slices telescope exactly (their "ns" args sum to
// the message's total span) — and prints a per-exemplar summary. Exit
// status is non-zero on any violation; CI uses it as the mtrace smoke
// check.
//
// Usage: tailcheck <spans.json> [tailreport.txt]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"hostsim/internal/stage"
)

// traceObj mirrors the subset of the Chrome trace-event schema the
// mtrace span writer emits (see internal/telemetry.WriteChromeSpans).
type traceObj struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// exemplar accumulates per-process state while scanning the event array.
type exemplar struct {
	name     string
	total    int64 // message span "ns" arg; -1 until seen
	stageSum int64
	stages   int
	instants int
}

func main() {
	if len(os.Args) != 2 && len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: tailcheck <spans.json> [tailreport.txt]")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var objs []traceObj
	if err := json.Unmarshal(data, &objs); err != nil {
		fail("parse %s: %v", os.Args[1], err)
	}

	procs := map[int]*exemplar{}
	for i, o := range objs {
		if o.Ts < 0 || o.Dur < 0 {
			fail("event %d (%q): negative ts/dur", i, o.Name)
		}
		switch o.Ph {
		case "M":
			if o.Name == "process_name" && o.Tid == 0 {
				ex := proc(procs, o.Pid)
				ex.name, _ = o.Args["name"].(string)
			}
		case "X":
			s, ok := stage.Parse(o.Name)
			if !ok {
				fail("event %d: slice named %q is not a known stage", i, o.Name)
			}
			ns, ok := argNS(o.Args)
			if !ok {
				fail("event %d (%q): missing integer args.ns", i, o.Name)
			}
			if ns < 0 {
				fail("event %d (%q): negative args.ns %d", i, o.Name, ns)
			}
			ex := proc(procs, o.Pid)
			switch {
			case o.Tid == 0 && s == stage.Total:
				if ex.total >= 0 {
					fail("pid %d: duplicate total span", o.Pid)
				}
				ex.total = ns
			case o.Tid == 1:
				ex.stageSum += ns
				ex.stages++
			default:
				fail("event %d (%q): slice on unexpected tid %d", i, o.Name, o.Tid)
			}
		case "i":
			proc(procs, o.Pid).instants++
		default:
			fail("event %d (%q): unexpected phase %q", i, o.Name, o.Ph)
		}
	}

	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		ex := procs[pid]
		if ex.total < 0 {
			fail("pid %d (%s): no total message span", pid, ex.name)
		}
		if ex.stages != len(stage.Message)-1 {
			fail("pid %d (%s): %d stage slices, want %d",
				pid, ex.name, ex.stages, len(stage.Message)-1)
		}
		if ex.stageSum != ex.total {
			fail("pid %d (%s): stage slices sum to %dns, total span is %dns",
				pid, ex.name, ex.stageSum, ex.total)
		}
	}
	fmt.Printf("%s: %d exemplars, %d events, telescoping exact\n",
		os.Args[1], len(procs), len(objs))
	for _, pid := range pids {
		ex := procs[pid]
		fmt.Printf("  %-40s total %12dns  segments %d\n", ex.name, ex.total, ex.instants)
	}

	if len(os.Args) == 3 {
		checkReport(os.Args[2])
	}
}

// checkReport verifies the text tail report carries the message count
// header and one row per percentile band.
func checkReport(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	text := string(data)
	var n int64
	if _, err := fmt.Sscanf(text, "messages %d", &n); err != nil || n < 0 {
		fail("%s: missing \"messages N\" header", path)
	}
	for _, band := range []string{"p0-p50", "p50-p90", "p90-p99", "p99-p999", "p999-max"} {
		if !strings.Contains(text, band) {
			fail("%s: missing %s band row", path, band)
		}
	}
	fmt.Printf("%s: %d messages, all bands present\n", path, n)
}

func proc(m map[int]*exemplar, pid int) *exemplar {
	ex := m[pid]
	if ex == nil {
		ex = &exemplar{total: -1}
		m[pid] = ex
	}
	return ex
}

// argNS extracts the integer "ns" argument; JSON numbers decode as
// float64 but the exporter only writes int64 nanosecond values.
func argNS(args map[string]any) (int64, bool) {
	f, ok := args["ns"].(float64)
	if !ok {
		return 0, false
	}
	return int64(f), true
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tailcheck: "+format+"\n", args...)
	os.Exit(1)
}
