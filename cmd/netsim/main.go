// Command netsim runs a single host-network-stack simulation scenario and
// prints its measurements: throughput, throughput-per-core, CPU breakdowns
// (the paper's Table-1 taxonomy), cache miss rates, host latency and skb
// sizes.
//
// Examples:
//
//	netsim                                  # single flow, all optimizations
//	netsim -pattern incast -flows 8         # 8-flow incast
//	netsim -tso=false -gro=false            # ablation
//	netsim -workload rpc -rpcsize 4096      # 16:1 4KB ping-pong RPCs
//	netsim -loss 0.015                      # lossy switch
//	netsim -cc bbr -rxbuf 3276800 -ring 256 # tuned configuration
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hostsim"
)

func main() {
	var (
		workload = flag.String("workload", "long", "workload kind: long, rpc, mixed")
		pattern  = flag.String("pattern", "single", "long-flow pattern: single, one-to-one, incast, outcast, all-to-all")
		flows    = flag.Int("flows", 1, "flow count (or grid side for all-to-all)")
		rpcSize  = flag.Int64("rpcsize", 4096, "RPC request/response bytes")
		rpcN     = flag.Int("rpcclients", 16, "RPC client count")
		shorts   = flag.Int("shorts", 16, "short flows for the mixed workload")
		remote   = flag.Bool("remote-numa", false, "run the application on a NIC-remote NUMA node")

		tso   = flag.Bool("tso", true, "TCP segmentation offload")
		gso   = flag.Bool("gso", true, "software segmentation when TSO off")
		gro   = flag.Bool("gro", true, "generic receive offload")
		lro   = flag.Bool("lro", false, "hardware receive offload (replaces GRO)")
		jumbo = flag.Bool("jumbo", true, "9000B MTU")
		arfs  = flag.Bool("arfs", true, "accelerated receive flow steering")
		dca   = flag.Bool("dca", true, "DDIO/DCA")
		iommu = flag.Bool("iommu", false, "IOMMU")
		cc    = flag.String("cc", "cubic", "congestion control: cubic, reno, dctcp, bbr")
		steer = flag.String("steering", "", "steering override: arfs, worst, rss, rfs, rps")
		zctx  = flag.Bool("zerocopy-tx", false, "MSG_ZEROCOPY-style transmission")
		zcrx  = flag.Bool("zerocopy-rx", false, "mmap-based zero-copy receive")
		ring  = flag.Int("ring", 0, "NIC Rx descriptors (0 = 1024)")
		rxbuf = flag.Int64("rxbuf", 0, "fixed TCP Rx buffer bytes (0 = autotune)")
		loss  = flag.Float64("loss", 0, "switch drop probability")
		ecn   = flag.Int("ecn-kb", 0, "ECN marking threshold in KB (0 = off)")

		chk    = flag.Bool("check", false, "run with the conservation-law invariant checker armed (fail fast on the first violation)")
		dur    = flag.Duration("dur", 25*time.Millisecond, "measurement window (simulated)")
		warmup = flag.Duration("warmup", 15*time.Millisecond, "warm-up (simulated)")
		seed   = flag.Int64("seed", 1, "simulation seed")
		seeds  = flag.Int("seeds", 1, "run this many seeds and report mean +/- stddev")
		traceN = flag.Int("trace", 0, "dump the last N data-path events after the run")
		traceF = flag.Int("trace-flow", 0, "restrict the trace to one flow id (0 = all); usable alone: implies -trace 256")

		profileOut = flag.String("profile-out", "", "write a gzipped pprof profile of simulated cycles (view with `go tool pprof -top <file>`)")
		foldedOut  = flag.String("folded-out", "", "write folded cycle stacks for flamegraph.pl")
		latBreak   = flag.Bool("latency-breakdown", false, "print the per-packet latency breakdown table (paper Fig. 9)")

		telemetryOut = flag.String("telemetry-out", "", "write the sampled metric timeline to this file (CSV, or JSONL with a .jsonl suffix)")
		sampleEvery  = flag.Duration("sample-interval", 100*time.Microsecond, "simulated time between telemetry samples")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto); implies -trace")

		pcapOut  = flag.String("pcap-out", "", "write a Wireshark-readable pcapng capture of both link directions")
		probeOut = flag.String("probe-out", "", "write tcp_probe-style congestion traces (JSONL, or CSV with a .csv suffix)")
		ssOut    = flag.String("ss-out", "", "write ss-style socket/queue snapshots (CSV, or JSONL with a .jsonl suffix)")
		ssEvery  = flag.Duration("ss-interval", 100*time.Microsecond, "simulated time between socket snapshots")

		mtraceOut  = flag.String("mtrace-out", "", "write the slowest messages' span trees as Chrome trace-event JSON (open in Perfetto)")
		tailReport = flag.String("tail-report", "", "write the message tail-latency attribution report ('-' = stdout)")
		slowest    = flag.Int("slowest", 8, "worst-latency exemplar messages kept for -mtrace-out")
		msgBytes   = flag.Int64("msg-bytes", 0, "message size override for tracing (0 = workload-derived)")

		fabHosts = flag.Int("fabric-hosts", 0, "route traffic through an N-host ToR switch fabric instead of a point-to-point link (0 = off)")
		fabBufKB = flag.Int("fabric-buffer-kb", 0, "fabric shared packet buffer in KB (0 = unbounded)")
		fabAlpha = flag.Float64("fabric-alpha", 0, "fabric dynamic-threshold alpha (0 = 1.0)")

		fabReport = flag.String("fabric-report", "", "write the fabric drop/mark attribution ledger and microbursts ('-' = stdout text; CSV, or JSONL with a .jsonl suffix); arms the fabric observatory")
		fabTSOut  = flag.String("fabric-ts-out", "", "write the per-port fabric time-series (CSV, or JSONL with a .jsonl suffix); arms the fabric observatory")
		fabTrace  = flag.String("fabric-trace-out", "", "write fabric port-queue counters and microbursts as Chrome trace-event JSON (open in Perfetto); arms the fabric observatory")
		burstKB   = flag.Int("burst-kb", 0, "microburst detection threshold in KB of egress backlog (0 = 128)")
	)
	flag.Parse()

	// Fail typoed output paths before the run, not after: every -*-out
	// flag requires its parent directory to exist already.
	for _, of := range []struct{ name, path string }{
		{"profile-out", *profileOut}, {"folded-out", *foldedOut},
		{"telemetry-out", *telemetryOut}, {"trace-out", *traceOut},
		{"pcap-out", *pcapOut}, {"probe-out", *probeOut}, {"ss-out", *ssOut},
		{"mtrace-out", *mtraceOut}, {"tail-report", *tailReport},
		{"fabric-report", *fabReport}, {"fabric-ts-out", *fabTSOut},
		{"fabric-trace-out", *fabTrace},
	} {
		if of.path == "" || of.path == "-" {
			continue
		}
		if fi, err := os.Stat(filepath.Dir(of.path)); err != nil || !fi.IsDir() {
			fmt.Fprintf(os.Stderr, "netsim: -%s %s: directory %s does not exist\n",
				of.name, of.path, filepath.Dir(of.path))
			os.Exit(1)
		}
	}

	stack := hostsim.Stack{
		TSO: *tso, GSO: *gso, GRO: *gro && !*lro, LRO: *lro,
		JumboFrames: *jumbo, ARFS: *arfs, DCA: *dca, IOMMU: *iommu,
		CC: *cc, Steering: *steer, RxDescriptors: *ring, RcvBufBytes: *rxbuf,
		ZeroCopyTx: *zctx, ZeroCopyRx: *zcrx,
	}
	cfg := hostsim.Config{
		Stack: stack, LossRate: *loss, ECNMarkKB: *ecn,
		Warmup: *warmup, Duration: *dur, Seed: *seed,
		TraceEvents: *traceN, TraceFlow: int32(*traceF),
	}
	if *traceF != 0 && cfg.TraceEvents == 0 {
		cfg.TraceEvents = 256
	}
	if *chk {
		cfg.Check = &hostsim.CheckOptions{}
	}
	if *telemetryOut != "" {
		cfg.Telemetry = &hostsim.Telemetry{SampleInterval: *sampleEvery}
	}
	if *profileOut != "" || *foldedOut != "" || *latBreak {
		cfg.Profile = &hostsim.ProfileOptions{}
	}
	if *traceOut != "" {
		if cfg.TraceEvents == 0 {
			cfg.TraceEvents = 1 << 16
		}
		cfg.TraceSpans = true
	}
	if *pcapOut != "" || *probeOut != "" || *ssOut != "" {
		cfg.Inspect = &hostsim.InspectOptions{
			Pcap: *pcapOut != "", Probe: *probeOut != "", SS: *ssOut != "",
			SSInterval: *ssEvery,
		}
	}
	if *mtraceOut != "" || *tailReport != "" {
		cfg.MsgTrace = &hostsim.MsgTraceOptions{Slowest: *slowest, MsgBytes: *msgBytes}
	}
	if *fabHosts > 0 {
		cfg.Fabric = &hostsim.FabricOptions{
			Hosts: *fabHosts, SharedBufferKB: *fabBufKB, Alpha: *fabAlpha,
		}
	}
	if *fabReport != "" || *fabTSOut != "" || *fabTrace != "" {
		cfg.FabricObs = &hostsim.FabricObsOptions{
			SampleInterval: *sampleEvery, BurstThresholdKB: *burstKB,
		}
	}

	var wl hostsim.Workload
	switch *workload {
	case "long":
		wl = hostsim.LongFlowWorkload(hostsim.Pattern(*pattern), *flows)
		wl.RemoteNUMA = *remote
	case "rpc":
		wl = hostsim.RPCIncastWorkload(*rpcN, *rpcSize)
		wl.RemoteNUMA = *remote
	case "mixed":
		wl = hostsim.MixedWorkload(*shorts, *rpcSize)
	default:
		fmt.Fprintf(os.Stderr, "netsim: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	if *seeds > 1 {
		runSeeds(cfg, wl, *seeds)
		return
	}
	res, err := hostsim.Run(cfg, wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
	printResult(res)
	if *latBreak {
		fmt.Printf("\n--- per-packet latency breakdown ---\n%s", res.LatencyBreakdown.Format())
	}
	if *profileOut != "" {
		writeOutput("profile-out", *profileOut, res.WritePprof)
		fmt.Printf("\ncycle profile: %d stacks -> %s (go tool pprof -top %s)\n",
			len(res.CycleProfile), *profileOut, *profileOut)
	}
	if *foldedOut != "" {
		writeOutput("folded-out", *foldedOut, res.WriteFolded)
		fmt.Printf("folded stacks: %d -> %s (flamegraph.pl %s > flame.svg)\n",
			len(res.CycleProfile), *foldedOut, *foldedOut)
	}
	if *telemetryOut != "" {
		writeOutput("telemetry-out", *telemetryOut, func(w io.Writer) error {
			if strings.HasSuffix(*telemetryOut, ".jsonl") {
				return res.Timeline.WriteJSONL(w)
			}
			return res.Timeline.WriteCSV(w)
		})
		fmt.Printf("\ntelemetry: %d samples x %d metrics -> %s\n",
			res.Timeline.Len(), len(res.Timeline.Names), *telemetryOut)
	}
	if *pcapOut != "" {
		writeOutput("pcap-out", *pcapOut, res.WritePcap)
		total, truncated := 0, int64(0)
		for _, c := range res.PacketCaptures {
			total += c.Packets()
			truncated += c.Truncated()
		}
		fmt.Printf("\npcap: %d packets on %d interfaces -> %s (tshark -r %s)\n",
			total, len(res.PacketCaptures), *pcapOut, *pcapOut)
		if truncated > 0 {
			fmt.Printf("pcap: %d packets beyond the capture bound were dropped\n", truncated)
		}
	}
	if *probeOut != "" {
		writeOutput("probe-out", *probeOut, func(w io.Writer) error {
			if strings.HasSuffix(*probeOut, ".csv") {
				return res.WriteProbeCSV(w)
			}
			return res.WriteProbeJSONL(w)
		})
		fmt.Printf("tcp_probe: %d records -> %s\n", res.ProbeTrace.Len(), *probeOut)
	}
	if *ssOut != "" {
		writeOutput("ss-out", *ssOut, func(w io.Writer) error {
			if strings.HasSuffix(*ssOut, ".jsonl") {
				return res.SocketSnapshots.WriteJSONL(w)
			}
			return res.WriteSocketCSV(w)
		})
		fmt.Printf("ss snapshots: %d samples x %d metrics -> %s\n",
			res.SocketSnapshots.Len(), len(res.SocketSnapshots.Names), *ssOut)
	}
	if *tailReport != "" {
		if *tailReport == "-" {
			fmt.Printf("\n--- message tail-latency attribution ---\n%s", res.MessageLatency.Format())
		} else {
			writeOutput("tail-report", *tailReport, res.WriteTailReport)
			fmt.Printf("tail report: %d messages -> %s\n", res.MessageLatency.Count, *tailReport)
		}
	}
	if *mtraceOut != "" {
		writeOutput("mtrace-out", *mtraceOut, res.WriteSpans)
		fmt.Printf("message spans: %d traced, slowest %d -> %s (open in https://ui.perfetto.dev)\n",
			res.MessageLatency.Count, *slowest, *mtraceOut)
	}
	if *fabReport != "" {
		if *fabReport == "-" {
			fmt.Printf("\n--- fabric attribution ledger ---\n%s", res.FormatFabricReport())
		} else {
			writeOutput("fabric-report", *fabReport, func(w io.Writer) error {
				if strings.HasSuffix(*fabReport, ".jsonl") {
					return res.WriteFabricReportJSONL(w)
				}
				return res.WriteFabricReport(w)
			})
			fmt.Printf("fabric report: %d ports, %d bursts -> %s\n",
				len(res.PortReports), len(res.BurstEvents), *fabReport)
		}
	}
	if *fabTSOut != "" {
		writeOutput("fabric-ts-out", *fabTSOut, func(w io.Writer) error {
			if strings.HasSuffix(*fabTSOut, ".jsonl") {
				return res.FabricTimeline.WriteJSONL(w)
			}
			return res.FabricTimeline.WriteCSV(w)
		})
		fmt.Printf("fabric timeline: %d samples x %d metrics -> %s\n",
			res.FabricTimeline.Len(), len(res.FabricTimeline.Names), *fabTSOut)
	}
	if *fabTrace != "" {
		writeOutput("fabric-trace-out", *fabTrace, res.WriteFabricTrace)
		fmt.Printf("fabric trace: %d ports, %d bursts -> %s (open in https://ui.perfetto.dev)\n",
			len(res.PortReports), len(res.BurstEvents), *fabTrace)
	}
	if *traceOut != "" {
		writeOutput("trace-out", *traceOut, res.WriteChromeTrace)
		fmt.Printf("chrome trace: %d events -> %s (open in https://ui.perfetto.dev)\n",
			len(res.Trace), *traceOut)
		return // -trace-out implies -trace; skip the text dump
	}
	if len(res.Trace) > 0 {
		fmt.Printf("\n--- trace (last %d events) ---\n", len(res.Trace))
		for _, e := range res.Trace {
			fmt.Printf("%-12v %-8s core%-3d flow%-4d %-11s a=%d b=%d\n",
				e.At, e.Host, e.Core, e.Flow, e.Kind, e.A, e.B)
		}
	}
}

// writeOutput creates the file named by the -<flagName> flag and streams
// write into it, exiting with a uniform error message on failure.
func writeOutput(flagName, path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: -%s %s: %v\n", flagName, path, err)
		os.Exit(1)
	}
}

// runSeeds reports mean +/- stddev of the headline metrics over n seeds.
func runSeeds(cfg hostsim.Config, wl hostsim.Workload, n int) {
	type metric struct {
		name string
		get  func(*hostsim.Result) float64
	}
	metrics := []metric{
		{"throughput Gbps", func(r *hostsim.Result) float64 { return r.ThroughputGbps }},
		{"thpt-per-core Gbps", func(r *hostsim.Result) float64 { return r.ThroughputPerCoreGbps }},
		{"receiver miss %", func(r *hostsim.Result) float64 { return r.Receiver.CacheMissRate * 100 }},
		{"receiver copy %", func(r *hostsim.Result) float64 { return r.Receiver.Breakdown["data_copy"] * 100 }},
		{"receiver busy cores", func(r *hostsim.Result) float64 { return r.Receiver.BusyCores }},
		{"sender busy cores", func(r *hostsim.Result) float64 { return r.Sender.BusyCores }},
	}
	samples := make([][]float64, len(metrics))
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		res, err := hostsim.Run(c, wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		for j, m := range metrics {
			samples[j] = append(samples[j], m.get(res))
		}
	}
	fmt.Printf("over %d seeds (%d..%d):\n", n, cfg.Seed, cfg.Seed+int64(n)-1)
	for j, m := range metrics {
		mean, sd := meanSD(samples[j])
		fmt.Printf("  %-20s %10.2f +/- %.2f\n", m.name, mean, sd)
	}
}

func meanSD(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

func printResult(res *hostsim.Result) {
	fmt.Printf("window                 %v (simulated)\n", res.Duration)
	fmt.Printf("throughput             %.2f Gbps\n", res.ThroughputGbps)
	fmt.Printf("throughput-per-core    %.2f Gbps  (bottleneck: %s)\n",
		res.ThroughputPerCoreGbps, res.Bottleneck)
	if res.RPCCompleted > 0 {
		fmt.Printf("rpcs completed         %d (%.2f Gbps one-way)\n", res.RPCCompleted, res.RPCGbps)
	}
	if res.LongFlowGbps > 0 {
		fmt.Printf("long-flow goodput      %.2f Gbps\n", res.LongFlowGbps)
	}
	if res.Fabric != nil {
		fmt.Printf("fabric                 in %d  delivered %d  buf-drops %d  wire-drops %d  marked %d\n",
			res.Fabric.InFrames, res.Fabric.Delivered, res.Fabric.BufferDrops,
			res.Fabric.LossDrops, res.Fabric.Marked)
	}
	for _, side := range []struct {
		name string
		h    hostsim.HostStats
	}{{"sender", res.Sender}, {"receiver", res.Receiver}} {
		fmt.Printf("\n--- %s ---\n", side.name)
		fmt.Printf("busy cores             %.2f (max core %.0f%%)\n", side.h.BusyCores, side.h.MaxCoreUtil*100)
		fmt.Printf("cache miss rate        %.1f%%\n", side.h.CacheMissRate*100)
		fmt.Printf("NAPI->copy latency     avg %v  p99 %v\n",
			side.h.LatencyAvg.Round(time.Microsecond), side.h.LatencyP99.Round(time.Microsecond))
		fmt.Printf("post-GRO skb           avg %.1fKB  (64KB share %.0f%%)\n",
			side.h.SKBAvgBytes/1024, side.h.SKB64KBShare*100)
		fmt.Printf("retransmits %d  acks %d  nic-drops %d\n",
			side.h.Retransmits, side.h.AcksSent, side.h.NICDrops)
		fmt.Println("cpu breakdown:")
		type kv struct {
			k string
			v float64
		}
		var kvs []kv
		for k, v := range side.h.Breakdown {
			kvs = append(kvs, kv{k, v})
		}
		sort.Slice(kvs, func(i, j int) bool { return kvs[i].v > kvs[j].v })
		for _, e := range kvs {
			fmt.Printf("  %-10s %5.1f%%\n", e.k, e.v*100)
		}
	}
}
