// Command inspectcheck validates a pcapng file written by the simulator's
// wire-level inspector (netsim -pcap-out) using the in-repo reader: strict
// pcapng framing, Ethernet/IPv4/TCP decodability of every packet, and
// per-interface timestamp monotonicity. It prints a short summary and
// exits nonzero on any violation, making it usable as a CI smoke check.
//
// Usage: inspectcheck <capture.pcapng>
package main

import (
	"fmt"
	"os"

	"hostsim/internal/inspect"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: inspectcheck <capture.pcapng>")
		os.Exit(2)
	}
	path := os.Args[1]
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspectcheck:", err)
		os.Exit(1)
	}
	pc, err := inspect.ReadPcap(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspectcheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := pc.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "inspectcheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	perIface := make([]int, len(pc.Interfaces))
	var payload, acks, ce int
	for _, p := range pc.Packets {
		perIface[p.Interface]++
		if p.PayloadLen > 0 {
			payload += p.PayloadLen
		} else {
			acks++
		}
		if p.CE {
			ce++
		}
	}
	fmt.Printf("%s: valid pcapng, %d packets, %d interfaces\n", path, len(pc.Packets), len(pc.Interfaces))
	for i, iface := range pc.Interfaces {
		fmt.Printf("  if%d %-18q snaplen %-4d packets %d\n", i, iface.Name, iface.SnapLen, perIface[i])
	}
	fmt.Printf("  payload bytes %d, pure acks %d, CE-marked %d\n", payload, acks, ce)
}
