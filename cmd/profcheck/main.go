// Command profcheck validates a hostsim cycle profile written by
// `netsim -profile-out`: it decodes the gzipped profile.proto with the
// in-repo parser (profile.ParseData), checks the structural invariants
// the exporter guarantees, and prints a per-category cycle summary.
// Exit status is non-zero on any violation — CI uses it as the
// profile-golden smoke check.
//
// Usage: profcheck <profile.pb.gz>
package main

import (
	"fmt"
	"os"
	"sort"

	"hostsim/internal/profile"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: profcheck <profile.pb.gz>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	p, err := profile.ParseData(data)
	if err != nil {
		fail("parse: %v", err)
	}
	if len(p.SampleTypes) != 2 ||
		p.SampleTypes[0] != (profile.ParsedValueType{Type: "cycles", Unit: "count"}) ||
		p.SampleTypes[1] != (profile.ParsedValueType{Type: "time", Unit: "nanoseconds"}) {
		fail("unexpected sample types %v", p.SampleTypes)
	}
	if p.DefaultSampleType != "cycles" {
		fail("default sample type %q, want cycles", p.DefaultSampleType)
	}
	if len(p.Samples) == 0 {
		fail("profile has no samples")
	}
	byCat := map[string]int64{}
	var total int64
	for i, s := range p.Samples {
		// Stacks are host;ctx;category or host;ctx;category;class.
		if len(s.Stack) != 3 && len(s.Stack) != 4 {
			fail("sample %d has %d frames, want 3 or 4", i, len(s.Stack))
		}
		if s.Values[0] <= 0 {
			fail("sample %d has non-positive cycles %d", i, s.Values[0])
		}
		byCat[s.Stack[2]] += s.Values[0]
		total += s.Values[0]
	}
	fmt.Printf("%s: %d samples, %d cycles total\n", os.Args[1], len(p.Samples), total)
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return byCat[cats[i]] > byCat[cats[j]] })
	for _, c := range cats {
		fmt.Printf("  %-10s %14d cycles (%5.1f%%)\n", c, byCat[c], 100*float64(byCat[c])/float64(total))
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "profcheck: "+format+"\n", args...)
	os.Exit(1)
}
