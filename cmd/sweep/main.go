// Command sweep runs parameter sweeps over the simulator and emits CSV,
// for plotting the paper's sensitivity curves (Fig. 3e/3f style) or any
// custom exploration.
//
// Usage:
//
//	sweep -kind ring                 # ring size x rx buffer (Fig. 3e)
//	sweep -kind rxbuf                # rx buffer latency curve (Fig. 3f)
//	sweep -kind flows -pattern incast
//	sweep -kind loss
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"hostsim"
)

func main() {
	var (
		kind    = flag.String("kind", "ring", "sweep kind: ring, rxbuf, flows, loss")
		pattern = flag.String("pattern", "one-to-one", "pattern for the flows sweep")
		dur     = flag.Duration("dur", 25*time.Millisecond, "measurement window")
		warmup  = flag.Duration("warmup", 15*time.Millisecond, "warm-up")
		seed    = flag.Int64("seed", 7, "seed")
	)
	flag.Parse()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	cfg := func(s hostsim.Stack) hostsim.Config {
		return hostsim.Config{Stack: s, Warmup: *warmup, Duration: *dur, Seed: *seed}
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	switch *kind {
	case "ring":
		w.Write([]string{"rxbuf_kb", "ring", "thpt_gbps", "tpc_gbps", "miss_rate"})
		for _, bufKB := range []int64{0, 3200, 6400} {
			for _, ring := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
				s := hostsim.AllOptimizations()
				s.RcvBufBytes = bufKB << 10
				s.RxDescriptors = ring
				res, err := hostsim.Run(cfg(s), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
				if err != nil {
					fail(err)
				}
				w.Write([]string{
					strconv.FormatInt(bufKB, 10), strconv.Itoa(ring),
					f(res.ThroughputGbps), f(res.ThroughputPerCoreGbps),
					f(res.Receiver.CacheMissRate),
				})
			}
		}
	case "rxbuf":
		w.Write([]string{"rxbuf_kb", "thpt_gbps", "lat_avg_us", "lat_p99_us", "miss_rate"})
		for _, kb := range []int64{100, 200, 400, 800, 1600, 3200, 6400, 12800} {
			s := hostsim.AllOptimizations()
			s.RcvBufBytes = kb << 10
			res, err := hostsim.Run(cfg(s), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
			if err != nil {
				fail(err)
			}
			w.Write([]string{
				strconv.FormatInt(kb, 10), f(res.ThroughputGbps),
				f(float64(res.Receiver.LatencyAvg) / 1e3),
				f(float64(res.Receiver.LatencyP99) / 1e3),
				f(res.Receiver.CacheMissRate),
			})
		}
	case "flows":
		w.Write([]string{"flows", "thpt_gbps", "tpc_gbps", "miss_rate", "skb_avg_kb"})
		for _, n := range []int{1, 2, 4, 8, 12, 16, 20, 24} {
			wl := hostsim.LongFlowWorkload(hostsim.Pattern(*pattern), n)
			if n == 1 {
				wl = hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
			}
			res, err := hostsim.Run(cfg(hostsim.AllOptimizations()), wl)
			if err != nil {
				fail(err)
			}
			w.Write([]string{
				strconv.Itoa(n), f(res.ThroughputGbps), f(res.ThroughputPerCoreGbps),
				f(res.Receiver.CacheMissRate), f(res.Receiver.SKBAvgBytes / 1024),
			})
		}
	case "loss":
		w.Write([]string{"loss", "thpt_gbps", "tpc_gbps", "retransmits", "miss_rate"})
		for _, p := range []float64{0, 1e-5, 1e-4, 1.5e-4, 1e-3, 1.5e-3, 5e-3, 1.5e-2} {
			c := cfg(hostsim.AllOptimizations())
			c.LossRate = p
			res, err := hostsim.Run(c, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
			if err != nil {
				fail(err)
			}
			w.Write([]string{
				strconv.FormatFloat(p, 'g', -1, 64), f(res.ThroughputGbps),
				f(res.ThroughputPerCoreGbps), strconv.FormatInt(res.Sender.Retransmits, 10),
				f(res.Receiver.CacheMissRate),
			})
		}
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
