// Command sweep runs parameter sweeps over the simulator and emits CSV,
// for plotting the paper's sensitivity curves (Fig. 3e/3f style) or any
// custom exploration.
//
// Usage:
//
//	sweep -kind ring                 # ring size x rx buffer (Fig. 3e)
//	sweep -kind rxbuf                # rx buffer latency curve (Fig. 3f)
//	sweep -kind flows -pattern incast
//	sweep -kind loss
//	sweep -kind ring -jobs 1         # serial (default: all CPUs)
//
// The CSV on stdout is byte-identical at any -jobs value: grid points fan
// out across workers but rows are emitted in grid order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hostsim/internal/sweeps"
)

func main() {
	var (
		kind    = flag.String("kind", "ring", "sweep kind: ring, rxbuf, flows, loss")
		pattern = flag.String("pattern", "one-to-one", "pattern for the flows sweep")
		dur     = flag.Duration("dur", 25*time.Millisecond, "measurement window")
		warmup  = flag.Duration("warmup", 15*time.Millisecond, "warm-up")
		seed    = flag.Int64("seed", 7, "seed")
		jobs    = flag.Int("jobs", runtime.NumCPU(), "simulations run concurrently (1 = serial)")
	)
	flag.Parse()

	err := sweeps.Run(os.Stdout, sweeps.Params{
		Kind:     *kind,
		Pattern:  *pattern,
		Seed:     *seed,
		Warmup:   *warmup,
		Duration: *dur,
		Jobs:     *jobs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
