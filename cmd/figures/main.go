// Command figures regenerates the paper's evaluation figures and tables
// ("Understanding Host Network Stack Overheads", SIGCOMM 2021) from the
// hostsim simulator and prints them as text tables.
//
// Usage:
//
//	figures                 # regenerate everything, in paper order
//	figures -fig fig3a      # one figure
//	figures -only fig3a,fig4,table2   # a subset, in paper order
//	figures -list           # list available experiments
//	figures -dur 50ms       # longer measurement window
//	figures -jobs 1         # serial regeneration (default: all CPUs)
//	figures -check          # audit conservation laws during every run
//
// Output on stdout is byte-identical at any -jobs value: experiments fan
// out across workers but tables are printed in paper order, and each
// simulation is an isolated, seeded run. Timing goes to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hostsim/internal/figures"
)

func main() {
	var (
		fig    = flag.String("fig", "", "experiment id to run (empty = all)")
		only   = flag.String("only", "", "comma-separated experiment ids to run, in paper order (empty = all)")
		list   = flag.Bool("list", false, "list experiments and exit")
		dur    = flag.Duration("dur", 25*time.Millisecond, "measurement window (simulated)")
		warmup = flag.Duration("warmup", 15*time.Millisecond, "warm-up (simulated, excluded)")
		seed   = flag.Int64("seed", 7, "simulation seed")
		format = flag.String("format", "text", "output format: text, csv, markdown")
		jobs   = flag.Int("jobs", runtime.NumCPU(), "simulations run concurrently (1 = serial)")
		chk    = flag.Bool("check", false, "run every simulation with the conservation-law invariant checker armed")
	)
	flag.Parse()

	if *list {
		for _, e := range figures.All() {
			fmt.Printf("%-8s %s\n         paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	switch *format {
	case "text", "csv", "markdown", "md":
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown format %q\n", *format)
		os.Exit(2)
	}

	rc := figures.RunConfig{Seed: *seed, Warmup: *warmup, Duration: *dur, Jobs: *jobs, Check: *chk}
	exps := figures.All()
	if *fig != "" && *only != "" {
		fmt.Fprintln(os.Stderr, "figures: -fig and -only are mutually exclusive")
		os.Exit(2)
	}
	if *fig != "" {
		e, ok := figures.ByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q; valid ids: %s\n",
				*fig, strings.Join(figures.IDs(), " "))
			os.Exit(2)
		}
		exps = []figures.Experiment{e}
	}
	if *only != "" {
		want := map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			if id = strings.TrimSpace(id); id == "" {
				continue
			}
			if _, ok := figures.ByID(id); !ok {
				fmt.Fprintf(os.Stderr, "figures: unknown experiment %q in -only; valid ids: %s\n",
					id, strings.Join(figures.IDs(), " "))
				os.Exit(2)
			}
			want[id] = true
		}
		if len(want) == 0 {
			fmt.Fprintln(os.Stderr, "figures: -only selected no experiments")
			os.Exit(2)
		}
		var sel []figures.Experiment
		for _, e := range exps { // keep paper order regardless of list order
			if want[e.ID] {
				sel = append(sel, e)
			}
		}
		exps = sel
	}
	start := time.Now()
	tables, err := figures.RunAll(rc, exps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	for i, tbl := range tables {
		switch *format {
		case "text":
			fmt.Print(tbl.String())
			fmt.Printf("paper: %s\n\n", exps[i].Paper)
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", tbl.ID, tbl.Title, tbl.CSV())
		case "markdown", "md":
			fmt.Println(tbl.Markdown())
		}
	}
	fmt.Fprintf(os.Stderr, "figures: %d experiment(s) in %v (-jobs %d)\n",
		len(exps), time.Since(start).Round(time.Millisecond), *jobs)
}
