// Incast study: a storage- or aggregation-style fan-in where many sender
// cores stream to a single receiver core (§3.3 of the paper). Shows the
// receiver's L3/DDIO contention building with flow count and the
// accompanying throughput-per-core loss — the paper's argument for
// receiver-driven transports that bound the number of concurrent senders.
//
//	go run ./examples/incast
package main

import (
	"fmt"

	"hostsim"
)

func main() {
	fmt.Println("incast fan-in onto one receiver core (Fig. 6):")
	fmt.Printf("%8s  %14s  %12s  %10s  %12s\n",
		"flows", "tpc (Gbps)", "total", "miss", "rcv latency")
	var base float64
	for _, n := range []int{1, 2, 4, 8, 16, 24} {
		wl := hostsim.LongFlowWorkload(hostsim.PatternIncast, n)
		if n == 1 {
			wl = hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
		}
		res, err := hostsim.Run(hostsim.Config{Stack: hostsim.AllOptimizations(), Seed: 7}, wl)
		if err != nil {
			panic(err)
		}
		if n == 1 {
			base = res.ThroughputPerCoreGbps
		}
		fmt.Printf("%8d  %7.1f (%+.0f%%)  %12.1f  %9.0f%%  %12v\n",
			n, res.ThroughputPerCoreGbps,
			(res.ThroughputPerCoreGbps/base-1)*100,
			res.ThroughputGbps,
			res.Receiver.CacheMissRate*100,
			res.Receiver.LatencyAvg.Round(1000))
	}
	fmt.Println("\nflows sharing one L3 evict each other's DMAed data before the")
	fmt.Println("application copies it; per-byte copy cost rises and tpc falls.")
	fmt.Println("The sender-driven nature of TCP gives the receiver no control")
	fmt.Println("over this contention (the paper's case for receiver-driven")
	fmt.Println("protocols such as Homa/pHost).")
}
