// Tuning study: the paper's §3.1 cache-aware buffer sizing (Figs. 3e/3f).
// Linux's receive-buffer autotuning maximises throughput as if memory were
// uniform, but with DDIO the L3's DCA-eligible slice (~3MB here) is the
// real working budget: buffers past it evict DMAed data before the copy,
// and buffers below it starve the pipe. This walkthrough finds the knee
// and shows what the default autotuning leaves on the table.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"time"

	"hostsim"
)

func main() {
	fmt.Println("single flow: TCP Rx buffer sweep (ring = 256 descriptors)")
	fmt.Printf("%12s  %10s  %8s  %14s\n", "rx-buffer", "thpt Gbps", "miss", "NAPI->copy avg")
	type point struct {
		kb   int64
		thpt float64
	}
	var best point
	for _, kb := range []int64{400, 800, 1600, 3200, 6400, 12800} {
		s := hostsim.AllOptimizations()
		s.RcvBufBytes = kb << 10
		s.RxDescriptors = 256
		res, err := hostsim.Run(hostsim.Config{Stack: s, Seed: 7}, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			panic(err)
		}
		if res.ThroughputGbps > best.thpt {
			best = point{kb, res.ThroughputGbps}
		}
		fmt.Printf("%10dKB  %10.2f  %7.0f%%  %14v\n",
			kb, res.ThroughputGbps, res.Receiver.CacheMissRate*100,
			res.Receiver.LatencyAvg.Round(time.Microsecond))
	}

	def, err := hostsim.Run(hostsim.Config{Stack: hostsim.AllOptimizations(), Seed: 7},
		hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ndefault autotuning:  %.2f Gbps at %.0f%% miss\n",
		def.ThroughputGbps, def.Receiver.CacheMissRate*100)
	fmt.Printf("tuned (%dKB):       %.2f Gbps  (%+.0f%% over autotuning)\n",
		best.kb, best.thpt, (best.thpt/def.ThroughputGbps-1)*100)

	fmt.Println("\nand the ring size matters at the tuned buffer (descriptor-count")
	fmt.Println("cache hazard, Fig. 3e):")
	for _, ring := range []int{128, 1024, 8192} {
		s := hostsim.AllOptimizations()
		s.RcvBufBytes = best.kb << 10
		s.RxDescriptors = ring
		res, err := hostsim.Run(hostsim.Config{Stack: s, Seed: 7}, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			panic(err)
		}
		fmt.Printf("  ring %5d: %6.2f Gbps, %3.0f%% miss\n",
			ring, res.ThroughputGbps, res.Receiver.CacheMissRate*100)
	}
	fmt.Println("\nthe paper's takeaway: window sizing must account for L3/DCA capacity,")
	fmt.Println("not just latency and throughput — autotuning overshoots the cache.")
}
