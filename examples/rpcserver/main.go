// RPC server study: a key-value-store-style workload of ping-pong RPCs
// from 16 client cores into one server core (§3.7 of the paper). Sweeps
// the RPC size to show where the bottleneck shifts from per-packet
// protocol processing (+scheduling) to data copy, and why NUMA placement
// stops mattering for small RPCs.
//
//	go run ./examples/rpcserver
package main

import (
	"fmt"

	"hostsim"
)

func main() {
	cfg := hostsim.Config{Stack: hostsim.AllOptimizations(), Seed: 7}

	fmt.Println("16:1 ping-pong RPCs into one server core (Fig. 10):")
	fmt.Printf("%8s  %12s  %10s  %8s  %8s  %8s\n",
		"size", "RPCs/sec", "tpc Gbps", "copy%", "tcp%", "sched%")
	for _, size := range []int64{4096, 16384, 32768, 65536} {
		res, err := hostsim.Run(cfg, hostsim.RPCIncastWorkload(16, size))
		if err != nil {
			panic(err)
		}
		bd := res.Receiver.Breakdown
		fmt.Printf("%6dKB  %12.0f  %10.2f  %7.1f%%  %7.1f%%  %7.1f%%\n",
			size>>10,
			float64(res.RPCCompleted)/res.Duration.Seconds(),
			res.RPCGbps/res.Receiver.BusyCores,
			bd["data_copy"]*100, bd["tcp/ip"]*100, bd["sched"]*100)
	}

	fmt.Println("\nNUMA placement sensitivity at 4KB vs a long flow:")
	rows := []struct {
		name   string
		wl     hostsim.Workload
		metric func(*hostsim.Result) float64
	}{
		{"long flow", hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
			func(r *hostsim.Result) float64 { return r.ThroughputPerCoreGbps }},
		{"4KB RPCs", hostsim.RPCIncastWorkload(16, 4096),
			func(r *hostsim.Result) float64 { return r.RPCGbps / r.Receiver.BusyCores }},
	}
	for _, row := range rows {
		local, err := hostsim.Run(cfg, row.wl)
		if err != nil {
			panic(err)
		}
		wl := row.wl
		wl.RemoteNUMA = true
		remote, err := hostsim.Run(cfg, wl)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-10s local %6.2f Gbps -> remote %6.2f Gbps (%+.0f%%)\n",
			row.name, row.metric(local), row.metric(remote),
			(row.metric(remote)/row.metric(local)-1)*100)
	}
	fmt.Println("\nsmall RPCs barely feel remote NUMA (copy is not their bottleneck),")
	fmt.Println("so short-flow services can yield the NIC-local node to long flows.")
}
