// Quickstart: simulate the paper's headline experiment — one TCP flow
// between two 100Gbps hosts with every stack optimization enabled — and
// print where the CPU cycles go.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"hostsim"
)

func main() {
	res, err := hostsim.Run(
		hostsim.Config{Stack: hostsim.AllOptimizations(), Seed: 1},
		hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
	)
	if err != nil {
		panic(err)
	}

	fmt.Printf("single flow, all optimizations (TSO/GRO + jumbo + aRFS + DDIO):\n\n")
	fmt.Printf("  throughput-per-core: %.1f Gbps   (paper: ~42 Gbps)\n", res.ThroughputPerCoreGbps)
	fmt.Printf("  bottleneck:          %s      (paper: receiver)\n", res.Bottleneck)
	fmt.Printf("  receiver cache miss: %.0f%%           (paper: ~49%%)\n\n", res.Receiver.CacheMissRate*100)

	fmt.Println("  receiver CPU breakdown (Table-1 taxonomy):")
	type kv struct {
		cat string
		f   float64
	}
	var kvs []kv
	for cat, f := range res.Receiver.Breakdown {
		kvs = append(kvs, kv{cat, f})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].f > kvs[j].f })
	for _, e := range kvs {
		bar := ""
		for i := 0; i < int(e.f*60); i++ {
			bar += "#"
		}
		fmt.Printf("    %-10s %5.1f%%  %s\n", e.cat, e.f*100, bar)
	}
	fmt.Println("\n  data copy dominates: the paper's core finding reproduced.")
}
