// Mixed-flow study: colocating a bandwidth-hungry long flow with
// latency-sensitive RPC traffic on the same core (§3.7, Fig. 11 of the
// paper) — the everyday reality of a microservice box that also takes
// backups. Quantifies how much both classes lose and why the paper argues
// for class-segregated core allocation.
//
//	go run ./examples/mixedflows
package main

import (
	"fmt"

	"hostsim"
)

func main() {
	cfg := hostsim.Config{Stack: hostsim.AllOptimizations(), Seed: 7}

	// Isolation baselines.
	longAlone, err := hostsim.Run(cfg, hostsim.MixedWorkload(0, 4096))
	if err != nil {
		panic(err)
	}
	rpcAlone, err := hostsim.Run(cfg, hostsim.RPCIncastWorkload(16, 4096))
	if err != nil {
		panic(err)
	}
	fmt.Println("isolation baselines (one core each side):")
	fmt.Printf("  long flow alone:  %6.2f Gbps\n", longAlone.LongFlowGbps)
	fmt.Printf("  16 x 4KB RPCs:    %6.2f Gbps one-way\n\n", rpcAlone.RPCGbps)

	fmt.Println("colocating the long flow with n short flows on the same core:")
	fmt.Printf("%8s  %10s  %12s  %12s  %8s\n", "shorts", "tpc Gbps", "long Gbps", "rpc Gbps", "sched%")
	for _, n := range []int{0, 1, 4, 16} {
		res, err := hostsim.Run(cfg, hostsim.MixedWorkload(n, 4096))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%8d  %10.2f  %12.2f  %12.2f  %7.1f%%\n",
			n, res.ThroughputPerCoreGbps, res.LongFlowGbps, res.RPCGbps,
			res.Receiver.Breakdown["sched"]*100)
	}

	mixed, err := hostsim.Run(cfg, hostsim.MixedWorkload(16, 4096))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nwith 16 shorts: long flow keeps %.0f%% of its isolated rate,\n",
		100*mixed.LongFlowGbps/longAlone.LongFlowGbps)
	fmt.Printf("shorts keep %.0f%% of theirs — both classes lose (paper: 48%% and 42%% losses).\n",
		100*mixed.RPCGbps/rpcAlone.RPCGbps)
	fmt.Println("CPU-efficient stacks should not mix long and short flows on a core.")
}
