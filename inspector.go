package hostsim

import (
	"fmt"

	"hostsim/internal/core"
	"hostsim/internal/inspect"
	"hostsim/internal/sim"
	"hostsim/internal/telemetry"
	"hostsim/internal/wire"
)

// linkTap is one tappable link direction: the direct link's two
// directions, or one fabric egress port per host.
type linkTap struct {
	name string
	link *wire.Link
}

// inspector bundles the run's attached wire-level observers (see
// Config.Inspect) until assemble hands them to the Result.
type inspector struct {
	captures []*inspect.Capture
	probes   *inspect.ProbeTrace
	sampler  *telemetry.Sampler
}

// attachInspector installs the requested observers: packet taps on every
// link direction, tcp_probe hooks on every connection, and an ss-style
// snapshot sampler over a dedicated registry (independent of
// Config.Telemetry, so the two can coexist without name clashes). Must run
// after the workload built its connections and before the warmup run.
// Returns nil when o is nil.
func attachInspector(o *InspectOptions, eng *sim.Engine, hosts []*core.Host, taps []linkTap) (*inspector, error) {
	if o == nil {
		return nil, nil
	}
	if o.SnapLen < 0 || o.MaxPackets < 0 || o.MaxProbeEvents < 0 || o.SSMaxSamples < 0 {
		return nil, fmt.Errorf("hostsim: negative Inspect bound")
	}
	if o.SSInterval < 0 {
		return nil, fmt.Errorf("hostsim: negative Inspect.SSInterval")
	}
	pcap, probe, ss := o.Pcap, o.Probe, o.SS
	if !pcap && !probe && !ss {
		pcap, probe, ss = true, true, true
	}
	insp := &inspector{}
	if pcap {
		for i, tp := range taps {
			cap := inspect.NewCapture(eng, tp.name, i, o.SnapLen, o.MaxPackets)
			tp.link.SetTap(cap.Tap())
			insp.captures = append(insp.captures, cap)
		}
	}
	if probe {
		insp.probes = inspect.NewProbeTrace(o.MaxProbeEvents)
		for _, h := range hosts {
			hook := insp.probes.Hook(h.Name())
			h.ForEachEndpoint(func(ep *core.Endpoint) { ep.Conn().AddProbe(hook) })
		}
	}
	if ss {
		interval := o.SSInterval
		if interval == 0 {
			interval = inspect.DefaultSSInterval
		}
		maxSamples := o.SSMaxSamples
		if maxSamples == 0 {
			maxSamples = inspect.DefaultSSMaxSamples
		}
		reg := telemetry.NewRegistry()
		for _, h := range hosts {
			h.RegisterInspect(reg)
		}
		// The passive RTT monitor rides the same probe events the
		// congestion trace consumes (no new emit sites in TCP) and
		// publishes per-flow RTT gauges into the snapshot registry, so
		// `ss`-style samples carry a continuous front-door delay signal.
		rtt := inspect.NewRTTMonitor()
		for _, h := range hosts {
			name := h.Name()
			h.ForEachEndpoint(func(ep *core.Endpoint) {
				flow := ep.TxFlow()
				prefix := fmt.Sprintf("%s/flow%03d/", name, flow)
				ep.Conn().AddProbe(rtt.Watch(reg, prefix, flow))
			})
		}
		insp.sampler = telemetry.NewSampler(eng, reg, interval, maxSamples)
		// Sample from t=0: unlike the measurement timeline, socket
		// snapshots deliberately cover warmup, where slow start lives.
		insp.sampler.Start(0)
	}
	return insp, nil
}

// attach moves the inspector's collected artifacts onto the Result.
func (i *inspector) attach(res *Result) {
	res.PacketCaptures = i.captures
	res.ProbeTrace = i.probes
	if i.sampler != nil {
		res.SocketSnapshots = i.sampler.Timeline()
	}
}
