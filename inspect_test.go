package hostsim_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hostsim"
	"hostsim/internal/inspect"
)

// inspectCfg is a short lossy run with the full inspector armed.
func inspectCfg(seed int64) hostsim.Config {
	cfg := shortCfg(seed)
	cfg.LossRate = 0.01
	cfg.Inspect = &hostsim.InspectOptions{}
	return cfg
}

// TestInspectArtifacts round-trips the packet capture through the pcapng
// writer and reader and checks every decoded packet against the in-memory
// record it came from.
func TestInspectArtifacts(t *testing.T) {
	res, err := hostsim.Run(inspectCfg(3), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PacketCaptures) != 2 {
		t.Fatalf("got %d captures, want 2", len(res.PacketCaptures))
	}
	if res.ProbeTrace == nil || res.ProbeTrace.Len() == 0 {
		t.Fatal("probe trace empty")
	}
	if res.SocketSnapshots == nil || res.SocketSnapshots.Len() == 0 {
		t.Fatal("socket snapshots empty")
	}

	var buf bytes.Buffer
	if err := res.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := inspect.ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Interfaces) != 2 {
		t.Fatalf("got %d interfaces, want 2", len(f.Interfaces))
	}
	if f.Interfaces[0].Name != "sender->receiver" || f.Interfaces[1].Name != "receiver->sender" {
		t.Fatalf("unexpected interface names %q, %q", f.Interfaces[0].Name, f.Interfaces[1].Name)
	}

	// Re-bucket the merged stream per interface and compare field by field
	// with the capture records.
	next := []int{0, 0}
	for i, p := range f.Packets {
		cap := res.PacketCaptures[p.Interface]
		recs := cap.Records()
		if next[p.Interface] >= len(recs) {
			t.Fatalf("packet %d: interface %d has more packets than records", i, p.Interface)
		}
		rec := recs[next[p.Interface]]
		next[p.Interface]++
		if p.At != rec.At {
			t.Fatalf("packet %d: time %d != record %d", i, p.At, rec.At)
		}
		if p.Seq != uint32(rec.Seq) {
			t.Fatalf("packet %d: seq %d != record %d", i, p.Seq, uint32(rec.Seq))
		}
		if got, want := p.PayloadLen, int(rec.Len); got != want {
			t.Fatalf("packet %d: payload %d != record %d", i, got, want)
		}
		if p.CE != rec.CE {
			t.Fatalf("packet %d: CE %v != record %v", i, p.CE, rec.CE)
		}
		if p.Flags&inspect.FlagACK == 0 {
			t.Fatalf("packet %d: ACK flag missing", i)
		}
		if wantPSH := !rec.Ack && rec.Len > 0; (p.Flags&inspect.FlagPSH != 0) != wantPSH {
			t.Fatalf("packet %d: PSH flag %v, want %v", i, p.Flags&inspect.FlagPSH != 0, wantPSH)
		}
		if rec.Ack {
			if p.AckNum != uint32(rec.Cum) {
				t.Fatalf("packet %d: ack %d != record %d", i, p.AckNum, uint32(rec.Cum))
			}
			if (p.Flags&inspect.FlagECE != 0) != rec.ECNEcho {
				t.Fatalf("packet %d: ECE flag %v, want %v", i, p.Flags&inspect.FlagECE != 0, rec.ECNEcho)
			}
			if len(rec.SACK) > 0 {
				if len(p.SACK) != 1 || p.SACK[0].Start != int64(uint32(rec.SACK[0].Start)) {
					t.Fatalf("packet %d: SACK %v does not reflect record %v", i, p.SACK, rec.SACK)
				}
			}
		}
		// Addressing must be direction-coherent so Wireshark can follow
		// the stream: interface 0 carries 10.0.0.1 -> 10.0.0.2.
		srcA := p.SrcIP == 0x0A000001
		if srcA != (p.Interface == 0) {
			t.Fatalf("packet %d: source IP %08x on interface %d", i, p.SrcIP, p.Interface)
		}
	}
	for ifc, n := range next {
		if got := res.PacketCaptures[ifc].Packets(); n != got {
			t.Fatalf("interface %d: decoded %d packets, capture has %d", ifc, n, got)
		}
	}
}

// TestRTTMonitor checks the passive per-flow RTT monitor: the ss-style
// snapshots must carry the rtt_*_ns columns for every transmitting flow,
// the probe-hook chaining must leave the congestion trace intact (both
// consumers ride the same ACK events), and the folded statistics must be
// internally coherent.
func TestRTTMonitor(t *testing.T) {
	res, err := hostsim.Run(inspectCfg(5), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbeTrace == nil || res.ProbeTrace.Len() == 0 {
		t.Fatal("probe trace empty: RTT monitor must chain with, not replace, the probe consumer")
	}
	ss := res.SocketSnapshots
	last := func(col string) float64 {
		t.Helper()
		vals, ok := ss.Column("sender/flow001/" + col)
		if !ok {
			t.Fatalf("snapshots missing column sender/flow001/%s", col)
		}
		return vals[len(vals)-1]
	}
	samples := last("rtt_samples")
	if samples <= 0 {
		t.Fatalf("no RTT samples folded in (rtt_samples %v)", samples)
	}
	lastRTT, min, mean := last("rtt_last_ns"), last("rtt_min_ns"), last("rtt_mean_ns")
	p50, p99 := last("rtt_p50_ns"), last("rtt_p99_ns")
	if lastRTT <= 0 || min <= 0 {
		t.Fatalf("non-positive RTT gauges: last %v min %v", lastRTT, min)
	}
	if p99 < p50 || mean < min {
		t.Fatalf("incoherent RTT statistics: min %v mean %v p50 %v p99 %v", min, mean, p50, p99)
	}
	// The passive signal must agree with TCP's own terminal estimate to
	// within histogram bucketing: the last sample is the final SRTT.
	srtt := float64(res.Flows[0].SRTT.Nanoseconds())
	if srtt > 0 && (lastRTT < srtt/2 || lastRTT > srtt*2) {
		t.Errorf("last passive RTT %vns far from terminal SRTT %vns", lastRTT, srtt)
	}
}

// TestInspectTransparencyChecked arms the conservation-law checker and the
// full inspector together and requires the run to be indistinguishable —
// throughput, cycle breakdowns, per-flow stats — from a checked run
// without inspection.
func TestInspectTransparencyChecked(t *testing.T) {
	wl := hostsim.LongFlowWorkload(hostsim.PatternOneToOne, 2)
	base := shortCfg(5)
	base.LossRate = 0.01
	base.Check = &hostsim.CheckOptions{Collect: true}

	plain, err := hostsim.Run(base, wl)
	if err != nil {
		t.Fatal(err)
	}
	inspected := base
	inspected.Inspect = &hostsim.InspectOptions{}
	insp, err := hostsim.Run(inspected, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(insp.Violations) != 0 {
		t.Fatalf("inspected run violated invariants: %v", insp.Violations[0])
	}
	if plain.ThroughputGbps != insp.ThroughputGbps {
		t.Fatalf("throughput diverged: %v vs %v", plain.ThroughputGbps, insp.ThroughputGbps)
	}
	if !reflect.DeepEqual(plain.FlowGbps, insp.FlowGbps) {
		t.Fatalf("per-flow goodput diverged: %v vs %v", plain.FlowGbps, insp.FlowGbps)
	}
	if !reflect.DeepEqual(plain.Flows, insp.Flows) {
		t.Fatalf("terminal flow stats diverged:\n%v\nvs\n%v", plain.Flows, insp.Flows)
	}
	if !reflect.DeepEqual(plain.Sender.BreakdownCycles, insp.Sender.BreakdownCycles) {
		t.Fatalf("sender cycle breakdown diverged:\n%v\nvs\n%v",
			plain.Sender.BreakdownCycles, insp.Sender.BreakdownCycles)
	}
	if !reflect.DeepEqual(plain.Receiver.BreakdownCycles, insp.Receiver.BreakdownCycles) {
		t.Fatalf("receiver cycle breakdown diverged:\n%v\nvs\n%v",
			plain.Receiver.BreakdownCycles, insp.Receiver.BreakdownCycles)
	}
	if insp.ProbeTrace.Len() == 0 {
		t.Fatal("probe trace empty")
	}
}

// serializeInspect renders every inspector artifact of a run to bytes.
func serializeInspect(t *testing.T, res *hostsim.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteProbeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteSocketCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestInspectDeterminism requires capture artifacts from a parallel batch
// to be byte-identical to a serial one.
func TestInspectDeterminism(t *testing.T) {
	var jobs []hostsim.Job
	for seed := int64(1); seed <= 3; seed++ {
		jobs = append(jobs, hostsim.Job{
			Config:   inspectCfg(seed),
			Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
		})
	}
	serial, err := hostsim.RunMany(jobs, hostsim.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := hostsim.RunMany(jobs, hostsim.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		a := serializeInspect(t, serial[i])
		b := serializeInspect(t, parallel[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("job %d: inspect artifacts differ between -jobs=1 and -jobs=8", i)
		}
	}
}

// probeGoldenCfg is the Fig. 3a-style scenario behind the golden traces: a
// single flow on a slow lossy link, so slow start, fast retransmits and
// congestion avoidance all fit in a small file.
func probeGoldenCfg(cc string) hostsim.Config {
	return hostsim.Config{
		Stack:    func() hostsim.Stack { s := hostsim.AllOptimizations(); s.CC = cc; return s }(),
		LinkGbps: 10,
		LossRate: 0.02,
		Seed:     3,
		Warmup:   time.Millisecond,
		Duration: 2 * time.Millisecond,
		Inspect:  &hostsim.InspectOptions{Probe: true},
	}
}

// TestProbeGolden pins the tcp_probe trace of a deterministic reno-vs-cubic
// scenario against golden CSVs (regenerate with `go test -run ProbeGolden
// -update`), and asserts the cwnd shape: monotone growth through slow
// start, at least one fast retransmit, and a cut afterwards.
func TestProbeGolden(t *testing.T) {
	for _, cc := range []string{"reno", "cubic"} {
		t.Run(cc, func(t *testing.T) {
			res, err := hostsim.Run(probeGoldenCfg(cc), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.WriteProbeCSV(&buf); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "golden", fmt.Sprintf("probe_%s.csv", cc))
			if *updateGolden {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("probe trace differs from %s (run with -update to regenerate)", golden)
			}

			recs := res.ProbeTrace.Records()
			firstLoss := -1
			for i, r := range recs {
				if r.Host == "sender" && r.Kind.String() == "fast-retransmit" {
					firstLoss = i
					break
				}
			}
			if firstLoss < 0 {
				t.Fatal("no fast retransmit in a 2% loss run")
			}
			var maxBefore int64
			for _, r := range recs[:firstLoss] {
				if r.Host != "sender" || r.Kind.String() != "ack" {
					continue
				}
				if r.Cwnd < maxBefore {
					t.Fatalf("cwnd shrank to %d during loss-free slow start (max %d)", r.Cwnd, maxBefore)
				}
				maxBefore = r.Cwnd
			}
			for _, r := range recs[firstLoss:] {
				if r.Host != "sender" || r.Kind.String() != "ack" {
					continue
				}
				if r.Cwnd >= maxBefore {
					t.Fatalf("first post-loss cwnd sample %d not below pre-loss max %d", r.Cwnd, maxBefore)
				}
				if r.Ssthresh >= maxBefore*4 {
					t.Fatalf("post-loss ssthresh %d still at its initial huge value", r.Ssthresh)
				}
				break
			}
		})
	}
}

// TestFlowStatsAlwaysOn checks the zero-config satellite: every run
// reports terminal per-flow TCP stats, and they reconcile with the host
// aggregates.
func TestFlowStatsAlwaysOn(t *testing.T) {
	cfg := shortCfg(2)
	cfg.LossRate = 0.01
	res, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketCaptures != nil || res.ProbeTrace != nil || res.SocketSnapshots != nil {
		t.Fatal("inspection artifacts present without Config.Inspect")
	}
	if len(res.Flows) == 0 {
		t.Fatal("Flows not populated on a plain run")
	}
	sums := map[string]int64{}
	for _, fl := range res.Flows {
		if fl.CC != "cubic" {
			t.Fatalf("flow %d reports CC %q, want cubic", fl.Flow, fl.CC)
		}
		if fl.Host == "sender" && fl.SentBytes == 0 {
			t.Fatalf("sender flow %d reports zero sent bytes", fl.Flow)
		}
		sums[fl.Host] += fl.Retransmits
	}
	if sums["sender"] != res.Sender.Retransmits {
		t.Fatalf("sender flow retransmits sum %d != host stat %d", sums["sender"], res.Sender.Retransmits)
	}
	if sums["sender"] == 0 {
		t.Fatal("no retransmits recorded in a lossy run")
	}
	if fl := res.Flows[0]; fl.SRTT <= 0 || fl.Cwnd <= 0 {
		t.Fatalf("flow 0 terminal state not populated: %+v", fl)
	}
}
