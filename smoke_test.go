package hostsim

import (
	"testing"
	"time"
)

// TestSmokeSingleFlow drives the full pipeline end to end once and prints
// the headline metrics; the calibration tests pin the exact bands.
func TestSmokeSingleFlow(t *testing.T) {
	res, err := Run(Config{Stack: AllOptimizations(), Seed: 1,
		Warmup: 10 * time.Millisecond, Duration: 20 * time.Millisecond},
		LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("throughput          %.2f Gbps", res.ThroughputGbps)
	t.Logf("throughput-per-core %.2f Gbps (bottleneck %s)", res.ThroughputPerCoreGbps, res.Bottleneck)
	t.Logf("sender busy %.2f cores / receiver busy %.2f cores", res.Sender.BusyCores, res.Receiver.BusyCores)
	t.Logf("receiver breakdown  %v", res.Receiver.Breakdown)
	t.Logf("sender breakdown    %v", res.Sender.Breakdown)
	t.Logf("cache miss          %.1f%%", res.Receiver.CacheMissRate*100)
	t.Logf("latency avg %v p99 %v", res.Receiver.LatencyAvg, res.Receiver.LatencyP99)
	t.Logf("skb avg %.1fKB, 64KB share %.2f", res.Receiver.SKBAvgBytes/1024, res.Receiver.SKB64KBShare)
	t.Logf("retransmits %d, acks %d, drops %d", res.Sender.Retransmits, res.Receiver.AcksSent, res.Receiver.NICDrops)
	if res.ThroughputGbps <= 1 {
		t.Fatalf("single flow moved almost no data: %.2f Gbps", res.ThroughputGbps)
	}
}
