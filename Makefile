GO ?= go

.PHONY: all build test check fmt vet race bench bench-runner bench-profile bench-inspect bench-mtrace bench-engine bench-fabric bench-fabricobs profile-smoke inspect-smoke mtrace-smoke engine-smoke fuzz-smoke fabric-smoke fabricobs-smoke figures figures-golden validate validate-smoke validate-sensitivity

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: formatting, static analysis, and the full test
# suite under the race detector.
check: fmt vet race

bench: bench-runner
	$(GO) test -bench . -benchmem ./...

# bench-runner captures the parallel-runner and pooled hot-path benchmarks
# (BenchmarkRunMany*, timer reset, pooled schedule/GRO) as JSON for
# regression tracking.
bench-runner:
	$(GO) test -run '^$$' -bench 'RunMany|TimerReset|ScheduleFirePooled|GROPooled' \
		-benchmem -json . ./internal/sim ./internal/skb > BENCH_runner.json

# bench-profile records the profiler's end-to-end overhead (profiler off
# vs on for the same run) plus the exec-layer charge-path microbenchmarks
# as JSON for regression tracking.
bench-profile:
	$(GO) test -run '^$$' -bench 'ProfileOff|ProfileOn|SoftirqNilChargeLog|SoftirqWithChargeLog' \
		-benchmem -json . ./internal/exec > BENCH_profile.json

# bench-inspect records the wire-level inspector's end-to-end overhead
# (inspector off vs on for the same run) as JSON for regression tracking.
bench-inspect:
	$(GO) test -run '^$$' -bench 'InspectOff|InspectOn' \
		-benchmem -json . > BENCH_inspect.json

# bench-mtrace records the message tracer's end-to-end overhead (tracer
# off vs on for the same run) as JSON for regression tracking.
bench-mtrace:
	$(GO) test -run '^$$' -bench 'MsgTraceOff|MsgTraceOn' \
		-benchmem -json . > BENCH_mtrace.json

# bench-engine records the event-scheduler benchmarks as JSON for
# regression tracking: end-to-end wheel-vs-heap pairs over three timer
# profiles (bulk flow, RPC incast, lossy mixed) plus the scheduler
# microbenchmarks and the allocation-purge headline number
# (RunMsgTraceOff). Compare captures with `go run ./cmd/benchdiff`.
bench-engine:
	$(GO) test -run '^$$' -bench 'Engine|RunMsgTraceOff' \
		-benchmem -json . ./internal/sim > BENCH_engine.json

# bench-fabric records the switch-fabric topology benchmarks as JSON for
# regression tracking: the 2-host fabric vs direct-link overhead pair
# (RunCheckOff is the direct baseline of the same scenario), incast
# scaling at 16 and 64 hosts, all-to-all port pressure, and the
# shared-buffer admission cost. Compare captures with
# `go run ./cmd/benchdiff -threshold <pct> BENCH_fabric.json <new>`.
bench-fabric:
	$(GO) test -run '^$$' -bench 'FabricRun|RunCheckOff' \
		-benchmem -json . > BENCH_fabric.json

# bench-fabricobs records the fabric observatory's end-to-end overhead
# (observatory off vs on for the same buffered 15:1 incast) as JSON for
# regression tracking. The off run's only residue is a nil-observer test
# per forwarded frame and a nil-tap test per egress event; the pair must
# stay within noise of each other. Compare captures with
# `go run ./cmd/benchdiff BENCH_fabricobs.json <new>`.
bench-fabricobs:
	$(GO) test -run '^$$' -bench 'FabricObsOff|FabricObsOn' \
		-benchmem -json . > BENCH_fabricobs.json

# profile-smoke is the CI profile-golden check: run netsim with profiling
# enabled and validate the emitted profile.proto with the in-repo parser.
profile-smoke:
	$(GO) run ./cmd/netsim -dur 3ms -warmup 3ms -profile-out /tmp/hostsim-smoke.pb.gz \
		-folded-out /tmp/hostsim-smoke.folded -latency-breakdown > /dev/null
	$(GO) run ./cmd/profcheck /tmp/hostsim-smoke.pb.gz

# inspect-smoke is the CI wire-inspector check: run netsim with all three
# exporters and validate the emitted pcapng with the in-repo reader.
inspect-smoke:
	$(GO) run ./cmd/netsim -dur 3ms -warmup 3ms -loss 0.01 \
		-pcap-out /tmp/hostsim-smoke.pcapng -probe-out /tmp/hostsim-smoke.probe.jsonl \
		-ss-out /tmp/hostsim-smoke.ss.csv > /dev/null
	$(GO) run ./cmd/inspectcheck /tmp/hostsim-smoke.pcapng
	test -s /tmp/hostsim-smoke.probe.jsonl && test -s /tmp/hostsim-smoke.ss.csv

# mtrace-smoke is the CI message-tracing check: run netsim on the golden
# lossy RPC scenario with both mtrace exporters and validate the span
# telescoping and the report shape with the in-repo checker.
mtrace-smoke:
	$(GO) run ./cmd/netsim -workload rpc -rpcclients 8 -rpcsize 65536 \
		-loss 0.01 -warmup 2ms -dur 20ms -seed 7 \
		-mtrace-out /tmp/hostsim-smoke.spans.json \
		-tail-report /tmp/hostsim-smoke.tail.txt > /dev/null
	$(GO) run ./cmd/tailcheck /tmp/hostsim-smoke.spans.json /tmp/hostsim-smoke.tail.txt

# engine-smoke is the CI scheduler-equivalence gate: the shared
# Stop/Reset edge-case table and the randomized wheel-vs-heap
# differential tests under the race detector, plus the end-to-end
# result-equivalence and allocation-budget checks at the API surface.
engine-smoke:
	$(GO) test -race -run 'TimerEdgeCases|SchedulerEquivalence' ./internal/sim
	$(GO) test -race -run 'SchedulerResultEquivalence|RunUnknownScheduler|RunAllocationBudget' .

# fuzz-smoke is the CI fuzz gate: a short coverage-guided walk of the
# configuration space with the conservation-law checker as the oracle.
# Run `go test -fuzz=FuzzConfig .` (no -fuzztime) to hunt open-ended.
fuzz-smoke:
	$(GO) test -fuzz=FuzzConfig -fuzztime=30s -run FuzzConfig .

# fabric-smoke is the CI switch-fabric gate: the fabric package's unit
# tests plus the checker-armed 16-host incast and the fabric-vs-direct
# byte-identity property, all under the race detector.
fabric-smoke:
	$(GO) test -race -count=1 ./internal/fabric
	$(GO) test -race -count=1 -run 'TestFabricIncast16Checked|TestFabricIncastN1MatchesDirect|TestFabricSharedBufferDropsAndECN' .

# fabricobs-smoke is the CI fabric-observability gate: the observatory's
# unit tests and the root transparency/reconciliation properties under
# the race detector, then an end-to-end netsim run emitting all three
# artifacts, re-validated with the in-repo fabcheck checker.
fabricobs-smoke:
	$(GO) test -race -count=1 ./internal/fabricobs
	$(GO) test -race -count=1 -run 'TestFabricObsTransparency|TestFabricObsLedgerReconciliation|TestFabricObsRejects' .
	$(GO) run ./cmd/netsim -fabric-hosts 8 -fabric-buffer-kb 256 -pattern incast \
		-dur 10ms -warmup 5ms -check -burst-kb 64 \
		-fabric-report /tmp/hostsim-smoke.fab.csv \
		-fabric-ts-out /tmp/hostsim-smoke.fabts.csv \
		-fabric-trace-out /tmp/hostsim-smoke.fab.json > /dev/null
	$(GO) run ./cmd/fabcheck /tmp/hostsim-smoke.fab.csv /tmp/hostsim-smoke.fabts.csv

figures:
	$(GO) run ./cmd/figures

# figures-golden regenerates the committed per-figure goldens under
# testdata/golden/ after a deliberate model change.
figures-golden:
	$(GO) test -run TestFiguresGolden -update .

# validate regenerates the committed FINDINGS baselines: the full
# hypothesis set evaluated over freshly regenerated figure tables, with
# the invariant checker armed. Exit code 1 if any gate hypothesis fails.
# Run after a deliberate model change, together with figures-golden.
validate:
	$(GO) run ./cmd/validate -out FINDINGS.md -json findings.json

# validate-smoke is the CI fidelity gate: evaluate the gate-severity
# hypotheses against freshly regenerated tables and fail on any
# out-of-band paper claim. The report lands in /tmp for artifact upload.
validate-smoke:
	$(GO) run ./cmd/validate -severity gate \
		-out /tmp/hostsim-findings.md -json /tmp/hostsim-findings.json

# validate-sensitivity runs the one-factor cost-model sweeps over the
# headline knobs, classifying paper claims as fragile or robust. Slow
# (dozens of full table regenerations) — not part of CI.
validate-sensitivity:
	$(GO) run ./cmd/validate -sens headline \
		-sens-out SENSITIVITY.md -json sensitivity.json
