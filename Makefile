GO ?= go

.PHONY: all build test check fmt vet race bench bench-runner figures

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: formatting, static analysis, and the full test
# suite under the race detector.
check: fmt vet race

bench: bench-runner
	$(GO) test -bench . -benchmem ./...

# bench-runner captures the parallel-runner and pooled hot-path benchmarks
# (BenchmarkRunMany*, timer reset, pooled schedule/GRO) as JSON for
# regression tracking.
bench-runner:
	$(GO) test -run '^$$' -bench 'RunMany|TimerReset|ScheduleFirePooled|GROPooled' \
		-benchmem -json . ./internal/sim ./internal/skb > BENCH_runner.json

figures:
	$(GO) run ./cmd/figures
