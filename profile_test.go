package hostsim_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hostsim"
	"hostsim/internal/profile"
)

// profCfg is a short profiled run.
func profCfg(seed int64) hostsim.Config {
	cfg := shortCfg(seed)
	cfg.Profile = &hostsim.ProfileOptions{}
	return cfg
}

func runProfiled(t *testing.T, cfg hostsim.Config, wl hostsim.Workload) *hostsim.Result {
	t.Helper()
	res, err := hostsim.Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The profiler's per-category cycle totals must reconcile EXACTLY with
// the cores' own category accounting: both views merge at the same
// work-item completion point and reset at the same warmup boundary, so
// any drift is a double-count or a leak.
func TestProfileReconcilesWithBreakdown(t *testing.T) {
	for _, wl := range []hostsim.Workload{
		hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
		hostsim.MixedWorkload(8, 16*1024),
	} {
		res := runProfiled(t, profCfg(3), wl)
		fromProfile := map[string]int64{}
		for _, s := range res.CycleProfile {
			if len(s.Frames) < 3 {
				t.Fatalf("stack %v too short", s.Frames)
			}
			fromProfile[s.Frames[2]] += s.Cycles
		}
		fromHosts := map[string]int64{}
		for _, h := range []hostsim.HostStats{res.Sender, res.Receiver} {
			for cat, c := range h.BreakdownCycles {
				fromHosts[cat] += c
			}
		}
		for cat, want := range fromHosts {
			if want == 0 {
				continue
			}
			if got := fromProfile[cat]; got != want {
				t.Errorf("%s/%s: profile has %d cycles, host accounting has %d",
					wl.Kind, cat, got, want)
			}
		}
		for cat, got := range fromProfile {
			if fromHosts[cat] == 0 && got != 0 {
				t.Errorf("%s/%s: profile has %d cycles unknown to host accounting",
					wl.Kind, cat, got)
			}
		}
	}
}

// Folded output and the latency table must be byte-identical whether the
// batch ran serially or on 8 workers — the profiler must not introduce
// any scheduling- or map-order-dependent state.
func TestProfileDeterministicAcrossParallelism(t *testing.T) {
	var jobs []hostsim.Job
	for seed := int64(1); seed <= 3; seed++ {
		jobs = append(jobs, hostsim.Job{
			Config:   profCfg(seed),
			Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
		})
	}
	serial, err := hostsim.RunMany(jobs, hostsim.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := hostsim.RunMany(jobs, hostsim.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		var a, b bytes.Buffer
		if err := serial[i].WriteFolded(&a); err != nil {
			t.Fatal(err)
		}
		if err := par[i].WriteFolded(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("job %d: folded output differs between -jobs 1 and -jobs 8:\n%s\nvs\n%s",
				i, a.String(), b.String())
		}
		if sa, sb := serial[i].LatencyBreakdown.Format(), par[i].LatencyBreakdown.Format(); sa != sb {
			t.Errorf("job %d: latency breakdown differs between -jobs 1 and -jobs 8:\n%s\nvs\n%s",
				i, sa, sb)
		}
		var pa, pb bytes.Buffer
		if err := serial[i].WritePprof(&pa); err != nil {
			t.Fatal(err)
		}
		if err := par[i].WritePprof(&pb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
			t.Errorf("job %d: pprof bytes differ between -jobs 1 and -jobs 8", i)
		}
	}
}

// WritePprof must produce a profile the in-repo parser round-trips, with
// the same stacks and cycle counts the Result reports.
func TestProfilePprofRoundTrip(t *testing.T) {
	res := runProfiled(t, profCfg(7), hostsim.MixedWorkload(4, 16*1024))
	var buf bytes.Buffer
	if err := res.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := profile.ParseData(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if p.DefaultSampleType != "cycles" {
		t.Errorf("default sample type = %q, want cycles", p.DefaultSampleType)
	}
	if len(p.Samples) != len(res.CycleProfile) {
		t.Fatalf("parsed %d samples, Result has %d stacks", len(p.Samples), len(res.CycleProfile))
	}
	got := map[string]int64{}
	for _, s := range p.Samples {
		got[strings.Join(s.Stack, ";")] = s.Values[0]
	}
	for _, s := range res.CycleProfile {
		key := strings.Join(s.Frames, ";")
		if got[key] != s.Cycles {
			t.Errorf("stack %s: parsed %d cycles, Result has %d", key, got[key], s.Cycles)
		}
	}
}

// Latency stages telescope: consecutive lifecycle stamps partition the
// app-write→app-read interval, so per-stage means sum to the total mean.
// Checked on a single long flow, the acceptance-criterion case.
func TestProfileStageMeansSumToTotal(t *testing.T) {
	res := runProfiled(t, profCfg(11), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
	lb := res.LatencyBreakdown
	if lb == nil {
		t.Fatal("no latency breakdown")
	}
	var sum, total time.Duration
	var count int64
	for _, st := range lb.Stages {
		if st.Stage == profile.StageName(profile.StageTotal) {
			total = st.Mean
			count = st.Count
			continue
		}
		sum += st.Mean
	}
	if count == 0 {
		t.Fatal("no complete lifecycle samples recorded")
	}
	if total <= 0 {
		t.Fatalf("total mean = %v", total)
	}
	// Means are per-stage sums over the same sample count; integer
	// nanosecond rounding allows at most 1ns per stage of slack.
	if diff := sum - total; diff < -time.Duration(len(lb.Stages)) || diff > time.Duration(len(lb.Stages)) {
		t.Errorf("stage means sum to %v, total is %v (diff %v)", sum, total, diff)
	}
}

// Without Config.Profile the Result carries no profile and the writers
// say so instead of emitting empty files.
func TestProfileAbsentByDefault(t *testing.T) {
	res, err := hostsim.Run(shortCfg(2), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CycleProfile != nil || res.LatencyBreakdown != nil {
		t.Error("profile populated without Config.Profile")
	}
	if err := res.WritePprof(&bytes.Buffer{}); err == nil {
		t.Error("WritePprof succeeded without Config.Profile")
	}
	if err := res.WriteFolded(&bytes.Buffer{}); err == nil {
		t.Error("WriteFolded succeeded without Config.Profile")
	}
}

// Flow classes derived from the workload appear as leaf frames.
func TestProfileFlowClasses(t *testing.T) {
	res := runProfiled(t, profCfg(5), hostsim.MixedWorkload(4, 16*1024))
	seen := map[string]bool{}
	for _, s := range res.CycleProfile {
		if len(s.Frames) == 4 {
			seen[s.Frames[3]] = true
		}
	}
	for _, class := range []string{"long", "rpc"} {
		if !seen[class] {
			t.Errorf("no stack with flow class %q; saw %v", class, seen)
		}
	}
}

func benchProfile(b *testing.B, cfg hostsim.Config) {
	wl := hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hostsim.Run(cfg, wl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileOff/On measure the end-to-end cost of the profiler on
// a full run — `make bench-profile` records the pair to BENCH_profile.json.
func BenchmarkProfileOff(b *testing.B) { benchProfile(b, shortCfg(1)) }
func BenchmarkProfileOn(b *testing.B)  { benchProfile(b, profCfg(1)) }
