package hostsim_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"hostsim"
)

// fabCfg is the shared fabric-test configuration: short windows keep the
// many-host scenarios fast, the checker is armed fail-fast so any
// conservation break aborts the run.
func fabCfg(hosts int) hostsim.Config {
	return hostsim.Config{
		Stack:    hostsim.AllOptimizations(),
		Seed:     7,
		Warmup:   10 * time.Millisecond,
		Duration: 15 * time.Millisecond,
		Check:    &hostsim.CheckOptions{},
		Fabric:   &hostsim.FabricOptions{Hosts: hosts},
	}
}

// TestFabricIncast16Checked runs a 16-host incast with every
// conservation-law audit armed; a single violation fails the run.
func TestFabricIncast16Checked(t *testing.T) {
	res, err := hostsim.Run(fabCfg(16), hostsim.LongFlowWorkload(hostsim.PatternIncast, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 16 {
		t.Fatalf("got %d host stats, want 16", len(res.Hosts))
	}
	if len(res.FlowGbps) != 15 {
		t.Fatalf("got %d flows, want 15", len(res.FlowGbps))
	}
	if res.ThroughputGbps <= 0 {
		t.Fatalf("no goodput: %v", res.ThroughputGbps)
	}
	if res.Fabric == nil || res.Fabric.Delivered == 0 {
		t.Fatalf("fabric stats missing or empty: %+v", res.Fabric)
	}
	if res.Fabric.BufferDrops != 0 {
		t.Fatalf("unbounded buffer dropped %d frames", res.Fabric.BufferDrops)
	}
}

// TestFabricIncast64Checked is the acceptance-scale run: 64 hosts into
// one, checker armed, zero violations tolerated (fail-fast would error).
func TestFabricIncast64Checked(t *testing.T) {
	if testing.Short() {
		t.Skip("64-host incast is slow; skipped with -short")
	}
	cfg := fabCfg(64)
	cfg.Warmup = 8 * time.Millisecond
	cfg.Duration = 10 * time.Millisecond
	res, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 64 || len(res.FlowGbps) != 63 {
		t.Fatalf("got %d hosts / %d flows, want 64 / 63", len(res.Hosts), len(res.FlowGbps))
	}
	if res.ThroughputGbps <= 0 {
		t.Fatalf("no goodput: %v", res.ThroughputGbps)
	}
}

// TestFabricPatterns exercises every long-flow pattern on a small fabric
// with the checker armed, pinning the expected flow counts.
func TestFabricPatterns(t *testing.T) {
	for _, tc := range []struct {
		pattern hostsim.Pattern
		hosts   int
		flows   int
	}{
		{hostsim.PatternSingle, 4, 1},
		{hostsim.PatternOneToOne, 6, 3},
		{hostsim.PatternIncast, 8, 7},
		{hostsim.PatternOutcast, 8, 7},
		{hostsim.PatternAllToAll, 4, 12},
	} {
		t.Run(fmt.Sprintf("%s-%dhosts", tc.pattern, tc.hosts), func(t *testing.T) {
			res, err := hostsim.Run(fabCfg(tc.hosts), hostsim.LongFlowWorkload(tc.pattern, 0))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.FlowGbps) != tc.flows {
				t.Fatalf("got %d flows, want %d", len(res.FlowGbps), tc.flows)
			}
			if res.ThroughputGbps <= 0 {
				t.Fatalf("no goodput: %v", res.ThroughputGbps)
			}
		})
	}
}

// TestFabricSharedBufferDropsAndECN pins that a tight shared buffer
// produces dynamic-threshold drops under incast and that the per-port ECN
// threshold produces CE marks, both visible in Result.Fabric.
func TestFabricSharedBufferDropsAndECN(t *testing.T) {
	cfg := fabCfg(8)
	cfg.Fabric.SharedBufferKB = 256
	cfg.ECNMarkKB = 64
	cfg.Stack.CC = "dctcp"
	res, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fabric.BufferDrops == 0 {
		t.Error("256KB shared buffer under 7:1 incast produced no drops")
	}
	if res.Fabric.Marked == 0 {
		t.Error("64KB ECN threshold under incast produced no CE marks")
	}
	if res.ThroughputGbps <= 0 {
		t.Fatalf("no goodput: %v", res.ThroughputGbps)
	}
}

// TestFabricRejects pins the configuration errors for unsupported
// fabric-mode combinations.
func TestFabricRejects(t *testing.T) {
	base := fabCfg(4)
	cases := []struct {
		name string
		cfg  hostsim.Config
		wl   hostsim.Workload
	}{
		{"rpc", base, hostsim.RPCIncastWorkload(4, 4096)},
		{"mixed", base, hostsim.MixedWorkload(4, 4096)},
		{"remoteNUMA", base, hostsim.Workload{Kind: "long", Pattern: hostsim.PatternSingle, RemoteNUMA: true}},
		{"odd-one-to-one", fabCfg(5), hostsim.LongFlowWorkload(hostsim.PatternOneToOne, 0)},
		{"hosts=1", hostsim.Config{Fabric: &hostsim.FabricOptions{Hosts: 1}}, hostsim.LongFlowWorkload(hostsim.PatternSingle, 0)},
		{"hosts=500", hostsim.Config{Fabric: &hostsim.FabricOptions{Hosts: 500}}, hostsim.LongFlowWorkload(hostsim.PatternSingle, 0)},
		{"short-names", hostsim.Config{Fabric: &hostsim.FabricOptions{Hosts: 4, HostNames: []string{"a"}}}, hostsim.LongFlowWorkload(hostsim.PatternSingle, 0)},
	}
	for _, tc := range cases {
		if _, err := hostsim.Run(tc.cfg, tc.wl); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// sortFlows orders terminal flow stats by tx flow id for comparison.
func sortFlows(fs []hostsim.FlowStats) []hostsim.FlowStats {
	out := append([]hostsim.FlowStats(nil), fs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Flow < out[j].Flow })
	return out
}

// fabricFingerprint renders every deterministic measurement of a fabric
// run except host names, so relabeled runs can compare equal: the
// top-line numbers, every per-host stat block in port order, and the
// switch counters.
func fabricFingerprint(r *hostsim.Result) string {
	return fmt.Sprintf("dur=%v thpt=%v tpc=%v longGbps=%v flows=%v fair=%v hosts=%+v fab=%+v",
		r.Duration, r.ThroughputGbps, r.ThroughputPerCoreGbps, r.LongFlowGbps,
		r.FlowGbps, r.FairnessIndex, r.Hosts, r.Fabric)
}

// TestFabricIncastN1MatchesDirect is the topology refactor's anchor
// property: a 2-host fabric with unbounded buffer is event-for-event
// identical to the direct two-host link, so the 1:1 "incast" must
// reproduce the direct single-flow run byte for byte. Naming the fabric
// hosts after the direct pair (receiver on port 0, where incast places
// the server) makes every field comparable, Bottleneck and Flows
// included.
func TestFabricIncastN1MatchesDirect(t *testing.T) {
	direct, err := hostsim.Run(metaCfg(hostsim.AllOptimizations()), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := metaCfg(hostsim.AllOptimizations())
	cfg.Fabric = &hostsim.FabricOptions{Hosts: 2, HostNames: []string{"receiver", "sender"}}
	fab, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := fingerprint(direct), fingerprint(fab); a != b {
		t.Errorf("2-host fabric diverged from the direct link:\ndirect: %s\nfabric: %s", a, b)
	}
	df, ff := sortFlows(direct.Flows), sortFlows(fab.Flows)
	if a, b := fmt.Sprintf("%+v", df), fmt.Sprintf("%+v", ff); a != b {
		t.Errorf("terminal flow stats diverged:\ndirect: %s\nfabric: %s", a, b)
	}
}

// TestFabricRelabelInvariance pins that HostNames is labeling only:
// renaming every host must not move a single measurement, and the
// bottleneck must map to the same port.
func TestFabricRelabelInvariance(t *testing.T) {
	wl := hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)
	base, err := hostsim.Run(fabCfg(8), wl)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("rack7-node%c", 'a'+i)
	}
	cfg := fabCfg(8)
	cfg.Fabric.HostNames = names
	renamed, err := hostsim.Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := fabricFingerprint(base), fabricFingerprint(renamed); a != b {
		t.Errorf("relabeling changed the physics:\n  base: %s\nrename: %s", a, b)
	}
	// The default incast bottleneck is port 0 (host000, the server);
	// renamed, the same port must win under its new name.
	if base.Bottleneck != "host000" || renamed.Bottleneck != names[0] {
		t.Errorf("bottleneck moved under relabeling: %q vs %q", base.Bottleneck, renamed.Bottleneck)
	}
}

// TestFabricBufferPressure walks a shrinking shared buffer under the same
// incast. Total drops over a fixed window are NOT monotone in buffer size
// — TCP is closed-loop, so a tighter buffer makes senders back off harder
// and can lower the drop count (frame-for-frame monotonicity holds only
// open-loop; internal/fabric pins it against a fixed arrival schedule).
// What must hold end to end: the unbounded pool never drops, every
// bounded pool drops under 7:1 incast pressure, and squeezing the buffer
// to a sliver costs goodput (the §3.4 collapse mechanism).
func TestFabricBufferPressure(t *testing.T) {
	wl := hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)
	run := func(kb int) *hostsim.Result {
		cfg := fabCfg(8)
		cfg.Fabric.SharedBufferKB = kb
		res, err := hostsim.Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("buffer %5dKB: %6d drops, %6.2f Gbps", kb, res.Fabric.BufferDrops, res.ThroughputGbps)
		return res
	}
	unbounded := run(0)
	if unbounded.Fabric.BufferDrops != 0 {
		t.Fatalf("unbounded buffer dropped %d frames", unbounded.Fabric.BufferDrops)
	}
	for _, kb := range []int{4096, 1024, 256, 64} {
		if res := run(kb); res.Fabric.BufferDrops == 0 {
			t.Errorf("%dKB shared buffer under 7:1 incast produced no drops", kb)
		}
	}
	if tiny := run(64); tiny.ThroughputGbps >= unbounded.ThroughputGbps {
		t.Errorf("64KB buffer did not cost goodput: %.2f Gbps vs unbounded %.2f Gbps",
			tiny.ThroughputGbps, unbounded.ThroughputGbps)
	}
}

// TestFabricDeterminismAcrossJobs extends the batch-determinism property
// to fabric topologies: every multi-host scenario must be bit-identical
// between -jobs 1 and -jobs 8.
func TestFabricDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run property")
	}
	mk := func(hosts, bufKB int, p hostsim.Pattern) hostsim.Job {
		cfg := fabCfg(hosts)
		cfg.Check = nil // determinism property, not a conservation one
		cfg.Fabric.SharedBufferKB = bufKB
		return hostsim.Job{Config: cfg, Workload: hostsim.LongFlowWorkload(p, 0)}
	}
	jobs := []hostsim.Job{
		mk(16, 0, hostsim.PatternIncast),
		mk(8, 512, hostsim.PatternIncast),
		mk(8, 0, hostsim.PatternOutcast),
		mk(4, 0, hostsim.PatternAllToAll),
		mk(6, 0, hostsim.PatternOneToOne),
	}
	serial, err := hostsim.RunMany(jobs, hostsim.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := hostsim.RunMany(jobs, hostsim.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if a, b := fabricFingerprint(serial[i]), fabricFingerprint(par[i]); a != b {
			t.Errorf("fabric job %d diverged between -jobs 1 and -jobs 8:\n serial: %s\n   par8: %s", i, a, b)
		}
	}
}
