package hostsim

import (
	"testing"
	"time"
)

// TestInvariantsSmoke drives the full pipeline end to end once with the
// fail-fast invariant checker armed and asserts data actually moved. It
// subsumes the old smoke test: a run that leaks buffers or drops cycles
// now fails here with a pointed diagnostic instead of passing silently.
func TestInvariantsSmoke(t *testing.T) {
	res, err := Run(Config{Stack: AllOptimizations(), Seed: 1,
		Warmup: 10 * time.Millisecond, Duration: 20 * time.Millisecond,
		Check: &CheckOptions{}},
		LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("throughput          %.2f Gbps", res.ThroughputGbps)
	t.Logf("throughput-per-core %.2f Gbps (bottleneck %s)", res.ThroughputPerCoreGbps, res.Bottleneck)
	t.Logf("receiver breakdown  %v", res.Receiver.Breakdown)
	if res.ThroughputGbps <= 1 {
		t.Fatalf("single flow moved almost no data: %.2f Gbps", res.ThroughputGbps)
	}
}

// TestInvariantsScenarioMatrix audits the conservation laws across the
// paper's scenario space: every optimization ladder step, traffic
// pattern, loss rate, congestion controller, steering mode and workload
// kind runs with the checker in Collect mode, and any violation fails the
// scenario with the checker's diagnostic. This subsumes the old probe
// matrix (whose -v log lines it keeps, for calibration spelunking).
func TestInvariantsScenarioMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario matrix")
	}
	short := Config{Seed: 1, Warmup: 15 * time.Millisecond, Duration: 25 * time.Millisecond,
		Check: &CheckOptions{Collect: true}}
	type probe struct {
		name string
		cfg  Config
		wl   Workload
	}
	all := AllOptimizations()
	noOpt := NoOptimizations()
	tsogro := noOpt
	tsogro.TSO, tsogro.GSO, tsogro.GRO = true, true, true
	jumbo := tsogro
	jumbo.JumboFrames = true
	dcaOff := all
	dcaOff.DCA = false
	iommu := all
	iommu.IOMMU = true
	bbr := all
	bbr.CC = "bbr"
	dctcp := all
	dctcp.CC = "dctcp"
	lro := all
	lro.GRO, lro.LRO = false, true
	rfs := all
	rfs.ARFS, rfs.Steering = false, "rfs"
	rps := all
	rps.ARFS, rps.Steering = false, "rps"
	zerocopy := all
	zerocopy.ZeroCopyTx, zerocopy.ZeroCopyRx = true, true

	mk := func(s Stack) Config { c := short; c.Stack = s; return c }
	lossCfg := func(rate float64) Config { c := mk(all); c.LossRate = rate; return c }
	ecnCfg := func(s Stack, kb int) Config { c := mk(s); c.ECNMarkKB = kb; return c }

	probes := []probe{
		{"single/noopt", mk(noOpt), LongFlowWorkload(PatternSingle, 1)},
		{"single/+tso-gro", mk(tsogro), LongFlowWorkload(PatternSingle, 1)},
		{"single/+jumbo", mk(jumbo), LongFlowWorkload(PatternSingle, 1)},
		{"single/+arfs(all)", mk(all), LongFlowWorkload(PatternSingle, 1)},
		{"single/remote-numa", mk(all), Workload{Kind: "long", Pattern: PatternSingle, RemoteNUMA: true}},
		{"single/dca-off", mk(dcaOff), LongFlowWorkload(PatternSingle, 1)},
		{"single/iommu", mk(iommu), LongFlowWorkload(PatternSingle, 1)},
		{"single/bbr", mk(bbr), LongFlowWorkload(PatternSingle, 1)},
		{"single/dctcp", ecnCfg(dctcp, 90), LongFlowWorkload(PatternSingle, 1)},
		{"single/lro", mk(lro), LongFlowWorkload(PatternSingle, 1)},
		{"single/rfs", mk(rfs), LongFlowWorkload(PatternSingle, 1)},
		{"single/rps", mk(rps), LongFlowWorkload(PatternSingle, 1)},
		{"single/zerocopy", mk(zerocopy), LongFlowWorkload(PatternSingle, 1)},
		{"one-to-one/8", mk(all), LongFlowWorkload(PatternOneToOne, 8)},
		{"one-to-one/24", mk(all), LongFlowWorkload(PatternOneToOne, 24)},
		{"incast/8", mk(all), LongFlowWorkload(PatternIncast, 8)},
		{"incast/24", mk(all), LongFlowWorkload(PatternIncast, 24)},
		{"outcast/8", mk(all), LongFlowWorkload(PatternOutcast, 8)},
		{"outcast/24", mk(all), LongFlowWorkload(PatternOutcast, 24)},
		{"all-to-all/8", mk(all), LongFlowWorkload(PatternAllToAll, 8)},
		{"all-to-all/24", mk(all), LongFlowWorkload(PatternAllToAll, 24)},
		{"loss/1.5e-4", lossCfg(1.5e-4), LongFlowWorkload(PatternSingle, 1)},
		{"loss/1.5e-3", lossCfg(1.5e-3), LongFlowWorkload(PatternSingle, 1)},
		{"loss/1.5e-2", lossCfg(1.5e-2), LongFlowWorkload(PatternSingle, 1)},
		{"rpc/4KB", mk(all), RPCIncastWorkload(16, 4096)},
		{"rpc/16KB", mk(all), RPCIncastWorkload(16, 16384)},
		{"rpc/64KB", mk(all), RPCIncastWorkload(16, 65536)},
		{"mixed/0", mk(all), MixedWorkload(0, 4096)},
		{"mixed/16", mk(all), MixedWorkload(16, 4096)},
	}
	for _, p := range probes {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(p.cfg, p.wl)
			if err != nil {
				t.Fatalf("%s: %v", p.name, err)
			}
			for _, v := range res.Violations {
				t.Errorf("%s: %v", p.name, v)
			}
			b := res.Receiver.Breakdown
			t.Logf("%-20s thpt %6.2f tpc %6.2f [%s] sndBusy %5.2f rcvBusy %5.2f miss %4.1f%% copy %4.1f%% sched %4.1f%% mem %4.1f%% tcp %4.1f%% lat %8v skb %5.1fKB rpc %6d drops %5d retx %5d",
				p.name, res.ThroughputGbps, res.ThroughputPerCoreGbps, res.Bottleneck,
				res.Sender.BusyCores, res.Receiver.BusyCores,
				res.Receiver.CacheMissRate*100, b["data_copy"]*100, b["sched"]*100, b["memory"]*100, b["tcp/ip"]*100,
				res.Receiver.LatencyAvg.Round(time.Microsecond), res.Receiver.SKBAvgBytes/1024,
				res.RPCCompleted, res.Receiver.NICDrops, res.Sender.Retransmits)
		})
	}
}
