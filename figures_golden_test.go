package hostsim_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"hostsim/internal/figures"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden figure files under testdata/golden/")

// renderFigure reproduces exactly what `figures -fig <id>` prints for
// one experiment: the aligned text table plus the paper's takeaway.
func renderFigure(e figures.Experiment, tbl *figures.Table) string {
	return tbl.String() + fmt.Sprintf("paper: %s\n\n", e.Paper)
}

// TestFiguresGolden pins every `cmd/figures` table — all paper figures,
// Table 2, extensions, ablations and appendix breakdowns — against
// golden files at the standard measurement window, with the invariant
// checker armed for every simulation (so each figure doubles as a
// conservation-law audit of its scenario). A deliberate model change
// regenerates the goldens with:
//
//	go test -run TestFiguresGolden -update .
//
// and the diff under testdata/golden/ documents exactly which figures
// moved.
func TestFiguresGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure regeneration")
	}
	rc := figures.Default()
	rc.Jobs = runtime.NumCPU()
	rc.Check = true
	exps := figures.All()
	tables, err := figures.RunAll(rc, exps)
	if err != nil {
		t.Fatalf("regenerating figures (with invariant checking): %v", err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, e := range exps {
		got := renderFigure(e, tables[i])
		path := filepath.Join("testdata", "golden", e.ID+".txt")
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: no golden file (run `go test -run TestFiguresGolden -update .`): %v", e.ID, err)
			continue
		}
		if got != string(want) {
			t.Errorf("%s: output drifted from golden (rerun with -update if the change is intended)\n--- got ---\n%s--- want ---\n%s",
				e.ID, got, want)
		}
	}
}
