package metrics

import "math/bits"

// subBits sets the log-linear resolution: 2^subBits linear sub-buckets
// per power of two, bounding the relative quantile error at 2^-subBits
// (~3.1%) — the HdrHistogram trade-off.
const subBits = 5

// subCount is the number of sub-buckets per octave.
const subCount = 1 << subBits

// LogLinear is an HdrHistogram-style fixed-bucket log-linear histogram
// for non-negative int64 samples (nanoseconds of simulated time): exact
// below subCount, then subCount linear sub-buckets per power of two. It
// covers the whole int64 range in a fixed ~15KB of counters, records
// without allocating, and its quantiles are deterministic functions of
// the recorded multiset — unlike the geometric Histogram, whose bucket
// ratio trades error bounds for range.
type LogLinear struct {
	counts   [(64 - subBits) * subCount]int64
	count    int64
	sum      int64
	min, max int64
}

// NewLogLinear returns an empty histogram.
func NewLogLinear() *LogLinear { return &LogLinear{} }

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	shift := bits.Len64(u) - subBits - 1
	return shift<<subBits + int(u>>uint(shift))
}

// bucketTop returns the largest value a bucket holds (its representative
// for quantile queries, mirroring Histogram's upper-edge convention).
func bucketTop(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	shift := idx>>subBits - 1
	base := idx - shift<<subBits
	return (int64(base)+1)<<uint(shift) - 1
}

// Record adds one sample; negative values clamp to zero.
func (h *LogLinear) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *LogLinear) Count() int64 { return h.count }

// Sum returns the sum of recorded samples.
func (h *LogLinear) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample (0 when empty).
func (h *LogLinear) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *LogLinear) Max() int64 { return h.max }

// Mean returns the integer mean sample (0 when empty).
func (h *LogLinear) Mean() int64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Quantile returns the q-quantile's bucket upper edge, clamped to the
// observed [min, max]. q outside [0,1] clamps.
func (h *LogLinear) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			v := bucketTop(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Reset clears the histogram.
func (h *LogLinear) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
}
