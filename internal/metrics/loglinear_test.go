package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLogLinearBucketsMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1 << 20, 1<<20 + 1, 1 << 40, math.MaxInt64} {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf(%d) = %d goes backwards (prev %d)", v, idx, prev)
		}
		if idx >= len((&LogLinear{}).counts) {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		if top := bucketTop(idx); top < v {
			t.Fatalf("bucketTop(%d) = %d < value %d", idx, top, v)
		}
		prev = idx
	}
	// Every value's bucket upper edge is within the HDR error bound.
	for v := int64(1); v < 1<<22; v = v*7/6 + 1 {
		top := bucketTop(bucketOf(v))
		if float64(top-v) > float64(v)/subCount+1 {
			t.Fatalf("value %d: bucket top %d exceeds the %v relative error bound", v, top, 1.0/subCount)
		}
	}
}

func TestLogLinearQuantiles(t *testing.T) {
	h := NewLogLinear()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	rng := rand.New(rand.NewSource(42))
	var vals []int64
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 50_000)
		vals = append(vals, v)
		h.Record(v)
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	// p99 must be within the HDR relative error of the exact rank value.
	exact := exactQuantile(vals, 0.99)
	got := h.Quantile(0.99)
	if math.Abs(float64(got-exact)) > float64(exact)/subCount+1 {
		t.Fatalf("p99 = %d, exact %d: outside the error bound", got, exact)
	}
	if h.Quantile(1.0) != h.Max() {
		t.Fatalf("p100 = %d, want max %d", h.Quantile(1.0), h.Max())
	}
	if h.Quantile(0) != h.Min() {
		t.Fatalf("p0 = %d, want min %d", h.Quantile(0), h.Min())
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear the histogram")
	}
}

func exactQuantile(vals []int64, q float64) int64 {
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
