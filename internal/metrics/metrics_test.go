package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"hostsim/internal/units"
)

func TestRecordAndMean(t *testing.T) {
	h := New([]float64{10, 20, 30})
	for _, v := range []float64{5, 15, 25, 100} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 36.25 {
		t.Errorf("Mean = %v, want 36.25", got)
	}
	if h.Min() != 5 || h.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestQuantile(t *testing.T) {
	h := NewLatency()
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i) * 1000) // 1us .. 1ms in ns
	}
	p50 := h.Quantile(0.5)
	if p50 < 400e3 || p50 > 700e3 {
		t.Errorf("p50 = %v, want ~500us", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900e3 || p99 > 1.3e6 {
		t.Errorf("p99 = %v, want ~1ms", p99)
	}
	if h.Quantile(1) < h.Quantile(0.5) {
		t.Error("quantiles must be monotone")
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := NewSize()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestQuantileOutOfRangePanics(t *testing.T) {
	h := NewSize()
	defer func() {
		if recover() == nil {
			t.Error("Quantile(1.5) should panic")
		}
	}()
	h.Quantile(1.5)
}

func TestFraction(t *testing.T) {
	h := NewSize()
	h.RecordN(2048, 3)  // <= 2KB edge
	h.RecordN(60000, 1) // ~59KB
	if got := h.Fraction(4096); got != 0.75 {
		t.Errorf("Fraction(4KB) = %v, want 0.75", got)
	}
	if got := h.Fraction(65536); got != 1 {
		t.Errorf("Fraction(64KB) = %v, want 1", got)
	}
}

// Regression: overflow-bucket samples were never counted by Fraction, so
// Fraction(+Inf) reported < 1 whenever any sample exceeded the last edge.
func TestFractionCountsOverflowBucket(t *testing.T) {
	h := NewSize()
	h.RecordN(2048, 3)
	h.RecordN(100_000, 1) // beyond the 64KB last edge -> overflow bucket
	if got := h.Fraction(math.Inf(1)); got != 1 {
		t.Errorf("Fraction(+Inf) = %v, want 1", got)
	}
	if got := h.Fraction(100_000); got != 1 {
		t.Errorf("Fraction(max) = %v, want 1", got)
	}
	// Below the observed max, overflow samples must not count.
	if got := h.Fraction(65536); got != 0.75 {
		t.Errorf("Fraction(64KB) = %v, want 0.75", got)
	}
	if got := h.Fraction(99_999); got != 0.75 {
		t.Errorf("Fraction(just below max) = %v, want 0.75", got)
	}
}

func TestOverflowBucket(t *testing.T) {
	h := New([]float64{10})
	h.Record(1e9)
	edges, counts := h.Buckets()
	if len(edges) != 2 || counts[1] != 1 {
		t.Errorf("overflow bucket not used: %v %v", edges, counts)
	}
	if h.Quantile(1) != 1e9 {
		t.Errorf("overflow quantile should report the max, got %v", h.Quantile(1))
	}
}

func TestReset(t *testing.T) {
	h := NewSize()
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("Reset should clear samples")
	}
	h.Record(5)
	if h.Count() != 1 {
		t.Error("histogram should be reusable after Reset")
	}
}

func TestRecordNIgnoresNonPositive(t *testing.T) {
	h := NewSize()
	h.RecordN(100, 0)
	h.RecordN(100, -3)
	if h.Count() != 0 {
		t.Error("non-positive RecordN should be ignored")
	}
}

func TestBadConstruction(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { New(nil) },
		"unsorted": func() { New([]float64{5, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: quantile bounds bracket the true order statistics.
func TestPropertyQuantileBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewLatency()
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r%1e9) + 100
			h.Record(vals[i])
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			// Match the histogram's rank rounding, then the reported
			// bucket upper edge must bound the true order statistic.
			rank := int(q*float64(len(vals)) + 0.5)
			if rank < 1 {
				rank = 1
			}
			if rank > len(vals) {
				rank = len(vals)
			}
			if h.Quantile(q) < vals[rank-1] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGoodput(t *testing.T) {
	r := Goodput(12_500_000_000/8*1, time.Second) // 12.5e9/8 bytes? keep simple below
	_ = r
	got := Goodput(units.Bytes(1.25e9), 100*time.Millisecond)
	if g := got.Gigabits(); g < 99.9 || g > 100.1 {
		t.Errorf("Goodput = %vGbps, want 100", g)
	}
}
