// Package metrics provides the measurement primitives the experiment
// harness reports: histograms with quantiles (host-latency distributions,
// post-GRO skb size distributions) and small helpers for rate math.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hostsim/internal/units"
)

// Histogram is a fixed-bucket histogram over float64 samples. Buckets are
// defined by their upper edges; samples beyond the last edge land in an
// overflow bucket. The zero value is not usable; construct with New.
type Histogram struct {
	edges  []float64 // ascending upper edges
	counts []int64   // len(edges)+1, last = overflow
	total  int64
	sum    float64
	min    float64
	max    float64
}

// New builds a histogram with the given ascending bucket upper edges.
func New(edges []float64) *Histogram {
	if len(edges) == 0 {
		panic("metrics: histogram needs at least one edge")
	}
	if !sort.Float64sAreSorted(edges) {
		panic("metrics: edges must ascend")
	}
	cp := make([]float64, len(edges))
	copy(cp, edges)
	return &Histogram{
		edges:  cp,
		counts: make([]int64, len(edges)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// NewLatency builds a log-spaced histogram suitable for microsecond-scale
// latencies (100ns .. ~10s, 120 buckets).
func NewLatency() *Histogram {
	edges := make([]float64, 0, 120)
	for v := 100.0; v < 1e10 && len(edges) < 120; v *= 1.165 {
		edges = append(edges, v) // nanoseconds
	}
	return New(edges)
}

// NewSize builds a linear histogram for skb sizes (1KB steps to 64KB).
func NewSize() *Histogram {
	edges := make([]float64, 64)
	for i := range edges {
		edges[i] = float64((i + 1) * 1024)
	}
	return New(edges)
}

// Record adds one sample.
func (h *Histogram) Record(v float64) {
	i := sort.SearchFloat64s(h.edges, v)
	h.counts[i]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordN adds the sample n times.
func (h *Histogram) RecordN(v float64, n int64) {
	if n <= 0 {
		return
	}
	i := sort.SearchFloat64s(h.edges, v)
	h.counts[i] += n
	h.total += n
	h.sum += v * float64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1), using
// bucket upper edges; the overflow bucket reports the observed max.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v outside [0,1]", q))
	}
	if h.total == 0 {
		return 0
	}
	rank := int64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.edges) {
				return h.edges[i]
			}
			return h.max
		}
	}
	return h.max
}

// Fraction returns the share of samples with value <= v. Overflow-bucket
// samples (beyond the last edge) count once v reaches the observed max,
// so Fraction(+Inf) is always 1 for a non-empty histogram.
func (h *Histogram) Fraction(v float64) float64 {
	if h.total == 0 {
		return 0
	}
	var cum int64
	for i, c := range h.counts {
		if i < len(h.edges) {
			if h.edges[i] <= v {
				cum += c
			}
		} else if v >= h.max {
			cum += c
		}
	}
	return float64(cum) / float64(h.total)
}

// Buckets returns (edge, count) pairs including the overflow bucket
// (edge = +Inf).
func (h *Histogram) Buckets() ([]float64, []int64) {
	edges := make([]float64, len(h.edges)+1)
	copy(edges, h.edges)
	edges[len(h.edges)] = math.Inf(1)
	counts := make([]int64, len(h.counts))
	copy(counts, h.counts)
	return edges, counts
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// Goodput converts bytes over a window into a bit rate.
func Goodput(b units.Bytes, window time.Duration) units.BitRate {
	return units.RateOf(b, window)
}
