package nic

import (
	"testing"
	"time"

	"hostsim/internal/cache"
	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/mem"
	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/topology"
	"hostsim/internal/units"
	"hostsim/internal/wire"
)

// rig wires a NIC to a loopback link and a collecting consumer.
type rig struct {
	eng   *sim.Engine
	sys   *exec.System
	alloc *mem.Allocator
	dca   *cache.DCA
	nic   *NIC
	got   []*skb.SKB
}

func newRig(t *testing.T, cfg Config, withDCA bool) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(1)}
	spec := topology.Default()
	r.sys = exec.NewSystem(r.eng, spec, cpumodel.Default())
	r.alloc = mem.NewAllocator(spec, cpumodel.Default())
	if withDCA {
		r.dca = cache.NewDCA(cache.DCAConfig{
			Capacity: spec.DCACapacity(),
			PageSize: spec.PageSize,
			Rand:     r.eng.Rand(),
		})
	}
	// Egress link loops back into the same NIC (unused in Rx tests).
	var n *NIC
	link := wire.NewLink(r.eng, spec.LinkRate, 2*time.Microsecond, func(f *skb.Frame) {
		n.ReceiveFromWire(f)
	})
	n = New(r.eng, r.sys, r.alloc, r.dca, cfg, link, func(ctx *exec.Ctx, s *skb.SKB) {
		r.got = append(r.got, s)
	})
	r.nic = n
	return r
}

// inject delivers a data frame directly from the "wire".
func (r *rig) inject(flow skb.FlowID, seq int64, l units.Bytes) {
	r.nic.ReceiveFromWire(&skb.Frame{Flow: flow, Seq: seq, Len: l})
}

func (r *rig) run(d time.Duration) { r.eng.Run(sim.Time(d)) }

func TestSingleFrameDeliveredAfterModeration(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg, true)
	r.nic.SetSteering(FixedCore(0))
	r.inject(1, 0, 4096)
	r.run(time.Millisecond)
	if len(r.got) != 1 {
		t.Fatalf("delivered %d skbs, want 1", len(r.got))
	}
	s := r.got[0]
	if s.Len != 4096 || s.Frames != 1 || s.Flow != 1 {
		t.Errorf("skb = %v", s)
	}
	if s.Born < sim.Time(cfg.ModerationDelay) {
		t.Errorf("NAPI ran at %v, before the moderation delay %v", s.Born, cfg.ModerationDelay)
	}
	if r.nic.Stats().IRQs != 1 {
		t.Errorf("IRQs = %d, want 1", r.nic.Stats().IRQs)
	}
}

func TestBurstTriggersEarlyIRQ(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModerationDelay = time.Millisecond // would be far too late
	cfg.ModerationFrames = 8
	r := newRig(t, cfg, true)
	r.nic.SetSteering(FixedCore(0))
	for i := 0; i < 8; i++ {
		r.inject(1, int64(i)*1500, 1500)
	}
	r.run(100 * time.Microsecond)
	if len(r.got) == 0 {
		t.Fatal("burst above ModerationFrames should fire the IRQ early")
	}
}

func TestGROAggregatesWithinPoll(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg, true)
	r.nic.SetSteering(FixedCore(0))
	// 7 contiguous jumbo frames, one flow: one ~62KB skb.
	mss := cfg.MSS()
	for i := 0; i < 7; i++ {
		r.inject(1, int64(i)*int64(mss), mss)
	}
	r.run(time.Millisecond)
	if len(r.got) != 1 {
		t.Fatalf("delivered %d skbs, want 1 aggregate", len(r.got))
	}
	if r.got[0].Frames != 7 || r.got[0].Len != 7*mss {
		t.Errorf("aggregate = %v", r.got[0])
	}
}

func TestGRODisabledDeliversPerFrame(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GRO = false
	r := newRig(t, cfg, true)
	r.nic.SetSteering(FixedCore(0))
	for i := 0; i < 5; i++ {
		r.inject(1, int64(i)*1500, 1500)
	}
	r.run(time.Millisecond)
	if len(r.got) != 5 {
		t.Fatalf("delivered %d skbs, want 5 (GRO off)", len(r.got))
	}
}

func TestLROCoalescesWithoutCPU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LRO = true
	r := newRig(t, cfg, true)
	r.nic.SetSteering(FixedCore(0))
	mss := cfg.MSS()
	for i := 0; i < 5; i++ {
		r.inject(1, int64(i)*int64(mss), mss)
	}
	r.run(time.Millisecond)
	if len(r.got) != 1 {
		t.Fatalf("delivered %d skbs, want 1 LRO aggregate", len(r.got))
	}
	if r.nic.Stats().LROCoalesce != 4 {
		t.Errorf("LROCoalesce = %d, want 4", r.nic.Stats().LROCoalesce)
	}
}

func TestDescriptorExhaustionDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RxRing = 4
	cfg.ModerationDelay = 10 * time.Millisecond // keep NAPI away
	cfg.ModerationFrames = 1000
	r := newRig(t, cfg, true)
	r.nic.SetSteering(FixedCore(0))
	for i := 0; i < 10; i++ {
		r.inject(1, int64(i)*1500, 1500)
	}
	st := r.nic.Stats()
	if st.RxFrames != 4 || st.RxDropped != 6 {
		t.Errorf("RxFrames = %d RxDropped = %d, want 4/6", st.RxFrames, st.RxDropped)
	}
}

func TestReplenishRestoresDescriptors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RxRing = 4
	r := newRig(t, cfg, true)
	r.nic.SetSteering(FixedCore(0))
	for round := 0; round < 5; round++ {
		for i := 0; i < 4; i++ {
			r.inject(1, int64(round*4+i)*1500, 1500)
		}
		r.run(time.Duration(round+1) * 200 * time.Microsecond)
	}
	st := r.nic.Stats()
	if st.RxDropped != 0 {
		t.Errorf("drops with replenish keeping up: %d", st.RxDropped)
	}
	if st.RxFrames != 20 {
		t.Errorf("RxFrames = %d, want 20", st.RxFrames)
	}
}

func TestDDIOInsertsOnlyNICLocalPages(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg, true)
	// Steer to core 12 (node 2, NIC-remote): pages allocate on node 2 and
	// must not enter the node-0 DCA.
	r.nic.SetSteering(FixedCore(12))
	r.inject(1, 0, 9000-66)
	r.run(time.Millisecond)
	if got := r.dca.Stats().Inserts; got != 0 {
		t.Errorf("remote-node DMA inserted %d pages into DCA, want 0", got)
	}
	// Now a NIC-local queue.
	r.nic.SetSteering(FixedCore(0))
	r.inject(2, 0, 9000-66)
	r.run(2 * time.Millisecond)
	if got := r.dca.Stats().Inserts; got == 0 {
		t.Error("NIC-local DMA should insert into DCA")
	}
}

func TestNAPIBudgetSplitsLargeBacklog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModerationFrames = 1000
	cfg.ModerationDelay = 50 * time.Microsecond
	cfg.NAPIWeight = 16
	r := newRig(t, cfg, true)
	r.nic.SetSteering(FixedCore(0))
	for i := 0; i < 64; i++ {
		r.inject(1, int64(i)*1500, 1500)
	}
	r.run(5 * time.Millisecond)
	st := r.nic.Stats()
	if st.NAPIPolls < 4 {
		t.Errorf("NAPIPolls = %d, want >= 4 (64 frames / weight 16)", st.NAPIPolls)
	}
	if st.IRQs != 1 {
		t.Errorf("IRQs = %d, want 1 (softirq re-polls without new IRQs)", st.IRQs)
	}
	var total units.Bytes
	for _, s := range r.got {
		total += s.Len
	}
	if total != 64*1500 {
		t.Errorf("delivered %d bytes, want %d", total, 64*1500)
	}
}

func TestRSSDeterministicSpread(t *testing.T) {
	r := RSS{Cores: []int{0, 1, 2, 3}}
	seen := map[int]bool{}
	for f := skb.FlowID(0); f < 64; f++ {
		c1 := r.QueueFor(f)
		c2 := r.QueueFor(f)
		if c1 != c2 {
			t.Fatal("RSS must be deterministic per flow")
		}
		seen[c1] = true
	}
	if len(seen) < 3 {
		t.Errorf("RSS used %d of 4 cores over 64 flows; poor spread", len(seen))
	}
}

func TestPinnedSteeringWithFallback(t *testing.T) {
	p := Pinned{
		Table:    map[skb.FlowID]int{7: 3},
		Fallback: FixedCore(9),
	}
	if p.QueueFor(7) != 3 {
		t.Error("pinned entry ignored")
	}
	if p.QueueFor(8) != 9 {
		t.Error("fallback ignored")
	}
}

func TestPinnedWithoutFallbackPanics(t *testing.T) {
	p := Pinned{Table: map[skb.FlowID]int{}}
	defer func() {
		if recover() == nil {
			t.Error("missing entry without fallback should panic")
		}
	}()
	p.QueueFor(1)
}

func TestDCAHazardGrowsWithRing(t *testing.T) {
	mk := func(ring int) float64 {
		cfg := DefaultConfig()
		cfg.RxRing = ring
		r := newRig(t, cfg, true)
		return r.nic.DCAHazard()
	}
	small, large := mk(128), mk(8192)
	if small >= large {
		t.Errorf("hazard should grow with ring size: %v vs %v", small, large)
	}
	if large > 0.9 {
		t.Errorf("hazard must respect MaxHazard, got %v", large)
	}
	cfg := DefaultConfig()
	r := newRig(t, cfg, false)
	if r.nic.DCAHazard() != 0 {
		t.Error("hazard without DCA should be 0")
	}
}

func TestSendFramesChargesDoorbellAndTransmits(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg, true)
	r.nic.SetSteering(FixedCore(0))
	frames := []*skb.Frame{
		{Flow: 1, Seq: 0, Len: 8934},
		{Flow: 1, Seq: 8934, Len: 8934},
	}
	r.sys.Core(3).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.TCPIP, 100)
		r.nic.SendFrames(ctx, frames)
	})
	r.run(time.Millisecond)
	st := r.nic.Stats()
	if st.TxFrames != 2 {
		t.Errorf("TxFrames = %d, want 2", st.TxFrames)
	}
	acct := r.sys.Core(3).Accounting()
	if acct[cpumodel.Netdev] == 0 {
		t.Error("doorbell cost should land in Netdev")
	}
	// The loopback delivers them back: flow 1 steered to core 0.
	if len(r.got) == 0 {
		t.Error("frames never came back around the loopback")
	}
}

func TestPageConservationThroughRxPath(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg, true)
	r.nic.SetSteering(FixedCore(0))
	for i := 0; i < 20; i++ {
		r.inject(1, int64(i)*4096, 4096)
	}
	r.run(5 * time.Millisecond)
	// Consumer frees the skb pages, as TCP/app would after copy.
	var freed int
	for _, s := range r.got {
		r.alloc.Free(cpumodel.Discard{}, 0, s.Pages)
		freed += len(s.Pages)
	}
	if freed != 20 {
		t.Fatalf("freed %d pages, want 20 (one per 4KB frame)", freed)
	}
	// Replenish allocated exactly what DMA consumed, so the only pages
	// still held are the posted ring's stash (ring x pages-per-MTU).
	want := int64(cfg.RxRing * r.alloc.PagesFor(cfg.MTU))
	if r.alloc.InUse() != want {
		t.Errorf("InUse = %d, want ring stash %d", r.alloc.InUse(), want)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.RxRing = 0 },
		func(c *Config) { c.MTU = 66 },
		func(c *Config) { c.ModerationDelay = -1 },
		func(c *Config) { c.ModerationFrames = 0 },
		func(c *Config) { c.NAPIWeight = 0 },
		func(c *Config) { c.DCAHazardFactor = -1 },
		func(c *Config) { c.MaxHazard = 2 },
	}
	for i, f := range bad {
		cfg := DefaultConfig()
		f(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestTxRoundRobinInterleavesCores(t *testing.T) {
	// Frames submitted from two cores must interleave frame-by-frame on
	// the wire — the multi-queue DMA scheduling that defeats per-flow
	// burst adjacency (Fig. 8c's mechanism).
	eng := sim.NewEngine(1)
	spec := topology.Default()
	sys := exec.NewSystem(eng, spec, cpumodel.Default())
	alloc := mem.NewAllocator(spec, cpumodel.Default())
	var order []skb.FlowID
	link := wire.NewLink(eng, spec.LinkRate, 0, func(f *skb.Frame) { order = append(order, f.Flow) })
	n := New(eng, sys, alloc, nil, DefaultConfig(), link, func(*exec.Ctx, *skb.SKB) {})

	burst := func(flow skb.FlowID) []*skb.Frame {
		out := make([]*skb.Frame, 6)
		for i := range out {
			out[i] = &skb.Frame{Flow: flow, Seq: int64(i) * 8934, Len: 8934}
		}
		return out
	}
	sys.Core(0).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.TCPIP, 100)
		n.SendFrames(ctx, burst(1))
	})
	sys.Core(1).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.TCPIP, 100)
		n.SendFrames(ctx, burst(2))
	})
	eng.Run(sim.Time(time.Millisecond))
	if len(order) != 12 {
		t.Fatalf("delivered %d frames", len(order))
	}
	// After both queues are loaded the scheduler must alternate: no run
	// of more than 2 consecutive same-flow frames.
	run := 1
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			run++
			if run > 2 {
				t.Fatalf("egress did not interleave: %v", order)
			}
		} else {
			run = 1
		}
	}
}

func TestTxCompleteCallbackPerDataFrame(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg, false)
	var completed units.Bytes
	var frames int
	r.nic.SetTxComplete(func(flow skb.FlowID, b units.Bytes) {
		completed += b
		frames++
	})
	r.sys.Core(0).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.TCPIP, 100)
		r.nic.SendFrames(ctx, []*skb.Frame{
			{Flow: 5, Seq: 0, Len: 8934},
			{Flow: 5, Seq: 8934, Len: 8934},
			{Flow: 5, Ack: &skb.AckInfo{Cum: 1}}, // pure ACK: no completion
		})
	})
	r.run(time.Millisecond)
	if frames != 2 || completed != 2*8934 {
		t.Errorf("completions = %d frames / %v bytes, want 2 / %v", frames, completed, units.Bytes(2*8934))
	}
}

func TestMSS(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MSS() != 9000-FrameHeader {
		t.Errorf("MSS = %d", cfg.MSS())
	}
}
