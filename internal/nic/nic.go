// Package nic models a commodity 100Gbps NIC and its driver: per-core Rx
// queues with descriptor rings and page stashes, DMA with DDIO insertion
// into the NIC-local L3, interrupt moderation, NAPI polling with budget
// and softirq re-arming, GRO (software) or LRO (hardware) aggregation,
// TSO-style transmission, and receive flow steering (Table 2 of the
// paper: RSS / RPS / RFS / aRFS core selection).
package nic

import (
	"fmt"
	"time"

	"hostsim/internal/cache"
	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/mem"
	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/telemetry"
	"hostsim/internal/trace"
	"hostsim/internal/units"
	"hostsim/internal/wire"
)

// FrameHeader is the wire overhead per frame (Ethernet+IP+TCP); the MSS is
// MTU minus this, so a full frame occupies exactly MTU bytes on the wire.
const FrameHeader units.Bytes = 66

// Config describes the NIC and driver features in play.
type Config struct {
	RxRing           int           // Rx descriptors per queue
	MTU              units.Bytes   // wire MTU (1500 or 9000)
	TSO              bool          // hardware segmentation offload (Tx)
	GRO              bool          // software receive aggregation
	LRO              bool          // hardware receive aggregation (overrides GRO)
	ModerationDelay  time.Duration // IRQ coalescing time
	ModerationFrames int           // IRQ fires early at this backlog
	NAPIWeight       int           // frames per NAPI poll before re-arming
	// DCAHazardFactor scales the descriptor-count-driven eviction hazard
	// (see cache.DCA); hazard = min(MaxHazard, factor * ringPages/dcaSlots).
	DCAHazardFactor float64
	MaxHazard       float64
}

// DefaultConfig mirrors the paper's all-optimizations-enabled setup.
func DefaultConfig() Config {
	return Config{
		RxRing:           1024,
		MTU:              9000,
		TSO:              true,
		GRO:              true,
		LRO:              false,
		ModerationDelay:  12 * time.Microsecond,
		ModerationFrames: 24,
		NAPIWeight:       64,
		DCAHazardFactor:  0.035,
		MaxHazard:        0.9,
	}
}

// MSS returns the per-frame payload limit.
func (c Config) MSS() units.Bytes { return c.MTU - FrameHeader }

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.RxRing <= 0:
		return fmt.Errorf("nic: RxRing = %d, want > 0", c.RxRing)
	case c.MTU <= FrameHeader:
		return fmt.Errorf("nic: MTU = %d, want > %d", c.MTU, FrameHeader)
	case c.ModerationDelay < 0:
		return fmt.Errorf("nic: negative ModerationDelay")
	case c.ModerationFrames <= 0:
		return fmt.Errorf("nic: ModerationFrames = %d, want > 0", c.ModerationFrames)
	case c.NAPIWeight <= 0:
		return fmt.Errorf("nic: NAPIWeight = %d, want > 0", c.NAPIWeight)
	case c.DCAHazardFactor < 0 || c.MaxHazard < 0 || c.MaxHazard > 1:
		return fmt.Errorf("nic: bad hazard parameters")
	}
	return nil
}

// Steering selects the core whose Rx queue handles a flow — the paper's
// Table 2 mechanisms.
type Steering interface {
	QueueFor(flow skb.FlowID) int
}

// RSS hashes the flow onto one of the given cores (hardware receive side
// scaling: 4-tuple hash → queue).
type RSS struct {
	Cores []int
}

// QueueFor implements Steering.
func (r RSS) QueueFor(flow skb.FlowID) int {
	if len(r.Cores) == 0 {
		panic("nic: RSS with no cores")
	}
	h := uint32(flow) * 2654435761 // Knuth multiplicative hash
	return r.Cores[h%uint32(len(r.Cores))]
}

// Pinned steers flows via an explicit table (aRFS: the NIC learns the core
// the application runs on), with a fallback for unknown flows.
type Pinned struct {
	Table    map[skb.FlowID]int
	Fallback Steering
}

// QueueFor implements Steering.
func (p Pinned) QueueFor(flow skb.FlowID) int {
	if c, ok := p.Table[flow]; ok {
		return c
	}
	if p.Fallback == nil {
		panic(fmt.Sprintf("nic: no steering entry or fallback for flow %d", flow))
	}
	return p.Fallback.QueueFor(flow)
}

// FixedCore steers every flow to one core (the paper's deterministic
// worst case when aRFS is disabled: IRQs pinned to a remote-NUMA core).
type FixedCore int

// QueueFor implements Steering.
func (f FixedCore) QueueFor(skb.FlowID) int { return int(f) }

// Stats counts NIC-level events.
type Stats struct {
	RxFrames    int64
	RxBytes     units.Bytes
	RxDropped   int64 // no descriptor available
	TxFrames    int64
	TxBytes     units.Bytes
	IRQs        int64
	NAPIPolls   int64
	LROCoalesce int64

	// Conservation-audit mirrors: payload bytes of ring-dropped frames,
	// and SKBs/payload handed up the stack by NAPI. RxBytes must equal
	// RxDelivered plus whatever is parked in backlogs and GRO.
	RxDroppedBytes  units.Bytes
	RxDelivered     units.Bytes
	RxDeliveredSKBs int64
}

// DeliverFunc receives fully assembled SKBs from NAPI, in softirq context
// on the queue's core. It is the entry point into TCP/IP Rx processing.
type DeliverFunc func(*exec.Ctx, *skb.SKB)

// TxCompleteFunc is notified (in "hardware" context — no CPU charge) when
// a data frame has been handed to the wire; hosts use it to drive TCP
// small-queue (TSQ) completions.
type TxCompleteFunc func(flow skb.FlowID, bytes units.Bytes)

// NIC is one host's network interface.
type NIC struct {
	eng     *sim.Engine
	sys     *exec.System
	alloc   *mem.Allocator
	dca     *cache.DCA // nil = DCA disabled
	cfg     Config
	egress  wire.Egress
	deliver DeliverFunc
	steer   Steering
	queues  map[int]*rxQueue // by core id
	stats   Stats

	// Egress: one Tx queue per submitting core, drained round-robin one
	// frame at a time — the frame-level interleaving of a multi-queue
	// NIC's DMA scheduler. This is what breaks per-flow burst adjacency
	// on the wire when many cores transmit (Fig. 8c).
	txqs       map[int]*txq
	txOrder    []int
	txNext     int
	txBusy     bool
	txComplete TxCompleteFunc

	// Frames accepted by SendFrames but still riding the Defer to the
	// caller's logical completion time (not yet in any Tx queue).
	txPendingFrames  int
	txPendingPayload units.Bytes
	txDone           func() // bound pump-restart event, allocated once
	txBatchFree      []*txBatch

	tracer    *trace.Tracer // nil = no tracing
	traceHost string

	// Fast-path pools (nil = plain allocation). Shared with the peer NIC:
	// data frames are born at the sender and die at the receiver, so only a
	// pool spanning both ends stays balanced.
	skbPool   *skb.Pool
	framePool *skb.FramePool
}

// txq is one core's egress queue: frames append at the tail and drain from
// a head index, so the backing array is reused instead of reallocated by
// front-slicing.
type txq struct {
	frames []*skb.Frame
	head   int
}

func (t *txq) pending() int { return len(t.frames) - t.head }

type rxQueue struct {
	nic          *NIC
	core         int
	posted       int // descriptors with buffers available
	stash        []mem.Page
	stashDeficit int          // pages taken by DMA since the last replenish
	descDeficit  int          // descriptors consumed since the last replenish
	backlog      []*skb.Frame // arrivals append at the tail, NAPI drains from bhead
	bhead        int
	napi         bool // NAPI scheduled or running
	modTimer     sim.Timer
	irqPending   bool     // charge IRQEntry on next poll
	gro          *skb.GRO // persistent across polls (always drained at poll end)

	pollFn func(*exec.Ctx) // bound poll, allocated once
	modFn  func()          // bound moderation-timer body, allocated once
	out    []*skb.SKB      // per-poll delivery scratch
}

// pendingRx is the frames DMA-ed into the ring but not yet polled.
func (q *rxQueue) pendingRx() int { return len(q.backlog) - q.bhead }

// New builds a NIC. dca may be nil (DCA disabled). egress is the wire
// attachment (a direct link or a fabric ingress port); deliver is the Rx
// upcall.
func New(eng *sim.Engine, sys *exec.System, alloc *mem.Allocator, dca *cache.DCA,
	cfg Config, egress wire.Egress, deliver DeliverFunc) *NIC {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if eng == nil || sys == nil || alloc == nil || egress == nil || deliver == nil {
		panic("nic: nil dependency")
	}
	n := &NIC{
		eng: eng, sys: sys, alloc: alloc, dca: dca, cfg: cfg,
		egress: egress, deliver: deliver,
		steer:  RSS{Cores: []int{0}},
		queues: make(map[int]*rxQueue),
		txqs:   make(map[int]*txq),
	}
	n.txDone = func() {
		n.txBusy = false
		n.pumpTx()
	}
	if dca != nil {
		dca.SetHazard(n.DCAHazard())
	}
	return n
}

// DCAHazard computes the descriptor-count-driven eviction hazard for the
// configured ring (see cache.DCA and Fig. 3e).
func (n *NIC) DCAHazard() float64 {
	if n.dca == nil {
		return 0
	}
	pagesPerFrame := n.alloc.PagesFor(n.cfg.MTU)
	ringPages := float64(n.cfg.RxRing * pagesPerFrame)
	h := n.cfg.DCAHazardFactor * ringPages / float64(n.dca.Capacity())
	if h > n.cfg.MaxHazard {
		h = n.cfg.MaxHazard
	}
	return h
}

// SetSteering installs the receive flow steering policy.
func (n *NIC) SetSteering(s Steering) {
	if s == nil {
		panic("nic: nil steering")
	}
	n.steer = s
}

// Config returns the NIC configuration.
func (n *NIC) Config() Config { return n.cfg }

// Stats returns a copy of the counters.
func (n *NIC) Stats() Stats { return n.stats }

// Egress returns the wire attachment (tests).
func (n *NIC) Egress() wire.Egress { return n.egress }

// queue returns (creating if needed) the Rx queue bound to core.
func (n *NIC) queue(core int) *rxQueue {
	q, ok := n.queues[core]
	if !ok {
		q = &rxQueue{nic: n, core: core, posted: n.cfg.RxRing}
		q.pollFn = q.poll
		q.modFn = func() {
			if !q.napi && q.pendingRx() > 0 {
				q.fireIRQ()
			}
		}
		// Pre-fill the page stash for all posted descriptors, as the
		// driver does at ifup. Boot-time cost is not accounted.
		pages := n.cfg.RxRing * n.alloc.PagesFor(n.cfg.MTU)
		q.stash = n.alloc.Alloc(cpumodel.Discard{}, core, pages)
		n.queues[core] = q
	}
	return q
}

// SetTxComplete installs the Tx completion callback.
func (n *NIC) SetTxComplete(fn TxCompleteFunc) { n.txComplete = fn }

// SetPools installs the SKB/frame recycling pools for the receive fast
// path. Both may be nil (plain allocation). Call before traffic starts;
// the pools are typically shared with the peer NIC on the same link.
func (n *NIC) SetPools(skbs *skb.Pool, frames *skb.FramePool) {
	n.skbPool = skbs
	n.framePool = frames
}

// SKBPool returns the installed SKB pool (possibly nil).
func (n *NIC) SKBPool() *skb.Pool { return n.skbPool }

// FramePool returns the installed frame pool (possibly nil).
func (n *NIC) FramePool() *skb.FramePool { return n.framePool }

// SetTrace installs a tracer (nil = none) for NIC-level events — descriptor
// drops and GRO flushes — tagged with the owning host's name.
func (n *NIC) SetTrace(tr *trace.Tracer, host string) {
	n.tracer = tr
	n.traceHost = host
}

// RingOccupancy returns the number of Rx descriptors currently holding
// DMA-ed frames across all queues (posted descriptors consumed but not yet
// replenished by NAPI).
func (n *NIC) RingOccupancy() int {
	occ := 0
	for _, q := range n.queues {
		occ += n.cfg.RxRing - q.posted
	}
	return occ
}

// RxBacklog returns the frames (and payload bytes) DMA-ed into rings but
// not yet processed by NAPI, across all queues.
func (n *NIC) RxBacklog() (int, units.Bytes) {
	var frames int
	var payload units.Bytes
	for _, q := range n.queues {
		frames += q.pendingRx()
		for _, f := range q.backlog[q.bhead:] {
			payload += f.Len
		}
	}
	return frames, payload
}

// GROHeld returns the SKBs (and payload bytes) parked in GRO engines
// across all queues.
func (n *NIC) GROHeld() (int, units.Bytes) {
	var skbs int
	var payload units.Bytes
	for _, q := range n.queues {
		if q.gro == nil {
			continue
		}
		skbs += q.gro.Held()
		payload += q.gro.HeldBytes()
	}
	return skbs, payload
}

// TxQueued returns the frames (and payload bytes) sitting in Tx queues or
// still in flight toward them, accepted by SendFrames but not yet pushed
// onto the wire.
func (n *NIC) TxQueued() (int, units.Bytes) {
	frames := n.txPendingFrames
	payload := n.txPendingPayload
	for _, t := range n.txqs {
		frames += t.pending()
		for _, f := range t.frames[t.head:] {
			payload += f.Len
		}
	}
	return frames, payload
}

// PostedBounds returns the smallest and largest posted-descriptor count
// across Rx queues; a healthy driver keeps every queue within
// [0, RxRing]. With no queues yet, both bounds are RxRing.
func (n *NIC) PostedBounds() (lo, hi int) {
	lo, hi = n.cfg.RxRing, n.cfg.RxRing
	first := true
	for _, q := range n.queues {
		if first || q.posted < lo {
			lo = q.posted
		}
		if first || q.posted > hi {
			hi = q.posted
		}
		first = false
	}
	return lo, hi
}

// RegisterTelemetry registers the NIC's gauges under prefix (e.g.
// "rx/"). Probes are pure reads; no-op on a nil registry.
func (n *NIC) RegisterTelemetry(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Gauge(prefix+"ring_occupancy", func() float64 { return float64(n.RingOccupancy()) })
	reg.Gauge(prefix+"rx_frames", func() float64 { return float64(n.stats.RxFrames) })
	reg.Gauge(prefix+"rx_dropped", func() float64 { return float64(n.stats.RxDropped) })
	reg.Gauge(prefix+"tx_frames", func() float64 { return float64(n.stats.TxFrames) })
	reg.Gauge(prefix+"irqs", func() float64 { return float64(n.stats.IRQs) })
	reg.Gauge(prefix+"napi_polls", func() float64 { return float64(n.stats.NAPIPolls) })
	reg.Gauge(prefix+"gro_avg_frames", func() float64 {
		if n.stats.NAPIPolls == 0 {
			return 0
		}
		return float64(n.stats.RxFrames) / float64(n.stats.NAPIPolls)
	})
}

// RegisterQueueTelemetry registers the NIC's instantaneous queue-depth
// gauges — Rx ring occupancy, NAPI backlog, GRO-held aggregation state and
// Tx queue depth — into reg under prefix. These are the `ss`-style
// diagnostics of the inspect layer: pure reads of where bytes are parked
// right now, complementing RegisterTelemetry's cumulative counters.
func (n *NIC) RegisterQueueTelemetry(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Gauge(prefix+"ring_occupancy", func() float64 { return float64(n.RingOccupancy()) })
	reg.Gauge(prefix+"rx_backlog_frames", func() float64 { f, _ := n.RxBacklog(); return float64(f) })
	reg.Gauge(prefix+"rx_backlog_bytes", func() float64 { _, b := n.RxBacklog(); return float64(b) })
	reg.Gauge(prefix+"gro_held_skbs", func() float64 { s, _ := n.GROHeld(); return float64(s) })
	reg.Gauge(prefix+"gro_held_bytes", func() float64 { _, b := n.GROHeld(); return float64(b) })
	reg.Gauge(prefix+"tx_queued_frames", func() float64 { f, _ := n.TxQueued(); return float64(f) })
	reg.Gauge(prefix+"tx_queued_bytes", func() float64 { _, b := n.TxQueued(); return float64(b) })
}

// txBatch carries one SendFrames call's frames across the Defer to the
// caller's logical completion time. Batches are pooled per NIC, and the
// frame pointers are copied in, so callers may reuse their slice as soon
// as SendFrames returns.
type txBatch struct {
	nic     *NIC
	core    int
	frames  []*skb.Frame
	payload units.Bytes
}

func (n *NIC) getTxBatch() *txBatch {
	if k := len(n.txBatchFree); k > 0 {
		b := n.txBatchFree[k-1]
		n.txBatchFree = n.txBatchFree[:k-1]
		return b
	}
	return &txBatch{nic: n}
}

// sendFramesEv lands a deferred Tx batch in its queue; static so
// SendFrames never allocates in steady state.
func sendFramesEv(a any) {
	b := a.(*txBatch)
	n := b.nic
	n.txPendingFrames -= len(b.frames)
	n.txPendingPayload -= b.payload
	n.enqueueTx(b.core, b.frames)
	for i := range b.frames {
		b.frames[i] = nil
	}
	b.frames = b.frames[:0]
	b.payload = 0
	n.txBatchFree = append(n.txBatchFree, b)
}

// SendFrames enqueues Tx frames on the calling core's Tx queue at the
// context's logical time, charging the per-skb doorbell cost. The egress
// scheduler drains queues round-robin at line rate. The slice is not
// retained: callers may reuse it immediately.
func (n *NIC) SendFrames(ctx *exec.Ctx, frames []*skb.Frame) {
	if len(frames) == 0 {
		return
	}
	ctx.Charge(cpumodel.Netdev, ctx.Costs().TxDoorbell)
	b := n.getTxBatch()
	b.core = ctx.Core().ID()
	b.frames = append(b.frames, frames...)
	for _, f := range frames {
		b.payload += f.Len
	}
	n.txPendingFrames += len(b.frames)
	n.txPendingPayload += b.payload
	ctx.DeferArg(sendFramesEv, b)
}

// SendFramesNow is SendFrames for non-CPU contexts. It enqueues on queue
// 0 immediately with no CPU charge; prefer SendFrames.
func (n *NIC) SendFramesNow(frames []*skb.Frame) {
	n.enqueueTx(0, frames)
}

func (n *NIC) enqueueTx(core int, frames []*skb.Frame) {
	n.stats.TxFrames += int64(len(frames))
	for _, f := range frames {
		n.stats.TxBytes += f.WireSize()
	}
	t, ok := n.txqs[core]
	if !ok {
		t = &txq{}
		n.txqs[core] = t
		n.txOrder = append(n.txOrder, core)
	}
	t.frames = append(t.frames, frames...)
	n.pumpTx()
}

// pumpTx drains the Tx queues round-robin, one frame per service slot, at
// line rate.
func (n *NIC) pumpTx() {
	if n.txBusy {
		return
	}
	f := n.nextTxFrame()
	if f == nil {
		return
	}
	n.txBusy = true
	f.NICTxAt = n.eng.Now()
	n.egress.Send(f)
	if n.txComplete != nil && !f.IsAck() && f.Len > 0 {
		n.txComplete(f.Flow, f.Len)
	}
	n.eng.After(n.egress.Rate().Serialize(f.WireSize()), n.txDone)
}

func (n *NIC) nextTxFrame() *skb.Frame {
	for i := 0; i < len(n.txOrder); i++ {
		n.txNext = (n.txNext + 1) % len(n.txOrder)
		t := n.txqs[n.txOrder[n.txNext]]
		if t.head >= len(t.frames) {
			continue
		}
		f := t.frames[t.head]
		t.frames[t.head] = nil
		t.head++
		if t.head == len(t.frames) {
			// Drained: rewind so the backing array is reused from the front.
			t.frames = t.frames[:0]
			t.head = 0
		}
		return f
	}
	return nil
}

// ReceiveFromWire is the link delivery callback: DMA the frame into host
// memory and schedule NAPI per the moderation policy.
func (n *NIC) ReceiveFromWire(f *skb.Frame) {
	f.WireAt = n.eng.Now()
	core := n.steer.QueueFor(f.Flow)
	q := n.queue(core)
	if q.posted <= 0 {
		n.stats.RxDropped++
		n.stats.RxDroppedBytes += f.Len
		n.tracer.Emit(trace.Event{
			At: n.eng.Now(), Host: n.traceHost, Core: core, Flow: f.Flow,
			Kind: trace.Drop, A: f.Seq, B: int64(f.Len),
		})
		n.framePool.Put(f)
		return
	}
	q.posted--
	n.stats.RxFrames++
	n.stats.RxBytes += f.Len
	// DMA: attach pages and, if the memory lands on the NIC-local node
	// with DCA enabled, push the lines into the L3 (DDIO).
	need := n.alloc.PagesFor(f.Len)
	if need > len(q.stash) {
		// Stash exhausted (replenish lag): emergency refill with no CPU
		// cost attribution (the DMA engine stalls, not the CPU).
		q.stash = append(q.stash, n.alloc.Alloc(cpumodel.Discard{}, q.core, need-len(q.stash))...)
	}
	if cap(f.Pages) >= need {
		f.Pages = f.Pages[:need]
	} else {
		f.Pages = make([]mem.Page, need)
	}
	copy(f.Pages, q.stash[len(q.stash)-need:])
	q.stash = q.stash[:len(q.stash)-need]
	q.stashDeficit += need
	q.descDeficit++
	if n.dca != nil {
		nicNode := n.sys.Spec().NICNode
		for _, p := range f.Pages {
			if p.Node == nicNode {
				n.dca.Insert(p.ID)
			}
		}
	}
	if n.cfg.LRO && q.tryLRO(f) {
		n.stats.LROCoalesce++
	} else {
		q.backlog = append(q.backlog, f)
	}
	q.maybeInterrupt()
}

// tryLRO coalesces f into the last backlog frame if contiguous, same-flow
// and within the 64KB aggregate bound — hardware aggregation, no CPU cost.
func (q *rxQueue) tryLRO(f *skb.Frame) bool {
	if f.IsAck() || q.pendingRx() == 0 {
		return false
	}
	last := q.backlog[len(q.backlog)-1]
	if last.IsAck() || last.Flow != f.Flow {
		return false
	}
	if last.Seq+int64(last.Len) != f.Seq || last.Len+f.Len > skb.MaxGROSize {
		return false
	}
	last.Len += f.Len
	last.Pages = append(last.Pages, f.Pages...)
	last.CE = last.CE || f.CE
	// The page refs were copied into last; f is dead and can be reused.
	q.nic.framePool.Put(f)
	return true
}

// maybeInterrupt applies the IRQ moderation policy.
func (q *rxQueue) maybeInterrupt() {
	if q.napi {
		return // NAPI already scheduled/running; it will see the backlog
	}
	if q.pendingRx() >= q.nic.cfg.ModerationFrames {
		q.modTimer.Stop()
		q.fireIRQ()
		return
	}
	if !q.modTimer.Pending() {
		q.modTimer = q.nic.eng.After(q.nic.cfg.ModerationDelay, q.modFn)
	}
}

func (q *rxQueue) fireIRQ() {
	q.nic.stats.IRQs++
	q.napi = true
	q.irqPending = true
	q.scheduleNAPI()
}

func (q *rxQueue) scheduleNAPI() {
	q.nic.sys.Core(q.core).RaiseSoftirq(q.pollFn)
}

// poll is the NAPI handler: drain up to NAPIWeight frames, build skbs,
// aggregate, deliver upwards, replenish descriptors, and either re-arm
// interrupts or re-schedule itself.
func (q *rxQueue) poll(ctx *exec.Ctx) {
	n := q.nic
	costs := ctx.Costs()
	n.stats.NAPIPolls++
	if q.irqPending {
		ctx.Charge(cpumodel.Etc, costs.IRQEntry)
		q.irqPending = false
	}
	ctx.Charge(cpumodel.Netdev, costs.NAPIPollBase)

	budget := n.cfg.NAPIWeight
	if budget > q.pendingRx() {
		budget = q.pendingRx()
	}
	batch := q.backlog[q.bhead : q.bhead+budget]
	q.bhead += budget

	useGRO := n.cfg.GRO && !n.cfg.LRO
	if useGRO && q.gro == nil {
		q.gro = skb.NewGROPooled(costs, n.skbPool, n.framePool)
	}
	consumed := 0
	out := q.out[:0]
	for _, f := range batch {
		f.Born = ctx.Now()
		ctx.SetFlowTag(int32(f.Flow))
		consumed++
		ctx.Charge(cpumodel.Netdev, costs.NAPIPerFrame)
		ctx.Charge(cpumodel.SKBMgmt, costs.SKBBuild)
		ctx.Charge(cpumodel.Memory, costs.SKBAlloc)
		n.alloc.DMAUnmap(ctx, len(f.Pages))
		if useGRO {
			out = q.gro.Receive(ctx, f, out)
		} else {
			s := n.skbPool.Get(f)
			if n.skbPool != nil {
				// Pooled Gets copy the page refs out, so the frame is dead.
				n.framePool.Put(f)
			}
			out = append(out, s)
		}
	}
	if useGRO {
		out = q.gro.Flush(out)
	}
	if n.tracer != nil && len(out) > 0 {
		var bytes int64
		for _, s := range out {
			bytes += int64(s.Len)
		}
		n.tracer.Emit(trace.Event{
			At: ctx.Now(), Host: n.traceHost, Core: q.core,
			Kind: trace.GROFlush, A: int64(len(out)), B: bytes,
		})
	}
	for _, s := range out {
		s.GROAt = ctx.Now()
		ctx.SetFlowTag(int32(s.Flow))
		n.stats.RxDeliveredSKBs++
		n.stats.RxDelivered += s.Len
		n.deliver(ctx, s)
	}
	for i := range out {
		out[i] = nil // delivered SKBs are recycled downstream; don't retain
	}
	q.out = out[:0]
	ctx.SetFlowTag(0)

	// Replenish: re-post the descriptors consumed since the last poll and
	// restock exactly the pages DMA took from the stash.
	if consumed > 0 {
		if q.stashDeficit > 0 {
			q.stash = n.alloc.AppendAlloc(ctx, q.core, q.stashDeficit, q.stash)
			n.alloc.DMAMap(ctx, q.stashDeficit)
			q.stashDeficit = 0
		}
		q.posted += q.descDeficit
		q.descDeficit = 0
	}

	for i := range batch {
		batch[i] = nil // frames recycled (or owned by GRO/SKBs) — don't retain
	}
	if q.pendingRx() > 0 {
		// More arrived than budget: stay in softirq (no new IRQ).
		q.scheduleNAPI()
		return
	}
	// Drained: rewind so the backing array is reused from the front.
	q.backlog = q.backlog[:0]
	q.bhead = 0
	q.napi = false // napi_complete: re-arm interrupts
}
