// Package trace provides a lightweight event tracer for the simulated
// data path — the equivalent of the paper's kernel instrumentation
// scripts. Hosts emit typed events (syscalls, segment transmissions,
// deliveries, acks, retransmissions) into a bounded ring; tools dump a
// flow's timeline for debugging and teaching.
//
// A nil *Tracer is valid and free: every method no-ops, so the data path
// carries no tracing cost unless a tracer is installed.
package trace

import (
	"fmt"
	"io"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
)

// Kind classifies a traced event.
type Kind uint8

// Event kinds along the Fig. 1 data path. The span kinds (SoftirqStart
// through ThreadEnd) delimit per-core execution of one work item; for
// those, A carries the dominant Table-1 category index and B the cycles
// charged. Drop marks a NIC descriptor drop; GROFlush marks the end of a
// NAPI poll's aggregation (A = skbs delivered up, B = payload bytes).
const (
	AppWrite     Kind = iota // application write syscall accepted bytes
	AppRead                  // application read syscall copied bytes
	TxSegment                // TCP handed a segment to the NIC
	Retransmit               // TCP retransmitted a range
	DeliverSKB               // an skb reached TCP/IP Rx processing
	AckSent                  // receiver emitted an ACK
	Drop                     // NIC dropped a frame (no Rx descriptor)
	GROFlush                 // NAPI poll flushed its GRO aggregates
	SoftirqStart             // a softirq work item began executing
	SoftirqEnd               // a softirq work item finished
	ThreadStart              // a thread quantum began executing
	ThreadEnd                // a thread quantum finished
	numKinds
)

var kindNames = [numKinds]string{
	"app-write", "app-read", "tx-segment", "retransmit", "deliver-skb", "ack-sent",
	"drop", "gro-flush", "softirq-start", "softirq-end", "thread-start", "thread-end",
}

func (k Kind) String() string {
	if k >= numKinds {
		return "invalid"
	}
	return kindNames[k]
}

// Event is one traced occurrence. A and B are kind-specific: sequence
// number and length for data events, cumulative ack and window for acks.
type Event struct {
	At   sim.Time
	Host string
	Core int
	Flow skb.FlowID
	Kind Kind
	A, B int64
}

func (e Event) String() string {
	switch e.Kind {
	case AckSent:
		return fmt.Sprintf("%-12v %-8s core%-3d flow%-4d %-11s cum=%d wnd=%d",
			e.At, e.Host, e.Core, e.Flow, e.Kind, e.A, e.B)
	case SoftirqStart, SoftirqEnd, ThreadStart, ThreadEnd:
		return fmt.Sprintf("%-12v %-8s core%-3d flow%-4d %-11s cat=%d cyc=%d",
			e.At, e.Host, e.Core, e.Flow, e.Kind, e.A, e.B)
	case GROFlush:
		return fmt.Sprintf("%-12v %-8s core%-3d flow%-4d %-11s skbs=%d bytes=%d",
			e.At, e.Host, e.Core, e.Flow, e.Kind, e.A, e.B)
	default:
		return fmt.Sprintf("%-12v %-8s core%-3d flow%-4d %-11s seq=%d len=%d",
			e.At, e.Host, e.Core, e.Flow, e.Kind, e.A, e.B)
	}
}

// Tracer is a bounded ring of events. The zero value is unusable;
// construct with New. A nil Tracer is a valid no-op sink.
type Tracer struct {
	ring    []Event
	next    int
	wrapped bool
	flow    skb.FlowID // 0 = all flows
	dropped int64
}

// New builds a tracer holding the most recent max events.
func New(max int) *Tracer {
	if max <= 0 {
		panic("trace: non-positive capacity")
	}
	return &Tracer{ring: make([]Event, 0, max)}
}

// FilterFlow restricts recording to one flow (0 = all).
func (t *Tracer) FilterFlow(f skb.FlowID) {
	if t == nil {
		return
	}
	t.flow = f
}

// Emit records an event. Safe on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if t.flow != 0 && e.Flow != t.flow {
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % cap(t.ring)
	t.wrapped = true
	t.dropped++
}

// Events returns the recorded events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]Event, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]Event, 0, cap(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Dropped returns how many events were evicted from the ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Dump writes the timeline to w, oldest first.
func (t *Tracer) Dump(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d earlier events evicted)\n", d); err != nil {
			return err
		}
	}
	return nil
}
