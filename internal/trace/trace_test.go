package trace

import (
	"strings"
	"testing"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
)

func ev(at int64, flow skb.FlowID, k Kind) Event {
	return Event{At: sim.Time(at), Host: "rcv", Core: 0, Flow: flow, Kind: k, A: at, B: 100}
}

func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{})
	tr.FilterFlow(3)
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer must be a pure no-op")
	}
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil || sb.Len() != 0 {
		t.Error("nil tracer Dump should write nothing")
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	tr := New(3)
	for i := int64(1); i <= 5; i++ {
		tr.Emit(ev(i, 1, AppRead))
	}
	got := tr.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, want := range []int64{3, 4, 5} {
		if got[i].A != want {
			t.Errorf("event %d = %d, want %d (oldest first)", i, got[i].A, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
}

func TestOrderBeforeWrap(t *testing.T) {
	tr := New(10)
	for i := int64(1); i <= 4; i++ {
		tr.Emit(ev(i, 1, TxSegment))
	}
	got := tr.Events()
	if len(got) != 4 || got[0].A != 1 || got[3].A != 4 {
		t.Errorf("events = %v", got)
	}
}

func TestFlowFilter(t *testing.T) {
	tr := New(10)
	tr.FilterFlow(7)
	tr.Emit(ev(1, 7, AppWrite))
	tr.Emit(ev(2, 8, AppWrite))
	tr.Emit(ev(3, 7, AckSent))
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (flow filter)", tr.Len())
	}
	for _, e := range tr.Events() {
		if e.Flow != 7 {
			t.Errorf("flow %d leaked through the filter", e.Flow)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		AppWrite: "app-write", AppRead: "app-read", TxSegment: "tx-segment",
		Retransmit: "retransmit", DeliverSKB: "deliver-skb", AckSent: "ack-sent",
		Drop: "drop", GROFlush: "gro-flush",
		SoftirqStart: "softirq-start", SoftirqEnd: "softirq-end",
		ThreadStart: "thread-start", ThreadEnd: "thread-end",
		Kind(99): "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// Every declared kind must have a distinct, non-empty name: the names are
// the public identifiers in Result.Trace and the Chrome-trace export.
func TestKindNamesCompleteAndUnique(t *testing.T) {
	seen := make(map[string]Kind)
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || s == "invalid" {
			t.Errorf("kind %d has no name", k)
			continue
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, s)
		}
		seen[s] = k
	}
}

func TestSpanAndNICEventFormats(t *testing.T) {
	cases := []struct {
		e    Event
		want []string
	}{
		{Event{Host: "snd", Core: 1, Kind: SoftirqStart, A: 3, B: 12345},
			[]string{"softirq-start", "cat=3", "cyc=12345"}},
		{Event{Host: "snd", Core: 1, Kind: ThreadEnd, A: 0, B: 99},
			[]string{"thread-end", "cat=0", "cyc=99"}},
		{Event{Host: "rcv", Core: 0, Kind: GROFlush, A: 4, B: 180000},
			[]string{"gro-flush", "skbs=4", "bytes=180000"}},
		{Event{Host: "rcv", Core: 0, Flow: 2, Kind: Drop, A: 4096, B: 1500},
			[]string{"drop", "seq=4096", "len=1500"}},
	}
	for _, c := range cases {
		out := c.e.String()
		for _, want := range c.want {
			if !strings.Contains(out, want) {
				t.Errorf("%v.String() = %q, missing %q", c.e.Kind, out, want)
			}
		}
	}
}

func TestDumpFormats(t *testing.T) {
	tr := New(4)
	tr.Emit(Event{Host: "snd", Core: 2, Flow: 1, Kind: TxSegment, A: 8934, B: 65536})
	tr.Emit(Event{Host: "rcv", Core: 0, Flow: 1, Kind: AckSent, A: 65536, B: 3 << 20})
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"tx-segment", "seq=8934", "ack-sent", "cum=65536", "wnd="} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// Wrap-around must preserve global emission order, not just membership.
func TestWrapAroundOrdering(t *testing.T) {
	tr := New(4)
	for i := int64(1); i <= 11; i++ {
		tr.Emit(ev(i, 1, DeliverSKB))
	}
	got := tr.Events()
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].At <= got[i-1].At {
			t.Fatalf("events out of order after wrap: %v", got)
		}
	}
	if got[0].A != 8 || got[3].A != 11 {
		t.Errorf("expected events 8..11, got %v", got)
	}
	if tr.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", tr.Dropped())
	}
}

func TestDumpReportsEvicted(t *testing.T) {
	tr := New(2)
	for i := int64(1); i <= 5; i++ {
		tr.Emit(ev(i, 1, AppWrite))
	}
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3 earlier events evicted") {
		t.Errorf("dump should note evictions:\n%s", sb.String())
	}
}

func TestFilterFlowZeroRecordsAll(t *testing.T) {
	tr := New(10)
	tr.FilterFlow(7)
	tr.FilterFlow(0) // reset to all flows
	tr.Emit(ev(1, 7, AppWrite))
	tr.Emit(ev(2, 8, AppWrite))
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2 after clearing the filter", tr.Len())
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}
