package trace

import (
	"strings"
	"testing"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
)

func ev(at int64, flow skb.FlowID, k Kind) Event {
	return Event{At: sim.Time(at), Host: "rcv", Core: 0, Flow: flow, Kind: k, A: at, B: 100}
}

func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{})
	tr.FilterFlow(3)
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer must be a pure no-op")
	}
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil || sb.Len() != 0 {
		t.Error("nil tracer Dump should write nothing")
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	tr := New(3)
	for i := int64(1); i <= 5; i++ {
		tr.Emit(ev(i, 1, AppRead))
	}
	got := tr.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, want := range []int64{3, 4, 5} {
		if got[i].A != want {
			t.Errorf("event %d = %d, want %d (oldest first)", i, got[i].A, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
}

func TestOrderBeforeWrap(t *testing.T) {
	tr := New(10)
	for i := int64(1); i <= 4; i++ {
		tr.Emit(ev(i, 1, TxSegment))
	}
	got := tr.Events()
	if len(got) != 4 || got[0].A != 1 || got[3].A != 4 {
		t.Errorf("events = %v", got)
	}
}

func TestFlowFilter(t *testing.T) {
	tr := New(10)
	tr.FilterFlow(7)
	tr.Emit(ev(1, 7, AppWrite))
	tr.Emit(ev(2, 8, AppWrite))
	tr.Emit(ev(3, 7, AckSent))
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (flow filter)", tr.Len())
	}
	for _, e := range tr.Events() {
		if e.Flow != 7 {
			t.Errorf("flow %d leaked through the filter", e.Flow)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		AppWrite: "app-write", AppRead: "app-read", TxSegment: "tx-segment",
		Retransmit: "retransmit", DeliverSKB: "deliver-skb", AckSent: "ack-sent",
		Kind(99): "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestDumpFormats(t *testing.T) {
	tr := New(4)
	tr.Emit(Event{Host: "snd", Core: 2, Flow: 1, Kind: TxSegment, A: 8934, B: 65536})
	tr.Emit(Event{Host: "rcv", Core: 0, Flow: 1, Kind: AckSent, A: 65536, B: 3 << 20})
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"tx-segment", "seq=8934", "ack-sent", "cum=65536", "wnd="} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}
