package cache

import (
	"math/rand"
	"testing"

	"hostsim/internal/units"
)

// BenchmarkDCAInsertProbeDrop measures the per-page cache model cost in
// its steady-state cycle (every received byte goes through it).
func BenchmarkDCAInsertProbeDrop(b *testing.B) {
	d := NewDCA(DCAConfig{
		Capacity: 3 * units.MB,
		PageSize: 4 * units.KB,
		Rand:     rand.New(rand.NewSource(1)),
	})
	d.SetHazard(0.1)
	var fifo []PageID
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := PageID(i)
		d.Insert(p)
		fifo = append(fifo, p)
		if len(fifo) > 700 {
			q := fifo[0]
			fifo = fifo[1:]
			d.Probe(q)
			d.Drop(q)
		}
	}
}

// BenchmarkWorkingSetMissRate measures the sender-side estimator.
func BenchmarkWorkingSetMissRate(b *testing.B) {
	w := WorkingSet{Capacity: 20 * units.MB, BaseMiss: 0.04}
	for i := 0; i < b.N; i++ {
		w.MissRate(units.Bytes(i % (64 << 20)))
	}
}
