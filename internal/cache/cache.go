// Package cache models the parts of the CPU cache hierarchy that the paper
// shows to matter for network processing: the DDIO/DCA slice of the
// NIC-local L3 that the NIC DMAs into, and a coarse working-set model for
// the sender-side cache.
//
// The DCA model is a set-associative, page-granularity cache with an
// insertion-eviction hazard. Two phenomena from §3.1 of the paper are
// covered:
//
//  1. When in-flight (DMAed but not yet copied) data exceeds the DCA
//     capacity, pages are evicted before the application copies them —
//     the BDP-vs-cache-size effect. This falls out of plain capacity
//     eviction.
//  2. With a large number of NIC Rx descriptors, "the likelihood of a DCA
//     write evicting some previously written data increases", even when
//     occupancy is below capacity (the paper attributes this to DDIO's
//     limited way allocation and complex cache addressing). We model this
//     directly: each insert additionally evicts the LRU entry of a
//     uniformly random set with a configurable hazard probability, which
//     the NIC derives from its ring geometry (see nic.DCAHazard).
package cache

import (
	"fmt"
	"math/rand"

	"hostsim/internal/units"
)

// PageID identifies a physical page for cache purposes. IDs are assigned
// by the memory allocator and persist across page recycling.
type PageID int64

// DCAConfig configures the DDIO cache model.
type DCAConfig struct {
	Capacity units.Bytes // DDIO-usable bytes of the NIC-local L3
	PageSize units.Bytes
	Ways     int        // set associativity; 0 means the default of 8
	Rand     *rand.Rand // source for hazard evictions; required if Hazard > 0
}

// DCAStats counts cache events, in pages.
type DCAStats struct {
	Inserts   int64 // pages DMAed into the cache
	Evictions int64 // pages pushed out before being consumed
	Hits      int64 // probed pages found resident
	Misses    int64 // probed pages not resident
	Drops     int64 // pages invalidated after consumption
}

// MissRate returns misses/(hits+misses), or 0 if nothing was probed.
func (s DCAStats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

type dcaEntry struct {
	page PageID
	prev int // index into entries, -1 = none (LRU end)
	next int
}

// DCA is the DDIO cache. The zero value is not usable; construct with
// NewDCA.
type DCA struct {
	numSets  int
	ways     int
	pageSize units.Bytes
	hazard   float64
	rng      *rand.Rand
	// sets[s] is an LRU-ordered list of resident pages; small (<=ways) so a
	// slice scan is fast and allocation-free.
	sets     [][]PageID
	resident map[PageID]int // page -> set index
	stats    DCAStats
}

// NewDCA builds a DCA cache; capacity is rounded down to whole pages.
func NewDCA(cfg DCAConfig) *DCA {
	if cfg.PageSize <= 0 {
		panic("cache: non-positive page size")
	}
	ways := cfg.Ways
	if ways == 0 {
		ways = 8
	}
	if ways < 1 {
		panic("cache: non-positive ways")
	}
	slots := int(cfg.Capacity / cfg.PageSize)
	if slots < ways {
		slots = ways
	}
	numSets := slots / ways
	if numSets < 1 {
		numSets = 1
	}
	d := &DCA{
		numSets:  numSets,
		ways:     ways,
		pageSize: cfg.PageSize,
		rng:      cfg.Rand,
		sets:     make([][]PageID, numSets),
		resident: make(map[PageID]int, numSets*ways),
	}
	return d
}

// SetHazard sets the per-insert probability of a hazard eviction (a DCA
// write displacing unconsumed data in an unrelated set). The NIC computes
// this from descriptor-ring geometry. Panics if p is outside [0,1] or if
// p > 0 and no random source was configured.
func (d *DCA) SetHazard(p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("cache: hazard %v outside [0,1]", p))
	}
	if p > 0 && d.rng == nil {
		panic("cache: hazard requires a random source")
	}
	d.hazard = p
}

// Hazard returns the configured hazard probability.
func (d *DCA) Hazard() float64 { return d.hazard }

// setOf returns a page's persistent set assignment (splitmix64 of the id).
func (d *DCA) setOf(p PageID) int {
	z := uint64(p) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(d.numSets))
}

// Insert records a DMA write of page p into the cache. If p's set is full
// the least recently inserted page in that set is evicted. Re-inserting a
// resident page refreshes its LRU position.
func (d *DCA) Insert(p PageID) {
	s := d.setOf(p)
	set := d.sets[s]
	if _, ok := d.resident[p]; ok {
		// Refresh: move to MRU position.
		for i, q := range set {
			if q == p {
				copy(set[i:], set[i+1:])
				set[len(set)-1] = p
				break
			}
		}
		return
	}
	d.stats.Inserts++
	if len(set) >= d.ways {
		victim := set[0]
		copy(set, set[1:])
		set = set[:len(set)-1]
		delete(d.resident, victim)
		d.stats.Evictions++
	}
	d.sets[s] = append(set, p)
	d.resident[p] = s
	if d.hazard > 0 && len(d.resident) > 1 && d.rng.Float64() < d.hazard {
		d.hazardEvict(p)
	}
}

// hazardEvict drops the LRU entry of a uniformly random non-empty set,
// sparing the just-inserted page. It models a DCA write displacing
// unconsumed data due to DDIO's restricted ways / complex addressing.
func (d *DCA) hazardEvict(justInserted PageID) {
	// Try a few random sets; with a mostly-empty cache we may find none,
	// which is the correct behaviour (nothing to displace).
	for attempt := 0; attempt < 4; attempt++ {
		s := d.rng.Intn(d.numSets)
		set := d.sets[s]
		if len(set) == 0 {
			continue
		}
		victim := set[0]
		if victim == justInserted {
			if len(set) == 1 {
				continue
			}
			victim = set[1]
			copy(set[1:], set[2:])
			d.sets[s] = set[:len(set)-1]
		} else {
			copy(set, set[1:])
			d.sets[s] = set[:len(set)-1]
		}
		delete(d.resident, victim)
		d.stats.Evictions++
		return
	}
}

// Probe reports whether page p is resident, counting a hit or miss. It
// does not change residency: the consumer calls Drop once the data has
// been copied out and the page is released.
func (d *DCA) Probe(p PageID) bool {
	if _, ok := d.resident[p]; ok {
		d.stats.Hits++
		return true
	}
	d.stats.Misses++
	return false
}

// Contains reports residency without touching the stats.
func (d *DCA) Contains(p PageID) bool {
	_, ok := d.resident[p]
	return ok
}

// Drop invalidates page p (called when the copied-out page is freed),
// releasing its slot. Dropping a non-resident page is a no-op.
func (d *DCA) Drop(p PageID) {
	s, ok := d.resident[p]
	if !ok {
		return
	}
	set := d.sets[s]
	for i, q := range set {
		if q == p {
			copy(set[i:], set[i+1:])
			d.sets[s] = set[:len(set)-1]
			break
		}
	}
	delete(d.resident, p)
	d.stats.Drops++
}

// Resident returns the number of resident pages.
func (d *DCA) Resident() int { return len(d.resident) }

// Capacity returns the total page slots.
func (d *DCA) Capacity() int { return d.numSets * d.ways }

// Stats returns a copy of the counters.
func (d *DCA) Stats() DCAStats { return d.stats }

// ResetStats zeroes the counters (used when a measurement window starts
// after warm-up).
func (d *DCA) ResetStats() { d.stats = DCAStats{} }

func (d *DCA) String() string {
	return fmt.Sprintf("DCA(%d sets x %d ways, %d resident)", d.numSets, d.ways, len(d.resident))
}

// WorkingSet is a coarse miss-rate estimator for a cache accessed with a
// working set of a given size: below capacity accesses mostly hit; beyond
// capacity the hit probability decays as capacity/workingSet. Used for the
// sender-side L3 (application send buffers are re-read on retransmit and
// re-written round-robin, so the classic working-set approximation holds).
type WorkingSet struct {
	Capacity units.Bytes
	// BaseMiss is the compulsory miss floor applied even when the working
	// set fits (cold lines, prefetch imperfection).
	BaseMiss float64
}

// MissRate estimates the miss probability for working set ws.
func (w WorkingSet) MissRate(ws units.Bytes) float64 {
	if w.Capacity <= 0 {
		return 1
	}
	base := w.BaseMiss
	if base < 0 {
		base = 0
	}
	if ws <= w.Capacity {
		return base
	}
	m := 1 - float64(w.Capacity)/float64(ws)
	if m < base {
		m = base
	}
	if m > 1 {
		m = 1
	}
	return m
}
