package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hostsim/internal/units"
)

func newTestDCA(capacityPages, ways int) *DCA {
	return NewDCA(DCAConfig{
		Capacity: units.Bytes(capacityPages) * 4 * units.KB,
		PageSize: 4 * units.KB,
		Ways:     ways,
	})
}

func TestInsertProbeDrop(t *testing.T) {
	d := newTestDCA(64, 8)
	d.Insert(1)
	if !d.Probe(1) {
		t.Fatal("page 1 should be resident after Insert")
	}
	d.Drop(1)
	if d.Probe(1) {
		t.Fatal("page 1 should be gone after Drop")
	}
	st := d.Stats()
	if st.Inserts != 1 || st.Hits != 1 || st.Misses != 1 || st.Drops != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCapacityAndGeometry(t *testing.T) {
	d := newTestDCA(64, 8)
	if d.Capacity() != 64 {
		t.Errorf("Capacity = %d, want 64", d.Capacity())
	}
	// 3MB at 4KB pages, 8 ways -> 768 slots, 96 sets.
	d = NewDCA(DCAConfig{Capacity: 3 * units.MB, PageSize: 4 * units.KB})
	if d.Capacity() != 768 {
		t.Errorf("3MB DCA capacity = %d pages, want 768", d.Capacity())
	}
}

func TestEvictionOnSetOverflow(t *testing.T) {
	// 1 set x 2 ways: third distinct insert must evict the LRU.
	d := newTestDCA(2, 2)
	d.Insert(10)
	d.Insert(20)
	d.Insert(30)
	if d.Contains(10) {
		t.Error("page 10 should have been evicted (LRU)")
	}
	if !d.Contains(20) || !d.Contains(30) {
		t.Error("pages 20 and 30 should be resident")
	}
	if d.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", d.Stats().Evictions)
	}
}

func TestReinsertRefreshesLRU(t *testing.T) {
	d := newTestDCA(2, 2)
	d.Insert(10)
	d.Insert(20)
	d.Insert(10) // refresh 10: now 20 is LRU
	d.Insert(30)
	if d.Contains(20) {
		t.Error("page 20 should have been evicted after 10 was refreshed")
	}
	if !d.Contains(10) {
		t.Error("refreshed page 10 should survive")
	}
	// Refresh must not double-count inserts.
	if got := d.Stats().Inserts; got != 3 {
		t.Errorf("Inserts = %d, want 3", got)
	}
}

func TestDropNonResidentIsNoop(t *testing.T) {
	d := newTestDCA(8, 8)
	d.Drop(999)
	if d.Stats().Drops != 0 {
		t.Error("dropping a non-resident page should not count")
	}
}

func TestResidencyNeverExceedsCapacity(t *testing.T) {
	d := newTestDCA(32, 4)
	for i := PageID(0); i < 10000; i++ {
		d.Insert(i)
		if d.Resident() > d.Capacity() {
			t.Fatalf("resident %d exceeds capacity %d", d.Resident(), d.Capacity())
		}
	}
}

// Property: under any interleaving of inserts/drops, resident count equals
// inserts - evictions - drops and never exceeds capacity.
func TestPropertyConservation(t *testing.T) {
	f := func(ops []int16) bool {
		d := newTestDCA(16, 4)
		for _, op := range ops {
			p := PageID(op % 64)
			if op%3 == 0 {
				d.Drop(p)
			} else {
				d.Insert(p)
			}
		}
		st := d.Stats()
		if int64(d.Resident()) != st.Inserts-st.Evictions-st.Drops {
			return false
		}
		return d.Resident() <= d.Capacity()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// The descriptor-count hazard: at the same (sub-capacity) occupancy, a
// higher hazard probability — what a large Rx ring induces — must produce
// a markedly higher miss rate. This is the mechanism behind Fig. 3e.
func TestHazardRaisesMissRateAtSubCapacityOccupancy(t *testing.T) {
	run := func(hazard float64) float64 {
		d := NewDCA(DCAConfig{
			Capacity: 3 * units.MB,
			PageSize: 4 * units.KB,
			Rand:     rand.New(rand.NewSource(5)),
		})
		d.SetHazard(hazard)
		// Keep ~1.5MB in flight (384 pages, half of capacity), FIFO.
		var fifo []PageID
		var probes, misses int
		for i := PageID(0); i < 60000; i++ {
			d.Insert(i)
			fifo = append(fifo, i)
			if len(fifo) > 384 {
				q := fifo[0]
				fifo = fifo[1:]
				probes++
				if !d.Probe(q) {
					misses++
				}
				d.Drop(q)
			}
		}
		return float64(misses) / float64(probes)
	}
	none := run(0)
	high := run(0.8)
	if none > 0.10 {
		t.Errorf("sub-capacity occupancy without hazard should mostly hit, miss=%.3f", none)
	}
	if high < none+0.25 {
		t.Errorf("hazard should raise misses sharply: none=%.3f high=%.3f", none, high)
	}
}

func TestHazardValidation(t *testing.T) {
	d := newTestDCA(8, 8)
	for _, bad := range []float64{-0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetHazard(%v) should panic", bad)
				}
			}()
			d.SetHazard(bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetHazard > 0 without RNG should panic")
			}
		}()
		d.SetHazard(0.5)
	}()
	d.SetHazard(0) // no RNG needed for zero hazard
	if d.Hazard() != 0 {
		t.Error("Hazard should be 0")
	}
}

// Hazard evictions must never displace the page that was just inserted.
func TestHazardSparesJustInserted(t *testing.T) {
	d := NewDCA(DCAConfig{
		Capacity: 64 * units.KB, // 16 pages
		PageSize: 4 * units.KB,
		Ways:     2,
		Rand:     rand.New(rand.NewSource(9)),
	})
	d.SetHazard(1)
	for i := PageID(0); i < 1000; i++ {
		d.Insert(i)
		if !d.Contains(i) {
			t.Fatalf("page %d missing immediately after its own insert", i)
		}
	}
}

// When in-flight bytes exceed DCA capacity, most probes miss: the BDP >
// cache effect of §3.1.
func TestOverflowInFlightMissesHard(t *testing.T) {
	d := NewDCA(DCAConfig{Capacity: 3 * units.MB, PageSize: 4 * units.KB})
	// 6MB in flight from a fresh page stream (FIFO consume).
	window := 1536 // pages
	var fifo []PageID
	var probes, misses int
	for i := PageID(0); i < 20000; i++ {
		d.Insert(i)
		fifo = append(fifo, i)
		if len(fifo) > window {
			q := fifo[0]
			fifo = fifo[1:]
			probes++
			if !d.Probe(q) {
				misses++
			}
			d.Drop(q)
		}
	}
	rate := float64(misses) / float64(probes)
	if rate < 0.4 {
		t.Errorf("2x-capacity FIFO should miss >= 40%%, got %.3f", rate)
	}
}

func TestMissRateZeroWhenUnused(t *testing.T) {
	if (DCAStats{}).MissRate() != 0 {
		t.Error("MissRate of empty stats should be 0")
	}
}

func TestResetStats(t *testing.T) {
	d := newTestDCA(8, 8)
	d.Insert(1)
	d.Probe(1)
	d.ResetStats()
	if d.Stats() != (DCAStats{}) {
		t.Error("ResetStats should zero counters")
	}
	if !d.Contains(1) {
		t.Error("ResetStats must not change residency")
	}
}

func TestNewDCAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero page size should panic")
		}
	}()
	NewDCA(DCAConfig{Capacity: units.MB})
}

func TestWorkingSetMissRate(t *testing.T) {
	w := WorkingSet{Capacity: 10 * units.MB, BaseMiss: 0.02}
	if got := w.MissRate(5 * units.MB); got != 0.02 {
		t.Errorf("under-capacity miss = %v, want base 0.02", got)
	}
	if got := w.MissRate(20 * units.MB); got < 0.49 || got > 0.51 {
		t.Errorf("2x working set miss = %v, want ~0.5", got)
	}
	if got := w.MissRate(10 * units.MB); got != 0.02 {
		t.Errorf("at-capacity miss = %v, want base", got)
	}
	w0 := WorkingSet{}
	if w0.MissRate(units.MB) != 1 {
		t.Error("zero-capacity working set should always miss")
	}
}

func TestWorkingSetMonotonic(t *testing.T) {
	w := WorkingSet{Capacity: 4 * units.MB, BaseMiss: 0.01}
	f := func(a, b uint32) bool {
		x, y := units.Bytes(a), units.Bytes(b)
		if x > y {
			x, y = y, x
		}
		return w.MissRate(x) <= w.MissRate(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
