// Package runner provides a deterministic worker-pool for fanning
// independent simulation runs across CPU cores.
//
// Each hostsim Run owns its engine, hosts and RNG, so runs are trivially
// parallel — the only thing that must NOT change under parallelism is the
// output. Map therefore returns results in submission order regardless of
// completion order: output produced from the results is byte-identical to
// a serial run, which the determinism tests assert.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"
)

// Options configures a Map call.
type Options struct {
	// Workers is the parallelism degree. 0 or negative means
	// runtime.NumCPU(); 1 runs jobs inline on the calling goroutine.
	Workers int
	// Context, when non-nil, cancels the fan-out: jobs not yet started
	// return ctx.Err() as their error and are never run.
	Context context.Context
	// JobTimeout, when positive, bounds each job's wall-clock time. A
	// timed-out job yields a TimeoutError; its goroutine is abandoned (a
	// CPU-bound simulation cannot be interrupted mid-run), so treat
	// timeouts as fatal diagnostics, not control flow.
	JobTimeout time.Duration
}

// PanicError wraps a panic recovered from a job so one diverging
// simulation does not tear down the whole sweep.
type PanicError struct {
	Index int    // job index that panicked
	Value any    // the recovered value
	Stack string // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.Index, e.Value)
}

// TimeoutError marks a job that exceeded Options.JobTimeout.
type TimeoutError struct {
	Index   int
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("runner: job %d exceeded timeout %v", e.Index, e.Timeout)
}

// Result pairs one job's output with its error (exactly one is
// meaningful).
type Result[R any] struct {
	Value R
	Err   error
}

// Map runs fn over every job, up to opts.Workers at a time, and returns
// the results in the jobs' submission order. It never returns early: every
// job gets a slot in the result slice, with Err set for panics, timeouts
// and cancellations.
func Map[T, R any](jobs []T, fn func(T) (R, error), opts Options) []Result[R] {
	results := make([]Result[R], len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	if workers == 1 && opts.JobTimeout <= 0 {
		// Serial fast path: no goroutines, no channel traffic. Keeps
		// -jobs 1 behaviour (and stack traces) maximally simple.
		for i := range jobs {
			if err := ctx.Err(); err != nil {
				results[i].Err = err
				continue
			}
			results[i].Value, results[i].Err = runOne(i, jobs[i], fn)
		}
		return results
	}

	idx := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range idx {
				results[i] = runBounded(ctx, i, jobs[i], fn, opts.JobTimeout)
				done <- struct{}{}
			}
		}()
	}
	go func() {
		for i := range jobs {
			idx <- i
		}
		close(idx)
	}()
	for range jobs {
		<-done
	}
	return results
}

// runOne invokes fn with panic capture.
func runOne[T, R any](i int, job T, fn func(T) (R, error)) (val R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn(job)
}

// runBounded is runOne with cancellation and an optional wall-clock bound.
func runBounded[T, R any](ctx context.Context, i int, job T, fn func(T) (R, error), timeout time.Duration) Result[R] {
	if err := ctx.Err(); err != nil {
		return Result[R]{Err: err}
	}
	if timeout <= 0 {
		v, err := runOne(i, job, fn)
		return Result[R]{Value: v, Err: err}
	}
	ch := make(chan Result[R], 1)
	go func() {
		v, err := runOne(i, job, fn)
		ch <- Result[R]{Value: v, Err: err}
	}()
	select {
	case r := <-ch:
		return r
	case <-time.After(timeout):
		return Result[R]{Err: &TimeoutError{Index: i, Timeout: timeout}}
	case <-ctx.Done():
		return Result[R]{Err: ctx.Err()}
	}
}
