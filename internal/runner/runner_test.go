package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderPreserved(t *testing.T) {
	jobs := make([]int, 100)
	for i := range jobs {
		jobs[i] = i
	}
	for _, workers := range []int{1, 2, 8, 0} {
		res := Map(jobs, func(j int) (int, error) { return j * j, nil }, Options{Workers: workers})
		if len(res) != len(jobs) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(res), len(jobs))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("workers=%d: job %d error: %v", workers, i, r.Err)
			}
			if r.Value != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, r.Value, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	res := Map(nil, func(int) (int, error) { return 0, nil }, Options{})
	if len(res) != 0 {
		t.Fatalf("got %d results, want 0", len(res))
	}
}

func TestMapActuallyParallel(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	var inFlight, peak atomic.Int32
	jobs := make([]int, 16)
	Map(jobs, func(int) (int, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		inFlight.Add(-1)
		return 0, nil
	}, Options{Workers: 4})
	if peak.Load() < 2 {
		t.Errorf("peak concurrency = %d, want >= 2", peak.Load())
	}
}

func TestMapPanicCaptured(t *testing.T) {
	jobs := []int{0, 1, 2, 3}
	res := Map(jobs, func(j int) (int, error) {
		if j == 2 {
			panic("boom")
		}
		return j, nil
	}, Options{Workers: 2})
	for i, r := range res {
		if i == 2 {
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("job 2: got err %v, want PanicError", r.Err)
			}
			if pe.Index != 2 || pe.Value != "boom" || pe.Stack == "" {
				t.Errorf("bad PanicError: %+v", pe)
			}
			continue
		}
		if r.Err != nil || r.Value != i {
			t.Errorf("job %d: got (%d, %v)", i, r.Value, r.Err)
		}
	}
}

func TestMapPanicCapturedSerial(t *testing.T) {
	res := Map([]int{0}, func(int) (int, error) { panic("serial boom") }, Options{Workers: 1})
	var pe *PanicError
	if !errors.As(res[0].Err, &pe) {
		t.Fatalf("got err %v, want PanicError", res[0].Err)
	}
}

func TestMapJobError(t *testing.T) {
	sentinel := errors.New("nope")
	res := Map([]int{1}, func(int) (int, error) { return 0, sentinel }, Options{Workers: 2})
	if !errors.Is(res[0].Err, sentinel) {
		t.Fatalf("got %v, want sentinel", res[0].Err)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var cancelled atomic.Int32
	jobs := make([]int, 32)
	for i := range jobs {
		jobs[i] = i
	}
	go func() {
		<-started
		cancel()
	}()
	var once atomic.Bool
	res := Map(jobs, func(j int) (int, error) {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		time.Sleep(5 * time.Millisecond)
		return j, nil
	}, Options{Workers: 2, Context: ctx})
	for _, r := range res {
		if errors.Is(r.Err, context.Canceled) {
			cancelled.Add(1)
		}
	}
	if cancelled.Load() == 0 {
		t.Error("expected some jobs to be cancelled")
	}
}

func TestMapJobTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	res := Map([]int{0, 1}, func(j int) (int, error) {
		if j == 0 {
			<-block // never finishes within the timeout
		}
		return j, nil
	}, Options{Workers: 2, JobTimeout: 20 * time.Millisecond})
	var te *TimeoutError
	if !errors.As(res[0].Err, &te) {
		t.Fatalf("job 0: got %v, want TimeoutError", res[0].Err)
	}
	if res[1].Err != nil || res[1].Value != 1 {
		t.Errorf("job 1: got (%d, %v), want (1, nil)", res[1].Value, res[1].Err)
	}
}

func TestMapSerialMatchesParallel(t *testing.T) {
	jobs := make([]int, 50)
	for i := range jobs {
		jobs[i] = i
	}
	fn := func(j int) (string, error) { return fmt.Sprintf("r%03d", j*7%13), nil }
	serial := Map(jobs, fn, Options{Workers: 1})
	parallel := Map(jobs, fn, Options{Workers: 8})
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("result %d differs: serial %+v, parallel %+v", i, serial[i], parallel[i])
		}
	}
}
