// Package exec models CPU cores and the scheduling of network-stack work
// onto them.
//
// Each core executes work items serially at its clock frequency. Two kinds
// of work exist, mirroring the kernel contexts the paper profiles:
//
//   - softirq work (IRQ handlers, NAPI polling, receive-side TCP/IP) —
//     strictly prioritised over threads, run in FIFO order, charged no
//     context-switch cost;
//   - threads (application/syscall context) — round-robin scheduled, with
//     a context-switch charge when the core changes threads, a wakeup
//     charge paid by the waker, and a sleep/wake protocol that is safe
//     against lost wakeups (a wake racing a quantum that decided to block
//     keeps the thread runnable, like the kernel's try_to_wake_up).
//
// Every cycle executed lands in one of the paper's Table-1 accounting
// categories, which is how the CPU-breakdown figures are produced.
package exec

import (
	"fmt"
	"time"

	"hostsim/internal/cpumodel"
	"hostsim/internal/sim"
	"hostsim/internal/topology"
	"hostsim/internal/units"
)

// DefaultGranularity is the scheduler's wakeup/preemption granularity: a
// running thread keeps its core until another runnable thread's virtual
// runtime falls this far behind (CFS's sched_wakeup_granularity idea).
// It balances batching (cheap context switches) against responsiveness;
// CFS's default is of millisecond order once scaled.
const DefaultGranularity = 250 * time.Microsecond

// DefaultSleeperCredit is the vruntime credit a thread may accumulate
// while sleeping. Keeping it below the granularity means a woken
// IO-bound thread does NOT preempt the incumbent immediately — it waits
// out the remaining wakeup granularity (CFS's wakeup_granularity check).
// This wait is what throttles ping-pong RPC threads sharing a core with
// a bulk flow (§3.7, Fig. 11 of the paper).
const DefaultSleeperCredit = 50 * time.Microsecond

// System owns the cores of one host. Threads are scheduled with a
// simplified CFS: each thread accrues virtual runtime while executing;
// the scheduler runs the thread with the smallest vruntime, with a
// granularity hysteresis in favour of the incumbent, and wakeups grant at
// most one granularity of sleeper credit.
type System struct {
	eng         *sim.Engine
	spec        topology.MachineSpec
	costs       *cpumodel.Costs
	cores       []*Core
	granularity units.Cycles
	sleepCredit units.Cycles
	spanObs     SpanObserver
	chargeLog   ChargeLogFunc
	logPool     [][]FlowCharge
	ctxPool     []*Ctx // recycled work-item contexts; dispatch is allocation-free in steady state
}

// getCtx hands out a zeroed work-item context from the free list.
func (s *System) getCtx() *Ctx {
	if n := len(s.ctxPool); n > 0 {
		x := s.ctxPool[n-1]
		s.ctxPool = s.ctxPool[:n-1]
		return x
	}
	return &Ctx{}
}

// putCtx recycles a completed work-item context. Safe because a Ctx is
// only ever passed down synchronous call chains — nothing retains one past
// its item's completion. done stays set while pooled so a leaked handle
// still trips the Charge-after-completion guard.
func (s *System) putCtx(x *Ctx) {
	*x = Ctx{done: true}
	s.ctxPool = append(s.ctxPool, x)
}

// SpanObserver receives one callback per completed work item: the core it
// ran on, whether it was softirq or thread context (thread = the thread's
// name, empty for softirq), its start/end times, the per-category cycle
// accounting, and total cycles charged. Observers must not mutate acct.
// Used by the telemetry layer to export per-core execution spans.
type SpanObserver func(core int, softirq bool, thread string,
	start, end sim.Time, acct *cpumodel.Breakdown, cycles units.Cycles)

// SetSpanObserver installs obs (nil disables span observation). Zero-cost
// work items (pure blocking quanta) are not reported.
func (s *System) SetSpanObserver(obs SpanObserver) { s.spanObs = obs }

// SpanObserver returns the installed span observer (nil when none), so
// additional layers can chain rather than silently replace it.
func (s *System) SpanObserver() SpanObserver { return s.spanObs }

// FlowCharge is one line of a work item's charge log: cycles charged to
// one Table-1 category while the context carried one flow tag (0 = work
// not attributable to a single flow: NAPI poll overhead, IRQ entry,
// scheduler work).
type FlowCharge struct {
	Flow   int32
	Cat    cpumodel.Category
	Cycles units.Cycles
}

// ChargeLogFunc receives the merged per-flow, per-category charge log of
// one completed work item. It fires at the same instant the item's cycles
// merge into the core's Breakdown accounting, so a consumer that sums the
// log reconciles exactly with System.TotalBreakdown over any window. The
// log slice is owned by the system and recycled after the call returns —
// consumers must not retain it. Zero-charge items are not reported.
type ChargeLogFunc func(core int, softirq bool, thread string, log []FlowCharge)

// SetChargeLog installs fn (nil disables charge logging). While installed,
// every work item accumulates its Charge/ChargeBytes calls into a per-item
// log keyed by (flow tag, category); the log is flushed to fn when the
// item completes. The log buffers come from a free list, so steady-state
// profiling does not allocate; with fn nil the Charge fast path is a
// single pointer test.
func (s *System) SetChargeLog(fn ChargeLogFunc) { s.chargeLog = fn }

// getLog hands out a charge-log buffer from the free list.
func (s *System) getLog() []FlowCharge {
	if n := len(s.logPool); n > 0 {
		l := s.logPool[n-1]
		s.logPool = s.logPool[:n-1]
		return l[:0]
	}
	return make([]FlowCharge, 0, 16)
}

// putLog recycles a flushed charge-log buffer.
func (s *System) putLog(l []FlowCharge) { s.logPool = append(s.logPool, l) }

// SetGranularity overrides the scheduling granularity (tests, ablations).
func (s *System) SetGranularity(d time.Duration) {
	if d <= 0 {
		panic("exec: non-positive granularity")
	}
	s.granularity = units.CyclesIn(d, s.spec.Frequency)
}

// SetSleeperCredit overrides the wakeup vruntime credit (tests, ablations).
func (s *System) SetSleeperCredit(d time.Duration) {
	if d < 0 {
		panic("exec: negative sleeper credit")
	}
	s.sleepCredit = units.CyclesIn(d, s.spec.Frequency)
}

// NewSystem builds the cores for spec.
func NewSystem(eng *sim.Engine, spec topology.MachineSpec, costs *cpumodel.Costs) *System {
	if eng == nil || costs == nil {
		panic("exec: nil engine or cost table")
	}
	s := &System{eng: eng, spec: spec, costs: costs,
		granularity: units.CyclesIn(DefaultGranularity, spec.Frequency),
		sleepCredit: units.CyclesIn(DefaultSleeperCredit, spec.Frequency)}
	s.cores = make([]*Core, spec.NumCores())
	for i := range s.cores {
		s.cores[i] = &Core{sys: s, id: i, node: spec.NodeOf(i)}
	}
	return s
}

// Core returns core i.
func (s *System) Core(i int) *Core { return s.cores[i] }

// NumCores returns the core count.
func (s *System) NumCores() int { return len(s.cores) }

// SoftirqBacklogTotal sums the queued softirq work items across all cores
// — the host-wide backlog depth for ss-style queue diagnostics.
func (s *System) SoftirqBacklogTotal() int {
	total := 0
	for _, c := range s.cores {
		total += c.SoftirqBacklog()
	}
	return total
}

// Engine returns the simulation engine.
func (s *System) Engine() *sim.Engine { return s.eng }

// Spec returns the machine description.
func (s *System) Spec() topology.MachineSpec { return s.spec }

// Costs returns the cycle cost table.
func (s *System) Costs() *cpumodel.Costs { return s.costs }

// ResetAccounting zeroes all cores' cycle accounting and busy time; used
// to discard warm-up before a measurement window.
func (s *System) ResetAccounting() {
	for _, c := range s.cores {
		c.acct = cpumodel.Breakdown{}
		c.busy = 0
		c.softirqBusy = 0
		c.threadBusy = 0
		c.runqWait = 0
		c.items = 0
	}
}

// CompletedItems returns the number of work items completed across all
// cores since the last reset. Busy time is the truncated per-item sum of
// cycle durations, so it can trail the exact cycle total by up to one
// clock tick per item — callers bounding busy-vs-cycles drift need this.
func (s *System) CompletedItems() int64 {
	var n int64
	for _, c := range s.cores {
		n += c.items
	}
	return n
}

// TotalBusy returns the summed busy time across cores.
func (s *System) TotalBusy() time.Duration {
	var t time.Duration
	for _, c := range s.cores {
		t += c.busy
	}
	return t
}

// TotalBreakdown returns the merged per-category accounting of all cores.
func (s *System) TotalBreakdown() cpumodel.Breakdown {
	var b cpumodel.Breakdown
	for _, c := range s.cores {
		b.Merge(&c.acct)
	}
	return b
}

// threadState tracks the scheduling lifecycle.
type threadState int

const (
	stateBlocked threadState = iota
	stateRunnable
	stateRunning
)

// Thread is an application-context execution entity pinned to one core.
type Thread struct {
	name        string
	core        *Core
	state       threadState
	run         func(*Ctx)
	willBlock   bool
	pendingWake bool
	vruntime    units.Cycles // fair-share accounting (CFS-style)
	queuedAt    sim.Time     // when the thread last entered the runqueue
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Core returns the core the thread is pinned to.
func (t *Thread) Core() *Core { return t.core }

// Blocked reports whether the thread is parked waiting for a wake.
func (t *Thread) Blocked() bool { return t.state == stateBlocked }

// Core is one CPU core.
type Core struct {
	sys  *System
	id   int
	node int

	running  bool
	current  *Thread // last thread context that ran (for switch detection)
	softirq  []func(*Ctx)
	sirqHead int       // dispatch position in softirq (head-indexed ring, compacted when drained)
	runq     []*Thread // runnable threads, selected by min vruntime
	minVR    units.Cycles
	acct     cpumodel.Breakdown
	busy     time.Duration
	inflight *Ctx

	// Context-split busy time and cumulative run-queue wait, for the
	// telemetry layer's per-core softirq-vs-thread and scheduler-delay
	// metrics.
	softirqBusy time.Duration
	threadBusy  time.Duration
	runqWait    time.Duration
	items       int64 // work items completed since the last reset
}

// SkewAccounting adds cycles to the core's category tally WITHOUT going
// through a work item or the charge log. It exists solely so tests can
// inject an accounting discrepancy (a "double charge") and prove the
// cycle-conservation checker catches it; production code must never call
// it.
func (c *Core) SkewAccounting(cat cpumodel.Category, n units.Cycles) {
	c.acct.Add(cat, n)
}

// enqueueWoken admits a freshly woken thread with bounded sleeper credit:
// it may claim at most one granularity of vruntime headstart, so sleepers
// preempt promptly without being able to monopolise the core.
func (c *Core) enqueueWoken(t *Thread) {
	t.state = stateRunnable
	floor := c.minVR - c.sys.sleepCredit
	if t.vruntime < floor {
		t.vruntime = floor
	}
	t.queuedAt = c.sys.eng.Now()
	c.runq = append(c.runq, t)
}

// ID returns the core id.
func (c *Core) ID() int { return c.id }

// Node returns the core's NUMA node.
func (c *Core) Node() int { return c.node }

// BusyTime returns accumulated busy time since the last reset.
func (c *Core) BusyTime() time.Duration { return c.busy }

// SoftirqTime returns busy time spent in softirq context since the last
// reset.
func (c *Core) SoftirqTime() time.Duration { return c.softirqBusy }

// ThreadTime returns busy time spent in thread (application/syscall)
// context since the last reset.
func (c *Core) ThreadTime() time.Duration { return c.threadBusy }

// RunqWait returns the cumulative time runnable threads spent queued on
// this core before being granted the CPU, since the last reset.
func (c *Core) RunqWait() time.Duration { return c.runqWait }

// RunqLen returns the number of currently runnable (queued) threads.
func (c *Core) RunqLen() int { return len(c.runq) }

// Accounting returns a copy of the per-category cycle tally.
func (c *Core) Accounting() cpumodel.Breakdown { return c.acct }

// Utilization returns busy/window, clamped to [0,1].
func (c *Core) Utilization(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	u := float64(c.busy) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

// NewThread creates a thread pinned to this core. run is invoked each time
// the scheduler grants the thread a quantum; it must either charge cycles
// or block (a zero-cost non-blocking quantum would livelock the core and
// panics). Threads start blocked; call Wake (or WakeFromCtx) to start.
func (c *Core) NewThread(name string, run func(*Ctx)) *Thread {
	if run == nil {
		panic("exec: nil thread body")
	}
	return &Thread{name: name, core: c, run: run, state: stateBlocked}
}

// RaiseSoftirq queues softirq work on the core. The work runs before any
// thread gets the CPU. Safe to call from outside any work item (e.g. a
// simulated hardware event); dispatch is triggered immediately.
func (c *Core) RaiseSoftirq(fn func(*Ctx)) {
	if fn == nil {
		panic("exec: nil softirq")
	}
	c.softirq = append(c.softirq, fn)
	c.dispatch()
}

// SoftirqBacklog returns the number of queued softirq items.
func (c *Core) SoftirqBacklog() int { return len(c.softirq) - c.sirqHead }

// Wake makes t runnable from outside any work item (hardware events,
// timer expiry). No wakeup cost is charged — use Ctx.Wake from inside
// stack code, which charges the waker.
func (t *Thread) Wake() { t.wake() }

func (t *Thread) wake() bool {
	switch t.state {
	case stateBlocked:
		t.core.enqueueWoken(t)
		t.core.dispatch()
		return true
	case stateRunning:
		t.pendingWake = true
		return false
	default:
		return false
	}
}

// dispatch starts the next work item if the core is free.
func (c *Core) dispatch() {
	if c.running {
		return
	}
	var (
		fn       func(*Ctx)
		thread   *Thread
		switchTo bool
	)
	switch {
	case c.sirqHead < len(c.softirq):
		fn = c.softirq[c.sirqHead]
		c.softirq[c.sirqHead] = nil
		c.sirqHead++
		if c.sirqHead == len(c.softirq) {
			c.softirq = c.softirq[:0]
			c.sirqHead = 0
		}
	case len(c.runq) > 0:
		thread = c.pickThread()
		thread.state = stateRunning
		switchTo = thread != c.current
		fn = thread.run
	default:
		return // idle
	}
	c.running = true
	ctx := c.sys.getCtx()
	ctx.core = c
	ctx.start = c.sys.eng.Now()
	ctx.thread = thread
	ctx.done = false
	if c.sys.chargeLog != nil {
		ctx.charges = c.sys.getLog()
		ctx.logging = true
	}
	c.inflight = ctx
	if thread != nil && switchTo {
		ctx.Charge(cpumodel.Sched, c.sys.costs.ContextSwitch)
		c.current = thread
	}
	fn(ctx)
	ctx.done = true
	c.inflight = nil
	if ctx.cycles <= 0 {
		if thread != nil && !ctx.blocked {
			panic(fmt.Sprintf("exec: thread %q ran a zero-cost non-blocking quantum", thread.name))
		}
		if ctx.cycles < 0 {
			panic("exec: negative charge")
		}
		// Zero-cost blocking quantum: complete instantly.
		c.complete(ctx)
		return
	}
	d := ctx.cycles.Duration(c.sys.spec.Frequency)
	c.sys.eng.AfterArg(d, completeEv, ctx)
}

// completeEv is the work-item completion event; static so scheduling a
// completion never allocates.
func completeEv(a any) {
	x := a.(*Ctx)
	x.core.complete(x)
}

// pickThread removes and returns the next thread to run: the minimum
// vruntime, except the incumbent keeps the CPU while it is within one
// granularity of the minimum (batching hysteresis).
func (c *Core) pickThread() *Thread {
	best := 0
	for i, t := range c.runq {
		if t.vruntime < c.runq[best].vruntime {
			best = i
		}
	}
	if c.current != nil && c.current != c.runq[best] {
		for i, t := range c.runq {
			if t == c.current {
				if t.vruntime < c.runq[best].vruntime+c.sys.granularity {
					best = i
				}
				break
			}
		}
	}
	t := c.runq[best]
	c.runq = append(c.runq[:best], c.runq[best+1:]...)
	if t.vruntime > c.minVR {
		c.minVR = t.vruntime
	}
	if now := c.sys.eng.Now(); now > t.queuedAt {
		c.runqWait += time.Duration(now - t.queuedAt)
	}
	return t
}

// complete finishes a work item: applies accounting, resolves the
// thread's next state, and dispatches further work.
func (c *Core) complete(ctx *Ctx) {
	c.acct.Merge(&ctx.acct)
	c.items++
	d := ctx.cycles.Duration(c.sys.spec.Frequency)
	c.busy += d
	if ctx.thread == nil {
		c.softirqBusy += d
	} else {
		c.threadBusy += d
	}
	if obs := c.sys.spanObs; obs != nil && ctx.cycles > 0 {
		name := ""
		if ctx.thread != nil {
			name = ctx.thread.name
		}
		obs(c.id, ctx.thread == nil, name, ctx.start, ctx.start.Add(d), &ctx.acct, ctx.cycles)
	}
	if ctx.logging {
		if fn := c.sys.chargeLog; fn != nil && len(ctx.charges) > 0 {
			name := ""
			if ctx.thread != nil {
				name = ctx.thread.name
			}
			fn(c.id, ctx.thread == nil, name, ctx.charges)
		}
		c.sys.putLog(ctx.charges)
		ctx.charges = nil
		ctx.logging = false
	}
	if t := ctx.thread; t != nil {
		t.vruntime += ctx.cycles
		if ctx.blocked && !t.pendingWake {
			t.state = stateBlocked
		} else {
			t.state = stateRunnable
			t.queuedAt = c.sys.eng.Now()
			c.runq = append(c.runq, t)
		}
		t.pendingWake = false
		t.willBlock = false
	}
	c.running = false
	c.sys.putCtx(ctx)
	c.dispatch()
}

// Ctx is the execution context of one work item. All cycle charges and
// side effects of the item flow through it.
type Ctx struct {
	core    *Core
	thread  *Thread
	start   sim.Time
	cycles  units.Cycles
	acct    cpumodel.Breakdown
	blocked bool
	done    bool

	// Charge-log state (profiling). flowTag labels subsequent charges
	// with the flow being processed; charges holds the item's merged
	// (flow, category) tallies while a ChargeLogFunc is installed.
	flowTag int32
	logging bool
	charges []FlowCharge
}

// SetFlowTag labels subsequent charges of this work item with a flow id
// (0 = unattributed). Data-path code sets it when it starts processing a
// specific flow's data; a plain field write, free when profiling is off.
func (x *Ctx) SetFlowTag(f int32) { x.flowTag = f }

// FlowTag returns the current flow label.
func (x *Ctx) FlowTag() int32 { return x.flowTag }

// Charge adds cycles in category cat to the running item.
func (x *Ctx) Charge(cat cpumodel.Category, c units.Cycles) {
	if x.done {
		panic("exec: Charge after work item completed")
	}
	if c < 0 {
		panic("exec: negative charge")
	}
	x.cycles += c
	x.acct.Add(cat, c)
	if x.logging {
		x.logCharge(cat, c)
	}
}

// logCharge merges one charge into the item's charge log, newest entries
// first (repeat charges to the same (flow, category) pair are adjacent in
// practice, so the scan terminates almost immediately).
func (x *Ctx) logCharge(cat cpumodel.Category, c units.Cycles) {
	for i := len(x.charges) - 1; i >= 0; i-- {
		e := &x.charges[i]
		if e.Flow == x.flowTag && e.Cat == cat {
			e.Cycles += c
			return
		}
	}
	x.charges = append(x.charges, FlowCharge{Flow: x.flowTag, Cat: cat, Cycles: c})
}

// ChargeBytes charges a per-byte cost over n bytes.
func (x *Ctx) ChargeBytes(cat cpumodel.Category, p units.PerByte, n units.Bytes) {
	x.Charge(cat, p.Of(n))
}

// Now returns the item's logical time: start plus cycles charged so far.
func (x *Ctx) Now() sim.Time {
	return x.start.Add(x.cycles.Duration(x.core.sys.spec.Frequency))
}

// Core returns the core the item runs on.
func (x *Ctx) Core() *Core { return x.core }

// Costs returns the system cost table.
func (x *Ctx) Costs() *cpumodel.Costs { return x.core.sys.costs }

// Defer schedules fn at the item's current logical time — i.e. after the
// work charged so far has "executed". Use it for side effects that leave
// the core (transmits, cross-core wakes).
func (x *Ctx) Defer(fn func()) {
	x.core.sys.eng.At(x.Now(), fn)
}

// DeferArg is Defer for hot paths: fn is typically a static function or a
// stored method value, so deferring allocates nothing.
func (x *Ctx) DeferArg(fn func(any), arg any) {
	x.core.sys.eng.AtArg(x.Now(), fn, arg)
}

// Block marks the current thread as wanting to sleep at quantum end. Only
// valid in thread context.
func (x *Ctx) Block() {
	if x.thread == nil {
		panic("exec: Block outside thread context")
	}
	x.blocked = true
}

// Wake makes t runnable, charging the wakeup cost (plus the idle-exit
// cost if t's core was idle) to this context — the waker pays, as in the
// kernel.
func (x *Ctx) Wake(t *Thread) {
	costs := x.core.sys.costs
	if t.state != stateBlocked {
		// Awake already (running or queued): the waker still walks the
		// waitqueue (sock_def_readable on an awake task), a cheap but
		// real cost, and a running target re-checks its condition.
		x.Charge(cpumodel.Sched, costs.WakeCheck)
		if t.state == stateRunning {
			t.pendingWake = true
		}
		return
	}
	x.Charge(cpumodel.Sched, costs.Wakeup)
	tc := t.core
	if tc != x.core && !tc.running && len(tc.runq) == 0 && tc.SoftirqBacklog() == 0 {
		x.Charge(cpumodel.Sched, costs.IdleWake)
	}
	if tc == x.core {
		// Same core: wake takes effect when observed — mark immediately;
		// dispatch happens at this item's completion.
		tc.enqueueWoken(t)
		return
	}
	// Cross-core: the wake lands at this item's logical time.
	x.DeferArg(wakeEv, t)
}

// wakeEv is the cross-core wake event; static so waking never allocates.
func wakeEv(a any) { a.(*Thread).wake() }
