package exec

import (
	"testing"
	"time"

	"hostsim/internal/cpumodel"
	"hostsim/internal/sim"
	"hostsim/internal/topology"
	"hostsim/internal/units"
)

func newSys() (*sim.Engine, *System) {
	eng := sim.NewEngine(1)
	return eng, NewSystem(eng, topology.Default(), cpumodel.Default())
}

func TestWorkItemsSerializeOnACore(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	var order []string
	c.RaiseSoftirq(func(x *Ctx) {
		order = append(order, "a")
		x.Charge(cpumodel.Etc, 3400) // 1us at 3.4GHz
	})
	c.RaiseSoftirq(func(x *Ctx) {
		order = append(order, "b")
		x.Charge(cpumodel.Etc, 3400)
	})
	eng.Run(sim.Time(10 * time.Microsecond))
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	if c.BusyTime() != 2*time.Microsecond {
		t.Errorf("BusyTime = %v, want 2us", c.BusyTime())
	}
}

func TestSecondItemStartsAfterFirstCompletes(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	var secondStart sim.Time
	c.RaiseSoftirq(func(x *Ctx) { x.Charge(cpumodel.Etc, 3400) })
	c.RaiseSoftirq(func(x *Ctx) {
		secondStart = eng.Now()
		x.Charge(cpumodel.Etc, 3400)
	})
	eng.Run(sim.Time(time.Millisecond))
	if secondStart != sim.Time(time.Microsecond) {
		t.Errorf("second item started at %v, want 1us", secondStart)
	}
}

func TestSoftirqPreemptsThreads(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	var order []string
	th := c.NewThread("app", func(x *Ctx) {
		order = append(order, "thread")
		x.Charge(cpumodel.DataCopy, 3400)
		x.Block()
	})
	// Queue softirq then wake thread at the same instant: softirq first.
	th.Wake()
	c.RaiseSoftirq(func(x *Ctx) {
		order = append(order, "softirq")
		x.Charge(cpumodel.Netdev, 3400)
	})
	eng.Run(sim.Time(time.Millisecond))
	// Thread was woken first, so it is mid-quantum when softirq arrives;
	// but thread.Wake dispatches it immediately. Both must run.
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestSoftirqRunsBeforeQueuedThread(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	var order []string
	th := c.NewThread("app", func(x *Ctx) {
		order = append(order, "thread")
		x.Charge(cpumodel.DataCopy, 100)
		x.Block()
	})
	// Occupy the core so both arrivals queue behind a running item.
	c.RaiseSoftirq(func(x *Ctx) {
		x.Charge(cpumodel.Etc, 3400)
		th2 := th
		_ = th2
	})
	eng.At(100, func() {
		th.Wake() // queues thread (core busy)
		c.RaiseSoftirq(func(x *Ctx) {
			order = append(order, "softirq")
			x.Charge(cpumodel.Netdev, 100)
		})
	})
	eng.Run(sim.Time(time.Millisecond))
	if len(order) != 2 || order[0] != "softirq" {
		t.Fatalf("softirq must run before queued thread: %v", order)
	}
}

func TestContextSwitchChargedOnThreadChange(t *testing.T) {
	eng, s := newSys()
	costs := s.Costs()
	c := s.Core(0)
	mk := func(name string) *Thread {
		var th *Thread
		th = c.NewThread(name, func(x *Ctx) {
			x.Charge(cpumodel.DataCopy, 1000)
			x.Block()
		})
		return th
	}
	a, b := mk("a"), mk("b")
	a.Wake()
	b.Wake()
	eng.Run(sim.Time(time.Millisecond))
	acct := c.Accounting()
	if acct[cpumodel.Sched] != 2*costs.ContextSwitch {
		t.Errorf("Sched = %d, want 2 context switches (%d)", acct[cpumodel.Sched], 2*costs.ContextSwitch)
	}
}

func TestNoContextSwitchForSameThreadResumed(t *testing.T) {
	eng, s := newSys()
	costs := s.Costs()
	c := s.Core(0)
	quanta := 0
	th := c.NewThread("app", func(x *Ctx) {
		quanta++
		x.Charge(cpumodel.DataCopy, 1000)
		if quanta >= 3 {
			x.Block()
		}
	})
	th.Wake()
	eng.Run(sim.Time(time.Millisecond))
	if quanta != 3 {
		t.Fatalf("quanta = %d, want 3", quanta)
	}
	acct := c.Accounting()
	if acct[cpumodel.Sched] != costs.ContextSwitch {
		t.Errorf("Sched = %d, want exactly one context switch (%d)", acct[cpumodel.Sched], costs.ContextSwitch)
	}
}

func TestRoundRobinBetweenRunnableThreads(t *testing.T) {
	eng, s := newSys()
	// A sub-quantum timeslice forces rotation after every quantum.
	s.SetGranularity(time.Nanosecond)
	c := s.Core(0)
	var order []string
	mk := func(name string, quanta int) *Thread {
		n := 0
		return c.NewThread(name, func(x *Ctx) {
			order = append(order, name)
			x.Charge(cpumodel.DataCopy, 1000)
			n++
			if n >= quanta {
				x.Block()
			}
		})
	}
	a, b := mk("a", 2), mk("b", 2)
	a.Wake()
	b.Wake()
	eng.Run(sim.Time(time.Millisecond))
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	// With a sub-quantum granularity neither thread may run to completion
	// before the other starts: the schedule must interleave.
	if order[1] == order[0] && order[2] == order[0] {
		t.Fatalf("order = %v: thread %q monopolised the core", order, order[0])
	}
	counts := map[string]int{}
	for _, n := range order {
		counts[n]++
	}
	if counts["a"] != 2 || counts["b"] != 2 {
		t.Fatalf("unfair schedule: %v", order)
	}
}

func TestTimesliceKeepsThreadOnCPU(t *testing.T) {
	eng, s := newSys()
	s.SetGranularity(10 * time.Microsecond)
	c := s.Core(0)
	var order []string
	mk := func(name string, quanta int) *Thread {
		n := 0
		return c.NewThread(name, func(x *Ctx) {
			order = append(order, name)
			x.Charge(cpumodel.DataCopy, 3400) // 1us per quantum
			n++
			if n >= quanta {
				x.Block()
			}
		})
	}
	a, b2 := mk("a", 4), mk("b", 4)
	a.Wake()
	b2.Wake()
	eng.Run(sim.Time(time.Millisecond))
	// 4us < 10us slice: a runs all its quanta before b gets the core.
	want := []string{"a", "a", "a", "a", "b", "b", "b", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (timeslice should batch)", order, want)
		}
	}
}

func TestTimesliceExpiryRotates(t *testing.T) {
	eng, s := newSys()
	s.SetGranularity(2 * time.Microsecond)
	c := s.Core(0)
	var order []string
	mk := func(name string) *Thread {
		n := 0
		return c.NewThread(name, func(x *Ctx) {
			order = append(order, name)
			x.Charge(cpumodel.DataCopy, 3400) // 1us quanta
			n++
			if n >= 4 {
				x.Block()
			}
		})
	}
	a, b2 := mk("a"), mk("b")
	a.Wake()
	b2.Wake()
	eng.Run(sim.Time(time.Millisecond))
	if len(order) != 8 {
		t.Fatalf("order = %v", order)
	}
	// The 2us granularity bounds bursts: with 1us quanta no thread may
	// hold the core longer than 2x the granularity, and the schedule must
	// alternate bursts rather than run one thread to completion.
	burst, maxBurst := 1, 1
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			burst++
			if burst > maxBurst {
				maxBurst = burst
			}
		} else {
			burst = 1
		}
	}
	if maxBurst > 4 {
		t.Errorf("burst of %d quanta exceeds the granularity bound: %v", maxBurst, order)
	}
	if order[0] == order[len(order)-1] && maxBurst == 4 && order[0] != order[4] {
		// fine: alternating 4-bursts
		_ = order
	}
	counts := map[string]int{}
	for _, n := range order {
		counts[n]++
	}
	if counts["a"] != 4 || counts["b"] != 4 {
		t.Fatalf("unfair schedule: %v", order)
	}
}

func TestSetGranularityPanicsOnZero(t *testing.T) {
	_, s := newSys()
	defer func() {
		if recover() == nil {
			t.Error("zero timeslice should panic")
		}
	}()
	s.SetGranularity(0)
}

func TestBlockedThreadStaysBlocked(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	runs := 0
	th := c.NewThread("app", func(x *Ctx) {
		runs++
		x.Charge(cpumodel.DataCopy, 100)
		x.Block()
	})
	th.Wake()
	eng.Run(sim.Time(time.Millisecond))
	if runs != 1 {
		t.Errorf("runs = %d, want 1", runs)
	}
	if !th.Blocked() {
		t.Error("thread should be blocked")
	}
}

func TestWakeDuringRunningQuantumIsNotLost(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	runs := 0
	var th *Thread
	th = c.NewThread("app", func(x *Ctx) {
		runs++
		x.Charge(cpumodel.DataCopy, 34000) // 10us quantum
		x.Block()
	})
	th.Wake()
	// Wake lands mid-quantum (5us): must keep the thread runnable.
	eng.At(sim.Time(5*time.Microsecond), func() { th.Wake() })
	eng.Run(sim.Time(time.Millisecond))
	if runs != 2 {
		t.Errorf("runs = %d, want 2 (wake during quantum must not be lost)", runs)
	}
}

func TestWakeOnRunnableThreadIsNoop(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	runs := 0
	th := c.NewThread("app", func(x *Ctx) {
		runs++
		x.Charge(cpumodel.DataCopy, 100)
		x.Block()
	})
	// Keep the core busy so the thread sits runnable (not running).
	c.RaiseSoftirq(func(x *Ctx) { x.Charge(cpumodel.Etc, 34000) })
	th.Wake()
	th.Wake() // runnable, not yet running: must be a no-op
	eng.Run(sim.Time(time.Millisecond))
	if runs != 1 {
		t.Errorf("runs = %d, want 1", runs)
	}
}

func TestCtxWakeChargesWaker(t *testing.T) {
	eng, s := newSys()
	costs := s.Costs()
	c0, c1 := s.Core(0), s.Core(1)
	th := c1.NewThread("app", func(x *Ctx) {
		x.Charge(cpumodel.DataCopy, 100)
		x.Block()
	})
	c0.RaiseSoftirq(func(x *Ctx) {
		x.Charge(cpumodel.Netdev, 100)
		x.Wake(th)
	})
	eng.Run(sim.Time(time.Millisecond))
	acct := c0.Accounting()
	want := costs.Wakeup + costs.IdleWake // target core was idle
	if acct[cpumodel.Sched] != want {
		t.Errorf("waker Sched = %d, want %d", acct[cpumodel.Sched], want)
	}
	if th.Blocked() != true {
		t.Error("woken thread should have run and re-blocked")
	}
	if c1.Accounting()[cpumodel.DataCopy] != 100 {
		t.Error("woken thread never ran on its core")
	}
}

func TestCrossCoreWakeLandsAtLogicalTime(t *testing.T) {
	eng, s := newSys()
	c0, c1 := s.Core(0), s.Core(1)
	var wokenAt sim.Time
	th := c1.NewThread("app", func(x *Ctx) {
		wokenAt = eng.Now()
		x.Charge(cpumodel.DataCopy, 100)
		x.Block()
	})
	c0.RaiseSoftirq(func(x *Ctx) {
		x.Charge(cpumodel.Netdev, 34000) // 10us of work first
		x.Wake(th)
	})
	eng.Run(sim.Time(time.Millisecond))
	if wokenAt < sim.Time(10*time.Microsecond) {
		t.Errorf("thread ran at %v, before the waker's logical wake point (10us)", wokenAt)
	}
}

func TestZeroCostNonBlockingQuantumPanics(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	th := c.NewThread("bad", func(x *Ctx) {})
	defer func() {
		if recover() == nil {
			t.Error("zero-cost non-blocking quantum should panic")
		}
	}()
	th.Wake()
	eng.Run(sim.Time(time.Millisecond))
}

func TestAccountingPerCategory(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	c.RaiseSoftirq(func(x *Ctx) {
		x.Charge(cpumodel.TCPIP, 1000)
		x.Charge(cpumodel.Netdev, 500)
		x.ChargeBytes(cpumodel.DataCopy, 0.5, 1000)
	})
	eng.Run(sim.Time(time.Millisecond))
	acct := c.Accounting()
	if acct[cpumodel.TCPIP] != 1000 || acct[cpumodel.Netdev] != 500 || acct[cpumodel.DataCopy] != 500 {
		t.Errorf("acct = %v", acct)
	}
	if acct.Total() != 2000 {
		t.Errorf("total = %d, want 2000", acct.Total())
	}
}

func TestResetAccounting(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	c.RaiseSoftirq(func(x *Ctx) { x.Charge(cpumodel.Etc, 3400) })
	eng.Run(sim.Time(time.Millisecond))
	s.ResetAccounting()
	acct := c.Accounting()
	if c.BusyTime() != 0 || acct.Total() != 0 {
		t.Error("reset should clear busy time and accounting")
	}
}

func TestUtilization(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	// 3400 cycles = 1us busy in a 10us window = 0.1 utilization.
	c.RaiseSoftirq(func(x *Ctx) { x.Charge(cpumodel.Etc, 3400) })
	eng.Run(sim.Time(10 * time.Microsecond))
	if u := c.Utilization(10 * time.Microsecond); u < 0.099 || u > 0.101 {
		t.Errorf("Utilization = %v, want 0.1", u)
	}
	if c.Utilization(0) != 0 {
		t.Error("zero window should report 0")
	}
}

func TestDeferRunsAtLogicalOffset(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	var deferredAt sim.Time
	c.RaiseSoftirq(func(x *Ctx) {
		x.Charge(cpumodel.Etc, 3400) // 1us
		x.Defer(func() { deferredAt = eng.Now() })
		x.Charge(cpumodel.Etc, 3400) // another 1us after the defer point
	})
	eng.Run(sim.Time(time.Millisecond))
	if deferredAt != sim.Time(time.Microsecond) {
		t.Errorf("deferred side effect at %v, want 1us", deferredAt)
	}
}

func TestChargeAfterCompletionPanics(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	var leaked *Ctx
	c.RaiseSoftirq(func(x *Ctx) {
		leaked = x
		x.Charge(cpumodel.Etc, 100)
	})
	eng.Run(sim.Time(time.Millisecond))
	defer func() {
		if recover() == nil {
			t.Error("charging a completed ctx should panic")
		}
	}()
	leaked.Charge(cpumodel.Etc, 1)
}

func TestBlockOutsideThreadPanics(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	panicked := false
	c.RaiseSoftirq(func(x *Ctx) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		x.Block()
	})
	eng.Run(sim.Time(time.Millisecond))
	if !panicked {
		t.Error("Block in softirq context should panic")
	}
}

func TestTotalBusyAndBreakdown(t *testing.T) {
	eng, s := newSys()
	s.Core(0).RaiseSoftirq(func(x *Ctx) { x.Charge(cpumodel.TCPIP, 3400) })
	s.Core(5).RaiseSoftirq(func(x *Ctx) { x.Charge(cpumodel.DataCopy, 6800) })
	eng.Run(sim.Time(time.Millisecond))
	if s.TotalBusy() != 3*time.Microsecond {
		t.Errorf("TotalBusy = %v, want 3us", s.TotalBusy())
	}
	b := s.TotalBreakdown()
	if b[cpumodel.TCPIP] != 3400 || b[cpumodel.DataCopy] != 6800 {
		t.Errorf("breakdown = %v", b)
	}
}

func TestCoreGeometry(t *testing.T) {
	_, s := newSys()
	if s.NumCores() != 24 {
		t.Fatalf("NumCores = %d", s.NumCores())
	}
	if s.Core(7).Node() != 1 || s.Core(7).ID() != 7 {
		t.Error("core 7 should be node 1")
	}
}

func TestIdleWakeNotChargedWhenTargetBusy(t *testing.T) {
	eng, s := newSys()
	costs := s.Costs()
	c0, c1 := s.Core(0), s.Core(1)
	th := c1.NewThread("app", func(x *Ctx) {
		x.Charge(cpumodel.DataCopy, 100)
		x.Block()
	})
	// Make c1 busy for 10us.
	c1.RaiseSoftirq(func(x *Ctx) { x.Charge(cpumodel.Etc, 34000) })
	c0.RaiseSoftirq(func(x *Ctx) {
		x.Charge(cpumodel.Netdev, 100)
		x.Wake(th)
	})
	eng.Run(sim.Time(time.Millisecond))
	if got := c0.Accounting()[cpumodel.Sched]; got != costs.Wakeup {
		t.Errorf("Sched = %d, want bare Wakeup %d (no idle-exit)", got, costs.Wakeup)
	}
}

func TestThreadQuantumChain(t *testing.T) {
	// A thread doing N quanta of work accumulates the right busy time.
	eng, s := newSys()
	c := s.Core(0)
	n := 0
	th := c.NewThread("worker", func(x *Ctx) {
		x.Charge(cpumodel.DataCopy, 3400)
		n++
		if n == 100 {
			x.Block()
		}
	})
	th.Wake()
	eng.Run(sim.Time(time.Second))
	wantBusy := 100*time.Microsecond + units.Cycles(s.Costs().ContextSwitch).Duration(s.Spec().Frequency)
	if c.BusyTime() != wantBusy {
		t.Errorf("BusyTime = %v, want %v", c.BusyTime(), wantBusy)
	}
}

func TestBusyTimeSplitsSoftirqAndThread(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	c.RaiseSoftirq(func(x *Ctx) { x.Charge(cpumodel.Netdev, 3400) }) // 1us
	th := c.NewThread("app", func(x *Ctx) {
		x.Charge(cpumodel.DataCopy, 6800) // 2us
		x.Block()
	})
	th.Wake()
	eng.Run(sim.Time(time.Millisecond))
	if c.SoftirqTime() != time.Microsecond {
		t.Errorf("SoftirqTime = %v, want 1us", c.SoftirqTime())
	}
	// Thread quanta include the context-switch charge on top of the 2us
	// of work, so check a lower bound and the exact split identity below.
	if c.ThreadTime() < 2*time.Microsecond {
		t.Errorf("ThreadTime = %v, want >= 2us", c.ThreadTime())
	}
	if c.SoftirqTime()+c.ThreadTime() != c.BusyTime() {
		t.Errorf("split %v+%v != BusyTime %v",
			c.SoftirqTime(), c.ThreadTime(), c.BusyTime())
	}
}

func TestResetAccountingClearsSplitAndRunqWait(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	c.RaiseSoftirq(func(x *Ctx) { x.Charge(cpumodel.Netdev, 3400) })
	th := c.NewThread("app", func(x *Ctx) {
		x.Charge(cpumodel.DataCopy, 3400)
		x.Block()
	})
	th.Wake()
	eng.Run(sim.Time(time.Millisecond))
	s.ResetAccounting()
	if c.SoftirqTime() != 0 || c.ThreadTime() != 0 || c.RunqWait() != 0 {
		t.Errorf("split/runq-wait not reset: %v %v %v",
			c.SoftirqTime(), c.ThreadTime(), c.RunqWait())
	}
}

func TestRunqWaitAccumulates(t *testing.T) {
	eng, s := newSys()
	c := s.Core(0)
	// Occupy the core with a 5us softirq, then wake a thread at t=0: the
	// thread sits on the runqueue until the softirq finishes.
	c.RaiseSoftirq(func(x *Ctx) { x.Charge(cpumodel.Netdev, 17000) }) // 5us
	th := c.NewThread("app", func(x *Ctx) {
		x.Charge(cpumodel.DataCopy, 3400)
		x.Block()
	})
	th.Wake()
	eng.Run(sim.Time(time.Millisecond))
	if c.RunqWait() < 4*time.Microsecond {
		t.Errorf("RunqWait = %v, want >= 4us (thread queued behind softirq)", c.RunqWait())
	}
}

func TestSpanObserverSeesEveryWorkItem(t *testing.T) {
	eng, s := newSys()
	type span struct {
		core    int
		softirq bool
		thread  string
		start   sim.Time
		end     sim.Time
		cycles  units.Cycles
		dom     cpumodel.Category
	}
	var spans []span
	s.SetSpanObserver(func(core int, softirq bool, thread string,
		start, end sim.Time, acct *cpumodel.Breakdown, cycles units.Cycles) {
		dom := cpumodel.Category(0)
		for i := 1; i < len(acct); i++ {
			if acct[i] > acct[dom] {
				dom = cpumodel.Category(i)
			}
		}
		spans = append(spans, span{core, softirq, thread, start, end, cycles, dom})
	})
	c := s.Core(0)
	c.RaiseSoftirq(func(x *Ctx) { x.Charge(cpumodel.Netdev, 3400) })
	th := c.NewThread("app", func(x *Ctx) {
		x.Charge(cpumodel.DataCopy, 6800)
		x.Block()
	})
	th.Wake()
	eng.Run(sim.Time(time.Millisecond))
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	si, app := spans[0], spans[1]
	if !si.softirq || si.thread != "" || si.dom != cpumodel.Netdev || si.cycles != 3400 {
		t.Errorf("softirq span = %+v", si)
	}
	if si.end.Duration()-si.start.Duration() != time.Microsecond {
		t.Errorf("softirq span duration = %v", si.end.Duration()-si.start.Duration())
	}
	// The quantum also carries the context-switch charge, so cycles
	// exceed the 6800 the work item itself charged.
	if app.softirq || app.thread != "app" || app.dom != cpumodel.DataCopy || app.cycles < 6800 {
		t.Errorf("thread span = %+v", app)
	}
}
