package exec

import (
	"testing"

	"hostsim/internal/cpumodel"
)

// With no charge log installed (nil profiler) the per-charge hooks —
// Charge, SetFlowTag — must be free: plain field updates, zero
// allocations. This guards PR 2's pooled-event-loop invariant against
// the profiler layer.
func TestChargeNilLogAllocationFree(t *testing.T) {
	eng, s := newSys()
	var allocs float64
	s.Core(0).RaiseSoftirq(func(ctx *Ctx) {
		allocs = testing.AllocsPerRun(100, func() {
			ctx.SetFlowTag(7)
			ctx.Charge(cpumodel.Netdev, 100)
			ctx.Charge(cpumodel.TCPIP, 50)
			ctx.SetFlowTag(0)
		})
	})
	eng.Run(eng.Now() + 1_000_000)
	if allocs != 0 {
		t.Errorf("nil-charge-log Charge path allocates %v per op, want 0", allocs)
	}
}

// With a charge log installed, steady state must also be allocation-free:
// the log buffer comes from a pool and same-(flow,category) charges merge
// in place, so after one warm-up work item the charge path never grows.
func TestChargeWithLogAllocationFree(t *testing.T) {
	eng, s := newSys()
	var flushed int
	s.SetChargeLog(func(core int, softirq bool, thread string, log []FlowCharge) {
		flushed += len(log)
	})
	charge := func(ctx *Ctx) {
		ctx.SetFlowTag(7)
		ctx.Charge(cpumodel.Netdev, 100)
		ctx.SetFlowTag(9)
		ctx.Charge(cpumodel.TCPIP, 50)
		ctx.SetFlowTag(0)
	}
	// Warm-up: returns a log buffer with capacity to the pool.
	s.Core(0).RaiseSoftirq(charge)
	eng.Run(eng.Now() + 1_000_000)

	var allocs float64
	s.Core(0).RaiseSoftirq(func(ctx *Ctx) {
		allocs = testing.AllocsPerRun(100, func() { charge(ctx) })
	})
	eng.Run(eng.Now() + 1_000_000)
	if allocs != 0 {
		t.Errorf("steady-state charge-log path allocates %v per op, want 0", allocs)
	}
	if flushed == 0 {
		t.Fatal("charge log never flushed")
	}
}

// The charge log must coalesce repeat charges to the same (flow, category)
// and split by flow tag.
func TestChargeLogContent(t *testing.T) {
	eng, s := newSys()
	var got []FlowCharge
	s.SetChargeLog(func(core int, softirq bool, thread string, log []FlowCharge) {
		got = append(got, log...)
	})
	s.Core(0).RaiseSoftirq(func(ctx *Ctx) {
		ctx.SetFlowTag(7)
		ctx.Charge(cpumodel.Netdev, 100)
		ctx.Charge(cpumodel.TCPIP, 50)
		ctx.Charge(cpumodel.Netdev, 25)
		ctx.SetFlowTag(0)
	})
	eng.Run(eng.Now() + 1_000_000)
	want := []FlowCharge{
		{Flow: 7, Cat: cpumodel.Netdev, Cycles: 125},
		{Flow: 7, Cat: cpumodel.TCPIP, Cycles: 50},
	}
	if len(got) != len(want) {
		t.Fatalf("charge log = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("charge log[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func BenchmarkSoftirqNilChargeLog(b *testing.B) {
	eng, s := newSys()
	c := s.Core(0)
	fn := func(ctx *Ctx) {
		ctx.Charge(cpumodel.Netdev, 100)
		ctx.Charge(cpumodel.TCPIP, 50)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RaiseSoftirq(fn)
		eng.Run(eng.Now() + 1_000_000)
	}
}

func BenchmarkSoftirqWithChargeLog(b *testing.B) {
	eng, s := newSys()
	s.SetChargeLog(func(core int, softirq bool, thread string, log []FlowCharge) {})
	c := s.Core(0)
	fn := func(ctx *Ctx) {
		ctx.SetFlowTag(7)
		ctx.Charge(cpumodel.Netdev, 100)
		ctx.Charge(cpumodel.TCPIP, 50)
		ctx.SetFlowTag(0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RaiseSoftirq(fn)
		eng.Run(eng.Now() + 1_000_000)
	}
}
