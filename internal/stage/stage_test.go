package stage

import "testing"

func TestSlugsRoundTrip(t *testing.T) {
	for i := Stage(0); i < numStages; i++ {
		s, ok := Parse(i.String())
		if !ok || s != i {
			t.Errorf("Parse(%q) = %v, %v; want %v, true", i.String(), s, ok, i)
		}
	}
	if _, ok := Parse("bogus"); ok {
		t.Error("Parse accepted an unknown slug")
	}
	if Stage(200).String() != "invalid" {
		t.Error("out-of-range stage did not stringify as invalid")
	}
}

func TestOrderings(t *testing.T) {
	if Message[len(Message)-1] != Total || Packet[len(Packet)-1] != Total {
		t.Fatal("orderings must end with the total stage")
	}
	// Message is Packet with RetxWait inserted after Sndbuf.
	withRetx := append([]Stage{Packet[0], RetxWait}, Packet[1:]...)
	for i, s := range withRetx {
		if Message[i] != s {
			t.Fatalf("Message[%d] = %v, want %v", i, Message[i], s)
		}
	}
}
