// Package stage defines the canonical data-path stage taxonomy shared
// by every latency-reporting layer: the profiler's per-packet lifecycle
// breakdown, the wire-level inspector's gauges, and the per-message
// tracer. Reports that disagree on stage names or units cannot be
// cross-referenced, so all of them draw their labels from here and
// measure in nanoseconds of simulated time.
package stage

// Stage is one hop of the Fig. 1 host data path pipeline.
type Stage uint8

// The stages, in pipeline order. RetxWait only exists at message scope:
// packets are stamped per transmission, so a packet's sndbuf stage
// absorbs any retransmission wait, while a message separates the two
// (its bytes may be transmitted many times before a copy arrives).
const (
	Sndbuf    Stage = iota // app write → TCP first emitted the bytes
	RetxWait               // first emission → emission of the copy that arrived
	NICTx                  // TCP tx → frame left the NIC (tx queue + doorbell)
	Wire                   // NIC tx → arrival at the peer NIC (serialize + propagate)
	RxRing                 // wire arrival → NAPI picked the frame up (IRQ moderation)
	GRO                    // NAPI pickup → GRO flushed the aggregate
	TCPRx                  // GRO flush → TCP Rx processing began
	SockQueue              // TCP Rx → application read the bytes
	Total                  // app write → app read
	numStages
)

var names = [numStages]string{
	"sndbuf", "retx_wait", "nic_tx", "wire", "rx_ring", "gro", "tcp_rx", "sock_queue", "total",
}

// String returns the stage's short slug, stable across reports.
func (s Stage) String() string {
	if s >= numStages {
		return "invalid"
	}
	return names[s]
}

// Packet lists the per-packet (SKB lifecycle) stages in pipeline order:
// seven telescoping deltas plus the total.
var Packet = [8]Stage{Sndbuf, NICTx, Wire, RxRing, GRO, TCPRx, SockQueue, Total}

// Message lists the per-message stages in pipeline order: eight
// telescoping deltas (RetxWait included) plus the total.
var Message = [9]Stage{Sndbuf, RetxWait, NICTx, Wire, RxRing, GRO, TCPRx, SockQueue, Total}

// Parse maps a slug back to its Stage; ok is false for unknown names.
func Parse(name string) (s Stage, ok bool) {
	for i, n := range names {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}
