package sim

import (
	"math/bits"
	"slices"
)

// wheel is the default scheduler: a hierarchical timing wheel with an
// overflow ladder, tuned to the simulator's event-time distribution —
// dense near-future NIC/softirq/wire events at nanosecond granularity,
// sparse far-future RTO and application timers.
//
// # Geometry
//
// Seven levels of 64 slots each. A level-k slot spans 64^k ns, so the
// wheel proper covers 64^7 ns = 2^42 ns (≈73 simulated minutes) past the
// wheel's base time; anything farther sits in the overflow ladder (a flat
// list, scanned only when the wheel would otherwise run dry or the
// ladder's head comes due — both rare, since runs last milliseconds).
//
// An event at absolute time `at` lives at the level of the highest bit
// block in which `at` differs from base (Linux-timer-wheel style), in slot
// (at >> 6k) & 63. Two consequences make the wheel exact rather than
// approximate:
//
//   - every event in a level-0 slot shares the identical timestamp (the
//     slot IS the tick), and
//   - a slot never mixes laps: all events in a level-k slot share their
//     address bits above 6k with base, so per-level occupancy bitmaps give
//     find-next-slot in O(1) with no empty-slot scans.
//
// Advancing to the next event repeatedly takes the earliest occupied slot
// across levels (one TrailingZeros64 per level); a level-0 slot is an
// exact tick, a higher-level slot is cascaded: its events re-place into
// strictly lower levels after base advances to the slot start. Each event
// cascades at most numLevels-1 times over its lifetime, so schedule +
// expire is amortized O(1).
//
// # Determinism contract
//
// Dispatch order is identical to the binary heap's: strictly ascending
// (at, seq). Same-tick events are dispatched as a batch — the level-0
// slot is drained and sorted by scheduling sequence (stable FIFO), and
// events scheduled AT the current tick from inside a batch callback join
// the back of the same tick's dispatch (they land in the just-emptied
// slot, which is re-drained when the batch exhausts; their seq is higher
// than everything already dispatched, preserving FIFO). Timer.Stop and
// Timer.Reset work mid-batch: batch entries are nilled in place, and a
// reset re-places the event under its new (at, seq).
type wheel struct {
	base Time // wheel time floor: base <= at for every pending event
	n    int  // pending events, everywhere (levels + overflow + batch)

	occ  [numLevels]uint64             // per-level slot occupancy bitmaps
	slot [numLevels][numSlots][]*event // slot buckets; backing arrays are reused

	overflow []*event // the ladder: events ≥ wheelSpan past base
	ovfMin   Time     // lower bound on the earliest overflow event (exact after migrate)

	batch     []*event // current tick's dispatch batch, seq-sorted; nil = cancelled
	batchPos  int      // next batch entry to dispatch
	batchLive int      // non-nil entries remaining in batch[batchPos:]
	batchTick Time
}

const (
	slotBits  = 6
	numSlots  = 1 << slotBits
	slotMask  = numSlots - 1
	numLevels = 7
	// wheelSpan is how far past base the wheel proper reaches; beyond it
	// events go to the overflow ladder.
	wheelSpan = Time(1) << (slotBits * numLevels)
)

func newWheel() *wheel { return &wheel{} }

func (w *wheel) len() int { return w.n }

// levelOf returns the level for an event at absolute time at (>= base):
// the block index of the highest bit in which at differs from base.
// Returns numLevels for times past the wheel span (overflow).
func (w *wheel) levelOf(at Time) int {
	x := uint64(at ^ w.base)
	if x == 0 {
		return 0
	}
	lvl := (bits.Len64(x) - 1) / slotBits
	if lvl > numLevels {
		lvl = numLevels
	}
	return lvl
}

func (w *wheel) schedule(ev *event) {
	w.n++
	w.place(ev)
}

// place inserts ev into the level/slot (or overflow) addressed by ev.at
// relative to the current base. Pending-count bookkeeping is the caller's.
func (w *wheel) place(ev *event) {
	if ev.at < w.base {
		// Unreachable under the popBefore contract (base never passes a
		// Run horizon, and schedules happen at >= now). A hit means a Run
		// horizon moved backward across calls.
		panic("sim: scheduling below wheel base; Run horizons must not decrease")
	}
	lvl := w.levelOf(ev.at)
	if lvl >= numLevels {
		ev.loc = locOverflow
		ev.idx = int32(len(w.overflow))
		if len(w.overflow) == 0 || ev.at < w.ovfMin {
			w.ovfMin = ev.at
		}
		w.overflow = append(w.overflow, ev)
		return
	}
	s := int(ev.at>>(uint(lvl)*slotBits)) & slotMask
	b := w.slot[lvl][s]
	ev.loc = location(lvl)
	ev.idx = int32(len(b))
	w.slot[lvl][s] = append(b, ev)
	w.occ[lvl] |= 1 << uint(s)
}

func (w *wheel) unschedule(ev *event) {
	switch ev.loc {
	case locBatch:
		w.batch[ev.idx] = nil
		w.batchLive--
	case locOverflow:
		last := len(w.overflow) - 1
		moved := w.overflow[last]
		w.overflow[ev.idx] = moved
		moved.idx = ev.idx
		w.overflow[last] = nil
		w.overflow = w.overflow[:last]
		// ovfMin may now be stale-low; that only costs a spurious rescan
		// in migrate, never a missed event.
	default: // a wheel level
		lvl := int(ev.loc)
		s := int(ev.at>>(uint(lvl)*slotBits)) & slotMask
		b := w.slot[lvl][s]
		last := len(b) - 1
		moved := b[last]
		b[ev.idx] = moved
		moved.idx = ev.idx
		b[last] = nil
		w.slot[lvl][s] = b[:last]
		if last == 0 {
			w.occ[lvl] &^= 1 << uint(s)
		}
	}
	ev.loc = locNone
	w.n--
}

// popBefore returns the earliest pending event if its time is below limit,
// else nil. The limit is load-bearing: base only ever advances toward a
// target (tick, cascade start, or ladder head) already proven < limit, so
// base never passes the engine clock the caller is about to settle on —
// which is what keeps every future schedule (at >= now > base) addressable
// by the wheel.
func (w *wheel) popBefore(limit Time) *event {
	for {
		if w.batchLive > 0 {
			if w.batchTick >= limit {
				return nil
			}
			for w.batchPos < len(w.batch) {
				ev := w.batch[w.batchPos]
				w.batch[w.batchPos] = nil
				w.batchPos++
				if ev == nil {
					continue // stopped (or reset away) mid-batch
				}
				w.batchLive--
				w.n--
				ev.loc = locNone
				return ev
			}
		}
		if w.n == 0 {
			return nil
		}
		var best Time
		bestLvl, bestSlot := -1, 0
		for lvl := 0; lvl < numLevels; lvl++ {
			occ := w.occ[lvl]
			if occ == 0 {
				continue
			}
			shift := uint(lvl) * slotBits
			cur := int(w.base>>shift) & slotMask
			m := occ &^ (1<<uint(cur) - 1)
			if m == 0 {
				panic("sim: wheel occupancy behind cursor")
			}
			s := bits.TrailingZeros64(m)
			lap := w.base &^ (Time(1)<<(shift+slotBits) - 1)
			start := lap | Time(s)<<shift
			// A tie prefers the higher level: its slot is a range that may
			// contain events at this very tick, so it must cascade first.
			if bestLvl < 0 || start <= best {
				best, bestLvl, bestSlot = start, lvl, s
			}
		}
		if len(w.overflow) > 0 && (bestLvl < 0 || w.ovfMin <= best) {
			// The ladder head might be due before the wheel's candidate;
			// pin it down exactly (ovfMin can be stale-low after removals).
			head := w.overflow[0].at
			for _, ev := range w.overflow[1:] {
				if ev.at < head {
					head = ev.at
				}
			}
			w.ovfMin = head
			if bestLvl < 0 || head <= best {
				if head >= limit {
					return nil
				}
				w.migrate(head)
				continue
			}
		}
		if bestLvl < 0 {
			return nil
		}
		if best >= limit {
			// Everything pending lies at or past limit: the candidate slot's
			// start is a lower bound on its contents. Crucially base does NOT
			// advance, so events the caller schedules in [now, limit) remain
			// ahead of base.
			return nil
		}
		if bestLvl == 0 {
			w.startBatch(best)
			continue
		}
		w.cascade(bestLvl, bestSlot, best)
	}
}

// cascade advances base to the start of a higher-level slot and re-places
// its events; each lands at a strictly lower level.
func (w *wheel) cascade(lvl, s int, start Time) {
	b := w.slot[lvl][s]
	w.slot[lvl][s] = b[:0]
	w.occ[lvl] &^= 1 << uint(s)
	w.base = start
	for i, ev := range b {
		b[i] = nil
		w.place(ev)
	}
}

// migrate jumps the wheel to the overflow ladder's head time and pulls
// every now-in-span ladder event into the wheel. Safe: head <= every
// occupied slot start, so no pending event is left behind the base.
func (w *wheel) migrate(head Time) {
	w.base = head
	keep := w.overflow[:0]
	for _, ev := range w.overflow {
		if w.levelOf(ev.at) < numLevels {
			w.place(ev)
		} else {
			ev.idx = int32(len(keep))
			keep = append(keep, ev)
		}
	}
	for i := len(keep); i < len(w.overflow); i++ {
		w.overflow[i] = nil
	}
	w.overflow = keep
	w.ovfMin = 0
	for i, ev := range keep {
		if i == 0 || ev.at < w.ovfMin {
			w.ovfMin = ev.at
		}
	}
}

// startBatch drains the level-0 slot for tick t into the dispatch batch,
// sorted by scheduling sequence — the documented stable-FIFO same-tick
// order, byte-identical to the heap's (at, seq) dispatch.
func (w *wheel) startBatch(t Time) {
	s := int(t) & slotMask
	b := w.slot[0][s]
	w.slot[0][s] = b[:0]
	w.occ[0] &^= 1 << uint(s)
	w.base = t
	w.batch = w.batch[:0]
	w.batchPos = 0
	w.batchTick = t
	for i, ev := range b {
		b[i] = nil
		ev.loc = locBatch
		w.batch = append(w.batch, ev)
	}
	sortEventsBySeq(w.batch)
	for i, ev := range w.batch {
		ev.idx = int32(i)
	}
	w.batchLive = len(w.batch)
}

// sortEventsBySeq orders a same-tick batch by scheduling sequence.
// Batches are almost always tiny (1–4 events), so insertion sort wins;
// large fan-ins fall back to pdqsort.
func sortEventsBySeq(b []*event) {
	if len(b) < 2 {
		return
	}
	if len(b) <= 16 {
		for i := 1; i < len(b); i++ {
			ev := b[i]
			j := i - 1
			for j >= 0 && b[j].seq > ev.seq {
				b[j+1] = b[j]
				j--
			}
			b[j+1] = ev
		}
		return
	}
	slices.SortFunc(b, func(a, c *event) int {
		switch {
		case a.seq < c.seq:
			return -1
		case a.seq > c.seq:
			return 1
		default:
			return 0
		}
	})
}
