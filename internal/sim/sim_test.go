package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []time.Duration{50, 10, 30, 20, 40} {
		d := d
		e.After(d*time.Nanosecond, func() { got = append(got, e.Now()) })
	}
	e.Run(Time(1e9))
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run(1000)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestHorizonIsExclusive(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.At(100, func() { ran = true })
	end := e.Run(100)
	if ran {
		t.Error("event exactly at horizon must not run")
	}
	if end != 100 {
		t.Errorf("Run returned %v, want horizon 100", end)
	}
	if e.Pending() != 1 {
		t.Errorf("event should remain pending, got %d", e.Pending())
	}
}

func TestClockAdvancesToHorizonOnDrain(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {})
	end := e.Run(500)
	if end != 500 || e.Now() != 500 {
		t.Errorf("drained run should advance clock to horizon, got %v", end)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling before now should panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run(1000)
}

func TestNilEventPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("scheduling nil func should panic")
		}
	}()
	e.At(1, nil)
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	ran := false
	tm := e.At(100, func() { ran = true })
	if !tm.Pending() {
		t.Error("timer should be pending after scheduling")
	}
	if !tm.Stop() {
		t.Error("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	if tm.Pending() {
		t.Error("stopped timer should not be pending")
	}
	e.Run(1000)
	if ran {
		t.Error("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(5, func() {})
	e.Run(10)
	if tm.Stop() {
		t.Error("Stop after firing should report false")
	}
}

func TestTimerWhen(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(123, func() {})
	if tm.When() != 123 {
		t.Errorf("When = %v, want 123", tm.When())
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(1, func() { count++; e.Halt() })
	e.At(2, func() { count++ })
	e.Run(100)
	if count != 1 {
		t.Errorf("Halt should stop the loop; ran %d events", count)
	}
	// Remaining event still runs on resumed Run.
	e.Run(100)
	if count != 2 {
		t.Errorf("resumed run should execute remaining event; ran %d", count)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.At(1, func() { n++ })
	e.At(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatal("first Step should run one event")
	}
	if !e.Step() || n != 2 {
		t.Fatal("second Step should run the second event")
	}
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestCascadingEvents(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(time.Nanosecond, recurse)
		}
	}
	e.At(0, recurse)
	e.Run(Time(1e6))
	if depth != 100 {
		t.Errorf("cascade depth = %d, want 100", depth)
	}
	if e.Fired() != 100 {
		t.Errorf("Fired = %d, want 100", e.Fired())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var trace []int64
		for i := 0; i < 200; i++ {
			d := time.Duration(e.Rand().Intn(1000)) * time.Nanosecond
			e.After(d, func() { trace = append(trace, int64(e.Now())+int64(e.Rand().Intn(7))) })
		}
		e.Run(Time(1e6))
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("same seed produced different event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces; RNG not wired to seed")
	}
}

// Property: for any set of (time, id) pairs, events fire sorted by time
// with ties in insertion order.
func TestPropertyHeapOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		e := NewEngine(1)
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, tt := range times {
			i, at := i, Time(tt)
			e.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		e.Run(Time(1 << 20))
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		})
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: stopping a random subset of timers fires exactly the others.
func TestPropertyTimerCancellation(t *testing.T) {
	f := func(times []uint16, cancelMask []bool) bool {
		e := NewEngine(1)
		firedSet := make(map[int]bool)
		timers := make([]Timer, len(times))
		for i, tt := range times {
			i := i
			timers[i] = e.At(Time(tt), func() { firedSet[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				timers[i].Stop()
				cancelled[i] = true
			}
		}
		e.Run(Time(1 << 20))
		for i := range times {
			if cancelled[i] == firedSet[i] {
				return false // fired XOR cancelled must hold
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTimerReset(t *testing.T) {
	e := NewEngine(1)
	var order []string
	a := e.At(100, func() { order = append(order, "a") })
	e.At(200, func() { order = append(order, "b") })
	if !a.Reset(300) {
		t.Fatal("Reset of a pending timer should report true")
	}
	if !a.Pending() {
		t.Error("reset timer should stay pending")
	}
	if a.When() != 300 {
		t.Errorf("When after Reset = %v, want 300", a.When())
	}
	e.Run(1000)
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Errorf("fire order after reset = %v, want [b a]", order)
	}
}

// A reset timer moves to the back of the FIFO tie-break order at its new
// timestamp, exactly as if it had been freshly scheduled.
func TestTimerResetTieBreak(t *testing.T) {
	e := NewEngine(1)
	var order []string
	x := e.At(100, func() { order = append(order, "x") })
	e.At(100, func() { order = append(order, "y") })
	if !x.Reset(100) {
		t.Fatal("Reset to the same time should still succeed")
	}
	e.Run(1000)
	if len(order) != 2 || order[0] != "y" || order[1] != "x" {
		t.Errorf("fire order = %v, want [y x] (reset re-sequences the tie-break)", order)
	}
}

func TestTimerResetStoppedOrFired(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(10, func() {})
	tm.Stop()
	if tm.Reset(50) {
		t.Error("Reset of a stopped timer should report false")
	}
	tm2 := e.At(20, func() {})
	e.Run(100)
	if tm2.Reset(500) {
		t.Error("Reset of a fired timer should report false")
	}
}

func TestTimerResetInPastPanics(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(100, func() {})
	e.At(50, func() {
		defer func() {
			if recover() == nil {
				t.Error("Reset before now should panic")
			}
		}()
		tm.Reset(10)
	})
	e.Run(1000)
}

// A handle whose event fired and was recycled for a new schedule must not
// be able to stop, reset, or observe the new event.
func TestStaleHandleCannotTouchRecycledEvent(t *testing.T) {
	e := NewEngine(1)
	stale := e.At(10, func() {})
	e.Run(20) // fires; event returns to the free list
	fresh := e.At(30, func() {})
	if stale.Pending() {
		t.Error("stale handle reports pending after its event was recycled")
	}
	if stale.Stop() {
		t.Error("stale handle stopped someone else's event")
	}
	if stale.Reset(40) {
		t.Error("stale handle reset someone else's event")
	}
	if !fresh.Pending() {
		t.Error("fresh timer lost its schedule to a stale handle")
	}
	ran := false
	fresh2 := e.At(35, func() { ran = true })
	_ = fresh2
	e.Run(100)
	if !ran {
		t.Error("recycled event did not fire")
	}
}

func TestStopClearsEventReference(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(10, func() {})
	tm.Stop()
	if tm.e != nil {
		t.Error("Stop should nil the handle's event reference")
	}
	// A failed Stop on a stale handle also drops the reference.
	tm2 := e.At(20, func() {})
	e.Run(50)
	tm2.Stop()
	if tm2.e != nil {
		t.Error("failed Stop should still nil the stale event reference")
	}
}

// Steady-state scheduling and firing reuses pooled events: zero
// allocations per schedule/fire cycle once the free list is primed.
func TestScheduleFireAllocationFree(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	// Prime the heap slice and free list.
	for i := 0; i < 64; i++ {
		e.After(time.Nanosecond, fn)
	}
	e.Run(e.Now() + 100)
	allocs := testing.AllocsPerRun(100, func() {
		e.After(time.Nanosecond, fn)
		e.Run(e.Now() + 100)
	})
	if allocs != 0 {
		t.Errorf("schedule+fire allocates %v per op, want 0", allocs)
	}
}

// Timer.Reset must not allocate.
func TestResetAllocationFree(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(1000, func() {})
	at := Time(1000)
	allocs := testing.AllocsPerRun(100, func() {
		at++
		tm.Reset(at)
	})
	if allocs != 0 {
		t.Errorf("Reset allocates %v per op, want 0", allocs)
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.At(10, func() {
		e.After(-5*time.Nanosecond, func() { ran = true })
	})
	e.Run(100)
	if !ran {
		t.Error("negative After should clamp to now and fire")
	}
}
