package sim

// heapSched is the reference scheduler: a hand-rolled binary min-heap
// ordered by (at, seq). O(log n) per operation. It exists as the simple,
// obviously-correct implementation the wheel is differentially tested
// against (SchedHeap), and costs nothing when unused.
type heapSched struct {
	q []*event
}

func (h *heapSched) len() int { return len(h.q) }

func (h *heapSched) less(i, j int) bool {
	a, b := h.q[i], h.q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *heapSched) swap(i, j int) {
	h.q[i], h.q[j] = h.q[j], h.q[i]
	h.q[i].idx = int32(i)
	h.q[j].idx = int32(j)
}

func (h *heapSched) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *heapSched) down(i int) {
	n := len(h.q)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h.swap(i, least)
		i = least
	}
}

func (h *heapSched) schedule(ev *event) {
	ev.loc = locHeap
	ev.idx = int32(len(h.q))
	h.q = append(h.q, ev)
	h.up(len(h.q) - 1)
}

func (h *heapSched) unschedule(ev *event) {
	i := int(ev.idx)
	last := len(h.q) - 1
	if i != last {
		h.swap(i, last)
	}
	h.q[last] = nil
	h.q = h.q[:last]
	if i != last {
		h.down(i)
		h.up(i)
	}
	ev.loc = locNone
}

func (h *heapSched) popBefore(limit Time) *event {
	if len(h.q) == 0 || h.q[0].at >= limit {
		return nil
	}
	ev := h.q[0]
	last := len(h.q) - 1
	if last > 0 {
		h.swap(0, last)
	}
	h.q[last] = nil
	h.q = h.q[:last]
	h.down(0)
	ev.loc = locNone
	return ev
}
