package sim

import (
	"math/rand"
	"testing"
	"time"
)

// schedKinds enumerates the scheduler implementations under test. Every
// behavioral test in this file runs against all of them: the heap is the
// reference, the wheel must be indistinguishable from it.
var schedKinds = []string{SchedHeap, SchedWheel}

func forEachSched(t *testing.T, f func(t *testing.T, kind string)) {
	t.Helper()
	for _, kind := range schedKinds {
		t.Run(kind, func(t *testing.T) { f(t, kind) })
	}
}

// TestTimerEdgeCases is the shared table of Timer.Stop/Reset corner
// semantics: both schedulers must agree on every row.
func TestTimerEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, e *Engine)
	}{
		{"stop after fire reports false", func(t *testing.T, e *Engine) {
			tm := e.At(5, func() {})
			e.Run(10)
			if tm.Stop() {
				t.Error("Stop after firing should report false")
			}
			if tm.Pending() {
				t.Error("fired timer should not be pending")
			}
		}},
		{"stop twice reports false second time", func(t *testing.T, e *Engine) {
			tm := e.At(5, func() {})
			if !tm.Stop() || tm.Stop() {
				t.Error("Stop must report true then false")
			}
		}},
		{"reset to past panics", func(t *testing.T, e *Engine) {
			tm := e.At(100, func() {})
			e.At(50, func() {
				defer func() {
					if recover() == nil {
						t.Error("Reset before now should panic")
					}
				}()
				tm.Reset(10)
			})
			e.Run(1000)
		}},
		{"reset to same tick moves to back of FIFO", func(t *testing.T, e *Engine) {
			var order []string
			x := e.At(100, func() { order = append(order, "x") })
			e.At(100, func() { order = append(order, "y") })
			if !x.Reset(100) {
				t.Fatal("Reset to the same time should succeed")
			}
			e.Run(1000)
			if len(order) != 2 || order[0] != "y" || order[1] != "x" {
				t.Errorf("fire order = %v, want [y x]", order)
			}
		}},
		{"reset to current tick from inside a callback", func(t *testing.T, e *Engine) {
			var order []string
			var tm Timer
			e.At(100, func() {
				order = append(order, "a")
				// tm is pending at 200; pull it into the tick being
				// dispatched right now. It must join the back of this
				// tick's batch.
				tm.Reset(100)
			})
			tm = e.At(200, func() { order = append(order, "b") })
			e.At(100, func() { order = append(order, "c") })
			e.Run(1000)
			if len(order) != 3 || order[0] != "a" || order[1] != "c" || order[2] != "b" {
				t.Errorf("fire order = %v, want [a c b]", order)
			}
		}},
		{"stop same-tick sibling from inside a callback", func(t *testing.T, e *Engine) {
			var order []string
			var victim Timer
			e.At(100, func() {
				order = append(order, "a")
				if !victim.Stop() {
					t.Error("stopping a pending same-tick sibling should succeed")
				}
			})
			victim = e.At(100, func() { order = append(order, "victim") })
			e.At(100, func() { order = append(order, "b") })
			e.Run(1000)
			if len(order) != 2 || order[0] != "a" || order[1] != "b" {
				t.Errorf("fire order = %v, want [a b]", order)
			}
		}},
		{"reset far future then near", func(t *testing.T, e *Engine) {
			fired := Time(-1)
			tm := e.At(10, func() { fired = e.Now() })
			// Far past the wheel span (forces the overflow ladder), then
			// back near.
			if !tm.Reset(Time(1) << 50) {
				t.Fatal("Reset to far future should succeed")
			}
			if !tm.Reset(77) {
				t.Fatal("Reset back near should succeed")
			}
			e.Run(1000)
			if fired != 77 {
				t.Errorf("timer fired at %v, want 77", fired)
			}
		}},
		{"stale handle after recycle", func(t *testing.T, e *Engine) {
			stale := e.At(10, func() {})
			e.Run(20)
			fresh := e.At(30, func() {})
			if stale.Pending() || stale.Stop() || stale.Reset(40) {
				t.Error("stale handle must not touch the recycled event")
			}
			if !fresh.Pending() {
				t.Error("fresh timer lost its schedule to a stale handle")
			}
		}},
		{"zero timer is inert", func(t *testing.T, e *Engine) {
			var tm Timer
			if tm.Pending() || tm.Stop() || tm.Reset(10) {
				t.Error("zero Timer must be permanently inert")
			}
		}},
	}
	forEachSched(t, func(t *testing.T, kind string) {
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				tc.run(t, NewEngineSched(1, kind))
			})
		}
	})
}

// traceRec is one dispatched event: when it fired and which logical event
// it was. Equal traces mean equal dispatch order.
type traceRec struct {
	at Time
	id int
}

// dispatchTrace drives one engine through a randomized workload derived
// deterministically from seed — mixed timescales (same-tick collisions
// through overflow-ladder far futures), Stop/Reset churn from inside
// callbacks, and multiple Run segments with non-decreasing horizons — and
// records the (time, id) dispatch sequence. The RNG is consumed inside
// callbacks too, so the streams only stay aligned between two engines if
// their dispatch orders are identical; any divergence cascades into an
// obvious trace mismatch.
func dispatchTrace(kind string, seed int64) ([]traceRec, int) {
	e := NewEngineSched(seed, kind)
	rng := rand.New(rand.NewSource(seed))
	var trace []traceRec
	var timers []Timer
	nextID := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		id := nextID
		nextID++
		var d Time
		switch rng.Intn(8) {
		case 0:
			d = 0 // same tick
		case 1:
			d = Time(rng.Intn(64)) // level 0/1
		case 2:
			d = Time(rng.Intn(10_000))
		case 3:
			d = Time(rng.Intn(1_000_000))
		case 4:
			d = Time(rng.Intn(1_000_000_000)) // RTO-ish
		case 5:
			d = wheelSpan + Time(rng.Intn(1_000_000)) // overflow ladder
		default:
			d = Time(rng.Intn(4096))
		}
		tm := e.At(e.Now()+d, func() {
			trace = append(trace, traceRec{e.Now(), id})
			if depth >= 3 {
				return
			}
			switch rng.Intn(5) {
			case 0, 1: // schedule more from inside the dispatch
				schedule(depth + 1)
			case 2: // stop a random timer (possibly a same-tick sibling)
				timers[rng.Intn(len(timers))].Stop()
			case 3: // reset a random timer (possibly to this very tick)
				timers[rng.Intn(len(timers))].Reset(e.Now() + Time(rng.Intn(1000)))
			case 4: // no churn
			}
		})
		timers = append(timers, tm)
	}
	horizon := Time(0)
	for seg := 0; seg < 6; seg++ {
		for i := 0; i < 50; i++ {
			schedule(0)
		}
		horizon += Time(rng.Intn(2_000_000) + 1)
		e.Run(horizon)
	}
	// Final drain far enough to pull the overflow ladder in.
	e.Run(horizon + 2*wheelSpan)
	return trace, e.Pending()
}

// TestSchedulerEquivalence cross-checks the wheel against the heap on
// randomized workloads: identical dispatch sequences (times, identities,
// same-tick FIFO order) and identical leftover counts.
func TestSchedulerEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		wt, wp := dispatchTrace(SchedWheel, seed)
		ht, hp := dispatchTrace(SchedHeap, seed)
		if len(wt) != len(ht) {
			t.Fatalf("seed %d: wheel fired %d events, heap %d", seed, len(wt), len(ht))
		}
		for i := range wt {
			if wt[i] != ht[i] {
				t.Fatalf("seed %d: dispatch %d diverged: wheel %+v, heap %+v",
					seed, i, wt[i], ht[i])
			}
		}
		if wp != hp {
			t.Fatalf("seed %d: pending after drain: wheel %d, heap %d", seed, wp, hp)
		}
	}
}

// runScript interprets data as a deterministic op stream against one
// engine: schedule (with a delta whose shift can reach the overflow
// ladder), stop, reset, and run-to-horizon. Returns the dispatch trace and
// the leftover pending count.
func runScript(kind string, data []byte) ([]traceRec, int) {
	e := NewEngineSched(1, kind)
	var trace []traceRec
	var timers []Timer
	id := 0
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	for pos < len(data) {
		switch next() % 4 {
		case 0: // schedule at now + (b << s), s up to 44 to reach overflow
			b, s := Time(next()), uint(next())%45
			myID := id
			id++
			timers = append(timers, e.At(e.Now()+(b<<s), func() {
				trace = append(trace, traceRec{e.Now(), myID})
			}))
		case 1: // stop
			if len(timers) > 0 {
				timers[int(next())%len(timers)].Stop()
			}
		case 2: // reset to now + delta (never the past)
			if len(timers) > 0 {
				i := int(next()) % len(timers)
				timers[i].Reset(e.Now() + Time(next()))
			}
		case 3: // run forward (horizons are strictly non-decreasing)
			e.Run(e.Now() + Time(next())*17 + 1)
		}
	}
	e.Run(e.Now() + Time(1)<<21)
	return trace, e.Pending()
}

// FuzzScheduler feeds the same op script to both schedulers and requires
// identical dispatch traces, with the heap as the oracle.
func FuzzScheduler(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 20, 0, 3, 200})
	f.Add([]byte{0, 255, 40, 0, 1, 0, 3, 9, 0, 3, 3, 1, 0, 2, 0, 77, 3, 255})
	f.Add([]byte{0, 1, 0, 0, 1, 0, 0, 1, 0, 2, 0, 0, 3, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		wt, wp := runScript(SchedWheel, data)
		ht, hp := runScript(SchedHeap, data)
		if len(wt) != len(ht) || wp != hp {
			t.Fatalf("wheel fired %d (pending %d), heap fired %d (pending %d)",
				len(wt), wp, len(ht), hp)
		}
		for i := range wt {
			if wt[i] != ht[i] {
				t.Fatalf("dispatch %d diverged: wheel %+v, heap %+v", i, wt[i], ht[i])
			}
		}
	})
}

// TestEngineDefaultIsWheel pins the default scheduler choice.
func TestEngineDefaultIsWheel(t *testing.T) {
	if _, ok := NewEngine(1).sched.(*wheel); !ok {
		t.Error("NewEngine should default to the timing wheel")
	}
}

// TestNewEngineSchedUnknownPanics pins the constructor's validation.
func TestNewEngineSchedUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown scheduler kind should panic")
		}
	}()
	NewEngineSched(1, "bogus")
}

// TestSchedulerEquivalenceLongHaul exercises repeated cascades: sparse
// timers marching across many wheel slots and levels over a long horizon.
func TestSchedulerEquivalenceLongHaul(t *testing.T) {
	for _, kind := range schedKinds {
		e := NewEngineSched(9, kind)
		var fired []Time
		var tick func()
		tick = func() {
			fired = append(fired, e.Now())
			if len(fired) < 500 {
				// Strides chosen to straddle slot and level boundaries.
				e.After(time.Duration(63+len(fired)*641), tick)
			}
		}
		e.At(0, tick)
		e.Run(Time(1) << 40)
		if len(fired) != 500 {
			t.Fatalf("%s: fired %d, want 500", kind, len(fired))
		}
	}
}
