package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineThroughput measures raw event dispatch rate — the
// simulator's fundamental cost unit.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine(1)
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			e.After(time.Nanosecond, step)
		}
	}
	b.ResetTimer()
	e.At(0, step)
	e.Run(Time(1) << 60)
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineFanOut measures heap behaviour with many pending events.
func BenchmarkEngineFanOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := NewEngine(1)
		b.StartTimer()
		for j := 0; j < 4096; j++ {
			d := time.Duration(e.Rand().Intn(100000)) * time.Nanosecond
			e.After(d, func() {})
		}
		e.Run(Time(1) << 40)
	}
}

// BenchmarkTimerStop measures cancel cost (RTO timers churn constantly).
func BenchmarkTimerStop(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := e.At(Time(i+1)<<20, func() {})
		t.Stop()
	}
}

// BenchmarkTimerReset measures the in-place heap.Fix reschedule — the RTO
// re-arm fast path. Zero allocations expected.
func BenchmarkTimerReset(b *testing.B) {
	e := NewEngine(1)
	// A little background population so heap.Fix does real sift work.
	for i := 0; i < 63; i++ {
		e.At(Time(i+1)<<30, func() {})
	}
	t := e.At(1<<29, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(Time(1<<29 + i%1024))
	}
}

// BenchmarkScheduleFirePooled measures the steady-state schedule+dispatch
// cycle with the event free list warm. Zero allocations expected.
func BenchmarkScheduleFirePooled(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(time.Nanosecond, fn)
	}
	e.Run(e.Now() + 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Nanosecond, fn)
		e.Run(e.Now() + 100)
	}
}
