package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineThroughput measures raw event dispatch rate — the
// simulator's fundamental cost unit.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine(1)
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			e.After(time.Nanosecond, step)
		}
	}
	b.ResetTimer()
	e.At(0, step)
	e.Run(Time(1) << 60)
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineFanOut measures heap behaviour with many pending events.
func BenchmarkEngineFanOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := NewEngine(1)
		b.StartTimer()
		for j := 0; j < 4096; j++ {
			d := time.Duration(e.Rand().Intn(100000)) * time.Nanosecond
			e.After(d, func() {})
		}
		e.Run(Time(1) << 40)
	}
}

// BenchmarkTimerStop measures cancel cost (RTO timers churn constantly).
func BenchmarkTimerStop(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		t := e.At(Time(i+1)<<20, func() {})
		t.Stop()
	}
}
