// Package sim implements the discrete-event simulation engine at the heart
// of hostsim.
//
// The engine owns a virtual clock (nanosecond resolution), a pluggable
// event scheduler, and a seeded random source. Everything in a simulation
// — packet arrivals, CPU work completions, timers — is an event. The
// engine is strictly single-threaded and deterministic: events at the same
// timestamp fire in scheduling order, and all randomness flows from the
// engine's seed.
//
// Two scheduler implementations exist behind one contract (dispatch in
// (time, scheduling-sequence) order):
//
//   - SchedWheel (the default): a hierarchical timing wheel with an
//     overflow ladder — amortized O(1) schedule/cancel/expire, same-tick
//     events dispatched as a seq-sorted batch. See wheel.go.
//   - SchedHeap: the classic binary heap, O(log n) per operation. Kept as
//     the differential-testing reference; see heapq.go.
//
// The scheduling fast path is allocation-free in steady state: fired and
// stopped events return to a per-engine free list, Timer.Reset reschedules
// a pending timer in place, and the AtArg/AfterArg variants carry a
// pointer argument into the callback so call sites need no capturing
// closure.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// run.
type Time int64

// maxTime is the horizon used when no bound applies (Step).
const maxTime = Time(1<<63 - 1)

// Duration converts t to a time.Duration from the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns t advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

func (t Time) String() string { return time.Duration(t).String() }

// Scheduler kinds accepted by NewEngineSched.
const (
	SchedWheel = "wheel" // hierarchical timing wheel + overflow ladder (default)
	SchedHeap  = "heap"  // binary heap (reference implementation)
)

// location says where a pending event currently lives. Values 0 through
// numLevels-1 are wheel levels; the named values cover everything else.
type location int8

const (
	locNone     location = -1            // not pending: fired, stopped, or never scheduled
	locOverflow location = numLevels     // wheel overflow ladder
	locBatch    location = numLevels + 1 // wheel same-tick dispatch batch
	locHeap     location = numLevels + 2 // binary-heap queue
)

// An event is a callback scheduled at a time. seq breaks timestamp ties in
// FIFO order so the simulation is deterministic; it also doubles as the
// generation guard that keeps stale Timer handles from touching a pooled
// event after it has been recycled for a new schedule.
//
// An event carries either fn (niladic) or fnA+arg (one-argument): the
// argument form lets hot paths schedule a prebound function with a pointer
// payload instead of allocating a capturing closure per event.
type event struct {
	at  Time
	seq uint64
	fn  func()
	fnA func(any)
	arg any
	loc location // where the event lives; locNone once popped or cancelled
	idx int32    // index within its container (heap, bucket, batch, or overflow)
}

// scheduler is the pending-event store. Both implementations dispatch in
// strictly ascending (at, seq) order; the engine owns now, seq assignment
// and the free list.
type scheduler interface {
	schedule(*event)   // insert a pending event (at, seq set)
	unschedule(*event) // remove a pending event (Stop, Reset)
	// popBefore removes and returns the earliest pending event by
	// (at, seq), or nil if the queue is empty or the earliest event is at
	// or past limit. The wheel implementation relies on limit for
	// correctness: it never advances its internal clock floor past a
	// returned limit, which keeps every future schedule (at >= now) ahead
	// of the floor. Consequently Run horizons must not move backward
	// across calls; hostsim's warmup-then-measure horizons are monotone.
	popBefore(limit Time) *event
	len() int
}

// Timer is a handle to a scheduled event that may be cancelled or
// rescheduled before it fires. Timers are small values: store and copy
// them freely. The zero Timer is valid and never pending.
type Timer struct {
	e   *event
	eng *Engine
	seq uint64 // must match e.seq, else e was recycled for another schedule
}

// valid reports whether the handle still refers to its own live event
// (pending in the queue, not fired, not recycled).
func (t *Timer) valid() bool {
	return t != nil && t.e != nil && t.e.seq == t.seq && t.e.loc != locNone
}

// Stop cancels the timer. It reports whether the timer was pending (false
// if it already fired, was stopped, or is the zero Timer). The handle
// drops its event reference either way, so a stopped-then-pooled event can
// never be resurrected through a stale handle.
func (t *Timer) Stop() bool {
	if t == nil {
		return false
	}
	if !t.valid() {
		t.e = nil
		return false
	}
	t.eng.sched.unschedule(t.e)
	t.eng.release(t.e)
	t.e = nil
	return true
}

// Pending reports whether the timer is still scheduled.
func (t *Timer) Pending() bool { return t.valid() }

// When returns the time the timer is scheduled to fire, or 0 if it is not
// pending.
func (t *Timer) When() Time {
	if !t.valid() {
		return 0
	}
	return t.e.at
}

// Reset reschedules a pending timer to fire at absolute time at, keeping
// its callback. The event is re-placed without allocation. Like a fresh
// schedule, the reset timer moves to the back of the FIFO tie-break order
// at its new timestamp. Reset reports whether the timer was pending; a
// fired or stopped timer cannot be revived — schedule a new one instead.
func (t *Timer) Reset(at Time) bool {
	if !t.valid() {
		return false
	}
	eng := t.eng
	if at < eng.now {
		panic(fmt.Sprintf("sim: resetting timer to %v before now %v", at, eng.now))
	}
	ev := t.e
	eng.sched.unschedule(ev)
	ev.at = at
	ev.seq = eng.seq
	eng.seq++
	t.seq = ev.seq
	eng.sched.schedule(ev)
	return true
}

// Engine drives a simulation run.
type Engine struct {
	now    Time
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool
	sched  scheduler
	free   []*event // recycled event structs (steady-state scheduling is allocation-free)
}

// NewEngine returns an engine whose random source is seeded with seed,
// using the default wheel scheduler.
func NewEngine(seed int64) *Engine { return NewEngineSched(seed, SchedWheel) }

// NewEngineSched returns an engine using the named scheduler kind
// (SchedWheel or SchedHeap). The two kinds dispatch any workload in an
// identical order; heap is retained as the differential-testing reference.
// Unknown kinds panic.
func NewEngineSched(seed int64, kind string) *Engine {
	e := &Engine{rng: rand.New(rand.NewSource(seed))}
	switch kind {
	case SchedWheel:
		e.sched = newWheel()
	case SchedHeap:
		e.sched = &heapSched{}
	default:
		panic(fmt.Sprintf("sim: unknown scheduler kind %q", kind))
	}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.sched.len() }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// alloc takes an event from the free list, or heap-allocates one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		return ev
	}
	return &event{loc: locNone}
}

// release returns a fired or cancelled event to the free list. The seq it
// carries stays in place until the struct is reused, so stale Timer
// handles see locNone (not pending) now and a mismatched seq later.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.fnA = nil
	ev.arg = nil
	ev.loc = locNone
	e.free = append(e.free, ev)
}

func (e *Engine) scheduleAt(t Time, fn func(), fnA func(any), arg any) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.fnA = fnA
	ev.arg = arg
	e.seq++
	e.sched.schedule(ev)
	return Timer{e: ev, eng: e, seq: ev.seq}
}

// At schedules fn at absolute time t and returns a cancellable Timer.
// Scheduling in the past panics: it always indicates a logic error.
func (e *Engine) At(t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	return e.scheduleAt(t, fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute time t. It is At for hot paths: the
// callback is typically a prebound method value stored once per object, so
// scheduling allocates nothing (a pointer-shaped arg boxes for free).
func (e *Engine) AtArg(t Time, fn func(any), arg any) Timer {
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	return e.scheduleAt(t, nil, fn, arg)
}

// After schedules fn after delay d.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// AfterArg schedules fn(arg) after delay d.
func (e *Engine) AfterArg(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return e.AtArg(e.now.Add(d), fn, arg)
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the queue empties, the horizon passes, or
// Halt is called. It returns the time of the last executed event (or the
// horizon, whichever is smaller once the horizon is hit).
//
// The horizon is exclusive: an event scheduled exactly at the horizon does
// not run, so a run to horizon H observes the half-open interval [0, H).
func (e *Engine) Run(horizon Time) Time {
	e.halted = false
	for e.sched.len() > 0 && !e.halted {
		ev := e.sched.popBefore(horizon)
		if ev == nil {
			e.now = horizon
			return e.now
		}
		e.dispatch(ev)
	}
	if e.now < horizon && e.sched.len() == 0 {
		// Queue drained before the horizon: time still advances to it so
		// rate metrics divide by the full window.
		e.now = horizon
	}
	return e.now
}

// Step executes the single next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	ev := e.sched.popBefore(maxTime)
	if ev == nil {
		return false
	}
	e.dispatch(ev)
	return true
}

// dispatch advances the clock to ev, recycles the record, and runs the
// callback. The callback fields are read out first: the event struct may
// be reused for a schedule performed inside the callback itself.
func (e *Engine) dispatch(ev *event) {
	e.now = ev.at
	e.fired++
	fn, fnA, arg := ev.fn, ev.fnA, ev.arg
	e.release(ev)
	if fnA != nil {
		fnA(arg)
	} else {
		fn()
	}
}
