// Package sim implements the discrete-event simulation engine at the heart
// of hostsim.
//
// The engine owns a virtual clock (nanosecond resolution), a binary-heap
// event queue, and a seeded random source. Everything in a simulation —
// packet arrivals, CPU work completions, timers — is an event. The engine
// is strictly single-threaded and deterministic: events at the same
// timestamp fire in scheduling order, and all randomness flows from the
// engine's seed.
//
// The scheduling fast path is allocation-free in steady state: fired and
// stopped events return to a per-engine free list, and Timer.Reset
// reschedules a pending timer in place via heap.Fix instead of a
// remove-allocate-push cycle.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// run.
type Time int64

// Duration converts t to a time.Duration from the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns t advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

func (t Time) String() string { return time.Duration(t).String() }

// An event is a callback scheduled at a time. seq breaks timestamp ties in
// FIFO order so the simulation is deterministic; it also doubles as the
// generation guard that keeps stale Timer handles from touching a pooled
// event after it has been recycled for a new schedule.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

// Timer is a handle to a scheduled event that may be cancelled or
// rescheduled before it fires. Timers are small values: store and copy
// them freely. The zero Timer is valid and never pending.
type Timer struct {
	e   *event
	eng *Engine
	seq uint64 // must match e.seq, else e was recycled for another schedule
}

// valid reports whether the handle still refers to its own live event
// (pending in the queue, not fired, not recycled).
func (t *Timer) valid() bool {
	return t != nil && t.e != nil && t.e.seq == t.seq && t.e.index >= 0
}

// Stop cancels the timer. It reports whether the timer was pending (false
// if it already fired, was stopped, or is the zero Timer). The handle
// drops its event reference either way, so a stopped-then-pooled event can
// never be resurrected through a stale handle.
func (t *Timer) Stop() bool {
	if t == nil {
		return false
	}
	if !t.valid() {
		t.e = nil
		return false
	}
	heap.Remove(&t.eng.q, t.e.index)
	t.eng.release(t.e)
	t.e = nil
	return true
}

// Pending reports whether the timer is still scheduled.
func (t *Timer) Pending() bool { return t.valid() }

// When returns the time the timer is scheduled to fire, or 0 if it is not
// pending.
func (t *Timer) When() Time {
	if !t.valid() {
		return 0
	}
	return t.e.at
}

// Reset reschedules a pending timer to fire at absolute time at, keeping
// its callback. The event is moved in place with heap.Fix — no allocation,
// no queue churn. Like a fresh schedule, the reset timer moves to the back
// of the FIFO tie-break order at its new timestamp. Reset reports whether
// the timer was pending; a fired or stopped timer cannot be revived —
// schedule a new one instead.
func (t *Timer) Reset(at Time) bool {
	if !t.valid() {
		return false
	}
	eng := t.eng
	if at < eng.now {
		panic(fmt.Sprintf("sim: resetting timer to %v before now %v", at, eng.now))
	}
	ev := t.e
	ev.at = at
	ev.seq = eng.seq
	eng.seq++
	t.seq = ev.seq
	heap.Fix(&eng.q, ev.index)
	return true
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine drives a simulation run.
type Engine struct {
	now    Time
	q      eventQueue
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool
	free   []*event // recycled event structs (steady-state scheduling is allocation-free)
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.q) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// alloc takes an event from the free list, or heap-allocates one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// release returns a fired or cancelled event to the free list. The seq it
// carries stays in place until the struct is reused, so stale Timer
// handles see index == -1 (not pending) now and a mismatched seq later.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// At schedules fn at absolute time t and returns a cancellable Timer.
// Scheduling in the past panics: it always indicates a logic error.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	heap.Push(&e.q, ev)
	return Timer{e: ev, eng: e, seq: ev.seq}
}

// After schedules fn after delay d.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the queue empties, the horizon passes, or
// Halt is called. It returns the time of the last executed event (or the
// horizon, whichever is smaller once the horizon is hit).
//
// The horizon is exclusive: an event scheduled exactly at the horizon does
// not run, so a run to horizon H observes the half-open interval [0, H).
func (e *Engine) Run(horizon Time) Time {
	e.halted = false
	for len(e.q) > 0 && !e.halted {
		next := e.q[0]
		if next.at >= horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.q)
		e.now = next.at
		e.fired++
		fn := next.fn
		e.release(next)
		fn()
	}
	if e.now < horizon && len(e.q) == 0 {
		// Queue drained before the horizon: time still advances to it so
		// rate metrics divide by the full window.
		e.now = horizon
	}
	return e.now
}

// Step executes the single next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.q) == 0 {
		return false
	}
	next := heap.Pop(&e.q).(*event)
	e.now = next.at
	e.fired++
	fn := next.fn
	e.release(next)
	fn()
	return true
}
