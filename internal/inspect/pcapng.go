package inspect

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
)

// pcapng block and option constants (pcapng spec, little-endian encoding).
const (
	blockSHB = 0x0A0D0D0A
	blockIDB = 0x00000001
	blockEPB = 0x00000006

	byteOrderMagic = 0x1A2B3C4D
	linkEthernet   = 1

	optEnd       = 0
	optIfName    = 2
	optIfTsresol = 9
)

// Synthesized wire addressing: the two simulated hosts sit on a
// point-to-point 10.0.0.0/24 with fixed MACs, and each connection gets a
// stable ephemeral/server port pair so Wireshark's "Follow TCP Stream"
// groups both directions of a flow pair correctly.
const (
	headerBytes = 66 // 14 Ethernet + 20 IPv4 + 32 TCP (data offset 8)

	hostAIP = 0x0A000001 // 10.0.0.1 (first host: the sender)
	hostBIP = 0x0A000002 // 10.0.0.2 (second host: the receiver)

	basePortA = 40000 // host A's per-connection ephemeral port base
	basePortB = 5000  // host B's per-connection server port base
)

var (
	macA = [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	macB = [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
)

// TCP flag bits as they appear in the synthesized headers.
const (
	FlagFIN = 0x01
	FlagSYN = 0x02
	FlagRST = 0x04
	FlagPSH = 0x08
	FlagACK = 0x10
	FlagECE = 0x40
)

// WritePcap merges the given captures into one pcapng section: one
// interface description per capture, packets interleaved in timestamp
// order (ties resolved by capture index, then capture order, so output is
// deterministic). Timestamps are nanoseconds since simulation start.
func WritePcap(w io.Writer, caps ...*Capture) error {
	if len(caps) == 0 {
		return errors.New("inspect: WritePcap needs at least one capture")
	}
	bw := bufio.NewWriter(w)
	writeBlock(bw, blockSHB, shbBody())
	for _, c := range caps {
		writeBlock(bw, blockIDB, idbBody(c.name, c.snap))
	}
	idx := make([]int, len(caps))
	scratch := make([]byte, 0, 256)
	for {
		best := -1
		for i, c := range caps {
			if idx[i] >= len(c.recs) {
				continue
			}
			if best < 0 || c.recs[idx[i]].At < caps[best].recs[idx[best]].At {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := caps[best]
		rec := c.recs[idx[best]]
		// The IP identification field is a per-interface packet counter
		// (mod 2^16), handy for spotting capture gaps in Wireshark.
		pkt, origLen := synthPacket(rec, c.dir, uint16(idx[best]), c.snap, scratch)
		writeBlock(bw, blockEPB, epbBody(best, rec, pkt, origLen))
		idx[best]++
	}
	return bw.Flush()
}

func shbBody() []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint32(b[0:], byteOrderMagic)
	binary.LittleEndian.PutUint16(b[4:], 1) // major version
	binary.LittleEndian.PutUint16(b[6:], 0) // minor version
	binary.LittleEndian.PutUint64(b[8:], ^uint64(0))
	return b
}

func idbBody(name string, snap int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint16(b[0:], linkEthernet)
	binary.LittleEndian.PutUint32(b[4:], uint32(snap))
	b = appendOption(b, optIfName, []byte(name))
	b = appendOption(b, optIfTsresol, []byte{9}) // 10^-9: nanosecond stamps
	b = appendOption(b, optEnd, nil)
	return b
}

func epbBody(ifc int, rec PacketRecord, pkt []byte, origLen int) []byte {
	b := make([]byte, 20, 20+len(pkt)+3)
	ts := uint64(rec.At)
	binary.LittleEndian.PutUint32(b[0:], uint32(ifc))
	binary.LittleEndian.PutUint32(b[4:], uint32(ts>>32))
	binary.LittleEndian.PutUint32(b[8:], uint32(ts))
	binary.LittleEndian.PutUint32(b[12:], uint32(len(pkt)))
	binary.LittleEndian.PutUint32(b[16:], uint32(origLen))
	b = append(b, pkt...)
	for len(b)%4 != 0 {
		b = append(b, 0)
	}
	return b
}

func appendOption(b []byte, code uint16, val []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], code)
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(val)))
	b = append(b, hdr[:]...)
	b = append(b, val...)
	for len(b)%4 != 0 {
		b = append(b, 0)
	}
	return b
}

func writeBlock(bw *bufio.Writer, btype uint32, body []byte) {
	total := uint32(12 + len(body)) // body is already padded to 4 bytes
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], btype)
	bw.Write(u[:])
	binary.LittleEndian.PutUint32(u[:], total)
	bw.Write(u[:])
	bw.Write(body)
	bw.Write(u[:]) // trailing total length
}

// connOf maps a flow id to its connection number: core.OpenConn allocates
// the data flow (odd) then its ACK flow (even), both starting at 1.
func connOf(flow int32) int32 { return (flow + 1) / 2 }

// synthPacket builds the captured bytes of one frame: a fully-formed
// 66-byte Ethernet/IPv4/TCP header (real checksums) followed by zeroed
// payload, truncated to snap. It returns the captured slice (backed by
// scratch) and the original wire length.
func synthPacket(rec PacketRecord, dir int, ipid uint16, snap int, scratch []byte) ([]byte, int) {
	srcMAC, dstMAC := macA, macB
	srcIP, dstIP := uint32(hostAIP), uint32(hostBIP)
	conn := connOf(rec.Flow)
	srcPort := uint16(basePortA + conn)
	dstPort := uint16(basePortB + conn)
	if dir == 1 {
		srcMAC, dstMAC = dstMAC, srcMAC
		srcIP, dstIP = dstIP, srcIP
		srcPort, dstPort = dstPort, srcPort
	}

	var hdr [headerBytes]byte
	// Ethernet.
	copy(hdr[0:6], dstMAC[:])
	copy(hdr[6:12], srcMAC[:])
	binary.BigEndian.PutUint16(hdr[12:], 0x0800)

	// IPv4: 20-byte header, DF, TTL 64, proto TCP. The ECN codepoint
	// mirrors the simulated marking: data packets are ECT(0), switch-marked
	// ones CE; pure ACKs are Not-ECT (like Linux's default behaviour).
	payload := int(rec.Len)
	hdr[14] = 0x45
	if !rec.Ack && rec.Len > 0 {
		if rec.CE {
			hdr[15] = 0x03 // CE
		} else {
			hdr[15] = 0x02 // ECT(0)
		}
	}
	binary.BigEndian.PutUint16(hdr[16:], uint16(20+32+payload))
	binary.BigEndian.PutUint16(hdr[18:], ipid)
	binary.BigEndian.PutUint16(hdr[20:], 0x4000) // DF
	hdr[22] = 64
	hdr[23] = 6
	binary.BigEndian.PutUint32(hdr[26:], srcIP)
	binary.BigEndian.PutUint32(hdr[30:], dstIP)
	binary.BigEndian.PutUint16(hdr[24:], ipChecksum(hdr[14:34]))

	// TCP: data offset 8 (32 bytes: 20 fixed + 12 of options).
	binary.BigEndian.PutUint16(hdr[34:], srcPort)
	binary.BigEndian.PutUint16(hdr[36:], dstPort)
	binary.BigEndian.PutUint32(hdr[38:], uint32(rec.Seq))
	hdr[46] = 0x80
	flags := byte(FlagACK)
	var window uint16
	if rec.Ack {
		binary.BigEndian.PutUint32(hdr[42:], uint32(rec.Cum))
		if rec.ECNEcho {
			flags |= FlagECE
		}
		// Advertised window scaled down by an implicit wscale of 6.
		w := rec.Window >> 6
		if w > 0xFFFF {
			w = 0xFFFF
		}
		window = uint16(w)
	} else if rec.Len > 0 {
		flags |= FlagPSH
		window = 0xFFFF
	} else {
		window = 0xFFFF // zero-length window probe: a bare ACK
	}
	hdr[47] = flags
	binary.BigEndian.PutUint16(hdr[48:], window)

	// Options (12 bytes): NOP NOP + one SACK range when the ACK carries
	// SACK state, otherwise NOP NOP + a timestamp option (tsval in µs).
	hdr[54] = 1
	hdr[55] = 1
	if rec.Ack && len(rec.SACK) > 0 {
		hdr[56] = 5 // SACK
		hdr[57] = 10
		binary.BigEndian.PutUint32(hdr[58:], uint32(rec.SACK[0].Start))
		binary.BigEndian.PutUint32(hdr[62:], uint32(rec.SACK[0].End))
	} else {
		hdr[56] = 8 // timestamps
		hdr[57] = 10
		binary.BigEndian.PutUint32(hdr[58:], uint32(uint64(rec.At)/1000))
		binary.BigEndian.PutUint32(hdr[62:], 0)
	}
	binary.BigEndian.PutUint16(hdr[50:], tcpChecksum(hdr[34:66], srcIP, dstIP, 32+payload))

	origLen := headerBytes + payload
	capLen := origLen
	if capLen > snap {
		capLen = snap
	}
	out := append(scratch[:0], hdr[:]...)
	if capLen <= headerBytes {
		return out[:capLen], origLen
	}
	for len(out) < capLen {
		out = append(out, 0) // simulated payload bytes are all zero
	}
	return out, origLen
}

// ipChecksum is the RFC 791 header checksum over a header whose checksum
// field is zero.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // the checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// tcpChecksum covers the pseudo-header, the 32-byte TCP header (checksum
// field zero) and the payload; simulated payload is all zeros, so only its
// length matters (via the pseudo-header).
func tcpChecksum(tcp []byte, srcIP, dstIP uint32, tcpLen int) uint16 {
	var sum uint32
	sum += srcIP>>16 + srcIP&0xFFFF
	sum += dstIP>>16 + dstIP&0xFFFF
	sum += 6 // protocol
	sum += uint32(tcpLen)
	for i := 0; i+1 < len(tcp); i += 2 {
		if i == 16 {
			continue // the checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(tcp[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
