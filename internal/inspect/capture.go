package inspect

import (
	"io"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
)

// PacketRecord is one captured frame's metadata, copied out of the
// *skb.Frame at tap time: frames are pool-recycled after delivery, so
// nothing here aliases the original.
type PacketRecord struct {
	At      sim.Time
	Flow    int32
	Seq     int64
	Len     int64 // payload bytes (0 for pure ACKs and window probes)
	Ack     bool  // pure ACK: Cum/Window/SACK/ECNEcho are valid
	Cum     int64
	Window  int64
	SACK    []skb.Range
	ECNEcho bool
	CE      bool // ECN congestion-experienced mark (set by the switch)
	Dropped bool // lost at the switch right after capture
}

// Capture is the packet tap of one link direction: it records every frame
// the wire accepts (including ones the switch then drops, exactly like a
// capture at the sender's NIC egress) up to a bound.
type Capture struct {
	eng  *sim.Engine
	name string
	dir  int // 0: first host -> second host, 1: the reverse
	snap int
	max  int

	truncated int64
	recs      []PacketRecord
}

// NewCapture builds a capture for one link direction. name labels the
// pcapng interface (e.g. "sender->receiver"); dir 0 addresses frames from
// host 10.0.0.1 to 10.0.0.2 and dir 1 the reverse. snapLen and maxPackets
// of 0 take the package defaults.
func NewCapture(eng *sim.Engine, name string, dir, snapLen, maxPackets int) *Capture {
	if eng == nil {
		panic("inspect: nil engine")
	}
	if dir != 0 && dir != 1 {
		panic("inspect: capture direction must be 0 or 1")
	}
	if snapLen <= 0 {
		snapLen = DefaultSnapLen
	}
	if maxPackets <= 0 {
		maxPackets = DefaultMaxPackets
	}
	return &Capture{eng: eng, name: name, dir: dir, snap: snapLen, max: maxPackets}
}

// Tap returns the wire.Link tap callback feeding this capture. The
// callback copies frame metadata (including the SACK ranges, which the
// receiver will recycle) and never mutates the frame.
func (c *Capture) Tap() func(f *skb.Frame, dropped bool) {
	return func(f *skb.Frame, dropped bool) {
		if len(c.recs) >= c.max {
			c.truncated++
			return
		}
		rec := PacketRecord{
			At: c.eng.Now(), Flow: int32(f.Flow), Seq: f.Seq, Len: int64(f.Len),
			CE: f.CE, Dropped: dropped,
		}
		if f.Ack != nil {
			rec.Ack = true
			rec.Cum = f.Ack.Cum
			rec.Window = int64(f.Ack.Window)
			rec.ECNEcho = f.Ack.ECNEcho
			if len(f.Ack.SACK) > 0 {
				rec.SACK = append([]skb.Range(nil), f.Ack.SACK...)
			}
		}
		c.recs = append(c.recs, rec)
	}
}

// Name returns the capture's interface label.
func (c *Capture) Name() string { return c.name }

// Dir returns the capture's link direction (0 or 1).
func (c *Capture) Dir() int { return c.dir }

// SnapLen returns the per-packet captured-bytes bound.
func (c *Capture) SnapLen() int { return c.snap }

// Packets returns the number of recorded frames.
func (c *Capture) Packets() int { return len(c.recs) }

// Truncated returns how many frames arrived after the capture filled up.
func (c *Capture) Truncated() int64 { return c.truncated }

// Records returns the recorded frames in capture order. The slice is the
// capture's own backing store: treat it as read-only.
func (c *Capture) Records() []PacketRecord { return c.recs }

// WritePcap writes this direction alone as a single-interface pcapng.
// Use the package-level WritePcap to merge both directions into one file.
func (c *Capture) WritePcap(w io.Writer) error { return WritePcap(w, c) }
