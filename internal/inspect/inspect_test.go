package inspect

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/tcp"
	"hostsim/internal/units"
)

// feed pushes a frame through a capture's tap at the engine's current time.
func feed(t *testing.T, eng *sim.Engine, c *Capture, at sim.Time, f *skb.Frame, dropped bool) {
	t.Helper()
	eng.At(at, func() { c.Tap()(f, dropped) })
}

func TestPcapRoundTrip(t *testing.T) {
	eng := sim.NewEngine(1)
	ab := NewCapture(eng, "a->b", 0, 0, 0)
	ba := NewCapture(eng, "b->a", 1, 0, 0)

	data := &skb.Frame{Flow: 1, Seq: 4096, Len: 65536, CE: true}
	feed(t, eng, ab, 10, data, false)
	lost := &skb.Frame{Flow: 1, Seq: 69632, Len: 1000}
	feed(t, eng, ab, 20, lost, true)
	ack := &skb.Frame{Flow: 1, Ack: &skb.AckInfo{
		Cum: 69632, Window: 1 << 20, ECNEcho: true,
		SACK: []skb.Range{{Start: 131072, End: 196608}},
	}}
	feed(t, eng, ba, 15, ack, false)
	eng.Run(100)

	// The SACK slice must have been copied, not aliased.
	ack.Ack.SACK[0].Start = 7
	if got := ba.Records()[0].SACK[0].Start; got != 131072 {
		t.Fatalf("capture aliased the frame's SACK slice: %d", got)
	}

	var buf bytes.Buffer
	if err := WritePcap(&buf, ab, ba); err != nil {
		t.Fatal(err)
	}
	f, err := ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Interfaces) != 2 || len(f.Packets) != 3 {
		t.Fatalf("got %d interfaces, %d packets", len(f.Interfaces), len(f.Packets))
	}
	if f.Interfaces[0].Name != "a->b" || f.Interfaces[0].TsUnitNs != 1 {
		t.Fatalf("bad interface 0: %+v", f.Interfaces[0])
	}

	// Merge order: t=10 (a->b), t=15 (b->a), t=20 (a->b).
	wantIface := []int{0, 1, 0}
	wantAt := []sim.Time{10, 15, 20}
	for i, p := range f.Packets {
		if p.Interface != wantIface[i] || p.At != wantAt[i] {
			t.Fatalf("packet %d: interface %d at %d, want %d at %d",
				i, p.Interface, p.At, wantIface[i], wantAt[i])
		}
		if !p.Decoded {
			t.Fatalf("packet %d not decoded", i)
		}
	}

	d := f.Packets[0]
	if d.Seq != 4096 || d.PayloadLen != 65536 || !d.CE || d.Flags&FlagPSH == 0 {
		t.Fatalf("data packet decoded wrong: %+v", d)
	}
	if d.SrcIP != 0x0A000001 || d.DstIP != 0x0A000002 || d.SrcPort != 40001 || d.DstPort != 5001 {
		t.Fatalf("data packet addressing wrong: %+v", d)
	}
	if d.CapLen != DefaultSnapLen || d.OrigLen != 65536+66 {
		t.Fatalf("data packet lengths wrong: cap %d orig %d", d.CapLen, d.OrigLen)
	}

	a := f.Packets[1]
	if a.AckNum != 69632 || a.Flags&FlagECE == 0 || a.PayloadLen != 0 {
		t.Fatalf("ack packet decoded wrong: %+v", a)
	}
	if a.SrcIP != 0x0A000002 || a.SrcPort != 5001 || a.DstPort != 40001 {
		t.Fatalf("ack packet addressing wrong: %+v", a)
	}
	if len(a.SACK) != 1 || a.SACK[0].Start != 131072 || a.SACK[0].End != 196608 {
		t.Fatalf("ack packet SACK wrong: %+v", a.SACK)
	}
	if wantWin := uint16((1 << 20) >> 6); a.Window != wantWin {
		t.Fatalf("ack window %d, want %d", a.Window, wantWin)
	}
}

func TestPcapChecksums(t *testing.T) {
	rec := PacketRecord{At: 123456, Flow: 3, Seq: 1 << 31, Len: 9000}
	pkt, origLen := synthPacket(rec, 0, 42, 1<<20, nil)
	if origLen != 9066 || len(pkt) != 9066 {
		t.Fatalf("lengths: cap %d orig %d", len(pkt), origLen)
	}
	// Recomputing either checksum over the synthesized bytes must verify:
	// summing the full header including the stored checksum yields 0xFFFF.
	var ipSum uint32
	for i := 14; i < 34; i += 2 {
		ipSum += uint32(binary.BigEndian.Uint16(pkt[i:]))
	}
	for ipSum>>16 != 0 {
		ipSum = ipSum&0xFFFF + ipSum>>16
	}
	if ipSum != 0xFFFF {
		t.Fatalf("IP checksum does not verify: %04x", ipSum)
	}
	var tcpSum uint32
	src := binary.BigEndian.Uint32(pkt[26:])
	dst := binary.BigEndian.Uint32(pkt[30:])
	tcpSum += src>>16 + src&0xFFFF + dst>>16 + dst&0xFFFF + 6 + uint32(32+rec.Len)
	for i := 34; i+1 < len(pkt); i += 2 {
		tcpSum += uint32(binary.BigEndian.Uint16(pkt[i:]))
	}
	for tcpSum>>16 != 0 {
		tcpSum = tcpSum&0xFFFF + tcpSum>>16
	}
	if tcpSum != 0xFFFF {
		t.Fatalf("TCP checksum does not verify: %04x", tcpSum)
	}
}

func TestCaptureBound(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, "x", 0, 64, 2)
	for i := 0; i < 5; i++ {
		f := &skb.Frame{Flow: 1, Seq: int64(i), Len: 100}
		feed(t, eng, c, sim.Time(i), f, false)
	}
	eng.Run(10)
	if c.Packets() != 2 || c.Truncated() != 3 {
		t.Fatalf("got %d packets, %d truncated", c.Packets(), c.Truncated())
	}
}

func TestReadPcapRejectsCorruption(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, "x", 0, 0, 0)
	feed(t, eng, c, 5, &skb.Frame{Flow: 1, Seq: 0, Len: 10}, false)
	eng.Run(10)
	var buf bytes.Buffer
	if err := WritePcap(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadPcap(bytes.NewReader(good[8:])); err == nil {
		t.Fatal("accepted a file not starting with an SHB")
	}
	bad := append([]byte(nil), good...)
	bad[4]++ // corrupt the SHB's leading block length
	if _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted a mismatched block length")
	}
	if _, err := ReadPcap(bytes.NewReader(good[:len(good)-2])); err == nil {
		t.Fatal("accepted a truncated file")
	}
}

func TestProbeTraceFormats(t *testing.T) {
	tr := NewProbeTrace(0)
	hook := tr.Hook("sender")
	hook(tcp.ProbeEvent{
		At: 1000, Flow: 1, Kind: tcp.ProbeAck, AckedBytes: 1448,
		Cwnd: 28960, Ssthresh: 100000, InFlight: 5792,
		SRTT: 40 * time.Microsecond, SndUna: 1448, SndNxt: 7240,
	})
	hook(tcp.ProbeEvent{At: 2000, Flow: 1, Kind: tcp.ProbeFastRetransmit, Cwnd: units.Bytes(14480)})
	if tr.Len() != 2 {
		t.Fatalf("got %d records", tr.Len())
	}
	var csv bytes.Buffer
	if err := tr.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d CSV lines", len(lines))
	}
	if want := "1000,sender,1,ack,1448,28960,100000,40000,5792,1448,7240"; lines[1] != want {
		t.Fatalf("CSV row %q, want %q", lines[1], want)
	}
	if !strings.Contains(lines[2], "fast-retransmit") {
		t.Fatalf("CSV row %q misses the event name", lines[2])
	}
	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"event":"ack"`) || !strings.Contains(jsonl.String(), `"cwnd_bytes":28960`) {
		t.Fatalf("JSONL output wrong: %s", jsonl.String())
	}
}

func TestProbeTraceBound(t *testing.T) {
	tr := NewProbeTrace(1)
	hook := tr.Hook("h")
	hook(tcp.ProbeEvent{At: 1, Kind: tcp.ProbeAck})
	hook(tcp.ProbeEvent{At: 2, Kind: tcp.ProbeAck})
	if tr.Len() != 1 || tr.Truncated() != 1 {
		t.Fatalf("got %d records, %d truncated", tr.Len(), tr.Truncated())
	}
}
