package inspect

import (
	"hostsim/internal/metrics"
	"hostsim/internal/skb"
	"hostsim/internal/tcp"
	"hostsim/internal/telemetry"
)

// RTTMonitor is an ePPing-style passive per-flow RTT monitor: it derives
// a continuous delay signal from the probe events the connections
// already emit on every processed ACK — no new emit sites in TCP — and
// folds each flow's samples into a log-linear histogram. Registered
// gauges ride the ss-style snapshot sampler, so churn and incast runs
// get front-door latency for free alongside queue depths.
//
// All gauges report nanoseconds (the repo-wide latency unit; see package
// stage): rtt_last_ns, rtt_min_ns, rtt_mean_ns, rtt_p50_ns, rtt_p99_ns
// and rtt_samples.
type RTTMonitor struct {
	flows map[skb.FlowID]*rttFlow
}

// rttFlow is one monitored connection's running RTT state.
type rttFlow struct {
	last int64
	hist *metrics.LogLinear
}

// NewRTTMonitor builds an empty monitor.
func NewRTTMonitor() *RTTMonitor {
	return &RTTMonitor{flows: make(map[skb.FlowID]*rttFlow)}
}

// Watch registers flow's RTT gauges into reg under prefix (ending in
// "/") and returns the tcp.ProbeFunc feeding them. Install the hook with
// Conn.AddProbe so it composes with other probe consumers; like every
// probe, it is a pure observer.
func (m *RTTMonitor) Watch(reg *telemetry.Registry, prefix string, flow skb.FlowID) tcp.ProbeFunc {
	f := &rttFlow{hist: metrics.NewLogLinear()}
	m.flows[flow] = f
	reg.Gauge(prefix+"rtt_last_ns", func() float64 { return float64(f.last) })
	reg.Gauge(prefix+"rtt_min_ns", func() float64 { return float64(f.hist.Min()) })
	reg.Gauge(prefix+"rtt_mean_ns", func() float64 { return float64(f.hist.Mean()) })
	reg.Gauge(prefix+"rtt_p50_ns", func() float64 { return float64(f.hist.Quantile(0.50)) })
	reg.Gauge(prefix+"rtt_p99_ns", func() float64 { return float64(f.hist.Quantile(0.99)) })
	reg.Gauge(prefix+"rtt_samples", func() float64 { return float64(f.hist.Count()) })
	return func(ev tcp.ProbeEvent) {
		// Sample on ACKs that advanced the window: those carry a fresh
		// smoothed-RTT update (retransmitted ranges are excluded from RTT
		// sampling by TCP itself, Karn's rule).
		if ev.Kind != tcp.ProbeAck || ev.AckedBytes == 0 {
			return
		}
		ns := ev.SRTT.Nanoseconds()
		if ns <= 0 {
			return
		}
		f.last = ns
		f.hist.Record(ns)
	}
}

// Samples returns the number of RTT samples folded in for flow (0 when
// the flow is not watched).
func (m *RTTMonitor) Samples(flow skb.FlowID) int64 {
	f := m.flows[flow]
	if f == nil {
		return 0
	}
	return f.hist.Count()
}
