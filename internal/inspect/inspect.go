// Package inspect is the simulator's wire-level observability layer —
// the tooling the paper itself diagnoses the host stack with, rebuilt on
// top of the simulation:
//
//   - a per-link packet-capture tap that serializes simulated frames
//     (Ethernet/IPv4/TCP headers synthesized from segment metadata) into
//     real pcapng files, readable by Wireshark/tshark and round-trippable
//     through the in-repo ReadPcap;
//   - a tcp_probe-style congestion trace: per-connection records of cwnd,
//     ssthresh, srtt and bytes-in-flight on every ACK, plus retransmit /
//     fast-retransmit / RTO / recovery events, exportable as JSONL or CSV;
//   - `ss -i`-style socket and queue snapshots, built on the telemetry
//     registry/sampler machinery (see core.(*Host).RegisterInspect).
//
// Everything here follows the repo's nil-is-free observer convention, and
// every hook is a pure read of simulation state: an inspected run follows
// the exact trajectory of an uninspected one, bit for bit, so the
// conservation-law invariant checker can stay armed while capturing.
package inspect

import "time"

// Defaults for the inspector's bounds and cadences.
const (
	// DefaultSnapLen is the captured-bytes bound per packet: enough for
	// the 66 synthesized header bytes plus a slice of (zero) payload.
	DefaultSnapLen = 128
	// DefaultMaxPackets bounds one direction's capture; packets beyond it
	// are counted as truncated, not recorded.
	DefaultMaxPackets = 1 << 20
	// DefaultMaxProbeEvents bounds the tcp_probe trace.
	DefaultMaxProbeEvents = 1 << 20
	// DefaultSSInterval is the socket-snapshot sampling period.
	DefaultSSInterval = 100 * time.Microsecond
	// DefaultSSMaxSamples is the socket-snapshot ring capacity.
	DefaultSSMaxSamples = 4096
)
