package inspect

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"hostsim/internal/sim"
	"hostsim/internal/tcp"
)

// ProbeRecord is one tcp_probe-style trace record: a per-ACK sample of the
// connection's congestion state, or a loss/recovery event.
type ProbeRecord struct {
	At         sim.Time
	Host       string
	Flow       int32
	Kind       tcp.ProbeKind
	AckedBytes int64
	Cwnd       int64
	Ssthresh   int64
	SRTTNs     int64
	InFlight   int64
	SndUna     int64
	SndNxt     int64
}

// ProbeTrace accumulates tcp_probe records from every hooked connection,
// in event order (the simulation is single-threaded, so this is globally
// time-ordered and deterministic).
type ProbeTrace struct {
	max       int
	truncated int64
	recs      []ProbeRecord
}

// NewProbeTrace builds a trace bounded at maxEvents records (0 takes the
// package default).
func NewProbeTrace(maxEvents int) *ProbeTrace {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxProbeEvents
	}
	return &ProbeTrace{max: maxEvents}
}

// Hook returns the tcp.ProbeFunc to install on a connection of the named
// host. The callback copies the event into the trace and reads nothing
// else — a pure observer.
func (t *ProbeTrace) Hook(host string) tcp.ProbeFunc {
	return func(ev tcp.ProbeEvent) {
		if len(t.recs) >= t.max {
			t.truncated++
			return
		}
		t.recs = append(t.recs, ProbeRecord{
			At: ev.At, Host: host, Flow: int32(ev.Flow), Kind: ev.Kind,
			AckedBytes: int64(ev.AckedBytes),
			Cwnd:       int64(ev.Cwnd),
			Ssthresh:   int64(ev.Ssthresh),
			SRTTNs:     ev.SRTT.Nanoseconds(),
			InFlight:   int64(ev.InFlight),
			SndUna:     ev.SndUna,
			SndNxt:     ev.SndNxt,
		})
	}
}

// Len returns the number of recorded events.
func (t *ProbeTrace) Len() int { return len(t.recs) }

// Truncated returns how many events arrived after the trace filled up.
func (t *ProbeTrace) Truncated() int64 { return t.truncated }

// Records returns the recorded events in emission order. The slice is the
// trace's backing store: treat it as read-only.
func (t *ProbeTrace) Records() []ProbeRecord { return t.recs }

// WriteCSV writes the trace as CSV with a fixed header, one row per
// record, deterministic formatting.
func (t *ProbeTrace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("time_ns,host,flow,event,acked_bytes,cwnd_bytes,ssthresh_bytes,srtt_ns,inflight_bytes,snd_una,snd_nxt\n"); err != nil {
		return err
	}
	for i := range t.recs {
		r := &t.recs[i]
		bw.WriteString(strconv.FormatInt(int64(r.At), 10))
		bw.WriteByte(',')
		bw.WriteString(r.Host)
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(int64(r.Flow), 10))
		bw.WriteByte(',')
		bw.WriteString(r.Kind.String())
		for _, v := range [...]int64{r.AckedBytes, r.Cwnd, r.Ssthresh, r.SRTTNs, r.InFlight, r.SndUna, r.SndNxt} {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatInt(v, 10))
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL writes the trace as one JSON object per line, matching the
// CSV column names.
func (t *ProbeTrace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range t.recs {
		r := &t.recs[i]
		_, err := fmt.Fprintf(bw,
			`{"time_ns":%d,"host":%q,"flow":%d,"event":%q,"acked_bytes":%d,"cwnd_bytes":%d,"ssthresh_bytes":%d,"srtt_ns":%d,"inflight_bytes":%d,"snd_una":%d,"snd_nxt":%d}`+"\n",
			int64(r.At), r.Host, r.Flow, r.Kind.String(), r.AckedBytes, r.Cwnd,
			r.Ssthresh, r.SRTTNs, r.InFlight, r.SndUna, r.SndNxt)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
