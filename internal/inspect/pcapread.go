package inspect

import (
	"encoding/binary"
	"fmt"
	"io"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
)

// File is a parsed pcapng section, as produced by ReadPcap.
type File struct {
	Interfaces []Interface
	Packets    []Packet
}

// Interface is one parsed interface description block.
type Interface struct {
	Name    string
	SnapLen int
	// TsUnitNs is the duration of one timestamp tick in nanoseconds
	// (1 for if_tsresol 9, 1000 for the default microsecond resolution).
	TsUnitNs int64
}

// Packet is one parsed enhanced packet block, with its Ethernet/IPv4/TCP
// headers decoded when the captured bytes allow it.
type Packet struct {
	Interface int
	At        sim.Time // timestamp converted to nanoseconds
	CapLen    int
	OrigLen   int

	// Decoded reports whether the fields below are valid: the capture
	// held a complete Ethernet+IPv4+TCP header.
	Decoded    bool
	SrcIP      uint32
	DstIP      uint32
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	AckNum     uint32
	Flags      byte
	Window     uint16
	CE         bool
	SACK       []skb.Range
	TSVal      uint32
	PayloadLen int // from OrigLen minus decoded header sizes
}

// ReadPcap parses a little-endian pcapng section, validating the framing
// strictly (leading/trailing block lengths, 4-byte padding, SHB first,
// interfaces declared before use). It is the round-trip check for
// WritePcap and the backend of cmd/inspectcheck.
func ReadPcap(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("inspect: reading pcapng: %w", err)
	}
	f := &File{}
	off := 0
	first := true
	for off < len(data) {
		if len(data)-off < 12 {
			return nil, fmt.Errorf("inspect: trailing garbage at offset %d", off)
		}
		btype := binary.LittleEndian.Uint32(data[off:])
		total := int(binary.LittleEndian.Uint32(data[off+4:]))
		if total < 12 || total%4 != 0 || off+total > len(data) {
			return nil, fmt.Errorf("inspect: bad block length %d at offset %d", total, off)
		}
		trailer := int(binary.LittleEndian.Uint32(data[off+total-4:]))
		if trailer != total {
			return nil, fmt.Errorf("inspect: block at offset %d: leading length %d != trailing %d", off, total, trailer)
		}
		body := data[off+8 : off+total-4]
		if first {
			if btype != blockSHB {
				return nil, fmt.Errorf("inspect: file does not start with a section header block (type 0x%08X)", btype)
			}
			first = false
		}
		switch btype {
		case blockSHB:
			if len(body) < 16 {
				return nil, fmt.Errorf("inspect: short section header block")
			}
			magic := binary.LittleEndian.Uint32(body)
			if magic != byteOrderMagic {
				return nil, fmt.Errorf("inspect: unsupported byte-order magic 0x%08X (big-endian?)", magic)
			}
			if major := binary.LittleEndian.Uint16(body[4:]); major != 1 {
				return nil, fmt.Errorf("inspect: unsupported pcapng major version %d", major)
			}
		case blockIDB:
			iface, err := parseIDB(body)
			if err != nil {
				return nil, err
			}
			f.Interfaces = append(f.Interfaces, iface)
		case blockEPB:
			pkt, err := parseEPB(body, f.Interfaces)
			if err != nil {
				return nil, err
			}
			f.Packets = append(f.Packets, pkt)
		default:
			// Unknown block types are skippable by design; framing was
			// already validated above.
		}
		off += total
	}
	if first {
		return nil, fmt.Errorf("inspect: empty pcapng file")
	}
	return f, nil
}

func parseIDB(body []byte) (Interface, error) {
	if len(body) < 8 {
		return Interface{}, fmt.Errorf("inspect: short interface description block")
	}
	if lt := binary.LittleEndian.Uint16(body); lt != linkEthernet {
		return Interface{}, fmt.Errorf("inspect: unsupported link type %d (want Ethernet)", lt)
	}
	iface := Interface{
		SnapLen:  int(binary.LittleEndian.Uint32(body[4:])),
		TsUnitNs: 1000, // pcapng default: microseconds
	}
	opts := body[8:]
	for len(opts) >= 4 {
		code := binary.LittleEndian.Uint16(opts)
		olen := int(binary.LittleEndian.Uint16(opts[2:]))
		if 4+olen > len(opts) {
			return Interface{}, fmt.Errorf("inspect: interface option overruns block")
		}
		val := opts[4 : 4+olen]
		switch code {
		case optEnd:
			return iface, nil
		case optIfName:
			iface.Name = string(val)
		case optIfTsresol:
			if olen != 1 {
				return Interface{}, fmt.Errorf("inspect: bad if_tsresol length %d", olen)
			}
			switch val[0] {
			case 9:
				iface.TsUnitNs = 1
			case 6:
				iface.TsUnitNs = 1000
			default:
				return Interface{}, fmt.Errorf("inspect: unsupported if_tsresol %d", val[0])
			}
		}
		adv := 4 + olen
		for adv%4 != 0 {
			adv++
		}
		opts = opts[adv:]
	}
	return iface, nil
}

func parseEPB(body []byte, ifaces []Interface) (Packet, error) {
	if len(body) < 20 {
		return Packet{}, fmt.Errorf("inspect: short enhanced packet block")
	}
	ifc := int(binary.LittleEndian.Uint32(body))
	if ifc >= len(ifaces) {
		return Packet{}, fmt.Errorf("inspect: packet references undeclared interface %d", ifc)
	}
	ts := uint64(binary.LittleEndian.Uint32(body[4:]))<<32 | uint64(binary.LittleEndian.Uint32(body[8:]))
	capLen := int(binary.LittleEndian.Uint32(body[12:]))
	origLen := int(binary.LittleEndian.Uint32(body[16:]))
	if capLen > origLen {
		return Packet{}, fmt.Errorf("inspect: captured length %d exceeds original %d", capLen, origLen)
	}
	if snap := ifaces[ifc].SnapLen; snap > 0 && capLen > snap {
		return Packet{}, fmt.Errorf("inspect: captured length %d exceeds interface snaplen %d", capLen, snap)
	}
	padded := capLen
	for padded%4 != 0 {
		padded++
	}
	if 20+padded > len(body) {
		return Packet{}, fmt.Errorf("inspect: packet data overruns block")
	}
	pkt := Packet{
		Interface: ifc,
		At:        sim.Time(int64(ts) * ifaces[ifc].TsUnitNs),
		CapLen:    capLen,
		OrigLen:   origLen,
	}
	decodePacket(&pkt, body[20:20+capLen])
	return pkt, nil
}

// decodePacket best-effort decodes Ethernet/IPv4/TCP out of the captured
// bytes; it leaves Decoded false when the capture is too short or not
// IPv4/TCP.
func decodePacket(pkt *Packet, b []byte) {
	if len(b) < 14 || binary.BigEndian.Uint16(b[12:]) != 0x0800 {
		return
	}
	ip := b[14:]
	if len(ip) < 20 || ip[0]>>4 != 4 {
		return
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl < 20 || len(ip) < ihl || ip[9] != 6 {
		return
	}
	pkt.CE = ip[1]&0x03 == 0x03
	pkt.SrcIP = binary.BigEndian.Uint32(ip[12:])
	pkt.DstIP = binary.BigEndian.Uint32(ip[16:])
	tcp := ip[ihl:]
	if len(tcp) < 20 {
		return
	}
	doff := int(tcp[12]>>4) * 4
	if doff < 20 || len(tcp) < doff {
		return
	}
	pkt.SrcPort = binary.BigEndian.Uint16(tcp[0:])
	pkt.DstPort = binary.BigEndian.Uint16(tcp[2:])
	pkt.Seq = binary.BigEndian.Uint32(tcp[4:])
	pkt.AckNum = binary.BigEndian.Uint32(tcp[8:])
	pkt.Flags = tcp[13]
	pkt.Window = binary.BigEndian.Uint16(tcp[14:])
	opts := tcp[20:doff]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // NOP
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				opts = nil
				break
			}
			olen := int(opts[1])
			switch {
			case opts[0] == 8 && olen == 10:
				pkt.TSVal = binary.BigEndian.Uint32(opts[2:])
			case opts[0] == 5 && (olen-2)%8 == 0:
				for i := 2; i+8 <= olen; i += 8 {
					pkt.SACK = append(pkt.SACK, skb.Range{
						Start: int64(binary.BigEndian.Uint32(opts[i:])),
						End:   int64(binary.BigEndian.Uint32(opts[i+4:])),
					})
				}
			}
			opts = opts[olen:]
		}
	}
	pkt.PayloadLen = pkt.OrigLen - 14 - ihl - doff
	pkt.Decoded = true
}

// Validate applies the inspector's own invariants on top of spec
// conformance: at least one interface and packet, every packet decoded,
// and per-interface timestamps nondecreasing (captures record in event
// order).
func (f *File) Validate() error {
	if len(f.Interfaces) == 0 {
		return fmt.Errorf("inspect: no interfaces")
	}
	if len(f.Packets) == 0 {
		return fmt.Errorf("inspect: no packets")
	}
	last := make([]sim.Time, len(f.Interfaces))
	for i := range last {
		last[i] = -1
	}
	for i, p := range f.Packets {
		if !p.Decoded {
			return fmt.Errorf("inspect: packet %d did not decode as Ethernet/IPv4/TCP", i)
		}
		if p.At < last[p.Interface] {
			return fmt.Errorf("inspect: packet %d goes back in time on interface %d", i, p.Interface)
		}
		last[p.Interface] = p.At
	}
	return nil
}
