package mtrace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hostsim/internal/stage"
)

// Band is one percentile band's per-stage latency attribution: the mean
// decomposition of just the messages whose end-to-end latency ranks
// inside the band.
type Band struct {
	Name      string // "p0-p50" … "p999-max"
	Count     int64
	MeanTotal int64               // mean end-to-end ns of the band's messages
	Stages    [NumMsgStages]int64 // mean ns per stage, stage.Message order
}

// bandBounds are the report's percentile cut points.
var bandBounds = []struct {
	name string
	lo   float64
	hi   float64
}{
	{"p0-p50", 0, 0.50},
	{"p50-p90", 0.50, 0.90},
	{"p90-p99", 0.90, 0.99},
	{"p99-p999", 0.99, 0.999},
	{"p999-max", 0.999, 1},
}

// Summary is the tracer's tail-attribution report: overall quantiles
// from the log-linear engine plus the per-band stage decomposition from
// the exact rank-ordered records.
type Summary struct {
	Count     int64 // completed messages (including truncated)
	Dropped   int64
	Truncated int64
	P50       int64 // ns, log-linear quantiles over all completions
	P90       int64
	P99       int64
	P999      int64
	Max       int64
	Bands     []Band
}

// Summary builds the report. Band ranks are exact: the retained records
// are ordered by (total, completion time, flow, id) — a total order, so
// the banding is deterministic — and cut at floor(q*n).
func (t *Tracer) Summary() Summary {
	if t == nil {
		return Summary{}
	}
	s := Summary{
		Count:     t.hist.Count(),
		Dropped:   t.dropped,
		Truncated: t.truncated,
		P50:       t.hist.Quantile(0.50),
		P90:       t.hist.Quantile(0.90),
		P99:       t.hist.Quantile(0.99),
		P999:      t.hist.Quantile(0.999),
		Max:       t.hist.Max(),
	}
	recs := append([]Record(nil), t.recs...)
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Total != b.Total {
			return a.Total < b.Total
		}
		if a.Done != b.Done {
			return a.Done < b.Done
		}
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		return a.ID < b.ID
	})
	n := len(recs)
	for _, bb := range bandBounds {
		lo, hi := int(bb.lo*float64(n)), int(bb.hi*float64(n))
		if bb.hi == 1 {
			hi = n
		}
		b := Band{Name: bb.name, Count: int64(hi - lo)}
		if b.Count > 0 {
			var totalSum int64
			var stageSum [NumMsgStages]int64
			for _, r := range recs[lo:hi] {
				totalSum += r.Total
				for i, v := range r.Stages {
					stageSum[i] += v
				}
			}
			b.MeanTotal = totalSum / b.Count
			for i := range stageSum {
				b.Stages[i] = stageSum[i] / b.Count
			}
		}
		s.Bands = append(s.Bands, b)
	}
	return s
}

// durCell renders a nanosecond value as a wall-time duration.
func durCell(ns int64) string { return time.Duration(ns).String() }

// Format renders the report as an aligned text table, byte-deterministic
// for a given run: a header line, the log-linear quantiles, then one row
// per percentile band with the mean per-stage decomposition of that
// band's messages.
func (s Summary) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "messages %d   dropped %d   truncated %d\n",
		s.Count, s.Dropped, s.Truncated)
	fmt.Fprintf(&sb, "quantiles   p50 %s   p90 %s   p99 %s   p999 %s   max %s\n",
		durCell(s.P50), durCell(s.P90), durCell(s.P99), durCell(s.P999), durCell(s.Max))
	fmt.Fprintf(&sb, "%-10s %9s %12s", "band", "count", "total")
	for i := 0; i < NumMsgStages; i++ {
		fmt.Fprintf(&sb, " %12s", stage.Message[i].String())
	}
	sb.WriteByte('\n')
	for _, b := range s.Bands {
		fmt.Fprintf(&sb, "%-10s %9d %12s", b.Name, b.Count, durCell(b.MeanTotal))
		for _, v := range b.Stages {
			fmt.Fprintf(&sb, " %12s", durCell(v))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
