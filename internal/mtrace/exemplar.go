package mtrace

import (
	"sort"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
)

// Exemplar is one slow message's full span tree: the stage decomposition
// plus every overlapping transmission and loss-recovery event, enough to
// render the message in Perfetto and see exactly why it was slow.
type Exemplar struct {
	Flow    skb.FlowID
	ID      int64
	WriteAt sim.Time
	Done    sim.Time
	Total   int64
	Stages  [NumMsgStages]int64
	Segs    []SegmentSpan
	Events  []Recovery // recovery marks within [WriteAt, Done]
}

// slower orders exemplars by (Total, Done, Flow, ID) — a total order, so
// the slowest-N set is deterministic even under latency ties.
func slower(a, b *Exemplar) bool {
	if a.Total != b.Total {
		return a.Total > b.Total
	}
	if a.Done != b.Done {
		return a.Done > b.Done
	}
	if a.Flow != b.Flow {
		return a.Flow > b.Flow
	}
	return a.ID > b.ID
}

// offerExemplar admits a completed message into the slowest-N min-heap
// (t.exem[0] is the fastest retained exemplar).
func (t *Tracer) offerExemplar(rec Record, m *message, fs *flowState) {
	e := &Exemplar{
		Flow: rec.Flow, ID: rec.ID, WriteAt: m.writeAt, Done: rec.Done,
		Total: rec.Total, Stages: rec.Stages, Segs: m.segs,
	}
	for _, ev := range fs.events {
		if ev.At >= e.WriteAt && ev.At <= e.Done {
			e.Events = append(e.Events, ev)
		}
	}
	if len(t.exem) < t.slowest {
		t.exem = append(t.exem, e)
		for i := len(t.exem) - 1; i > 0; {
			parent := (i - 1) / 2
			if !slower(t.exem[parent], t.exem[i]) {
				break
			}
			t.exem[parent], t.exem[i] = t.exem[i], t.exem[parent]
			i = parent
		}
		return
	}
	if !slower(e, t.exem[0]) {
		return
	}
	t.exem[0] = e
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(t.exem) && slower(t.exem[min], t.exem[l]) {
			min = l
		}
		if r < len(t.exem) && slower(t.exem[min], t.exem[r]) {
			min = r
		}
		if min == i {
			break
		}
		t.exem[i], t.exem[min] = t.exem[min], t.exem[i]
		i = min
	}
}

// Exemplars returns the retained slowest messages, slowest first.
func (t *Tracer) Exemplars() []*Exemplar {
	if t == nil {
		return nil
	}
	out := append([]*Exemplar(nil), t.exem...)
	sort.Slice(out, func(i, j int) bool { return slower(out[i], out[j]) })
	return out
}
