// Package mtrace follows application messages — RPC requests, responses,
// fixed-size chunks of a bulk stream — end to end across every stage of
// the host data path: app enqueue → TCP segmentation and retransmission
// → NIC ring → wire → GRO → softirq → socket read. It extends the
// profiler's per-packet 8-stamp SKB lifecycle into message scope: a
// message spans many segments, retransmits and ACK-clocked waits, and
// its decomposition separates the send-buffer wait (sndbuf) from the
// retransmission wait (retx_wait) that per-packet stamps cannot see.
//
// Completed messages feed a fixed-bucket log-linear percentile engine
// and a tail-attribution report — for each percentile band (p50 / p90 /
// p99 / p999) the per-stage latency decomposition of just the messages
// in that band — plus a slowest-N exemplar store holding full span
// trees, exportable as Chrome trace JSON for Perfetto.
//
// Like every observability layer here, the tracer is a pure observer: a
// traced run follows the exact trajectory of an untraced one, and a nil
// *Tracer no-ops every hook, so the hot path pays only pointer tests
// when tracing is off.
package mtrace

import (
	"hostsim/internal/metrics"
	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/stage"
	"hostsim/internal/tcp"
	"hostsim/internal/units"
)

// NumMsgStages is the number of telescoping per-message stage deltas
// (stage.Message without the trailing total).
const NumMsgStages = len(stage.Message) - 1

// Stage indices within Record.Stages (stage.Message order).
const (
	stageIdxRetxWait  = 1
	stageIdxSockQueue = 7
)

// Options configures a Tracer.
type Options struct {
	// MsgBytes maps each traced flow to its fixed message size: message
	// k of a flow is its byte range [k*size, (k+1)*size). Flows absent
	// from the map are not traced.
	MsgBytes map[skb.FlowID]units.Bytes
	// Start maps a flow to the stream bytes the application had already
	// committed when the tracer attached (workload setup can run a first
	// write before observers exist). Messages wholly inside the
	// pre-attach prefix are skipped, keeping later message ids aligned
	// with the flow's TCP sequence space.
	Start map[skb.FlowID]int64
	// Slowest bounds the exemplar span trees kept (0 = 8).
	Slowest int
	// MaxMessages caps the retained per-message records that back the
	// band attribution (0 = 1<<20). Messages beyond the cap still feed
	// the quantile histogram and the exemplar store, and are counted in
	// Truncated.
	MaxMessages int
}

// txMark is one first-transmission record: all not-yet-marked sequence
// bytes below endSeq were first emitted by TCP at this time. Marks are
// appended in sequence order (sndNxt is monotone) and pruned as the
// receiver consumes the stream.
type txMark struct {
	endSeq int64
	at     sim.Time
}

// SegmentSpan is one TCP (re)transmission overlapping a message, kept
// for exemplar span trees.
type SegmentSpan struct {
	Seq     int64
	Len     units.Bytes
	At      sim.Time
	Retrans bool
}

// Recovery marks a loss-recovery probe event (fast-retransmit, rto,
// retransmit, recovery-exit) on a traced flow.
type Recovery struct {
	At   sim.Time
	Kind string
}

// message is one in-flight message of a flow.
type message struct {
	id      int64
	writeAt sim.Time      // application wrote the message's first byte
	segs    []SegmentSpan // transmissions overlapping the message
}

// flowState is the tracer's per-flow bookkeeping.
type flowState struct {
	msgBytes int64
	writeEnd int64      // stream bytes the application has committed
	readNxt  int64      // stream bytes delivered in order to the reader
	nextID   int64      // next message id to create
	active   []*message // in-flight messages, ascending id
	firstTx  []txMark
	events   []Recovery
}

// Record is one completed message's stage decomposition: nanosecond
// deltas in stage.Message order (Stages[i] is stage.Message[i]), summing
// exactly to Total = read time − write time.
type Record struct {
	Flow   skb.FlowID
	ID     int64
	Done   sim.Time // the application read the message's last byte
	Total  int64
	Stages [NumMsgStages]int64
}

// Tracer is the per-message tracing engine. A nil Tracer is a valid
// no-op observer.
type Tracer struct {
	slowest   int
	maxRecs   int
	flows     map[skb.FlowID]*flowState
	recs      []Record
	dropped   int64 // incomplete or non-monotonic stamp chains
	truncated int64 // completions beyond MaxMessages
	hist      *metrics.LogLinear
	exem      []*Exemplar // min-heap on (Total, Done, Flow, ID)
}

// New builds a tracer for the given flows.
func New(o Options) *Tracer {
	t := &Tracer{
		slowest: o.Slowest,
		maxRecs: o.MaxMessages,
		flows:   make(map[skb.FlowID]*flowState, len(o.MsgBytes)),
		hist:    metrics.NewLogLinear(),
	}
	if t.slowest <= 0 {
		t.slowest = 8
	}
	if t.maxRecs <= 0 {
		t.maxRecs = 1 << 20
	}
	for f, sz := range o.MsgBytes {
		if sz <= 0 {
			continue
		}
		fs := &flowState{msgBytes: int64(sz)}
		if off := o.Start[f]; off > 0 {
			// Writes before attach were not observed: align the write
			// cursor with the TCP stream and start numbering at the first
			// message whose bytes are wholly post-attach.
			fs.writeEnd = off
			fs.nextID = (off + fs.msgBytes - 1) / fs.msgBytes
		}
		t.flows[f] = fs
	}
	return t
}

// OnWrite observes one accepted application write of n stream bytes on
// flow at the given time, creating the messages whose first byte it
// carries. Call before TCP gets the bytes, so segments emitted inside
// the same send can attach to their message.
func (t *Tracer) OnWrite(flow skb.FlowID, n int64, at sim.Time) {
	if t == nil || n <= 0 {
		return
	}
	fs := t.flows[flow]
	if fs == nil {
		return
	}
	fs.writeEnd += n
	for fs.nextID*fs.msgBytes < fs.writeEnd {
		fs.active = append(fs.active, &message{id: fs.nextID, writeAt: at})
		fs.nextID++
	}
}

// OnSegment observes TCP emitting [seq, seq+length) on flow. First
// transmissions extend the flow's first-tx log (TCP sends new data in
// sequence order, so the log stays sorted); all transmissions attach to
// the in-flight messages they overlap for exemplar detail.
func (t *Tracer) OnSegment(flow skb.FlowID, seq int64, length units.Bytes, retrans bool, at sim.Time) {
	if t == nil || length <= 0 {
		return
	}
	fs := t.flows[flow]
	if fs == nil {
		return
	}
	endSeq := seq + int64(length)
	if !retrans {
		fs.firstTx = append(fs.firstTx, txMark{endSeq: endSeq, at: at})
	}
	for _, m := range fs.active {
		if (m.id+1)*fs.msgBytes <= seq {
			continue
		}
		if m.id*fs.msgBytes >= endSeq {
			break
		}
		m.segs = append(m.segs, SegmentSpan{Seq: seq, Len: length, At: at, Retrans: retrans})
	}
}

// OnDeliver observes the application reading one in-order data SKB at
// readAt, completing every message whose last byte it (or a predecessor)
// carried. The SKB is only read — callers recycle it afterwards.
func (t *Tracer) OnDeliver(s *skb.SKB, readAt sim.Time) {
	if t == nil {
		return
	}
	fs := t.flows[s.Flow]
	if fs == nil || s.Ack != nil || s.Len == 0 {
		return
	}
	end := s.End()
	if end <= fs.readNxt {
		return
	}
	fs.readNxt = end
	// Drop consumed first-tx marks: later deliveries start at or beyond
	// this SKB's first byte, so marks wholly below it are dead.
	i := 0
	for i < len(fs.firstTx) && fs.firstTx[i].endSeq <= s.Seq {
		i++
	}
	if i > 0 {
		fs.firstTx = fs.firstTx[i:]
	}
	for len(fs.active) > 0 {
		m := fs.active[0]
		if (m.id+1)*fs.msgBytes > end {
			break
		}
		fs.active[0] = nil
		fs.active = fs.active[1:]
		t.complete(fs, m, s, readAt)
	}
	// Recovery events older than every in-flight message can no longer
	// appear on an exemplar; prune them.
	cut := readAt
	if len(fs.active) > 0 {
		cut = fs.active[0].writeAt
	}
	j := 0
	for j < len(fs.events) && fs.events[j].At < cut {
		j++
	}
	if j > 0 {
		fs.events = fs.events[j:]
	}
}

// firstTxAt returns when the byte at seq was first emitted by TCP (zero
// if the mark is gone — pre-attach traffic).
func (fs *flowState) firstTxAt(seq int64) sim.Time {
	lo, hi := 0, len(fs.firstTx)
	for lo < hi {
		mid := (lo + hi) / 2
		if fs.firstTx[mid].endSeq <= seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(fs.firstTx) {
		return 0
	}
	return fs.firstTx[lo].at
}

// complete folds one finished message into the report state. The stamp
// chain is the completing SKB's (the one delivering the message's last
// byte): write → first tx → tx of the arriving copy → NIC → wire → NAPI
// → GRO → TCP Rx → read. Chains with missing or non-monotonic stamps
// (pre-attach traffic, or a GRO aggregate straddling a write boundary)
// are dropped whole, keeping the telescoping sum exact for every record.
func (t *Tracer) complete(fs *flowState, m *message, s *skb.SKB, readAt sim.Time) {
	ts := [NumMsgStages + 1]sim.Time{
		m.writeAt, fs.firstTxAt(s.Seq), s.TCPTxAt, s.NICTxAt,
		s.WireAt, s.Born, s.GROAt, s.TCPRxAt, readAt,
	}
	for i, v := range ts {
		if v == 0 || (i > 0 && v < ts[i-1]) {
			t.dropped++
			return
		}
	}
	rec := Record{Flow: s.Flow, ID: m.id, Done: readAt, Total: int64(readAt - m.writeAt)}
	for i := 0; i < NumMsgStages; i++ {
		rec.Stages[i] = int64(ts[i+1] - ts[i])
	}
	// A retransmission delays a message even when the completing SKB
	// itself was never retransmitted: a tail segment that arrived early
	// sits in the receiver's out-of-order queue until the lost hole is
	// refilled, which the raw chain books under sock_queue. The hole
	// provably persisted until the last overlapping retransmission left
	// TCP, so move that much dwell (clamped to the sock_queue share) into
	// retx_wait. The shift preserves the exact telescoping sum.
	var lastRetx sim.Time
	for _, sp := range m.segs {
		if sp.Retrans && sp.At > lastRetx {
			lastRetx = sp.At
		}
	}
	if lastRetx > ts[7] { // ts[7] = completing SKB's TCP Rx time
		shift := int64(lastRetx - ts[7])
		if shift > rec.Stages[stageIdxSockQueue] {
			shift = rec.Stages[stageIdxSockQueue]
		}
		rec.Stages[stageIdxSockQueue] -= shift
		rec.Stages[stageIdxRetxWait] += shift
	}
	t.hist.Record(rec.Total)
	if len(t.recs) < t.maxRecs {
		t.recs = append(t.recs, rec)
	} else {
		t.truncated++
	}
	t.offerExemplar(rec, m, fs)
}

// ProbeHook returns a tcp_probe observer that annotates exemplar span
// trees with loss-recovery events. Install with Conn.AddProbe so it
// composes with the inspector's own probe consumers.
func (t *Tracer) ProbeHook() tcp.ProbeFunc {
	if t == nil {
		return nil
	}
	return func(ev tcp.ProbeEvent) {
		fs := t.flows[ev.Flow]
		if fs == nil {
			return
		}
		switch ev.Kind {
		case tcp.ProbeFastRetransmit, tcp.ProbeRetransmit, tcp.ProbeRTO, tcp.ProbeRecoveryExit:
			fs.events = append(fs.events, Recovery{At: ev.At, Kind: ev.Kind.String()})
		}
	}
}

// Records returns the retained per-message records, completion order.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	return t.recs
}

// Dropped returns the completions discarded for incomplete stamps.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Truncated returns the completions beyond the MaxMessages record cap.
func (t *Tracer) Truncated() int64 {
	if t == nil {
		return 0
	}
	return t.truncated
}
