package mtrace

import (
	"fmt"
	"io"
	"time"

	"hostsim/internal/stage"
	"hostsim/internal/telemetry"
)

// Spans renders the exemplar span trees as reusable trace spans, slowest
// message first. Each exemplar becomes one Perfetto process with three
// threads: the end-to-end message span, the telescoping stage slices,
// and the segment/recovery instants. Stage slices carry their exact
// nanosecond duration in args ("ns"), so consumers — cmd/tailcheck for
// one — can verify the telescoping invariant without microsecond
// rounding noise.
func (t *Tracer) Spans() []telemetry.Span {
	if t == nil {
		return nil
	}
	var spans []telemetry.Span
	for rank, e := range t.Exemplars() {
		proc := fmt.Sprintf("slow%02d flow%03d msg%06d (%v)",
			rank+1, e.Flow, e.ID, time.Duration(e.Total))
		spans = append(spans, telemetry.Span{
			Process: proc, Thread: 0, ThreadName: "message",
			Name: stage.Total.String(), Cat: "message",
			StartNS: int64(e.WriteAt), DurNS: e.Total,
			Args: map[string]any{"ns": e.Total, "flow": int64(e.Flow), "msg": e.ID},
		})
		cur := int64(e.WriteAt)
		for i, d := range e.Stages {
			spans = append(spans, telemetry.Span{
				Process: proc, Thread: 1, ThreadName: "stages",
				Name: stage.Message[i].String(), Cat: "stage",
				StartNS: cur, DurNS: d,
				Args: map[string]any{"ns": d},
			})
			cur += d
		}
		for _, sg := range e.Segs {
			name := "tx"
			if sg.Retrans {
				name = "retx"
			}
			spans = append(spans, telemetry.Span{
				Process: proc, Thread: 2, ThreadName: "segments",
				Name: name, Cat: "segment", Instant: true,
				StartNS: int64(sg.At),
				Args:    map[string]any{"seq": sg.Seq, "len": int64(sg.Len)},
			})
		}
		for _, ev := range e.Events {
			spans = append(spans, telemetry.Span{
				Process: proc, Thread: 2, ThreadName: "segments",
				Name: ev.Kind, Cat: "recovery", Instant: true,
				StartNS: int64(ev.At),
			})
		}
	}
	return spans
}

// WriteSpans writes the exemplar span trees as a Chrome trace-event JSON
// array (Perfetto-loadable), reusing the shared trace writer. An empty
// exemplar store writes a valid empty trace.
func (t *Tracer) WriteSpans(w io.Writer) error {
	return telemetry.WriteChromeSpans(w, t.Spans())
}
