package mtrace

import (
	"bytes"
	"strings"
	"testing"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/units"
)

// deliver feeds one fully-stamped data SKB covering [seq, seq+n) with a
// base timestamp: tx at base, then one tick per stage hop.
func deliver(t *Tracer, flow skb.FlowID, seq, n int64, txAt, readAt sim.Time) {
	s := &skb.SKB{
		Flow: flow, Seq: seq, Len: units.Bytes(n),
		TCPTxAt: txAt, NICTxAt: txAt + 1, WireAt: txAt + 2,
		Born: txAt + 3, GROAt: txAt + 4, TCPRxAt: txAt + 5,
	}
	t.OnDeliver(s, readAt)
}

func newFlowTracer(msgBytes int64) *Tracer {
	return New(Options{MsgBytes: map[skb.FlowID]units.Bytes{1: units.Bytes(msgBytes)}})
}

func TestTelescopingSimple(t *testing.T) {
	tr := newFlowTracer(100)
	tr.OnWrite(1, 100, 10)
	tr.OnSegment(1, 0, 100, false, 20)
	deliver(tr, 1, 0, 100, 20, 80)
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 (dropped %d)", len(recs), tr.Dropped())
	}
	r := recs[0]
	if r.Total != 70 {
		t.Fatalf("total = %d, want 70", r.Total)
	}
	var sum int64
	for _, v := range r.Stages {
		sum += v
	}
	if sum != r.Total {
		t.Fatalf("stage sum %d != total %d", sum, r.Total)
	}
	if r.Stages[0] != 10 { // sndbuf: write 10 → first tx 20
		t.Fatalf("sndbuf = %d, want 10", r.Stages[0])
	}
	if r.Stages[1] != 0 { // no retransmission
		t.Fatalf("retx_wait = %d, want 0", r.Stages[1])
	}
}

func TestRetransmitWait(t *testing.T) {
	tr := newFlowTracer(100)
	tr.OnWrite(1, 100, 10)
	tr.OnSegment(1, 0, 100, false, 20) // first transmission, lost
	tr.OnSegment(1, 0, 100, true, 120) // retransmission arrives
	deliver(tr, 1, 0, 100, 120, 180)
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records (dropped %d)", len(recs), tr.Dropped())
	}
	r := recs[0]
	if r.Stages[1] != 100 { // retx_wait: first tx 20 → arriving tx 120
		t.Fatalf("retx_wait = %d, want 100", r.Stages[1])
	}
	if r.Stages[0] != 10 {
		t.Fatalf("sndbuf = %d, want 10", r.Stages[0])
	}
	ex := tr.Exemplars()
	if len(ex) != 1 || len(ex[0].Segs) != 2 || !ex[0].Segs[1].Retrans {
		t.Fatalf("exemplar should carry both transmissions: %+v", ex)
	}
}

func TestGROSpanningMessages(t *testing.T) {
	tr := newFlowTracer(100)
	tr.OnWrite(1, 300, 5) // three messages in one write
	tr.OnSegment(1, 0, 100, false, 10)
	tr.OnSegment(1, 100, 100, false, 12)
	tr.OnSegment(1, 200, 100, false, 14)
	// One GRO aggregate delivers all three; stamps inherit the first frame.
	deliver(tr, 1, 0, 300, 10, 90)
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (dropped %d)", len(recs), tr.Dropped())
	}
	for _, r := range recs {
		var sum int64
		for _, v := range r.Stages {
			sum += v
		}
		if sum != r.Total || r.Total != 85 {
			t.Fatalf("record %d: sum %d total %d", r.ID, sum, r.Total)
		}
	}
}

func TestIncompleteStampsDropped(t *testing.T) {
	tr := newFlowTracer(100)
	tr.OnWrite(1, 100, 10)
	tr.OnSegment(1, 0, 100, false, 20)
	s := &skb.SKB{Flow: 1, Seq: 0, Len: 100, TCPTxAt: 20} // missing the rest
	tr.OnDeliver(s, 80)
	if len(tr.Records()) != 0 || tr.Dropped() != 1 {
		t.Fatalf("records %d dropped %d, want 0/1", len(tr.Records()), tr.Dropped())
	}
}

func TestUntracedFlowIgnored(t *testing.T) {
	tr := newFlowTracer(100)
	tr.OnWrite(7, 100, 10)
	tr.OnSegment(7, 0, 100, false, 20)
	deliver(tr, 7, 0, 100, 20, 80)
	if len(tr.Records()) != 0 || tr.Dropped() != 0 {
		t.Fatal("untraced flow must not contribute")
	}
	var nilT *Tracer
	nilT.OnWrite(1, 100, 10)
	nilT.OnSegment(1, 0, 100, false, 20)
	nilT.OnDeliver(&skb.SKB{Flow: 1, Len: 100}, 30)
	if nilT.Summary().Count != 0 || nilT.Exemplars() != nil || nilT.ProbeHook() != nil {
		t.Fatal("nil tracer must no-op")
	}
}

func TestBandsAndExemplars(t *testing.T) {
	tr := New(Options{
		MsgBytes: map[skb.FlowID]units.Bytes{1: 100},
		Slowest:  4,
	})
	// 2000 messages with strictly increasing latency.
	var off int64
	base := sim.Time(0)
	for i := 0; i < 2000; i++ {
		w := base + 1
		tx := w + 1
		read := tx + 10 + sim.Time(i) // total grows with i
		tr.OnWrite(1, 100, w)
		tr.OnSegment(1, off, 100, false, tx)
		deliver(tr, 1, off, 100, tx, read)
		off += 100
		base = read
	}
	s := tr.Summary()
	if s.Count != 2000 || s.Dropped != 0 {
		t.Fatalf("count %d dropped %d", s.Count, s.Dropped)
	}
	var bandSum int64
	for i, b := range s.Bands {
		bandSum += b.Count
		if i > 0 && b.Count > 0 && b.MeanTotal < s.Bands[i-1].MeanTotal {
			t.Fatalf("band %s mean %d below previous band", b.Name, b.MeanTotal)
		}
	}
	if bandSum != 2000 {
		t.Fatalf("band counts sum to %d, want 2000", bandSum)
	}
	if last := s.Bands[len(s.Bands)-1]; last.Count != 2 || last.Name != "p999-max" {
		t.Fatalf("p999-max band: %+v", last)
	}
	ex := tr.Exemplars()
	if len(ex) != 4 {
		t.Fatalf("kept %d exemplars, want 4", len(ex))
	}
	for i := 1; i < len(ex); i++ {
		if ex[i].Total > ex[i-1].Total {
			t.Fatal("exemplars not sorted slowest first")
		}
	}
	if ex[0].ID != 1999 {
		t.Fatalf("slowest exemplar is msg %d, want 1999", ex[0].ID)
	}
	// The formatted report is stable, includes canonical stage names and
	// renders through WriteSpans without error.
	text := s.Format()
	for _, want := range []string{"retx_wait", "sock_queue", "p999-max", "messages 2000"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteSpans(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "slow01") {
		t.Fatal("span export missing the slowest exemplar process")
	}
}

func TestRecordCap(t *testing.T) {
	tr := New(Options{MsgBytes: map[skb.FlowID]units.Bytes{1: 100}, MaxMessages: 3})
	var off int64
	for i := 0; i < 5; i++ {
		w := sim.Time(1 + i*100)
		tr.OnWrite(1, 100, w)
		tr.OnSegment(1, off, 100, false, w+1)
		deliver(tr, 1, off, 100, w+1, w+50)
		off += 100
	}
	if len(tr.Records()) != 3 || tr.Truncated() != 2 {
		t.Fatalf("records %d truncated %d, want 3/2", len(tr.Records()), tr.Truncated())
	}
	if tr.Summary().Count != 5 {
		t.Fatal("histogram must still see truncated completions")
	}
}
