package validate

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Report is one full validation run: provenance, per-hypothesis results
// and the verdict tally. It renders deterministically — no timestamps,
// no map-order dependence — so the committed FINDINGS baseline can be
// compared byte-for-byte in CI.
type Report struct {
	Seed      int64              `json:"seed"`
	Warmup    string             `json:"warmup"`
	Duration  string             `json:"duration"`
	Checked   bool               `json:"checked"`
	CostScale map[string]float64 `json:"cost_scale,omitempty"`

	Tables     []string           `json:"tables"`
	Hypotheses []HypothesisResult `json:"hypotheses"`

	GatePass     int `json:"gate_pass"`
	GateFail     int `json:"gate_fail"`
	AdvisoryPass int `json:"advisory_pass"`
	AdvisoryFail int `json:"advisory_fail"`
}

// GateOK reports whether every gate hypothesis passed.
func (r *Report) GateOK() bool { return r.GateFail == 0 }

// jsonFloat drops non-finite values to null so the report marshals.
func jsonFloat(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// MarshalJSON sanitizes the band endpoints (one-sided checks carry
// ±Inf, shape checks carry NaN expectations) into nulls.
func (c Check) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name     string   `json:"name"`
		Observed *float64 `json:"observed"`
		Lo       *float64 `json:"lo"`
		Hi       *float64 `json:"hi"`
		Want     *float64 `json:"want"`
		Consumed float64  `json:"consumed"`
		Pass     bool     `json:"pass"`
	}{c.Name, jsonFloat(c.Observed), jsonFloat(c.Lo), jsonFloat(c.Hi),
		jsonFloat(c.Want), c.Consumed(), c.Pass})
}

// JSON renders the machine-readable report.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func verdict(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

// fnum renders a float compactly and deterministically for the report.
func fnum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	}
	s := fmt.Sprintf("%.4g", v)
	// %.4g can emit exponents for tiny values; keep them, they are
	// deterministic.
	return s
}

func bandString(c Check) string {
	loInf, hiInf := math.IsInf(c.Lo, -1), math.IsInf(c.Hi, 1)
	switch {
	case loInf && hiInf:
		return "any"
	case hiInf:
		return ">= " + fnum(c.Lo)
	case loInf:
		return "<= " + fnum(c.Hi)
	case c.Lo == c.Hi:
		return "= " + fnum(c.Lo)
	default:
		return "[" + fnum(c.Lo) + ", " + fnum(c.Hi) + "]"
	}
}

// Markdown renders the FINDINGS report: provenance, a verdict summary,
// the per-hypothesis table with error magnitudes, then per-hypothesis
// evidence sections (every check with its observed value and band).
func (r *Report) Markdown() string {
	var b strings.Builder
	b.WriteString("# FINDINGS: paper-claim validation\n\n")
	b.WriteString("Machine-checked hypotheses over the regenerated figure tables\n")
	b.WriteString("(`go run ./cmd/validate` regenerates this report; see README\n")
	b.WriteString("\"Fidelity & calibration\").\n\n")

	b.WriteString("## Provenance\n\n")
	fmt.Fprintf(&b, "- seed %d, warmup %s, measurement window %s\n", r.Seed, r.Warmup, r.Duration)
	fmt.Fprintf(&b, "- invariant checker armed: %v\n", r.Checked)
	if len(r.CostScale) > 0 {
		keys := make([]string, 0, len(r.CostScale))
		for k := range r.CostScale {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s x%s", k, fnum(r.CostScale[k]))
		}
		fmt.Fprintf(&b, "- PERTURBED cost model: %s\n", strings.Join(parts, ", "))
	} else {
		b.WriteString("- cost model: default calibration (internal/cpumodel)\n")
	}
	fmt.Fprintf(&b, "- %d hypotheses over %d regenerated tables: %s\n\n",
		len(r.Hypotheses), len(r.Tables), strings.Join(r.Tables, ", "))

	b.WriteString("## Verdict\n\n")
	fmt.Fprintf(&b, "| severity | pass | fail |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| gate | %d | %d |\n", r.GatePass, r.GateFail)
	fmt.Fprintf(&b, "| advisory | %d | %d |\n\n", r.AdvisoryPass, r.AdvisoryFail)
	if r.GateOK() {
		b.WriteString("**GATE: PASS** — every gate hypothesis holds.\n")
	} else {
		b.WriteString("**GATE: FAIL** — at least one gate hypothesis is out of band.\n")
	}
	if r.AdvisoryFail > 0 {
		fmt.Fprintf(&b, "%d advisory hypotheses fail; these document known "+
			"model-vs-paper divergences (see EXPERIMENTS.md).\n", r.AdvisoryFail)
	}
	b.WriteByte('\n')

	b.WriteString("## Hypotheses\n\n")
	b.WriteString("err = largest fraction of a check's accepted band consumed (1.0 = on the edge);\n")
	b.WriteString("MAPE = mean abs. % error over checks pinning a paper value.\n\n")
	b.WriteString("| id | severity | sources | verdict | err | MAPE |\n|---|---|---|---|---|---|\n")
	for _, h := range r.Hypotheses {
		mape := "-"
		if h.MAPE != nil {
			mape = fnum(*h.MAPE) + "%"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n",
			h.ID, h.Severity, strings.Join(h.Sources, " "), verdict(h.Pass), fnum(h.ErrMag), mape)
	}
	b.WriteByte('\n')

	b.WriteString("## Evidence\n\n")
	for _, h := range r.Hypotheses {
		fmt.Fprintf(&b, "### %s (%s) — %s\n\n", h.ID, h.Severity, verdict(h.Pass))
		fmt.Fprintf(&b, "%s\n\n", h.Claim)
		if len(h.Checks) > 0 {
			b.WriteString("| check | observed | accepted | err | verdict |\n|---|---|---|---|---|\n")
			for _, c := range h.Checks {
				fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
					c.Name, fnum(c.Observed), bandString(c), fnum(c.Consumed()), verdict(c.Pass))
			}
			b.WriteByte('\n')
		}
		for _, err := range h.Errors {
			fmt.Fprintf(&b, "- error: %s\n", err)
		}
		if len(h.Errors) > 0 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
