package validate

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"hostsim/internal/figures"
)

func TestConsumed(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		c    Check
		want float64
	}{
		{"two-sided center", Check{Observed: 42, Lo: 36, Hi: 48}, 0},
		{"two-sided edge", Check{Observed: 48, Lo: 36, Hi: 48}, 1},
		{"two-sided outside", Check{Observed: 54, Lo: 36, Hi: 48}, 2},
		{"at-least comfortable", Check{Observed: 12, Lo: 8, Hi: inf}, 8.0 / 12},
		{"at-least violated", Check{Observed: 4, Lo: 8, Hi: inf}, 2},
		{"at-most comfortable", Check{Observed: 0.2, Lo: -inf, Hi: 0.5}, 0.4},
		{"at-most violated", Check{Observed: 1, Lo: -inf, Hi: 0.5}, 2},
		{"at-most zero bound pass", Check{Observed: -1, Lo: -inf, Hi: 0}, 0},
		{"at-most zero bound fail", Check{Observed: 1, Lo: -inf, Hi: 0}, maxConsumed},
		{"at-most negative bound pass", Check{Observed: -0.6, Lo: -inf, Hi: -0.3}, 0},
		{"at-least nonpositive bound pass", Check{Observed: 3, Lo: 0, Hi: inf}, 0},
		{"nan observed", Check{Observed: math.NaN(), Lo: 0, Hi: 1}, maxConsumed},
		{"cap", Check{Observed: 1e6, Lo: 1, Hi: 2}, maxConsumed},
	}
	for _, c := range cases {
		if got := c.c.Consumed(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Consumed() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestWorstAdverseStep(t *testing.T) {
	if v := worstAdverseStep([]float64{1, 2, 3}, true); v > 0 {
		t.Errorf("monotone up series scored %v", v)
	}
	if v := worstAdverseStep([]float64{3, 2, 4}, false); math.Abs(v-1) > 1e-12 {
		t.Errorf("down series with rise 2->4 scored %v, want 1 (range-normalized)", v)
	}
	if v := worstAdverseStep([]float64{5, 5, 5}, true); v != 0 {
		t.Errorf("constant series scored %v, want 0", v)
	}
	if !math.IsNaN(worstAdverseStep([]float64{1}, true)) {
		t.Error("single-element series should be NaN")
	}
	if !math.IsNaN(worstAdverseStep([]float64{1, math.NaN()}, true)) {
		t.Error("NaN element should poison the series")
	}
}

func TestEvidenceBuilder(t *testing.T) {
	ts := TableSet{"sample": {
		ID:      "sample",
		Columns: []string{"config", "tpc", "flag"},
		Rows:    [][]string{{"base", "41.36", "true"}, {"slow", "20.00", "false"}},
	}}
	e := &E{ts: ts}
	e.Within("tpc near 42", e.V("sample", "tpc", "base"), 42, 0.15)
	e.Band("slow tpc", e.V("sample", "tpc", "slow"), 18, 22)
	e.AtLeast("base over slow", e.V("sample", "tpc", "base")-e.V("sample", "tpc", "slow"), 10)
	e.True("flag set", e.Cell("sample", "flag", "base") == "true")
	e.MonotoneDown("tpc falls", 41.36, 20)
	for i, c := range e.Checks {
		if !c.Pass {
			t.Errorf("check %d (%s) failed: %+v", i, c.Name, c)
		}
	}
	if len(e.Errors) != 0 {
		t.Errorf("unexpected evidence errors: %v", e.Errors)
	}

	// Lookup failures poison values with NaN and record errors instead of
	// panicking.
	e2 := &E{ts: ts}
	v := e2.V("sample", "nope", "base")
	e2.AtLeast("poisoned", v, 0)
	if !math.IsNaN(v) || len(e2.Errors) == 0 || e2.Checks[0].Pass {
		t.Errorf("missing column: v=%v errors=%v checks=%+v", v, e2.Errors, e2.Checks)
	}
	if v := (&E{ts: ts}).V("missing-table", "tpc", "base"); !math.IsNaN(v) {
		t.Errorf("missing table returned %v", v)
	}
}

func TestEvaluateAggregates(t *testing.T) {
	ts := TableSet{"s": {ID: "s", Columns: []string{"k", "v"}, Rows: [][]string{{"a", "10"}}}}
	h := Hypothesis{ID: "x", Sources: []string{"s"}, Severity: Gate, Claim: "c",
		Eval: func(e *E) {
			e.Within("v near 8", e.V("s", "v", "a"), 8, 0.5) // passes, 25% error
			e.AtMost("v small", e.V("s", "v", "a"), 5)       // fails
		}}
	res := Evaluate(h, ts)
	if res.Pass {
		t.Error("hypothesis with a failing check passed")
	}
	if res.MAPE == nil || math.Abs(*res.MAPE-25) > 1e-9 {
		t.Errorf("MAPE = %v, want 25", res.MAPE)
	}
	if res.ErrMag < 1 {
		t.Errorf("ErrMag = %v, want >= 1 for a failing check", res.ErrMag)
	}

	empty := Evaluate(Hypothesis{ID: "e", Eval: func(e *E) {}}, ts)
	if empty.Pass || len(empty.Errors) == 0 {
		t.Error("hypothesis evaluating no checks must fail with an error")
	}
}

func TestRegistrySanity(t *testing.T) {
	if len(Hypotheses) < 25 {
		t.Fatalf("only %d hypotheses; the observatory promises >= 25", len(Hypotheses))
	}
	seen := map[string]bool{}
	covered := map[string]bool{}
	for _, h := range Hypotheses {
		if h.ID == "" || h.Claim == "" || h.Eval == nil || len(h.Sources) == 0 {
			t.Errorf("hypothesis %q is missing id/claim/eval/sources", h.ID)
		}
		if seen[h.ID] {
			t.Errorf("duplicate hypothesis id %q", h.ID)
		}
		seen[h.ID] = true
		for _, s := range h.Sources {
			if _, ok := figures.ByID(s); !ok {
				t.Errorf("hypothesis %s references unknown table %q", h.ID, s)
			}
			covered[s] = true
		}
	}
	// The inventory spans the whole evaluation: every registered figure,
	// table, extension, ablation and appendix experiment is pinned by at
	// least one hypothesis.
	for _, id := range figures.IDs() {
		if !covered[id] {
			t.Errorf("experiment %s has no hypothesis", id)
		}
	}
	// The paper's core evaluation carries the gate.
	gates := 0
	for _, h := range Hypotheses {
		if h.Severity == Gate {
			gates++
		}
	}
	if gates < 25 {
		t.Errorf("only %d gate hypotheses", gates)
	}
}

func TestFilter(t *testing.T) {
	if _, err := Filter(Hypotheses, "bogus", nil); err == nil {
		t.Error("bogus severity accepted")
	}
	if _, err := Filter(Hypotheses, "all", []string{"no-such-hypothesis"}); err == nil {
		t.Error("unknown id accepted")
	}
	got, err := Filter(Hypotheses, "all", []string{"fig3a-ladder", "fig4-numa-penalty"})
	if err != nil || len(got) != 2 {
		t.Fatalf("Filter(only 2 ids) = %d hypotheses, %v", len(got), err)
	}
	gate, err := Filter(Hypotheses, "gate", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range gate {
		if h.Severity != Gate {
			t.Errorf("severity filter leaked %s", h.ID)
		}
	}
	adv, err := Filter(Hypotheses, "advisory", nil)
	if err != nil || len(adv)+len(gate) != len(Hypotheses) {
		t.Errorf("gate (%d) + advisory (%d) != all (%d), err %v", len(gate), len(adv), len(Hypotheses), err)
	}
}

// shortRC is a fast window for engine-level tests; the figure values it
// produces are not the calibrated ones, so these tests exercise shape
// and determinism only.
func shortRC(jobs int) figures.RunConfig {
	return figures.RunConfig{Seed: 7, Warmup: 2 * time.Millisecond,
		Duration: 5 * time.Millisecond, Jobs: jobs}
}

func subset(t *testing.T, ids ...string) []Hypothesis {
	t.Helper()
	hyps, err := Filter(Hypotheses, "all", ids)
	if err != nil {
		t.Fatal(err)
	}
	return hyps
}

func TestReportDeterministicAcrossJobs(t *testing.T) {
	hyps := subset(t, "fig3a-ladder", "fig3b-receiver-bound", "fig4-numa-penalty", "table2-steering")
	r1, err := Run(hyps, shortRC(1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(hyps, shortRC(8))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Markdown() != r8.Markdown() {
		t.Error("markdown report differs between -jobs 1 and -jobs 8")
	}
	j1, err1 := r1.JSON()
	j8, err8 := r8.JSON()
	if err1 != nil || err8 != nil {
		t.Fatalf("JSON: %v, %v", err1, err8)
	}
	if !bytes.Equal(j1, j8) {
		t.Error("JSON report differs between -jobs 1 and -jobs 8")
	}
	// The report must marshal cleanly despite one-sided bands (±Inf) and
	// shape checks (NaN expectations) in the checks.
	var decoded map[string]any
	if err := json.Unmarshal(j1, &decoded); err != nil {
		t.Fatalf("report JSON does not decode: %v", err)
	}
	// Provenance and tally fields are present.
	md := r1.Markdown()
	for _, want := range []string{"## Provenance", "## Verdict", "## Hypotheses", "## Evidence", "seed 7"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}

func TestRunRejectsUnknownSource(t *testing.T) {
	bad := []Hypothesis{{ID: "x", Sources: []string{"fig99z"}, Claim: "c", Eval: func(e *E) {}}}
	if _, err := Run(bad, shortRC(1)); err == nil {
		t.Error("unknown source table accepted")
	}
}

func TestSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep")
	}
	hyps := subset(t, "fig3a-ladder", "fig3b-receiver-bound")
	sw, err := Sweep(hyps, shortRC(8), []string{"CopyHit"}, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Fatalf("sweep evaluated %d points, want 2", len(sw.Points))
	}
	for _, pt := range sw.Points {
		if pt.Err != "" {
			t.Errorf("sweep point %s x%v errored: %s", pt.Knob, pt.Factor, pt.Err)
		}
	}
	if len(sw.Fragile)+len(sw.Robust) != len(hyps) {
		t.Errorf("fragile (%d) + robust (%d) != hypotheses (%d)", len(sw.Fragile), len(sw.Robust), len(hyps))
	}
	md := sw.Markdown()
	for _, want := range []string{"## Sweep points", "## Classification", "CopyHit"} {
		if !strings.Contains(md, want) {
			t.Errorf("sweep markdown missing %q", want)
		}
	}
	if _, err := sw.JSON(); err != nil {
		t.Errorf("sweep JSON: %v", err)
	}

	if _, err := Sweep(hyps, shortRC(1), []string{"NoSuchKnob"}, nil); err == nil {
		t.Error("unknown knob accepted")
	}
	if _, err := Sweep(hyps, shortRC(1), []string{"CopyHit"}, []float64{-1}); err == nil {
		t.Error("negative factor accepted")
	}
}
