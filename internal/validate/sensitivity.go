package validate

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"hostsim/internal/cpumodel"
	"hostsim/internal/figures"
)

// Sensitivity mode: one-factor-at-a-time sweeps over per-operation
// cycle-cost knobs. Every sweep point regenerates the hypotheses'
// source tables under a perturbed cost model (hostsim.Config.CostScale)
// and re-evaluates the full hypothesis set; hypotheses whose verdict
// differs from the baseline at that point have "flipped". Claims that
// flip under mild perturbations are fragile — they genuinely depend on
// the calibrated constant — while claims that never flip are robust
// structural properties of the model.

// HeadlineKnobs are the cost-model constants most likely to move paper
// claims: the data-copy path, per-skb protocol costs, batching, and the
// scheduling/allocation costs behind the multi-flow figures.
var HeadlineKnobs = []string{
	"ACKProcess",
	"ContextSwitch",
	"CopyHit",
	"CopyMissLocal",
	"GROMergeFrame",
	"IRQEntry",
	"PageAllocGlobal",
	"SockLockContended",
	"SyscallBase",
	"TCPRxPerSKB",
}

// DefaultFactors bracket each knob at mild and strong perturbations in
// both directions.
var DefaultFactors = []float64{0.5, 0.8, 1.25, 2}

// SweepPoint is one (knob, factor) evaluation.
type SweepPoint struct {
	Knob     string  `json:"knob"`
	Factor   float64 `json:"factor"`
	GateFail int     `json:"gate_fail"`
	// Flipped lists hypotheses whose verdict differs from baseline at
	// this point, in declaration order.
	Flipped []string `json:"flipped,omitempty"`
	Err     string   `json:"err,omitempty"`
}

// Sensitivity is a full one-factor sweep result.
type Sensitivity struct {
	Seed     int64     `json:"seed"`
	Warmup   string    `json:"warmup"`
	Duration string    `json:"duration"`
	Knobs    []string  `json:"knobs"`
	Factors  []float64 `json:"factors"`

	// Baseline maps hypothesis id -> verdict at factor 1.
	Baseline map[string]bool `json:"baseline"`
	Points   []SweepPoint    `json:"points"`

	// Fragile lists hypotheses that flipped at >= 1 sweep point;
	// Robust lists those that never flipped. Declaration order.
	Fragile []string `json:"fragile"`
	Robust  []string `json:"robust"`
}

// Sweep runs the one-factor sensitivity analysis. The baseline is rc as
// given; each point overlays one knob's factor on rc.CostScale. Points
// run serially (each already fans out rc.Jobs simulations); the memoized
// run cache is cleared after each perturbed point so a long sweep does
// not hold every perturbed simulation in memory.
func Sweep(hyps []Hypothesis, rc figures.RunConfig, knobs []string, factors []float64) (*Sensitivity, error) {
	if len(knobs) == 0 {
		knobs = HeadlineKnobs
	}
	if len(factors) == 0 {
		factors = DefaultFactors
	}
	for _, k := range knobs {
		if !cpumodel.IsCostName(k) {
			return nil, fmt.Errorf("validate: unknown cost knob %q (see CostNames)", k)
		}
	}
	for _, f := range factors {
		if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
			return nil, fmt.Errorf("validate: invalid sweep factor %v", f)
		}
	}

	base, err := Run(hyps, rc)
	if err != nil {
		return nil, fmt.Errorf("validate: baseline sweep run: %w", err)
	}
	s := &Sensitivity{
		Seed: rc.Seed, Warmup: rc.Warmup.String(), Duration: rc.Duration.String(),
		Knobs: knobs, Factors: factors, Baseline: map[string]bool{},
	}
	for _, h := range base.Hypotheses {
		s.Baseline[h.ID] = h.Pass
	}

	flipped := map[string]bool{}
	for _, knob := range knobs {
		for _, f := range factors {
			if f == 1 {
				continue
			}
			prc := rc
			prc.CostScale = map[string]float64{}
			for k, v := range rc.CostScale {
				prc.CostScale[k] = v
			}
			if prev, ok := rc.CostScale[knob]; ok {
				prc.CostScale[knob] = prev * f // compose with a pre-scaled baseline
			} else {
				prc.CostScale[knob] = f
			}
			pt := SweepPoint{Knob: knob, Factor: f}
			rep, err := Run(hyps, prc)
			if err != nil {
				pt.Err = err.Error()
			} else {
				pt.GateFail = rep.GateFail
				for _, h := range rep.Hypotheses {
					if h.Pass != s.Baseline[h.ID] {
						pt.Flipped = append(pt.Flipped, h.ID)
						flipped[h.ID] = true
					}
				}
			}
			s.Points = append(s.Points, pt)
			figures.ClearCache()
		}
	}
	for _, h := range base.Hypotheses {
		if flipped[h.ID] {
			s.Fragile = append(s.Fragile, h.ID)
		} else {
			s.Robust = append(s.Robust, h.ID)
		}
	}
	return s, nil
}

// JSON renders the machine-readable sweep report.
func (s *Sensitivity) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Markdown renders the sweep as a deterministic report section.
func (s *Sensitivity) Markdown() string {
	var b strings.Builder
	b.WriteString("# Sensitivity: one-factor cost-model sweeps\n\n")
	fmt.Fprintf(&b, "Seed %d, warmup %s, window %s. Each point scales ONE cost knob and\n",
		s.Seed, s.Warmup, s.Duration)
	fmt.Fprintf(&b, "re-evaluates all %d hypotheses; 'flipped' lists verdicts that differ\n",
		len(s.Baseline))
	b.WriteString("from the unperturbed baseline.\n\n")

	factors := make([]string, len(s.Factors))
	for i, f := range s.Factors {
		factors[i] = fnum(f)
	}
	fmt.Fprintf(&b, "Knobs: %s\nFactors: x%s\n\n", strings.Join(s.Knobs, ", "), strings.Join(factors, ", x"))

	b.WriteString("## Sweep points\n\n")
	b.WriteString("| knob | factor | gate fails | flipped hypotheses |\n|---|---|---|---|\n")
	for _, pt := range s.Points {
		cell := "-"
		if pt.Err != "" {
			cell = "error: " + pt.Err
		} else if len(pt.Flipped) > 0 {
			cell = strings.Join(pt.Flipped, ", ")
		}
		fmt.Fprintf(&b, "| %s | x%s | %d | %s |\n", pt.Knob, fnum(pt.Factor), pt.GateFail, cell)
	}
	b.WriteByte('\n')

	b.WriteString("## Classification\n\n")
	fmt.Fprintf(&b, "Fragile (flip under >=1 perturbation): %d\n\n", len(s.Fragile))
	for _, id := range s.Fragile {
		fmt.Fprintf(&b, "- %s\n", id)
	}
	if len(s.Fragile) > 0 {
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "Robust (never flip): %d\n\n", len(s.Robust))
	for _, id := range s.Robust {
		fmt.Fprintf(&b, "- %s\n", id)
	}
	if len(s.Robust) > 0 {
		b.WriteByte('\n')
	}
	return b.String()
}
