// Package validate is the hypothesis-driven fidelity observatory: every
// claim the paper makes about Figs. 3-13 and Table 2 is encoded as a
// falsifiable, machine-checkable hypothesis over the regenerated figure
// tables — shape predicates (monotone ladders, orderings between
// configurations, ratio bands) and value predicates (tolerance bands
// around pinned expectations). The runner regenerates exactly the tables
// the selected hypotheses reference (through the figures fan-out, so
// shared scenarios run once), evaluates each hypothesis, computes its
// error magnitude (band slack consumed, MAPE against expectations), and
// renders a deterministic FINDINGS report plus machine-readable JSON.
//
// Gate-severity hypotheses are the CI fidelity gate: a refactor that
// bends a paper claim out of band fails `make validate`. Advisory
// hypotheses document softer expectations — including the model's known
// divergences from the paper — without blocking.
//
// The sensitivity mode (sensitivity.go) sweeps one per-operation
// cycle-cost knob at a time and re-evaluates the hypothesis set at every
// point, separating fragile claims (they flip under small cost
// perturbations) from robust ones — turning calibration of the cost
// model into an observable, repeatable procedure.
package validate

import (
	"fmt"
	"math"
	"sort"

	"hostsim/internal/figures"
)

// Severity says what a failing hypothesis means.
type Severity int

// Gate hypotheses fail the build; Advisory hypotheses inform.
const (
	Advisory Severity = iota
	Gate
)

func (s Severity) String() string {
	if s == Gate {
		return "gate"
	}
	return "advisory"
}

// Hypothesis is one falsifiable paper claim.
type Hypothesis struct {
	ID       string   // e.g. "fig3a-ladder"
	Sources  []string // figure/table ids the predicate reads
	Severity Severity
	Claim    string // the paper's claim, prose
	Eval     func(e *E)
}

// TableSet holds regenerated tables keyed by figure id.
type TableSet map[string]*figures.Table

// Check is one predicate evaluation with its evidence: the observed
// value and the accepted band [Lo, Hi] (either side may be infinite).
// Want is the pinned expectation for tolerance-band checks (NaN when the
// check is a pure shape predicate).
type Check struct {
	Name     string
	Observed float64
	Lo, Hi   float64
	Want     float64
	Pass     bool
}

// maxConsumed caps the error magnitude so failed checks stay finite in
// reports and JSON.
const maxConsumed = 99

// Consumed reports how much of the accepted band the observation used:
// 0 = dead center (or comfortably inside a one-sided bound), 1 = on the
// edge, >1 = outside the band. Capped at maxConsumed.
func (c Check) Consumed() float64 {
	v := c.Observed
	if math.IsNaN(v) {
		return maxConsumed
	}
	loInf := math.IsInf(c.Lo, -1)
	hiInf := math.IsInf(c.Hi, 1)
	cap99 := func(x float64) float64 {
		if math.IsNaN(x) || x > maxConsumed {
			return maxConsumed
		}
		if x < 0 {
			return 0
		}
		return x
	}
	switch {
	case loInf && hiInf:
		return 0
	case hiInf: // v >= Lo
		if c.Lo <= 0 {
			if v >= c.Lo {
				return 0
			}
			return maxConsumed
		}
		if v <= 0 {
			return maxConsumed
		}
		return cap99(c.Lo / v)
	case loInf: // v <= Hi
		if c.Hi <= 0 {
			if v <= c.Hi {
				return 0
			}
			return maxConsumed
		}
		if v < 0 {
			return 0
		}
		return cap99(v / c.Hi)
	default:
		half := (c.Hi - c.Lo) / 2
		mid := (c.Lo + c.Hi) / 2
		if half <= 0 {
			if v == mid {
				return 0
			}
			return maxConsumed
		}
		return cap99(math.Abs(v-mid) / half)
	}
}

// E collects a hypothesis's evidence: table lookups (error-recording)
// and predicate checks.
type E struct {
	ts     TableSet
	Checks []Check
	Errors []string
}

func (e *E) errf(format string, args ...any) {
	e.Errors = append(e.Errors, fmt.Sprintf(format, args...))
}

// Table returns a regenerated source table; a miss records an error.
func (e *E) Table(id string) *figures.Table {
	t, ok := e.ts[id]
	if !ok {
		e.errf("table %s was not regenerated", id)
		return nil
	}
	return t
}

// V reads one numeric cell (see figures.ParseValue); failures record an
// error and poison downstream checks with NaN.
func (e *E) V(tbl, col string, key ...string) float64 {
	t := e.Table(tbl)
	if t == nil {
		return math.NaN()
	}
	v, err := t.Value(col, key...)
	if err != nil {
		e.errf("%v", err)
		return math.NaN()
	}
	return v
}

// Cell reads one raw cell; failures record an error and return "".
func (e *E) Cell(tbl, col string, key ...string) string {
	t := e.Table(tbl)
	if t == nil {
		return ""
	}
	c, err := t.Cell(col, key...)
	if err != nil {
		e.errf("%v", err)
		return ""
	}
	return c
}

func (e *E) add(c Check) { e.Checks = append(e.Checks, c) }

// Band asserts lo <= v <= hi.
func (e *E) Band(name string, v, lo, hi float64) {
	e.add(Check{Name: name, Observed: v, Lo: lo, Hi: hi, Want: math.NaN(),
		Pass: !math.IsNaN(v) && v >= lo && v <= hi})
}

// AtLeast asserts v >= lo.
func (e *E) AtLeast(name string, v, lo float64) {
	e.add(Check{Name: name, Observed: v, Lo: lo, Hi: math.Inf(1), Want: math.NaN(),
		Pass: !math.IsNaN(v) && v >= lo})
}

// AtMost asserts v <= hi.
func (e *E) AtMost(name string, v, hi float64) {
	e.add(Check{Name: name, Observed: v, Lo: math.Inf(-1), Hi: hi, Want: math.NaN(),
		Pass: !math.IsNaN(v) && v <= hi})
}

// Within asserts v is inside ±tol (a fraction) of the pinned expectation
// want; the relative error feeds the hypothesis's MAPE.
func (e *E) Within(name string, v, want, tol float64) {
	lo, hi := want*(1-tol), want*(1+tol)
	if lo > hi { // negative expectations flip the band
		lo, hi = hi, lo
	}
	e.add(Check{Name: name, Observed: v, Lo: lo, Hi: hi, Want: want,
		Pass: !math.IsNaN(v) && v >= lo && v <= hi})
}

// True asserts an arbitrary condition (string cells, set membership);
// it renders as a 0/1 observation.
func (e *E) True(name string, cond bool) {
	v := 0.0
	if cond {
		v = 1
	}
	e.add(Check{Name: name, Observed: v, Lo: 1, Hi: 1, Want: math.NaN(), Pass: cond})
}

// worstAdverseStep returns the largest move against the wanted direction
// (up: a drop; down: a rise), normalized by the series' range, so the
// magnitude is comparable across series with different scales. A
// perfectly monotone series scores <= 0.
func worstAdverseStep(vals []float64, up bool) float64 {
	if len(vals) < 2 {
		return math.NaN()
	}
	lo, hi := vals[0], vals[0]
	worst := math.Inf(-1)
	for i := 1; i < len(vals); i++ {
		if math.IsNaN(vals[i]) || math.IsNaN(vals[i-1]) {
			return math.NaN()
		}
		step := vals[i] - vals[i-1]
		if !up {
			step = -step
		}
		if -step > worst {
			worst = -step // adverse when the step goes the wrong way
		}
		if vals[i] < lo {
			lo = vals[i]
		}
		if vals[i] > hi {
			hi = vals[i]
		}
	}
	if r := hi - lo; r > 0 {
		return worst / r
	}
	if worst <= 0 {
		return 0 // constant series: trivially monotone
	}
	return worst
}

// MonotoneUp asserts the series never decreases (beyond float jitter).
func (e *E) MonotoneUp(name string, vals ...float64) {
	e.AtMost(name+" worst adverse step", worstAdverseStep(vals, true), 1e-9)
}

// MonotoneDown asserts the series never increases (beyond float jitter).
func (e *E) MonotoneDown(name string, vals ...float64) {
	e.AtMost(name+" worst adverse step", worstAdverseStep(vals, false), 1e-9)
}

// DominantCategory asserts the named breakdown column holds the largest
// share in the row identified by key: the margin over the runner-up
// category must be non-negative.
func (e *E) DominantCategory(name, tbl, col string, key ...string) {
	t := e.Table(tbl)
	if t == nil {
		return
	}
	v := e.V(tbl, col, key...)
	runnerUp := math.Inf(-1)
	for _, c := range t.Columns[1:] {
		if c == col {
			continue
		}
		if x, err := t.Value(c, key...); err == nil && x > runnerUp {
			runnerUp = x
		}
	}
	e.AtLeast(fmt.Sprintf("%s: %s margin over runner-up", name, col), v-runnerUp, 0)
}

// HypothesisResult is one evaluated hypothesis.
type HypothesisResult struct {
	ID       string   `json:"id"`
	Severity string   `json:"severity"`
	Sources  []string `json:"sources"`
	Claim    string   `json:"claim"`
	Pass     bool     `json:"pass"`
	// ErrMag is the hypothesis's error magnitude: the largest band slack
	// any of its checks consumed (>1 means out of band).
	ErrMag float64 `json:"err_mag"`
	// MAPE is the mean absolute percentage error over the checks that
	// pin an expectation (nil when the hypothesis has none).
	MAPE   *float64 `json:"mape,omitempty"`
	Checks []Check  `json:"checks"`
	Errors []string `json:"errors,omitempty"`
}

// Evaluate runs one hypothesis against regenerated tables.
func Evaluate(h Hypothesis, ts TableSet) HypothesisResult {
	e := &E{ts: ts}
	h.Eval(e)
	res := HypothesisResult{
		ID: h.ID, Severity: h.Severity.String(), Sources: h.Sources, Claim: h.Claim,
		Pass: len(e.Errors) == 0 && len(e.Checks) > 0, Checks: e.Checks, Errors: e.Errors,
	}
	var mapeSum float64
	var mapeN int
	for _, c := range e.Checks {
		if !c.Pass {
			res.Pass = false
		}
		if con := c.Consumed(); con > res.ErrMag {
			res.ErrMag = con
		}
		if !math.IsNaN(c.Want) && c.Want != 0 && !math.IsNaN(c.Observed) {
			mapeSum += math.Abs(c.Observed-c.Want) / math.Abs(c.Want) * 100
			mapeN++
		}
	}
	if len(e.Checks) == 0 && len(e.Errors) == 0 {
		res.Errors = append(res.Errors, "hypothesis evaluated no checks")
	}
	if mapeN > 0 {
		m := mapeSum / float64(mapeN)
		res.MAPE = &m
	}
	return res
}

// SourcesOf returns the union of the hypotheses' source table ids,
// sorted in paper order.
func SourcesOf(hyps []Hypothesis) []string {
	seen := map[string]bool{}
	var out []string
	for _, h := range hyps {
		for _, s := range h.Sources {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return figures.Less(out[i], out[j]) })
	return out
}

// Run regenerates the tables the hypotheses reference (shared scenarios
// run once; rc.Jobs simulations in flight) and evaluates every
// hypothesis, in declaration order. The report is byte-deterministic at
// any rc.Jobs value because the figures fan-out is.
func Run(hyps []Hypothesis, rc figures.RunConfig) (*Report, error) {
	ids := SourcesOf(hyps)
	exps := make([]figures.Experiment, 0, len(ids))
	for _, id := range ids {
		exp, ok := figures.ByID(id)
		if !ok {
			return nil, fmt.Errorf("validate: hypothesis references unknown table %q", id)
		}
		exps = append(exps, exp)
	}
	tables, err := figures.RunAll(rc, exps)
	if err != nil {
		return nil, fmt.Errorf("validate: regenerating tables: %w", err)
	}
	ts := TableSet{}
	for i, t := range tables {
		ts[exps[i].ID] = t
	}
	rep := &Report{
		Seed: rc.Seed, Warmup: rc.Warmup.String(), Duration: rc.Duration.String(),
		Checked: rc.Check, CostScale: rc.CostScale, Tables: ids,
	}
	for _, h := range hyps {
		hr := Evaluate(h, ts)
		rep.Hypotheses = append(rep.Hypotheses, hr)
		switch {
		case hr.Severity == "gate" && hr.Pass:
			rep.GatePass++
		case hr.Severity == "gate":
			rep.GateFail++
		case hr.Pass:
			rep.AdvisoryPass++
		default:
			rep.AdvisoryFail++
		}
	}
	return rep, nil
}

// Filter selects hypotheses by severity ("gate", "advisory", "" = all)
// and by id set (nil = all). Unknown requested ids are an error so a
// typo cannot silently validate nothing.
func Filter(hyps []Hypothesis, severity string, only []string) ([]Hypothesis, error) {
	switch severity {
	case "", "all", "gate", "advisory":
	default:
		return nil, fmt.Errorf("validate: unknown severity %q (want gate, advisory or all)", severity)
	}
	want := map[string]bool{}
	for _, id := range only {
		want[id] = true
	}
	matched := map[string]bool{}
	var out []Hypothesis
	for _, h := range hyps {
		if severity == "gate" && h.Severity != Gate {
			continue
		}
		if severity == "advisory" && h.Severity != Advisory {
			continue
		}
		if len(want) > 0 && !want[h.ID] {
			continue
		}
		matched[h.ID] = true
		out = append(out, h)
	}
	if len(matched) < len(want) {
		missing := make([]string, 0, len(want))
		for id := range want {
			if !matched[id] {
				missing = append(missing, id)
			}
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("validate: unknown hypothesis ids %v (try -list)", missing)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("validate: selection matched no hypotheses")
	}
	return out, nil
}
