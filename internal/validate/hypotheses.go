package validate

import "math"

// This file is the claim inventory: every figure and table of the
// paper's evaluation (Figs. 3-13, Table 2) plus the repo's extension,
// ablation and appendix experiments is pinned by at least one
// hypothesis. Bands are set against the committed calibration (the
// golden tables) with enough slack that a correct refactor passes but a
// bent cost model does not; shape predicates (ladders, orderings,
// dominance) carry no pinned numbers and survive recalibration.
//
// Three advisory hypotheses encode claims of the paper that the model is
// KNOWN not to reproduce (see EXPERIMENTS.md); they fail by design and
// keep the divergences visible in every FINDINGS report.

// colMax returns the largest parsed value of a column (NaN on error).
func colMax(e *E, tbl, col string) float64 {
	t := e.Table(tbl)
	if t == nil {
		return math.NaN()
	}
	vals, err := t.Column(col)
	if err != nil {
		e.errf("%v", err)
		return math.NaN()
	}
	out := math.Inf(-1)
	for _, v := range vals {
		if v > out {
			out = v
		}
	}
	return out
}

// colMin returns the smallest parsed value of a column (NaN on error).
func colMin(e *E, tbl, col string) float64 {
	t := e.Table(tbl)
	if t == nil {
		return math.NaN()
	}
	vals, err := t.Column(col)
	if err != nil {
		e.errf("%v", err)
		return math.NaN()
	}
	out := math.Inf(1)
	for _, v := range vals {
		if v < out {
			out = v
		}
	}
	return out
}

// ladderRows is Fig. 3's incremental optimization order.
var ladderRows = []string{"No Opt.", "+TSO/GRO", "+Jumbo", "+aRFS (all)"}

func column(e *E, tbl, col string, keys ...string) []float64 {
	out := make([]float64, len(keys))
	for i, k := range keys {
		out[i] = e.V(tbl, col, k)
	}
	return out
}

// Hypotheses is the full claim inventory, in paper order.
var Hypotheses = []Hypothesis{
	// ------------------------------------------------------------- Fig. 3
	{
		ID: "fig3a-ladder", Sources: []string{"fig3a"}, Severity: Gate,
		Claim: "Each optimization step raises single-flow throughput-per-core; all optimizations reach >8x the unoptimized stack (§3.1, Fig. 3a).",
		Eval: func(e *E) {
			tpc := column(e, "fig3a", "thpt-per-core", ladderRows...)
			e.MonotoneUp("tpc over optimization ladder", tpc...)
			e.AtLeast("all-opt / no-opt tpc ratio", tpc[3]/tpc[0], 8)
		},
	},
	{
		ID: "fig3a-headline", Sources: []string{"fig3a"}, Severity: Gate,
		Claim: "With all optimizations a single flow sustains ~42 Gbps per core (§3.1).",
		Eval: func(e *E) {
			e.Within("all-opt tpc (Gbps)", e.V("fig3a", "thpt-per-core", "+aRFS (all)"), 42, 0.15)
		},
	},
	{
		ID: "fig3a-ablations", Sources: []string{"fig3a"}, Severity: Gate,
		Claim: "Removing TSO/GRO or jumbo frames each costs a large fraction of the optimized throughput (§3.1, Fig. 3a).",
		Eval: func(e *E) {
			all := e.V("fig3a", "thpt-per-core", "All Opt.")
			e.AtMost("w/o TSO/GRO tpc fraction of all-opt", e.V("fig3a", "thpt-per-core", "w/o TSO/GRO")/all, 0.75)
			e.AtMost("w/o Jumbo tpc fraction of all-opt", e.V("fig3a", "thpt-per-core", "w/o Jumbo")/all, 0.75)
		},
	},
	{
		ID: "fig3b-receiver-bound", Sources: []string{"fig3b"}, Severity: Gate,
		Claim: "Receiver-side CPU always exceeds sender-side CPU; aRFS roughly halves receiver utilization (§3.1, Fig. 3b).",
		Eval: func(e *E) {
			for _, row := range ladderRows {
				e.AtLeast("receiver-sender cpu gap @ "+row,
					e.V("fig3b", "receiver-cpu", row)-e.V("fig3b", "sender-cpu", row), 0)
			}
			e.Band("aRFS / +TSO-GRO receiver cpu ratio",
				e.V("fig3b", "receiver-cpu", "+aRFS (all)")/e.V("fig3b", "receiver-cpu", "+TSO/GRO"), 0.4, 0.65)
		},
	},
	{
		ID: "fig3c-sender-copy-dominates", Sources: []string{"fig3c"}, Severity: Gate,
		Claim: "With all optimizations, data copy is the sender's largest CPU category (§3.1, Fig. 3c).",
		Eval: func(e *E) {
			e.DominantCategory("all-opt sender", "fig3c", "data_copy", "+aRFS (all)")
			e.Band("all-opt sender data_copy share", e.V("fig3c", "data_copy", "+aRFS (all)"), 0.4, 0.6)
		},
	},
	{
		ID: "fig3d-receiver-copy-half", Sources: []string{"fig3d"}, Severity: Gate,
		Claim: "With all optimizations, data copy consumes about half of receiver cycles (§3.1, Fig. 3d).",
		Eval: func(e *E) {
			e.DominantCategory("all-opt receiver", "fig3d", "data_copy", "+aRFS (all)")
			e.Band("all-opt receiver data_copy share", e.V("fig3d", "data_copy", "+aRFS (all)"), 0.45, 0.65)
		},
	},
	{
		ID: "fig3e-ring-buffer-tradeoff", Sources: []string{"fig3e"}, Severity: Gate,
		Claim: "Cache miss rate rises with ring size; a 3200KB buffer with the smallest ring is the throughput optimum (§3.1, Fig. 3e).",
		Eval: func(e *E) {
			rings := []string{"128", "256", "512", "1024", "2048", "4096", "8192"}
			miss := make([]float64, len(rings))
			for i, r := range rings {
				miss[i] = e.V("fig3e", "miss-rate", "3200KB", r)
			}
			e.MonotoneUp("3200KB miss rate over ring sizes", miss...)
			best := e.V("fig3e", "thpt-gbps", "3200KB", "128")
			e.AtLeast("3200KB/128 margin over best alternative", best-colMax(e, "fig3e", "thpt-gbps"), 0)
			e.Within("3200KB/128 thpt (Gbps)", best, 55, 0.15)
		},
	},
	{
		ID: "fig3f-latency-blowup", Sources: []string{"fig3f"}, Severity: Gate,
		Claim: "NAPI-to-copy latency grows monotonically with Rx buffer size and reaches milliseconds beyond 1600KB (§3.1, Fig. 3f).",
		Eval: func(e *E) {
			bufs := []string{"100", "200", "400", "800", "1600", "3200", "6400", "12800"}
			avg := make([]float64, len(bufs))
			for i, b := range bufs {
				avg[i] = e.V("fig3f", "avg-latency", b)
			}
			e.MonotoneUp("avg latency over buffer sizes", avg...)
			e.AtLeast("3200KB / 800KB avg latency ratio",
				e.V("fig3f", "avg-latency", "3200")/e.V("fig3f", "avg-latency", "800"), 5)
			e.AtLeast("p99 latency at 12800KB (s)", e.V("fig3f", "p99-latency", "12800"), 1e-3)
		},
	},
	// ------------------------------------------------------------- Fig. 4
	{
		ID: "fig4-numa-penalty", Sources: []string{"fig4"}, Severity: Gate,
		Claim: "NIC-remote NUMA placement costs roughly a fifth of throughput-per-core and drives the cache miss rate to ~100% (§3.1, Fig. 4).",
		Eval: func(e *E) {
			local := e.V("fig4", "thpt-per-core", "NIC-local NUMA")
			remote := e.V("fig4", "thpt-per-core", "NIC-remote NUMA")
			e.Band("remote tpc drop fraction", 1-remote/local, 0.08, 0.30)
			e.AtLeast("remote miss rate", e.V("fig4", "miss-rate", "NIC-remote NUMA"), 0.95)
			e.AtMost("local miss rate", e.V("fig4", "miss-rate", "NIC-local NUMA"), 0.8)
		},
	},
	// ------------------------------------------------------------- Fig. 5
	{
		ID: "fig5a-tpc-decay", Sources: []string{"fig5a"}, Severity: Gate,
		Claim: "One-to-one throughput-per-core falls ~64% from 1 to 24 flows even with one flow per core; the link saturates from 8 flows (§3.2, Fig. 5a).",
		Eval: func(e *E) {
			tpc := column(e, "fig5a", "+arfs", "1", "8", "16", "24")
			e.MonotoneDown("aRFS tpc over flow counts", tpc...)
			e.Band("tpc drop fraction 1->24", 1-tpc[3]/tpc[0], 0.45, 0.75)
			e.AtLeast("total thpt @ 8 flows (Gbps)", e.V("fig5a", "total-thpt(all)", "8"), 95)
		},
	},
	{
		ID: "fig5b-sender-sched-rises", Sources: []string{"fig5b"}, Severity: Gate,
		Claim: "As flows multiply, the sender's data-copy share falls and its scheduling share rises (§3.2, Fig. 5b).",
		Eval: func(e *E) {
			e.AtLeast("sched share growth 1->24", e.V("fig5b", "sched", "24")/e.V("fig5b", "sched", "1"), 1.3)
			e.AtMost("data_copy share ratio 24/1", e.V("fig5b", "data_copy", "24")/e.V("fig5b", "data_copy", "1"), 0.7)
		},
	},
	{
		ID: "fig5c-receiver-shares-shift", Sources: []string{"fig5c"}, Severity: Gate,
		Claim: "On the receiver, memory-management share falls (page recycling) while scheduling share rises with flow count (§3.2, Fig. 5c).",
		Eval: func(e *E) {
			e.AtMost("memory share ratio 24/1", e.V("fig5c", "memory", "24")/e.V("fig5c", "memory", "1"), 0.7)
			e.AtLeast("sched share growth 1->24", e.V("fig5c", "sched", "24")/e.V("fig5c", "sched", "1"), 2)
			e.AtMost("data_copy share ratio 24/1", e.V("fig5c", "data_copy", "24")/e.V("fig5c", "data_copy", "1"), 0.7)
		},
	},
	// ------------------------------------------------------------- Fig. 6
	{
		ID: "fig6a-incast-drop", Sources: []string{"fig6a"}, Severity: Gate,
		Claim: "Incast costs ~19% throughput-per-core at 8 flows versus a single flow (§3.2, Fig. 6a).",
		Eval: func(e *E) {
			tpc1, tpc8 := e.V("fig6a", "thpt-per-core", "1"), e.V("fig6a", "thpt-per-core", "8")
			e.Band("tpc drop fraction 1->8", 1-tpc8/tpc1, 0.10, 0.30)
			e.AtMost("tpc @ 16 vs @ 8", e.V("fig6a", "thpt-per-core", "16")-tpc8, 0)
			e.AtLeast("tpc floor @ 24", e.V("fig6a", "thpt-per-core", "24"), 30)
		},
	},
	{
		ID: "fig6a-monotone-paper", Sources: []string{"fig6a"}, Severity: Advisory,
		Claim: "Paper: incast throughput-per-core decreases monotonically with flow count. Model diverges: tpc rebounds slightly at 24 flows (see EXPERIMENTS.md).",
		Eval: func(e *E) {
			e.MonotoneDown("incast tpc over flow counts",
				column(e, "fig6a", "thpt-per-core", "1", "8", "16", "24")...)
		},
	},
	{
		ID: "fig6b-breakdown-stable", Sources: []string{"fig6b"}, Severity: Gate,
		Claim: "Under incast the receiver breakdown shows no categorical shift: data copy stays dominant at every flow count (§3.2, Fig. 6b).",
		Eval: func(e *E) {
			for _, f := range []string{"1", "8", "16", "24"} {
				e.DominantCategory("incast receiver @ "+f+" flows", "fig6b", "data_copy", f)
			}
		},
	},
	{
		ID: "fig6c-miss-climbs", Sources: []string{"fig6c"}, Severity: Gate,
		Claim: "The incast cache miss rate climbs sharply from 1 to 8 flows, tracking the throughput-per-core loss (§3.2, Fig. 6c).",
		Eval: func(e *E) {
			m1 := e.V("fig6c", "miss-rate", "1")
			e.AtLeast("miss rate growth 1->8", e.V("fig6c", "miss-rate", "8")-m1, 0.2)
			e.Band("single-flow miss rate", m1, 0.5, 0.75)
		},
	},
	// ------------------------------------------------------------- Fig. 7
	{
		ID: "fig7a-outcast-pipeline", Sources: []string{"fig7a", "fig6a"}, Severity: Gate,
		Claim: "The sender pipeline reaches ~89 Gbps per core at 8 outcast flows, about twice the incast receiver's efficiency (§3.2, Fig. 7a).",
		Eval: func(e *E) {
			out8 := e.V("fig7a", "+arfs", "8")
			e.Within("outcast tpc @ 8 flows (Gbps)", out8, 89, 0.15)
			e.AtLeast("outcast/incast tpc ratio @ 8", out8/e.V("fig6a", "thpt-per-core", "8"), 1.8)
		},
	},
	{
		ID: "fig7b-sender-copy-dominant", Sources: []string{"fig7b"}, Severity: Gate,
		Claim: "Data copy remains the sender's dominant consumer at every outcast flow count (§3.2, Fig. 7b).",
		Eval: func(e *E) {
			for _, f := range []string{"1", "8", "16", "24"} {
				e.DominantCategory("outcast sender @ "+f+" flows", "fig7b", "data_copy", f)
			}
		},
	},
	{
		ID: "fig7c-sender-saturates", Sources: []string{"fig7c"}, Severity: Gate,
		Claim: "The outcast sender core is underutilized at 1 flow and saturated from 8 flows on (§3.2, Fig. 7c).",
		Eval: func(e *E) {
			e.Band("sender cpu @ 1 flow", e.V("fig7c", "sender-cpu", "1"), 0.35, 0.7)
			for _, f := range []string{"8", "16", "24"} {
				e.AtLeast("sender cpu @ "+f+" flows", e.V("fig7c", "sender-cpu", f), 0.99)
			}
		},
	},
	// ------------------------------------------------------------- Fig. 8
	{
		ID: "fig8a-alltoall-collapse", Sources: []string{"fig8a"}, Severity: Gate,
		Claim: "All-to-all throughput-per-core decreases monotonically with grid size, losing ~67% from 1x1 to 24x24 (§3.2, Fig. 8a).",
		Eval: func(e *E) {
			tpc := column(e, "fig8a", "thpt-per-core", "1x1", "8x8", "16x16", "24x24")
			e.MonotoneDown("tpc over grid sizes", tpc...)
			e.Band("tpc drop fraction 1x1->24x24", 1-tpc[3]/tpc[0], 0.5, 0.8)
		},
	},
	{
		ID: "fig8b-category-shift", Sources: []string{"fig8b"}, Severity: Gate,
		Claim: "All-to-all shifts receiver cycles from memory into TCP/IP (smaller skbs) and scheduling (§3.2, Fig. 8b).",
		Eval: func(e *E) {
			e.AtLeast("tcp/ip share growth 1x1->24x24", e.V("fig8b", "tcp/ip", "24x24")/e.V("fig8b", "tcp/ip", "1x1"), 1.8)
			e.AtMost("memory share ratio 24x24/1x1", e.V("fig8b", "memory", "24x24")/e.V("fig8b", "memory", "1x1"), 0.7)
			e.AtLeast("sched share growth 1x1->24x24", e.V("fig8b", "sched", "24x24")/e.V("fig8b", "sched", "1x1"), 3)
		},
	},
	{
		ID: "fig8c-skb-collapse", Sources: []string{"fig8c"}, Severity: Gate,
		Claim: "The 64KB post-GRO skb share collapses to zero and average skb size falls monotonically as the grid grows (§3.2, Fig. 8c).",
		Eval: func(e *E) {
			e.AtLeast("64KB share @ 1x1", e.V("fig8c", "64KB-share", "1x1"), 0.6)
			for _, g := range []string{"8x8", "16x16", "24x24"} {
				e.AtMost("64KB share @ "+g, e.V("fig8c", "64KB-share", g), 0.05)
			}
			e.MonotoneDown("avg skb size over grid sizes",
				column(e, "fig8c", "avg-skb-KB", "1x1", "8x8", "16x16", "24x24")...)
		},
	},
	// ------------------------------------------------------------- Fig. 9
	{
		ID: "fig9a-retransmits", Sources: []string{"fig9a"}, Severity: Gate,
		Claim: "Retransmissions grow monotonically with the loss rate, and heavy loss costs total throughput (§3.3, Fig. 9a).",
		Eval: func(e *E) {
			e.MonotoneUp("retransmits over loss rates",
				column(e, "fig9a", "retransmits", "0", "1.5e-04", "1.5e-03", "1.5e-02")...)
			e.AtLeast("retransmits @ 1.5e-02", e.V("fig9a", "retransmits", "1.5e-02"), 100)
			e.AtMost("total thpt ratio @ 1.5e-02 vs lossless",
				e.V("fig9a", "total-thpt", "1.5e-02")/e.V("fig9a", "total-thpt", "0"), 0.95)
		},
	},
	{
		ID: "fig9a-tpc-paper", Sources: []string{"fig9a"}, Severity: Advisory,
		Claim: "Paper: throughput-per-core drops ~24% at 0.015 loss. Model diverges: simulated cache-hit relief outweighs protocol overheads, so tpc does not fall (see EXPERIMENTS.md).",
		Eval: func(e *E) {
			e.AtMost("tpc ratio @ 1.5e-02 vs lossless",
				e.V("fig9a", "thpt-per-core", "1.5e-02")/e.V("fig9a", "thpt-per-core", "0"), 0.9)
		},
	},
	{
		ID: "fig9b-loss-relieves-receiver", Sources: []string{"fig9b"}, Severity: Gate,
		Claim: "At heavy loss the receiver drops below saturation and its cache miss rate collapses (§3.3, Fig. 9b).",
		Eval: func(e *E) {
			e.AtLeast("receiver cpu @ lossless", e.V("fig9b", "receiver-cpu", "0"), 0.99)
			e.AtMost("receiver cpu @ 1.5e-02", e.V("fig9b", "receiver-cpu", "1.5e-02"), 0.8)
			e.AtMost("miss rate @ 1.5e-02", e.V("fig9b", "miss-rate", "1.5e-02"), 0.2)
		},
	},
	{
		ID: "fig9c-sender-loss-overheads", Sources: []string{"fig9c"}, Severity: Gate,
		Claim: "Loss inflates the sender's netdev and TCP/IP shares (retransmissions, ACK processing) (§3.3, Fig. 9c).",
		Eval: func(e *E) {
			e.AtLeast("netdev share growth lossless->1.5e-02", e.V("fig9c", "netdev", "1.5e-02")/e.V("fig9c", "netdev", "0"), 1.2)
			e.AtLeast("tcp/ip share growth lossless->1.5e-02", e.V("fig9c", "tcp/ip", "1.5e-02")/e.V("fig9c", "tcp/ip", "0"), 1.03)
		},
	},
	{
		ID: "fig9d-dupack-tcp-share", Sources: []string{"fig9d"}, Severity: Gate,
		Claim: "Dup-ACK generation raises the receiver's TCP/IP share substantially at 0.015 loss (paper: 4.9x; model: ~1.7x) (§3.3, Fig. 9d).",
		Eval: func(e *E) {
			e.Band("tcp/ip share growth lossless->1.5e-02",
				e.V("fig9d", "tcp/ip", "1.5e-02")/e.V("fig9d", "tcp/ip", "0"), 1.3, 2.5)
		},
	},
	{
		ID: "fig9d-tcp-growth-paper", Sources: []string{"fig9d"}, Severity: Advisory,
		Claim: "Paper: the receiver TCP/IP share grows 4.9x at 0.015 loss. Model diverges: growth is ~1.7x because simulated dup-ACK costs are milder (see EXPERIMENTS.md).",
		Eval: func(e *E) {
			e.AtLeast("tcp/ip share growth lossless->1.5e-02",
				e.V("fig9d", "tcp/ip", "1.5e-02")/e.V("fig9d", "tcp/ip", "0"), 4)
		},
	},
	// ------------------------------------------------------------ Fig. 10
	{
		ID: "fig10a-rpc-scaling", Sources: []string{"fig10a"}, Severity: Gate,
		Claim: "RPC throughput-per-core grows with RPC size (~6 Gbps/core one-way at 4KB) while the RPC rate falls (§3.4, Fig. 10a).",
		Eval: func(e *E) {
			sizes := []string{"4", "16", "32", "64"}
			e.MonotoneUp("tpc over RPC sizes", column(e, "fig10a", "thpt-per-core", sizes...)...)
			e.MonotoneDown("RPC rate over RPC sizes", column(e, "fig10a", "rpcs-per-sec", sizes...)...)
			e.Within("tpc @ 4KB (Gbps)", e.V("fig10a", "thpt-per-core", "4"), 6, 0.25)
		},
	},
	{
		ID: "fig10b-small-rpc-not-copy", Sources: []string{"fig10b"}, Severity: Gate,
		Claim: "At 4KB RPCs data copy is NOT the dominant overhead (TCP/IP and scheduling are); by 64KB it is (§3.4, Fig. 10b).",
		Eval: func(e *E) {
			copy4 := e.V("fig10b", "data_copy", "4")
			e.AtLeast("tcp/ip margin over copy @ 4KB", e.V("fig10b", "tcp/ip", "4")-copy4, 0.1)
			e.AtLeast("sched margin over copy @ 4KB", e.V("fig10b", "sched", "4")-copy4, 0.05)
			e.DominantCategory("RPC server @ 64KB", "fig10b", "data_copy", "64")
		},
	},
	{
		ID: "fig10c-rpc-numa-insensitive", Sources: []string{"fig10c", "fig4"}, Severity: Gate,
		Claim: "Unlike long flows, 4KB RPC throughput barely changes on NIC-remote NUMA (§3.4, Fig. 10c).",
		Eval: func(e *E) {
			rpcDrop := 1 - e.V("fig10c", "thpt-per-core", "NIC-remote NUMA")/e.V("fig10c", "thpt-per-core", "NIC-local NUMA")
			longDrop := 1 - e.V("fig4", "thpt-per-core", "NIC-remote NUMA")/e.V("fig4", "thpt-per-core", "NIC-local NUMA")
			e.AtMost("RPC remote tpc drop fraction", rpcDrop, 0.15)
			e.AtLeast("long-flow drop minus RPC drop", longDrop-rpcDrop, 0.03)
		},
	},
	// ------------------------------------------------------------ Fig. 11
	{
		ID: "fig11a-mixed-degradation", Sources: []string{"fig11a"}, Severity: Gate,
		Claim: "Colocated short flows progressively starve the long flow; 16 shorts cost ~43% of per-core throughput (§3.4, Fig. 11a).",
		Eval: func(e *E) {
			shorts := []string{"0", "1", "4", "16"}
			e.MonotoneDown("long-flow Gbps over short counts", column(e, "fig11a", "long-flow-gbps", shorts...)...)
			e.MonotoneUp("short-flow Gbps over short counts", column(e, "fig11a", "short-gbps(one-way)", shorts...)...)
			e.Band("tpc drop fraction 0->16 shorts",
				1-e.V("fig11a", "thpt-per-core", "16")/e.V("fig11a", "thpt-per-core", "0"), 0.3, 0.55)
		},
	},
	{
		ID: "fig11b-shares-shift", Sources: []string{"fig11b"}, Severity: Gate,
		Claim: "Copy stays the receiver's largest category under mixed load, but TCP/IP and scheduling shares grow with the short-flow count (§3.4, Fig. 11b).",
		Eval: func(e *E) {
			e.DominantCategory("mixed receiver @ 16 shorts", "fig11b", "data_copy", "16")
			e.AtLeast("sched share growth 0->16", e.V("fig11b", "sched", "16")/e.V("fig11b", "sched", "0"), 3)
			e.AtLeast("tcp/ip share growth 0->16", e.V("fig11b", "tcp/ip", "16")/e.V("fig11b", "tcp/ip", "0"), 1.5)
		},
	},
	// ------------------------------------------------------------ Fig. 12
	{
		ID: "fig12a-dca-iommu-penalties", Sources: []string{"fig12a"}, Severity: Gate,
		Claim: "Disabling DCA costs ~19% of throughput-per-core and enabling the IOMMU ~26% (§3.5, Fig. 12a).",
		Eval: func(e *E) {
			e.Band("DCA-disabled tpc delta", e.V("fig12a", "vs-default", "DCA Disabled"), -0.30, -0.08)
			e.Band("IOMMU-enabled tpc delta", e.V("fig12a", "vs-default", "IOMMU Enabled"), -0.40, -0.15)
		},
	},
	{
		ID: "fig12b-iommu-sender-memory", Sources: []string{"fig12b"}, Severity: Gate,
		Claim: "The IOMMU inflates the sender's memory-management share past every other category (§3.5, Fig. 12b).",
		Eval: func(e *E) {
			e.AtLeast("IOMMU/default memory share ratio",
				e.V("fig12b", "memory", "IOMMU Enabled")/e.V("fig12b", "memory", "Default"), 2.5)
			e.DominantCategory("IOMMU sender", "fig12b", "memory", "IOMMU Enabled")
		},
	},
	{
		ID: "fig12c-iommu-receiver-memory", Sources: []string{"fig12c"}, Severity: Gate,
		Claim: "With the IOMMU, memory management reaches ~30% of receiver cycles (§3.5, Fig. 12c).",
		Eval: func(e *E) {
			e.Band("IOMMU receiver memory share", e.V("fig12c", "memory", "IOMMU Enabled"), 0.25, 0.45)
			e.AtLeast("IOMMU/default memory share ratio",
				e.V("fig12c", "memory", "IOMMU Enabled")/e.V("fig12c", "memory", "Default"), 2.5)
		},
	},
	// ------------------------------------------------------------ Fig. 13
	{
		ID: "fig13a-cc-insensitive", Sources: []string{"fig13a"}, Severity: Gate,
		Claim: "Congestion control choice barely moves single-flow throughput-per-core: the bottleneck is the receiver's host stack (§3.6, Fig. 13a).",
		Eval: func(e *E) {
			hi, lo := colMax(e, "fig13a", "thpt-per-core"), colMin(e, "fig13a", "thpt-per-core")
			e.AtMost("tpc spread across protocols", (hi-lo)/hi, 0.05)
		},
	},
	{
		ID: "fig13b-bbr-pacing-sched", Sources: []string{"fig13b"}, Severity: Gate,
		Claim: "BBR pays extra scheduling cycles for pacing-timer wakeups on the sender (§3.6, Fig. 13b).",
		Eval: func(e *E) {
			e.AtLeast("bbr/cubic sender sched share ratio",
				e.V("fig13b", "sched", "bbr")/e.V("fig13b", "sched", "cubic"), 1.5)
		},
	},
	{
		ID: "fig13c-receiver-identical", Sources: []string{"fig13c"}, Severity: Gate,
		Claim: "Receiver-side breakdowns are nearly identical across congestion control protocols (§3.6, Fig. 13c).",
		Eval: func(e *E) {
			for _, col := range []string{"data_copy", "tcp/ip", "sched"} {
				e.AtMost("|bbr-cubic| "+col+" share gap",
					math.Abs(e.V("fig13c", col, "bbr")-e.V("fig13c", col, "cubic")), 0.01)
			}
		},
	},
	// ------------------------------------------------------------ Table 2
	{
		ID: "table2-steering", Sources: []string{"table2"}, Severity: Gate,
		Claim: "RSS hashes the 4-tuple onto an arbitrary core while aRFS always selects the application's core (§2.1, Table 2).",
		Eval: func(e *E) {
			for _, flow := range []string{"1", "2", "3", "4"} {
				e.True("aRFS matches app core, flow "+flow, e.Cell("table2", "aRFS==app", flow) == "true")
				e.True("RSS differs from app core, flow "+flow,
					e.Cell("table2", "RSS(hash)", flow) != e.Cell("table2", "app-core", flow))
				e.True("worst-case pin is a fixed core, flow "+flow, e.Cell("table2", "worst-case pin", flow) == "6")
			}
		},
	},
	// ---------------------------------------------------------- Extensions
	{
		ID: "ext1-arfs-wins-per-core", Sources: []string{"ext1"}, Severity: Gate,
		Claim: "aRFS wins per-core efficiency (one warm core does IRQ+TCP+app); plain RSS pipelines across cores for higher total but lower per-core throughput (§2.1).",
		Eval: func(e *E) {
			arfs := e.V("ext1", "thpt-per-core", "arfs")
			e.AtLeast("arfs margin over best alternative", arfs-colMax(e, "ext1", "thpt-per-core"), 0)
			e.AtLeast("worst-pin deficit to minimum", colMin(e, "ext1", "thpt-per-core")-e.V("ext1", "thpt-per-core", "worst"), 0)
			e.Band("arfs receiver busy cores", e.V("ext1", "rcv-busy-cores", "arfs"), 0.99, 1.01)
			e.AtLeast("rss total-thpt margin over arfs", e.V("ext1", "total-thpt", "rss")-e.V("ext1", "total-thpt", "arfs"), 10)
		},
	},
	{
		ID: "ext2-zerocopy-asymmetry", Sources: []string{"ext2"}, Severity: Gate,
		Claim: "Sender-side zero-copy halves sender CPU but cannot raise a receiver-bound flow's throughput; receiver-side zero-copy removes the dominant overhead (§4).",
		Eval: func(e *E) {
			base := e.V("ext2", "thpt-per-core", "baseline (copies)")
			e.AtMost("tx-ZC tpc deviation from baseline",
				math.Abs(e.V("ext2", "thpt-per-core", "MSG_ZEROCOPY (tx)")-base)/base, 0.05)
			e.AtMost("tx-ZC sender busy ratio",
				e.V("ext2", "snd-busy", "MSG_ZEROCOPY (tx)")/e.V("ext2", "snd-busy", "baseline (copies)"), 0.75)
			e.AtLeast("rx-ZC tpc gain over baseline", e.V("ext2", "thpt-per-core", "mmap receive (rx)")/base, 1.25)
			e.AtMost("rx-ZC residual copy share", e.V("ext2", "rcv-copy-share", "mmap receive (rx)"), 0.01)
		},
	},
	{
		ID: "ext3-segregation-restores", Sources: []string{"ext3"}, Severity: Gate,
		Claim: "Scheduling long-flow and short-flow applications on separate cores restores each class to near its isolated efficiency (§4).",
		Eval: func(e *E) {
			e.AtLeast("segregated/shared long-flow ratio",
				e.V("ext3", "long-gbps", "segregated cores (§4)")/e.V("ext3", "long-gbps", "shared core (Fig. 11)"), 1.5)
			e.AtLeast("segregated/shared short-flow ratio",
				e.V("ext3", "short-gbps(one-way)", "segregated cores (§4)")/e.V("ext3", "short-gbps(one-way)", "shared core (Fig. 11)"), 1.5)
		},
	},
	{
		ID: "ext4-link-bottleneck-flip", Sources: []string{"ext4"}, Severity: Gate,
		Claim: "A single core saturates 10-40G links; from 100G on, the host CPU is the bottleneck (§1, §3.1).",
		Eval: func(e *E) {
			for _, link := range []string{"10G", "25G", "40G"} {
				e.Band("link utilization @ "+link, e.V("ext4", "link-utilization", link), 0.95, 1.0)
				e.True("bottleneck is the link @ "+link, e.Cell("ext4", "bottleneck", link) == "link")
			}
			e.AtMost("link utilization @ 100G", e.V("ext4", "link-utilization", "100G"), 0.6)
			for _, link := range []string{"100G", "200G", "400G"} {
				e.True("bottleneck is host CPU @ "+link, e.Cell("ext4", "bottleneck", link) == "host CPU")
			}
		},
	},
	{
		ID: "ext5-saturated-fairness", Sources: []string{"ext5"}, Severity: Gate,
		Claim: "At saturation, throughput is shared fairly among flows: Jain's index stays near 1 for every traffic pattern (§3.2).",
		Eval: func(e *E) {
			e.AtLeast("minimum fairness index across patterns", colMin(e, "ext5", "fairness"), 0.99)
		},
	},
	{
		ID: "ext6-dca-aware-autotuning", Sources: []string{"ext6"}, Severity: Gate,
		Claim: "Capping receive autotuning at the DDIO capacity recovers most of the hand-tuned window's gain without manual parameters (§4).",
		Eval: func(e *E) {
			aware := e.V("ext6", "thpt-per-core", "DCA-aware DRS")
			e.AtLeast("DCA-aware/default tpc ratio", aware/e.V("ext6", "thpt-per-core", "default DRS (to 6MB)"), 1.15)
			e.AtLeast("DCA-aware fraction of hand-tuned tpc", aware/e.V("ext6", "thpt-per-core", "hand-tuned 3200KB"), 0.85)
		},
	},
	{
		ID: "ext7-receiver-driven", Sources: []string{"ext7"}, Severity: Gate,
		Claim: "Receiver-driven scheduling that bounds concurrent senders restores cache hits and per-core throughput under incast (§3.3, §4).",
		Eval: func(e *E) {
			plain := e.V("ext7", "thpt-per-core", "none (plain TCP)")
			e.AtLeast("K=1 / plain-TCP tpc ratio", e.V("ext7", "thpt-per-core", "K=1 active flow")/plain, 1.2)
			e.AtMost("K=1 minus plain-TCP miss-rate gap", e.V("ext7", "miss-rate", "K=1 active flow")-e.V("ext7", "miss-rate", "none (plain TCP)"), -0.3)
			e.AtLeast("minimum fairness under rotation", colMin(e, "ext7", "fairness"), 0.98)
		},
	},
	// ----------------------------------------------------------- Ablations
	{
		ID: "abl1-cache-hazard", Sources: []string{"abl1"}, Severity: Gate,
		Claim: "Fig. 3e's ring-size sensitivity requires the cache-occupancy hazard: without it a large ring no longer hurts, and doubling it is catastrophic.",
		Eval: func(e *E) {
			e.AtMost("miss rate with hazard off", e.V("abl1", "miss-rate", "off"), 0.1)
			e.Band("miss rate at default hazard", e.V("abl1", "miss-rate", "default (0.035)"), 0.3, 0.65)
			e.AtLeast("miss rate at 2x hazard", e.V("abl1", "miss-rate", "2x (0.07)"), 0.75)
			e.MonotoneDown("throughput over hazard strengths",
				e.V("abl1", "thpt-gbps", "off"), e.V("abl1", "thpt-gbps", "default (0.035)"), e.V("abl1", "thpt-gbps", "2x (0.07)"))
		},
	},
	{
		ID: "abl2-tsq-budget", Sources: []string{"abl2"}, Severity: Gate,
		Claim: "TSQ bounds per-flow egress bursts: growing the budget never shrinks all-to-all skb sizes (§3.2 mechanism).",
		Eval: func(e *E) {
			e.MonotoneUp("avg skb size over TSQ budgets",
				e.V("abl2", "avg-skb-KB", "64KB"), e.V("abl2", "avg-skb-KB", "256KB (default)"), e.V("abl2", "avg-skb-KB", "16MB (effectively off)"))
			e.AtLeast("16MB minus 64KB tpc gap", e.V("abl2", "thpt-per-core", "16MB (effectively off)")-e.V("abl2", "thpt-per-core", "64KB"), 0)
		},
	},
	{
		ID: "abl3-irq-moderation", Sources: []string{"abl3"}, Severity: Gate,
		Claim: "GRO batching depends on IRQ coalescing: tiny moderation delays shrink aggregates and cost throughput-per-core.",
		Eval: func(e *E) {
			e.MonotoneUp("tpc over moderation delays",
				e.V("abl3", "thpt-per-core", "1us"), e.V("abl3", "thpt-per-core", "12us (default)"), e.V("abl3", "thpt-per-core", "50us"))
			e.AtMost("1us minus default 64KB-share gap",
				e.V("abl3", "64KB-share", "1us")-e.V("abl3", "64KB-share", "12us (default)"), -0.05)
		},
	},
	{
		ID: "abl4-sched-granularity", Sources: []string{"abl4"}, Severity: Gate,
		Claim: "Fig. 11's long/short split hinges on wakeup batching: finer scheduler granularity starves the bulk flow, coarser granularity throttles the RPCs.",
		Eval: func(e *E) {
			e.MonotoneUp("long-flow Gbps over granularities",
				e.V("abl4", "long-gbps", "25us"), e.V("abl4", "long-gbps", "250us (default)"), e.V("abl4", "long-gbps", "1ms"))
			e.MonotoneDown("short-flow Gbps over granularities",
				e.V("abl4", "short-gbps", "25us"), e.V("abl4", "short-gbps", "250us (default)"), e.V("abl4", "short-gbps", "1ms"))
		},
	},
	{
		ID: "abl5-pageset-recycling", Sources: []string{"abl5"}, Severity: Gate,
		Claim: "Fig. 5c's falling memory share requires per-core pageset recycling; without it every page hits the global allocator and throughput falls.",
		Eval: func(e *E) {
			e.AtLeast("disabled/default memory share ratio",
				e.V("abl5", "rcv-memory-share", "disabled")/e.V("abl5", "rcv-memory-share", "512 pages (default)"), 2)
			e.AtMost("disabled minus default tpc gap",
				e.V("abl5", "thpt-per-core", "disabled")-e.V("abl5", "thpt-per-core", "512 pages (default)"), -2)
		},
	},
	// ------------------------------------------------------------ Appendix
	{
		ID: "app1-incast-sender", Sources: []string{"app1"}, Severity: Gate,
		Claim: "The incast sender's breakdown stays copy-dominated at every flow count (Fig. 6 companion, [7]).",
		Eval: func(e *E) {
			for _, f := range []string{"1", "8", "16", "24"} {
				e.DominantCategory("incast sender @ "+f+" flows", "app1", "data_copy", f)
			}
		},
	},
	{
		ID: "app2-outcast-receiver", Sources: []string{"app2"}, Severity: Gate,
		Claim: "The outcast receivers stay copy-dominated; spreading flows raises their memory-management share (Fig. 7 companion, [7]).",
		Eval: func(e *E) {
			for _, f := range []string{"1", "8", "16", "24"} {
				e.DominantCategory("outcast receiver @ "+f+" flows", "app2", "data_copy", f)
			}
			e.AtLeast("memory share growth 1->8", e.V("app2", "memory", "8")/e.V("app2", "memory", "1"), 1.5)
		},
	},
	{
		ID: "app3-client-mirrors-server", Sources: []string{"app3"}, Severity: Gate,
		Claim: "RPC clients mirror the server's shift from protocol+scheduling overhead to data copy as RPCs grow (Fig. 10 companion, [7]).",
		Eval: func(e *E) {
			e.MonotoneUp("client copy share over RPC sizes", column(e, "app3", "data_copy", "4", "16", "32", "64")...)
			e.AtLeast("tcp/ip margin over copy @ 4KB", e.V("app3", "tcp/ip", "4")-e.V("app3", "data_copy", "4"), 0.1)
		},
	},
	{
		ID: "app4-client-shift", Sources: []string{"app4"}, Severity: Gate,
		Claim: "On the mixed workload's client, scheduling share grows and copy share falls as short flows are added (Fig. 11 companion, [7]).",
		Eval: func(e *E) {
			shorts := []string{"0", "1", "4", "16"}
			e.MonotoneUp("client sched share over short counts", column(e, "app4", "sched", shorts...)...)
			e.MonotoneDown("client copy share over short counts", column(e, "app4", "data_copy", shorts...)...)
		},
	},
	{
		ID: "app5-alltoall-sender", Sources: []string{"app5"}, Severity: Gate,
		Claim: "All-to-all senders pay growing scheduling overhead with thread count per core, at the expense of copy share (Fig. 8 companion, [7], §3.5).",
		Eval: func(e *E) {
			e.AtLeast("sched share growth 1x1->8x8", e.V("app5", "sched", "8x8")/e.V("app5", "sched", "1x1"), 2.5)
			e.AtMost("copy share ratio 8x8/1x1", e.V("app5", "data_copy", "8x8")/e.V("app5", "data_copy", "1x1"), 0.7)
		},
	},
	// ------------------------------------------------------- Switch fabric
	{
		ID: "fab1-incast-collapse", Sources: []string{"fab1", "fab2"}, Severity: Gate,
		Claim: "On the switch fabric, per-flow throughput collapses as incast senders (and outcast receivers) multiply, while aggregate throughput saturates the hot host's link (§3.4, §3.5).",
		Eval: func(e *E) {
			hosts := []string{"2", "4", "8", "16", "64"}
			e.MonotoneDown("incast per-flow over host counts", column(e, "fab1", "per-flow", hosts...)...)
			e.MonotoneDown("outcast per-flow over host counts", column(e, "fab2", "per-flow", hosts...)...)
			e.AtLeast("64-host incast aggregate", e.V("fab1", "total-thpt", "64"), 90)
			e.AtLeast("64-host outcast aggregate", e.V("fab2", "total-thpt", "64"), 90)
			e.AtLeast("64-host incast fairness", e.V("fab1", "fairness", "64"), 0.9)
		},
	},
	{
		ID: "fab3-alltoall-scaling", Sources: []string{"fab3"}, Severity: Gate,
		Claim: "All-to-all aggregate throughput grows with the host count — no single port is oversubscribed — and stays fairly shared (§3.5, §3.2).",
		Eval: func(e *E) {
			e.MonotoneUp("aggregate over host counts", column(e, "fab3", "total-thpt", "2", "4", "8")...)
			e.AtLeast("fairness floor", colMin(e, "fab3", "fairness"), 0.9)
		},
	},
	{
		ID: "fab4-shared-buffer", Sources: []string{"fab4"}, Severity: Gate,
		Claim: "The unbounded switch pool never drops; every bounded pool drops under 15:1 incast, a sliver of buffer costs goodput, and DCTCP with an unbounded pool marks instead of dropping (§3.4, §5).",
		Eval: func(e *E) {
			e.Within("unbounded pool drops", e.V("fab4", "buf-drops", "cubic", "0"), 0, 0)
			for _, kb := range []string{"4096", "1024", "256", "64"} {
				e.AtLeast("drops with "+kb+"KB pool", e.V("fab4", "buf-drops", "cubic", kb), 1)
			}
			e.AtMost("64KB/unbounded goodput ratio",
				e.V("fab4", "total-thpt", "cubic", "64")/e.V("fab4", "total-thpt", "cubic", "0"), 0.75)
			e.Within("DCTCP unbounded drops", e.V("fab4", "buf-drops", "dctcp", "0"), 0, 0)
			e.AtLeast("DCTCP CE marks", e.V("fab4", "marked", "dctcp", "0"), 1000)
			e.AtLeast("DCTCP unbounded goodput", e.V("fab4", "total-thpt", "dctcp", "0"), 90)
		},
	},
	{
		ID: "fab5-microbursts", Sources: []string{"fab5"}, Severity: Gate,
		Claim: "Incast microbursts live in the switch queue: shrinking the shared buffer clips peak backlog and hop latency monotonically, a pool below the burst threshold cannot burst at all, and the unbounded hot port saturates its line (§3.4).",
		Eval: func(e *E) {
			ladder := []string{"0", "1024", "256", "64"}
			e.MonotoneDown("peak backlog over the buffer ladder", column(e, "fab5", "peak-backlog-kb", ladder...)...)
			e.MonotoneDown("hop p99 over the buffer ladder", column(e, "fab5", "hop-p99-us", ladder...)...)
			for _, kb := range []string{"0", "1024", "256"} {
				e.AtLeast("bursts with "+kb+"KB pool", e.V("fab5", "bursts", kb), 1)
			}
			e.Within("bursts with a sub-threshold 64KB pool", e.V("fab5", "bursts", "64"), 0, 0)
			e.AtLeast("unbounded burst depth exceeds every bound", e.V("fab5", "peak-backlog-kb", "0"), 4096)
			e.AtLeast("unbounded hot-port utilization", e.V("fab5", "port0-util", "0"), 0.99)
		},
	},
	{
		ID: "fab6-attribution", Sources: []string{"fab6"}, Severity: Gate,
		Claim: "The observatory's ledger attributes every lost or marked frame to exactly one cause — shared-buffer admission, Bernoulli wire loss, or CE mark — with both conservation identities closing to zero in every regime (§3.4, §5).",
		Eval: func(e *E) {
			e.Within("worst ledger gap", colMax(e, "fab6", "ledger-gap"), 0, 0)
			e.Within("best ledger gap", colMin(e, "fab6", "ledger-gap"), 0, 0)
			clean := []string{"cubic", "0", "0"}
			e.Within("clean run admission drops", e.V("fab6", "adm-drops", clean...), 0, 0)
			e.Within("clean run wire drops", e.V("fab6", "wire-drops", clean...), 0, 0)
			e.Within("clean run marks", e.V("fab6", "marks", clean...), 0, 0)
			e.AtLeast("bounded pool admission drops", e.V("fab6", "adm-drops", "cubic", "256", "0"), 1)
			e.Within("lossless wire drops", e.V("fab6", "wire-drops", "cubic", "256", "0"), 0, 0)
			e.AtLeast("lossy wire drops", e.V("fab6", "wire-drops", "cubic", "256", "0.1"), 1)
			e.AtLeast("lossy run still admission-drops", e.V("fab6", "adm-drops", "cubic", "256", "0.1"), 1)
			e.AtLeast("DCTCP marks", e.V("fab6", "marks", "dctcp", "0", "0"), 1000)
			e.Within("DCTCP unbounded admission drops", e.V("fab6", "adm-drops", "dctcp", "0", "0"), 0, 0)
			e.AtLeast("DCTCP bounded pool marks", e.V("fab6", "marks", "dctcp", "256", "0"), 1)
			e.AtLeast("DCTCP bounded pool admission drops", e.V("fab6", "adm-drops", "dctcp", "256", "0"), 1)
		},
	},
}
