package core

import (
	"fmt"

	"hostsim/internal/telemetry"
)

// ForEachEndpoint visits the host's local sender endpoints in tx-flow
// order — the same deterministic iteration the invariant checker uses —
// so callers can attach observers or collect terminal per-flow stats
// without reaching into the endpoint maps.
func (h *Host) ForEachEndpoint(fn func(*Endpoint)) {
	for _, ep := range sortedEndpoints(h) {
		fn(ep)
	}
}

// RegisterInspect registers the host's `ss -i`-style socket and queue
// gauges into reg, prefixed with the host name: per-flow TCP state (cwnd,
// ssthresh, srtt, rto, bytes in flight, qdisc and receive-queue depths,
// retransmits) plus NIC ring/backlog/GRO occupancy and softirq backlog.
// Every probe is a pure read, so sampling never perturbs the run. Call
// after the workload's connections are open (flows register here, not
// lazily); no-op on a nil registry.
func (h *Host) RegisterInspect(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	p := h.name + "/"
	if h.NIC != nil {
		h.NIC.RegisterQueueTelemetry(reg, p+"nic/")
	}
	sys := h.Sys
	reg.Gauge(p+"softirq_backlog", func() float64 { return float64(sys.SoftirqBacklogTotal()) })
	for i := 0; i < h.spec.NumCores(); i++ {
		c := sys.Core(i)
		reg.Gauge(fmt.Sprintf("%score%02d/softirq_backlog", p, i),
			func() float64 { return float64(c.SoftirqBacklog()) })
	}
	for _, ep := range sortedEndpoints(h) {
		conn := ep.conn
		fp := fmt.Sprintf("%sflow%03d/", p, ep.txFlow)
		reg.Gauge(fp+"cwnd_bytes", func() float64 { return float64(conn.CC().Cwnd()) })
		reg.Gauge(fp+"ssthresh_bytes", func() float64 { return float64(conn.CC().Ssthresh()) })
		// RTT-class gauges report nanoseconds, the repo-wide latency unit
		// (see package stage) shared with the passive RTT monitor's
		// rtt_*_ns gauges and the tail report.
		reg.Gauge(fp+"srtt_ns", func() float64 { return float64(conn.SRTT().Nanoseconds()) })
		reg.Gauge(fp+"rto_ns", func() float64 { return float64(conn.RTO().Nanoseconds()) })
		reg.Gauge(fp+"inflight_bytes", func() float64 { return float64(conn.InFlight()) })
		reg.Gauge(fp+"qdisc_bytes", func() float64 { return float64(conn.InQdisc()) })
		reg.Gauge(fp+"sndbuf_free_bytes", func() float64 { return float64(conn.SndBufFree()) })
		reg.Gauge(fp+"rcvbuf_bytes", func() float64 { return float64(conn.RcvBuf()) })
		reg.Gauge(fp+"recvq_bytes", func() float64 { return float64(conn.Readable()) })
		reg.Gauge(fp+"ooo_segments", func() float64 { return float64(conn.OOOLen()) })
		reg.Gauge(fp+"retransmits", func() float64 { return float64(conn.Stats().Retransmits) })
	}
}
