package core

import (
	"testing"
	"time"

	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/sim"
	"hostsim/internal/topology"
	"hostsim/internal/units"
)

// rig builds a connected host pair.
type rig struct {
	eng  *sim.Engine
	a, b *Host
}

func newRig(t *testing.T, opts Options) *rig {
	t.Helper()
	eng := sim.NewEngine(1)
	costs := cpumodel.Default()
	spec := topology.Default()
	a := NewHost("a", eng, spec, costs, opts)
	b := NewHost("b", eng, spec, costs, opts)
	Connect(a, b)
	return &rig{eng: eng, a: a, b: b}
}

func (r *rig) run(d time.Duration) { r.eng.Run(sim.Time(d)) }

func TestOptionsValidate(t *testing.T) {
	good := AllOpts()
	if err := good.Validate(); err != nil {
		t.Fatalf("AllOpts invalid: %v", err)
	}
	bad := []func(*Options){
		func(o *Options) { o.LRO = true; o.GRO = true },
		func(o *Options) { o.RxRing = -1 },
		func(o *Options) { o.RcvBufBytes = -1 },
		func(o *Options) { o.CC = "vegas" },
		func(o *Options) { o.Steering = SteeringMode(9) },
	}
	for i, f := range bad {
		o := AllOpts()
		f(&o)
		if o.Validate() == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestOptionsDerived(t *testing.T) {
	o := AllOpts()
	if o.MTU() != 9000 || o.MSS() != 9000-66 {
		t.Errorf("jumbo MTU/MSS = %d/%d", o.MTU(), o.MSS())
	}
	o.Jumbo = false
	if o.MTU() != 1500 {
		t.Errorf("MTU = %d, want 1500", o.MTU())
	}
	if o.SegmentBytes() != 64*units.KB {
		t.Errorf("SegmentBytes with TSO = %d, want 64KB", o.SegmentBytes())
	}
	o.TSO, o.GSO = false, false
	if o.SegmentBytes() != o.MSS() {
		t.Errorf("SegmentBytes without TSO/GSO = %d, want MSS", o.SegmentBytes())
	}
	no := NoOpts()
	if no.SegmentBytes() != no.MSS() {
		t.Error("NoOpts should send MSS-sized skbs")
	}
}

func TestSteeringCoreARFS(t *testing.T) {
	r := newRig(t, AllOpts())
	for _, core := range []int{0, 5, 13, 23} {
		if got := r.a.steeringCoreFor(core); got != core {
			t.Errorf("aRFS steering for core %d = %d, want same", core, got)
		}
	}
}

func TestSteeringCoreWorstCase(t *testing.T) {
	r := newRig(t, NoOpts())
	spec := r.a.Spec()
	for _, core := range []int{0, 5, 7, 23} {
		got := r.a.steeringCoreFor(core)
		if spec.NodeOf(got) == spec.NodeOf(core) {
			t.Errorf("worst-case steering for core %d = %d (same NUMA node)", core, got)
		}
	}
	// Distinct app cores on one node get distinct IRQ cores.
	if r.a.steeringCoreFor(0) == r.a.steeringCoreFor(1) {
		t.Error("worst-case steering should spread IRQ cores")
	}
}

func TestOpenConnRegistersEndpoints(t *testing.T) {
	r := newRig(t, AllOpts())
	epA, epB := OpenConn(r.a, 2, r.b, 3)
	if epA.AppCore() != 2 || epB.AppCore() != 3 {
		t.Error("app cores not bound")
	}
	if r.a.Endpoints() != 1 || r.b.Endpoints() != 1 {
		t.Error("endpoints not registered")
	}
	if epA.Host() != r.a || epB.Host() != r.b {
		t.Error("host back-references wrong")
	}
}

func TestConnectTwicePanics(t *testing.T) {
	r := newRig(t, AllOpts())
	defer func() {
		if recover() == nil {
			t.Error("second Connect should panic")
		}
	}()
	Connect(r.a, r.b)
}

func TestOpenConnBeforeConnectPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	a := NewHost("a", eng, topology.Default(), cpumodel.Default(), AllOpts())
	b := NewHost("b", eng, topology.Default(), cpumodel.Default(), AllOpts())
	defer func() {
		if recover() == nil {
			t.Error("OpenConn before Connect should panic")
		}
	}()
	OpenConn(a, 0, b, 0)
}

// transfer pushes bytes from epA's app to epB's and returns delivered.
func transfer(t *testing.T, r *rig, epA, epB *Endpoint, total units.Bytes, d time.Duration) units.Bytes {
	t.Helper()
	var sent units.Bytes
	sendCore := r.a.Sys.Core(epA.AppCore())
	th := sendCore.NewThread("writer", func(ctx *exec.Ctx) {
		if sent >= total {
			ctx.Block()
			return
		}
		w := epA.Write(ctx, total-sent)
		sent += w
		if w == 0 {
			ctx.Block()
		}
	})
	epA.SetNotify(Notify{Writable: func(ctx *exec.Ctx, _ *Endpoint) { ctx.Wake(th) }})
	var got units.Bytes
	recvCore := r.b.Sys.Core(epB.AppCore())
	rth := recvCore.NewThread("reader", func(ctx *exec.Ctx) {
		n := epB.Read(ctx, 128*units.KB)
		got += n
		if n == 0 {
			ctx.Block()
		}
	})
	epB.SetNotify(Notify{Readable: func(ctx *exec.Ctx, _ *Endpoint) { ctx.Wake(rth) }})
	th.Wake()
	r.run(d)
	return got
}

func TestEndToEndByteConservation(t *testing.T) {
	r := newRig(t, AllOpts())
	epA, epB := OpenConn(r.a, 0, r.b, 0)
	const total = 2 * units.MB
	got := transfer(t, r, epA, epB, total, 50*time.Millisecond)
	if got != total {
		t.Fatalf("delivered %d bytes, want %d", got, total)
	}
	if r.b.Copied() != total {
		t.Errorf("host Copied = %d, want %d", r.b.Copied(), total)
	}
	if r.a.Written() != total {
		t.Errorf("host Written = %d, want %d", r.a.Written(), total)
	}
}

func TestDataPathChargesExpectedCategories(t *testing.T) {
	r := newRig(t, AllOpts())
	epA, epB := OpenConn(r.a, 0, r.b, 0)
	transfer(t, r, epA, epB, units.MB, 50*time.Millisecond)
	sBd := r.a.Sys.TotalBreakdown()
	rBd := r.b.Sys.TotalBreakdown()
	for _, check := range []struct {
		name string
		got  units.Cycles
	}{
		{"sender DataCopy", sBd[cpumodel.DataCopy]},
		{"sender TCPIP", sBd[cpumodel.TCPIP]},
		{"sender Netdev", sBd[cpumodel.Netdev]},
		{"sender Memory", sBd[cpumodel.Memory]},
		{"receiver DataCopy", rBd[cpumodel.DataCopy]},
		{"receiver TCPIP", rBd[cpumodel.TCPIP]},
		{"receiver Netdev", rBd[cpumodel.Netdev]},
		{"receiver SKBMgmt", rBd[cpumodel.SKBMgmt]},
		{"receiver Memory", rBd[cpumodel.Memory]},
		{"receiver Lock", rBd[cpumodel.Lock]},
		{"receiver Etc", rBd[cpumodel.Etc]},
	} {
		if check.got <= 0 {
			t.Errorf("%s = %d, want > 0", check.name, check.got)
		}
	}
}

func TestIOMMUChargesMemory(t *testing.T) {
	with := AllOpts()
	with.IOMMU = true
	r1 := newRig(t, AllOpts())
	epA, epB := OpenConn(r1.a, 0, r1.b, 0)
	transfer(t, r1, epA, epB, units.MB, 50*time.Millisecond)
	base := r1.b.Sys.TotalBreakdown()[cpumodel.Memory]

	r2 := newRig(t, with)
	epA2, epB2 := OpenConn(r2.a, 0, r2.b, 0)
	transfer(t, r2, epA2, epB2, units.MB, 50*time.Millisecond)
	iommu := r2.b.Sys.TotalBreakdown()[cpumodel.Memory]
	if iommu < base*3/2 {
		t.Errorf("IOMMU memory cycles (%d) should far exceed baseline (%d)", iommu, base)
	}
}

func TestWorstCaseSteeringUsesTwoCores(t *testing.T) {
	r := newRig(t, NoOpts())
	epA, epB := OpenConn(r.a, 0, r.b, 0)
	transfer(t, r, epA, epB, units.MB, 80*time.Millisecond)
	// Receiver: app on core 0, IRQ/softirq on a remote-node core.
	app := r.b.Sys.Core(0).BusyTime()
	irqCore := r.b.steeringCoreFor(0)
	irq := r.b.Sys.Core(irqCore).BusyTime()
	if app == 0 || irq == 0 {
		t.Fatalf("expected both app core (%v) and IRQ core (%v) busy", app, irq)
	}
	// Lock contention must show up.
	if r.b.Sys.TotalBreakdown()[cpumodel.Lock] < 1000 {
		t.Error("worst-case steering should cause contended-lock charges")
	}
}

func TestRemoteNUMACopyCostsMore(t *testing.T) {
	// App on NIC-remote node: every copied byte pays the remote/DRAM rate.
	r := newRig(t, AllOpts())
	remoteCore := r.b.Spec().CoresOnNode(2)[0]
	epA, epB := OpenConn(r.a, 0, r.b, remoteCore)
	transfer(t, r, epA, epB, units.MB, 50*time.Millisecond)
	if miss := r.b.CopyMissRate(); miss < 0.95 {
		t.Errorf("remote-NUMA copy miss rate = %.2f, want ~1", miss)
	}
}

func TestLatencyAndSKBMetricsPopulated(t *testing.T) {
	r := newRig(t, AllOpts())
	epA, epB := OpenConn(r.a, 0, r.b, 0)
	transfer(t, r, epA, epB, units.MB, 50*time.Millisecond)
	if r.b.Latency().Count() == 0 {
		t.Error("latency histogram empty")
	}
	if r.b.SKBSizes().Count() == 0 {
		t.Error("skb size histogram empty")
	}
	if r.b.Latency().Mean() <= 0 {
		t.Error("latency mean should be positive")
	}
}

func TestResetMetrics(t *testing.T) {
	r := newRig(t, AllOpts())
	epA, epB := OpenConn(r.a, 0, r.b, 0)
	transfer(t, r, epA, epB, units.MB, 50*time.Millisecond)
	r.b.ResetMetrics()
	if r.b.Copied() != 0 || r.b.Latency().Count() != 0 || r.b.SKBSizes().Count() != 0 {
		t.Error("ResetMetrics should clear host counters")
	}
	if r.b.Sys.TotalBusy() != 0 {
		t.Error("ResetMetrics should clear CPU accounting")
	}
}

func TestAggregateConnStats(t *testing.T) {
	r := newRig(t, AllOpts())
	epA, epB := OpenConn(r.a, 0, r.b, 0)
	transfer(t, r, epA, epB, units.MB, 50*time.Millisecond)
	aSt := r.a.AggregateConnStats()
	bSt := r.b.AggregateConnStats()
	if aSt.SentBytes != units.MB {
		t.Errorf("sender SentBytes = %d", aSt.SentBytes)
	}
	if bSt.DeliveredBytes != units.MB {
		t.Errorf("receiver DeliveredBytes = %d", bSt.DeliveredBytes)
	}
	if bSt.AcksSent == 0 || aSt.AcksReceived == 0 {
		t.Error("ack counters empty")
	}
}

func TestNoOptSmallSKBs(t *testing.T) {
	r := newRig(t, NoOpts())
	epA, epB := OpenConn(r.a, 0, r.b, 0)
	transfer(t, r, epA, epB, 256*units.KB, 100*time.Millisecond)
	if avg := r.b.SKBSizes().Mean(); avg > 1500 {
		t.Errorf("no-opt mean skb = %.0fB, want MTU-sized (<=1500)", avg)
	}
	r2 := newRig(t, AllOpts())
	epA2, epB2 := OpenConn(r2.a, 0, r2.b, 0)
	transfer(t, r2, epA2, epB2, 256*units.KB, 100*time.Millisecond)
	if avg := r2.b.SKBSizes().Mean(); avg < 9000 {
		t.Errorf("all-opt mean skb = %.0fB, want GRO aggregates", avg)
	}
}

func TestLROBypassesGROCPU(t *testing.T) {
	lro := AllOpts()
	lro.GRO, lro.LRO = false, true
	r := newRig(t, lro)
	epA, epB := OpenConn(r.a, 0, r.b, 0)
	transfer(t, r, epA, epB, units.MB, 50*time.Millisecond)
	if r.b.NIC.Stats().LROCoalesce == 0 {
		t.Error("LRO should coalesce in hardware")
	}
	if avg := r.b.SKBSizes().Mean(); avg < 9000 {
		t.Errorf("LRO mean skb = %.0fB, want aggregates", avg)
	}
}
