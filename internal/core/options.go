// Package core implements the paper's subject: the end-to-end Linux host
// network stack data path of Fig. 1, assembled from the substrate packages
// (exec, mem, cache, nic, tcp, wire) and instrumented exactly the way the
// paper measures it — per-category CPU cycles (Table 1), L3/DDIO cache
// hit rates, NAPI-to-copy latency, and post-GRO skb sizes.
//
// A Host owns cores, a page allocator, a DDIO cache and a NIC; Endpoints
// are sockets bound to application cores. Connect wires two hosts with a
// full-duplex link; OpenConn creates a connection between cores of the
// two hosts, with flow steering per the configured policy.
package core

import (
	"fmt"
	"time"

	"hostsim/internal/nic"
	"hostsim/internal/units"
)

// SteeringMode selects the receive flow steering policy (Table 2).
type SteeringMode int

const (
	// SteerARFS programs the NIC to deliver each flow to the core its
	// application runs on (accelerated receive flow steering).
	SteerARFS SteeringMode = iota
	// SteerWorstCase pins each flow's IRQ processing to an explicitly
	// chosen core on a NIC-remote NUMA node — the paper's deterministic
	// "aRFS disabled" configuration.
	SteerWorstCase
	// SteerRSSHash hashes flows across all cores (default NIC RSS).
	SteerRSSHash
	// SteerRFS is software receive flow steering: the NIC hashes to an
	// RSS core, whose NAPI then forwards each skb to the application's
	// core for TCP processing (an extra softirq hop and IPI).
	SteerRFS
	// SteerRPS is software receive packet steering: like SteerRFS but
	// the forwarding target is a hash of the flow, not the application
	// core, so socket locks stay contended.
	SteerRPS
	// SteerSameNUMA pins each flow's IRQ processing to a different core
	// on the application's own NUMA node — the middle case of the
	// paper's §3.1 IRQ-mapping analysis (case 2).
	SteerSameNUMA
)

func (s SteeringMode) String() string {
	switch s {
	case SteerARFS:
		return "aRFS"
	case SteerWorstCase:
		return "worst-case"
	case SteerRSSHash:
		return "rss-hash"
	case SteerRFS:
		return "rfs"
	case SteerRPS:
		return "rps"
	case SteerSameNUMA:
		return "same-numa"
	default:
		return "invalid"
	}
}

// Options is the stack configuration under study: the optimization knobs
// of Fig. 3a plus the ablation toggles of later sections.
type Options struct {
	TSO      bool // hardware segmentation offload
	GSO      bool // software segmentation (used when TSO is off)
	GRO      bool // software receive aggregation
	LRO      bool // hardware receive aggregation (instead of GRO)
	Jumbo    bool // 9000B MTU instead of 1500B
	DCA      bool // DDIO: NIC DMAs into the NIC-local L3
	IOMMU    bool // IOMMU map/unmap on every DMA page
	Steering SteeringMode

	CC string // congestion control: "cubic", "dctcp", "bbr", "reno"

	// ZeroCopyTx/ZeroCopyRx enable the §4 "future directions" zero-copy
	// mechanisms: MSG_ZEROCOPY transmission (pin user pages, skip the
	// user-to-kernel copy) and mmap-based reception (remap payload pages
	// into the application instead of copying).
	ZeroCopyTx bool
	ZeroCopyRx bool

	// DCAAwareDRS caps receive-buffer autotuning at the DDIO capacity
	// (so the advertised window stays within ~half the DCA slice) — the
	// §4 proposal that "window size tuning should take into account ...
	// L3 sizes".
	DCAAwareDRS bool

	// RcvSchedulerK, when positive, enables a Homa/pHost-inspired
	// receiver-driven scheduler (§4): on each receiving core at most K
	// connections are granted window at a time, rotated round-robin, each
	// clamped to an equal share of the DCA capacity. Reduces cache
	// contention under incast at the cost of scheduling granularity.
	RcvSchedulerK int

	RxRing      int         // NIC Rx descriptors per queue (0 = 1024)
	RcvBufBytes units.Bytes // fixed TCP receive buffer; 0 = autotune to 6MB
	SndBufBytes units.Bytes // socket send buffer (0 = 4MB)

	// ModerationDelay/ModerationFrames override IRQ coalescing (0 = NIC
	// defaults).
	ModerationDelay  time.Duration
	ModerationFrames int

	// ---- advanced model knobs (0 = defaults), used by the ablation
	// experiments to isolate individual design choices.
	TSQBytes         units.Bytes   // per-connection unsent-in-qdisc bound
	SchedGranularity time.Duration // CFS-like wakeup/preemption granularity
	SleeperCredit    time.Duration // wakeup vruntime credit
	PagesetCap       int           // per-core pageset capacity (-1 = none)
	DCAHazardFactor  float64       // descriptor-count eviction hazard scale (-1 = off)
}

// AllOpts returns the paper's "all optimizations enabled" configuration:
// TSO/GRO + jumbo frames + aRFS, DCA on, IOMMU off, CUBIC.
func AllOpts() Options {
	return Options{
		TSO: true, GSO: true, GRO: true, Jumbo: true,
		DCA: true, Steering: SteerARFS, CC: "cubic",
	}
}

// NoOpts returns the paper's baseline: no segmentation offload (GSO
// disabled as in the paper's modified kernel), no aggregation, 1500B MTU,
// worst-case IRQ steering. DCA stays on (the testbed default).
func NoOpts() Options {
	return Options{DCA: true, Steering: SteerWorstCase, CC: "cubic"}
}

// MTU returns the configured MTU.
func (o Options) MTU() units.Bytes {
	if o.Jumbo {
		return 9000
	}
	return 1500
}

// MSS returns the wire payload per frame.
func (o Options) MSS() units.Bytes { return o.MTU() - nic.FrameHeader }

// SegmentBytes returns the transmit skb size: 64KB aggregates under
// TSO/GSO, a single MSS otherwise (the paper's "no optimizations" mode).
func (o Options) SegmentBytes() units.Bytes {
	if o.TSO || o.GSO {
		return 64 * units.KB
	}
	return o.MSS()
}

// Validate checks internal consistency.
func (o Options) Validate() error {
	switch {
	case o.LRO && o.GRO:
		return fmt.Errorf("core: LRO and GRO are mutually exclusive")
	case o.RxRing < 0:
		return fmt.Errorf("core: negative RxRing")
	case o.RcvBufBytes < 0 || o.SndBufBytes < 0:
		return fmt.Errorf("core: negative buffer size")
	case o.Steering < SteerARFS || o.Steering > SteerSameNUMA:
		return fmt.Errorf("core: invalid steering mode")
	}
	switch o.CC {
	case "", "cubic", "reno", "dctcp", "bbr":
	default:
		return fmt.Errorf("core: unknown congestion control %q", o.CC)
	}
	return nil
}

// nicConfig translates Options into the NIC configuration.
func (o Options) nicConfig() nic.Config {
	cfg := nic.DefaultConfig()
	cfg.MTU = o.MTU()
	cfg.TSO = o.TSO
	cfg.GRO = o.GRO
	cfg.LRO = o.LRO
	if o.RxRing > 0 {
		cfg.RxRing = o.RxRing
	}
	if o.ModerationDelay > 0 {
		cfg.ModerationDelay = o.ModerationDelay
	}
	if o.ModerationFrames > 0 {
		cfg.ModerationFrames = o.ModerationFrames
	}
	if o.DCAHazardFactor > 0 {
		cfg.DCAHazardFactor = o.DCAHazardFactor
	} else if o.DCAHazardFactor < 0 {
		cfg.DCAHazardFactor = 0
	}
	return cfg
}
