package core

import (
	"strings"
	"testing"
	"time"

	"hostsim/internal/check"
	"hostsim/internal/cpumodel"
	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/topology"
	"hostsim/internal/units"
	"hostsim/internal/wire"
)

// checkedRig is a connected host pair with the invariant checker attached
// (Collect mode, so tests can census violations instead of recovering
// panics).
type checkedRig struct {
	*rig
	ck     *check.Checker
	ab, ba *wire.Link
}

func newCheckedRig(t *testing.T, opts Options) *checkedRig {
	t.Helper()
	eng := sim.NewEngine(1)
	costs := cpumodel.Default()
	spec := topology.Default()
	a := NewHost("a", eng, spec, costs, opts)
	b := NewHost("b", eng, spec, costs, opts)
	ab, ba := Connect(a, b)
	ck := check.New(eng, check.Options{Collect: true})
	AttachChecker(ck, a, b, ab, ba)
	return &checkedRig{rig: &rig{eng: eng, a: a, b: b}, ck: ck, ab: ab, ba: ba}
}

// violationsFor filters the collected violations down to one rule.
func (r *checkedRig) violationsFor(rule string) []check.Violation {
	var out []check.Violation
	for _, v := range r.ck.Violations() {
		if v.Rule == rule {
			out = append(out, v)
		}
	}
	return out
}

func TestCheckerCleanOnIdlePair(t *testing.T) {
	r := newCheckedRig(t, AllOpts())
	r.run(2 * time.Millisecond)
	r.ck.Audit()
	if vs := r.ck.Violations(); len(vs) != 0 {
		t.Fatalf("idle connected pair violated invariants: %v", vs)
	}
}

func TestCheckerCatchesSKBLeak(t *testing.T) {
	r := newCheckedRig(t, AllOpts())
	// Take an skb from the shared pool and drop it on the floor: no queue,
	// no leak-by-design counter ever accounts for it.
	leaked := r.a.NIC.SKBPool().Get(&skb.Frame{Len: 1500})
	_ = leaked
	r.ck.Audit()
	vs := r.violationsFor("skb-pool-conservation")
	if len(vs) == 0 {
		t.Fatalf("injected skb leak not caught; violations: %v", r.ck.Violations())
	}
	if !strings.Contains(vs[0].Detail, "1 skbs leaked") {
		t.Errorf("diagnostic does not name the leak: %q", vs[0].Detail)
	}
}

func TestCheckerCatchesFrameLeak(t *testing.T) {
	r := newCheckedRig(t, AllOpts())
	f := r.a.NIC.FramePool().Get()
	f.Len = 9000
	r.ck.Audit()
	vs := r.violationsFor("frame-pool-conservation")
	if len(vs) == 0 {
		t.Fatalf("injected frame leak not caught; violations: %v", r.ck.Violations())
	}
	if !strings.Contains(vs[0].Detail, "1 frames leaked") {
		t.Errorf("diagnostic does not name the leak: %q", vs[0].Detail)
	}
}

func TestCheckerCatchesCycleDoubleCharge(t *testing.T) {
	r := newCheckedRig(t, AllOpts())
	// Slip cycles into the core accounting without a work item: the charge
	// log never sees them, so the ledger cannot reconcile.
	r.b.Sys.Core(0).SkewAccounting(cpumodel.DataCopy, units.Cycles(1234))
	r.ck.Audit()
	vs := r.violationsFor("cycle-conservation")
	if len(vs) == 0 {
		t.Fatalf("injected double-charge not caught; violations: %v", r.ck.Violations())
	}
	d := vs[0].Detail
	if !strings.Contains(d, "host b") || !strings.Contains(d, "data_copy") ||
		!strings.Contains(d, "drift +1234") {
		t.Errorf("diagnostic not pointed enough: %q", d)
	}
}

func TestCheckerFailFastPanicsWithFailure(t *testing.T) {
	eng := sim.NewEngine(1)
	costs := cpumodel.Default()
	spec := topology.Default()
	a := NewHost("a", eng, spec, costs, AllOpts())
	b := NewHost("b", eng, spec, costs, AllOpts())
	ab, ba := Connect(a, b)
	ck := check.New(eng, check.Options{}) // fail-fast
	AttachChecker(ck, a, b, ab, ba)
	a.NIC.SKBPool().Get(&skb.Frame{Len: 100})
	defer func() {
		f, ok := recover().(*check.Failure)
		if !ok {
			t.Fatal("Audit did not panic with *check.Failure")
		}
		if f.V.Rule != "skb-pool-conservation" {
			t.Errorf("failed rule %q, want skb-pool-conservation", f.V.Rule)
		}
	}()
	ck.Audit()
	t.Fatal("Audit returned despite the leak")
}

func TestLedgerResetMatchesAccountingReset(t *testing.T) {
	r := newCheckedRig(t, AllOpts())
	r.run(time.Millisecond)
	r.a.ResetMetrics()
	r.b.ResetMetrics()
	r.ck.Audit() // ledger and Breakdown both zeroed: still reconciled
	if vs := r.violationsFor("cycle-conservation"); len(vs) != 0 {
		t.Fatalf("cycle ledger drifted across ResetMetrics: %v", vs)
	}
}
