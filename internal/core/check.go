package core

import (
	"sort"
	"strings"
	"time"

	"hostsim/internal/check"
	"hostsim/internal/cpumodel"
	"hostsim/internal/skb"
	"hostsim/internal/wire"
)

// AttachChecker registers the conservation-law audit rules for a
// connected host pair on ck and arms each host's cycle ledger. Call after
// Connect and before the simulation runs; the rules are pure reads, so a
// checked run follows the exact trajectory of an unchecked one.
//
// The laws, each exact at event boundaries:
//
//   - wire: per link, frames (and payload bytes) sent = delivered +
//     dropped at the switch + in flight;
//   - nic-rx: per host, payload delivered by the inbound link = NIC
//     RxBytes + ring-dropped bytes, and RxBytes = bytes handed up the
//     stack + ring backlog + GRO-held; posted descriptors stay in
//     [0, RxRing];
//   - tcp-seqspace: per connection, sequence bookkeeping is internally
//     consistent (see tcp.Conn.CheckInvariants) and cross-host
//     sndUna <= peer rcvNxt <= sndNxt;
//   - skb-pool / frame-pool: every buffer handed out by the pair's shared
//     pools is accounted for by a live queue, a counted leak-by-design
//     (switch drops, unsteered skbs), or an in-flight counter;
//   - cycles: per host, the charge log's per-category tally reconciles
//     exactly with the core Breakdown accounting, and busy time matches
//     the cycle total within per-item truncation slack;
//   - dca: DDIO occupancy never exceeds the configured L3 share.
func AttachChecker(ck *check.Checker, a, b *Host, ab, ba *wire.Link) {
	for _, h := range []*Host{a, b} {
		h.chkLedger = &check.CycleLedger{}
		h.installChargeLog()
	}

	ck.AddRule("wire-conservation", func(fail check.FailFunc) {
		wireConservation(fail, a.name+"->"+b.name, ab)
		wireConservation(fail, b.name+"->"+a.name, ba)
	})
	ck.AddRule("nic-rx-conservation", func(fail check.FailFunc) {
		nicRxConservation(fail, b, ab) // ab delivers into b's NIC
		nicRxConservation(fail, a, ba)
	})
	ck.AddRule("tcp-seqspace", func(fail check.FailFunc) {
		tcpSeqSpace(fail, a, b)
		tcpSeqSpace(fail, b, a)
	})
	ck.AddRule("skb-pool-conservation", func(fail check.FailFunc) {
		skbConservation(fail, a, b)
	})
	ck.AddRule("frame-pool-conservation", func(fail check.FailFunc) {
		frameConservation(fail, a, b, ab, ba)
	})
	ck.AddRule("cycle-conservation", func(fail check.FailFunc) {
		cycleConservation(fail, a)
		cycleConservation(fail, b)
	})
	ck.AddRule("dca-occupancy", func(fail check.FailFunc) {
		dcaOccupancy(fail, a)
		dcaOccupancy(fail, b)
	})
}

func wireConservation(fail check.FailFunc, name string, l *wire.Link) {
	st := l.Stats()
	frames, payload := l.InFlight()
	if frames < 0 || payload < 0 {
		fail("link %s: negative in-flight (%d frames, %d bytes)", name, frames, payload)
	}
	if st.Sent != st.Delivered+st.Dropped+frames {
		fail("link %s: %d frames sent != %d delivered + %d dropped + %d in flight (leak of %d)",
			name, st.Sent, st.Delivered, st.Dropped, frames,
			st.Sent-st.Delivered-st.Dropped-frames)
	}
	if st.SentPayload != st.DeliveredPayload+st.DroppedPayload+payload {
		fail("link %s: %d payload bytes sent != %d delivered + %d dropped + %d in flight (leak of %d)",
			name, st.SentPayload, st.DeliveredPayload, st.DroppedPayload, payload,
			st.SentPayload-st.DeliveredPayload-st.DroppedPayload-payload)
	}
}

func nicRxConservation(fail check.FailFunc, h *Host, inbound *wire.Link) {
	st := h.NIC.Stats()
	if got := inbound.Stats().DeliveredPayload; got != st.RxBytes+st.RxDroppedBytes {
		fail("host %s: link delivered %d payload bytes but NIC accounts %d accepted + %d ring-dropped",
			h.name, got, st.RxBytes, st.RxDroppedBytes)
	}
	_, backlogB := h.NIC.RxBacklog()
	_, groB := h.NIC.GROHeld()
	if st.RxBytes != st.RxDelivered+backlogB+groB {
		fail("host %s: NIC accepted %d bytes != %d delivered up + %d ring backlog + %d GRO-held (leak of %d)",
			h.name, st.RxBytes, st.RxDelivered, backlogB, groB,
			st.RxBytes-st.RxDelivered-backlogB-groB)
	}
	ring := h.NIC.Config().RxRing
	if lo, hi := h.NIC.PostedBounds(); lo < 0 || hi > ring {
		fail("host %s: posted descriptors out of bounds: [%d, %d] not within [0, %d]",
			h.name, lo, hi, ring)
	}
}

// sortedEndpoints returns h's sender endpoints in tx-flow order, so audit
// failures are reported deterministically.
func sortedEndpoints(h *Host) []*Endpoint {
	flows := make([]skb.FlowID, 0, len(h.byTx))
	for f := range h.byTx {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	eps := make([]*Endpoint, len(flows))
	for i, f := range flows {
		eps[i] = h.byTx[f]
	}
	return eps
}

func tcpSeqSpace(fail check.FailFunc, h, peer *Host) {
	for _, ep := range sortedEndpoints(h) {
		ep.conn.CheckInvariants(fail)
		pep := peer.byRx[ep.txFlow]
		if pep == nil {
			continue
		}
		una, nxt := ep.conn.SndUna(), ep.conn.SndNxt()
		rcv := pep.conn.RcvNxt()
		if una > rcv || rcv > nxt {
			fail("tcp flow %d: cross-host sequence drift: %s sndUna %d, %s rcvNxt %d, sndNxt %d "+
				"(want sndUna <= rcvNxt <= sndNxt)",
				ep.txFlow, h.name, una, peer.name, rcv, nxt)
		}
	}
}

func skbConservation(fail check.FailFunc, a, b *Host) {
	skbConservationHosts(fail, a.name+"/"+b.name, []*Host{a, b})
}

func skbConservationHosts(fail check.FailFunc, scope string, hosts []*Host) {
	pool := hosts[0].NIC.SKBPool()
	if pool == nil {
		return
	}
	var held int64
	for _, h := range hosts {
		groN, _ := h.NIC.GROHeld()
		held += int64(groN)
		for _, ep := range sortedEndpoints(h) {
			held += int64(ep.conn.RecvQLen() + ep.conn.OOOLen())
		}
		held += h.unsteered + h.rpsInFlight
	}
	if out := pool.Outstanding(); out != held {
		fail("skb pool: %d outstanding but only %d accounted for "+
			"(gro+recvq+ooo+unsteered+rps across %s) — %d skbs leaked",
			out, held, scope, out-held)
	}
}

func frameConservation(fail check.FailFunc, a, b *Host, ab, ba *wire.Link) {
	frameConservationHosts(fail, a.name+"/"+b.name, []*Host{a, b}, []*wire.Link{ab, ba}, 0)
}

// frameConservationHosts audits the shared frame pool over an arbitrary
// host set: every outstanding frame must sit in a NIC Tx queue, an Rx
// backlog, on a wire, or be a counted abandonment (a switch loss drop or
// a fabric shared-buffer drop).
func frameConservationHosts(fail check.FailFunc, scope string, hosts []*Host, links []*wire.Link, fabricDropped int64) {
	fp := hosts[0].NIC.FramePool()
	if fp == nil {
		return
	}
	held := fabricDropped
	for _, h := range hosts {
		txN, _ := h.NIC.TxQueued()
		backlogN, _ := h.NIC.RxBacklog()
		held += int64(txN + backlogN)
	}
	for _, l := range links {
		inflight, _ := l.InFlight()
		held += inflight + l.Stats().Dropped // switch drops abandon the frame
	}
	if out := fp.Outstanding(); out != held {
		fail("frame pool: %d outstanding but only %d accounted for "+
			"(txq+rx backlog+wire+switch drops across %s) — %d frames leaked",
			out, held, scope, out-held)
	}
}

// AttachClusterChecker registers the conservation-law audit rules for a
// fabric-connected cluster: the pair rules of AttachChecker restated
// per egress link and per host, plus a per-switch-port rule (every frame
// entering an ingress port is either forwarded to an egress queue or a
// counted shared-buffer drop) and the cluster-wide pool audits, which
// absorb fabric buffer drops as counted abandonments.
func AttachClusterChecker(ck *check.Checker, c *Cluster) {
	hosts := c.hosts
	for _, h := range hosts {
		h.chkLedger = &check.CycleLedger{}
		h.installChargeLog()
	}
	names := make([]string, len(hosts))
	links := make([]*wire.Link, len(hosts))
	for i, h := range hosts {
		names[i] = h.name
		links[i] = c.fab.Port(i).Out()
	}
	scope := strings.Join(names, "/")

	ck.AddRule("wire-conservation", func(fail check.FailFunc) {
		for i, h := range hosts {
			wireConservation(fail, "fabric->"+h.name, links[i])
		}
	})
	ck.AddRule("fabric-port-conservation", func(fail check.FailFunc) {
		for i, h := range hosts {
			st := c.fab.Port(i).Stats()
			if st.In != st.Forwarded+st.BufDropped {
				fail("fabric port %d (%s): %d frames in != %d forwarded + %d buffer-dropped (leak of %d)",
					i, h.name, st.In, st.Forwarded, st.BufDropped,
					st.In-st.Forwarded-st.BufDropped)
			}
			if st.InPayload != st.ForwardedPayload+st.BufDroppedBytes {
				fail("fabric port %d (%s): %d payload bytes in != %d forwarded + %d buffer-dropped (leak of %d)",
					i, h.name, st.InPayload, st.ForwardedPayload, st.BufDroppedBytes,
					st.InPayload-st.ForwardedPayload-st.BufDroppedBytes)
			}
		}
		if occ := c.fab.Occupancy(); occ < 0 {
			fail("fabric: negative shared-buffer occupancy %d", occ)
		}
	})
	ck.AddRule("nic-rx-conservation", func(fail check.FailFunc) {
		for i, h := range hosts {
			nicRxConservation(fail, h, links[i])
		}
	})
	ck.AddRule("tcp-seqspace", func(fail check.FailFunc) {
		for _, h := range hosts {
			clusterSeqSpace(fail, h, c)
		}
	})
	ck.AddRule("skb-pool-conservation", func(fail check.FailFunc) {
		skbConservationHosts(fail, scope, hosts)
	})
	ck.AddRule("frame-pool-conservation", func(fail check.FailFunc) {
		frameConservationHosts(fail, scope, hosts, links, c.fab.Totals().BufDropped)
	})
	ck.AddRule("cycle-conservation", func(fail check.FailFunc) {
		for _, h := range hosts {
			cycleConservation(fail, h)
		}
	})
	ck.AddRule("dca-occupancy", func(fail check.FailFunc) {
		for _, h := range hosts {
			dcaOccupancy(fail, h)
		}
	})
}

// clusterSeqSpace is tcpSeqSpace with the peer host resolved through the
// cluster's routing table instead of an implicit pair.
func clusterSeqSpace(fail check.FailFunc, h *Host, c *Cluster) {
	for _, ep := range sortedEndpoints(h) {
		ep.conn.CheckInvariants(fail)
		peer := c.peer[ep.txFlow]
		if peer == nil {
			continue
		}
		pep := peer.byRx[ep.txFlow]
		if pep == nil {
			continue
		}
		una, nxt := ep.conn.SndUna(), ep.conn.SndNxt()
		rcv := pep.conn.RcvNxt()
		if una > rcv || rcv > nxt {
			fail("tcp flow %d: cross-host sequence drift: %s sndUna %d, %s rcvNxt %d, sndNxt %d "+
				"(want sndUna <= rcvNxt <= sndNxt)",
				ep.txFlow, h.name, una, peer.name, rcv, nxt)
		}
	}
}

func cycleConservation(fail check.FailFunc, h *Host) {
	led := h.chkLedger.Total()
	acct := h.Sys.TotalBreakdown()
	if led != acct {
		for _, cat := range cpumodel.Categories() {
			if led[cat] != acct[cat] {
				fail("host %s: category %v accounts %d cycles but the charge log saw %d (drift %+d)",
					h.name, cat, acct[cat], led[cat], int64(acct[cat])-int64(led[cat]))
			}
		}
		return
	}
	busy := h.Sys.TotalBusy()
	exact := acct.Total().Duration(h.spec.Frequency)
	slack := time.Duration(h.Sys.CompletedItems() + 1) // 1ns truncation per item
	if diff := exact - busy; diff < -slack || diff > slack {
		fail("host %s: busy time %v drifted from cycle total %v by %v (allowed slack %v over %d items)",
			h.name, busy, exact, diff, slack, h.Sys.CompletedItems())
	}
}

func dcaOccupancy(fail check.FailFunc, h *Host) {
	if h.DCA == nil {
		return
	}
	if res, capacity := h.DCA.Resident(), h.DCA.Capacity(); res < 0 || res > capacity {
		fail("host %s: DDIO occupancy %d pages outside [0, %d]", h.name, res, capacity)
	}
}
