package core

import (
	"fmt"
	"time"

	"hostsim/internal/cache"
	"hostsim/internal/check"
	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/mem"
	"hostsim/internal/metrics"
	"hostsim/internal/mtrace"
	"hostsim/internal/nic"
	"hostsim/internal/profile"
	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/tcp"
	"hostsim/internal/telemetry"
	"hostsim/internal/topology"
	"hostsim/internal/trace"
	"hostsim/internal/units"
	"hostsim/internal/wire"
)

// senderWSFraction scales the host's in-use send-buffer bytes into an
// effective cache working set for the sender-side copy. The application's
// source buffers stay hot and copy destinations are write-allocated, so
// only a small fraction of in-flight bytes competes for L3 reads (§3.4:
// the paper observes sender miss rates of only ~8-24% even with 24
// active flows).
const senderWSFraction = 0.08

// senderBaseMiss is the compulsory sender-side copy miss floor.
const senderBaseMiss = 0.04

// senderMissCap bounds the sender-copy miss rate: the dominant read
// stream (the application buffer) stays cache-resident regardless of how
// much acked-pending data exists.
const senderMissCap = 0.35

// Host is one server: cores, memory, cache, NIC and sockets.
type Host struct {
	name  string
	eng   *sim.Engine
	spec  topology.MachineSpec
	costs *cpumodel.Costs
	opts  Options

	Sys   *exec.System
	Alloc *mem.Allocator
	DCA   *cache.DCA
	NIC   *nic.NIC

	flows      *flowIDs // shared with the peer host after Connect
	steerTable map[skb.FlowID]int
	byTx       map[skb.FlowID]*Endpoint // local sender endpoints by tx flow
	byRx       map[skb.FlowID]*Endpoint // local receiver endpoints by rx flow

	sndInUse units.Bytes // in-use send-buffer bytes (sender cache model)
	senderWS cache.WorkingSet

	// ---- measurement state.
	copied    units.Bytes // bytes delivered to applications
	written   units.Bytes // bytes applications pushed into sockets
	copyHitB  units.Bytes
	copyMissB units.Bytes
	latency   *metrics.Histogram // NAPI -> start of data copy, ns
	skbSizes  *metrics.Histogram // post-GRO data skb sizes, bytes
	unsteered int64
	tracer    *trace.Tracer     // nil = tracing off
	prof      *profile.Profiler // nil = profiling off
	mt        *mtrace.Tracer    // nil = message tracing off

	// ---- invariant-checker state (nil/zero when checking is off).
	chkLedger   *check.CycleLedger // independent cycle tally from the charge log
	rpsInFlight int64              // skbs deferred to a cross-core softirq (RPS/RFS)

	telemetry    *telemetry.Registry // nil = telemetry off
	ctrSteerMiss *telemetry.Counter  // Rx processed off the app core

	// Receiver-driven scheduler state (Options.RcvSchedulerK).
	schedGroups  map[int][]*Endpoint // receiving endpoints by app core
	schedIdx     map[int]int
	schedStarted bool
}

// SetTracer installs an event tracer (nil disables tracing). The NIC, if
// already connected, shares it for drop and GRO-flush events.
func (h *Host) SetTracer(tr *trace.Tracer) {
	h.tracer = tr
	if h.NIC != nil {
		h.NIC.SetTrace(tr, h.name)
	}
}

// Tracer returns the installed tracer (possibly nil).
func (h *Host) Tracer() *trace.Tracer { return h.tracer }

// EnableProfiler attaches a cycle profiler (nil detaches): every work
// item's charge log is forwarded to p tagged with this host's name, and
// the data path starts stamping skb lifecycle points and tagging charge
// contexts with flow ids. With no profiler attached all of those hooks
// reduce to pointer tests and plain field writes — the hot path stays
// allocation-free.
func (h *Host) EnableProfiler(p *profile.Profiler) {
	h.prof = p
	h.installChargeLog()
}

// installChargeLog points the exec layer's charge log at whichever
// consumers are attached — the profiler, the invariant checker's cycle
// ledger, or both — and disables it when neither is.
func (h *Host) installChargeLog() {
	p, led := h.prof, h.chkLedger
	if p == nil && led == nil {
		h.Sys.SetChargeLog(nil)
		return
	}
	name := h.name
	h.Sys.SetChargeLog(func(core int, softirq bool, thread string, log []exec.FlowCharge) {
		if led != nil {
			led.Record(log)
		}
		if p != nil {
			p.Record(name, softirq, thread, log)
		}
	})
}

// Profiler returns the attached profiler (possibly nil).
func (h *Host) Profiler() *profile.Profiler { return h.prof }

// EnableMsgTrace attaches the per-message tracer (nil detaches): writes,
// segment emissions and in-order deliveries are reported to t, and the
// data path stamps skb lifecycle points exactly as it does for the
// profiler. Every hook is a pure observer behind a pointer test, so a
// detached tracer costs nothing on the hot path.
func (h *Host) EnableMsgTrace(t *mtrace.Tracer) { h.mt = t }

// NewHost builds a host. The NIC's egress is connected later via Connect.
func NewHost(name string, eng *sim.Engine, spec topology.MachineSpec,
	costs *cpumodel.Costs, opts Options) *Host {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	h := &Host{
		name:        name,
		eng:         eng,
		spec:        spec,
		costs:       costs,
		opts:        opts,
		Sys:         exec.NewSystem(eng, spec, costs),
		Alloc:       mem.NewAllocator(spec, costs),
		flows:       &flowIDs{},
		steerTable:  make(map[skb.FlowID]int),
		byTx:        make(map[skb.FlowID]*Endpoint),
		byRx:        make(map[skb.FlowID]*Endpoint),
		senderWS:    cache.WorkingSet{Capacity: spec.L3PerNode, BaseMiss: senderBaseMiss},
		latency:     metrics.NewLatency(),
		skbSizes:    metrics.NewSize(),
		schedGroups: make(map[int][]*Endpoint),
		schedIdx:    make(map[int]int),
	}
	h.Alloc.SetIOMMU(opts.IOMMU)
	if opts.SchedGranularity > 0 {
		h.Sys.SetGranularity(opts.SchedGranularity)
	}
	if opts.SleeperCredit > 0 {
		h.Sys.SetSleeperCredit(opts.SleeperCredit)
	}
	if opts.PagesetCap > 0 {
		h.Alloc.SetPagesetCap(opts.PagesetCap)
	} else if opts.PagesetCap < 0 {
		h.Alloc.SetPagesetCap(0)
	}
	if opts.DCA {
		h.DCA = cache.NewDCA(cache.DCAConfig{
			Capacity: spec.DCACapacity(),
			PageSize: spec.PageSize,
			Rand:     eng.Rand(),
		})
	}
	return h
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Options returns the stack configuration.
func (h *Host) Options() Options { return h.opts }

// Spec returns the machine description.
func (h *Host) Spec() topology.MachineSpec { return h.spec }

// Connect joins two hosts with a full-duplex link and instantiates their
// NICs. Call exactly once per host pair, before opening connections.
// It returns the a->b and b->a links so experiments can inject loss or
// ECN marking.
func Connect(a, b *Host) (ab, ba *wire.Link) {
	if a.NIC != nil || b.NIC != nil {
		panic("core: hosts already connected")
	}
	delay := time.Duration(a.spec.OneWayDelay) * time.Nanosecond
	ab = wire.NewLink(a.eng, a.spec.LinkRate, delay, func(f *skb.Frame) { b.NIC.ReceiveFromWire(f) })
	ba = wire.NewLink(b.eng, b.spec.LinkRate, delay, func(f *skb.Frame) { a.NIC.ReceiveFromWire(f) })
	a.NIC = nic.New(a.eng, a.Sys, a.Alloc, a.DCA, a.opts.nicConfig(), ab, a.deliver)
	b.NIC = nic.New(b.eng, b.Sys, b.Alloc, b.DCA, b.opts.nicConfig(), ba, b.deliver)
	a.NIC.SetTxComplete(a.txComplete)
	b.NIC.SetTxComplete(b.txComplete)
	// Share the fast-path pools and the flow-ID counter across the pair:
	// frames and skbs are born on one host and die on the other, so only a
	// pair-wide pool stays balanced, and per-pair flow numbering keeps
	// concurrent simulations independent (no global state).
	skbs, frames := &skb.Pool{}, &skb.FramePool{}
	a.NIC.SetPools(skbs, frames)
	b.NIC.SetPools(skbs, frames)
	b.flows = a.flows
	a.installSteering()
	b.installSteering()
	return ab, ba
}

// txComplete is the NIC's wire-departure notification: batch it per
// endpoint and process in softirq (TSQ completion).
func (h *Host) txComplete(flow skb.FlowID, bytes units.Bytes) {
	ep := h.byTx[flow]
	if ep == nil {
		return
	}
	ep.txCompPending += bytes
	if ep.txCompScheduled {
		return
	}
	ep.txCompScheduled = true
	ep.softirq(ep.txCompFn)
}

// installSteering (re)builds the NIC steering table from the endpoints
// registered so far and the configured policy.
func (h *Host) installSteering() {
	if h.NIC == nil {
		return
	}
	all := make([]int, h.spec.NumCores())
	for i := range all {
		all[i] = i
	}
	switch h.opts.Steering {
	case SteerRSSHash, SteerRFS, SteerRPS:
		// Hardware only hashes (RSS); software modes forward afterwards.
		h.NIC.SetSteering(nic.RSS{Cores: all})
	default:
		h.NIC.SetSteering(nic.Pinned{Table: h.steerTable, Fallback: nic.RSS{Cores: all}})
	}
}

// steeringCoreFor returns where a flow's hardware IRQ lands given the
// policy: the app core under aRFS, or an explicit worst-case core on a
// different NUMA node.
func (h *Host) steeringCoreFor(appCore int) int {
	switch h.opts.Steering {
	case SteerARFS:
		return appCore
	case SteerWorstCase:
		// First core of the next NUMA node (wrapping): deterministic and
		// always NUMA-remote from the application, as in the paper.
		node := h.spec.NodeOf(appCore)
		remote := (node + 1) % h.spec.NUMANodes
		return h.spec.CoresOnNode(remote)[appCore%h.spec.CoresPerNode]
	case SteerSameNUMA:
		// The paper's IRQ-mapping case 2: another core on the same node.
		node := h.spec.NodeOf(appCore)
		cores := h.spec.CoresOnNode(node)
		return cores[(appCore-cores[0]+1)%len(cores)]
	default:
		return appCore // table unused under RSS-based modes
	}
}

// processingCoreFor returns where a flow's TCP/IP processing runs: under
// software steering (RPS/RFS) this differs from the hardware IRQ core.
func (h *Host) processingCoreFor(ep *Endpoint) int {
	switch h.opts.Steering {
	case SteerRFS:
		return ep.appCore // software flow steering finds the app's core
	case SteerRPS:
		// Software packet steering: flow hash over all cores.
		hsh := uint32(ep.rxFlow)*2654435761 + 0x9e37
		return int((hsh >> 8) % uint32(h.spec.NumCores()))
	default:
		return h.steeringCoreFor(ep.appCore)
	}
}

// deliver is the NIC upcall: route the skb to its endpoint and run TCP Rx
// processing — here for hardware-steered modes, or after a forwarding hop
// to the processing core for software RPS/RFS.
func (h *Host) deliver(ctx *exec.Ctx, s *skb.SKB) {
	var ep *Endpoint
	if s.Ack != nil {
		ep = h.byTx[s.Flow]
	} else {
		ep = h.byRx[s.Flow]
	}
	if ep == nil {
		h.unsteered++
		return
	}
	target := h.processingCoreFor(ep)
	if (h.opts.Steering == SteerRPS || h.opts.Steering == SteerRFS) &&
		ctx.Core().ID() != target {
		// enqueue_to_backlog + IPI, then TCP/IP in the target's softirq.
		ctx.Charge(cpumodel.Netdev, h.costs.RPSSteer)
		tc := h.Sys.Core(target)
		h.rpsInFlight++
		ctx.Defer(func() {
			tc.RaiseSoftirq(func(ctx2 *exec.Ctx) {
				h.rpsInFlight--
				ctx2.Charge(cpumodel.Etc, h.costs.IRQEntry/3) // softirq entry
				h.process(ctx2, ep, s)
			})
		})
		return
	}
	h.process(ctx, ep, s)
}

// process runs socket-level Rx handling in the current softirq context.
func (h *Host) process(ctx *exec.Ctx, ep *Endpoint, s *skb.SKB) {
	// Attribute everything from here (socket lock, TCP Rx, ACK-triggered
	// pump and retransmissions) to the skb's flow; for pure ACKs s.Flow is
	// the data flow being acknowledged, which is the right bucket.
	ctx.SetFlowTag(int32(s.Flow))
	if (h.prof != nil || h.mt != nil) && s.Ack == nil {
		s.TCPRxAt = ctx.Now()
	}
	// Socket lock: cheap when the application shares this core,
	// contended otherwise.
	if ctx.Core().ID() == ep.appCore {
		ctx.Charge(cpumodel.Lock, h.costs.SockLockFast)
	} else {
		ctx.Charge(cpumodel.Lock, h.costs.SockLockContended)
		h.ctrSteerMiss.Inc()
	}
	if s.Ack == nil && s.Len > 0 {
		h.skbSizes.Record(float64(s.Len))
		h.tracer.Emit(trace.Event{At: ctx.Now(), Host: h.name, Core: ctx.Core().ID(),
			Flow: s.Flow, Kind: trace.DeliverSKB, A: s.Seq, B: int64(s.Len)})
	}
	ep.conn.OnSegment(ctx, s)
}

// EnableTelemetry registers this host's metrics into reg, prefixed with
// the host name (e.g. "sender/copied_bytes"). Call after Connect (the
// NIC's gauges ride along) and before opening connections (endpoints
// register per-flow gauges as they appear). No-op on a nil registry.
func (h *Host) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	h.telemetry = reg
	p := h.name + "/"
	reg.Gauge(p+"copied_bytes", func() float64 { return float64(h.copied) })
	reg.Gauge(p+"written_bytes", func() float64 { return float64(h.written) })
	reg.Gauge(p+"copy_miss_rate", func() float64 { return h.CopyMissRate() })
	reg.Gauge(p+"skb_avg_bytes", func() float64 { return h.skbSizes.Mean() })
	reg.Gauge(p+"latency_p99_us", func() float64 { return h.latency.Quantile(0.99) / 1e3 })
	reg.Gauge(p+"unsteered", func() float64 { return float64(h.unsteered) })
	h.ctrSteerMiss = reg.Counter(p + "steer_miss")
	if h.NIC != nil {
		h.NIC.RegisterTelemetry(reg, p+"nic/")
	}
	if h.DCA != nil {
		reg.Gauge(p+"ddio/hit_rate", func() float64 { return 1 - h.DCA.Stats().MissRate() })
		reg.Gauge(p+"ddio/resident_pages", func() float64 { return float64(h.DCA.Resident()) })
	}
	for i := 0; i < h.spec.NumCores(); i++ {
		c := h.Sys.Core(i)
		cp := fmt.Sprintf("%score%02d/", p, i)
		reg.Gauge(cp+"softirq_us", func() float64 { return c.SoftirqTime().Seconds() * 1e6 })
		reg.Gauge(cp+"thread_us", func() float64 { return c.ThreadTime().Seconds() * 1e6 })
		reg.Gauge(cp+"runq", func() float64 { return float64(c.RunqLen()) })
		reg.Gauge(cp+"runq_wait_us", func() float64 { return c.RunqWait().Seconds() * 1e6 })
	}
}

// registerFlowTelemetry adds per-flow TCP gauges for a newly opened
// endpoint (sender-side state: cwnd, srtt, retransmits, receive buffer).
func (h *Host) registerFlowTelemetry(ep *Endpoint) {
	p := fmt.Sprintf("%s/flow%03d/", h.name, ep.txFlow)
	conn := ep.conn
	h.telemetry.Gauge(p+"cwnd_bytes", func() float64 { return float64(conn.CC().Cwnd()) })
	h.telemetry.Gauge(p+"srtt_ns", func() float64 { return float64(conn.SRTT().Nanoseconds()) })
	h.telemetry.Gauge(p+"retransmits", func() float64 { return float64(conn.Stats().Retransmits) })
	h.telemetry.Gauge(p+"rcvbuf_bytes", func() float64 { return float64(conn.RcvBuf()) })
}

// EnableSpanTrace streams per-core execution spans (work-item start/end
// with dominant Table-1 category and cycles charged) into the host's
// tracer; pair with a flow-unfiltered tracer and the Chrome-trace
// exporter for a Perfetto view of the run.
func (h *Host) EnableSpanTrace() {
	h.Sys.SetSpanObserver(func(core int, softirq bool, thread string,
		start, end sim.Time, acct *cpumodel.Breakdown, cycles units.Cycles) {
		if h.tracer == nil {
			return
		}
		startKind, endKind := trace.ThreadStart, trace.ThreadEnd
		if softirq {
			startKind, endKind = trace.SoftirqStart, trace.SoftirqEnd
		}
		dom := 0
		for i := 1; i < len(acct); i++ {
			if acct[i] > acct[dom] {
				dom = i
			}
		}
		h.tracer.Emit(trace.Event{At: start, Host: h.name, Core: core,
			Kind: startKind, A: int64(dom), B: int64(cycles)})
		h.tracer.Emit(trace.Event{At: end, Host: h.name, Core: core,
			Kind: endKind, A: int64(dom), B: int64(cycles)})
	})
}

// ResetMetrics starts a measurement window: clears CPU accounting, cache
// stats and host counters accumulated during warm-up.
func (h *Host) ResetMetrics() {
	h.Sys.ResetAccounting()
	if h.chkLedger != nil {
		// The ledger shadows the Breakdown accounting; reset them together
		// or cycle conservation trivially breaks at the warmup boundary.
		h.chkLedger.Reset()
	}
	if h.DCA != nil {
		h.DCA.ResetStats()
	}
	h.copied, h.written = 0, 0
	h.copyHitB, h.copyMissB = 0, 0
	h.latency.Reset()
	h.skbSizes.Reset()
}

// Copied returns bytes delivered to applications since the last reset.
func (h *Host) Copied() units.Bytes { return h.copied }

// Written returns bytes applications pushed since the last reset.
func (h *Host) Written() units.Bytes { return h.written }

// CopyMissRate returns the fraction of copied bytes that missed cache.
func (h *Host) CopyMissRate() float64 {
	total := h.copyHitB + h.copyMissB
	if total == 0 {
		return 0
	}
	return float64(h.copyMissB) / float64(total)
}

// Latency returns the NAPI-to-copy latency histogram (nanoseconds).
func (h *Host) Latency() *metrics.Histogram { return h.latency }

// SKBSizes returns the post-GRO data skb size histogram (bytes).
func (h *Host) SKBSizes() *metrics.Histogram { return h.skbSizes }

// Endpoints returns the number of registered endpoints (tests).
func (h *Host) Endpoints() int { return len(h.byTx) }

// AggregateConnStats sums TCP statistics over all local endpoints.
func (h *Host) AggregateConnStats() tcp.Stats {
	var out tcp.Stats
	for _, ep := range h.byTx {
		st := ep.conn.Stats()
		out.SentBytes += st.SentBytes
		out.RetransBytes += st.RetransBytes
		out.Retransmits += st.Retransmits
		out.FastRetransmit += st.FastRetransmit
		out.Timeouts += st.Timeouts
		out.AcksSent += st.AcksSent
		out.DupAcksSent += st.DupAcksSent
		out.AcksReceived += st.AcksReceived
		out.DupAcksRecv += st.DupAcksRecv
		out.DeliveredBytes += st.DeliveredBytes
		out.OOOSegments += st.OOOSegments
		out.Probes += st.Probes
	}
	return out
}

// senderMissRate estimates the sender-copy cache miss probability from
// the host's in-use send-buffer working set.
func (h *Host) senderMissRate() float64 {
	ws := units.Bytes(float64(h.sndInUse) * senderWSFraction)
	m := h.senderWS.MissRate(ws)
	if m > senderMissCap {
		m = senderMissCap
	}
	return m
}

// flowIDs hands out unique flow identifiers for one connected host pair.
// Scoping the counter to the pair (instead of a package global) keeps
// concurrent simulations deterministic and data-race free.
type flowIDs struct {
	next skb.FlowID
}

func (f *flowIDs) alloc() skb.FlowID {
	f.next++
	return f.next
}

// OpenConn opens a connection between aCore on host a and bCore on host
// b, returning the two endpoints. Both directions are set up (full
// duplex); steering entries are installed per each host's policy.
func OpenConn(a *Host, aCore int, b *Host, bCore int) (*Endpoint, *Endpoint) {
	if a.NIC == nil || b.NIC == nil {
		panic("core: Connect the hosts before opening connections")
	}
	flowAB := a.flows.alloc()
	flowBA := a.flows.alloc()
	epA := newEndpoint(a, aCore, flowAB, flowBA)
	epB := newEndpoint(b, bCore, flowBA, flowAB)
	a.register(epA)
	b.register(epB)
	return epA, epB
}

func (h *Host) register(ep *Endpoint) {
	if _, dup := h.byTx[ep.txFlow]; dup {
		panic(fmt.Sprintf("core: duplicate tx flow %d", ep.txFlow))
	}
	h.byTx[ep.txFlow] = ep
	h.byRx[ep.rxFlow] = ep
	irqCore := h.steeringCoreFor(ep.appCore)
	// Both incoming data (rxFlow) and incoming ACKs (txFlow) steer to the
	// same queue.
	h.steerTable[ep.rxFlow] = irqCore
	h.steerTable[ep.txFlow] = irqCore
	h.installSteering()
	if h.telemetry != nil {
		h.registerFlowTelemetry(ep)
	}
	if h.opts.RcvSchedulerK > 0 {
		h.schedGroups[ep.appCore] = append(h.schedGroups[ep.appCore], ep)
		h.startRcvScheduler()
	}
}

// rcvSchedPeriod is the receiver-driven scheduler's rotation interval.
const rcvSchedPeriod = time.Millisecond

// startRcvScheduler arms the Homa/pHost-inspired receiver scheduler (§4):
// each rotation, at most K connections per receiving core are granted a
// window (an equal share of the DCA capacity); the rest are clamped to
// zero. Bounding concurrent senders bounds DDIO occupancy and restores
// cache hits under incast — the control TCP's sender-driven design
// denies the receiver (§3.3).
func (h *Host) startRcvScheduler() {
	if h.schedStarted {
		return
	}
	h.schedStarted = true
	k := h.opts.RcvSchedulerK
	clamp := h.spec.DCACapacity() / units.Bytes(2*k)
	var tick func()
	tick = func() {
		for core, eps := range h.schedGroups {
			if len(eps) <= k {
				continue
			}
			h.schedIdx[core] = (h.schedIdx[core] + 1) % len(eps)
			start := h.schedIdx[core]
			for i, ep := range eps {
				active := false
				for j := 0; j < k; j++ {
					if (start+j)%len(eps) == i {
						active = true
						break
					}
				}
				ep, active := ep, active
				h.Sys.Core(h.processingCoreFor(ep)).RaiseSoftirq(func(ctx *exec.Ctx) {
					ctx.Charge(cpumodel.Etc, h.costs.TimerFire)
					if active {
						ep.conn.SetWindowClamp(ctx, clamp)
					} else {
						ep.conn.SetWindowClamp(ctx, 0)
					}
				})
			}
		}
		h.eng.After(rcvSchedPeriod, tick)
	}
	h.eng.After(rcvSchedPeriod, tick)
}
