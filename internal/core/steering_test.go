package core

import (
	"testing"
	"time"

	"hostsim/internal/cpumodel"
	"hostsim/internal/units"
)

func TestSteeringModeStrings(t *testing.T) {
	want := map[SteeringMode]string{
		SteerARFS: "aRFS", SteerWorstCase: "worst-case", SteerRSSHash: "rss-hash",
		SteerRFS: "rfs", SteerRPS: "rps", SteerSameNUMA: "same-numa",
		SteeringMode(42): "invalid",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestSameNUMASteeringStaysOnNode(t *testing.T) {
	opts := AllOpts()
	opts.Steering = SteerSameNUMA
	r := newRig(t, opts)
	spec := r.a.Spec()
	for _, core := range []int{0, 5, 7, 23} {
		irq := r.a.steeringCoreFor(core)
		if irq == core {
			t.Errorf("core %d: IRQ core must differ from the app core", core)
		}
		if spec.NodeOf(irq) != spec.NodeOf(core) {
			t.Errorf("core %d: IRQ core %d left the NUMA node", core, irq)
		}
	}
}

func TestRFSProcessesOnAppCore(t *testing.T) {
	opts := AllOpts()
	opts.Steering = SteerRFS
	r := newRig(t, opts)
	epA, epB := OpenConn(r.a, 0, r.b, 3)
	if got := r.b.processingCoreFor(epB); got != 3 {
		t.Errorf("RFS processing core = %d, want app core 3", got)
	}
	transfer(t, r, epA, epB, units.MB, 60*time.Millisecond)
	// The app core carries TCP processing; some other (RSS) core carries
	// the NAPI/driver work.
	appBusy := r.b.Sys.Core(3).BusyTime()
	if appBusy == 0 {
		t.Fatal("app core idle under RFS")
	}
	var otherBusy time.Duration
	for i := 0; i < r.b.Sys.NumCores(); i++ {
		if i != 3 {
			otherBusy += r.b.Sys.Core(i).BusyTime()
		}
	}
	if otherBusy == 0 {
		t.Error("RFS should leave NAPI work on the RSS core")
	}
}

func TestRPSProcessingCoreIsStable(t *testing.T) {
	opts := AllOpts()
	opts.Steering = SteerRPS
	r := newRig(t, opts)
	_, epB := OpenConn(r.a, 0, r.b, 0)
	c1 := r.b.processingCoreFor(epB)
	c2 := r.b.processingCoreFor(epB)
	if c1 != c2 {
		t.Error("RPS target must be deterministic per flow")
	}
	if c1 < 0 || c1 >= r.b.Spec().NumCores() {
		t.Errorf("RPS target %d out of range", c1)
	}
}

func TestZeroCopyTxSkipsCopyAndPages(t *testing.T) {
	opts := AllOpts()
	opts.ZeroCopyTx = true
	r := newRig(t, opts)
	epA, epB := OpenConn(r.a, 0, r.b, 0)
	transfer(t, r, epA, epB, units.MB, 60*time.Millisecond)
	sBd := r.a.Sys.TotalBreakdown()
	if sBd[cpumodel.DataCopy] != 0 {
		t.Errorf("tx zero-copy charged %d copy cycles", sBd[cpumodel.DataCopy])
	}
	if sBd[cpumodel.Memory] == 0 {
		t.Error("pin/completion costs should land in Memory")
	}
	if r.b.Copied() != units.MB {
		t.Errorf("receiver got %v, want 1MB", r.b.Copied())
	}
}

func TestZeroCopyRxSkipsCopy(t *testing.T) {
	opts := AllOpts()
	opts.ZeroCopyRx = true
	r := newRig(t, opts)
	epA, epB := OpenConn(r.a, 0, r.b, 0)
	got := transfer(t, r, epA, epB, units.MB, 60*time.Millisecond)
	if got != units.MB {
		t.Fatalf("delivered %v", got)
	}
	rBd := r.b.Sys.TotalBreakdown()
	if rBd[cpumodel.DataCopy] != 0 {
		t.Errorf("rx zero-copy charged %d copy cycles", rBd[cpumodel.DataCopy])
	}
	// Pages must still be conserved (freed after remap).
	if r.b.Alloc.InUse() > 40000 { // ring stashes only
		t.Errorf("pages leaked: %d in use", r.b.Alloc.InUse())
	}
}

func TestTuningKnobsReachSubsystems(t *testing.T) {
	opts := AllOpts()
	opts.SchedGranularity = 33 * time.Microsecond
	opts.SleeperCredit = 5 * time.Microsecond
	opts.PagesetCap = 7
	opts.TSQBytes = 96 * units.KB
	r := newRig(t, opts)
	epA, epB := OpenConn(r.a, 0, r.b, 0)
	// TSQ cap: the conn never holds more than the budget + one segment.
	transfer(t, r, epA, epB, units.MB, 60*time.Millisecond)
	if q := epA.Conn().InQdisc(); q > 160*units.KB {
		t.Errorf("TSQ override ignored: %v in qdisc", q)
	}
	// Pageset cap: freelists never exceed 7.
	for i := 0; i < r.b.Sys.NumCores(); i++ {
		if r.b.Alloc.PagesetLen(i) > 7 {
			t.Errorf("pageset cap override ignored: %d", r.b.Alloc.PagesetLen(i))
		}
	}
}
