package core

import (
	"fmt"
	"time"

	"hostsim/internal/fabric"
	"hostsim/internal/nic"
	"hostsim/internal/skb"
)

// Cluster is N hosts attached to a single-stage switch fabric — the
// generalization of the Connect host pair. Construction wires every
// host's NIC to its fabric ingress port and shares the fast-path pools
// and the flow-ID counter cluster-wide.
//
// The pools are cluster-wide (not per-host) for the same reason the pair
// shares them: a frame is born on one host and dies on another, so only a
// pool spanning every producer and consumer stays balanced. The pool is a
// plain free list — its scope changes no allocation behavior, only where
// recycled buffers may resurface, which the conservation checker audits
// cluster-wide.
type Cluster struct {
	hosts []*Host
	fab   *fabric.Fabric
	// peer maps each endpoint's tx flow to the host holding the receiving
	// endpoint, for the cross-host sequence-space audit.
	peer map[skb.FlowID]*Host
}

// ConnectFabric attaches hosts to a new switch fabric and instantiates
// their NICs. Call exactly once per host set, before opening connections.
// Zero-valued fcfg.Ports/LinkRate/Delay default to the host count and the
// machine spec's link rate and one-way delay, so a default fabric's ports
// behave exactly like the direct link.
func ConnectFabric(hosts []*Host, fcfg fabric.Config) *Cluster {
	if len(hosts) < 2 {
		panic("core: a fabric needs at least 2 hosts")
	}
	for _, h := range hosts {
		if h.NIC != nil {
			panic("core: host already connected")
		}
	}
	spec := hosts[0].spec
	fcfg.Ports = len(hosts)
	if fcfg.LinkRate == 0 {
		fcfg.LinkRate = spec.LinkRate
	}
	if fcfg.Delay == 0 {
		fcfg.Delay = time.Duration(spec.OneWayDelay) * time.Nanosecond
	}
	c := &Cluster{hosts: hosts, peer: make(map[skb.FlowID]*Host)}
	c.fab = fabric.New(hosts[0].eng, fcfg, func(port int, f *skb.Frame) {
		c.hosts[port].NIC.ReceiveFromWire(f)
	})
	// Cluster-wide pools and flow numbering, exactly as Connect scopes
	// them to the pair.
	skbs, frames := &skb.Pool{}, &skb.FramePool{}
	flows := hosts[0].flows
	for i, h := range hosts {
		h.NIC = nic.New(h.eng, h.Sys, h.Alloc, h.DCA, h.opts.nicConfig(), c.fab.Port(i), h.deliver)
		h.NIC.SetTxComplete(h.txComplete)
		h.NIC.SetPools(skbs, frames)
		h.flows = flows
		h.installSteering()
	}
	return c
}

// Hosts returns the attached hosts in port order.
func (c *Cluster) Hosts() []*Host { return c.hosts }

// Fabric returns the switch.
func (c *Cluster) Fabric() *fabric.Fabric { return c.fab }

// OpenConn opens a connection from aCore of host index a to bCore of host
// index b and registers both flow directions with the fabric's routing
// table. The first returned endpoint is the a-side.
func (c *Cluster) OpenConn(a, aCore, b, bCore int) (*Endpoint, *Endpoint) {
	if a == b {
		panic(fmt.Sprintf("core: fabric connection %d->%d loops back to its own host", a, b))
	}
	epA, epB := OpenConn(c.hosts[a], aCore, c.hosts[b], bCore)
	// Both directions of the connection share the same two attachment
	// ports; pure ACKs traverse the fabric in reverse, which the
	// ingress-exclusion routing rule handles without per-frame state.
	c.fab.Register(epA.TxFlow(), a, b)
	c.fab.Register(epA.RxFlow(), b, a)
	c.peer[epA.TxFlow()] = c.hosts[b]
	c.peer[epB.TxFlow()] = c.hosts[a]
	return epA, epB
}
