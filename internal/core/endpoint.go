package core

import (
	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/mem"
	"hostsim/internal/skb"
	"hostsim/internal/tcp"
	"hostsim/internal/trace"
	"hostsim/internal/units"
)

// Notify carries the application-layer callbacks of a socket. Either may
// be nil.
type Notify struct {
	// Readable fires in softirq context when in-order data arrives.
	Readable func(ctx *exec.Ctx, ep *Endpoint)
	// Writable fires when send-buffer space opens after ACKs.
	Writable func(ctx *exec.Ctx, ep *Endpoint)
}

// Endpoint is a socket on a host: one TCP connection endpoint bound to an
// application core, wired through the full Fig. 1 data path.
type Endpoint struct {
	host    *Host
	appCore int
	txFlow  skb.FlowID
	rxFlow  skb.FlowID
	conn    *tcp.Conn
	notify  Notify

	txCompPending   units.Bytes // wire departures awaiting completion softirq
	txCompScheduled bool
	txCompFn        func(*exec.Ctx) // bound completion softirq body, allocated once

	// Hot-path scratch: reused across calls, never retained by callees.
	segSizes []units.Bytes // sendSegment segmentation scratch
	txFrames []*skb.Frame  // sendSegment frame-batch scratch
	oneFrame [1]*skb.Frame // sendAck/sendProbe single-frame scratch
}

func newEndpoint(h *Host, appCore int, txFlow, rxFlow skb.FlowID) *Endpoint {
	ep := &Endpoint{host: h, appCore: appCore, txFlow: txFlow, rxFlow: rxFlow}
	cfg := tcp.DefaultConfig(h.opts.MSS())
	cfg.SegmentBytes = h.opts.SegmentBytes()
	if h.opts.SndBufBytes > 0 {
		cfg.SndBuf = h.opts.SndBufBytes
	}
	if h.opts.TSQBytes > 0 {
		cfg.TSQBytes = h.opts.TSQBytes
	}
	if h.opts.RcvBufBytes > 0 {
		// The paper's override pins tcp_rmem, i.e. sk_rcvbuf itself (half
		// of which is advertised as window, per tcp_adv_win_scale=1).
		cfg.RcvBuf = h.opts.RcvBufBytes
		cfg.RcvBufMax = 0 // fixed, as in the Fig. 3e/3f overrides
	} else if h.opts.DCAAwareDRS {
		// §4 prototype: cap autotuning at the DDIO capacity so the
		// advertised window (= half the buffer) stays within ~half the
		// DCA slice and DMAed data survives until the copy.
		cfg.RcvBufMax = h.spec.DCACapacity()
	}
	cc := tcp.NewCC(h.opts.CC, cfg.MSS)
	ep.conn = tcp.New(h.eng, h.costs, cfg, txFlow, cc, tcp.Hooks{
		SendSegment:  ep.sendSegment,
		SendAck:      ep.sendAck,
		SendProbe:    ep.sendProbe,
		Softirq:      ep.softirq,
		OnReadable:   ep.onReadable,
		OnWritable:   ep.onWritable,
		OnAckedPages: ep.onAckedPages,
		Recycle:      ep.recycleSKB,
		NewAck:       func() *skb.AckInfo { return ep.host.NIC.FramePool().GetAck() },
	})
	ep.txCompFn = func(ctx *exec.Ctx) {
		ep.txCompScheduled = false
		pend := ep.txCompPending
		ep.txCompPending = 0
		if pend == 0 {
			return
		}
		ctx.Charge(cpumodel.Netdev, h.costs.TxComplete)
		ep.conn.TxCompleted(ctx, pend)
	}
	return ep
}

// AppCore returns the application core this socket is bound to.
func (ep *Endpoint) AppCore() int { return ep.appCore }

// TxFlow returns the flow id of this endpoint's outgoing direction.
func (ep *Endpoint) TxFlow() skb.FlowID { return ep.txFlow }

// RxFlow returns the flow id of this endpoint's incoming direction.
func (ep *Endpoint) RxFlow() skb.FlowID { return ep.rxFlow }

// Host returns the owning host.
func (ep *Endpoint) Host() *Host { return ep.host }

// Conn exposes the TCP state (stats, buffers).
func (ep *Endpoint) Conn() *tcp.Conn { return ep.conn }

// SetNotify installs the application callbacks.
func (ep *Endpoint) SetNotify(n Notify) { ep.notify = n }

// ---------------------------------------------------------------------------
// Sender-side data path (Fig. 1 left): write syscall -> skb alloc -> data
// copy -> TCP/IP -> (GSO) -> qdisc/driver -> NIC.

// Write performs one send syscall of up to n bytes, returning the bytes
// accepted (0 when the send buffer is full; the application should then
// block and wait for Writable).
func (ep *Endpoint) Write(ctx *exec.Ctx, n units.Bytes) units.Bytes {
	h := ep.host
	costs := h.costs
	prevTag := ctx.FlowTag()
	ctx.SetFlowTag(int32(ep.txFlow))
	defer ctx.SetFlowTag(prevTag)
	ctx.Charge(cpumodel.Etc, costs.SyscallBase)
	free := ep.conn.SndBufFree()
	if free <= 0 {
		return 0
	}
	w := n
	if w > free {
		w = free
	}
	// Socket lock from process context.
	ctx.Charge(cpumodel.Lock, costs.SockLockFast)
	// One kernel skb per tx aggregate.
	segs := int((w + h.opts.SegmentBytes() - 1) / h.opts.SegmentBytes())
	if segs < 1 {
		segs = 1
	}
	ctx.Charge(cpumodel.Memory, costs.SKBAlloc*units.Cycles(segs))
	ctx.Charge(cpumodel.SKBMgmt, costs.SKBBuild*units.Cycles(segs))
	var pages []mem.Page
	if h.opts.ZeroCopyTx {
		// MSG_ZEROCOPY: pin the application's pages and DMA them in
		// place — no user-to-kernel copy, but get_user_pages and a
		// completion notification are paid per send.
		ctx.Charge(cpumodel.Memory, costs.ZCTxPin*units.Cycles(h.spec.PagesFor(w)))
		ctx.Charge(cpumodel.Memory, costs.ZCTxComplete)
	} else {
		// Data copy user -> kernel. Warmth depends on the host-wide send
		// working set (see senderWSFraction).
		miss := h.senderMissRate()
		per := units.PerByte(float64(costs.CopySenderWarm)*(1-miss) + float64(costs.CopyMissLocal)*miss)
		ctx.ChargeBytes(cpumodel.DataCopy, per, w)
		// Recycle the page-slice slab of an earlier, fully acked chunk.
		pages = h.Alloc.AppendAlloc(ctx, ep.appCore, h.spec.PagesFor(w), ep.conn.PageSlab())
		h.sndInUse += w
	}
	h.written += w
	h.tracer.Emit(trace.Event{At: ctx.Now(), Host: h.name, Core: ep.appCore,
		Flow: ep.txFlow, Kind: trace.AppWrite, B: int64(w)})
	// Message tracing: register the accepted bytes before TCP sees them,
	// so segments emitted inside this SendData attach to their message.
	h.mt.OnWrite(ep.txFlow, int64(w), ctx.Now())
	ep.conn.SendData(ctx, w, pages)
	return w
}

// sendSegment is the TCP tx hook: protocol processing, segmentation and
// handoff to the NIC.
func (ep *Endpoint) sendSegment(ctx *exec.Ctx, c *tcp.Conn, seq int64, length units.Bytes, retrans bool) {
	h := ep.host
	costs := h.costs
	ctx.Charge(cpumodel.TCPIP, costs.TCPTxPerSKB)
	kind := trace.TxSegment
	if retrans {
		kind = trace.Retransmit
	}
	h.tracer.Emit(trace.Event{At: ctx.Now(), Host: h.name, Core: ctx.Core().ID(),
		Flow: c.Flow(), Kind: kind, A: seq, B: int64(length)})
	sizes := skb.AppendSegmentSizes(ep.segSizes[:0], length, h.opts.MSS())
	ep.segSizes = sizes
	if !h.opts.TSO && h.opts.GSO && len(sizes) > 1 {
		// Software segmentation in the netdevice subsystem.
		perSeg := costs.GSOSegment + costs.SKBSplit
		ctx.Charge(cpumodel.Netdev, costs.GSOSegment*units.Cycles(len(sizes)))
		ctx.Charge(cpumodel.SKBMgmt, costs.SKBSplit*units.Cycles(len(sizes)))
		_ = perSeg
	}
	ctx.Charge(cpumodel.Netdev, costs.QdiscEnqueue)
	// DMA mapping of the payload pages (and unmap at completion; both are
	// charged here as the completion interrupt is not modelled apart).
	pages := h.spec.PagesFor(length)
	h.Alloc.DMAMap(ctx, pages)
	h.Alloc.DMAUnmap(ctx, pages)
	// The message tracer's transmission mark must carry the exact instant
	// the frames are stamped below, so a first transmission telescopes to
	// a zero retx_wait.
	h.mt.OnSegment(c.Flow(), seq, length, retrans, ctx.Now())
	fp := h.NIC.FramePool()
	frames := ep.txFrames[:0]
	s := seq
	for _, l := range sizes {
		f := fp.Get()
		f.Flow, f.Seq, f.Len = c.Flow(), s, l
		if h.prof != nil || h.mt != nil {
			f.WriteAt = c.WriteTimeOf(s)
			f.TCPTxAt = ctx.Now()
		}
		frames = append(frames, f)
		s += int64(l)
	}
	h.NIC.SendFrames(ctx, frames) // copies the slice; safe to reuse
	for i := range frames {
		frames[i] = nil
	}
	ep.txFrames = frames[:0]
}

func (ep *Endpoint) sendAck(ctx *exec.Ctx, c *tcp.Conn, info *skb.AckInfo) {
	ep.host.tracer.Emit(trace.Event{At: ctx.Now(), Host: ep.host.name, Core: ctx.Core().ID(),
		Flow: ep.rxFlow, Kind: trace.AckSent, A: info.Cum, B: int64(info.Window)})
	ctx.Charge(cpumodel.Netdev, ep.host.costs.QdiscEnqueue/2)
	// The ACK acknowledges the incoming flow: it carries rxFlow so the
	// peer's NIC steers it to the data sender's queue and socket.
	f := ep.host.NIC.FramePool().Get()
	f.Flow, f.Ack = ep.rxFlow, info
	ep.oneFrame[0] = f
	ep.host.NIC.SendFrames(ctx, ep.oneFrame[:]) // copies the slice; safe to reuse
	ep.oneFrame[0] = nil
}

func (ep *Endpoint) sendProbe(ctx *exec.Ctx, c *tcp.Conn) {
	f := ep.host.NIC.FramePool().Get()
	f.Flow = c.Flow()
	ep.oneFrame[0] = f
	ep.host.NIC.SendFrames(ctx, ep.oneFrame[:]) // copies the slice; safe to reuse
	ep.oneFrame[0] = nil
}

// recycleSKB returns a fully consumed skb to the host pair's pool (nil
// pool = no-op, the GC takes it). An attached AckInfo dies here — the skb
// is the record's last reference — so it goes back to the frame pool the
// peer's sendAck draws from.
func (ep *Endpoint) recycleSKB(s *skb.SKB) {
	if s.Ack != nil {
		ep.host.NIC.FramePool().PutAck(s.Ack)
		s.Ack = nil
	}
	ep.host.NIC.SKBPool().Put(s)
}

// softirq runs fn on the endpoint's TCP-processing core (timer handlers).
// With a profiler attached the handler's charges are tagged with the
// endpoint's tx flow; without one, no wrapper closure is allocated.
func (ep *Endpoint) softirq(fn func(*exec.Ctx)) {
	c := ep.host.Sys.Core(ep.host.processingCoreFor(ep))
	if ep.host.prof != nil {
		flow := int32(ep.txFlow)
		c.RaiseSoftirq(func(ctx *exec.Ctx) {
			ctx.SetFlowTag(flow)
			fn(ctx)
		})
		return
	}
	c.RaiseSoftirq(fn)
}

func (ep *Endpoint) onReadable(ctx *exec.Ctx, c *tcp.Conn) {
	if ep.notify.Readable != nil {
		ep.notify.Readable(ctx, ep)
	}
}

func (ep *Endpoint) onWritable(ctx *exec.Ctx, c *tcp.Conn) {
	if ep.notify.Writable != nil {
		ep.notify.Writable(ctx, ep)
	}
}

// onAckedPages frees sender pages once the peer acknowledged the bytes.
func (ep *Endpoint) onAckedPages(ctx *exec.Ctx, c *tcp.Conn, pages []mem.Page) {
	h := ep.host
	ctx.Charge(cpumodel.SKBMgmt, h.costs.SKBRelease)
	ctx.Charge(cpumodel.Memory, h.costs.SKBFree)
	released := units.Bytes(len(pages)) * h.spec.PageSize
	if released > h.sndInUse {
		released = h.sndInUse
	}
	h.sndInUse -= released
	h.Alloc.Free(ctx, ctx.Core().ID(), pages)
}

// ---------------------------------------------------------------------------
// Receiver-side data path (Fig. 1 right): socket receive queue -> recv
// syscall -> data copy (probing DDIO) -> page free.

// Readable returns the bytes queued for reading.
func (ep *Endpoint) Readable() units.Bytes { return ep.conn.Readable() }

// Read performs one recv syscall of up to max bytes, copying the payload
// to userspace and freeing kernel pages. Returns bytes read (0 = would
// block).
func (ep *Endpoint) Read(ctx *exec.Ctx, max units.Bytes) units.Bytes {
	h := ep.host
	costs := h.costs
	prevTag := ctx.FlowTag()
	ctx.SetFlowTag(int32(ep.rxFlow))
	defer ctx.SetFlowTag(prevTag)
	ctx.Charge(cpumodel.Etc, costs.SyscallBase)
	skbs := ep.conn.Read(ctx, max)
	if len(skbs) == 0 {
		return 0
	}
	// Socket lock from process context: contended when softirq processing
	// runs on a different core (no aRFS/RFS).
	if h.processingCoreFor(ep) == ep.appCore {
		ctx.Charge(cpumodel.Lock, costs.SockLockFast)
	} else {
		ctx.Charge(cpumodel.Lock, costs.SockLockContended)
	}
	var total units.Bytes
	readerNode := h.spec.NodeOf(ep.appCore)
	nicNode := h.spec.NICNode
	for _, s := range skbs {
		h.latency.Record(float64(ctx.Now() - s.Born))
		total += s.Len
		if h.opts.ZeroCopyRx {
			// mmap-based receive: remap the payload pages into the
			// application instead of copying; pay the page-table work.
			ctx.Charge(cpumodel.Memory, costs.ZCRxMap*units.Cycles(len(s.Pages)))
			for _, p := range s.Pages {
				if h.DCA != nil && p.Node == nicNode {
					h.DCA.Drop(p.ID)
				}
			}
			ctx.Charge(cpumodel.SKBMgmt, costs.SKBRelease)
			ctx.Charge(cpumodel.Memory, costs.SKBFree)
			if len(s.Pages) > 0 {
				h.Alloc.Free(ctx, ep.appCore, s.Pages)
			}
			if h.prof != nil {
				h.prof.Lifecycle().Record(s, ctx.Now())
			}
			h.mt.OnDeliver(s, ctx.Now())
			ep.recycleSKB(s)
			continue
		}
		// Copy cost page by page: DDIO hit, local DRAM, or remote DRAM.
		remaining := s.Len
		for _, p := range s.Pages {
			chunk := h.spec.PageSize
			if chunk > remaining {
				chunk = remaining
			}
			remaining -= chunk
			var per units.PerByte
			resident := false
			if h.DCA != nil && p.Node == nicNode {
				resident = h.DCA.Probe(p.ID)
				h.DCA.Drop(p.ID)
			}
			switch {
			case resident && p.Node == readerNode:
				per = costs.CopyHit
				h.copyHitB += chunk
			case resident && p.Node != readerNode:
				// Data sits in the NIC-local L3 but the reader is on
				// another socket: a cross-socket access, effectively a
				// miss for the reader.
				per = costs.CopyMissRemote
				h.copyMissB += chunk
			case p.Node == readerNode:
				per = costs.CopyMissLocal
				h.copyMissB += chunk
			default:
				per = costs.CopyMissRemote
				h.copyMissB += chunk
			}
			ctx.ChargeBytes(cpumodel.DataCopy, per, chunk)
		}
		ctx.Charge(cpumodel.SKBMgmt, costs.SKBRelease)
		ctx.Charge(cpumodel.Memory, costs.SKBFree)
		if len(s.Pages) > 0 {
			h.Alloc.Free(ctx, ep.appCore, s.Pages)
		}
		if h.prof != nil {
			h.prof.Lifecycle().Record(s, ctx.Now())
		}
		h.mt.OnDeliver(s, ctx.Now())
		ep.recycleSKB(s)
	}
	h.copied += total
	h.tracer.Emit(trace.Event{At: ctx.Now(), Host: h.name, Core: ep.appCore,
		Flow: ep.rxFlow, Kind: trace.AppRead, B: int64(total)})
	return total
}
