package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"hostsim/internal/sim"
)

// Sampler snapshots a registry on a fixed simulated-time interval into a
// bounded ring of samples (oldest evicted first), giving a time-resolved
// view of the run without unbounded memory.
type Sampler struct {
	eng      *sim.Engine
	reg      *Registry
	interval time.Duration

	max     int
	times   []sim.Time
	rows    [][]float64
	next    int // ring write position once full
	wrapped bool
	evicted int64
	started bool
}

// NewSampler builds a sampler over reg with the given interval and ring
// capacity (maximum retained samples).
func NewSampler(eng *sim.Engine, reg *Registry, interval time.Duration, maxSamples int) *Sampler {
	if eng == nil || reg == nil {
		panic("telemetry: nil engine or registry")
	}
	if interval <= 0 {
		panic("telemetry: non-positive sample interval")
	}
	if maxSamples <= 0 {
		panic("telemetry: non-positive sample capacity")
	}
	return &Sampler{eng: eng, reg: reg, interval: interval, max: maxSamples}
}

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start schedules the first sample at absolute simulated time at (or now,
// if at is in the past) and every interval thereafter. Sampling is a pure
// read of simulation state: it never perturbs the simulated system.
func (s *Sampler) Start(at sim.Time) {
	if s.started {
		return
	}
	s.started = true
	if at < s.eng.Now() {
		at = s.eng.Now()
	}
	var tick func()
	tick = func() {
		s.Sample()
		s.eng.After(s.interval, tick)
	}
	s.eng.At(at, tick)
}

// Sample takes one snapshot of the registry at the engine's current time.
func (s *Sampler) Sample() {
	row := s.reg.Read()
	if len(s.times) < s.max {
		s.times = append(s.times, s.eng.Now())
		s.rows = append(s.rows, row)
		return
	}
	s.times[s.next] = s.eng.Now()
	s.rows[s.next] = row
	s.next = (s.next + 1) % s.max
	s.wrapped = true
	s.evicted++
}

// Count returns the number of retained samples.
func (s *Sampler) Count() int { return len(s.times) }

// Evicted returns how many samples the ring has discarded.
func (s *Sampler) Evicted() int64 { return s.evicted }

// Timeline copies the retained samples, oldest first, into a Timeline.
func (s *Sampler) Timeline() *Timeline {
	t := &Timeline{
		Names: s.reg.Names(),
		Times: make([]time.Duration, 0, len(s.times)),
		Rows:  make([][]float64, 0, len(s.rows)),
	}
	appendFrom := func(i int) {
		t.Times = append(t.Times, s.times[i].Duration())
		row := make([]float64, len(s.rows[i]))
		copy(row, s.rows[i])
		// Rows sampled before later metric registrations are shorter;
		// pad so every row has one column per name.
		for len(row) < len(t.Names) {
			row = append(row, 0)
		}
		t.Rows = append(t.Rows, row)
	}
	if s.wrapped {
		for i := s.next; i < len(s.times); i++ {
			appendFrom(i)
		}
		for i := 0; i < s.next; i++ {
			appendFrom(i)
		}
	} else {
		for i := range s.times {
			appendFrom(i)
		}
	}
	return t
}

// Timeline is a sampled multi-metric timeseries: one column per metric
// name, one row per sample instant (simulated time since the start of the
// run), oldest first.
type Timeline struct {
	Names []string
	Times []time.Duration
	Rows  [][]float64
}

// Len returns the number of samples.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	return len(t.Times)
}

// formatValue renders a sample deterministically (shortest round-trip
// representation, so identical runs produce identical bytes).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV writes the timeline as CSV: a header of time_ns plus the
// metric names, then one row per sample.
func (t *Timeline) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("time_ns"); err != nil {
		return err
	}
	for _, n := range t.Names {
		if _, err := fmt.Fprintf(bw, ",%s", n); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for i, at := range t.Times {
		if _, err := bw.WriteString(strconv.FormatInt(int64(at), 10)); err != nil {
			return err
		}
		for _, v := range t.Rows[i] {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
			if _, err := bw.WriteString(formatValue(v)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL writes the timeline as JSON lines: a header object
// {"names":[...]} followed by one {"t_ns":...,"v":[...]} object per
// sample. Every line is a complete JSON document.
func (t *Timeline) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := struct {
		Names []string `json:"names"`
	}{Names: t.Names}
	if header.Names == nil {
		header.Names = []string{}
	}
	if err := enc.Encode(&header); err != nil {
		return err
	}
	for i, at := range t.Times {
		row := struct {
			TNs int64     `json:"t_ns"`
			V   []float64 `json:"v"`
		}{TNs: int64(at), V: t.Rows[i]}
		if err := enc.Encode(&row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Column returns the values of one metric across all samples; ok is false
// if the name is not in the timeline.
func (t *Timeline) Column(name string) (vals []float64, ok bool) {
	col := -1
	for i, n := range t.Names {
		if n == name {
			col = i
			break
		}
	}
	if col < 0 {
		return nil, false
	}
	vals = make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		vals[i] = row[col]
	}
	return vals, true
}
