package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hostsim/internal/sim"
	"hostsim/internal/trace"
)

// chromeEvent mirrors the trace-event fields for round-trip decoding.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

func at(d time.Duration) sim.Time { return sim.Time(d) }

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, buf.String())
	}
	if len(evs) != 0 {
		t.Errorf("want empty array, got %v", evs)
	}
}

func TestChromeTraceSpansAndInstants(t *testing.T) {
	events := []trace.Event{
		{At: at(0), Host: "sender", Core: 0, Kind: trace.ThreadStart, A: 0, B: 500},
		{At: at(2 * time.Microsecond), Host: "sender", Core: 0, Kind: trace.ThreadEnd, A: 0, B: 500},
		{At: at(3 * time.Microsecond), Host: "receiver", Core: 1, Kind: trace.SoftirqStart, A: 2, B: 900},
		{At: at(4 * time.Microsecond), Host: "receiver", Core: 1, Flow: 1,
			Kind: trace.DeliverSKB, A: 4096, B: 65536},
		{At: at(5 * time.Microsecond), Host: "receiver", Core: 1, Kind: trace.SoftirqEnd, A: 2, B: 900},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}

	var meta, spans, instants []chromeEvent
	for _, e := range evs {
		switch e.Ph {
		case "M":
			meta = append(meta, e)
		case "X":
			spans = append(spans, e)
		case "i":
			instants = append(instants, e)
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if len(meta) != 2 {
		t.Fatalf("want 2 process_name records, got %d", len(meta))
	}
	if meta[0].Args["name"] != "sender" || meta[1].Args["name"] != "receiver" {
		t.Errorf("process names wrong: %v", meta)
	}
	if meta[0].Pid == meta[1].Pid {
		t.Error("hosts must map to distinct pids")
	}
	if len(spans) != 2 {
		t.Fatalf("want 2 complete spans, got %d", len(spans))
	}
	thread, softirq := spans[0], spans[1]
	if thread.Cat != "thread" || thread.Ts != 0 || thread.Dur != 2 {
		t.Errorf("thread span = %+v", thread)
	}
	if softirq.Cat != "softirq" || softirq.Ts != 3 || softirq.Dur != 2 || softirq.Tid != 1 {
		t.Errorf("softirq span = %+v", softirq)
	}
	if softirq.Args["cycles"] != float64(900) {
		t.Errorf("cycles arg = %v", softirq.Args["cycles"])
	}
	if len(instants) != 1 || instants[0].Name != "deliver-skb" ||
		instants[0].S != "t" || instants[0].Args["flow"] != float64(1) {
		t.Errorf("instants = %+v", instants)
	}
}

// An end without a start (its start was evicted from the ring) is dropped
// rather than producing a broken span.
func TestChromeTraceSkipsOrphanEnd(t *testing.T) {
	events := []trace.Event{
		{At: at(time.Microsecond), Host: "h", Core: 0, Kind: trace.SoftirqEnd, A: 1, B: 10},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"X"`) {
		t.Errorf("orphan end produced a span: %s", buf.String())
	}
}

func TestChromeTraceDeterministicBytes(t *testing.T) {
	events := []trace.Event{
		{At: at(0), Host: "a", Core: 0, Kind: trace.ThreadStart, A: 1, B: 2},
		{At: at(time.Microsecond), Host: "a", Core: 0, Kind: trace.ThreadEnd, A: 1, B: 2},
		{At: at(2 * time.Microsecond), Host: "b", Core: 3, Flow: 9,
			Kind: trace.GROFlush, A: 4, B: 180000},
	}
	var b1, b2 bytes.Buffer
	if err := WriteChromeTrace(&b1, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b2, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("chrome trace bytes differ for identical input")
	}
}
