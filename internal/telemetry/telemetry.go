// Package telemetry provides the simulator's time-resolved observability
// layer: a registry of named counters and gauges that every subsystem
// registers into, an interval sampler that snapshots the registry into a
// ring-buffered timeseries (dumpable as CSV or JSONL), and a Chrome
// trace-event exporter that renders per-core execution spans and flow
// lifecycle events for Perfetto / chrome://tracing.
//
// The whole layer follows the nil-is-free convention of internal/trace: a
// nil *Registry hands out nil *Counters, and every method of a nil
// Counter or Registry is a no-op, so the data path carries no telemetry
// cost unless a registry is installed.
package telemetry

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing event count. Subsystems hold the
// *Counter returned by Registry.Counter and bump it on their hot paths; a
// nil Counter (handed out by a nil Registry) makes every bump a no-op.
type Counter struct {
	v int64
}

// Inc adds one. Safe on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (which may be any sign; counters in this simulator only ever
// grow, but the registry does not enforce it). Safe on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// metric is one registered timeseries column.
type metric struct {
	name string
	read func() float64
}

// Registry holds the named metrics of one simulation run. Metrics are
// sampled in registration order, which is deterministic because all
// registration happens during single-threaded simulation setup.
//
// A nil *Registry is valid: Counter returns nil (a no-op counter) and
// Gauge does nothing, so subsystems can register unconditionally.
type Registry struct {
	metrics []metric
	index   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Counter registers a new counter under name and returns it. On a nil
// registry it returns nil, which is a valid no-op counter. Registering a
// duplicate name panics: metric names identify timeline columns.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, func() float64 { return float64(c.v) })
	return c
}

// Gauge registers a probe that is evaluated at each sample. Probes must
// be pure reads of simulation state: they run interleaved with the
// simulation and must not perturb it. No-op on a nil registry.
func (r *Registry) Gauge(name string, probe func() float64) {
	if r == nil {
		return
	}
	if probe == nil {
		panic("telemetry: nil gauge probe")
	}
	r.register(name, probe)
}

func (r *Registry) register(name string, read func() float64) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	if _, dup := r.index[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.index[name] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, read: read})
}

// Len returns the number of registered metrics (0 on nil).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.metrics)
}

// Names returns the metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.name
	}
	return out
}

// Read evaluates every metric in registration order into a fresh slice.
func (r *Registry) Read() []float64 {
	if r == nil {
		return nil
	}
	out := make([]float64, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.read()
	}
	return out
}

// Value evaluates one metric by name; ok is false if it is not registered.
func (r *Registry) Value(name string) (v float64, ok bool) {
	if r == nil {
		return 0, false
	}
	i, ok := r.index[name]
	if !ok {
		return 0, false
	}
	return r.metrics[i].read(), true
}

// SortedNames returns the metric names sorted lexically (for display; the
// timeline itself keeps registration order).
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}
