package telemetry

import "testing"

// The hot-path contract: bumping a nil counter (telemetry disabled) is a
// branch and nothing else — no allocation, no write.
func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkRegistryRead(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 64; i++ {
		v := float64(i)
		r.Gauge(string(rune('a'+i%26))+string(rune('0'+i/26)), func() float64 { return v })
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Read()
	}
}

func TestNilCounterIncAllocatesNothing(t *testing.T) {
	var c *Counter
	if n := testing.AllocsPerRun(100, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Errorf("nil counter allocated %v per op", n)
	}
}
