package telemetry

import (
	"strings"
	"testing"
	"time"
)

// durs builds n sample instants at 1µs, 2µs, ...
func durs(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i+1) * time.Microsecond
	}
	return out
}

func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry must hand out nil counters")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter must read 0")
	}
	r.Gauge("y", func() float64 { return 1 })
	if r.Len() != 0 || r.Names() != nil || r.Read() != nil {
		t.Error("nil registry must be empty")
	}
	if _, ok := r.Value("y"); ok {
		t.Error("nil registry must not resolve names")
	}
}

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("drops")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("Value = %d, want 42", c.Value())
	}
	if v, ok := r.Value("drops"); !ok || v != 42 {
		t.Errorf("registry Value = %v, %v", v, ok)
	}
}

func TestReadKeepsRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z", func() float64 { return 3 })
	r.Counter("a").Add(1)
	r.Gauge("m", func() float64 { return 2 })
	wantNames := []string{"z", "a", "m"}
	names := r.Names()
	for i, n := range wantNames {
		if names[i] != n {
			t.Fatalf("Names = %v, want %v (registration order)", names, wantNames)
		}
	}
	row := r.Read()
	if row[0] != 3 || row[1] != 1 || row[2] != 2 {
		t.Errorf("Read = %v", row)
	}
	sorted := r.SortedNames()
	if sorted[0] != "a" || sorted[2] != "z" {
		t.Errorf("SortedNames = %v", sorted)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate name should panic")
		}
	}()
	r.Gauge("x", func() float64 { return 0 })
}

func TestEmptyNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("empty name should panic")
		}
	}()
	r.Counter("")
}

func TestNilProbePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("nil probe should panic")
		}
	}()
	r.Gauge("x", nil)
}

func TestTimelineColumn(t *testing.T) {
	tl := &Timeline{
		Names: []string{"a", "b"},
		Times: durs(3),
		Rows:  [][]float64{{1, 10}, {2, 20}, {3, 30}},
	}
	vals, ok := tl.Column("b")
	if !ok || len(vals) != 3 || vals[2] != 30 {
		t.Errorf("Column(b) = %v, %v", vals, ok)
	}
	if _, ok := tl.Column("nope"); ok {
		t.Error("unknown column should report !ok")
	}
}

func TestTimelineCSV(t *testing.T) {
	tl := &Timeline{
		Names: []string{"a", "b"},
		Times: durs(2),
		Rows:  [][]float64{{1, 0.5}, {2, 0.25}},
	}
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "time_ns,a,b\n1000,1,0.5\n2000,2,0.25\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}
