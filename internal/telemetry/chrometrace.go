package telemetry

import (
	"encoding/json"
	"io"

	"hostsim/internal/cpumodel"
	"hostsim/internal/trace"
)

// traceObj is one entry of the Chrome trace-event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are in microseconds, as the format requires.
type traceObj struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// usOf converts simulated nanoseconds to trace-event microseconds.
func usOf(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace renders traced events as a Chrome trace-event JSON
// array, loadable directly in Perfetto or chrome://tracing. Hosts become
// processes (pid per host, named via metadata events), cores become
// threads (tid = core id). Span start/end pairs (SoftirqStart/End,
// ThreadStart/End) become complete "X" events named by their dominant
// Table-1 category; all other kinds become thread-scoped instant events.
//
// Writing an empty event list produces a valid empty trace.
func WriteChromeTrace(w io.Writer, events []trace.Event) error {
	pids := make(map[string]int)
	var objs []traceObj
	pidOf := func(host string) int {
		if p, ok := pids[host]; ok {
			return p
		}
		p := len(pids) + 1
		pids[host] = p
		objs = append(objs, traceObj{
			Name: "process_name", Ph: "M", Pid: p,
			Args: map[string]any{"name": host},
		})
		return p
	}

	// One pending span start per (host, core): cores execute work items
	// serially, so starts and ends of a core strictly alternate.
	type spanKey struct {
		host string
		core int
	}
	pending := make(map[spanKey]trace.Event)

	for _, e := range events {
		pid := pidOf(e.Host)
		switch e.Kind {
		case trace.SoftirqStart, trace.ThreadStart:
			pending[spanKey{e.Host, e.Core}] = e
		case trace.SoftirqEnd, trace.ThreadEnd:
			key := spanKey{e.Host, e.Core}
			start, ok := pending[key]
			if !ok {
				continue // start evicted from the ring; skip the orphan
			}
			delete(pending, key)
			ctxName := "softirq"
			if e.Kind == trace.ThreadEnd {
				ctxName = "thread"
			}
			objs = append(objs, traceObj{
				Name: cpumodel.Category(e.A).String(),
				Cat:  ctxName,
				Ph:   "X",
				Ts:   usOf(int64(start.At)),
				Dur:  usOf(int64(e.At - start.At)),
				Pid:  pid,
				Tid:  e.Core,
				Args: map[string]any{"cycles": e.B},
			})
		default:
			objs = append(objs, traceObj{
				Name: e.Kind.String(),
				Cat:  "flow",
				Ph:   "i",
				Ts:   usOf(int64(e.At)),
				Pid:  pid,
				Tid:  e.Core,
				S:    "t",
				Args: map[string]any{"flow": int64(e.Flow), "a": e.A, "b": e.B},
			})
		}
	}
	if objs == nil {
		objs = []traceObj{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(objs)
}
