package telemetry

import (
	"encoding/json"
	"io"

	"hostsim/internal/cpumodel"
	"hostsim/internal/trace"
)

// traceObj is one entry of the Chrome trace-event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are in microseconds, as the format requires.
type traceObj struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// usOf converts simulated nanoseconds to trace-event microseconds.
func usOf(ns int64) float64 { return float64(ns) / 1e3 }

// chromeEnc accumulates trace objects, assigning pids to named processes
// in first-appearance order and emitting the metadata events Perfetto
// needs to label them. Shared by the event renderer (WriteChromeTrace)
// and the span renderer (WriteChromeSpans).
type chromeEnc struct {
	pids map[string]int
	tids map[[2]int]bool // (pid, tid) pairs with thread_name emitted
	objs []traceObj
}

func newChromeEnc() *chromeEnc {
	return &chromeEnc{pids: make(map[string]int), tids: make(map[[2]int]bool)}
}

// pid returns the process id for a named process, emitting its
// process_name metadata on first appearance.
func (e *chromeEnc) pid(process string) int {
	if p, ok := e.pids[process]; ok {
		return p
	}
	p := len(e.pids) + 1
	e.pids[process] = p
	e.objs = append(e.objs, traceObj{
		Name: "process_name", Ph: "M", Pid: p,
		Args: map[string]any{"name": process},
	})
	return p
}

// threadName emits a thread_name metadata event once per (pid, tid).
func (e *chromeEnc) threadName(pid, tid int, name string) {
	if name == "" || e.tids[[2]int{pid, tid}] {
		return
	}
	e.tids[[2]int{pid, tid}] = true
	e.objs = append(e.objs, traceObj{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// flush encodes the accumulated objects as one JSON array. An empty
// accumulation encodes as a valid empty trace.
func (e *chromeEnc) flush(w io.Writer) error {
	if e.objs == nil {
		e.objs = []traceObj{}
	}
	return json.NewEncoder(w).Encode(e.objs)
}

// WriteChromeTrace renders traced events as a Chrome trace-event JSON
// array, loadable directly in Perfetto or chrome://tracing. Hosts become
// processes (pid per host, named via metadata events), cores become
// threads (tid = core id). Span start/end pairs (SoftirqStart/End,
// ThreadStart/End) become complete "X" events named by their dominant
// Table-1 category; all other kinds become thread-scoped instant events.
//
// Writing an empty event list produces a valid empty trace.
func WriteChromeTrace(w io.Writer, events []trace.Event) error {
	enc := newChromeEnc()

	// One pending span start per (host, core): cores execute work items
	// serially, so starts and ends of a core strictly alternate.
	type spanKey struct {
		host string
		core int
	}
	pending := make(map[spanKey]trace.Event)

	for _, e := range events {
		pid := enc.pid(e.Host)
		switch e.Kind {
		case trace.SoftirqStart, trace.ThreadStart:
			pending[spanKey{e.Host, e.Core}] = e
		case trace.SoftirqEnd, trace.ThreadEnd:
			key := spanKey{e.Host, e.Core}
			start, ok := pending[key]
			if !ok {
				continue // start evicted from the ring; skip the orphan
			}
			delete(pending, key)
			ctxName := "softirq"
			if e.Kind == trace.ThreadEnd {
				ctxName = "thread"
			}
			enc.objs = append(enc.objs, traceObj{
				Name: cpumodel.Category(e.A).String(),
				Cat:  ctxName,
				Ph:   "X",
				Ts:   usOf(int64(start.At)),
				Dur:  usOf(int64(e.At - start.At)),
				Pid:  pid,
				Tid:  e.Core,
				Args: map[string]any{"cycles": e.B},
			})
		default:
			enc.objs = append(enc.objs, traceObj{
				Name: e.Kind.String(),
				Cat:  "flow",
				Ph:   "i",
				Ts:   usOf(int64(e.At)),
				Pid:  pid,
				Tid:  e.Core,
				S:    "t",
				Args: map[string]any{"flow": int64(e.Flow), "a": e.A, "b": e.B},
			})
		}
	}
	return enc.flush(w)
}

// Span is one renderer-agnostic trace entry for WriteChromeSpans: a
// complete duration slice (or an instant) on a named process/thread.
// Producers that are not the event tracer — the message tracer's
// exemplar span trees, for one — build Spans and reuse this writer
// instead of reimplementing the trace-event format.
type Span struct {
	Process    string // process label; pids are assigned in first-appearance order
	Thread     int    // tid within the process
	ThreadName string // optional thread label, emitted once per (process, thread)
	Name       string
	Cat        string
	StartNS    int64
	DurNS      int64          // ignored for instants and counters
	Instant    bool           // render as a thread-scoped instant instead of a slice
	Counter    bool           // render as a counter sample ("C"); Perfetto draws a counter track per Name
	Value      float64        // the counter sample value (Counter spans only)
	Args       map[string]any // optional; retained by reference
}

// WriteChromeSpans renders prebuilt spans as a Chrome trace-event JSON
// array (Perfetto-loadable), in input order. Writing no spans produces a
// valid empty trace.
func WriteChromeSpans(w io.Writer, spans []Span) error {
	enc := newChromeEnc()
	for _, s := range spans {
		pid := enc.pid(s.Process)
		enc.threadName(pid, s.Thread, s.ThreadName)
		if s.Counter {
			args := s.Args
			if args == nil {
				args = map[string]any{"value": s.Value}
			}
			enc.objs = append(enc.objs, traceObj{
				Name: s.Name, Cat: s.Cat, Ph: "C",
				Ts: usOf(s.StartNS), Pid: pid, Tid: s.Thread,
				Args: args,
			})
			continue
		}
		if s.Instant {
			enc.objs = append(enc.objs, traceObj{
				Name: s.Name, Cat: s.Cat, Ph: "i",
				Ts: usOf(s.StartNS), Pid: pid, Tid: s.Thread,
				S: "t", Args: s.Args,
			})
			continue
		}
		enc.objs = append(enc.objs, traceObj{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: usOf(s.StartNS), Dur: usOf(s.DurNS),
			Pid: pid, Tid: s.Thread, Args: s.Args,
		})
	}
	return enc.flush(w)
}
