package telemetry

import (
	"strings"
	"testing"
	"time"

	"hostsim/internal/sim"
)

func newSampled(t *testing.T, horizon time.Duration, maxSamples int) (*sim.Engine, *Sampler, *Counter) {
	t.Helper()
	eng := sim.NewEngine(1)
	reg := NewRegistry()
	ctr := reg.Counter("events")
	// Simulated activity: bump the counter every 30µs.
	var work func()
	work = func() {
		ctr.Inc()
		eng.After(30*time.Microsecond, work)
	}
	eng.After(30*time.Microsecond, work)
	s := NewSampler(eng, reg, 100*time.Microsecond, maxSamples)
	s.Start(0)
	eng.Run(sim.Time(horizon))
	return eng, s, ctr
}

func TestSamplerSamplesOnInterval(t *testing.T) {
	_, s, _ := newSampled(t, time.Millisecond, 1024)
	// Samples at 0, 100µs, ..., 900µs (horizon exclusive).
	if s.Count() != 10 {
		t.Fatalf("Count = %d, want 10", s.Count())
	}
	tl := s.Timeline()
	if tl.Len() != 10 || tl.Times[0] != 0 || tl.Times[9] != 900*time.Microsecond {
		t.Errorf("Times = %v", tl.Times)
	}
	// The counter advances monotonically across samples.
	vals, ok := tl.Column("events")
	if !ok {
		t.Fatal("missing column")
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Errorf("counter went backwards at sample %d: %v", i, vals)
		}
	}
	if vals[9] == 0 {
		t.Error("counter never advanced")
	}
}

func TestSamplerRingEvictsOldest(t *testing.T) {
	_, s, _ := newSampled(t, time.Millisecond, 4)
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4 (ring capacity)", s.Count())
	}
	if s.Evicted() != 6 {
		t.Errorf("Evicted = %d, want 6", s.Evicted())
	}
	tl := s.Timeline()
	// Oldest-first: the retained window is the most recent 4 samples.
	want := []time.Duration{600 * time.Microsecond, 700 * time.Microsecond,
		800 * time.Microsecond, 900 * time.Microsecond}
	for i, w := range want {
		if tl.Times[i] != w {
			t.Fatalf("Times = %v, want %v", tl.Times, want)
		}
	}
}

func TestSamplerStartClampsToNow(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry()
	reg.Gauge("g", func() float64 { return 1 })
	eng.At(sim.Time(50*time.Microsecond), func() {})
	eng.Run(sim.Time(60 * time.Microsecond))
	s := NewSampler(eng, reg, 100*time.Microsecond, 16)
	s.Start(0) // in the past: first sample lands at now
	eng.Run(sim.Time(200 * time.Microsecond))
	if s.Count() == 0 {
		t.Fatal("no samples after clamped Start")
	}
	if got := s.Timeline().Times[0]; got != 60*time.Microsecond {
		t.Errorf("first sample at %v, want 60µs", got)
	}
}

func TestSamplerStartIsIdempotent(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry()
	reg.Gauge("g", func() float64 { return 1 })
	s := NewSampler(eng, reg, 100*time.Microsecond, 16)
	s.Start(0)
	s.Start(0)
	eng.Run(sim.Time(250 * time.Microsecond))
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3 (double Start must not double-sample)", s.Count())
	}
}

func TestSamplerValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry()
	for name, fn := range map[string]func(){
		"nil engine":   func() { NewSampler(nil, reg, time.Millisecond, 1) },
		"nil registry": func() { NewSampler(eng, nil, time.Millisecond, 1) },
		"interval":     func() { NewSampler(eng, reg, 0, 1) },
		"capacity":     func() { NewSampler(eng, reg, time.Millisecond, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

// Timeline rows sampled before a late metric registration are padded to
// the final column count.
func TestTimelinePadsEarlyRows(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry()
	reg.Gauge("a", func() float64 { return 1 })
	s := NewSampler(eng, reg, 100*time.Microsecond, 16)
	s.Start(0)
	eng.Run(sim.Time(150 * time.Microsecond)) // samples at 0 and 100µs
	reg.Gauge("late", func() float64 { return 7 })
	eng.Run(sim.Time(250 * time.Microsecond)) // sample at 200µs sees both
	tl := s.Timeline()
	if tl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tl.Len())
	}
	for i, row := range tl.Rows {
		if len(row) != 2 {
			t.Fatalf("row %d has %d columns, want 2", i, len(row))
		}
	}
	if tl.Rows[0][1] != 0 || tl.Rows[2][1] != 7 {
		t.Errorf("padded rows wrong: %v", tl.Rows)
	}
}

// Identical runs must serialize to identical bytes: the timeline is the
// determinism contract of -telemetry-out.
func TestTimelineSerializationDeterministic(t *testing.T) {
	render := func() (string, string) {
		_, s, _ := newSampled(t, time.Millisecond, 1024)
		tl := s.Timeline()
		var csv, jsonl strings.Builder
		if err := tl.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := tl.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		return csv.String(), jsonl.String()
	}
	csv1, jsonl1 := render()
	csv2, jsonl2 := render()
	if csv1 != csv2 {
		t.Error("CSV bytes differ across identical runs")
	}
	if jsonl1 != jsonl2 {
		t.Error("JSONL bytes differ across identical runs")
	}
	if !strings.HasPrefix(csv1, "time_ns,events\n") {
		t.Errorf("CSV header = %q", strings.SplitN(csv1, "\n", 2)[0])
	}
	if !strings.HasPrefix(jsonl1, `{"names":["events"]}`) {
		t.Errorf("JSONL header = %q", strings.SplitN(jsonl1, "\n", 2)[0])
	}
}
