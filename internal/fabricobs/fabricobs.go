// Package fabricobs is the switch fabric's observatory: an opt-in
// in-band-telemetry layer modeled on INT/sFlow. It stamps every frame at
// the fabric's two observable edges — ingress (routing + shared-buffer
// admission verdict, with the egress queue depth and pool occupancy the
// frame saw) and egress (the serializer's mark/loss verdict, then the
// delivery that closes the hop) — and condenses the stamps into three
// artifacts:
//
//   - a per-port time-series (egress backlog, utilization, ECN-mark rate,
//     cumulative drops) sampled on a fixed simulated-time interval with
//     the internal/telemetry registry/sampler discipline;
//   - an exact drop/mark attribution ledger: every frame the fabric ever
//     saw is classified as delivered, shared-buffer admission drop, wire
//     (Bernoulli) loss, or still in flight at the horizon — and the
//     tallies reconcile counter-for-counter with the fabric's own
//     IngressStats and each egress link's wire.Stats (Reconcile);
//   - microburst events: an egress queue crossing the burst threshold
//     opens a burst that tracks its peak backlog/occupancy, the frames
//     and admission drops it absorbed and the contributing flows, and
//     closes (with hysteresis) when the queue drains to half the
//     threshold.
//
// Every hook is a pure read behind a pointer test, so an observed run is
// byte-identical to an unobserved one — the same transparency contract as
// the tracer, profiler, checker and inspector layers.
package fabricobs

import (
	"fmt"
	"sort"
	"time"

	"hostsim/internal/fabric"
	"hostsim/internal/metrics"
	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/telemetry"
	"hostsim/internal/units"
	"hostsim/internal/wire"
)

// Options configures the observatory. The zero value samples every 100µs
// into a 4096-sample ring, opens bursts at 128KB of egress backlog, keeps
// the top 4 contributing flows per burst and caps retained bursts at 1024.
type Options struct {
	// SampleInterval is the simulated time between time-series samples
	// (0 = 100µs).
	SampleInterval time.Duration
	// MaxSamples bounds the time-series ring; the oldest samples are
	// evicted beyond it (0 = 4096).
	MaxSamples int
	// BurstThreshold opens a microburst when a frame enqueues into an
	// egress backlog at or above this many wire bytes; the burst closes
	// when the queue drains to half the threshold (0 = 128KB).
	BurstThreshold units.Bytes
	// BurstFlows is the number of top contributing flows kept per burst
	// event (0 = 4).
	BurstFlows int
	// MaxBursts caps retained burst events; further bursts are detected
	// and counted per port but not retained (0 = 1024).
	MaxBursts int
}

func (o Options) withDefaults() Options {
	if o.SampleInterval == 0 {
		o.SampleInterval = 100 * time.Microsecond
	}
	if o.MaxSamples == 0 {
		o.MaxSamples = 4096
	}
	if o.BurstThreshold == 0 {
		o.BurstThreshold = 128 * units.KB
	}
	if o.BurstFlows == 0 {
		o.BurstFlows = 4
	}
	if o.MaxBursts == 0 {
		o.MaxBursts = 1024
	}
	return o
}

// FlowFrames is one flow's contribution to a microburst.
type FlowFrames struct {
	Flow   int32 // flow id
	Frames int64 // frames the flow enqueued during the burst
}

// BurstEvent is one detected microburst on an egress port.
type BurstEvent struct {
	Port           int           // egress port
	Host           string        // attached host's name
	Start          time.Duration // simulated time the threshold was crossed
	Duration       time.Duration // until drain below threshold/2 (or the horizon)
	PeakBacklog    int64         // peak egress backlog during the burst, wire bytes
	PeakOccupancy  int64         // peak shared-buffer occupancy during the burst
	Frames         int64         // frames enqueued to the port during the burst
	AdmissionDrops int64         // frames bound for the port dropped at admission during the burst
	Truncated      bool          // still open at the simulation horizon
	Flows          []FlowFrames  // top contributing flows, most frames first
}

// PortReport is one port's end-of-run ledger line. The ingress side counts
// frames arriving FROM the attached host (src-attributed, matching the
// fabric's IngressStats and the checker's In == Forwarded + BufDropped
// rule); the egress side counts frames queued TOWARD the host on its
// serializer. Two exact identities hold per port:
//
//	InFrames == Forwarded + AdmissionDrops
//	Enqueued == Delivered + WireLossDrops + InFlight
type PortReport struct {
	Port int
	Host string

	// Ingress ledger (frames from the attached host).
	InFrames           int64
	Forwarded          int64
	AdmissionDrops     int64
	AdmissionDropBytes int64 // payload bytes

	// Egress ledger (frames toward the attached host).
	Enqueued      int64
	Delivered     int64
	WireLossDrops int64
	InFlight      int64 // serializing or propagating at the horizon
	ECNMarks      int64
	TxBytes       int64   // wire bytes serialized (headers included)
	Utilization   float64 // TxBytes·8 / (line rate · observed time)

	PeakBacklog   int64 // peak egress backlog seen at any enqueue, wire bytes
	PeakOccupancy int64 // peak shared-buffer occupancy seen at any enqueue

	// Hop latency: egress serializer accept -> delivery to the host
	// (serialization wait + propagation), over delivered frames.
	HopLatencyMean time.Duration
	HopLatencyP50  time.Duration
	HopLatencyP99  time.Duration
	HopLatencyMax  time.Duration

	Bursts int64 // microbursts detected on the port (including unretained)
}

// burst is an open (unclosed) microburst.
type burst struct {
	start    sim.Time
	peakBack units.Bytes
	peakOcc  units.Bytes
	frames   int64
	drops    int64
	flows    map[skb.FlowID]int64
}

// portState is one port's accumulation state.
type portState struct {
	id   int
	out  *wire.Link
	port *fabric.Port

	// Independent ingress tally (reconciled against IngressStats deltas).
	in, forwarded, admissionDrops int64
	admissionDropBytes            units.Bytes

	// Independent egress tally (reconciled against wire.Stats deltas).
	enqueued, delivered, wireLoss, marked int64
	// stale counts deliveries of frames sent before the observer attached
	// (possible when workload setup transmits synchronously); they carry
	// no send stamp, so they are excluded from the hop histogram and the
	// egress ledger identity.
	stale int64

	peakBacklog, peakOccupancy units.Bytes
	hop                        *metrics.Histogram
	sendAt                     map[*skb.Frame]sim.Time

	cur        *burst
	burstCount int64

	// Private-registry rate-gauge state (read only by the observer's own
	// sampler, in registration order, so the deltas are deterministic).
	utilT  sim.Time
	utilTx units.Bytes
	markT  sim.Time
	markN  int64

	// Stats snapshots at attach, so ledgers reconcile over the observed
	// interval even if traffic moved before the observer armed.
	baseIngress fabric.IngressStats
	baseLink    wire.Stats
	baseOnWire  units.Bytes
}

// onWire returns the bytes this port's serializer has actually put on
// the wire by now. Link.Stats().TxBytes accrues at enqueue time, so a
// deep backlog would otherwise count as transmitted and push a
// saturated port's utilization past 1.
func (ps *portState) onWire() units.Bytes {
	return ps.out.Stats().TxBytes - ps.out.Backlog()
}

// Observer is the attached observatory. Build with New; read the results
// with Timeline, PortReports and Bursts after Finalize.
type Observer struct {
	eng   *sim.Engine
	fab   *fabric.Fabric
	names []string
	opts  Options

	reg *telemetry.Registry
	smp *telemetry.Sampler

	ports    []*portState
	bursts   []BurstEvent
	overflow int64 // bursts detected beyond MaxBursts (not retained)

	attachedAt sim.Time
	finalized  bool
	horizon    sim.Time
	reports    []PortReport
}

// New builds the observatory over fab and arms every hook: the fabric's
// ingress observer, a chained tap and a delivery tap on each egress
// serializer, and a private telemetry registry sampled from simulated time
// zero (like socket snapshots, the time-series covers warmup — slow-start
// bursts are the interesting ones). names labels ports in reports and
// traces; it must have one entry per port.
func New(eng *sim.Engine, fab *fabric.Fabric, names []string, opts Options) *Observer {
	if eng == nil || fab == nil {
		panic("fabricobs: nil engine or fabric")
	}
	if len(names) != fab.Ports() {
		panic(fmt.Sprintf("fabricobs: %d names for %d ports", len(names), fab.Ports()))
	}
	if opts.SampleInterval < 0 || opts.MaxSamples < 0 || opts.BurstThreshold < 0 ||
		opts.BurstFlows < 0 || opts.MaxBursts < 0 {
		panic("fabricobs: negative option")
	}
	o := &Observer{
		eng:        eng,
		fab:        fab,
		names:      append([]string(nil), names...),
		opts:       opts.withDefaults(),
		attachedAt: eng.Now(),
	}
	o.ports = make([]*portState, fab.Ports())
	for i := range o.ports {
		p := fab.Port(i)
		ps := &portState{
			id:          i,
			out:         p.Out(),
			port:        p,
			hop:         metrics.NewLatency(),
			sendAt:      make(map[*skb.Frame]sim.Time),
			utilT:       o.attachedAt,
			markT:       o.attachedAt,
			baseIngress: p.Stats(),
			baseLink:    p.Out().Stats(),
		}
		ps.baseOnWire = ps.onWire()
		ps.utilTx = ps.baseOnWire
		ps.markN = ps.baseLink.Marked
		o.ports[i] = ps
	}
	fab.SetObserver(o)
	for _, ps := range o.ports {
		ps := ps
		ps.out.AddTap(func(f *skb.Frame, dropped bool) { o.wireTap(ps, f, dropped) })
		ps.out.SetDeliverTap(func(f *skb.Frame) { o.deliverTap(ps, f) })
	}
	o.registerTimeline()
	o.smp = telemetry.NewSampler(eng, o.reg, o.opts.SampleInterval, o.opts.MaxSamples)
	o.smp.Start(0)
	return o
}

// FrameIngress implements fabric.Observer: the ingress-edge stamp.
func (o *Observer) FrameIngress(src, dst int, f *skb.Frame, admitted bool, depth, occupancy units.Bytes) {
	ss := o.ports[src]
	ds := o.ports[dst]
	ss.in++
	if occupancy > ds.peakOccupancy {
		ds.peakOccupancy = occupancy
	}
	if !admitted {
		ss.admissionDrops++
		ss.admissionDropBytes += f.Len
		// Admission drops are src-attributed in the ledger (matching
		// IngressStats) but burst-attributed to the egress queue whose
		// pressure rejected the frame.
		if b := ds.cur; b != nil {
			b.drops++
		}
		return
	}
	ss.forwarded++
	ds.enqueued++
	if depth > ds.peakBacklog {
		ds.peakBacklog = depth
	}
	o.burstEnqueue(ds, f, depth, occupancy)
}

// wireTap is the egress serializer's switch-edge stamp: the mark/loss
// verdict. It fires (during the fabric's forward) before FrameIngress.
func (o *Observer) wireTap(ds *portState, f *skb.Frame, dropped bool) {
	if f.CE {
		// Frames traverse exactly one link and recycled frames are
		// CE-cleared, so CE here means this serializer marked the frame.
		ds.marked++
	}
	if dropped {
		ds.wireLoss++
		return
	}
	ds.sendAt[f] = o.eng.Now()
}

// deliverTap is the egress-edge stamp closing the hop.
func (o *Observer) deliverTap(ds *portState, f *skb.Frame) {
	t0, ok := ds.sendAt[f]
	if !ok {
		ds.stale++ // sent before attach: no stamp, keep the ledger exact
	} else {
		ds.delivered++
		delete(ds.sendAt, f)
		ds.hop.Record(float64(o.eng.Now() - t0))
	}
	if b := ds.cur; b != nil && ds.out.Backlog() <= o.opts.BurstThreshold/2 {
		o.closeBurst(ds, o.eng.Now(), false)
	}
}

func (o *Observer) burstEnqueue(ds *portState, f *skb.Frame, depth, occ units.Bytes) {
	if b := ds.cur; b != nil {
		b.frames++
		b.flows[f.Flow]++
		if depth > b.peakBack {
			b.peakBack = depth
		}
		if occ > b.peakOcc {
			b.peakOcc = occ
		}
		return
	}
	if depth >= o.opts.BurstThreshold {
		ds.cur = &burst{
			start:    o.eng.Now(),
			peakBack: depth,
			peakOcc:  occ,
			frames:   1,
			flows:    map[skb.FlowID]int64{f.Flow: 1},
		}
	}
}

func (o *Observer) closeBurst(ds *portState, end sim.Time, truncated bool) {
	b := ds.cur
	ds.cur = nil
	ds.burstCount++
	if len(o.bursts) >= o.opts.MaxBursts {
		o.overflow++
		return
	}
	ev := BurstEvent{
		Port:           ds.id,
		Host:           o.names[ds.id],
		Start:          b.start.Duration(),
		Duration:       (end - b.start).Duration(),
		PeakBacklog:    int64(b.peakBack),
		PeakOccupancy:  int64(b.peakOcc),
		Frames:         b.frames,
		AdmissionDrops: b.drops,
		Truncated:      truncated,
	}
	ev.Flows = topFlows(b.flows, o.opts.BurstFlows)
	o.bursts = append(o.bursts, ev)
}

// topFlows returns the k largest contributors, frames descending, flow id
// ascending on ties — deterministic regardless of map iteration order.
func topFlows(flows map[skb.FlowID]int64, k int) []FlowFrames {
	out := make([]FlowFrames, 0, len(flows))
	for id, n := range flows {
		out = append(out, FlowFrames{Flow: int32(id), Frames: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frames != out[j].Frames {
			return out[i].Frames > out[j].Frames
		}
		return out[i].Flow < out[j].Flow
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// registerTimeline builds the private registry: the shared-buffer
// occupancy plus, per port, the egress backlog, interval-rate utilization
// and ECN-mark rate, and the cumulative drop counters.
func (o *Observer) registerTimeline() {
	o.reg = telemetry.NewRegistry()
	o.reg.Gauge("occupancy_bytes", func() float64 { return float64(o.fab.Occupancy()) })
	rate := o.fab.Config().LinkRate
	for _, ps := range o.ports {
		ps := ps
		pp := fmt.Sprintf("port%03d/", ps.id)
		o.reg.Gauge(pp+"backlog_bytes", func() float64 { return float64(ps.out.Backlog()) })
		o.reg.Gauge(pp+"utilization", func() float64 {
			now := o.eng.Now()
			tx := ps.onWire()
			var u float64
			if dt := now - ps.utilT; dt > 0 {
				u = float64((tx - ps.utilTx).Bits()) * float64(time.Second) /
					(float64(dt) * float64(rate))
			}
			ps.utilT, ps.utilTx = now, tx
			return u
		})
		o.reg.Gauge(pp+"ecn_marks_per_s", func() float64 {
			now := o.eng.Now()
			n := ps.out.Stats().Marked
			var r float64
			if dt := now - ps.markT; dt > 0 {
				r = float64(n-ps.markN) * float64(time.Second) / float64(dt)
			}
			ps.markT, ps.markN = now, n
			return r
		})
		o.reg.Gauge(pp+"admission_drops", func() float64 {
			return float64(ps.port.Stats().BufDropped)
		})
		o.reg.Gauge(pp+"wire_drops", func() float64 {
			return float64(ps.out.Stats().Dropped)
		})
	}
}

// Finalize closes the books at the simulation horizon: open bursts are
// emitted truncated, the burst list is ordered by start time, and the
// per-port reports are built. Idempotent; the hooks stay attached but the
// reports freeze at the first call.
func (o *Observer) Finalize() {
	if o.finalized {
		return
	}
	o.finalized = true
	o.horizon = o.eng.Now()
	for _, ps := range o.ports {
		if ps.cur != nil {
			o.closeBurst(ps, o.horizon, true)
		}
	}
	sort.SliceStable(o.bursts, func(i, j int) bool {
		if o.bursts[i].Start != o.bursts[j].Start {
			return o.bursts[i].Start < o.bursts[j].Start
		}
		return o.bursts[i].Port < o.bursts[j].Port
	})
	elapsed := o.horizon - o.attachedAt
	rate := o.fab.Config().LinkRate
	o.reports = make([]PortReport, len(o.ports))
	for i, ps := range o.ports {
		tx := ps.onWire() - ps.baseOnWire
		var util float64
		if elapsed > 0 {
			util = float64(tx.Bits()) * float64(time.Second) /
				(float64(elapsed) * float64(rate))
		}
		o.reports[i] = PortReport{
			Port:               ps.id,
			Host:               o.names[i],
			InFrames:           ps.in,
			Forwarded:          ps.forwarded,
			AdmissionDrops:     ps.admissionDrops,
			AdmissionDropBytes: int64(ps.admissionDropBytes),
			Enqueued:           ps.enqueued,
			Delivered:          ps.delivered,
			WireLossDrops:      ps.wireLoss,
			InFlight:           int64(len(ps.sendAt)),
			ECNMarks:           ps.marked,
			TxBytes:            int64(tx),
			Utilization:        util,
			PeakBacklog:        int64(ps.peakBacklog),
			PeakOccupancy:      int64(ps.peakOccupancy),
			HopLatencyMean:     time.Duration(ps.hop.Mean()),
			HopLatencyP50:      time.Duration(ps.hop.Quantile(0.50)),
			HopLatencyP99:      time.Duration(ps.hop.Quantile(0.99)),
			HopLatencyMax:      time.Duration(ps.hop.Max()),
			Bursts:             ps.burstCount,
		}
	}
}

// Timeline copies the retained time-series samples.
func (o *Observer) Timeline() *telemetry.Timeline { return o.smp.Timeline() }

// PortReports returns the per-port ledger (port order). Finalize first.
func (o *Observer) PortReports() []PortReport {
	o.Finalize()
	return o.reports
}

// Bursts returns the retained microburst events, ordered by start time.
func (o *Observer) Bursts() []BurstEvent {
	o.Finalize()
	return o.bursts
}

// FormatReport renders the observatory's ledger and bursts as the
// aligned text table of FormatReport.
func (o *Observer) FormatReport() string { return FormatReport(o.PortReports(), o.Bursts()) }

// OverflowBursts reports bursts detected beyond the MaxBursts cap.
func (o *Observer) OverflowBursts() int64 { return o.overflow }

// Reconcile cross-checks the observatory's independently accumulated
// ledger against the fabric's own counters: per port, the ingress tallies
// must equal the IngressStats deltas since attach, the egress tallies the
// wire.Stats deltas, and the two conservation identities must hold
// exactly. A nil return means every lost frame is attributed.
func (o *Observer) Reconcile() error {
	o.Finalize()
	for i, ps := range o.ports {
		ing := ps.port.Stats()
		lnk := ps.out.Stats()
		type eq struct {
			name string
			obs  int64
			want int64
		}
		checks := []eq{
			{"in", ps.in, ing.In - ps.baseIngress.In},
			{"forwarded", ps.forwarded, ing.Forwarded - ps.baseIngress.Forwarded},
			{"admission_drops", ps.admissionDrops, ing.BufDropped - ps.baseIngress.BufDropped},
			{"admission_drop_bytes", int64(ps.admissionDropBytes), int64(ing.BufDroppedBytes - ps.baseIngress.BufDroppedBytes)},
			{"enqueued", ps.enqueued, lnk.Sent - ps.baseLink.Sent},
			{"delivered+stale", ps.delivered + ps.stale, lnk.Delivered - ps.baseLink.Delivered},
			{"wire_loss", ps.wireLoss, lnk.Dropped - ps.baseLink.Dropped},
			{"ecn_marks", ps.marked, lnk.Marked - ps.baseLink.Marked},
			{"in==forwarded+admission", ps.in, ps.forwarded + ps.admissionDrops},
			{"enqueued==delivered+loss+inflight", ps.enqueued, ps.delivered + ps.wireLoss + int64(len(ps.sendAt))},
		}
		for _, c := range checks {
			if c.obs != c.want {
				return fmt.Errorf("fabricobs: port %d (%s) %s: observer %d != fabric %d",
					i, o.names[i], c.name, c.obs, c.want)
			}
		}
	}
	return nil
}
