package fabricobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"hostsim/internal/telemetry"
)

// encodeFlows renders a burst's contributing flows as "flow:frames"
// pairs joined by ';' — compact enough for a CSV cell, exact enough for
// fabcheck to re-read.
func encodeFlows(flows []FlowFrames) string {
	var b strings.Builder
	for i, ff := range flows {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d:%d", ff.Flow, ff.Frames)
	}
	return b.String()
}

// fnum renders a float deterministically (shortest round-trip form), the
// same convention as the telemetry timeline writers.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// portCSVHeader is the port-ledger section header of the CSV report;
// cmd/fabcheck parses it by these exact column names.
const portCSVHeader = "port,host,in_frames,forwarded,admission_drops,admission_drop_bytes," +
	"enqueued,delivered,wire_loss_drops,in_flight,ecn_marks,tx_bytes,utilization," +
	"peak_backlog_bytes,peak_occupancy_bytes,hop_mean_ns,hop_p50_ns,hop_p99_ns,hop_max_ns,bursts"

// burstCSVHeader is the microburst section header.
const burstCSVHeader = "port,host,start_ns,duration_ns,peak_backlog_bytes," +
	"peak_occupancy_bytes,frames,admission_drops,truncated,flows"

// WriteReportCSV writes the attribution ledger as CSV: the per-port
// section, a blank line, then the microburst section — one artifact, two
// headed tables. Byte-deterministic for a given run.
func WriteReportCSV(w io.Writer, ports []PortReport, bursts []BurstEvent) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, portCSVHeader)
	for _, p := range ports {
		fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d\n",
			p.Port, p.Host, p.InFrames, p.Forwarded, p.AdmissionDrops, p.AdmissionDropBytes,
			p.Enqueued, p.Delivered, p.WireLossDrops, p.InFlight, p.ECNMarks, p.TxBytes,
			fnum(p.Utilization), p.PeakBacklog, p.PeakOccupancy,
			int64(p.HopLatencyMean), int64(p.HopLatencyP50), int64(p.HopLatencyP99),
			int64(p.HopLatencyMax), p.Bursts)
	}
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, burstCSVHeader)
	for _, b := range bursts {
		fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%d,%d,%d,%t,%s\n",
			b.Port, b.Host, int64(b.Start), int64(b.Duration), b.PeakBacklog,
			b.PeakOccupancy, b.Frames, b.AdmissionDrops, b.Truncated, encodeFlows(b.Flows))
	}
	return bw.Flush()
}

// portJSON / burstJSON are the JSONL line shapes; the "type" field
// discriminates them so one stream carries the whole report.
type portJSON struct {
	Type               string  `json:"type"` // "port"
	Port               int     `json:"port"`
	Host               string  `json:"host"`
	InFrames           int64   `json:"in_frames"`
	Forwarded          int64   `json:"forwarded"`
	AdmissionDrops     int64   `json:"admission_drops"`
	AdmissionDropBytes int64   `json:"admission_drop_bytes"`
	Enqueued           int64   `json:"enqueued"`
	Delivered          int64   `json:"delivered"`
	WireLossDrops      int64   `json:"wire_loss_drops"`
	InFlight           int64   `json:"in_flight"`
	ECNMarks           int64   `json:"ecn_marks"`
	TxBytes            int64   `json:"tx_bytes"`
	Utilization        float64 `json:"utilization"`
	PeakBacklogBytes   int64   `json:"peak_backlog_bytes"`
	PeakOccupancy      int64   `json:"peak_occupancy_bytes"`
	HopMeanNS          int64   `json:"hop_mean_ns"`
	HopP50NS           int64   `json:"hop_p50_ns"`
	HopP99NS           int64   `json:"hop_p99_ns"`
	HopMaxNS           int64   `json:"hop_max_ns"`
	Bursts             int64   `json:"bursts"`
}

type burstJSON struct {
	Type           string `json:"type"` // "burst"
	Port           int    `json:"port"`
	Host           string `json:"host"`
	StartNS        int64  `json:"start_ns"`
	DurationNS     int64  `json:"duration_ns"`
	PeakBacklog    int64  `json:"peak_backlog_bytes"`
	PeakOccupancy  int64  `json:"peak_occupancy_bytes"`
	Frames         int64  `json:"frames"`
	AdmissionDrops int64  `json:"admission_drops"`
	Truncated      bool   `json:"truncated"`
	Flows          string `json:"flows"` // "flow:frames;..."
}

// WriteReportJSONL writes the ledger as JSON lines: one {"type":"port"}
// object per port, then one {"type":"burst"} object per retained burst.
func WriteReportJSONL(w io.Writer, ports []PortReport, bursts []BurstEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, p := range ports {
		if err := enc.Encode(portJSON{
			Type: "port", Port: p.Port, Host: p.Host,
			InFrames: p.InFrames, Forwarded: p.Forwarded,
			AdmissionDrops: p.AdmissionDrops, AdmissionDropBytes: p.AdmissionDropBytes,
			Enqueued: p.Enqueued, Delivered: p.Delivered,
			WireLossDrops: p.WireLossDrops, InFlight: p.InFlight,
			ECNMarks: p.ECNMarks, TxBytes: p.TxBytes, Utilization: p.Utilization,
			PeakBacklogBytes: p.PeakBacklog, PeakOccupancy: p.PeakOccupancy,
			HopMeanNS: int64(p.HopLatencyMean), HopP50NS: int64(p.HopLatencyP50),
			HopP99NS: int64(p.HopLatencyP99), HopMaxNS: int64(p.HopLatencyMax),
			Bursts: p.Bursts,
		}); err != nil {
			return err
		}
	}
	for _, b := range bursts {
		if err := enc.Encode(burstJSON{
			Type: "burst", Port: b.Port, Host: b.Host,
			StartNS: int64(b.Start), DurationNS: int64(b.Duration),
			PeakBacklog: b.PeakBacklog, PeakOccupancy: b.PeakOccupancy,
			Frames: b.Frames, AdmissionDrops: b.AdmissionDrops,
			Truncated: b.Truncated, Flows: encodeFlows(b.Flows),
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FormatReport renders the ledger as an aligned text table (for stdout).
// Byte-deterministic for a given run.
func FormatReport(ports []PortReport, bursts []BurstEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-12s %10s %10s %9s %10s %10s %9s %8s %7s %6s %9s %9s %7s\n",
		"port", "host", "in", "fwd", "adm-drop", "enq", "deliv", "wire-loss",
		"inflight", "marks", "util", "peak-q", "hop-p99", "bursts")
	for _, p := range ports {
		fmt.Fprintf(&b, "%-5d %-12s %10d %10d %9d %10d %10d %9d %8d %7d %5.1f%% %9s %9v %7d\n",
			p.Port, p.Host, p.InFrames, p.Forwarded, p.AdmissionDrops,
			p.Enqueued, p.Delivered, p.WireLossDrops, p.InFlight, p.ECNMarks,
			p.Utilization*100, fmt.Sprintf("%dK", p.PeakBacklog/1024),
			p.HopLatencyP99.Round(time.Microsecond), p.Bursts)
	}
	if len(bursts) > 0 {
		fmt.Fprintf(&b, "\n%-5s %-12s %12s %12s %9s %8s %9s %-5s %s\n",
			"port", "host", "start", "dur", "peak-q", "frames", "adm-drop", "trunc", "flows")
		for _, ev := range bursts {
			fmt.Fprintf(&b, "%-5d %-12s %12v %12v %8sK %8d %9d %-5t %s\n",
				ev.Port, ev.Host, ev.Start, ev.Duration,
				fmt.Sprintf("%d", ev.PeakBacklog/1024), ev.Frames,
				ev.AdmissionDrops, ev.Truncated, encodeFlows(ev.Flows))
		}
	}
	return b.String()
}

// WriteTrace renders the observatory as a Chrome trace-event JSON array
// (Perfetto-loadable): the time-series becomes counter tracks (shared
// buffer occupancy plus one backlog counter per port) and every retained
// microburst becomes a complete "X" span on its port's thread row, with
// peaks, frame counts and contributing flows in the args.
func WriteTrace(w io.Writer, names []string, tl *telemetry.Timeline, bursts []BurstEvent) error {
	var spans []telemetry.Span
	cols := make(map[string]int, len(tl.Names))
	for i, n := range tl.Names {
		cols[n] = i
	}
	for i, at := range tl.Times {
		row := tl.Rows[i]
		if c, ok := cols["occupancy_bytes"]; ok {
			spans = append(spans, telemetry.Span{
				Process: "fabric", Thread: 0, Name: "shared-buffer occupancy",
				StartNS: int64(at), Counter: true, Value: row[c],
			})
		}
		for p, name := range names {
			c, ok := cols[fmt.Sprintf("port%03d/backlog_bytes", p)]
			if !ok {
				continue
			}
			spans = append(spans, telemetry.Span{
				Process: "fabric", Thread: p + 1, ThreadName: fmt.Sprintf("port%03d (%s)", p, name),
				Name:    fmt.Sprintf("port%03d backlog", p),
				StartNS: int64(at), Counter: true, Value: row[c],
			})
		}
	}
	for _, ev := range bursts {
		spans = append(spans, telemetry.Span{
			Process: "fabric", Thread: ev.Port + 1,
			ThreadName: fmt.Sprintf("port%03d (%s)", ev.Port, ev.Host),
			Name:       "microburst", Cat: "burst",
			StartNS: int64(ev.Start), DurNS: int64(ev.Duration),
			Args: map[string]any{
				"peak_backlog_bytes": ev.PeakBacklog,
				"peak_occupancy":     ev.PeakOccupancy,
				"frames":             ev.Frames,
				"admission_drops":    ev.AdmissionDrops,
				"truncated":          ev.Truncated,
				"flows":              encodeFlows(ev.Flows),
			},
		})
	}
	return telemetry.WriteChromeSpans(w, spans)
}
