package fabricobs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hostsim/internal/fabric"
	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/units"
)

// testFabric builds an N-port fabric with a slow (1Gbps) egress so
// backlogs build deterministically, plus an observer with the given
// options. Flows s (1..N-1) are registered port s -> port 0.
func testFabric(t *testing.T, cfg fabric.Config, opts Options) (*sim.Engine, *fabric.Fabric, *Observer) {
	t.Helper()
	eng := sim.NewEngine(1)
	fb := fabric.New(eng, cfg, func(int, *skb.Frame) {})
	for s := 1; s < cfg.Ports; s++ {
		fb.Register(skb.FlowID(s), s, 0)
	}
	names := make([]string, cfg.Ports)
	for i := range names {
		names[i] = "h" + string(rune('a'+i))
	}
	return eng, fb, New(eng, fb, names, opts)
}

func slowCfg(ports int) fabric.Config {
	return fabric.Config{Ports: ports, LinkRate: units.Gbps, Delay: time.Microsecond}
}

// TestLedgerIdentities drives an incast with a bounded shared buffer,
// Bernoulli loss and ECN marking — all three loss/mark classes active —
// and requires the observer's independent tallies to reconcile exactly
// with the fabric's own counters.
func TestLedgerIdentities(t *testing.T) {
	cfg := slowCfg(4)
	cfg.SharedBuffer = 128 * units.KB
	cfg.LossRate = 0.2
	cfg.ECNThreshold = 8 * units.KB
	eng, fb, obs := testFabric(t, cfg, Options{})
	for i := 0; i < 100; i++ {
		for s := 1; s < 4; s++ {
			fb.Port(s).Send(&skb.Frame{Flow: skb.FlowID(s), Seq: int64(i), Len: 1500})
		}
	}
	eng.Run(sim.Time(10 * time.Millisecond))
	obs.Finalize()
	if err := obs.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	reports := obs.PortReports()
	var adm, loss, marks, delivered int64
	for _, p := range reports {
		adm += p.AdmissionDrops
		loss += p.WireLossDrops
		marks += p.ECNMarks
		delivered += p.Delivered
	}
	tot := fb.Totals()
	if adm != tot.BufDropped || loss != tot.LossDropped || marks != tot.Marked || delivered != tot.Delivered {
		t.Fatalf("ledger totals adm=%d loss=%d marks=%d deliv=%d, fabric %+v",
			adm, loss, marks, delivered, tot)
	}
	if adm == 0 || loss == 0 || marks == 0 {
		t.Fatalf("scenario must exercise all classes: adm=%d loss=%d marks=%d", adm, loss, marks)
	}
	// All frames drained: in-flight must be zero and the per-port
	// identities hold (Reconcile already asserted them; spot-check one).
	hot := reports[0]
	if hot.Enqueued != hot.Delivered+hot.WireLossDrops+hot.InFlight {
		t.Fatalf("egress identity broken on hot port: %+v", hot)
	}
}

// TestBurstDetection pins the microburst detector against a hand-computed
// open-loop burst: 10 MTU frames back to back on a 1Gbps egress with a
// 4KB threshold open one burst at the third frame, absorb the rest, and
// close after the queue drains below 2KB.
func TestBurstDetection(t *testing.T) {
	eng, fb, obs := testFabric(t, slowCfg(2), Options{BurstThreshold: 4 * units.KB})
	for i := 0; i < 10; i++ {
		fb.Port(1).Send(&skb.Frame{Flow: 1, Seq: int64(i), Len: 1500})
	}
	eng.Run(sim.Time(time.Millisecond))
	obs.Finalize()
	bursts := obs.Bursts()
	if len(bursts) != 1 {
		t.Fatalf("bursts = %d, want 1: %+v", len(bursts), bursts)
	}
	b := bursts[0]
	// Wire size 1566B: depth crosses 4096 at the 3rd enqueue; frames
	// 3..10 belong to the burst.
	if b.Frames != 8 {
		t.Errorf("burst frames = %d, want 8", b.Frames)
	}
	if b.Port != 0 || b.Truncated || b.Duration <= 0 {
		t.Errorf("burst = %+v, want closed burst on port 0", b)
	}
	if b.PeakBacklog < 4096 {
		t.Errorf("peak backlog = %d, want >= threshold", b.PeakBacklog)
	}
	if len(b.Flows) != 1 || b.Flows[0].Flow != 1 || b.Flows[0].Frames != 8 {
		t.Errorf("burst flows = %+v, want flow 1 with 8 frames", b.Flows)
	}
	if rep := obs.PortReports()[0]; rep.Bursts != 1 {
		t.Errorf("port report bursts = %d, want 1", rep.Bursts)
	}
}

// TestBurstTruncatedAtHorizon stops the engine mid-burst and requires the
// open burst to be emitted truncated.
func TestBurstTruncatedAtHorizon(t *testing.T) {
	eng, fb, obs := testFabric(t, slowCfg(2), Options{BurstThreshold: 4 * units.KB})
	for i := 0; i < 10; i++ {
		fb.Port(1).Send(&skb.Frame{Flow: 1, Seq: int64(i), Len: 1500})
	}
	// 10 frames need ~125µs to serialize at 1Gbps; stop at 20µs.
	eng.Run(sim.Time(20 * time.Microsecond))
	obs.Finalize()
	bursts := obs.Bursts()
	if len(bursts) != 1 || !bursts[0].Truncated {
		t.Fatalf("bursts = %+v, want one truncated burst", bursts)
	}
	if rep := obs.PortReports()[0]; rep.InFlight == 0 {
		t.Errorf("in-flight = 0 at mid-burst horizon, want > 0")
	}
}

// TestHopLatency pins the first frame's hop: serialization + propagation
// on an idle queue.
func TestHopLatency(t *testing.T) {
	eng, fb, obs := testFabric(t, slowCfg(2), Options{})
	fb.Port(1).Send(&skb.Frame{Flow: 1, Len: 1500})
	eng.Run(sim.Time(time.Millisecond))
	obs.Finalize()
	rep := obs.PortReports()[0]
	if rep.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", rep.Delivered)
	}
	// 1566B at 1Gbps = 12.528µs serialize + 1µs delay.
	want := units.Gbps.Serialize(1566) + time.Microsecond
	got := rep.HopLatencyMean
	if got < want || got > want+want/10 {
		t.Errorf("hop mean = %v, want ~%v (log-bucket upper bound)", got, want)
	}
	if rep.HopLatencyMax < want {
		t.Errorf("hop max = %v, want >= %v", rep.HopLatencyMax, want)
	}
}

func TestTopFlows(t *testing.T) {
	got := topFlows(map[skb.FlowID]int64{5: 3, 2: 7, 9: 3, 1: 1}, 3)
	want := []FlowFrames{{2, 7}, {5, 3}, {9, 3}}
	if len(got) != 3 {
		t.Fatalf("topFlows kept %d, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topFlows = %+v, want %+v", got, want)
		}
	}
}

// TestTransparency runs the same open-loop schedule with and without an
// observer and requires identical fabric counters — the unit-level half
// of the byte-identity contract (the hostsim-level test pins full
// results).
func TestTransparency(t *testing.T) {
	run := func(observe bool) fabric.FabricTotals {
		eng := sim.NewEngine(7)
		cfg := slowCfg(4)
		cfg.SharedBuffer = 32 * units.KB
		cfg.LossRate = 0.1
		fb := fabric.New(eng, cfg, func(int, *skb.Frame) {})
		for s := 1; s < 4; s++ {
			fb.Register(skb.FlowID(s), s, 0)
		}
		if observe {
			New(eng, fb, []string{"a", "b", "c", "d"}, Options{})
		}
		for i := 0; i < 200; i++ {
			for s := 1; s < 4; s++ {
				fb.Port(s).Send(&skb.Frame{Flow: skb.FlowID(s), Seq: int64(i), Len: 1500})
			}
		}
		eng.Run(sim.Time(10 * time.Millisecond))
		return fb.Totals()
	}
	if off, on := run(false), run(true); off != on {
		t.Fatalf("observed run diverged: off=%+v on=%+v", off, on)
	}
}

// TestTimeline checks the sampled series: monotone timestamps, the
// registered column set, and a nonzero hot-port backlog sample.
func TestTimeline(t *testing.T) {
	eng, fb, obs := testFabric(t, slowCfg(2), Options{SampleInterval: 10 * time.Microsecond})
	for i := 0; i < 20; i++ {
		fb.Port(1).Send(&skb.Frame{Flow: 1, Seq: int64(i), Len: 1500})
	}
	eng.Run(sim.Time(time.Millisecond))
	tl := obs.Timeline()
	if tl.Len() == 0 {
		t.Fatal("empty timeline")
	}
	for i := 1; i < tl.Len(); i++ {
		if tl.Times[i] <= tl.Times[i-1] {
			t.Fatalf("timestamps not strictly increasing at %d: %v then %v", i, tl.Times[i-1], tl.Times[i])
		}
	}
	backlog, ok := tl.Column("port000/backlog_bytes")
	if !ok {
		t.Fatalf("no hot-port backlog column; names = %v", tl.Names)
	}
	var peak float64
	for _, v := range backlog {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		t.Error("hot-port backlog never sampled above zero")
	}
	if _, ok := tl.Column("port001/utilization"); !ok {
		t.Error("no utilization column")
	}
}

// TestWritersDeterministic renders every artifact twice and requires
// byte-identical output; spot-checks the content shapes.
func TestWritersDeterministic(t *testing.T) {
	cfg := slowCfg(3)
	cfg.SharedBuffer = 16 * units.KB
	eng, fb, obs := testFabric(t, cfg, Options{BurstThreshold: 4 * units.KB})
	for i := 0; i < 50; i++ {
		for s := 1; s < 3; s++ {
			fb.Port(s).Send(&skb.Frame{Flow: skb.FlowID(s), Seq: int64(i), Len: 1500})
		}
	}
	eng.Run(sim.Time(10 * time.Millisecond))
	obs.Finalize()

	render := func() (csv, jsonl, tr string) {
		var a, b, c bytes.Buffer
		if err := WriteReportCSV(&a, obs.PortReports(), obs.Bursts()); err != nil {
			t.Fatal(err)
		}
		if err := WriteReportJSONL(&b, obs.PortReports(), obs.Bursts()); err != nil {
			t.Fatal(err)
		}
		if err := WriteTrace(&c, []string{"ha", "hb", "hc"}, obs.Timeline(), obs.Bursts()); err != nil {
			t.Fatal(err)
		}
		return a.String(), b.String(), c.String()
	}
	c1, j1, t1 := render()
	c2, j2, t2 := render()
	if c1 != c2 || j1 != j2 || t1 != t2 {
		t.Fatal("writers are not deterministic across renders")
	}
	if !strings.HasPrefix(c1, portCSVHeader+"\n") || !strings.Contains(c1, burstCSVHeader) {
		t.Fatalf("CSV missing section headers:\n%s", c1)
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(j1[:strings.IndexByte(j1, '\n')]), &first); err != nil {
		t.Fatalf("JSONL first line not JSON: %v", err)
	}
	if first["type"] != "port" {
		t.Fatalf("JSONL first line type = %v, want port", first["type"])
	}
	var arr []map[string]any
	if err := json.Unmarshal([]byte(t1), &arr); err != nil {
		t.Fatalf("trace not a JSON array: %v", err)
	}
	if len(arr) == 0 {
		t.Fatal("empty chrome trace")
	}
	if obs.FormatReport() == "" {
		t.Fatal("empty text report")
	}
}

// TestNewPanics pins constructor validation.
func TestNewPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	fb := fabric.New(eng, slowCfg(2), func(int, *skb.Frame) {})
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("nil engine", func() { New(nil, fb, []string{"a", "b"}, Options{}) })
	expectPanic("nil fabric", func() { New(eng, nil, []string{"a", "b"}, Options{}) })
	expectPanic("name count", func() { New(eng, fb, []string{"a"}, Options{}) })
	expectPanic("negative option", func() { New(eng, fb, []string{"a", "b"}, Options{MaxBursts: -1}) })
}
