package tcp

import (
	"testing"
	"time"

	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/topology"
	"hostsim/internal/units"
	"hostsim/internal/wire"
)

// pipe wires two connection endpoints through wire.Links, bypassing the
// NIC: segments become MSS-sized frames, ACKs become pure-ACK frames.
type pipe struct {
	eng  *sim.Engine
	sys  *exec.System
	a, b *Conn // a transmits flow 1 to b

	recvd  []*skb.SKB // what b's app read
	recvdB units.Bytes
	// readChunk controls b's app read size per readable event; 0 = all.
	readChunk units.Bytes
	autoRead  bool
}

func newPipe(t *testing.T, seed int64, ccName string, mss units.Bytes,
	mut func(*Config), lossAtoB float64) *pipe {
	t.Helper()
	p := &pipe{eng: sim.NewEngine(seed), autoRead: true}
	p.sys = exec.NewSystem(p.eng, topology.Default(), cpumodel.Default())

	cfg := DefaultConfig(mss)
	// The pipe bypasses the NIC, so nothing reports wire departures;
	// disable TSQ gating here (TestTSQGating covers it explicitly).
	cfg.TSQBytes = 1 << 40
	if mut != nil {
		mut(&cfg)
	}

	var toB, toA *wire.Link
	toB = wire.NewLink(p.eng, 100*units.Gbps, 2*time.Microsecond, func(f *skb.Frame) {
		p.sys.Core(0).RaiseSoftirq(func(ctx *exec.Ctx) {
			ctx.Charge(cpumodel.Netdev, 100)
			p.b.OnSegment(ctx, skb.FromFrame(f))
		})
	})
	toB.SetLossRate(lossAtoB)
	toA = wire.NewLink(p.eng, 100*units.Gbps, 2*time.Microsecond, func(f *skb.Frame) {
		p.sys.Core(1).RaiseSoftirq(func(ctx *exec.Ctx) {
			ctx.Charge(cpumodel.Netdev, 100)
			p.a.OnSegment(ctx, skb.FromFrame(f))
		})
	})

	hooks := func(out *wire.Link, core int) Hooks {
		return Hooks{
			SendSegment: func(ctx *exec.Ctx, c *Conn, seq int64, length units.Bytes, retrans bool) {
				ctx.Charge(cpumodel.TCPIP, 500)
				segs := skb.SegmentSizes(length, c.cfg.MSS)
				s := seq
				frames := make([]*skb.Frame, 0, len(segs))
				for _, l := range segs {
					frames = append(frames, &skb.Frame{Flow: c.flow, Seq: s, Len: l})
					s += int64(l)
				}
				ctx.Defer(func() {
					for _, f := range frames {
						out.Send(f)
					}
				})
			},
			SendAck: func(ctx *exec.Ctx, c *Conn, info *skb.AckInfo) {
				f := &skb.Frame{Flow: c.flow, Ack: info}
				ctx.Defer(func() { out.Send(f) })
			},
			SendProbe: func(ctx *exec.Ctx, c *Conn) {
				f := &skb.Frame{Flow: c.flow}
				ctx.Defer(func() { out.Send(f) })
			},
			Softirq: func(fn func(*exec.Ctx)) { p.sys.Core(core).RaiseSoftirq(fn) },
		}
	}

	ha := hooks(toB, 1) // a runs on core 1, sends toward b
	hb := hooks(toA, 0) // b runs on core 0 (acks travel toA? no: b acks flow 1 via toA)
	hb.OnReadable = func(ctx *exec.Ctx, c *Conn) {
		if !p.autoRead {
			return
		}
		max := p.readChunk
		if max == 0 {
			max = units.Bytes(1 << 40)
		}
		for _, s := range c.Read(ctx, max) {
			p.recvd = append(p.recvd, s)
			p.recvdB += s.Len
		}
		ctx.Charge(cpumodel.DataCopy, 100)
	}

	p.a = New(p.eng, cpumodel.Default(), cfg, 1, NewCC(ccName, cfg.MSS), ha)
	p.b = New(p.eng, cpumodel.Default(), cfg, 2, NewCC(ccName, cfg.MSS), hb)
	return p
}

// send queues n bytes on a from softirq context, respecting the buffer.
func (p *pipe) send(n units.Bytes) {
	var push func()
	remaining := n
	push = func() {
		p.sys.Core(1).RaiseSoftirq(func(ctx *exec.Ctx) {
			ctx.Charge(cpumodel.Etc, 100)
			free := p.a.SndBufFree()
			if free > remaining {
				free = remaining
			}
			if free > 0 {
				p.a.SendData(ctx, free, nil)
				remaining -= free
			}
			if remaining > 0 {
				ctx.Defer(func() { p.eng.After(20*time.Microsecond, push) })
			}
		})
	}
	push()
}

func (p *pipe) run(d time.Duration) { p.eng.Run(sim.Time(d)) }

// verifyStream checks the received skbs form the exact in-order stream.
func (p *pipe) verifyStream(t *testing.T, want units.Bytes) {
	t.Helper()
	if p.recvdB != want {
		t.Fatalf("received %d bytes, want %d", p.recvdB, want)
	}
	var next int64
	for i, s := range p.recvd {
		if s.Seq != next {
			t.Fatalf("skb %d starts at %d, want %d (stream must be in order, exactly once)", i, s.Seq, next)
		}
		next = s.End()
	}
	if next != int64(want) {
		t.Fatalf("stream ends at %d, want %d", next, want)
	}
}

func TestBulkTransferLossless(t *testing.T) {
	p := newPipe(t, 1, "cubic", 8934, nil, 0)
	const total = 4 * units.MB
	p.send(total)
	p.run(100 * time.Millisecond)
	p.verifyStream(t, total)
	st := p.a.Stats()
	if st.Retransmits != 0 {
		t.Errorf("lossless transfer retransmitted %d times", st.Retransmits)
	}
	if st.SentBytes != total {
		t.Errorf("SentBytes = %d, want %d", st.SentBytes, total)
	}
}

func TestSmallMSSTransfer(t *testing.T) {
	p := newPipe(t, 2, "cubic", 1434, nil, 0)
	const total = 256 * units.KB
	p.send(total)
	p.run(100 * time.Millisecond)
	p.verifyStream(t, total)
}

func TestFlowControlNeverOverflowsRcvBuf(t *testing.T) {
	p := newPipe(t, 3, "cubic", 8934, func(c *Config) {
		c.RcvBuf = 256 * units.KB
		c.RcvBufMax = 0 // fixed
	}, 0)
	p.autoRead = false // the app never reads: queue must cap at rcvBuf
	p.send(4 * units.MB)
	p.run(50 * time.Millisecond)
	if got := p.b.Readable(); got > 256*units.KB {
		t.Errorf("receive queue %d exceeds fixed rcvbuf 256KB", got)
	}
	if p.a.sndNxt >= int64(2*units.MB) {
		t.Errorf("sender pushed %d bytes into a closed window", p.a.sndNxt)
	}
}

func TestZeroWindowReopensOnRead(t *testing.T) {
	p := newPipe(t, 4, "cubic", 8934, func(c *Config) {
		c.RcvBuf = 128 * units.KB
		c.RcvBufMax = 0
	}, 0)
	p.autoRead = false
	p.send(2 * units.MB)
	p.run(20 * time.Millisecond)
	stalledAt := p.a.sndNxt
	if stalledAt >= int64(2*units.MB) {
		t.Fatal("precondition: sender should have stalled on the window")
	}
	// Now the app starts draining.
	p.autoRead = true
	p.sys.Core(0).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.Etc, 100)
		for _, s := range p.b.Read(ctx, units.Bytes(1<<40)) {
			p.recvd = append(p.recvd, s)
			p.recvdB += s.Len
		}
	})
	p.run(120 * time.Millisecond)
	p.verifyStream(t, 2*units.MB)
}

func TestLossRecoveryDeliversExactStream(t *testing.T) {
	for _, loss := range []float64{0.001, 0.01} {
		p := newPipe(t, 5, "cubic", 8934, nil, loss)
		const total = 2 * units.MB
		p.send(total)
		p.run(400 * time.Millisecond)
		p.verifyStream(t, total)
		if p.a.Stats().Retransmits == 0 {
			t.Errorf("loss %v: expected retransmissions", loss)
		}
	}
}

func TestHeavyLossStillCompletes(t *testing.T) {
	p := newPipe(t, 6, "cubic", 8934, nil, 0.05)
	const total = 512 * units.KB
	p.send(total)
	p.run(2 * time.Second)
	p.verifyStream(t, total)
}

func TestDupAcksAndSACKGenerated(t *testing.T) {
	p := newPipe(t, 7, "cubic", 8934, nil, 0.01)
	p.send(2 * units.MB)
	p.run(400 * time.Millisecond)
	if p.b.Stats().DupAcksSent == 0 {
		t.Error("receiver should emit duplicate ACKs under loss")
	}
	if p.b.Stats().OOOSegments == 0 {
		t.Error("receiver should see out-of-order segments under loss")
	}
	if p.a.Stats().FastRetransmit == 0 {
		t.Error("sender should fast-retransmit under loss")
	}
}

func TestDelayedAckCadence(t *testing.T) {
	p := newPipe(t, 8, "cubic", 8934, nil, 0)
	const total = 2 * units.MB
	p.send(total)
	p.run(100 * time.Millisecond)
	acks := p.b.Stats().AcksSent
	// One ack at least every DelAckBytes (2*MSS); GRO-less frames here, so
	// expect roughly total/(2*MSS) acks, certainly within 3x either way.
	wantMin := int64(total) / int64(6*8934)
	wantMax := int64(total) / int64(8934)
	if acks < wantMin || acks > wantMax+wantMin {
		t.Errorf("AcksSent = %d, want within [%d, %d]", acks, wantMin, wantMax+wantMin)
	}
}

func TestAutotuneGrowsUnderPressure(t *testing.T) {
	p := newPipe(t, 9, "cubic", 8934, func(c *Config) {
		c.RcvBuf = 128 * units.KB
		c.RcvBufMax = 6 * units.MB
	}, 0)
	// Slow reader: drain only 9KB every 100us (~720Mbps) while the sender
	// can fill whatever window opens — queue pressure must build.
	p.autoRead = false
	var drain func()
	drain = func() {
		p.sys.Core(0).RaiseSoftirq(func(ctx *exec.Ctx) {
			ctx.Charge(cpumodel.Etc, 10)
			for _, s := range p.b.Read(ctx, 9*units.KB) {
				p.recvdB += s.Len
			}
		})
		p.eng.After(100*time.Microsecond, drain)
	}
	p.eng.At(0, func() { drain() })
	p.send(8 * units.MB)
	p.run(200 * time.Millisecond)
	if p.b.RcvBuf() <= 128*units.KB {
		t.Error("autotune should have grown the receive buffer")
	}
	if p.b.RcvBuf() > 6*units.MB {
		t.Errorf("autotune exceeded cap: %v", p.b.RcvBuf())
	}
}

func TestFixedBufferDoesNotAutotune(t *testing.T) {
	p := newPipe(t, 10, "cubic", 8934, func(c *Config) {
		c.RcvBuf = 200 * units.KB
		c.RcvBufMax = 0
	}, 0)
	p.readChunk = 16 * units.KB
	p.send(2 * units.MB)
	p.run(100 * time.Millisecond)
	if p.b.RcvBuf() != 200*units.KB {
		t.Errorf("fixed buffer changed size: %v", p.b.RcvBuf())
	}
}

func TestRTTEstimate(t *testing.T) {
	p := newPipe(t, 11, "cubic", 8934, nil, 0)
	p.send(units.MB)
	p.run(50 * time.Millisecond)
	// Physical RTT is ~4us plus serialization and softirq work.
	if p.a.SRTT() < 4*time.Microsecond || p.a.SRTT() > 200*time.Microsecond {
		t.Errorf("SRTT = %v, want a few to tens of microseconds", p.a.SRTT())
	}
}

func TestSndBufFreeAccounting(t *testing.T) {
	p := newPipe(t, 12, "cubic", 8934, nil, 0)
	if p.a.SndBufFree() != p.a.cfg.SndBuf {
		t.Fatal("fresh connection should have the whole send buffer free")
	}
	p.sys.Core(1).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.Etc, 10)
		p.a.SendData(ctx, 64*units.KB, nil)
	})
	p.run(time.Millisecond)
	// By now everything is acked, so the buffer must be free again.
	if p.a.SndBufFree() != p.a.cfg.SndBuf {
		t.Errorf("SndBufFree = %v after full ack, want full buffer", p.a.SndBufFree())
	}
}

func TestSendDataBeyondBufferPanics(t *testing.T) {
	p := newPipe(t, 13, "cubic", 8934, nil, 0)
	panicked := false
	p.sys.Core(1).RaiseSoftirq(func(ctx *exec.Ctx) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ctx.Charge(cpumodel.Etc, 10)
		p.a.SendData(ctx, p.a.cfg.SndBuf+1, nil)
	})
	p.run(time.Millisecond)
	if !panicked {
		t.Error("overfilling the send buffer should panic")
	}
}

func TestCubicSlowStartAndBackoff(t *testing.T) {
	c := &Cubic{mss: 1448}
	conn := &Conn{cfg: Config{InitCwnd: 10 * 1448}}
	c.Init(conn)
	if c.Cwnd() != 14480 {
		t.Fatalf("initial cwnd = %v", c.Cwnd())
	}
	w0 := c.Cwnd()
	c.OnAck(nil, 14480, time.Millisecond, false)
	if c.Cwnd() != w0+14480 {
		t.Errorf("slow start should grow cwnd by acked bytes: %v", c.Cwnd())
	}
	w1 := c.Cwnd()
	c.OnLoss()
	want := units.Bytes(float64(w1) * cubicBeta)
	if c.Cwnd() != want {
		t.Errorf("OnLoss cwnd = %v, want %v (beta=0.7)", c.Cwnd(), want)
	}
}

func TestRenoAIMD(t *testing.T) {
	r := &Reno{mss: 1000}
	conn := &Conn{cfg: Config{InitCwnd: 10000}}
	r.Init(conn)
	r.ssthresh = 10000 // force congestion avoidance
	r.OnAck(nil, 10000, time.Millisecond, false)
	if r.Cwnd() != 11000 {
		t.Errorf("CA growth: cwnd = %v, want 11000 (one MSS per window)", r.Cwnd())
	}
	r.OnLoss()
	if r.Cwnd() != 5500 {
		t.Errorf("MD: cwnd = %v, want 5500", r.Cwnd())
	}
	r.OnRTO()
	if r.Cwnd() != 2000 {
		t.Errorf("RTO: cwnd = %v, want 2*MSS", r.Cwnd())
	}
}

func TestDCTCPAlphaTracksMarks(t *testing.T) {
	d := &DCTCP{Reno: Reno{mss: 1000}}
	conn := &Conn{cfg: Config{InitCwnd: 10000}}
	d.Init(conn)
	d.ssthresh = 1 // CA
	// One full epoch with every byte marked: alpha rises by g.
	d.OnAck(nil, 10000, time.Millisecond, true)
	if d.Alpha() <= 0 {
		t.Error("alpha should rise after a fully marked epoch")
	}
	w := d.Cwnd()
	// Epochs without marks decay alpha and let the window grow.
	for i := 0; i < 50; i++ {
		d.OnAck(nil, d.Cwnd(), time.Millisecond, false)
	}
	if d.Alpha() >= 0.1 {
		t.Errorf("alpha should decay without marks: %v", d.Alpha())
	}
	if d.Cwnd() <= w {
		t.Error("window should grow in unmarked epochs")
	}
}

func TestBBRPacesAndTransfers(t *testing.T) {
	p := newPipe(t, 14, "bbr", 8934, nil, 0)
	const total = 2 * units.MB
	p.send(total)
	p.run(200 * time.Millisecond)
	p.verifyStream(t, total)
	if p.a.CC().PacingRate() <= 0 {
		t.Error("BBR should report a pacing rate")
	}
	// Pacing releases run in softirq and charge Sched (TSQ wakeups).
	acct := p.sys.Core(1).Accounting()
	if acct[cpumodel.Sched] == 0 {
		t.Error("paced sending should accrue Sched cycles on the sender core")
	}
}

func TestProbeElicitsAck(t *testing.T) {
	p := newPipe(t, 15, "cubic", 8934, nil, 0)
	before := p.b.Stats().AcksSent
	p.sys.Core(0).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.Etc, 10)
		p.b.OnSegment(ctx, &skb.SKB{Flow: 1, Len: 0})
	})
	p.run(time.Millisecond)
	if p.b.Stats().AcksSent != before+1 {
		t.Error("window probe should elicit an immediate ACK")
	}
	if p.b.Stats().Probes != 1 {
		t.Errorf("Probes = %d, want 1", p.b.Stats().Probes)
	}
}

func TestTSQGating(t *testing.T) {
	p := newPipe(t, 16, "cubic", 8934, func(c *Config) {
		c.TSQBytes = 128 * units.KB
	}, 0)
	p.send(4 * units.MB)
	p.run(2 * time.Millisecond)
	// Without completions, the sender stops at the TSQ budget (rounded up
	// to whole segments).
	if got := p.a.InQdisc(); got < 128*units.KB || got > 192*units.KB {
		t.Fatalf("InQdisc = %v, want ~TSQ budget 128-192KB", got)
	}
	sent := p.a.Stats().SentBytes
	if sent > 192*units.KB {
		t.Fatalf("sender pushed %v past the TSQ budget", sent)
	}
	// Completions reopen the budget and sending resumes.
	done := false
	var drain func()
	drain = func() {
		p.sys.Core(1).RaiseSoftirq(func(ctx *exec.Ctx) {
			ctx.Charge(cpumodel.Netdev, 100)
			if q := p.a.InQdisc(); q > 0 {
				p.a.TxCompleted(ctx, q)
			}
		})
		if !done {
			p.eng.After(50*time.Microsecond, drain)
		}
	}
	drain()
	p.run(200 * time.Millisecond)
	done = true
	if p.a.Stats().SentBytes < 4*units.MB {
		t.Errorf("sending did not resume after completions: sent %v", p.a.Stats().SentBytes)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MSS = 0 },
		func(c *Config) { c.SegmentBytes = c.MSS - 1 },
		func(c *Config) { c.SndBuf = 0 },
		func(c *Config) { c.RcvBuf = 0 },
		func(c *Config) { c.MinRTO = 0 },
		func(c *Config) { c.PersistTime = 0 },
	}
	for i, f := range bad {
		cfg := DefaultConfig(1448)
		f(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestUnknownCCPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown CC name should panic")
		}
	}()
	NewCC("vegas", 1448)
}

// Byte conservation across random loss rates and read cadences: the
// delivered stream is always exactly the sent prefix, in order.
func TestPropertyStreamIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	cases := []struct {
		seed  int64
		loss  float64
		chunk units.Bytes
		cc    string
	}{
		{100, 0, 0, "cubic"},
		{101, 0.002, 16 * units.KB, "cubic"},
		{102, 0.02, 64 * units.KB, "cubic"},
		{103, 0.005, 8 * units.KB, "reno"},
		{104, 0.01, 0, "dctcp"},
		{105, 0.005, 32 * units.KB, "bbr"},
	}
	for _, tc := range cases {
		p := newPipe(t, tc.seed, tc.cc, 8934, nil, tc.loss)
		p.readChunk = tc.chunk
		const total = units.MB
		p.send(total)
		p.run(2 * time.Second)
		p.verifyStream(t, total)
	}
}
