// Package tcp implements the simulated TCP engine: byte-stream
// connections with congestion control (CUBIC, DCTCP, BBR), flow control
// with Linux-style receive-buffer autotuning, delayed and duplicate ACKs,
// SACK-based fast retransmission, retransmission timeouts, zero-window
// probing, and BBR pacing.
//
// The package is deliberately free of CPU-cost policy beyond protocol
// work: the host (internal/core) supplies Hooks that transmit segments,
// charge the transmit path, and react to socket events, so the same
// protocol engine runs under every stack configuration the paper studies.
package tcp

import (
	"fmt"
	"sort"
	"time"

	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/mem"
	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/units"
)

// Config parameterises one connection endpoint.
type Config struct {
	MSS          units.Bytes // wire segment payload limit
	SegmentBytes units.Bytes // tx skb size: 64KB under TSO/GSO, MSS otherwise
	SndBuf       units.Bytes // send buffer bound
	RcvBuf       units.Bytes // initial receive buffer
	RcvBufMax    units.Bytes // autotune cap; 0 = RcvBuf is fixed
	InitCwnd     units.Bytes // initial congestion window; 0 = 10*MSS
	MinRTO       time.Duration
	PersistTime  time.Duration // zero-window probe interval
	DelAckBytes  units.Bytes   // ack at least every this many delivered bytes; 0 = 2*MSS
	DelAckTime   time.Duration // trailing-edge delayed-ack timer; 0 = 500us
	// TSQBytes bounds the connection's unsent-to-wire bytes in the
	// qdisc/NIC (TCP Small Queues); 0 = 256KB. The host reports wire
	// departures via TxCompleted.
	TSQBytes units.Bytes
}

// DefaultConfig mirrors Linux defaults on the paper's testbed (tcp_rmem
// max 6MB, 64KB TSO aggregates, CUBIC handled by the CC factory).
func DefaultConfig(mss units.Bytes) Config {
	return Config{
		MSS:          mss,
		SegmentBytes: 64 * units.KB,
		SndBuf:       4 * units.MB,
		RcvBuf:       128 * units.KB,
		RcvBufMax:    6 * units.MB,
		MinRTO:       10 * time.Millisecond,
		PersistTime:  5 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.MSS <= 0:
		return fmt.Errorf("tcp: MSS = %d", c.MSS)
	case c.SegmentBytes < c.MSS:
		return fmt.Errorf("tcp: SegmentBytes %d < MSS %d", c.SegmentBytes, c.MSS)
	case c.SndBuf < c.SegmentBytes:
		return fmt.Errorf("tcp: SndBuf %d < SegmentBytes", c.SndBuf)
	case c.RcvBuf <= 0:
		return fmt.Errorf("tcp: RcvBuf = %d", c.RcvBuf)
	case c.MinRTO <= 0:
		return fmt.Errorf("tcp: MinRTO = %v", c.MinRTO)
	case c.PersistTime <= 0:
		return fmt.Errorf("tcp: PersistTime = %v", c.PersistTime)
	}
	return nil
}

// Hooks connects a Conn to its host. All fields are required except
// OnWritable/OnReadable/OnAckedPages, which may be nil.
type Hooks struct {
	// SendSegment transmits [seq, seq+len) of the connection's tx flow,
	// charging the tx data path to ctx. retrans marks retransmissions.
	SendSegment func(ctx *exec.Ctx, c *Conn, seq int64, length units.Bytes, retrans bool)
	// SendAck emits a pure ACK on the reverse path.
	SendAck func(ctx *exec.Ctx, c *Conn, info *skb.AckInfo)
	// SendProbe emits a zero-length window probe.
	SendProbe func(ctx *exec.Ctx, c *Conn)
	// Softirq runs fn in softirq context on the connection's core
	// (timer handlers: RTO, persist, pacer).
	Softirq func(fn func(*exec.Ctx))
	// OnReadable fires when new in-order data enters the receive queue.
	OnReadable func(ctx *exec.Ctx, c *Conn)
	// OnWritable fires when send-buffer space opens.
	OnWritable func(ctx *exec.Ctx, c *Conn)
	// OnAckedPages releases the sender-side pages backing acked bytes.
	OnAckedPages func(ctx *exec.Ctx, c *Conn, pages []mem.Page)
	// Recycle, if non-nil, receives skbs the connection has fully consumed
	// (pure ACKs, probes, duplicates) so the host can return them to its
	// receive-path pool. Optional.
	Recycle func(s *skb.SKB)
	// NewAck, if non-nil, supplies AckInfo records for outgoing ACKs
	// (typically a pool shared with the peer, where the records die).
	// Optional; nil means plain allocation.
	NewAck func() *skb.AckInfo
}

// Stats tracks a connection's protocol activity.
type Stats struct {
	SentBytes      units.Bytes // first transmissions
	RetransBytes   units.Bytes
	Retransmits    int64
	FastRetransmit int64
	Timeouts       int64
	AcksSent       int64
	DupAcksSent    int64
	AcksReceived   int64
	DupAcksRecv    int64
	DeliveredBytes units.Bytes // handed to the application in order
	OOOSegments    int64
	Probes         int64
}

type sentChunk struct {
	endSeq int64
	pages  []mem.Page
	at     sim.Time // when the application wrote the chunk
}

// Conn is one endpoint of a TCP connection: transmit state for its
// outgoing flow and receive state for the incoming flow.
type Conn struct {
	eng   *sim.Engine
	costs *cpumodel.Costs
	cfg   Config
	hooks Hooks
	cc    CongestionControl
	flow  skb.FlowID // the flow this endpoint transmits

	// ---- transmit state.
	sndUna        int64
	sndNxt        int64
	appLimit      int64       // bytes the application has committed to the stream
	rightEdge     int64       // sndUna + peer window (flow-control limit)
	chunks        []sentChunk // live entries are chunks[chHead:]
	chHead        int
	sacked        []skb.Range
	retxNext      int64 // next hole byte to retransmit within recovery
	dupAcks       int
	inRecovery    bool
	recoveryEnd   int64
	recoveryStall int // acks in recovery without cumulative progress
	rtoTimer      sim.Timer
	persistTimer  sim.Timer
	srtt, rttvar  time.Duration
	rttSeq        int64 // segment end whose ack yields the next RTT sample
	rttSentAt     sim.Time
	pacer         pacerState
	inQdisc       units.Bytes // bytes handed to the qdisc/NIC, not yet on the wire

	// ---- receive state.
	rcvNxt      int64
	rcvBuf      units.Bytes
	ooo         []*skb.SKB // sorted by Seq, non-overlapping
	oooBytes    units.Bytes
	recvQ       []*skb.SKB // live entries are recvQ[rqHead:]
	rqHead      int
	recvQBytes  units.Bytes
	unacked     units.Bytes // delivered bytes since last ack
	lastAdvWnd  units.Bytes
	ecnPending  bool // CE seen since last ack (DCTCP echo)
	delAckTimer sim.Timer
	peerWnd     units.Bytes // last window seen from the peer (dup-ack test)
	tuneAcc     units.Bytes // delivered bytes since the last DRS mark
	quickAcks   int         // remaining immediate acks (quickack mode)
	wndClamp    units.Bytes // receiver scheduler clamp; -1 = none

	stats Stats
	probe ProbeFunc // nil = congestion tracing off

	// Hot-path scratch and once-allocated timer callbacks: armed timers and
	// per-ack page releases run millions of times per run, so their
	// closures/slices are created once here and reused.
	rtoFn     func()
	persistFn func()
	delAckFn  func()
	freed     []mem.Page   // releaseAcked scratch
	slabFree  [][]mem.Page // released chunk page slabs, for PageSlab
	readOut   []*skb.SKB   // Read result scratch; valid until the next Read
}

// New builds a connection endpoint for flow, transmitting via hooks and
// governed by cc.
func New(eng *sim.Engine, costs *cpumodel.Costs, cfg Config, flow skb.FlowID,
	cc CongestionControl, hooks Hooks) *Conn {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if eng == nil || costs == nil || cc == nil {
		panic("tcp: nil dependency")
	}
	if hooks.SendSegment == nil || hooks.SendAck == nil || hooks.Softirq == nil || hooks.SendProbe == nil {
		panic("tcp: missing required hook")
	}
	if cfg.InitCwnd == 0 {
		cfg.InitCwnd = 10 * cfg.MSS
	}
	if cfg.DelAckBytes == 0 {
		cfg.DelAckBytes = 2 * cfg.MSS
	}
	if cfg.DelAckTime == 0 {
		cfg.DelAckTime = 500 * time.Microsecond
	}
	if cfg.TSQBytes == 0 {
		cfg.TSQBytes = 256 * units.KB
	}
	c := &Conn{
		eng: eng, costs: costs, cfg: cfg, hooks: hooks, cc: cc, flow: flow,
		rcvBuf:    cfg.RcvBuf,
		rightEdge: int64(cfg.RcvBuf), // peer starts with its initial window
		srtt:      0,
		wndClamp:  -1,
	}
	c.lastAdvWnd = cfg.RcvBuf
	// Bind the timer handlers once: the timer callback and the softirq body
	// are both stored so re-arming (and firing) never allocates.
	onRTO, persist, delAck := c.onRTO, c.persistBody, c.delAckBody
	c.rtoFn = func() { c.hooks.Softirq(onRTO) }
	c.persistFn = func() { c.hooks.Softirq(persist) }
	c.delAckFn = func() { c.hooks.Softirq(delAck) }
	cc.Init(c)
	return c
}

// Flow returns the transmit-direction flow id.
func (c *Conn) Flow() skb.FlowID { return c.flow }

// Stats returns a copy of the counters.
func (c *Conn) Stats() Stats { return c.stats }

// CC returns the congestion controller (inspection).
func (c *Conn) CC() CongestionControl { return c.cc }

// SRTT returns the smoothed RTT estimate (0 until the first sample).
func (c *Conn) SRTT() time.Duration { return c.srtt }

// RcvBuf returns the current receive buffer size (autotuned or fixed).
func (c *Conn) RcvBuf() units.Bytes { return c.rcvBuf }

// SndUna returns the lowest unacknowledged sequence number.
func (c *Conn) SndUna() int64 { return c.sndUna }

// SndNxt returns the next sequence number to transmit.
func (c *Conn) SndNxt() int64 { return c.sndNxt }

// AppLimit returns the bytes the application has committed to the stream.
func (c *Conn) AppLimit() int64 { return c.appLimit }

// RcvNxt returns the next expected receive sequence number.
func (c *Conn) RcvNxt() int64 { return c.rcvNxt }

// RecvQLen returns the number of skbs queued for the application.
func (c *Conn) RecvQLen() int { return len(c.recvQ) - c.rqHead }

// OOOLen returns the number of out-of-order skbs held.
func (c *Conn) OOOLen() int { return len(c.ooo) }

// CheckInvariants audits the connection's sequence-space bookkeeping,
// reporting each violation through fail. It performs no protocol actions
// and mutates nothing, so it is safe to call between simulation events.
func (c *Conn) CheckInvariants(fail func(format string, args ...any)) {
	if c.sndUna < 0 || c.sndUna > c.sndNxt || c.sndNxt > c.appLimit {
		fail("tcp flow %d: sequence order broken: sndUna %d, sndNxt %d, appLimit %d",
			c.flow, c.sndUna, c.sndNxt, c.appLimit)
	}
	if c.sndNxt > c.rightEdge {
		fail("tcp flow %d: sndNxt %d beyond peer window edge %d", c.flow, c.sndNxt, c.rightEdge)
	}
	if c.inQdisc < 0 {
		fail("tcp flow %d: negative qdisc occupancy %d", c.flow, c.inQdisc)
	}
	if int64(c.stats.DeliveredBytes) != c.rcvNxt {
		fail("tcp flow %d: DeliveredBytes %d != rcvNxt %d (in-order delivery must advance both together)",
			c.flow, c.stats.DeliveredBytes, c.rcvNxt)
	}
	var rq units.Bytes
	for _, s := range c.recvQ[c.rqHead:] {
		rq += s.Len
	}
	if rq != c.recvQBytes {
		fail("tcp flow %d: recvQBytes %d but queue holds %d", c.flow, c.recvQBytes, rq)
	}
	var ob units.Bytes
	prev := c.rcvNxt
	for i, s := range c.ooo {
		ob += s.Len
		if s.Seq <= prev {
			fail("tcp flow %d: ooo[%d] seq %d not ascending above rcvNxt %d (prev %d)",
				c.flow, i, s.Seq, c.rcvNxt, prev)
		}
		prev = s.Seq
	}
	if ob != c.oooBytes {
		fail("tcp flow %d: oooBytes %d but queue holds %d", c.flow, c.oooBytes, ob)
	}
	chunks := c.chunks[c.chHead:]
	if len(chunks) == 0 {
		if c.appLimit != c.sndUna {
			fail("tcp flow %d: no send chunks but appLimit %d != sndUna %d",
				c.flow, c.appLimit, c.sndUna)
		}
	} else {
		if chunks[0].endSeq <= c.sndUna {
			fail("tcp flow %d: acked chunk (end %d <= sndUna %d) not released",
				c.flow, chunks[0].endSeq, c.sndUna)
		}
		prevEnd := int64(-1)
		for i, ch := range chunks {
			if ch.endSeq <= prevEnd {
				fail("tcp flow %d: chunk[%d] end %d not ascending (prev %d)",
					c.flow, i, ch.endSeq, prevEnd)
			}
			prevEnd = ch.endSeq
		}
		if last := chunks[len(chunks)-1].endSeq; last != c.appLimit {
			fail("tcp flow %d: last chunk end %d != appLimit %d", c.flow, last, c.appLimit)
		}
	}
	prevEnd := c.sndUna
	for i, r := range c.sacked {
		if r.Start < prevEnd || r.End <= r.Start || r.End > c.sndNxt {
			fail("tcp flow %d: sacked[%d] [%d,%d) not disjoint-ascending within [sndUna %d, sndNxt %d]",
				c.flow, i, r.Start, r.End, c.sndUna, c.sndNxt)
		}
		prevEnd = r.End
	}
}

// ---------------------------------------------------------------------------
// Transmit path.

// SndBufFree returns how many bytes the application may append.
func (c *Conn) SndBufFree() units.Bytes {
	used := units.Bytes(c.appLimit - c.sndUna)
	if used >= c.cfg.SndBuf {
		return 0
	}
	return c.cfg.SndBuf - used
}

// SendData appends n stream bytes backed by pages (already copied into
// kernel memory by the caller) and pushes what the windows allow. n must
// not exceed SndBufFree.
func (c *Conn) SendData(ctx *exec.Ctx, n units.Bytes, pages []mem.Page) {
	if n <= 0 {
		panic("tcp: SendData of non-positive length")
	}
	if n > c.SndBufFree() {
		panic("tcp: SendData beyond free send buffer")
	}
	c.appLimit += int64(n)
	c.chunks = append(c.chunks, sentChunk{endSeq: c.appLimit, pages: pages, at: ctx.Now()})
	c.pump(ctx)
}

// WriteTimeOf returns the application-write timestamp of the chunk
// containing seq, or zero when the chunk has already been released (acked)
// or never existed. Used by the profiler's lifecycle tracker to stamp
// outgoing frames; chunks live until cumulatively acked, so any sequence
// being (re)transmitted still has its chunk.
func (c *Conn) WriteTimeOf(seq int64) sim.Time {
	for i := c.chHead; i < len(c.chunks); i++ {
		if c.chunks[i].endSeq > seq {
			return c.chunks[i].at
		}
	}
	return 0
}

// InFlight returns unacked-and-unsacked bytes in the pipe.
func (c *Conn) InFlight() units.Bytes {
	var sackedBytes int64
	for _, r := range c.sacked {
		sackedBytes += r.Len()
	}
	return units.Bytes(c.sndNxt - c.sndUna - sackedBytes)
}

// pump transmits new data while the congestion and flow-control windows
// allow. Under pacing, segments are released by the pacer timer instead.
func (c *Conn) pump(ctx *exec.Ctx) {
	if c.pacer.active(c) {
		c.pacer.pump(ctx, c)
		return
	}
	for c.canSendNext() {
		c.sendNext(ctx)
	}
	c.maybePersist()
}

func (c *Conn) canSendNext() bool {
	if c.sndNxt >= c.appLimit {
		return false
	}
	if c.sndNxt >= c.rightEdge {
		return false // peer window exhausted
	}
	if c.inQdisc >= c.cfg.TSQBytes {
		return false // TCP small queues: qdisc already holds enough
	}
	return c.InFlight() < c.cc.Cwnd()
}

// TxCompleted reports that bytes of this connection left the host on the
// wire; TSQ budget reopens and sending resumes. Called from softirq
// context (Tx completion processing).
func (c *Conn) TxCompleted(ctx *exec.Ctx, bytes units.Bytes) {
	c.inQdisc -= bytes
	if c.inQdisc < 0 {
		c.inQdisc = 0
	}
	c.pump(ctx)
}

// InQdisc returns the bytes queued toward the NIC (tests).
func (c *Conn) InQdisc() units.Bytes { return c.inQdisc }

// sendNext transmits one segment of new data and returns its length.
func (c *Conn) sendNext(ctx *exec.Ctx) units.Bytes {
	length := units.Bytes(c.appLimit - c.sndNxt)
	if length > c.cfg.SegmentBytes {
		length = c.cfg.SegmentBytes
	}
	if avail := units.Bytes(c.rightEdge - c.sndNxt); length > avail {
		length = avail
	}
	seq := c.sndNxt
	c.sndNxt += int64(length)
	c.stats.SentBytes += length
	c.inQdisc += length
	if c.rttSeq <= c.sndUna { // arm a fresh RTT sample
		c.rttSeq = c.sndNxt
		c.rttSentAt = ctx.Now()
	}
	c.hooks.SendSegment(ctx, c, seq, length, false)
	c.armRTO()
	return length
}

// OnSegment processes an arriving skb for this endpoint: pure ACKs feed
// the transmit state, data feeds the receive state. Zero-length non-ACK
// skbs are window probes.
func (c *Conn) OnSegment(ctx *exec.Ctx, s *skb.SKB) {
	switch {
	case s.Ack != nil:
		c.onAck(ctx, s.Ack)
		c.recycle(s)
	case s.Len == 0:
		c.stats.Probes++
		ctx.Charge(cpumodel.TCPIP, c.costs.TCPRxPerSKB/2)
		c.sendAck(ctx, false)
		c.recycle(s)
	default:
		c.onData(ctx, s)
	}
}

// recycle hands a fully consumed skb back to the host's pool, if any.
func (c *Conn) recycle(s *skb.SKB) {
	if c.hooks.Recycle != nil {
		c.hooks.Recycle(s)
	}
}

func (c *Conn) onAck(ctx *exec.Ctx, a *skb.AckInfo) {
	costs := c.costs
	ctx.Charge(cpumodel.TCPIP, costs.ACKProcess)
	ctx.Charge(cpumodel.TCPIP, costs.CCUpdate)
	c.stats.AcksReceived++

	if edge := a.Cum + int64(a.Window); edge > c.rightEdge {
		c.rightEdge = edge
	}
	windowChanged := a.Window != c.peerWnd
	c.peerWnd = a.Window
	newlyAcked := a.Cum - c.sndUna
	if newlyAcked < 0 {
		newlyAcked = 0
	}

	if a.Cum > c.sndUna {
		c.sndUna = a.Cum
		c.dupAcks = 0
		c.recoveryStall = 0
		c.releaseAcked(ctx)
		// RTT sample (Karn's rule is approximated by sampling only the
		// armed sequence, which is never re-armed across retransmission).
		if c.rttSeq > 0 && a.Cum >= c.rttSeq {
			c.rttSample(time.Duration(ctx.Now() - c.rttSentAt))
			c.rttSeq = 0
		}
		c.trimSacked()
		if c.inRecovery && c.sndUna >= c.recoveryEnd {
			c.inRecovery = false
			c.cc.OnRecoveryExit()
			c.emitProbe(ctx.Now(), ProbeRecoveryExit, 0)
		}
		c.armRTO()
	} else if c.sndNxt > c.sndUna && (len(a.SACK) > 0 || !windowChanged) {
		// Classic duplicate-ACK test: no cum advance, outstanding data,
		// and either SACK evidence or an unchanged window (pure window
		// updates are not congestion signals).
		c.dupAcks++
		c.stats.DupAcksRecv++
		ctx.Charge(cpumodel.TCPIP, costs.DupACKExtra)
	}
	c.mergeSACK(a.SACK)

	c.cc.OnAck(ctx, units.Bytes(newlyAcked), c.srtt, a.ECNEcho)

	if !c.inRecovery && (c.dupAcks >= 3 || c.sackedBeyond(3*int64(c.cfg.MSS))) {
		c.enterRecovery(ctx)
	}
	if c.inRecovery {
		// RACK-style re-probe: if acks keep arriving without cumulative
		// progress, the earlier retransmission itself was probably lost —
		// rewind and resend the first hole instead of stalling to RTO.
		if newlyAcked == 0 {
			c.recoveryStall++
			if c.recoveryStall >= 8 {
				c.recoveryStall = 0
				c.retxNext = c.sndUna
			}
		}
		c.retransmitHoles(ctx)
	}
	c.pump(ctx)
	if c.hooks.OnWritable != nil && newlyAcked > 0 {
		c.hooks.OnWritable(ctx, c)
	}
	c.emitProbe(ctx.Now(), ProbeAck, units.Bytes(newlyAcked))
}

// releaseAcked frees page chunks fully below sndUna. The released chunks'
// page slabs are kept for PageSlab, so the Write -> ack -> Write cycle
// recycles its slices instead of allocating fresh ones.
func (c *Conn) releaseAcked(ctx *exec.Ctx) {
	freed := c.freed[:0]
	for c.chHead < len(c.chunks) && c.chunks[c.chHead].endSeq <= c.sndUna {
		ch := &c.chunks[c.chHead]
		freed = append(freed, ch.pages...)
		if cap(ch.pages) > 0 {
			c.slabFree = append(c.slabFree, ch.pages[:0])
		}
		*ch = sentChunk{}
		c.chHead++
	}
	if c.chHead == len(c.chunks) {
		// Drained: rewind so the backing array is reused from the front.
		c.chunks = c.chunks[:0]
		c.chHead = 0
	}
	if len(freed) > 0 && c.hooks.OnAckedPages != nil {
		c.hooks.OnAckedPages(ctx, c, freed)
	}
	c.freed = freed[:0]
}

// PageSlab returns a recycled zero-length page slice from previously acked
// chunks (nil when none is available). Callers append the pages backing
// their next SendData into it; the slab returns here once those bytes are
// acknowledged.
func (c *Conn) PageSlab() []mem.Page {
	if k := len(c.slabFree); k > 0 {
		s := c.slabFree[k-1]
		c.slabFree[k-1] = nil
		c.slabFree = c.slabFree[:k-1]
		return s
	}
	return nil
}

func (c *Conn) rttSample(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
		return
	}
	d := c.srtt - rtt
	if d < 0 {
		d = -d
	}
	c.rttvar = (3*c.rttvar + d) / 4
	c.srtt = (7*c.srtt + rtt) / 8
}

// RTO returns the current retransmission timeout.
func (c *Conn) RTO() time.Duration {
	rto := c.srtt + 4*c.rttvar
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	return rto
}

func (c *Conn) armRTO() {
	if c.sndNxt == c.sndUna {
		c.rtoTimer.Stop()
		return // nothing outstanding
	}
	// Fast path: reschedule the pending timer in place (heap.Fix, no
	// allocation). Every delivered ACK re-arms the RTO, so this is one of
	// the hottest timer operations in the whole stack.
	if c.rtoTimer.Reset(c.eng.Now().Add(c.RTO())) {
		return
	}
	c.rtoTimer = c.eng.After(c.RTO(), c.rtoFn)
}

func (c *Conn) onRTO(ctx *exec.Ctx) {
	if c.sndNxt == c.sndUna {
		return // acked in the meantime
	}
	c.stats.Timeouts++
	ctx.Charge(cpumodel.Etc, c.costs.TimerFire)
	c.cc.OnRTO()
	c.sacked = nil
	c.inRecovery = false
	c.dupAcks = 0
	c.emitProbe(ctx.Now(), ProbeRTO, 0)
	c.retransmitRange(ctx, c.sndUna, c.cfg.MSS)
	c.armRTO()
}

// mergeSACK folds the peer's SACK report into the scoreboard.
func (c *Conn) mergeSACK(ranges []skb.Range) {
	for _, r := range ranges {
		if r.End <= c.sndUna || r.Len() <= 0 {
			continue
		}
		if r.Start < c.sndUna {
			r.Start = c.sndUna
		}
		c.sacked = append(c.sacked, r)
	}
	if len(c.sacked) == 0 {
		return
	}
	sort.Slice(c.sacked, func(i, j int) bool { return c.sacked[i].Start < c.sacked[j].Start })
	merged := c.sacked[:1]
	for _, r := range c.sacked[1:] {
		last := &merged[len(merged)-1]
		if r.Start <= last.End {
			if r.End > last.End {
				last.End = r.End
			}
		} else {
			merged = append(merged, r)
		}
	}
	c.sacked = merged
}

func (c *Conn) trimSacked() {
	out := c.sacked[:0]
	for _, r := range c.sacked {
		if r.End > c.sndUna {
			if r.Start < c.sndUna {
				r.Start = c.sndUna
			}
			out = append(out, r)
		}
	}
	c.sacked = out
}

// sackedBeyond reports whether at least n bytes are sacked above sndUna —
// the SACK analogue of three duplicate ACKs.
func (c *Conn) sackedBeyond(n int64) bool {
	var total int64
	for _, r := range c.sacked {
		total += r.Len()
	}
	return total >= n
}

func (c *Conn) enterRecovery(ctx *exec.Ctx) {
	c.inRecovery = true
	c.recoveryEnd = c.sndNxt
	c.retxNext = c.sndUna
	c.stats.FastRetransmit++
	c.cc.OnLoss()
	c.emitProbe(ctx.Now(), ProbeFastRetransmit, 0)
	c.retransmitHoles(ctx)
}

// retransmitHoles resends un-sacked gaps while the window allows.
func (c *Conn) retransmitHoles(ctx *exec.Ctx) {
	for c.InFlight() < c.cc.Cwnd() {
		start, length := c.nextHole()
		if length <= 0 {
			return
		}
		c.retransmitRange(ctx, start, length)
	}
}

// nextHole finds the next missing range at or above retxNext and below
// the highest sacked byte (only ranges the SACK evidence says are lost).
func (c *Conn) nextHole() (int64, units.Bytes) {
	if len(c.sacked) == 0 {
		if c.dupAcks >= 3 && c.retxNext <= c.sndUna {
			// No SACK info (pure dupacks): resend the first segment.
			return c.sndUna, c.cfg.MSS
		}
		return 0, 0
	}
	pos := c.retxNext
	if pos < c.sndUna {
		pos = c.sndUna
	}
	for _, r := range c.sacked {
		if pos < r.Start {
			length := units.Bytes(r.Start - pos)
			if length > c.cfg.MSS {
				length = c.cfg.MSS
			}
			return pos, length
		}
		if pos < r.End {
			pos = r.End
		}
	}
	return 0, 0 // no hole below the highest sacked byte
}

func (c *Conn) retransmitRange(ctx *exec.Ctx, seq int64, length units.Bytes) {
	if end := c.sndNxt; seq+int64(length) > end {
		length = units.Bytes(end - seq)
	}
	if length <= 0 {
		return
	}
	c.stats.Retransmits++
	c.stats.RetransBytes += length
	c.inQdisc += length
	c.retxNext = seq + int64(length)
	ctx.Charge(cpumodel.TCPIP, c.costs.Retransmit)
	c.emitProbe(ctx.Now(), ProbeRetransmit, 0)
	c.hooks.SendSegment(ctx, c, seq, length, true)
}

// maybePersist arms the zero-window probe timer when data waits on a
// closed peer window.
func (c *Conn) maybePersist() {
	stalled := c.sndNxt < c.appLimit && c.sndNxt >= c.rightEdge
	if !stalled {
		c.persistTimer.Stop()
		return
	}
	if c.persistTimer.Pending() {
		return
	}
	c.persistTimer = c.eng.After(c.cfg.PersistTime, c.persistFn)
}

// persistBody is the zero-window probe timer handler (softirq context).
func (c *Conn) persistBody(ctx *exec.Ctx) {
	if c.sndNxt < c.appLimit && c.sndNxt >= c.rightEdge {
		c.stats.Probes++
		ctx.Charge(cpumodel.Etc, c.costs.TimerFire)
		c.hooks.SendProbe(ctx, c)
		c.maybePersist()
	}
}

// ---------------------------------------------------------------------------
// Receive path.

func (c *Conn) onData(ctx *exec.Ctx, s *skb.SKB) {
	ctx.Charge(cpumodel.TCPIP, c.costs.TCPRxPerSKB)
	if s.CE {
		c.ecnPending = true
	}
	switch {
	case s.Seq == c.rcvNxt:
		c.acceptInOrder(ctx, s)
	case s.Seq > c.rcvNxt:
		// Out of order: queue, signal the gap immediately, and enter
		// quickack mode (Linux acks every segment for a while after
		// reordering, inflating ACK-processing costs under loss — §3.6).
		c.stats.OOOSegments++
		ctx.Charge(cpumodel.TCPIP, c.costs.TCPRxOOO)
		c.insertOOO(s)
		c.quickAcks = 16
		c.sendAck(ctx, true)
	default:
		// Duplicate (retransmission overlap): ack what we have.
		if s.End() > c.rcvNxt {
			// Partially new: trim the stale prefix and accept.
			trim := c.rcvNxt - s.Seq
			s.Seq = c.rcvNxt
			s.Len -= units.Bytes(trim)
			c.acceptInOrder(ctx, s)
			return
		}
		c.sendAck(ctx, false)
		c.recycle(s)
	}
}

func (c *Conn) acceptInOrder(ctx *exec.Ctx, s *skb.SKB) {
	c.enqueueRecv(s)
	// Drain any out-of-order skbs this unblocks.
	for len(c.ooo) > 0 && c.ooo[0].Seq <= c.rcvNxt {
		q := c.ooo[0]
		c.ooo = c.ooo[1:]
		c.oooBytes -= q.Len
		if q.End() <= c.rcvNxt {
			c.recycle(q)
			continue // fully duplicate
		}
		if q.Seq < c.rcvNxt {
			trim := c.rcvNxt - q.Seq
			q.Seq = c.rcvNxt
			q.Len -= units.Bytes(trim)
		}
		c.enqueueRecv(q)
	}
	c.autotune()
	c.unacked += s.Len
	if c.quickAcks > 0 {
		c.quickAcks--
		c.sendAck(ctx, false)
	} else if c.unacked >= c.cfg.DelAckBytes || len(c.ooo) > 0 {
		c.sendAck(ctx, false)
	} else if !c.delAckTimer.Pending() {
		// Trailing-edge delayed ACK so the final sub-threshold bytes of a
		// burst are still acknowledged.
		c.delAckTimer = c.eng.After(c.cfg.DelAckTime, c.delAckFn)
	}
	if c.hooks.OnReadable != nil {
		c.hooks.OnReadable(ctx, c)
	}
}

// delAckBody is the delayed-ACK timer handler (softirq context).
func (c *Conn) delAckBody(ctx *exec.Ctx) {
	if c.unacked > 0 {
		ctx.Charge(cpumodel.Etc, c.costs.TimerFire)
		c.sendAck(ctx, false)
	}
}

func (c *Conn) enqueueRecv(s *skb.SKB) {
	c.rcvNxt = s.End()
	c.recvQ = append(c.recvQ, s)
	c.recvQBytes += s.Len
	c.stats.DeliveredBytes += s.Len
	c.tuneAcc += s.Len
}

func (c *Conn) insertOOO(s *skb.SKB) {
	i := sort.Search(len(c.ooo), func(i int) bool { return c.ooo[i].Seq >= s.Seq })
	if i < len(c.ooo) && c.ooo[i].Seq == s.Seq {
		c.recycle(s)
		return // exact duplicate
	}
	c.ooo = append(c.ooo, nil)
	copy(c.ooo[i+1:], c.ooo[i:])
	c.ooo[i] = s
	c.oooBytes += s.Len
}

// advertisedWindow returns the receive window to advertise. Like Linux
// (tcp_adv_win_scale=1), only half the buffer is offered as window — the
// rest budgets skb overhead — so a 6MB autotuned buffer advertises 3MB.
func (c *Conn) advertisedWindow() units.Bytes {
	capacity := c.rcvBuf / 2
	if c.wndClamp >= 0 && c.wndClamp < capacity {
		capacity = c.wndClamp
	}
	used := c.recvQBytes + c.oooBytes
	if used >= capacity {
		return 0
	}
	return capacity - used
}

// SetWindowClamp clamps the advertised receive window (receiver-driven
// scheduling, §4 of the paper); clamp < 0 removes the clamp. When the
// window opens as a result, an immediate window-update ACK tells the
// sender.
func (c *Conn) SetWindowClamp(ctx *exec.Ctx, clamp units.Bytes) {
	before := c.advertisedWindow()
	c.wndClamp = clamp
	if after := c.advertisedWindow(); after > before {
		c.sendAck(ctx, false)
	}
}

// sendAck emits an acknowledgment; dup marks an out-of-order trigger.
func (c *Conn) sendAck(ctx *exec.Ctx, dup bool) {
	c.delAckTimer.Stop()
	ctx.Charge(cpumodel.TCPIP, c.costs.ACKGenerate)
	var info *skb.AckInfo
	if c.hooks.NewAck != nil {
		info = c.hooks.NewAck()
	} else {
		info = &skb.AckInfo{}
	}
	info.Cum = c.rcvNxt
	info.Window = c.advertisedWindow()
	info.ECNEcho = c.ecnPending
	c.ecnPending = false
	// Up to 3 SACK ranges from the OOO queue (coalesced), reusing the
	// record's SACK capacity.
	ranges := info.SACK[:0]
	for _, q := range c.ooo {
		if n := len(ranges); n > 0 && ranges[n-1].End == q.Seq {
			ranges[n-1].End = q.End()
			continue
		}
		if len(ranges) == 3 {
			break
		}
		ranges = append(ranges, skb.Range{Start: q.Seq, End: q.End()})
	}
	info.SACK = ranges
	c.unacked = 0
	c.lastAdvWnd = info.Window
	c.stats.AcksSent++
	if dup {
		c.stats.DupAcksSent++
	}
	c.hooks.SendAck(ctx, c, info)
}

// autotune models Linux's dynamic right-sizing (DRS): each time a full
// receive-buffer's worth of data arrives (one "rcv_rtt" in DRS terms),
// the buffer doubles toward tcp_rmem[2]. When the receiver CPU is the
// bottleneck this measured rcv_rtt inflates with host queueing, so the
// buffer keeps growing regardless — the overshoot past the cache-optimal
// point that §3.1 of the paper calls out.
func (c *Conn) autotune() {
	if c.cfg.RcvBufMax == 0 || c.rcvBuf >= c.cfg.RcvBufMax {
		return
	}
	if c.tuneAcc < c.rcvBuf {
		return
	}
	c.tuneAcc = 0
	c.rcvBuf *= 2
	if c.rcvBuf > c.cfg.RcvBufMax {
		c.rcvBuf = c.cfg.RcvBufMax
	}
}

// Readable returns the bytes queued for the application.
func (c *Conn) Readable() units.Bytes { return c.recvQBytes }

// Read pops up to max bytes of whole skbs from the receive queue. The
// caller (application layer) performs the data copy and frees the pages.
// A window-update ACK is sent when the window reopens significantly.
// The returned slice is scratch owned by the connection: it is valid only
// until the next Read call.
func (c *Conn) Read(ctx *exec.Ctx, max units.Bytes) []*skb.SKB {
	out := c.readOut[:0]
	var taken units.Bytes
	for c.rqHead < len(c.recvQ) && taken < max {
		s := c.recvQ[c.rqHead]
		c.recvQ[c.rqHead] = nil
		c.rqHead++
		c.recvQBytes -= s.Len
		taken += s.Len
		out = append(out, s)
	}
	if c.rqHead == len(c.recvQ) {
		// Drained: rewind so the backing array is reused from the front.
		c.recvQ = c.recvQ[:0]
		c.rqHead = 0
	}
	c.readOut = out
	if len(out) == 0 {
		return nil
	}
	// Window update: if the advertised window was small and has now
	// meaningfully reopened, tell the sender.
	if c.lastAdvWnd < 2*c.cfg.MSS && c.advertisedWindow() >= 2*c.cfg.MSS {
		c.sendAck(ctx, false)
	}
	return out
}
