package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/skb"
	"hostsim/internal/units"
)

// bareConn builds a connection with no-op hooks for scoreboard unit tests.
func bareConn(t *testing.T) (*pipe, *Conn) {
	t.Helper()
	p := newPipe(t, 77, "cubic", 8934, nil, 0)
	return p, p.a
}

func TestMergeSACKCoalesces(t *testing.T) {
	_, c := bareConn(t)
	c.sndUna = 1000
	c.mergeSACK([]skb.Range{{Start: 5000, End: 6000}})
	c.mergeSACK([]skb.Range{{Start: 6000, End: 7000}}) // adjacent: merge
	c.mergeSACK([]skb.Range{{Start: 9000, End: 9500}})
	c.mergeSACK([]skb.Range{{Start: 5500, End: 6500}}) // overlapping: absorb
	if len(c.sacked) != 2 {
		t.Fatalf("sacked = %v, want 2 coalesced ranges", c.sacked)
	}
	if c.sacked[0] != (skb.Range{Start: 5000, End: 7000}) {
		t.Errorf("first range = %v", c.sacked[0])
	}
	if c.sacked[1] != (skb.Range{Start: 9000, End: 9500}) {
		t.Errorf("second range = %v", c.sacked[1])
	}
}

func TestMergeSACKClampsBelowUna(t *testing.T) {
	_, c := bareConn(t)
	c.sndUna = 5000
	c.mergeSACK([]skb.Range{{Start: 1000, End: 2000}}) // stale: fully below
	if len(c.sacked) != 0 {
		t.Errorf("stale range accepted: %v", c.sacked)
	}
	c.mergeSACK([]skb.Range{{Start: 4000, End: 7000}}) // partial: clamp
	if len(c.sacked) != 1 || c.sacked[0].Start != 5000 {
		t.Errorf("clamp failed: %v", c.sacked)
	}
}

// Property: any sequence of SACK reports leaves the scoreboard sorted,
// non-overlapping, and entirely above sndUna.
func TestPropertySACKScoreboardInvariants(t *testing.T) {
	f := func(starts []uint16, lens []uint8, una uint16) bool {
		p := newPipe(t, 78, "cubic", 8934, nil, 0)
		c := p.a
		c.sndUna = int64(una)
		n := len(starts)
		if len(lens) < n {
			n = len(lens)
		}
		for i := 0; i < n; i++ {
			s := int64(starts[i])
			c.mergeSACK([]skb.Range{{Start: s, End: s + int64(lens[i])}})
		}
		for i, r := range c.sacked {
			if r.Start >= r.End {
				return false
			}
			if r.Start < c.sndUna {
				return false
			}
			if i > 0 && c.sacked[i-1].End >= r.Start {
				return false // must be sorted and disjoint with gaps
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNextHoleWalksGaps(t *testing.T) {
	_, c := bareConn(t)
	c.sndUna = 0
	c.sndNxt = 100000
	c.cfg.MSS = 10000
	c.mergeSACK([]skb.Range{{Start: 20000, End: 30000}, {Start: 50000, End: 60000}})
	c.retxNext = 0
	start, l := c.nextHole()
	if start != 0 || l != 10000 {
		t.Fatalf("first hole = (%d,%d), want (0,10000)", start, l)
	}
	c.retxNext = 20000 // first hole retransmitted
	start, l = c.nextHole()
	if start != 30000 || l != 10000 {
		t.Fatalf("second hole = (%d,%d), want (30000,10000)", start, l)
	}
	c.retxNext = 60000 // past the last sacked byte: no evidence of loss
	if _, l = c.nextHole(); l != 0 {
		t.Fatalf("no hole expected above the highest SACK, got %d", l)
	}
}

func TestNextHoleWithoutSACKNeedsDupacks(t *testing.T) {
	_, c := bareConn(t)
	c.sndUna = 1000
	c.sndNxt = 50000
	if _, l := c.nextHole(); l != 0 {
		t.Error("no dupacks, no SACK: nothing to retransmit")
	}
	c.dupAcks = 3
	c.retxNext = 0
	start, l := c.nextHole()
	if start != 1000 || l != c.cfg.MSS {
		t.Errorf("dupack retransmit = (%d,%d)", start, l)
	}
}

func TestTrimSackedAfterCumAdvance(t *testing.T) {
	_, c := bareConn(t)
	c.sndUna = 0
	c.mergeSACK([]skb.Range{{Start: 1000, End: 2000}, {Start: 5000, End: 6000}})
	c.sndUna = 5500
	c.trimSacked()
	if len(c.sacked) != 1 || c.sacked[0] != (skb.Range{Start: 5500, End: 6000}) {
		t.Errorf("trim result = %v", c.sacked)
	}
}

func TestRTOBacksOffAndRecovers(t *testing.T) {
	// Deliver nothing (100% loss): RTO must fire and retransmit.
	p := newPipe(t, 79, "cubic", 8934, nil, 1.0)
	p.send(64 * units.KB)
	p.run(100 * time.Millisecond)
	if p.a.Stats().Timeouts == 0 {
		t.Error("total loss should trigger RTO timeouts")
	}
	if p.a.Stats().Retransmits == 0 {
		t.Error("RTO should retransmit")
	}
}

func TestPersistProbeFiresOnZeroWindow(t *testing.T) {
	p := newPipe(t, 80, "cubic", 8934, func(c *Config) {
		c.RcvBuf = 64 * units.KB
		c.RcvBufMax = 0
		c.PersistTime = 2 * time.Millisecond
	}, 0)
	p.autoRead = false // receiver never drains: window slams shut
	p.send(2 * units.MB)
	p.run(50 * time.Millisecond)
	if p.a.Stats().Probes == 0 {
		t.Error("sender should send zero-window probes while stalled")
	}
}

func TestDelAckTimerFlushesTrailingBytes(t *testing.T) {
	p := newPipe(t, 81, "cubic", 8934, nil, 0)
	// One small write, below the 2-MSS delack threshold.
	p.sys.Core(1).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.Etc, 10)
		p.a.SendData(ctx, 4*units.KB, nil)
	})
	p.run(20 * time.Millisecond)
	if p.b.Stats().AcksSent == 0 {
		t.Fatal("delayed-ack timer never fired for trailing bytes")
	}
	if p.a.SndBufFree() != p.a.cfg.SndBuf {
		t.Error("trailing bytes never acked; send buffer still charged")
	}
}

func TestQuickackModeAfterOOO(t *testing.T) {
	p := newPipe(t, 82, "cubic", 8934, nil, 0)
	acks0 := p.b.Stats().AcksSent
	// Inject out-of-order then a train of in-order segments directly.
	p.sys.Core(0).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.Etc, 10)
		p.b.OnSegment(ctx, &skb.SKB{Flow: 1, Seq: 8934, Len: 1000}) // gap
		p.b.OnSegment(ctx, &skb.SKB{Flow: 1, Seq: 0, Len: 8934})    // fill
		for i := 0; i < 4; i++ {                                    // in-order train
			p.b.OnSegment(ctx, &skb.SKB{Flow: 1, Seq: 9934 + int64(i)*100, Len: 100})
		}
	})
	p.run(time.Millisecond)
	// Quickack: the dup ack + the fill ack + one per train segment.
	if got := p.b.Stats().AcksSent - acks0; got < 5 {
		t.Errorf("quickack mode should ack every segment after OOO, got %d acks", got)
	}
}

func TestInFlightAccountsSacked(t *testing.T) {
	_, c := bareConn(t)
	c.sndUna = 0
	c.sndNxt = 100000
	if c.InFlight() != 100000 {
		t.Fatalf("InFlight = %v", c.InFlight())
	}
	c.mergeSACK([]skb.Range{{Start: 20000, End: 40000}})
	if c.InFlight() != 80000 {
		t.Errorf("InFlight = %v, want 80000 (sacked bytes excluded)", c.InFlight())
	}
}

func TestPartialOverlapRetransmissionTrimmed(t *testing.T) {
	p := newPipe(t, 83, "cubic", 8934, nil, 0)
	p.sys.Core(0).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.Etc, 10)
		p.b.OnSegment(ctx, &skb.SKB{Flow: 1, Seq: 0, Len: 8934})
		// Retransmission overlapping already-received data.
		p.b.OnSegment(ctx, &skb.SKB{Flow: 1, Seq: 4000, Len: 8934})
	})
	p.run(time.Millisecond)
	if got := p.b.Stats().DeliveredBytes; got != 12934 {
		t.Errorf("DeliveredBytes = %v, want 12934 (overlap trimmed)", got)
	}
	if p.b.rcvNxt != 12934 {
		t.Errorf("rcvNxt = %v", p.b.rcvNxt)
	}
}

func TestFullyDuplicateSegmentReacked(t *testing.T) {
	p := newPipe(t, 84, "cubic", 8934, nil, 0)
	p.sys.Core(0).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.Etc, 10)
		p.b.OnSegment(ctx, &skb.SKB{Flow: 1, Seq: 0, Len: 8934})
		p.b.OnSegment(ctx, &skb.SKB{Flow: 1, Seq: 0, Len: 8934}) // dup
	})
	p.run(time.Millisecond)
	if got := p.b.Stats().DeliveredBytes; got != 8934 {
		t.Errorf("DeliveredBytes = %v, duplicate delivered twice", got)
	}
	if p.b.Stats().AcksSent < 1 {
		t.Error("duplicate should still be acked")
	}
}

func TestOOOInsertKeepsOrder(t *testing.T) {
	p := newPipe(t, 85, "cubic", 8934, nil, 0)
	c := p.b
	p.sys.Core(0).RaiseSoftirq(func(ctx *exec.Ctx) {
		ctx.Charge(cpumodel.Etc, 10)
		for _, seq := range []int64{30000, 10000, 20000, 10000} { // incl. dup
			c.OnSegment(ctx, &skb.SKB{Flow: 1, Seq: seq, Len: 1000})
		}
	})
	p.run(time.Millisecond)
	if len(c.ooo) != 3 {
		t.Fatalf("ooo length = %d, want 3 (dup dropped)", len(c.ooo))
	}
	for i := 1; i < len(c.ooo); i++ {
		if c.ooo[i-1].Seq >= c.ooo[i].Seq {
			t.Fatalf("ooo not sorted: %v %v", c.ooo[i-1].Seq, c.ooo[i].Seq)
		}
	}
	if c.oooBytes != 3000 {
		t.Errorf("oooBytes = %v", c.oooBytes)
	}
}
