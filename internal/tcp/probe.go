package tcp

import (
	"time"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/units"
)

// ProbeKind labels a tcp_probe-style congestion event.
type ProbeKind uint8

// The probe event kinds, mirroring what the kernel's tcp_probe tracepoint
// plus the retransmission tracepoints expose.
const (
	ProbeAck            ProbeKind = iota // an incoming ACK was processed
	ProbeFastRetransmit                  // recovery entered on dupack/SACK evidence
	ProbeRetransmit                      // one range was retransmitted
	ProbeRTO                             // the retransmission timeout fired
	ProbeRecoveryExit                    // recovery completed (sndUna passed recoveryEnd)
)

// String returns the event's wire label.
func (k ProbeKind) String() string {
	switch k {
	case ProbeAck:
		return "ack"
	case ProbeFastRetransmit:
		return "fast-retransmit"
	case ProbeRetransmit:
		return "retransmit"
	case ProbeRTO:
		return "rto"
	case ProbeRecoveryExit:
		return "recovery-exit"
	default:
		return "unknown"
	}
}

// ProbeEvent is one tcp_probe record: the connection's congestion state
// at the instant the event fired. Values are copied out, so consumers may
// retain events freely.
type ProbeEvent struct {
	At         sim.Time
	Flow       skb.FlowID // the connection's transmit-direction flow
	Kind       ProbeKind
	AckedBytes units.Bytes // newly acked bytes (ack events; 0 otherwise)
	Cwnd       units.Bytes
	Ssthresh   units.Bytes // 0 when the algorithm has none (BBR)
	SRTT       time.Duration
	InFlight   units.Bytes
	SndUna     int64
	SndNxt     int64
}

// ProbeFunc consumes probe events. Implementations must be pure observers
// — no charges, no randomness, no mutation of connection state — so a
// probed run follows the exact trajectory of an unprobed one.
type ProbeFunc func(ev ProbeEvent)

// SetProbe installs a tcp_probe-style observer on the connection (nil
// detaches). With no probe attached the emit sites reduce to a pointer
// test, per the nil-is-free observability convention.
func (c *Conn) SetProbe(fn ProbeFunc) { c.probe = fn }

// AddProbe attaches fn alongside any observer already installed: every
// attached probe sees every event, in attachment order. Composing here
// keeps a single emit site in the connection while letting the
// inspector's congestion trace, the passive RTT monitor and the message
// tracer coexist. A nil fn is a no-op.
func (c *Conn) AddProbe(fn ProbeFunc) {
	if fn == nil {
		return
	}
	if c.probe == nil {
		c.probe = fn
		return
	}
	prev := c.probe
	c.probe = func(ev ProbeEvent) {
		prev(ev)
		fn(ev)
	}
}

// emitProbe snapshots the congestion state into the attached probe.
func (c *Conn) emitProbe(at sim.Time, kind ProbeKind, acked units.Bytes) {
	if c.probe == nil {
		return
	}
	c.probe(ProbeEvent{
		At: at, Flow: c.flow, Kind: kind, AckedBytes: acked,
		Cwnd: c.cc.Cwnd(), Ssthresh: c.cc.Ssthresh(), SRTT: c.srtt,
		InFlight: c.InFlight(), SndUna: c.sndUna, SndNxt: c.sndNxt,
	})
}
