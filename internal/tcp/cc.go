package tcp

import (
	"fmt"
	"math"
	"time"

	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/sim"
	"hostsim/internal/units"
)

// CongestionControl is the pluggable window/rate algorithm. The paper
// compares CUBIC (Linux default), DCTCP and BBR in §3.10.
type CongestionControl interface {
	Name() string
	// Init is called once with the owning connection.
	Init(c *Conn)
	// OnAck reacts to an acknowledgment of newly acked bytes.
	OnAck(ctx *exec.Ctx, acked units.Bytes, srtt time.Duration, ece bool)
	// OnLoss is a fast-retransmit (duplicate-ack/SACK) loss signal.
	OnLoss()
	// OnRTO is a retransmission timeout.
	OnRTO()
	// OnRecoveryExit fires when recovery completes.
	OnRecoveryExit()
	// Cwnd returns the congestion window in bytes.
	Cwnd() units.Bytes
	// Ssthresh returns the slow-start threshold in bytes, or 0 for
	// algorithms without one (BBR).
	Ssthresh() units.Bytes
	// PacingRate returns the pacing rate, or 0 for ack-clocked sending.
	PacingRate() units.BitRate
}

// NewCC builds a congestion controller by name: "cubic", "reno", "dctcp"
// or "bbr".
func NewCC(name string, mss units.Bytes) CongestionControl {
	switch name {
	case "cubic", "":
		return &Cubic{mss: mss}
	case "reno":
		return &Reno{mss: mss}
	case "dctcp":
		return &DCTCP{Reno: Reno{mss: mss}}
	case "bbr":
		return &BBR{mss: mss}
	default:
		panic(fmt.Sprintf("tcp: unknown congestion control %q", name))
	}
}

// ---------------------------------------------------------------------------
// Reno: the additive-increase/multiplicative-decrease baseline, and the
// base for DCTCP.

// Reno implements classic NewReno congestion control.
type Reno struct {
	mss      units.Bytes
	cwnd     units.Bytes
	ssthresh units.Bytes
}

// Name implements CongestionControl.
func (r *Reno) Name() string { return "reno" }

// Init implements CongestionControl.
func (r *Reno) Init(c *Conn) {
	r.cwnd = c.cfg.InitCwnd
	r.ssthresh = units.Bytes(math.MaxInt64 / 4)
}

// OnAck implements CongestionControl.
func (r *Reno) OnAck(ctx *exec.Ctx, acked units.Bytes, srtt time.Duration, ece bool) {
	if acked <= 0 {
		return
	}
	if r.cwnd < r.ssthresh {
		r.cwnd += acked // slow start
		return
	}
	// Congestion avoidance: one MSS per cwnd of acked data.
	inc := units.Bytes(int64(r.mss) * int64(acked) / int64(r.cwnd))
	if inc < 1 {
		inc = 1
	}
	r.cwnd += inc
}

// OnLoss implements CongestionControl.
func (r *Reno) OnLoss() {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < 2*r.mss {
		r.ssthresh = 2 * r.mss
	}
	r.cwnd = r.ssthresh
}

// OnRTO implements CongestionControl.
func (r *Reno) OnRTO() {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < 2*r.mss {
		r.ssthresh = 2 * r.mss
	}
	r.cwnd = 2 * r.mss
}

// OnRecoveryExit implements CongestionControl.
func (r *Reno) OnRecoveryExit() {}

// Cwnd implements CongestionControl.
func (r *Reno) Cwnd() units.Bytes { return r.cwnd }

// Ssthresh implements CongestionControl.
func (r *Reno) Ssthresh() units.Bytes { return r.ssthresh }

// PacingRate implements CongestionControl.
func (r *Reno) PacingRate() units.BitRate { return 0 }

// ---------------------------------------------------------------------------
// CUBIC (Linux default).

// Cubic implements the CUBIC window growth function with beta=0.7, C=0.4.
type Cubic struct {
	mss        units.Bytes
	cwnd       units.Bytes
	ssthresh   units.Bytes
	wMax       float64 // MSS units
	k          float64 // seconds
	epochStart sim.Time
	inEpoch    bool
}

const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// Name implements CongestionControl.
func (c *Cubic) Name() string { return "cubic" }

// Init implements CongestionControl.
func (c *Cubic) Init(conn *Conn) {
	c.cwnd = conn.cfg.InitCwnd
	c.ssthresh = units.Bytes(math.MaxInt64 / 4)
}

// OnAck implements CongestionControl.
func (c *Cubic) OnAck(ctx *exec.Ctx, acked units.Bytes, srtt time.Duration, ece bool) {
	if acked <= 0 {
		return
	}
	if c.cwnd < c.ssthresh {
		c.cwnd += acked
		return
	}
	now := ctx.Now()
	if !c.inEpoch {
		c.inEpoch = true
		c.epochStart = now
		if c.wMax == 0 {
			c.wMax = float64(c.cwnd / c.mss)
			c.k = 0
		}
	}
	t := time.Duration(now - c.epochStart).Seconds()
	wCubic := cubicC*math.Pow(t-c.k, 3) + c.wMax // in MSS
	cur := float64(c.cwnd / c.mss)
	if wCubic > cur {
		// Approach the cubic target proportionally to acked data.
		inc := (wCubic - cur) / cur * float64(acked)
		c.cwnd += units.Bytes(inc)
	} else {
		// TCP-friendly floor: at least Reno-like growth.
		c.cwnd += units.Bytes(int64(c.mss) * int64(acked) / int64(c.cwnd))
	}
}

// OnLoss implements CongestionControl.
func (c *Cubic) OnLoss() {
	c.wMax = float64(c.cwnd / c.mss)
	c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
	c.cwnd = units.Bytes(float64(c.cwnd) * cubicBeta)
	if c.cwnd < 2*c.mss {
		c.cwnd = 2 * c.mss
	}
	c.ssthresh = c.cwnd
	c.inEpoch = false
}

// OnRTO implements CongestionControl.
func (c *Cubic) OnRTO() {
	c.wMax = float64(c.cwnd / c.mss)
	c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
	c.ssthresh = units.Bytes(float64(c.cwnd) * cubicBeta)
	if c.ssthresh < 2*c.mss {
		c.ssthresh = 2 * c.mss
	}
	c.cwnd = 2 * c.mss
	c.inEpoch = false
}

// OnRecoveryExit implements CongestionControl.
func (c *Cubic) OnRecoveryExit() {}

// Cwnd implements CongestionControl.
func (c *Cubic) Cwnd() units.Bytes { return c.cwnd }

// Ssthresh implements CongestionControl.
func (c *Cubic) Ssthresh() units.Bytes { return c.ssthresh }

// PacingRate implements CongestionControl.
func (c *Cubic) PacingRate() units.BitRate { return 0 }

// ---------------------------------------------------------------------------
// DCTCP: Reno plus ECN-fraction-proportional decrease.

// DCTCP implements the DCTCP alpha estimator on top of Reno growth.
type DCTCP struct {
	Reno
	alpha       float64
	ackedEpoch  units.Bytes
	markedEpoch units.Bytes
}

const dctcpG = 1.0 / 16

// Name implements CongestionControl.
func (d *DCTCP) Name() string { return "dctcp" }

// OnAck implements CongestionControl.
func (d *DCTCP) OnAck(ctx *exec.Ctx, acked units.Bytes, srtt time.Duration, ece bool) {
	d.ackedEpoch += acked
	if ece {
		d.markedEpoch += acked
	}
	if d.ackedEpoch >= d.cwnd && d.cwnd > 0 {
		f := float64(d.markedEpoch) / float64(d.ackedEpoch)
		d.alpha = (1-dctcpG)*d.alpha + dctcpG*f
		if d.markedEpoch > 0 {
			d.cwnd = units.Bytes(float64(d.cwnd) * (1 - d.alpha/2))
			if d.cwnd < 2*d.mss {
				d.cwnd = 2 * d.mss
			}
		}
		d.ackedEpoch, d.markedEpoch = 0, 0
	}
	if d.markedEpoch == 0 {
		d.Reno.OnAck(ctx, acked, srtt, ece)
	}
}

// Alpha returns the current congestion estimate (tests).
func (d *DCTCP) Alpha() float64 { return d.alpha }

// ---------------------------------------------------------------------------
// BBR: a two-phase (startup, probe) model of BBR's rate-based control.
// The paper exercises BBR's pacing overhead (Fig. 13b), not its control
// fidelity, so this model keeps the essentials: a windowed max filter on
// delivery rate, a min-RTT estimate, gain cycling, and pacing.

// BBR implements simplified BBR congestion control with pacing.
type BBR struct {
	mss        units.Bytes
	cwnd       units.Bytes
	btlBw      units.BitRate
	minRTT     time.Duration
	startup    bool
	lastAckAt  sim.Time
	phase      int
	phaseStart sim.Time
	fullCnt    int
	prevBw     units.BitRate
}

var bbrGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// Name implements CongestionControl.
func (b *BBR) Name() string { return "bbr" }

// Init implements CongestionControl.
func (b *BBR) Init(c *Conn) {
	b.cwnd = c.cfg.InitCwnd
	b.btlBw = 1 * units.Gbps
	b.startup = true
}

// OnAck implements CongestionControl.
func (b *BBR) OnAck(ctx *exec.Ctx, acked units.Bytes, srtt time.Duration, ece bool) {
	now := ctx.Now()
	if srtt > 0 && (b.minRTT == 0 || srtt < b.minRTT) {
		b.minRTT = srtt
	}
	if acked > 0 && b.lastAckAt > 0 && now > b.lastAckAt {
		sample := units.RateOf(acked, time.Duration(now-b.lastAckAt))
		if sample > b.btlBw {
			b.btlBw = sample
		}
	}
	if acked > 0 {
		b.lastAckAt = now
	}
	rtt := b.minRTT
	if rtt == 0 {
		rtt = 50 * time.Microsecond
	}
	if b.startup {
		// Exit startup when the bottleneck estimate plateaus.
		if b.btlBw <= b.prevBw+b.prevBw/4 {
			b.fullCnt++
			if b.fullCnt >= 3 {
				b.startup = false
				b.phaseStart = now
			}
		} else {
			b.fullCnt = 0
			b.prevBw = b.btlBw
		}
	} else if time.Duration(now-b.phaseStart) > rtt {
		b.phase = (b.phase + 1) % len(bbrGains)
		b.phaseStart = now
	}
	// cwnd: 2x BDP cap.
	bdp := units.Bytes(float64(b.btlBw) / 8 * rtt.Seconds())
	b.cwnd = 2 * bdp
	if b.cwnd < 4*b.mss {
		b.cwnd = 4 * b.mss
	}
}

// OnLoss implements CongestionControl. BBR does not react to isolated
// losses; rate control bounds the pipe.
func (b *BBR) OnLoss() {}

// OnRTO implements CongestionControl.
func (b *BBR) OnRTO() {
	b.btlBw = b.btlBw / 2
	if b.btlBw < units.Gbps {
		b.btlBw = units.Gbps
	}
}

// OnRecoveryExit implements CongestionControl.
func (b *BBR) OnRecoveryExit() {}

// Cwnd implements CongestionControl.
func (b *BBR) Cwnd() units.Bytes { return b.cwnd }

// Ssthresh implements CongestionControl. BBR has no slow-start threshold.
func (b *BBR) Ssthresh() units.Bytes { return 0 }

// PacingRate implements CongestionControl.
func (b *BBR) PacingRate() units.BitRate {
	gain := 2.885
	if !b.startup {
		gain = bbrGains[b.phase]
	}
	return units.BitRate(float64(b.btlBw) * gain)
}

// ---------------------------------------------------------------------------
// Pacer: releases segments at the CC's pacing rate via a qdisc-style
// timer. Each release runs in softirq context and pays the timer, qdisc
// and wakeup costs — the source of BBR's sender-side scheduling overhead
// in Fig. 13b.

type pacerState struct {
	timer       sim.Timer
	nextRelease sim.Time
}

func (p *pacerState) active(c *Conn) bool { return c.cc.PacingRate() > 0 }

// pump schedules the next paced release if sending is possible.
func (p *pacerState) pump(ctx *exec.Ctx, c *Conn) {
	p.schedule(c)
	c.maybePersist()
}

func (p *pacerState) schedule(c *Conn) {
	if p.timer.Pending() {
		return
	}
	if !c.canSendNext() {
		return
	}
	at := p.nextRelease
	if now := c.eng.Now(); at < now {
		at = now
	}
	p.timer = c.eng.At(at, func() {
		c.hooks.Softirq(func(ctx *exec.Ctx) { p.release(ctx, c) })
	})
}

func (p *pacerState) release(ctx *exec.Ctx, c *Conn) {
	if !c.canSendNext() {
		c.maybePersist()
		return
	}
	costs := c.costs
	ctx.Charge(cpumodel.Etc, costs.TimerFire)
	ctx.Charge(cpumodel.Netdev, costs.PacerRelease)
	// TSQ-style task wake when the qdisc drains.
	ctx.Charge(cpumodel.Sched, costs.Wakeup)
	length := c.sendNext(ctx)
	rate := c.cc.PacingRate()
	if rate <= 0 {
		rate = units.Gbps
	}
	p.nextRelease = ctx.Now().Add(rate.Serialize(length))
	p.schedule(c)
}
