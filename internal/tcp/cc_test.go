package tcp

import (
	"testing"
	"time"

	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/sim"
	"hostsim/internal/topology"
	"hostsim/internal/units"
)

// ctxAt fabricates an exec context at a given simulated time for direct
// CC unit tests.
func ctxAt(t *testing.T, at time.Duration, fn func(*exec.Ctx)) {
	t.Helper()
	eng := sim.NewEngine(1)
	sys := exec.NewSystem(eng, topology.Default(), cpumodel.Default())
	eng.At(sim.Time(at), func() {
		sys.Core(0).RaiseSoftirq(func(x *exec.Ctx) {
			x.Charge(cpumodel.Etc, 1)
			fn(x)
		})
	})
	eng.Run(sim.Time(at) + 1000)
}

func TestCCFactoryNames(t *testing.T) {
	for name, want := range map[string]string{
		"":      "cubic",
		"cubic": "cubic",
		"reno":  "reno",
		"dctcp": "dctcp",
		"bbr":   "bbr",
	} {
		cc := NewCC(name, 1448)
		if cc.Name() != want {
			t.Errorf("NewCC(%q).Name() = %q, want %q", name, cc.Name(), want)
		}
	}
}

func TestRenoSlowStartDoubling(t *testing.T) {
	r := &Reno{mss: 1000}
	r.Init(&Conn{cfg: Config{InitCwnd: 10000}})
	// Acking a full window in slow start doubles cwnd.
	r.OnAck(nil, 10000, time.Millisecond, false)
	if r.Cwnd() != 20000 {
		t.Errorf("cwnd = %v, want doubled 20000", r.Cwnd())
	}
}

func TestRenoFloors(t *testing.T) {
	r := &Reno{mss: 1000}
	r.Init(&Conn{cfg: Config{InitCwnd: 3000}})
	r.OnLoss()
	r.OnLoss()
	r.OnLoss()
	if r.Cwnd() < 2000 {
		t.Errorf("cwnd = %v, must not fall below 2 MSS", r.Cwnd())
	}
	r.OnRTO()
	if r.Cwnd() != 2000 {
		t.Errorf("RTO cwnd = %v, want 2 MSS", r.Cwnd())
	}
	// Zero/negative acks are ignored.
	w := r.Cwnd()
	r.OnAck(nil, 0, time.Millisecond, false)
	if r.Cwnd() != w {
		t.Error("zero-byte ack changed cwnd")
	}
}

func TestCubicConvergesTowardWmax(t *testing.T) {
	c := &Cubic{mss: 1448}
	c.Init(&Conn{cfg: Config{InitCwnd: 100 * 1448}})
	c.ssthresh = 1 // force congestion avoidance
	// Take a loss to establish Wmax, then grow back.
	c.OnLoss()
	after := c.Cwnd()
	ctxAt(t, 50*time.Millisecond, func(x *exec.Ctx) {
		for i := 0; i < 50; i++ {
			c.OnAck(x, after, 100*time.Microsecond, false)
		}
	})
	if c.Cwnd() <= after {
		t.Errorf("cubic should regrow after loss: %v -> %v", after, c.Cwnd())
	}
	// K is positive after a loss (time to return to Wmax).
	if c.k <= 0 {
		t.Errorf("K = %v, want > 0", c.k)
	}
}

func TestCubicTCPFriendlyFloor(t *testing.T) {
	c := &Cubic{mss: 1000}
	c.Init(&Conn{cfg: Config{InitCwnd: 50000}})
	c.ssthresh = 1
	c.wMax = 1e9 // park the cubic target far above: the floor applies
	c.k = 1e9
	w0 := c.Cwnd()
	ctxAt(t, time.Millisecond, func(x *exec.Ctx) {
		c.OnAck(x, 50000, time.Millisecond, false)
	})
	if c.Cwnd() < w0+900 {
		t.Errorf("TCP-friendly floor should add ~1 MSS per window: %v -> %v", w0, c.Cwnd())
	}
}

func TestCubicRTOResetsEpoch(t *testing.T) {
	c := &Cubic{mss: 1448}
	c.Init(&Conn{cfg: Config{InitCwnd: 100 * 1448}})
	c.ssthresh = 1
	c.inEpoch = true
	c.OnRTO()
	if c.inEpoch {
		t.Error("RTO should reset the cubic epoch")
	}
	if c.Cwnd() != 2*1448 {
		t.Errorf("RTO cwnd = %v, want 2 MSS", c.Cwnd())
	}
}

func TestDCTCPFullMarkingHalvesWindow(t *testing.T) {
	d := &DCTCP{Reno: Reno{mss: 1000}}
	d.Init(&Conn{cfg: Config{InitCwnd: 20000}})
	d.ssthresh = 1
	w0 := d.Cwnd()
	// Several fully-marked epochs: alpha -> 1, window halves repeatedly.
	for i := 0; i < 80; i++ {
		d.OnAck(nil, d.Cwnd(), time.Millisecond, true)
	}
	if d.Alpha() < 0.5 {
		t.Errorf("alpha = %v after sustained marking, want high", d.Alpha())
	}
	if d.Cwnd() >= w0 {
		t.Errorf("cwnd should shrink under marking: %v -> %v", w0, d.Cwnd())
	}
	if d.Cwnd() < 2000 {
		t.Errorf("cwnd floor violated: %v", d.Cwnd())
	}
}

func TestDCTCPProportionality(t *testing.T) {
	// Half-marked epochs should cut less than fully-marked ones.
	run := func(markEvery int) units.Bytes {
		d := &DCTCP{Reno: Reno{mss: 1000}}
		d.Init(&Conn{cfg: Config{InitCwnd: 40000}})
		d.ssthresh = 1
		for i := 0; i < 200; i++ {
			d.OnAck(nil, 4000, time.Millisecond, i%markEvery == 0)
		}
		return d.Cwnd()
	}
	full := run(1)    // every ack marked
	partial := run(4) // quarter marked
	if full >= partial {
		t.Errorf("full marking (%v) should shrink cwnd more than partial (%v)", full, partial)
	}
}

func TestBBRStartupExitsOnPlateau(t *testing.T) {
	b := &BBR{mss: 1448}
	b.Init(&Conn{cfg: Config{InitCwnd: 14480}})
	if !b.startup {
		t.Fatal("BBR should begin in startup")
	}
	// Feed acks with a flat delivery rate: startup must end.
	ctxAt(t, time.Millisecond, func(x *exec.Ctx) {
		for i := 0; i < 10; i++ {
			b.OnAck(x, 64*units.KB, 50*time.Microsecond, false)
		}
	})
	if b.startup {
		t.Error("BBR should exit startup once the bottleneck estimate plateaus")
	}
	if b.PacingRate() <= 0 {
		t.Error("post-startup pacing rate must be positive")
	}
}

func TestBBRStartupGain(t *testing.T) {
	b := &BBR{mss: 1448}
	b.Init(&Conn{cfg: Config{InitCwnd: 14480}})
	// In startup the pacing gain is 2.885x the bottleneck estimate.
	want := units.BitRate(float64(b.btlBw) * 2.885)
	got := b.PacingRate()
	if got < want-want/100 || got > want+want/100 {
		t.Errorf("startup pacing = %v, want ~%v", got, want)
	}
}

func TestBBRCwndTracksBDP(t *testing.T) {
	b := &BBR{mss: 1448}
	b.Init(&Conn{cfg: Config{InitCwnd: 14480}})
	ctxAt(t, time.Millisecond, func(x *exec.Ctx) {
		b.OnAck(x, 0, 100*time.Microsecond, false) // establish minRTT
	})
	bdp := units.Bytes(float64(b.btlBw) / 8 * (100 * time.Microsecond).Seconds())
	if b.Cwnd() < bdp {
		t.Errorf("cwnd %v below BDP %v", b.Cwnd(), bdp)
	}
}

func TestBBRRTOHalvesEstimate(t *testing.T) {
	b := &BBR{mss: 1448}
	b.Init(&Conn{cfg: Config{InitCwnd: 14480}})
	b.btlBw = 50 * units.Gbps
	b.OnRTO()
	if b.btlBw != 25*units.Gbps {
		t.Errorf("btlBw after RTO = %v, want halved", b.btlBw)
	}
	// Floor at 1Gbps.
	for i := 0; i < 10; i++ {
		b.OnRTO()
	}
	if b.btlBw < units.Gbps {
		t.Errorf("btlBw fell below the floor: %v", b.btlBw)
	}
}

func TestBBRLossIsIgnored(t *testing.T) {
	b := &BBR{mss: 1448}
	b.Init(&Conn{cfg: Config{InitCwnd: 14480}})
	w := b.Cwnd()
	b.OnLoss()
	if b.Cwnd() != w {
		t.Error("BBR should not reduce cwnd on isolated loss")
	}
}

func TestPacerSpacing(t *testing.T) {
	// Paced releases of a BBR sender must be spaced ~length/rate apart.
	p := newPipe(t, 41, "bbr", 8934, nil, 0)
	var releases []sim.Time
	origHooks := p.a.hooks.SendSegment
	p.a.hooks.SendSegment = func(ctx *exec.Ctx, c *Conn, seq int64, l units.Bytes, retrans bool) {
		releases = append(releases, p.eng.Now())
		origHooks(ctx, c, seq, l, retrans)
	}
	p.send(2 * units.MB)
	p.run(10 * time.Millisecond)
	if len(releases) < 4 {
		t.Fatalf("only %d paced sends", len(releases))
	}
	// After startup the gaps must be non-zero (paced, not back-to-back
	// bursts) for most releases.
	var spaced int
	for i := 1; i < len(releases); i++ {
		if releases[i] > releases[i-1] {
			spaced++
		}
	}
	if spaced < len(releases)/2 {
		t.Errorf("only %d/%d releases were spaced in time", spaced, len(releases)-1)
	}
}
