package profile

import (
	"compress/gzip"
	"fmt"
	"io"
)

// WritePprof writes the cycle profile as a gzipped pprof profile.proto,
// the format `go tool pprof` and speedscope read. The protobuf is
// hand-encoded (the repo takes no external dependencies); samples carry
// two values per stack — simulated cycles and the equivalent wall time
// in nanoseconds at the profiler's frequency — with cycles as the
// default sample type. time_nanos is left zero and stacks are emitted in
// sorted order, so output is byte-deterministic for a given profile.
func (p *Profiler) WritePprof(w io.Writer) error {
	if p == nil {
		return fmt.Errorf("profile: WritePprof on nil profiler")
	}
	zw := gzip.NewWriter(w) // zero ModTime: deterministic bytes
	if _, err := zw.Write(p.encodePprof()); err != nil {
		return err
	}
	return zw.Close()
}

// pprof profile.proto field numbers (github.com/google/pprof/proto/profile.proto).
const (
	profSampleType        = 1
	profSample            = 2
	profMapping           = 3
	profLocation          = 4
	profFunction          = 5
	profStringTable       = 6
	profPeriodType        = 11
	profPeriod            = 12
	profDefaultSampleType = 14

	vtType = 1
	vtUnit = 2

	sampleLocationID = 1
	sampleValue      = 2

	mappingID       = 1
	mappingFilename = 5
	mappingHasFuncs = 7

	locationID        = 1
	locationMappingID = 2
	locationLine      = 4

	lineFunctionID = 1

	functionID         = 1
	functionName       = 2
	functionSystemName = 3
	functionFilename   = 4
)

func (p *Profiler) encodePprof() []byte {
	stacks := p.Stacks()

	// String table: index 0 must be "".
	strTab := []string{""}
	strIdx := map[string]int64{"": 0}
	str := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strTab))
		strTab = append(strTab, s)
		strIdx[s] = i
		return i
	}

	// One Location+Function per unique frame name, ids assigned in first-
	// appearance order over the sorted stacks (deterministic).
	locIDs := map[string]uint64{}
	var frameNames []string
	locOf := func(frame string) uint64 {
		if id, ok := locIDs[frame]; ok {
			return id
		}
		id := uint64(len(frameNames) + 1)
		locIDs[frame] = id
		frameNames = append(frameNames, frame)
		return id
	}

	cyclesT, countT := str("cycles"), str("count")
	timeT, nanosT := str("time"), str("nanoseconds")
	mapFile := str("hostsim")

	var prof buffer
	vt := func(typ, unit int64) []byte {
		var b buffer
		b.int64Field(vtType, typ)
		b.int64Field(vtUnit, unit)
		return b.b
	}
	prof.bytesField(profSampleType, vt(cyclesT, countT))
	prof.bytesField(profSampleType, vt(timeT, nanosT))

	for _, s := range stacks {
		var sb buffer
		ids := make([]uint64, len(s.Frames))
		for i, f := range s.Frames {
			// pprof wants leaf first; Frames is root first.
			ids[len(s.Frames)-1-i] = locOf(f)
		}
		sb.packedUint64(sampleLocationID, ids)
		ns := s.Cycles.Duration(p.freq).Nanoseconds()
		sb.packedInt64(sampleValue, []int64{int64(s.Cycles), ns})
		prof.bytesField(profSample, sb.b)
	}

	var mb buffer
	mb.uint64Field(mappingID, 1)
	mb.int64Field(mappingFilename, mapFile)
	mb.uint64Field(mappingHasFuncs, 1) // all frames resolved: no symbolization pass
	prof.bytesField(profMapping, mb.b)

	for i, name := range frameNames {
		id := uint64(i + 1)
		var lb buffer
		lb.uint64Field(lineFunctionID, id)
		var loc buffer
		loc.uint64Field(locationID, id)
		loc.uint64Field(locationMappingID, 1)
		loc.bytesField(locationLine, lb.b)
		prof.bytesField(profLocation, loc.b)

		var fn buffer
		fn.uint64Field(functionID, id)
		fn.int64Field(functionName, str(name))
		fn.int64Field(functionSystemName, str(name))
		fn.int64Field(functionFilename, mapFile)
		prof.bytesField(profFunction, fn.b)
	}

	for _, s := range strTab {
		prof.stringField(profStringTable, s)
	}
	prof.bytesField(profPeriodType, vt(cyclesT, countT))
	prof.int64Field(profPeriod, 1)
	prof.int64Field(profDefaultSampleType, cyclesT)
	return prof.b
}

// buffer is a minimal protobuf wire-format writer (varint + len-delimited).
type buffer struct{ b []byte }

func (w *buffer) varint(v uint64) {
	for v >= 0x80 {
		w.b = append(w.b, byte(v)|0x80)
		v >>= 7
	}
	w.b = append(w.b, byte(v))
}

func (w *buffer) key(field, wire int) { w.varint(uint64(field)<<3 | uint64(wire)) }

func (w *buffer) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	w.key(field, 0)
	w.varint(uint64(v))
}

func (w *buffer) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	w.key(field, 0)
	w.varint(v)
}

func (w *buffer) bytesField(field int, b []byte) {
	w.key(field, 2)
	w.varint(uint64(len(b)))
	w.b = append(w.b, b...)
}

func (w *buffer) stringField(field int, s string) {
	w.key(field, 2)
	w.varint(uint64(len(s)))
	w.b = append(w.b, s...)
}

func (w *buffer) packedUint64(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var pb buffer
	for _, v := range vs {
		pb.varint(v)
	}
	w.bytesField(field, pb.b)
}

func (w *buffer) packedInt64(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var pb buffer
	for _, v := range vs {
		pb.varint(uint64(v))
	}
	w.bytesField(field, pb.b)
}
