package profile

import (
	"fmt"
	"strings"
	"time"

	"hostsim/internal/metrics"
	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/stage"
	"hostsim/internal/units"
)

// The lifecycle stages, in pipeline order. Each delivered data SKB
// contributes one sample to every stage plus Total, so per-stage means
// sum exactly to the end-to-end mean (the deltas telescope).
const (
	StageSndbuf    = iota // app write → TCP emitted the segment
	StageNICTx            // TCP tx → frame left the NIC (tx queue + doorbell)
	StageWire             // NIC tx → arrival at the peer NIC (serialize + propagate)
	StageRxRing           // wire arrival → NAPI picked the frame up (IRQ moderation)
	StageGRO              // NAPI pickup → GRO flushed the aggregate
	StageTCPRx            // GRO flush → TCP Rx processing began
	StageSockQueue        // TCP Rx → application read the bytes
	StageTotal            // app write → app read
	NumStages
)

// packetStages maps the lifecycle's stage indices onto the canonical
// shared taxonomy; the array size pins NumStages == len(stage.Packet) at
// compile time, so the profiler, inspector and message tracer can never
// drift apart on stage names.
var packetStages [NumStages]stage.Stage = stage.Packet

// StageName returns the canonical slug for a stage index.
func StageName(i int) string { return packetStages[i].String() }

// Lifecycle tracks per-packet latency through the eight stamp points.
type Lifecycle struct {
	stages  [NumStages]*metrics.Histogram
	dropped int64 // SKBs skipped for missing/non-monotonic stamps
}

func newLifecycle() Lifecycle {
	var l Lifecycle
	for i := range l.stages {
		l.stages[i] = metrics.NewLatency()
	}
	return l
}

// Record ingests one delivered data SKB at application-read time. SKBs
// with incomplete stamps (pure ACKs, packets written before the warmup
// reset) are counted in dropped and contribute to no stage, keeping the
// telescoping per-stage = total invariant exact.
func (l *Lifecycle) Record(s *skb.SKB, readAt sim.Time) {
	if l == nil {
		return
	}
	ts := [NumStages]sim.Time{
		s.WriteAt, s.TCPTxAt, s.NICTxAt, s.WireAt, s.Born, s.GROAt, s.TCPRxAt, readAt,
	}
	for i := 0; i < NumStages; i++ {
		if ts[i] == 0 || (i > 0 && ts[i] < ts[i-1]) {
			l.dropped++
			return
		}
	}
	for i := 0; i < NumStages-1; i++ {
		l.stages[i].Record(float64(ts[i+1] - ts[i]))
	}
	l.stages[StageTotal].Record(float64(readAt - s.WriteAt))
}

// Dropped returns the number of skipped SKBs.
func (l *Lifecycle) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Reset clears all histograms (warmup boundary).
func (l *Lifecycle) Reset() {
	for _, h := range l.stages {
		h.Reset()
	}
	l.dropped = 0
}

// Breakdown snapshots the histograms into an exportable table, converting
// nanoseconds to cycles at freq.
func (l *Lifecycle) Breakdown(freq units.Frequency) LatencyBreakdown {
	b := LatencyBreakdown{Freq: freq}
	if l == nil {
		return b
	}
	for i, h := range l.stages {
		b.Stages = append(b.Stages, StageLatency{
			Stage:  StageName(i),
			Count:  h.Count(),
			MeanNS: h.Mean(),
			P50NS:  h.Quantile(0.50),
			P90NS:  h.Quantile(0.90),
			P99NS:  h.Quantile(0.99),
		})
	}
	b.Dropped = l.dropped
	return b
}

// StageLatency is one row of the latency-breakdown table.
type StageLatency struct {
	Stage  string
	Count  int64
	MeanNS float64
	P50NS  float64
	P90NS  float64
	P99NS  float64
}

// LatencyBreakdown is the per-packet latency table (the run's Fig. 9
// equivalent): per-stage quantiles in both wall time and cycles.
type LatencyBreakdown struct {
	Freq    units.Frequency
	Stages  []StageLatency
	Dropped int64
}

// cell renders one quantile as "duration/cycles".
func (b LatencyBreakdown) cell(ns float64) string {
	d := time.Duration(int64(ns))
	cyc := int64(ns * float64(b.Freq) / 1e9)
	return fmt.Sprintf("%v/%dc", d, cyc)
}

// Format renders the table as aligned text. Output is byte-deterministic
// for a given breakdown.
func (b LatencyBreakdown) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %18s %18s %18s %18s\n",
		"stage", "samples", "mean", "p50", "p90", "p99")
	for _, s := range b.Stages {
		fmt.Fprintf(&sb, "%-12s %10d %18s %18s %18s %18s\n",
			s.Stage, s.Count, b.cell(s.MeanNS), b.cell(s.P50NS), b.cell(s.P90NS), b.cell(s.P99NS))
	}
	if b.Dropped > 0 {
		fmt.Fprintf(&sb, "# %d skb(s) dropped (incomplete stamps: pure ACKs, pre-warmup writes)\n", b.Dropped)
	}
	return sb.String()
}
