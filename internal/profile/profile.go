// Package profile is hostsim's simulated-cycle profiler: it attributes
// every cycle charged through exec.Ctx.Charge to a hierarchical stack
//
//	host ; softirq|thread ; Table-1 category ; flow-class
//
// and tracks per-packet lifecycle latency (app write → TCP tx → NIC tx →
// wire → NIC rx → GRO flush → TCP rx → app read), the simulator-native
// equivalent of the instrumentation behind the paper's Table 1/Fig. 3
// taxonomy and Fig. 9 latency breakdown. Results export as a gzipped
// pprof profile.proto (go tool pprof, speedscope), folded-stack text
// (FlameGraph), and a per-stage latency table.
//
// A nil *Profiler is a valid no-op everywhere, and when no profiler is
// attached the hooks it relies on (exec charge logs, skb lifecycle
// stamps) are plain pointer tests and field writes — the event-loop hot
// path stays allocation-free, the same contract as trace.Tracer.
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hostsim/internal/exec"
	"hostsim/internal/units"
)

// Options configures a profiler attached via hostsim.Config.Profile.
type Options struct {
	// FlowClasses maps a flow id to its class label (the innermost stack
	// frame), e.g. "long" or "rpc". Flows absent from the map are labeled
	// "other"; a nil map labels every flow "flow". Flow-anonymous charges
	// (timers, replenish work) get no class frame at all.
	FlowClasses map[int32]string
}

// stackKey is one unique cycle-attribution stack. class is "" for
// flow-anonymous charges (the stack then has three frames, category leaf).
type stackKey struct {
	host  string
	ctx   string // "softirq" or the thread name
	cat   string // Table-1 category
	class string // flow class, "" when flow-anonymous
}

// Profiler accumulates simulated cycles into stacks and per-packet
// lifecycle latency into stage histograms. One Profiler serves all hosts
// of a single run; it is engine-thread-confined (no locks), like every
// other per-run structure.
type Profiler struct {
	opts    Options
	freq    units.Frequency
	samples map[stackKey]units.Cycles
	life    Lifecycle
}

// New builds a profiler converting cycles to wall time at freq.
func New(opts Options, freq units.Frequency) *Profiler {
	if freq <= 0 {
		panic("profile: non-positive frequency")
	}
	return &Profiler{
		opts:    opts,
		freq:    freq,
		samples: make(map[stackKey]units.Cycles),
		life:    newLifecycle(),
	}
}

// Freq returns the cycle→time conversion frequency.
func (p *Profiler) Freq() units.Frequency { return p.freq }

// Lifecycle returns the per-packet latency tracker (nil-safe).
func (p *Profiler) Lifecycle() *Lifecycle {
	if p == nil {
		return nil
	}
	return &p.life
}

// Record ingests one completed work item's charge log for the named
// host. It is the exec.ChargeLogFunc target: core.Host wires it via
// exec.System.SetChargeLog.
func (p *Profiler) Record(host string, softirq bool, thread string, log []exec.FlowCharge) {
	ctx := thread
	if softirq {
		ctx = "softirq"
	}
	for i := range log {
		e := &log[i]
		if e.Cycles == 0 {
			continue
		}
		k := stackKey{host: host, ctx: ctx, cat: e.Cat.String(), class: p.classOf(e.Flow)}
		p.samples[k] += e.Cycles
	}
}

func (p *Profiler) classOf(flow int32) string {
	if flow == 0 {
		return ""
	}
	if p.opts.FlowClasses == nil {
		return "flow"
	}
	if c, ok := p.opts.FlowClasses[flow]; ok {
		return c
	}
	return "other"
}

// Reset discards everything accumulated so far. hostsim calls it at the
// warmup boundary, next to the engines' accounting reset, so profiler
// totals reconcile exactly with post-warmup category accounting.
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	for k := range p.samples {
		delete(p.samples, k)
	}
	p.life.Reset()
}

// TotalCycles returns the sum over all stacks.
func (p *Profiler) TotalCycles() units.Cycles {
	var t units.Cycles
	for _, c := range p.samples {
		t += c
	}
	return t
}

// CategoryTotals sums cycles per Table-1 category name across all hosts,
// contexts and flow classes — the numbers that must equal the runs'
// exec accounting for the same window.
func (p *Profiler) CategoryTotals() map[string]units.Cycles {
	out := make(map[string]units.Cycles)
	for k, c := range p.samples {
		out[k.cat] += c
	}
	return out
}

// Stacks returns every (folded stack, cycles) pair sorted by stack
// string — the canonical deterministic ordering used by both exporters.
func (p *Profiler) Stacks() []Stack {
	out := make([]Stack, 0, len(p.samples))
	for k, c := range p.samples {
		frames := []string{k.host, k.ctx, k.cat}
		if k.class != "" {
			frames = append(frames, k.class)
		}
		out = append(out, Stack{Frames: frames, Cycles: c})
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Frames, ";") < strings.Join(out[j].Frames, ";")
	})
	return out
}

// Stack is one aggregated attribution stack, root-first.
type Stack struct {
	Frames []string
	Cycles units.Cycles
}

// WriteFolded writes the profile in Brendan Gregg's folded-stack format
// ("frame;frame;frame count\n", root first), directly consumable by
// flamegraph.pl. Output is byte-deterministic for a given profile.
func (p *Profiler) WriteFolded(w io.Writer) error {
	if p == nil {
		return fmt.Errorf("profile: WriteFolded on nil profiler")
	}
	for _, s := range p.Stacks() {
		if _, err := fmt.Fprintf(w, "%s %d\n", strings.Join(s.Frames, ";"), int64(s.Cycles)); err != nil {
			return err
		}
	}
	return nil
}
