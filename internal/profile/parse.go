package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// ParsedProfile is the result of decoding a pprof profile.proto — enough
// structure to validate round-trips and drive tests/CI smoke checks
// without depending on github.com/google/pprof.
type ParsedProfile struct {
	SampleTypes       []ParsedValueType
	Samples           []ParsedSample
	PeriodType        ParsedValueType
	Period            int64
	DefaultSampleType string
	StringTable       []string
}

// ParsedValueType is a decoded ValueType with string indices resolved.
type ParsedValueType struct{ Type, Unit string }

// ParsedSample is one decoded sample with its stack resolved to function
// names, root first (the reverse of the wire order).
type ParsedSample struct {
	Stack  []string
	Values []int64
}

// ParseData decodes a pprof profile.proto, gzipped or raw, and resolves
// samples to named stacks. It errors on malformed protobuf, dangling
// location/function/string references, or samples whose value count does
// not match the declared sample types.
func ParseData(data []byte) (*ParsedProfile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile: bad gzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profile: gzip read: %w", err)
		}
		data = raw
	}

	p := &ParsedProfile{StringTable: []string{}}
	var rawSamples, rawLocs, rawFuncs, rawVTs [][]byte
	var rawPeriodType []byte
	var defaultSampleType int64

	err := eachField(data, func(field int, wire int, v uint64, b []byte) error {
		switch field {
		case profSampleType:
			rawVTs = append(rawVTs, b)
		case profSample:
			rawSamples = append(rawSamples, b)
		case profLocation:
			rawLocs = append(rawLocs, b)
		case profFunction:
			rawFuncs = append(rawFuncs, b)
		case profStringTable:
			p.StringTable = append(p.StringTable, string(b))
		case profPeriodType:
			rawPeriodType = b
		case profPeriod:
			p.Period = int64(v)
		case profDefaultSampleType:
			defaultSampleType = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(p.StringTable) == 0 || p.StringTable[0] != "" {
		return nil, fmt.Errorf("profile: string table must start with %q", "")
	}
	str := func(i int64) (string, error) {
		if i < 0 || i >= int64(len(p.StringTable)) {
			return "", fmt.Errorf("profile: string index %d out of range", i)
		}
		return p.StringTable[i], nil
	}

	parseVT := func(b []byte) (ParsedValueType, error) {
		var typ, unit int64
		err := eachField(b, func(field, wire int, v uint64, _ []byte) error {
			switch field {
			case vtType:
				typ = int64(v)
			case vtUnit:
				unit = int64(v)
			}
			return nil
		})
		if err != nil {
			return ParsedValueType{}, err
		}
		ts, err := str(typ)
		if err != nil {
			return ParsedValueType{}, err
		}
		us, err := str(unit)
		if err != nil {
			return ParsedValueType{}, err
		}
		return ParsedValueType{Type: ts, Unit: us}, nil
	}
	for _, b := range rawVTs {
		vt, err := parseVT(b)
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, vt)
	}
	if rawPeriodType != nil {
		if p.PeriodType, err = parseVT(rawPeriodType); err != nil {
			return nil, err
		}
	}
	if p.DefaultSampleType, err = str(defaultSampleType); err != nil {
		return nil, err
	}

	// Functions: id → name.
	funcName := map[uint64]string{}
	for _, fb := range rawFuncs {
		var id uint64
		var name int64
		err := eachField(fb, func(field, wire int, v uint64, _ []byte) error {
			switch field {
			case functionID:
				id = v
			case functionName:
				name = int64(v)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		n, err := str(name)
		if err != nil {
			return nil, err
		}
		funcName[id] = n
	}

	// Locations: id → frame name, via the first line's function.
	locName := map[uint64]string{}
	for _, lb := range rawLocs {
		var id, fnID uint64
		err := eachField(lb, func(field, wire int, v uint64, b []byte) error {
			switch field {
			case locationID:
				id = v
			case locationLine:
				return eachField(b, func(field, wire int, v uint64, _ []byte) error {
					if field == lineFunctionID && fnID == 0 {
						fnID = v
					}
					return nil
				})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		n, ok := funcName[fnID]
		if !ok {
			return nil, fmt.Errorf("profile: location %d references unknown function %d", id, fnID)
		}
		locName[id] = n
	}

	for _, sb := range rawSamples {
		var ids []uint64
		var vals []int64
		err := eachField(sb, func(field, wire int, v uint64, b []byte) error {
			switch field {
			case sampleLocationID:
				if wire == 2 {
					return eachVarint(b, func(u uint64) { ids = append(ids, u) })
				}
				ids = append(ids, v)
			case sampleValue:
				if wire == 2 {
					return eachVarint(b, func(u uint64) { vals = append(vals, int64(u)) })
				}
				vals = append(vals, int64(v))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(p.SampleTypes) > 0 && len(vals) != len(p.SampleTypes) {
			return nil, fmt.Errorf("profile: sample has %d values, want %d", len(vals), len(p.SampleTypes))
		}
		stack := make([]string, len(ids))
		for i, id := range ids {
			n, ok := locName[id]
			if !ok {
				return nil, fmt.Errorf("profile: sample references unknown location %d", id)
			}
			// Wire order is leaf first; expose root first.
			stack[len(ids)-1-i] = n
		}
		p.Samples = append(p.Samples, ParsedSample{Stack: stack, Values: vals})
	}
	return p, nil
}

// eachField iterates the top-level fields of a protobuf message. For
// varint fields v holds the value; for length-delimited fields b holds
// the payload.
func eachField(data []byte, fn func(field, wire int, v uint64, b []byte) error) error {
	for len(data) > 0 {
		key, n := readVarint(data)
		if n <= 0 {
			return fmt.Errorf("profile: truncated field key")
		}
		data = data[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0: // varint
			v, n := readVarint(data)
			if n <= 0 {
				return fmt.Errorf("profile: truncated varint (field %d)", field)
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(data) < 8 {
				return fmt.Errorf("profile: truncated fixed64 (field %d)", field)
			}
			data = data[8:]
		case 2: // length-delimited
			l, n := readVarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("profile: truncated bytes (field %d)", field)
			}
			if err := fn(field, wire, 0, data[n:n+int(l)]); err != nil {
				return err
			}
			data = data[n+int(l):]
		case 5: // fixed32
			if len(data) < 4 {
				return fmt.Errorf("profile: truncated fixed32 (field %d)", field)
			}
			data = data[4:]
		default:
			return fmt.Errorf("profile: unsupported wire type %d (field %d)", wire, field)
		}
	}
	return nil
}

func eachVarint(b []byte, fn func(uint64)) error {
	for len(b) > 0 {
		v, n := readVarint(b)
		if n <= 0 {
			return fmt.Errorf("profile: truncated packed varint")
		}
		fn(v)
		b = b[n:]
	}
	return nil
}

func readVarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * uint(i))
		if b[i]&0x80 == 0 {
			return v, i + 1
		}
	}
	return 0, 0
}
