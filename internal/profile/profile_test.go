package profile

import (
	"bytes"
	"strings"
	"testing"

	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/skb"
	"hostsim/internal/units"
)

const testFreq units.Frequency = 3_400_000_000

func testProfiler() *Profiler {
	p := New(Options{FlowClasses: map[int32]string{1: "long", 2: "rpc"}}, testFreq)
	p.Record("daisy", true, "", []exec.FlowCharge{
		{Flow: 1, Cat: cpumodel.Netdev, Cycles: 100},
		{Flow: 1, Cat: cpumodel.TCPIP, Cycles: 50},
		{Flow: 0, Cat: cpumodel.Memory, Cycles: 7},
	})
	p.Record("daisy", false, "iperf-recv", []exec.FlowCharge{
		{Flow: 1, Cat: cpumodel.DataCopy, Cycles: 900},
		{Flow: 3, Cat: cpumodel.Sched, Cycles: 11},
	})
	p.Record("poppy", true, "", []exec.FlowCharge{
		{Flow: 2, Cat: cpumodel.TCPIP, Cycles: 60},
	})
	// Same stack again: must aggregate, not duplicate.
	p.Record("daisy", true, "", []exec.FlowCharge{
		{Flow: 1, Cat: cpumodel.Netdev, Cycles: 23},
	})
	return p
}

func TestFoldedOutput(t *testing.T) {
	p := testProfiler()
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := `daisy;iperf-recv;data_copy;long 900
daisy;iperf-recv;sched;other 11
daisy;softirq;memory 7
daisy;softirq;netdev;long 123
daisy;softirq;tcp/ip;long 50
poppy;softirq;tcp/ip;rpc 60
`
	if got := buf.String(); got != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", got, want)
	}
}

func TestCategoryTotals(t *testing.T) {
	p := testProfiler()
	tot := p.CategoryTotals()
	if got := tot[cpumodel.TCPIP.String()]; got != 110 {
		t.Errorf("tcp/ip total = %d, want 110", got)
	}
	if got := tot[cpumodel.Netdev.String()]; got != 123 {
		t.Errorf("netdev total = %d, want 123", got)
	}
	if got, want := p.TotalCycles(), units.Cycles(900+11+7+123+50+60); got != want {
		t.Errorf("TotalCycles = %d, want %d", got, want)
	}
}

func TestZeroCycleChargesIgnored(t *testing.T) {
	p := New(Options{}, testFreq)
	p.Record("h", true, "", []exec.FlowCharge{{Flow: 1, Cat: cpumodel.Lock, Cycles: 0}})
	if len(p.Stacks()) != 0 {
		t.Errorf("zero-cycle charge produced a stack")
	}
}

func TestReset(t *testing.T) {
	p := testProfiler()
	p.Reset()
	if p.TotalCycles() != 0 || len(p.Stacks()) != 0 {
		t.Errorf("Reset left %d cycles in %d stacks", p.TotalCycles(), len(p.Stacks()))
	}
}

func TestPprofRoundTrip(t *testing.T) {
	p := testProfiler()
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseData(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(parsed.SampleTypes); got != 2 {
		t.Fatalf("sample types = %d, want 2", got)
	}
	if parsed.SampleTypes[0] != (ParsedValueType{"cycles", "count"}) ||
		parsed.SampleTypes[1] != (ParsedValueType{"time", "nanoseconds"}) {
		t.Errorf("sample types = %v", parsed.SampleTypes)
	}
	if parsed.DefaultSampleType != "cycles" {
		t.Errorf("default sample type = %q, want cycles", parsed.DefaultSampleType)
	}
	stacks := p.Stacks()
	if len(parsed.Samples) != len(stacks) {
		t.Fatalf("samples = %d, want %d", len(parsed.Samples), len(stacks))
	}
	for i, s := range stacks {
		got := parsed.Samples[i]
		if strings.Join(got.Stack, ";") != strings.Join(s.Frames, ";") {
			t.Errorf("sample %d stack = %v, want %v", i, got.Stack, s.Frames)
		}
		if got.Values[0] != int64(s.Cycles) {
			t.Errorf("sample %d cycles = %d, want %d", i, got.Values[0], s.Cycles)
		}
		wantNS := s.Cycles.Duration(testFreq).Nanoseconds()
		if got.Values[1] != wantNS {
			t.Errorf("sample %d ns = %d, want %d", i, got.Values[1], wantNS)
		}
	}
}

func TestPprofDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := testProfiler().WritePprof(&a); err != nil {
		t.Fatal(err)
	}
	if err := testProfiler().WritePprof(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("pprof output differs across identical profiles")
	}
}

func TestParseDataRejectsGarbage(t *testing.T) {
	if _, err := ParseData([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Error("ParseData accepted garbage")
	}
	if _, err := ParseData([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Error("ParseData accepted truncated gzip")
	}
}

func TestLifecycleTelescopes(t *testing.T) {
	p := New(Options{}, testFreq)
	l := p.Lifecycle()
	s := &skb.SKB{
		WriteAt: 100, TCPTxAt: 150, NICTxAt: 220, WireAt: 300,
		Born: 450, GROAt: 460, TCPRxAt: 500,
	}
	l.Record(s, 700)
	b := l.Breakdown(testFreq)
	var stageSum float64
	for _, st := range b.Stages {
		if st.Stage == "total" {
			continue
		}
		if st.Count != 1 {
			t.Errorf("stage %s count = %d, want 1", st.Stage, st.Count)
		}
		stageSum += st.MeanNS
	}
	total := b.Stages[StageTotal]
	if stageSum != total.MeanNS {
		t.Errorf("stage sum %v != total %v", stageSum, total.MeanNS)
	}
	if total.MeanNS != 600 {
		t.Errorf("total mean = %v, want 600", total.MeanNS)
	}
}

func TestLifecycleDropsIncomplete(t *testing.T) {
	p := New(Options{}, testFreq)
	l := p.Lifecycle()
	l.Record(&skb.SKB{WriteAt: 0, TCPTxAt: 150}, 700) // pre-warmup write
	l.Record(&skb.SKB{}, 50)                          // pure ACK: no stamps
	if got := l.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	if got := l.Breakdown(testFreq).Stages[StageTotal].Count; got != 0 {
		t.Errorf("total count = %d, want 0", got)
	}
}

func TestBreakdownFormat(t *testing.T) {
	p := New(Options{}, testFreq)
	l := p.Lifecycle()
	l.Record(&skb.SKB{
		WriteAt: 1000, TCPTxAt: 2000, NICTxAt: 3000, WireAt: 4000,
		Born: 5000, GROAt: 6000, TCPRxAt: 7000,
	}, 8000)
	out := l.Breakdown(testFreq).Format()
	for i := 0; i < NumStages; i++ {
		if !strings.Contains(out, StageName(i)) {
			t.Errorf("breakdown table missing stage %q:\n%s", StageName(i), out)
		}
	}
}
