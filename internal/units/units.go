// Package units provides the strongly typed quantities used throughout the
// simulator: byte counts, bit rates, CPU cycle counts, and frequencies.
//
// Keeping these as distinct named types catches the classic
// bytes-vs-bits-vs-cycles unit bugs at compile time, and concentrates the
// (lossy) conversions between cycles and simulated nanoseconds in one
// place.
package units

import (
	"fmt"
	"time"
)

// Bytes is a count of bytes.
type Bytes int64

// Common byte quantities.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
)

// Bits returns the number of bits in b.
func (b Bytes) Bits() int64 { return int64(b) * 8 }

func (b Bytes) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// BitRate is a data rate in bits per second.
type BitRate int64

// Common rates.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1e3 * BitPerSecond
	Mbps                 = 1e3 * Kbps
	Gbps                 = 1e3 * Mbps
)

// Gigabits reports the rate in Gbps as a float.
func (r BitRate) Gigabits() float64 { return float64(r) / float64(Gbps) }

func (r BitRate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.2fKbps", float64(r)/float64(Kbps))
	}
	return fmt.Sprintf("%dbps", int64(r))
}

// Serialize returns the wire time for b bytes at rate r.
// Serialize panics if r is not positive: a zero-rate link is a
// configuration error, not a runtime condition.
func (r BitRate) Serialize(b Bytes) time.Duration {
	if r <= 0 {
		panic("units: Serialize on non-positive BitRate")
	}
	// b*8 ns-bits / (bits/s) -> seconds; compute in ns to keep precision:
	// t_ns = bits * 1e9 / rate.
	return time.Duration(b.Bits() * int64(time.Second) / int64(r))
}

// RateOf returns the average rate of transferring b bytes over d.
func RateOf(b Bytes, d time.Duration) BitRate {
	if d <= 0 {
		return 0
	}
	return BitRate(float64(b.Bits()) / d.Seconds())
}

// Cycles is a CPU cycle count.
type Cycles int64

// Frequency is a CPU clock frequency in Hz.
type Frequency int64

// Common frequencies.
const (
	Hz  Frequency = 1
	MHz           = 1e6 * Hz
	GHz           = 1e9 * Hz
)

// Duration converts a cycle count at frequency f to wall time.
func (c Cycles) Duration(f Frequency) time.Duration {
	if f <= 0 {
		panic("units: Duration on non-positive Frequency")
	}
	return time.Duration(int64(c) * int64(time.Second) / int64(f))
}

// CyclesIn returns the number of cycles elapsing over d at frequency f.
func CyclesIn(d time.Duration, f Frequency) Cycles {
	return Cycles(int64(d) * int64(f) / int64(time.Second))
}

// PerByte is a fractional per-byte cycle cost. Copy costs are fractions
// of a cycle per byte on modern hardware, so an integer Cycles type
// cannot express them.
type PerByte float64

// Of returns the (rounded) cycle cost of processing b bytes.
func (p PerByte) Of(b Bytes) Cycles { return Cycles(float64(b)*float64(p) + 0.5) }
