package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512B"},
		{KB, "1.00KB"},
		{1536, "1.50KB"},
		{MB, "1.00MB"},
		{3 * MB / 2, "1.50MB"},
		{GB, "1.00GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBitRateString(t *testing.T) {
	cases := []struct {
		in   BitRate
		want string
	}{
		{100 * Gbps, "100.00Gbps"},
		{Mbps, "1.00Mbps"},
		{Kbps, "1.00Kbps"},
		{500, "500bps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("BitRate(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSerialize(t *testing.T) {
	// 1500B at 100Gbps = 12000 bits / 100e9 bps = 120ns.
	got := (100 * Gbps).Serialize(1500)
	if got != 120*time.Nanosecond {
		t.Errorf("Serialize(1500B @ 100Gbps) = %v, want 120ns", got)
	}
	// 9000B at 10Gbps = 72000/10e9 s = 7.2us.
	got = (10 * Gbps).Serialize(9000)
	if got != 7200*time.Nanosecond {
		t.Errorf("Serialize(9000B @ 10Gbps) = %v, want 7.2us", got)
	}
}

func TestSerializePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Serialize on zero rate did not panic")
		}
	}()
	BitRate(0).Serialize(1)
}

func TestRateOf(t *testing.T) {
	// 12.5GB over 1s = 100Gbps.
	r := RateOf(Bytes(12.5e9), time.Second)
	if g := r.Gigabits(); g < 99.9 || g > 100.1 {
		t.Errorf("RateOf(12.5e9B, 1s) = %vGbps, want ~100", g)
	}
	if RateOf(100, 0) != 0 {
		t.Error("RateOf with zero duration should be 0")
	}
}

func TestCyclesDuration(t *testing.T) {
	// 3.4e9 cycles at 3.4GHz = 1s.
	d := Cycles(3.4e9).Duration(Frequency(3.4e9))
	if d != time.Second {
		t.Errorf("3.4e9 cycles @ 3.4GHz = %v, want 1s", d)
	}
	// 34 cycles at 3.4GHz = 10ns.
	d = Cycles(34).Duration(Frequency(3.4e9))
	if d != 10*time.Nanosecond {
		t.Errorf("34 cycles @ 3.4GHz = %v, want 10ns", d)
	}
}

func TestCyclesIn(t *testing.T) {
	c := CyclesIn(time.Second, Frequency(3.4e9))
	if c != Cycles(3.4e9) {
		t.Errorf("CyclesIn(1s, 3.4GHz) = %d, want 3.4e9", c)
	}
}

func TestCyclesRoundTrip(t *testing.T) {
	f := Frequency(3.4e9)
	err := quick.Check(func(n uint32) bool {
		c := Cycles(n)
		back := CyclesIn(c.Duration(f), f)
		// ns rounding loses at most a few cycles per conversion.
		diff := int64(back - c)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 4
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPerByteOf(t *testing.T) {
	if got := PerByte(0.5).Of(1000); got != 500 {
		t.Errorf("PerByte(0.5).Of(1000) = %d, want 500", got)
	}
	if got := PerByte(0.5).Of(1); got != 1 {
		t.Errorf("PerByte(0.5).Of(1) = %d, want 1 (round half up)", got)
	}
	if got := PerByte(2).Of(0); got != 0 {
		t.Errorf("PerByte(2).Of(0) = %d, want 0", got)
	}
}

func TestSerializeMonotonic(t *testing.T) {
	r := 100 * Gbps
	err := quick.Check(func(a, b uint16) bool {
		x, y := Bytes(a), Bytes(b)
		if x > y {
			x, y = y, x
		}
		return r.Serialize(x) <= r.Serialize(y)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
