package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hostsim/internal/cpumodel"
	"hostsim/internal/topology"
	"hostsim/internal/units"
)

// tally is a Charger that records per-category totals.
type tally struct {
	got cpumodel.Breakdown
}

func (t *tally) Charge(cat cpumodel.Category, c units.Cycles) { t.got.Add(cat, c) }

func newAlloc() *Allocator {
	return NewAllocator(topology.Default(), cpumodel.Default())
}

func TestAllocPlacesOnLocalNode(t *testing.T) {
	a := newAlloc()
	var ch tally
	pages := a.Alloc(&ch, 7, 3) // core 7 is node 1
	if len(pages) != 3 {
		t.Fatalf("got %d pages, want 3", len(pages))
	}
	for _, p := range pages {
		if p.Node != 1 {
			t.Errorf("page on node %d, want 1", p.Node)
		}
		if p.ID == 0 {
			t.Error("page ID must be non-zero")
		}
	}
	if a.InUse() != 3 {
		t.Errorf("InUse = %d, want 3", a.InUse())
	}
}

func TestUniquePageIDs(t *testing.T) {
	a := newAlloc()
	seen := map[int64]bool{}
	for core := 0; core < 4; core++ {
		for _, p := range a.Alloc(cpumodel.Discard{}, core, 50) {
			if seen[int64(p.ID)] {
				t.Fatalf("duplicate page ID %d", p.ID)
			}
			seen[int64(p.ID)] = true
		}
	}
}

func TestPagesetRecycling(t *testing.T) {
	a := newAlloc()
	var ch tally
	pages := a.Alloc(&ch, 0, 10)
	if a.Stats().AllocGlobal != 10 {
		t.Fatalf("first allocation should be global, got %+v", a.Stats())
	}
	a.Free(&ch, 0, pages)
	if a.Stats().FreePCP != 10 {
		t.Fatalf("local frees should land in the pageset, got %+v", a.Stats())
	}
	again := a.Alloc(&ch, 0, 10)
	if a.Stats().AllocPCP != 10 {
		t.Fatalf("recycled allocation should be served by pageset, got %+v", a.Stats())
	}
	// LIFO: most recently freed page comes back first.
	if again[0].ID != pages[9].ID {
		t.Errorf("pageset should be LIFO: got %d, want %d", again[0].ID, pages[9].ID)
	}
}

func TestPagesetCapacitySpillsToGlobal(t *testing.T) {
	a := newAlloc()
	a.SetPagesetCap(4)
	var ch tally
	pages := a.Alloc(&ch, 0, 10)
	a.Free(&ch, 0, pages)
	st := a.Stats()
	if st.FreePCP != 4 || st.FreeGlobal != 6 {
		t.Errorf("want 4 pcp frees + 6 global, got %+v", st)
	}
}

func TestRemoteFreeCostsMore(t *testing.T) {
	a := newAlloc()
	costs := cpumodel.Default()
	var local, remote tally
	p := a.Alloc(&local, 0, 1) // node 0
	a.SetPagesetCap(0)         // force global frees so costs are comparable
	local = tally{}
	a.Free(&local, 0, p) // free on same node
	q := a.Alloc(&remote, 0, 1)
	remote = tally{}
	a.Free(&remote, 6, q) // core 6 = node 1: remote free
	wantExtra := costs.PageFreeRemote
	if remote.got[cpumodel.Memory]-local.got[cpumodel.Memory] != wantExtra {
		t.Errorf("remote free extra = %d, want %d",
			remote.got[cpumodel.Memory]-local.got[cpumodel.Memory], wantExtra)
	}
	if a.Stats().FreeRemote != 1 {
		t.Errorf("FreeRemote = %d, want 1", a.Stats().FreeRemote)
	}
}

func TestRemoteFreeNeverEntersLocalPageset(t *testing.T) {
	a := newAlloc()
	p := a.Alloc(cpumodel.Discard{}, 0, 5) // node-0 pages
	a.Free(cpumodel.Discard{}, 6, p)       // freed from node-1 core
	if a.PagesetLen(6) != 0 {
		t.Error("remote pages must not enter the freeing core's pageset")
	}
	// And a subsequent node-1 alloc gets node-1 pages.
	q := a.Alloc(cpumodel.Discard{}, 6, 1)
	if q[0].Node != 1 {
		t.Errorf("node = %d, want 1", q[0].Node)
	}
}

func TestChargesGoToMemoryCategory(t *testing.T) {
	a := newAlloc()
	var ch tally
	p := a.Alloc(&ch, 0, 2)
	a.Free(&ch, 0, p)
	if ch.got[cpumodel.Memory] == 0 {
		t.Error("allocation should charge the Memory category")
	}
	for cat := range ch.got {
		if cpumodel.Category(cat) != cpumodel.Memory && ch.got[cat] != 0 {
			t.Errorf("unexpected charge in %v", cpumodel.Category(cat))
		}
	}
}

func TestIOMMUAccounting(t *testing.T) {
	a := newAlloc()
	costs := cpumodel.Default()
	var ch tally
	a.DMAMap(&ch, 4)
	a.DMAUnmap(&ch, 4)
	if ch.got[cpumodel.Memory] != 0 {
		t.Error("IOMMU disabled: map/unmap must be free")
	}
	a.SetIOMMU(true)
	a.DMAMap(&ch, 4)
	a.DMAUnmap(&ch, 4)
	want := costs.IOMMUMap*4 + costs.IOMMUUnmap*4
	if ch.got[cpumodel.Memory] != want {
		t.Errorf("IOMMU charges = %d, want %d", ch.got[cpumodel.Memory], want)
	}
	st := a.Stats()
	if st.IOMMUMaps != 4 || st.IOMMUUnmaps != 4 {
		t.Errorf("IOMMU stats = %+v", st)
	}
}

func TestOverFreePanics(t *testing.T) {
	a := newAlloc()
	p := a.Alloc(cpumodel.Discard{}, 0, 1)
	a.Free(cpumodel.Discard{}, 0, p)
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	a.Free(cpumodel.Discard{}, 0, p)
}

func TestNegativeAllocPanics(t *testing.T) {
	a := newAlloc()
	defer func() {
		if recover() == nil {
			t.Error("Alloc(-1) should panic")
		}
	}()
	a.Alloc(cpumodel.Discard{}, 0, -1)
}

// Property: any sequence of alloc/free keeps InUse = allocated - freed,
// and pageset length never exceeds its capacity.
func TestPropertyConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		a := newAlloc()
		a.SetPagesetCap(16)
		var held []Page
		var allocated, freed int64
		for _, op := range ops {
			core := int(op) % 24
			if op%2 == 0 || len(held) == 0 {
				n := int(op%5) + 1
				held = append(held, a.Alloc(cpumodel.Discard{}, core, n)...)
				allocated += int64(n)
			} else {
				n := int(op%uint8(len(held))) + 1
				if n > len(held) {
					n = len(held)
				}
				a.Free(cpumodel.Discard{}, core, held[:n])
				held = held[n:]
				freed += int64(n)
			}
			for c := 0; c < 24; c++ {
				if a.PagesetLen(c) > 16 {
					return false
				}
			}
		}
		return a.InUse() == allocated-freed
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPagesFor(t *testing.T) {
	a := newAlloc()
	if a.PagesFor(9000) != 3 {
		t.Errorf("PagesFor(9000) = %d, want 3", a.PagesFor(9000))
	}
}
