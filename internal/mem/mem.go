// Package mem models the kernel memory-management machinery the network
// stack leans on: the page allocator with its per-core pagesets (pcp
// lists) backed by a global buddy allocator, NUMA-aware page placement and
// free costs, and the IOMMU's per-page map/unmap work.
//
// The paper's §3.2 observation — memory alloc/dealloc overhead *drops*
// when the network saturates, because pages recycle through the per-core
// pageset before it empties — emerges from this model: a core whose
// in-flight page population stays under the pageset capacity serves
// allocations at pcp cost; once in-flight pages exceed it, traffic spills
// to the global allocator at several times the cost.
package mem

import (
	"fmt"

	"hostsim/internal/cache"
	"hostsim/internal/cpumodel"
	"hostsim/internal/topology"
	"hostsim/internal/units"
)

// Page is one kernel page handed to the NIC or the stack.
type Page struct {
	ID   cache.PageID // globally unique, stable for cache placement
	Node int          // NUMA node the page's memory lives on
}

// DefaultPagesetCap is the per-core pageset capacity in pages. Linux pcp
// lists hold a few hundred pages per order-0 zone list.
const DefaultPagesetCap = 512

// Stats counts allocator activity.
type Stats struct {
	AllocPCP    int64 // pages served from a per-core pageset
	AllocGlobal int64 // pages served from the buddy allocator
	FreePCP     int64 // pages returned to a pageset
	FreeGlobal  int64 // pages returned to buddy
	FreeRemote  int64 // frees of pages on a different node than the core
	IOMMUMaps   int64
	IOMMUUnmaps int64
}

// Allocator is the per-host page allocator. Not safe for concurrent use;
// the simulator is single-threaded.
type Allocator struct {
	spec   topology.MachineSpec
	costs  *cpumodel.Costs
	iommu  bool
	nextID cache.PageID
	// freelists[core] is a LIFO of free pages, all on that core's node:
	// LIFO keeps recently freed (cache-hot, placement-stable) pages
	// recycling first, like the kernel's pcp hot list.
	freelists  [][]Page
	pagesetCap int
	inUse      int64
	stats      Stats
}

// NewAllocator builds an allocator for spec. costs must be non-nil.
func NewAllocator(spec topology.MachineSpec, costs *cpumodel.Costs) *Allocator {
	if costs == nil {
		panic("mem: nil cost table")
	}
	return &Allocator{
		spec:       spec,
		costs:      costs,
		freelists:  make([][]Page, spec.NumCores()),
		pagesetCap: DefaultPagesetCap,
	}
}

// SetIOMMU enables or disables IOMMU accounting (per-page map/unmap costs
// in the DMA path).
func (a *Allocator) SetIOMMU(on bool) { a.iommu = on }

// IOMMU reports whether IOMMU accounting is enabled.
func (a *Allocator) IOMMU() bool { return a.iommu }

// SetPagesetCap overrides the per-core pageset capacity (for tests and
// ablations).
func (a *Allocator) SetPagesetCap(n int) {
	if n < 0 {
		panic("mem: negative pageset capacity")
	}
	a.pagesetCap = n
}

// Alloc returns n pages for code running on core, charging ch. Pages come
// from the core's pageset when available (cheap) and the global allocator
// otherwise (expensive); they are placed on the core's NUMA node.
func (a *Allocator) Alloc(ch cpumodel.Charger, core, n int) []Page {
	return a.AppendAlloc(ch, core, n, nil)
}

// AppendAlloc is Alloc appending into dst, so hot paths can hand in a
// reusable slice and avoid the per-call allocation.
func (a *Allocator) AppendAlloc(ch cpumodel.Charger, core, n int, dst []Page) []Page {
	if n < 0 {
		panic(fmt.Sprintf("mem: Alloc(%d)", n))
	}
	node := a.spec.NodeOf(core)
	want := len(dst) + n
	fl := a.freelists[core]
	for len(dst) < want && len(fl) > 0 {
		dst = append(dst, fl[len(fl)-1])
		fl = fl[:len(fl)-1]
		a.stats.AllocPCP++
		ch.Charge(cpumodel.Memory, a.costs.PageAllocPCP)
	}
	a.freelists[core] = fl
	for len(dst) < want {
		a.nextID++
		dst = append(dst, Page{ID: a.nextID, Node: node})
		a.stats.AllocGlobal++
		ch.Charge(cpumodel.Memory, a.costs.PageAllocGlobal)
	}
	a.inUse += int64(n)
	return dst
}

// Free returns pages from code running on core. Local pages go back to the
// core's pageset while it has room, then to the global allocator; pages
// on a remote node always go global and pay the remote-free premium (the
// paper's aRFS locality observation).
func (a *Allocator) Free(ch cpumodel.Charger, core int, pages []Page) {
	node := a.spec.NodeOf(core)
	fl := a.freelists[core]
	for _, p := range pages {
		if p.Node == node {
			if len(fl) < a.pagesetCap {
				fl = append(fl, p)
				a.stats.FreePCP++
				ch.Charge(cpumodel.Memory, a.costs.PageFreePCP)
			} else {
				a.stats.FreeGlobal++
				ch.Charge(cpumodel.Memory, a.costs.PageFreeGlobal)
			}
		} else {
			a.stats.FreeGlobal++
			a.stats.FreeRemote++
			ch.Charge(cpumodel.Memory, a.costs.PageFreeGlobal+a.costs.PageFreeRemote)
		}
	}
	a.freelists[core] = fl
	a.inUse -= int64(len(pages))
	if a.inUse < 0 {
		panic("mem: more pages freed than allocated")
	}
}

// DMAMap charges the IOMMU mapping cost for n pages if the IOMMU is
// enabled (the driver inserts the pages into the device's IOMMU domain).
func (a *Allocator) DMAMap(ch cpumodel.Charger, n int) {
	if !a.iommu || n <= 0 {
		return
	}
	a.stats.IOMMUMaps += int64(n)
	ch.Charge(cpumodel.Memory, a.costs.IOMMUMap*units.Cycles(n))
}

// DMAUnmap charges the IOMMU unmap cost for n pages if enabled.
func (a *Allocator) DMAUnmap(ch cpumodel.Charger, n int) {
	if !a.iommu || n <= 0 {
		return
	}
	a.stats.IOMMUUnmaps += int64(n)
	ch.Charge(cpumodel.Memory, a.costs.IOMMUUnmap*units.Cycles(n))
}

// InUse returns the number of pages currently allocated.
func (a *Allocator) InUse() int64 { return a.inUse }

// PagesetLen returns the number of pages in core's pageset (tests).
func (a *Allocator) PagesetLen(core int) int { return len(a.freelists[core]) }

// Stats returns a copy of the counters.
func (a *Allocator) Stats() Stats { return a.stats }

// PagesFor proxies the spec's page math.
func (a *Allocator) PagesFor(b units.Bytes) int { return a.spec.PagesFor(b) }
