// Package check is the simulator's conservation-law invariant engine.
//
// The paper's credibility rests on its accounting adding up: every CPU
// cycle lands in exactly one Table-1 category and every byte is either
// delivered, dropped, queued, or in flight. This package provides the
// machinery to assert exactly that, continuously, while a simulation
// runs: a Checker owns a set of named audit rules (closures installed by
// internal/core over the live host pair) and evaluates them between
// simulation events — periodically on a timer and on demand at drain
// points. Rules are pure reads: they never charge cycles, draw random
// numbers, or mutate stack state, so a run behaves identically with
// checking on or off.
//
// A violation carries the simulated timestamp, the rule name, and a
// pointed diagnostic. By default the first violation aborts the run
// (panic with a *Failure, converted to an error at the API boundary);
// Collect mode accumulates violations instead, for tests that want to
// census them.
package check

import (
	"fmt"
	"time"

	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/sim"
)

// DefaultInterval is the periodic audit cadence when Options.Interval is
// zero. 500µs keeps dozens of audits inside even a short measurement
// window while staying far off the per-packet hot path.
const DefaultInterval = 500 * time.Microsecond

// DefaultMaxViolations bounds Collect-mode accumulation when
// Options.MaxViolations is zero.
const DefaultMaxViolations = 64

// Options configures a Checker.
type Options struct {
	// Interval between periodic audits; 0 = DefaultInterval.
	Interval time.Duration
	// Collect accumulates violations instead of failing fast on the first.
	Collect bool
	// MaxViolations caps Collect-mode accumulation (further violations are
	// dropped, keeping a broken run from flooding memory); 0 = 64.
	MaxViolations int
}

// Violation is one observed invariant breach.
type Violation struct {
	At     time.Duration // simulated time of the audit
	Rule   string        // name of the breached rule
	Detail string        // pointed diagnostic
}

// Error implements error.
func (v Violation) Error() string {
	return fmt.Sprintf("invariant %q violated at t=%v: %s", v.Rule, v.At, v.Detail)
}

// Failure is the panic payload of a fail-fast Checker; the simulation
// driver recovers it and returns the violation as an error.
type Failure struct {
	V Violation
}

// Error implements error.
func (f *Failure) Error() string { return f.V.Error() }

// FailFunc reports one violation from inside a rule.
type FailFunc func(format string, args ...any)

// Checker evaluates invariant rules against a running simulation.
type Checker struct {
	eng        *sim.Engine
	opts       Options
	rules      []rule
	violations []Violation
	started    bool
}

type rule struct {
	name string
	fn   func(FailFunc)
}

// New builds a Checker bound to eng.
func New(eng *sim.Engine, opts Options) *Checker {
	if eng == nil {
		panic("check: nil engine")
	}
	if opts.Interval == 0 {
		opts.Interval = DefaultInterval
	}
	if opts.Interval < 0 {
		panic("check: negative interval")
	}
	if opts.MaxViolations == 0 {
		opts.MaxViolations = DefaultMaxViolations
	}
	return &Checker{eng: eng, opts: opts}
}

// AddRule registers a named audit. fn must be a pure read of simulation
// state, reporting each breach through the supplied FailFunc.
func (c *Checker) AddRule(name string, fn func(FailFunc)) {
	if name == "" || fn == nil {
		panic("check: empty rule")
	}
	c.rules = append(c.rules, rule{name: name, fn: fn})
}

// Start arms the periodic audit timer. Call once, after all rules are
// registered.
func (c *Checker) Start() {
	if c.started {
		panic("check: Start called twice")
	}
	c.started = true
	var tick func()
	tick = func() {
		c.Audit()
		c.eng.After(c.opts.Interval, tick)
	}
	c.eng.After(c.opts.Interval, tick)
}

// Audit evaluates every rule now. Call it between simulation events (the
// periodic timer does; drain points after Engine.Run may too).
func (c *Checker) Audit() {
	for _, r := range c.rules {
		name := r.name
		r.fn(func(format string, args ...any) { c.report(name, format, args...) })
	}
}

func (c *Checker) report(rule, format string, args ...any) {
	v := Violation{
		At:     time.Duration(c.eng.Now()),
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
	}
	if !c.opts.Collect {
		panic(&Failure{V: v})
	}
	if len(c.violations) < c.opts.MaxViolations {
		c.violations = append(c.violations, v)
	}
}

// Violations returns the breaches accumulated in Collect mode.
func (c *Checker) Violations() []Violation { return c.violations }

// CycleLedger tallies charge-log lines into a per-category total. It is
// the checker's independent view of cycle accounting: the exec layer
// flushes each work item's charge log at the same instant the item's
// cycles merge into the core Breakdown, so a ledger fed from the charge
// log must reconcile exactly with System.TotalBreakdown at every event
// boundary — any drift means cycles were double-charged or lost.
type CycleLedger struct {
	total cpumodel.Breakdown
}

// Record folds one work item's charge log into the ledger.
func (l *CycleLedger) Record(log []exec.FlowCharge) {
	for _, e := range log {
		l.total.Add(e.Cat, e.Cycles)
	}
}

// Reset zeroes the ledger (warmup boundary, alongside ResetAccounting).
func (l *CycleLedger) Reset() { l.total = cpumodel.Breakdown{} }

// Total returns the accumulated per-category tally.
func (l *CycleLedger) Total() cpumodel.Breakdown { return l.total }
