package check

import (
	"strings"
	"testing"
	"time"

	"hostsim/internal/cpumodel"
	"hostsim/internal/exec"
	"hostsim/internal/sim"
	"hostsim/internal/units"
)

func TestNewDefaults(t *testing.T) {
	c := New(sim.NewEngine(1), Options{})
	if c.opts.Interval != DefaultInterval {
		t.Errorf("Interval = %v, want %v", c.opts.Interval, DefaultInterval)
	}
	if c.opts.MaxViolations != DefaultMaxViolations {
		t.Errorf("MaxViolations = %d, want %d", c.opts.MaxViolations, DefaultMaxViolations)
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	mustPanic(t, "nil engine", func() { New(nil, Options{}) })
	mustPanic(t, "negative interval", func() { New(sim.NewEngine(1), Options{Interval: -time.Second}) })
}

func TestAddRulePanicsOnEmpty(t *testing.T) {
	c := New(sim.NewEngine(1), Options{})
	mustPanic(t, "empty name", func() { c.AddRule("", func(FailFunc) {}) })
	mustPanic(t, "nil fn", func() { c.AddRule("x", nil) })
}

func TestFailFastPanicsWithFailure(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Options{})
	c.AddRule("always-broken", func(fail FailFunc) { fail("leaked %d widgets", 3) })
	defer func() {
		r := recover()
		f, ok := r.(*Failure)
		if !ok {
			t.Fatalf("recovered %T, want *Failure", r)
		}
		if f.V.Rule != "always-broken" || !strings.Contains(f.V.Detail, "leaked 3 widgets") {
			t.Errorf("unexpected violation: %+v", f.V)
		}
	}()
	c.Audit()
	t.Fatal("Audit did not panic")
}

func TestCollectAccumulatesAndCaps(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Options{Collect: true, MaxViolations: 2})
	c.AddRule("noisy", func(fail FailFunc) {
		fail("first")
		fail("second")
		fail("third") // over the cap: dropped
	})
	c.Audit()
	vs := c.Violations()
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2 (capped)", len(vs))
	}
	if vs[0].Detail != "first" || vs[1].Detail != "second" {
		t.Errorf("violations out of order: %+v", vs)
	}
}

func TestViolationCarriesSimulatedTime(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Options{Collect: true})
	c.AddRule("broken", func(fail FailFunc) { fail("boom") })
	eng.After(3*time.Millisecond, func() { c.Audit() })
	eng.Run(sim.Time(10 * time.Millisecond))
	vs := c.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	if vs[0].At != 3*time.Millisecond {
		t.Errorf("At = %v, want 3ms", vs[0].At)
	}
	if want := `invariant "broken" violated at t=3ms: boom`; vs[0].Error() != want {
		t.Errorf("Error() = %q, want %q", vs[0].Error(), want)
	}
}

func TestStartAuditsPeriodically(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Options{Collect: true, Interval: time.Millisecond, MaxViolations: 100})
	audits := 0
	c.AddRule("counter", func(FailFunc) { audits++ })
	c.Start()
	eng.Run(sim.Time(10*time.Millisecond + time.Microsecond))
	if audits != 10 {
		t.Errorf("got %d periodic audits over 10ms at 1ms cadence, want 10", audits)
	}
	mustPanic(t, "double Start", c.Start)
}

func TestCycleLedger(t *testing.T) {
	var l CycleLedger
	l.Record([]exec.FlowCharge{
		{Cat: cpumodel.DataCopy, Cycles: 100},
		{Cat: cpumodel.TCPIP, Cycles: 40},
		{Cat: cpumodel.DataCopy, Cycles: 11},
	})
	var want cpumodel.Breakdown
	want.Add(cpumodel.DataCopy, units.Cycles(111))
	want.Add(cpumodel.TCPIP, units.Cycles(40))
	if got := l.Total(); got != want {
		t.Errorf("Total = %v, want %v", got, want)
	}
	l.Reset()
	if got := l.Total(); got != (cpumodel.Breakdown{}) {
		t.Errorf("Total after Reset = %v, want zero", got)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}
