package fabric

import (
	"testing"
	"time"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/units"
)

func testCfg(ports int) Config {
	return Config{Ports: ports, LinkRate: 100 * units.Gbps, Delay: time.Microsecond}
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg(4).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Ports: 1, LinkRate: units.Gbps},
		{Ports: 4},
		{Ports: 4, LinkRate: units.Gbps, Delay: -time.Microsecond},
		{Ports: 4, LinkRate: units.Gbps, SharedBuffer: -1},
		{Ports: 4, LinkRate: units.Gbps, Alpha: -0.5},
		{Ports: 4, LinkRate: units.Gbps, ECNThreshold: -1},
		{Ports: 4, LinkRate: units.Gbps, LossRate: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

// TestPickPath pins the path hash: in range, deterministic, and spread
// across candidates (not constant) over a run of flow ids.
func TestPickPath(t *testing.T) {
	const n = 4
	seen := make(map[int]bool)
	for flow := skb.FlowID(1); flow <= 64; flow++ {
		p := PickPath(flow, n)
		if p < 0 || p >= n {
			t.Fatalf("PickPath(%d, %d) = %d out of range", flow, n, p)
		}
		if p != PickPath(flow, n) {
			t.Fatalf("PickPath(%d, %d) not deterministic", flow, n)
		}
		seen[p] = true
	}
	if len(seen) != n {
		t.Errorf("64 flows hashed onto only %d of %d paths", len(seen), n)
	}
}

// TestRoutingBothDirections pins the ingress-exclusion rule: one Register
// entry routes the flow's data frames from their source port AND its
// reverse-direction pure ACKs from the destination port.
func TestRoutingBothDirections(t *testing.T) {
	eng := sim.NewEngine(1)
	got := make(map[int]int) // delivery port -> frames
	fb := New(eng, testCfg(4), func(port int, f *skb.Frame) { got[port]++ })
	fb.Register(7, 1, 3)

	fb.Port(1).Send(&skb.Frame{Flow: 7, Len: 1000})           // data: 1 -> 3
	fb.Port(3).Send(&skb.Frame{Flow: 7, Ack: &skb.AckInfo{}}) // ACK back: 3 -> 1
	eng.Run(sim.Time(time.Millisecond))

	if got[3] != 1 || got[1] != 1 {
		t.Fatalf("deliveries per port = %v, want 1 each at ports 1 and 3", got)
	}
	if tot := fb.Totals(); tot.In != 2 || tot.Delivered != 2 {
		t.Fatalf("totals in=%d delivered=%d, want 2/2", tot.In, tot.Delivered)
	}
}

func TestRoutingPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	fb := New(eng, testCfg(4), func(int, *skb.Frame) {})
	fb.Register(1, 0, 2)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("duplicate route", func() { fb.Register(1, 0, 3) })
	expectPanic("self route", func() { fb.Register(2, 2, 2) })
	expectPanic("out of range", func() { fb.Register(3, 0, 9) })
	expectPanic("unrouted flow", func() { fb.Port(0).Send(&skb.Frame{Flow: 99, Len: 10}) })
}

// burst offers `frames` MTU-sized frames of one flow to an ingress port
// back to back and returns the fabric's drop count afterwards.
func offerIncast(t *testing.T, buffer units.Bytes, alpha float64, senders, frames int) (dropped int64, delivered int64) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := testCfg(senders + 1)
	cfg.SharedBuffer = buffer
	cfg.Alpha = alpha
	var got int64
	fb := New(eng, cfg, func(int, *skb.Frame) { got++ })
	for s := 0; s < senders; s++ {
		fb.Register(skb.FlowID(s+1), s+1, 0)
	}
	// Open loop: every sender offers its full burst at t=0, regardless of
	// what the switch drops — the fixed arrival schedule that makes
	// drop-count monotonicity a theorem rather than a tendency.
	for i := 0; i < frames; i++ {
		for s := 0; s < senders; s++ {
			fb.Port(s + 1).Send(&skb.Frame{Flow: skb.FlowID(s + 1), Seq: int64(i), Len: 1500})
		}
	}
	eng.Run(sim.Time(10 * time.Millisecond))
	tot := fb.Totals()
	return tot.BufDropped, tot.Delivered
}

// TestSharedBufferMonotonicity pins frame-for-frame dynamic-threshold
// behavior against a fixed (open-loop) arrival schedule: shrinking the
// shared buffer never drops fewer frames, the unbounded pool drops none,
// and dropped + delivered always equals offered.
func TestSharedBufferMonotonicity(t *testing.T) {
	const senders, frames = 7, 200
	offered := int64(senders * frames)
	prev := int64(-1)
	for _, buf := range []units.Bytes{0, 4 * units.MB, units.MB, 256 * units.KB, 64 * units.KB} {
		dropped, delivered := offerIncast(t, buf, 1.0, senders, frames)
		t.Logf("buffer %8v: dropped %4d delivered %4d", buf, dropped, delivered)
		if dropped+delivered != offered {
			t.Fatalf("buffer %v: dropped %d + delivered %d != offered %d", buf, dropped, delivered, offered)
		}
		if buf == 0 && dropped != 0 {
			t.Fatalf("unbounded buffer dropped %d frames", dropped)
		}
		if dropped < prev {
			t.Errorf("buffer %v dropped %d < larger buffer's %d", buf, dropped, prev)
		}
		prev = dropped
	}
}

// TestAlphaLoosensAdmission pins the dynamic-threshold scale factor: a
// larger alpha admits at least as many frames of the same burst.
func TestAlphaLoosensAdmission(t *testing.T) {
	const senders, frames = 7, 200
	prev := int64(-1)
	for _, alpha := range []float64{4, 1, 0.25} {
		dropped, _ := offerIncast(t, 512*units.KB, alpha, senders, frames)
		t.Logf("alpha %.2f: dropped %d", alpha, dropped)
		if dropped < prev {
			t.Errorf("alpha %.2f dropped %d < looser alpha's %d", alpha, dropped, prev)
		}
		prev = dropped
	}
}

// TestOccupancyBounded pins the admission invariant: with alpha <= 1 the
// shared pool's occupancy can never exceed the configured buffer, at any
// point of the burst.
func TestOccupancyBounded(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := testCfg(5)
	const buffer = 256 * units.KB
	cfg.SharedBuffer = buffer
	var fb *Fabric
	fb = New(eng, cfg, func(int, *skb.Frame) {
		if occ := fb.Occupancy(); occ > buffer {
			t.Fatalf("occupancy %v exceeds buffer %v", occ, buffer)
		}
	})
	for s := 0; s < 4; s++ {
		fb.Register(skb.FlowID(s+1), s+1, 0)
	}
	for i := 0; i < 400; i++ {
		for s := 0; s < 4; s++ {
			fb.Port(s + 1).Send(&skb.Frame{Flow: skb.FlowID(s + 1), Len: 1500})
			if occ := fb.Occupancy(); occ > buffer {
				t.Fatalf("occupancy %v exceeds buffer %v after send", occ, buffer)
			}
		}
	}
	eng.Run(sim.Time(10 * time.Millisecond))
}

// TestPortStatsConservation pins each port's ingress ledger: offered
// frames split exactly into forwarded and buffer-dropped, payload bytes
// included.
func TestPortStatsConservation(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := testCfg(3)
	cfg.SharedBuffer = 64 * units.KB
	fb := New(eng, cfg, func(int, *skb.Frame) {})
	fb.Register(1, 1, 0)
	fb.Register(2, 2, 0)
	for i := 0; i < 300; i++ {
		fb.Port(1).Send(&skb.Frame{Flow: 1, Len: 1500})
		fb.Port(2).Send(&skb.Frame{Flow: 2, Len: 1500})
	}
	eng.Run(sim.Time(10 * time.Millisecond))
	for i := 0; i < fb.Ports(); i++ {
		st := fb.Port(i).Stats()
		if st.In != st.Forwarded+st.BufDropped {
			t.Errorf("port %d: In %d != Forwarded %d + BufDropped %d", i, st.In, st.Forwarded, st.BufDropped)
		}
		if st.InPayload != st.ForwardedPayload+st.BufDroppedBytes {
			t.Errorf("port %d: payload ledger off: %v != %v + %v", i, st.InPayload, st.ForwardedPayload, st.BufDroppedBytes)
		}
	}
}
