// Package fabric models a single-stage switch (a top-of-rack) connecting
// N hosts. Each host attaches to one port: the port's ingress side
// accepts frames from the host's NIC at zero cost (cut-through — the
// fabric's internal crossbar is never the bottleneck), routes them by
// flow id, and hands them to the destination port's egress serializer, a
// plain wire.Link carrying the propagation delay, the optional ECN
// marking threshold and the optional Bernoulli loss.
//
// Congestion lives entirely in the egress queues. An optional shared
// buffer pool bounds their sum: a frame is admitted to egress queue q
// only while q's backlog stays below the dynamic threshold
// alpha * (B - total occupancy) (Choudhury–Hahne), the classic
// shared-memory switch policy — uncongested ports keep their queues,
// a single hot incast port is throttled before it starves the rest.
//
// Determinism contract: ingress routing and admission draw no random
// numbers and consume no simulated time; the only randomness is the
// egress links' loss draw (skipped entirely at LossRate 0) and the only
// event scheduling is the egress links' delivery. A 2-host fabric with
// unbounded buffer is therefore event-for-event identical to the direct
// two-host link.
package fabric

import (
	"fmt"
	"time"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/telemetry"
	"hostsim/internal/units"
	"hostsim/internal/wire"
)

// Config describes the switch.
type Config struct {
	// Ports is the number of attached hosts (>= 2).
	Ports int
	// LinkRate is each port's line rate.
	LinkRate units.BitRate
	// Delay is the host->switch->host propagation delay, charged once on
	// the egress link (the ingress hop is cut-through).
	Delay time.Duration
	// SharedBuffer bounds the sum of all egress backlogs (wire bytes);
	// 0 = unbounded (no admission drops).
	SharedBuffer units.Bytes
	// Alpha is the dynamic-threshold scale factor; 0 = 1.0. Larger alpha
	// lets one port monopolize more of the shared pool.
	Alpha float64
	// ECNThreshold CE-marks frames when their egress backlog exceeds this
	// many bytes; 0 = off.
	ECNThreshold units.Bytes
	// LossRate is each egress serializer's Bernoulli drop probability.
	LossRate float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Ports < 2 {
		return fmt.Errorf("fabric: %d ports (want >= 2)", c.Ports)
	}
	if c.LinkRate <= 0 {
		return fmt.Errorf("fabric: non-positive link rate")
	}
	if c.Delay < 0 {
		return fmt.Errorf("fabric: negative delay")
	}
	if c.SharedBuffer < 0 {
		return fmt.Errorf("fabric: negative shared buffer")
	}
	if c.Alpha < 0 {
		return fmt.Errorf("fabric: negative alpha")
	}
	if c.ECNThreshold < 0 {
		return fmt.Errorf("fabric: negative ECN threshold")
	}
	if c.LossRate < 0 || c.LossRate > 1 {
		return fmt.Errorf("fabric: loss rate outside [0,1]")
	}
	return nil
}

// IngressStats counts one port's ingress-side activity (frames arriving
// FROM the attached host).
type IngressStats struct {
	In               int64 // frames offered by the host's NIC
	InPayload        units.Bytes
	Forwarded        int64 // admitted to an egress queue
	ForwardedPayload units.Bytes
	BufDropped       int64 // shared-buffer (dynamic-threshold) drops
	BufDroppedBytes  units.Bytes
}

// DeliverFunc hands a frame leaving the fabric to the host on port.
type DeliverFunc func(port int, f *skb.Frame)

// Observer receives the fabric's ingress-side frame events — the INT-style
// stamp point. FrameIngress fires once per frame offered to ingress port
// src, after routing and the shared-buffer admission verdict (admitted is
// false for a dynamic-threshold drop). depth is the destination egress
// queue's backlog at the verdict — including the frame itself when it was
// admitted — and occupancy the shared buffer's fill at the same instant.
// For admitted frames the hook fires after the egress serializer accepted
// the frame, so the egress link's tap (mark/loss verdict) has already run.
// Observers must be pure reads: they may not mutate or retain the frame,
// so an observed run follows the exact trajectory of an unobserved one.
type Observer interface {
	FrameIngress(src, dst int, f *skb.Frame, admitted bool, depth, occupancy units.Bytes)
}

// Fabric is the switch: Ports ports, a static flow routing table, and
// the shared-buffer admission state.
type Fabric struct {
	cfg    Config
	alpha  float64
	ports  []*Port
	routes map[skb.FlowID][2]int // flow -> the two attached ports
	obs    Observer              // nil = observation off
}

// Port is one host attachment. It implements wire.Egress: the host NIC's
// Send lands on the ingress side; Out is the egress serializer toward the
// attached host.
type Port struct {
	fab   *Fabric
	id    int
	out   *wire.Link
	stats IngressStats
}

// New builds the switch. deliver is invoked for every frame leaving an
// egress link, tagged with the destination port.
func New(eng *sim.Engine, cfg Config, deliver DeliverFunc) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if eng == nil || deliver == nil {
		panic("fabric: nil engine or delivery callback")
	}
	fb := &Fabric{
		cfg:    cfg,
		alpha:  cfg.Alpha,
		ports:  make([]*Port, cfg.Ports),
		routes: make(map[skb.FlowID][2]int),
	}
	if fb.alpha == 0 {
		fb.alpha = 1
	}
	for i := range fb.ports {
		i := i
		p := &Port{fab: fb, id: i}
		p.out = wire.NewLink(eng, cfg.LinkRate, cfg.Delay, func(f *skb.Frame) { deliver(i, f) })
		if cfg.ECNThreshold > 0 {
			p.out.SetECNThreshold(cfg.ECNThreshold)
		}
		p.out.SetLossRate(cfg.LossRate)
		fb.ports[i] = p
	}
	return fb
}

// Config returns the switch configuration.
func (fb *Fabric) Config() Config { return fb.cfg }

// SetObserver installs the ingress-side frame observer (nil detaches).
// With no observer the ingress path pays only a pointer test per frame.
func (fb *Fabric) SetObserver(obs Observer) { fb.obs = obs }

// Ports returns the port count.
func (fb *Fabric) Ports() int { return len(fb.ports) }

// Port returns port i.
func (fb *Fabric) Port(i int) *Port { return fb.ports[i] }

// Occupancy is the shared buffer's current fill: the sum of all egress
// backlogs, in wire bytes. Integer arithmetic over link serializer state,
// so it is exact and deterministic.
func (fb *Fabric) Occupancy() units.Bytes {
	var total units.Bytes
	for _, p := range fb.ports {
		total += p.out.Backlog()
	}
	return total
}

// Register pins a flow to its two attached ports. Routing is symmetric:
// data frames enter at one end, the flow's reverse-direction pure ACKs at
// the other, and the egress is always "the port that isn't the ingress" —
// so one entry covers both travel directions. candidates lists the
// equal-cost egress choices toward the destination; today's single-stage
// fabric always has exactly one, but the selection is already a
// deterministic hash over the flow id (ECMP-ready for a multi-stage
// extension). Register returns the chosen port.
func (fb *Fabric) Register(flow skb.FlowID, srcPort int, candidates ...int) int {
	if len(candidates) == 0 {
		panic("fabric: no candidate egress port")
	}
	dst := candidates[PickPath(flow, len(candidates))]
	if srcPort < 0 || srcPort >= len(fb.ports) || dst < 0 || dst >= len(fb.ports) {
		panic(fmt.Sprintf("fabric: route %d->%d outside [0,%d)", srcPort, dst, len(fb.ports)))
	}
	if srcPort == dst {
		panic("fabric: flow routed to its own ingress port")
	}
	if _, dup := fb.routes[flow]; dup {
		panic(fmt.Sprintf("fabric: duplicate route for flow %d", flow))
	}
	fb.routes[flow] = [2]int{srcPort, dst}
	return dst
}

// PickPath deterministically selects one of n equal-cost paths for a flow:
// FNV-1a over the flow id's bytes, reduced mod n. Stable across runs and
// processes — no RNG, no map iteration.
func PickPath(flow skb.FlowID, n int) int {
	h := uint32(2166136261)
	for i := 0; i < 4; i++ {
		h ^= uint32(flow>>(8*i)) & 0xff
		h *= 16777619
	}
	return int(h % uint32(n))
}

// Rate implements wire.Egress: the port's line rate paces the host NIC's
// Tx pump exactly as a direct link would.
func (p *Port) Rate() units.BitRate { return p.fab.cfg.LinkRate }

// Send implements wire.Egress: ingress from the attached host. Routing
// and shared-buffer admission are instantaneous and draw no randomness;
// an admitted frame continues into the destination port's egress
// serializer, a rejected one is counted and abandoned (the frame pool
// checker accounts fabric drops like switch drops).
func (p *Port) Send(f *skb.Frame) {
	if f == nil {
		panic("fabric: nil frame")
	}
	fb := p.fab
	p.stats.In++
	p.stats.InPayload += f.Len
	r, ok := fb.routes[f.Flow]
	if !ok {
		panic(fmt.Sprintf("fabric: no route for flow %d (ingress port %d)", f.Flow, p.id))
	}
	dst := r[0]
	if dst == p.id {
		dst = r[1]
	}
	out := fb.ports[dst].out
	if b := fb.cfg.SharedBuffer; b > 0 {
		free := b - fb.Occupancy()
		if free < 0 {
			free = 0
		}
		if out.Backlog()+f.WireSize() > units.Bytes(fb.alpha*float64(free)) {
			p.stats.BufDropped++
			p.stats.BufDroppedBytes += f.Len
			if fb.obs != nil {
				fb.obs.FrameIngress(p.id, dst, f, false, out.Backlog(), fb.Occupancy())
			}
			return
		}
	}
	p.stats.Forwarded++
	p.stats.ForwardedPayload += f.Len
	out.Send(f)
	if fb.obs != nil {
		fb.obs.FrameIngress(p.id, dst, f, true, out.Backlog(), fb.Occupancy())
	}
}

// Out returns the port's egress serializer toward the attached host
// (for taps, checker audits and per-port stats).
func (p *Port) Out() *wire.Link { return p.out }

// ID returns the port number.
func (p *Port) ID() int { return p.id }

// Stats returns a copy of the ingress-side counters.
func (p *Port) Stats() IngressStats { return p.stats }

// FabricTotals aggregates the switch's activity across all ports: ingress
// frames, shared-buffer admission drops, egress loss drops, CE marks and
// delivered frames.
type FabricTotals struct {
	In              int64       // frames offered to ingress ports
	BufDropped      int64       // shared-buffer (dynamic-threshold) admission drops
	LossDropped     int64       // Bernoulli loss at the egress serializers
	Marked          int64       // CE marks
	Delivered       int64       // frames handed to the attached hosts
	BufDroppedBytes units.Bytes // payload bytes lost to admission drops
}

// Totals sums every port's ingress and egress counters.
func (fb *Fabric) Totals() FabricTotals {
	var t FabricTotals
	for _, p := range fb.ports {
		t.In += p.stats.In
		t.BufDropped += p.stats.BufDropped
		t.BufDroppedBytes += p.stats.BufDroppedBytes
		st := p.out.Stats()
		t.LossDropped += st.Dropped
		t.Marked += st.Marked
		t.Delivered += st.Delivered
	}
	return t
}

// RegisterTelemetry registers the switch's shared-buffer occupancy and
// per-port gauges (egress backlog plus the cumulative ingress/egress
// counters) into reg under prefix, e.g. "fabric/port003/backlog_bytes".
// Every probe is a pure read of switch state, following the telemetry
// gauge contract. No-op on a nil registry, like all telemetry hooks.
func (fb *Fabric) RegisterTelemetry(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Gauge(prefix+"occupancy_bytes", func() float64 { return float64(fb.Occupancy()) })
	for _, p := range fb.ports {
		p := p
		pp := fmt.Sprintf("%sport%03d/", prefix, p.id)
		reg.Gauge(pp+"backlog_bytes", func() float64 { return float64(p.out.Backlog()) })
		reg.Gauge(pp+"in_frames", func() float64 { return float64(p.stats.In) })
		reg.Gauge(pp+"buf_dropped", func() float64 { return float64(p.stats.BufDropped) })
		reg.Gauge(pp+"wire_dropped", func() float64 { return float64(p.out.Stats().Dropped) })
		reg.Gauge(pp+"marked", func() float64 { return float64(p.out.Stats().Marked) })
		reg.Gauge(pp+"delivered", func() float64 { return float64(p.out.Stats().Delivered) })
	}
}
