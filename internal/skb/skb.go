// Package skb models socket buffers and the segmentation/coalescing
// machinery that operates on them: wire frames, the in-kernel SKB unit,
// software segmentation (GSO) and generic receive offload (GRO).
//
// A Frame is what travels on the wire (one MTU-or-smaller unit, or a pure
// ACK); an SKB is the unit handed between stack layers. The receive path
// builds one SKB per frame in the driver and then GRO merges adjacent
// same-flow SKBs, up to 64KB, flushing at NAPI poll boundaries — exactly
// the dynamics whose per-flow batching collapse the paper studies in
// §3.5 (Fig. 8c).
package skb

import (
	"fmt"

	"hostsim/internal/cpumodel"
	"hostsim/internal/mem"
	"hostsim/internal/sim"
	"hostsim/internal/units"
)

// FlowID identifies a TCP connection (one direction of traffic).
type FlowID int32

// MaxGROSize is the largest SKB GRO will build (64KB, like Linux).
const MaxGROSize units.Bytes = 64 * units.KB

// MaxGROFlows is the number of flows GRO tracks concurrently before
// evicting the oldest entry (Linux's legacy gro_list bound).
const MaxGROFlows = 8

// Range is a half-open byte range [Start, End) in a flow's sequence space.
type Range struct {
	Start, End int64
}

// Len returns the range length.
func (r Range) Len() int64 { return r.End - r.Start }

// AckInfo is the TCP acknowledgment content carried by a pure-ACK frame.
type AckInfo struct {
	Cum     int64       // cumulative ack: all bytes < Cum received
	Window  units.Bytes // advertised receive window
	SACK    []Range     // up to 3 selective-ack ranges above Cum
	ECNEcho bool        // DCTCP congestion-experienced echo
}

// Frame is one unit on the wire.
type Frame struct {
	Flow  FlowID
	Seq   int64       // first payload byte's sequence number
	Len   units.Bytes // payload bytes (0 for a pure ACK)
	Ack   *AckInfo    // non-nil for pure ACKs
	CE    bool        // ECN congestion-experienced mark (set by a switch)
	Pages []mem.Page  // receive-side DMA pages (set by the receiving NIC)
	Born  sim.Time    // when NAPI processed this frame at the receiver

	// Lifecycle stamps for the profiler's per-packet latency breakdown
	// (Fig. 9) and the message tracer's tail attribution. Zero when
	// neither a profiler nor a message tracer is attached; plain field
	// writes so the stamps cost nothing on the hot path.
	WriteAt sim.Time // application wrote the first payload byte
	TCPTxAt sim.Time // TCP emitted the segment (left the send path)
	NICTxAt sim.Time // NIC put the frame on the wire
	WireAt  sim.Time // frame arrived at the receiving NIC's ring
}

// IsAck reports whether f is a pure acknowledgment.
func (f *Frame) IsAck() bool { return f.Ack != nil }

// WireSize returns the bytes the frame occupies on the wire, including a
// fixed 66-byte Ethernet+IP+TCP header overhead (14+20+20 + options/FCS).
func (f *Frame) WireSize() units.Bytes {
	const hdr = 66
	return f.Len + hdr
}

// SKB is the in-stack buffer unit: possibly several merged frames.
type SKB struct {
	Flow   FlowID
	Seq    int64
	Len    units.Bytes
	Frames int        // wire frames aggregated into this skb
	Pages  []mem.Page // backing pages (receive path)
	Ack    *AckInfo   // set on pure-ACK skbs
	CE     bool       // any merged frame carried a CE mark
	Born   sim.Time   // NAPI timestamp of the first frame (latency metric)

	// Lifecycle stamps inherited from the FIRST merged frame (like Born),
	// plus receive-side stamps set as the skb moves up the stack.
	WriteAt sim.Time // application write (first frame)
	TCPTxAt sim.Time // TCP transmit (first frame)
	NICTxAt sim.Time // NIC transmit (first frame)
	WireAt  sim.Time // wire arrival (first frame)
	GROAt   sim.Time // GRO flushed the skb toward the stack
	TCPRxAt sim.Time // TCP receive processing began
}

// End returns the sequence number one past the skb's last byte.
func (s *SKB) End() int64 { return s.Seq + int64(s.Len) }

func (s *SKB) String() string {
	return fmt.Sprintf("skb{flow %d seq %d len %d frames %d}", s.Flow, s.Seq, s.Len, s.Frames)
}

// FromFrame builds a driver-level SKB from one received frame.
func FromFrame(f *Frame) *SKB {
	return &SKB{
		Flow:    f.Flow,
		Seq:     f.Seq,
		Len:     f.Len,
		Frames:  1,
		Pages:   f.Pages,
		Ack:     f.Ack,
		CE:      f.CE,
		Born:    f.Born,
		WriteAt: f.WriteAt,
		TCPTxAt: f.TCPTxAt,
		NICTxAt: f.NICTxAt,
		WireAt:  f.WireAt,
	}
}

// Pool recycles SKB structs — and the page-slice capacity they carry —
// across the receive fast path. At 100Gbps with GRO the stack builds and
// destroys tens of thousands of SKBs per simulated millisecond; recycling
// them makes steady-state Rx processing allocation-free. A nil *Pool is
// valid and falls back to plain allocation, so tests and callers that do
// not care about allocation churn need no changes.
//
// Unlike FromFrame, Get on a non-nil Pool copies the frame's page refs
// into the SKB's own slice instead of aliasing the frame's; the frame can
// therefore be recycled (via FramePool) the moment Get returns.
type Pool struct {
	free []*SKB
	// Recycled/Fresh count Gets served from the pool vs heap-allocated.
	Recycled int64
	Fresh    int64
	// Puts counts SKBs returned to the pool.
	Puts int64
}

// Get builds a driver-level SKB from one received frame, reusing a pooled
// struct when available.
func (p *Pool) Get(f *Frame) *SKB {
	if p == nil {
		return FromFrame(f)
	}
	var s *SKB
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.Recycled++
	} else {
		s = &SKB{}
		p.Fresh++
	}
	s.Flow = f.Flow
	s.Seq = f.Seq
	s.Len = f.Len
	s.Frames = 1
	s.Pages = append(s.Pages[:0], f.Pages...)
	s.Ack = f.Ack
	s.CE = f.CE
	s.Born = f.Born
	s.WriteAt = f.WriteAt
	s.TCPTxAt = f.TCPTxAt
	s.NICTxAt = f.NICTxAt
	s.WireAt = f.WireAt
	return s
}

// Put returns a dead SKB to the pool. The caller must not touch s (or its
// Pages slice) afterwards. Put on a nil pool is a no-op.
func (p *Pool) Put(s *SKB) {
	if p == nil || s == nil {
		return
	}
	p.Puts++
	s.Pages = s.Pages[:0]
	s.Ack = nil
	s.CE = false
	s.Frames = 0
	s.WriteAt = 0
	s.TCPTxAt = 0
	s.NICTxAt = 0
	s.WireAt = 0
	s.GROAt = 0
	s.TCPRxAt = 0
	p.free = append(p.free, s)
}

// Held returns the number of pooled SKBs (tests).
func (p *Pool) Held() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// Outstanding returns the SKBs handed out but never returned. In a
// quiesced stack every one must be accounted for by a live queue, or it
// leaked.
func (p *Pool) Outstanding() int64 {
	if p == nil {
		return 0
	}
	return p.Recycled + p.Fresh - p.Puts
}

// FramePool recycles wire Frame structs for the transmit fast path (one
// Frame per MTU under TSO adds up quickly). Frames are Put back by the
// receiving NIC once GRO has absorbed them, so with bidirectional traffic
// a single pool shared by both hosts of a link stays balanced. A nil
// *FramePool allocates plainly.
type FramePool struct {
	free []*Frame
	acks []*AckInfo // recycled AckInfo records (see GetAck)
	// Gets/Puts count frames handed out and returned.
	Gets int64
	Puts int64
}

// GetAck returns a zeroed AckInfo, reusing a recycled record (and its SACK
// slice capacity) when available. AckInfos are born on one host's ACK
// path and die on the other's, so like frames they pool pair-wide.
func (p *FramePool) GetAck() *AckInfo {
	if p == nil {
		return &AckInfo{}
	}
	if n := len(p.acks); n > 0 {
		a := p.acks[n-1]
		p.acks[n-1] = nil
		p.acks = p.acks[:n-1]
		return a
	}
	return &AckInfo{}
}

// PutAck recycles a consumed AckInfo. The caller must not touch a (or its
// SACK slice) afterwards.
func (p *FramePool) PutAck(a *AckInfo) {
	if p == nil || a == nil {
		return
	}
	a.Cum = 0
	a.Window = 0
	a.SACK = a.SACK[:0]
	a.ECNEcho = false
	p.acks = append(p.acks, a)
}

// Get returns a zeroed frame (possibly retaining page-slice capacity from
// a previous life). The caller fills in the fields it needs.
func (p *FramePool) Get() *Frame {
	if p == nil {
		return &Frame{}
	}
	p.Gets++
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return f
	}
	return &Frame{}
}

// Put recycles a dead frame. The caller must not touch f afterwards.
func (p *FramePool) Put(f *Frame) {
	if p == nil || f == nil {
		return
	}
	p.Puts++
	f.Flow = 0
	f.Seq = 0
	f.Len = 0
	f.Ack = nil
	f.CE = false
	f.Pages = f.Pages[:0]
	f.Born = 0
	f.WriteAt = 0
	f.TCPTxAt = 0
	f.NICTxAt = 0
	f.WireAt = 0
	p.free = append(p.free, f)
}

// Held returns the number of pooled frames (tests).
func (p *FramePool) Held() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// Outstanding returns the frames handed out but never returned.
func (p *FramePool) Outstanding() int64 {
	if p == nil {
		return 0
	}
	return p.Gets - p.Puts
}

// SegmentSizes returns the wire-frame payload sizes produced by cutting
// total bytes into mss-sized chunks (the GSO/TSO split).
func SegmentSizes(total, mss units.Bytes) []units.Bytes {
	return AppendSegmentSizes(nil, total, mss)
}

// AppendSegmentSizes is SegmentSizes appending into dst, so hot callers
// can reuse a scratch slice across transmissions.
func AppendSegmentSizes(dst []units.Bytes, total, mss units.Bytes) []units.Bytes {
	if mss <= 0 {
		panic("skb: non-positive mss")
	}
	for total > 0 {
		c := mss
		if total < c {
			c = total
		}
		dst = append(dst, c)
		total -= c
	}
	return dst
}

// GRO is the generic receive offload engine: one per NIC Rx queue. It
// merges adjacent in-order frames of the same flow into large SKBs.
type GRO struct {
	costs *cpumodel.Costs
	skbs  *Pool      // nil = plain allocation
	fp    *FramePool // nil = frames are left for the GC
	// entries in arrival order (index 0 = oldest); at most MaxGROFlows.
	entries []*SKB
	// Merged/Flushed count SKBs for diagnostics.
	Merged  int64
	Flushed int64
}

// NewGRO returns a GRO engine charging costs from the given table.
func NewGRO(costs *cpumodel.Costs) *GRO {
	if costs == nil {
		panic("skb: nil cost table")
	}
	return &GRO{costs: costs}
}

// NewGROPooled is NewGRO drawing SKBs from skbs and recycling consumed
// frames into fp. Either pool may be nil. Frames are only recycled when
// skbs is non-nil: pooled Gets copy page refs out of the frame, whereas
// the FromFrame fallback aliases them, which would make frame reuse
// corrupt a live SKB.
func NewGROPooled(costs *cpumodel.Costs, skbs *Pool, fp *FramePool) *GRO {
	g := NewGRO(costs)
	g.skbs = skbs
	if skbs != nil {
		g.fp = fp
	}
	return g
}

// Receive offers one frame to GRO, charging CPU work to ch. Any SKBs
// flushed as a side effect (a completed 64KB aggregate, a non-mergeable
// predecessor, or an evicted flow) are appended to dst, which is returned.
// Pure ACKs bypass aggregation and are appended immediately.
func (g *GRO) Receive(ch cpumodel.Charger, f *Frame, dst []*SKB) []*SKB {
	if f.IsAck() {
		s := g.skbs.Get(f)
		g.fp.Put(f)
		return append(dst, s)
	}
	out := dst
	idx := -1
	for i, e := range g.entries {
		if e.Flow == f.Flow {
			idx = i
			break
		}
	}
	if idx >= 0 {
		e := g.entries[idx]
		if e.End() == f.Seq && e.Len+f.Len <= MaxGROSize {
			// Contiguous and within bound: merge. The page refs are copied
			// out, so the frame is dead and can be recycled.
			e.Len += f.Len
			e.Frames++
			e.Pages = append(e.Pages, f.Pages...)
			e.CE = e.CE || f.CE
			g.Merged++
			ch.Charge(cpumodel.Netdev, g.costs.GROMergeFrame)
			g.fp.Put(f)
			if e.Len == MaxGROSize {
				out = append(out, g.remove(idx))
			}
			return out
		}
		// Same flow but out of order or full: flush the old entry and
		// start fresh — this is how packet loss and interleaving destroy
		// GRO efficiency.
		out = append(out, g.remove(idx))
	} else if len(g.entries) >= MaxGROFlows {
		// Too many concurrent flows: evict the oldest entry.
		out = append(out, g.remove(0))
	}
	ch.Charge(cpumodel.Netdev, g.costs.GRONewFlow)
	g.entries = append(g.entries, g.skbs.Get(f))
	g.fp.Put(f)
	return out
}

// Flush drains all held entries into dst (called at the end of a NAPI
// poll) and returns the extended slice.
func (g *GRO) Flush(dst []*SKB) []*SKB {
	if len(g.entries) == 0 {
		return dst
	}
	g.Flushed += int64(len(g.entries))
	dst = append(dst, g.entries...)
	for i := range g.entries {
		g.entries[i] = nil
	}
	g.entries = g.entries[:0]
	return dst
}

// Held returns the number of in-progress entries.
func (g *GRO) Held() int { return len(g.entries) }

// HeldBytes returns the payload bytes parked in in-progress entries.
func (g *GRO) HeldBytes() units.Bytes {
	var b units.Bytes
	for _, e := range g.entries {
		b += e.Len
	}
	return b
}

func (g *GRO) remove(i int) *SKB {
	e := g.entries[i]
	g.entries = append(g.entries[:i], g.entries[i+1:]...)
	g.Flushed++
	return e
}
