// Package skb models socket buffers and the segmentation/coalescing
// machinery that operates on them: wire frames, the in-kernel SKB unit,
// software segmentation (GSO) and generic receive offload (GRO).
//
// A Frame is what travels on the wire (one MTU-or-smaller unit, or a pure
// ACK); an SKB is the unit handed between stack layers. The receive path
// builds one SKB per frame in the driver and then GRO merges adjacent
// same-flow SKBs, up to 64KB, flushing at NAPI poll boundaries — exactly
// the dynamics whose per-flow batching collapse the paper studies in
// §3.5 (Fig. 8c).
package skb

import (
	"fmt"

	"hostsim/internal/cpumodel"
	"hostsim/internal/mem"
	"hostsim/internal/sim"
	"hostsim/internal/units"
)

// FlowID identifies a TCP connection (one direction of traffic).
type FlowID int32

// MaxGROSize is the largest SKB GRO will build (64KB, like Linux).
const MaxGROSize units.Bytes = 64 * units.KB

// MaxGROFlows is the number of flows GRO tracks concurrently before
// evicting the oldest entry (Linux's legacy gro_list bound).
const MaxGROFlows = 8

// Range is a half-open byte range [Start, End) in a flow's sequence space.
type Range struct {
	Start, End int64
}

// Len returns the range length.
func (r Range) Len() int64 { return r.End - r.Start }

// AckInfo is the TCP acknowledgment content carried by a pure-ACK frame.
type AckInfo struct {
	Cum     int64       // cumulative ack: all bytes < Cum received
	Window  units.Bytes // advertised receive window
	SACK    []Range     // up to 3 selective-ack ranges above Cum
	ECNEcho bool        // DCTCP congestion-experienced echo
}

// Frame is one unit on the wire.
type Frame struct {
	Flow  FlowID
	Seq   int64       // first payload byte's sequence number
	Len   units.Bytes // payload bytes (0 for a pure ACK)
	Ack   *AckInfo    // non-nil for pure ACKs
	CE    bool        // ECN congestion-experienced mark (set by a switch)
	Pages []mem.Page  // receive-side DMA pages (set by the receiving NIC)
	Born  sim.Time    // when NAPI processed this frame at the receiver
}

// IsAck reports whether f is a pure acknowledgment.
func (f *Frame) IsAck() bool { return f.Ack != nil }

// WireSize returns the bytes the frame occupies on the wire, including a
// fixed 66-byte Ethernet+IP+TCP header overhead (14+20+20 + options/FCS).
func (f *Frame) WireSize() units.Bytes {
	const hdr = 66
	return f.Len + hdr
}

// SKB is the in-stack buffer unit: possibly several merged frames.
type SKB struct {
	Flow   FlowID
	Seq    int64
	Len    units.Bytes
	Frames int        // wire frames aggregated into this skb
	Pages  []mem.Page // backing pages (receive path)
	Ack    *AckInfo   // set on pure-ACK skbs
	CE     bool       // any merged frame carried a CE mark
	Born   sim.Time   // NAPI timestamp of the first frame (latency metric)
}

// End returns the sequence number one past the skb's last byte.
func (s *SKB) End() int64 { return s.Seq + int64(s.Len) }

func (s *SKB) String() string {
	return fmt.Sprintf("skb{flow %d seq %d len %d frames %d}", s.Flow, s.Seq, s.Len, s.Frames)
}

// FromFrame builds a driver-level SKB from one received frame.
func FromFrame(f *Frame) *SKB {
	return &SKB{
		Flow:   f.Flow,
		Seq:    f.Seq,
		Len:    f.Len,
		Frames: 1,
		Pages:  f.Pages,
		Ack:    f.Ack,
		CE:     f.CE,
		Born:   f.Born,
	}
}

// SegmentSizes returns the wire-frame payload sizes produced by cutting
// total bytes into mss-sized chunks (the GSO/TSO split).
func SegmentSizes(total, mss units.Bytes) []units.Bytes {
	if mss <= 0 {
		panic("skb: non-positive mss")
	}
	if total <= 0 {
		return nil
	}
	n := int((total + mss - 1) / mss)
	out := make([]units.Bytes, 0, n)
	for total > 0 {
		c := mss
		if total < c {
			c = total
		}
		out = append(out, c)
		total -= c
	}
	return out
}

// GRO is the generic receive offload engine: one per NIC Rx queue. It
// merges adjacent in-order frames of the same flow into large SKBs.
type GRO struct {
	costs *cpumodel.Costs
	// entries in arrival order (index 0 = oldest); at most MaxGROFlows.
	entries []*SKB
	// Merged/Flushed count SKBs for diagnostics.
	Merged  int64
	Flushed int64
}

// NewGRO returns a GRO engine charging costs from the given table.
func NewGRO(costs *cpumodel.Costs) *GRO {
	if costs == nil {
		panic("skb: nil cost table")
	}
	return &GRO{costs: costs}
}

// Receive offers one frame to GRO, charging CPU work to ch. It returns
// any SKBs flushed as a side effect (a completed 64KB aggregate, a
// non-mergeable predecessor, or an evicted flow). Pure ACKs bypass
// aggregation and are returned immediately.
func (g *GRO) Receive(ch cpumodel.Charger, f *Frame) []*SKB {
	if f.IsAck() {
		return []*SKB{FromFrame(f)}
	}
	var out []*SKB
	idx := -1
	for i, e := range g.entries {
		if e.Flow == f.Flow {
			idx = i
			break
		}
	}
	if idx >= 0 {
		e := g.entries[idx]
		if e.End() == f.Seq && e.Len+f.Len <= MaxGROSize {
			// Contiguous and within bound: merge.
			e.Len += f.Len
			e.Frames++
			e.Pages = append(e.Pages, f.Pages...)
			e.CE = e.CE || f.CE
			g.Merged++
			ch.Charge(cpumodel.Netdev, g.costs.GROMergeFrame)
			if e.Len == MaxGROSize {
				out = append(out, g.remove(idx))
			}
			return out
		}
		// Same flow but out of order or full: flush the old entry and
		// start fresh — this is how packet loss and interleaving destroy
		// GRO efficiency.
		out = append(out, g.remove(idx))
	} else if len(g.entries) >= MaxGROFlows {
		// Too many concurrent flows: evict the oldest entry.
		out = append(out, g.remove(0))
	}
	ch.Charge(cpumodel.Netdev, g.costs.GRONewFlow)
	g.entries = append(g.entries, FromFrame(f))
	return out
}

// Flush drains all held entries (called at the end of a NAPI poll).
func (g *GRO) Flush() []*SKB {
	if len(g.entries) == 0 {
		return nil
	}
	out := make([]*SKB, len(g.entries))
	copy(out, g.entries)
	g.entries = g.entries[:0]
	g.Flushed += int64(len(out))
	return out
}

// Held returns the number of in-progress entries.
func (g *GRO) Held() int { return len(g.entries) }

func (g *GRO) remove(i int) *SKB {
	e := g.entries[i]
	g.entries = append(g.entries[:i], g.entries[i+1:]...)
	g.Flushed++
	return e
}
