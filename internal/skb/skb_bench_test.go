package skb

import (
	"testing"

	"hostsim/internal/cpumodel"
	"hostsim/internal/units"
)

// BenchmarkGROSingleFlow measures the merge fast path (one flow, in
// order), the hot loop of every receive-side simulation.
func BenchmarkGROSingleFlow(b *testing.B) {
	g := NewGRO(cpumodel.Default())
	ch := cpumodel.Discard{}
	b.ReportAllocs()
	var seq int64
	for i := 0; i < b.N; i++ {
		g.Receive(ch, &Frame{Flow: 1, Seq: seq, Len: 8934}, nil)
		seq += 8934
		if i%64 == 63 {
			g.Flush(nil)
		}
	}
}

// BenchmarkGROInterleaved measures the all-to-all regime: many flows
// thrashing the 8-entry table.
func BenchmarkGROInterleaved(b *testing.B) {
	g := NewGRO(cpumodel.Default())
	ch := cpumodel.Discard{}
	seqs := make([]int64, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fl := FlowID(i % 24)
		g.Receive(ch, &Frame{Flow: fl, Seq: seqs[fl], Len: 8934}, nil)
		seqs[fl] += 8934
		if i%64 == 63 {
			g.Flush(nil)
		}
	}
}

// BenchmarkSegmentSizes measures the GSO/TSO split helper.
func BenchmarkSegmentSizes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SegmentSizes(64*units.KB, 8934)
	}
}

// BenchmarkGROPooledSingleFlow is the merge fast path with SKB and frame
// pooling — the configuration the NIC actually runs. Steady state should
// be allocation-free apart from occasional pages-slice growth.
func BenchmarkGROPooledSingleFlow(b *testing.B) {
	skbs, frames := &Pool{}, &FramePool{}
	g := NewGROPooled(cpumodel.Default(), skbs, frames)
	ch := cpumodel.Discard{}
	b.ReportAllocs()
	var seq int64
	for i := 0; i < b.N; i++ {
		f := frames.Get()
		f.Flow, f.Seq, f.Len = 1, seq, 8934
		seq += 8934
		for _, s := range g.Receive(ch, f, nil) {
			skbs.Put(s)
		}
		if i%64 == 63 {
			for _, s := range g.Flush(nil) {
				skbs.Put(s)
			}
		}
	}
}
