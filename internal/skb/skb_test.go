package skb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hostsim/internal/cpumodel"
	"hostsim/internal/mem"
	"hostsim/internal/units"
)

func frame(flow FlowID, seq int64, l units.Bytes) *Frame {
	return &Frame{Flow: flow, Seq: seq, Len: l,
		Pages: []mem.Page{{ID: 1}, {ID: 2}}}
}

func TestSegmentSizes(t *testing.T) {
	cases := []struct {
		total, mss units.Bytes
		want       []units.Bytes
	}{
		{0, 1500, nil},
		{-1, 1500, nil},
		{1000, 1500, []units.Bytes{1000}},
		{3000, 1500, []units.Bytes{1500, 1500}},
		{3100, 1500, []units.Bytes{1500, 1500, 100}},
		{65536, 8900, []units.Bytes{8900, 8900, 8900, 8900, 8900, 8900, 8900, 3236}},
	}
	for _, c := range cases {
		got := SegmentSizes(c.total, c.mss)
		if len(got) != len(c.want) {
			t.Errorf("SegmentSizes(%d,%d) = %v, want %v", c.total, c.mss, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SegmentSizes(%d,%d)[%d] = %d, want %d", c.total, c.mss, i, got[i], c.want[i])
			}
		}
	}
}

func TestSegmentSizesConserveBytes(t *testing.T) {
	f := func(total uint32, mssRaw uint16) bool {
		mss := units.Bytes(mssRaw%9000) + 1
		tot := units.Bytes(total % (1 << 20))
		var sum units.Bytes
		for _, s := range SegmentSizes(tot, mss) {
			if s <= 0 || s > mss {
				return false
			}
			sum += s
		}
		return sum == tot || (tot <= 0 && sum == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSegmentSizesPanicsOnBadMSS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mss=0 should panic")
		}
	}()
	SegmentSizes(100, 0)
}

func TestFrameWireSize(t *testing.T) {
	f := frame(1, 0, 1434)
	if f.WireSize() != 1500 {
		t.Errorf("WireSize = %d, want 1500", f.WireSize())
	}
}

func TestGROMergesContiguousSameFlow(t *testing.T) {
	g := NewGRO(cpumodel.Default())
	ch := cpumodel.Discard{}
	if out := g.Receive(ch, frame(1, 0, 9000), nil); len(out) != 0 {
		t.Fatalf("first frame should be held, got %d skbs", len(out))
	}
	if out := g.Receive(ch, frame(1, 9000, 9000), nil); len(out) != 0 {
		t.Fatalf("contiguous frame should merge, got %d skbs", len(out))
	}
	flushed := g.Flush(nil)
	if len(flushed) != 1 {
		t.Fatalf("Flush returned %d skbs, want 1", len(flushed))
	}
	s := flushed[0]
	if s.Len != 18000 || s.Frames != 2 || s.Seq != 0 {
		t.Errorf("merged skb = %v", s)
	}
	if len(s.Pages) != 4 {
		t.Errorf("merged skb has %d pages, want 4", len(s.Pages))
	}
}

func TestGRODoesNotMergeAcrossFlows(t *testing.T) {
	g := NewGRO(cpumodel.Default())
	ch := cpumodel.Discard{}
	g.Receive(ch, frame(1, 0, 1500), nil)
	g.Receive(ch, frame(2, 0, 1500), nil)
	flushed := g.Flush(nil)
	if len(flushed) != 2 {
		t.Fatalf("want 2 separate skbs, got %d", len(flushed))
	}
	for _, s := range flushed {
		if s.Frames != 1 {
			t.Errorf("cross-flow merge happened: %v", s)
		}
	}
}

func TestGROFlushesOnGap(t *testing.T) {
	g := NewGRO(cpumodel.Default())
	ch := cpumodel.Discard{}
	g.Receive(ch, frame(1, 0, 1500), nil)
	out := g.Receive(ch, frame(1, 3000, 1500), nil) // gap: 1500..3000 missing
	if len(out) != 1 || out[0].Len != 1500 || out[0].Seq != 0 {
		t.Fatalf("gap should flush the old entry, got %v", out)
	}
	flushed := g.Flush(nil)
	if len(flushed) != 1 || flushed[0].Seq != 3000 {
		t.Fatalf("new entry should hold the post-gap frame, got %v", flushed)
	}
}

func TestGROCapsAt64KB(t *testing.T) {
	g := NewGRO(cpumodel.Default())
	ch := cpumodel.Discard{}
	var done []*SKB
	var seq int64
	// 16 frames of 4096B = 64KB exactly: the 16th completes the aggregate.
	for i := 0; i < 16; i++ {
		done = append(done, g.Receive(ch, frame(1, seq, 4096), nil)...)
		seq += 4096
	}
	if len(done) != 1 {
		t.Fatalf("expected completed 64KB skb, got %d", len(done))
	}
	if done[0].Len != MaxGROSize || done[0].Frames != 16 {
		t.Errorf("aggregate = %v", done[0])
	}
	if g.Held() != 0 {
		t.Errorf("completed aggregate should leave no held entry, Held=%d", g.Held())
	}
}

func TestGROOverflowStartsNewEntry(t *testing.T) {
	g := NewGRO(cpumodel.Default())
	ch := cpumodel.Discard{}
	var out []*SKB
	var seq int64
	// 9000B jumbo frames: 7*9000=63000; the 8th would exceed 65536 so the
	// 63000 entry flushes and a fresh one starts.
	for i := 0; i < 8; i++ {
		out = append(out, g.Receive(ch, frame(1, seq, 9000), nil)...)
		seq += 9000
	}
	if len(out) != 1 || out[0].Len != 63000 || out[0].Frames != 7 {
		t.Fatalf("expected flushed 63000B skb, got %v", out)
	}
	rest := g.Flush(nil)
	if len(rest) != 1 || rest[0].Len != 9000 {
		t.Fatalf("remainder = %v", rest)
	}
}

func TestGROEvictsOldestFlowBeyondCapacity(t *testing.T) {
	g := NewGRO(cpumodel.Default())
	ch := cpumodel.Discard{}
	for fl := FlowID(0); fl < MaxGROFlows; fl++ {
		if out := g.Receive(ch, frame(fl, 0, 1500), nil); len(out) != 0 {
			t.Fatalf("flow %d should be held", fl)
		}
	}
	out := g.Receive(ch, frame(99, 0, 1500), nil)
	if len(out) != 1 || out[0].Flow != 0 {
		t.Fatalf("9th flow should evict flow 0, got %v", out)
	}
	if g.Held() != MaxGROFlows {
		t.Errorf("Held = %d, want %d", g.Held(), MaxGROFlows)
	}
}

func TestGROPureAckBypasses(t *testing.T) {
	g := NewGRO(cpumodel.Default())
	ch := cpumodel.Discard{}
	g.Receive(ch, frame(1, 0, 1500), nil)
	ack := &Frame{Flow: 1, Ack: &AckInfo{Cum: 100, Window: 1000}}
	out := g.Receive(ch, ack, nil)
	if len(out) != 1 || out[0].Ack == nil {
		t.Fatalf("ACK should pass straight through, got %v", out)
	}
	if g.Held() != 1 {
		t.Error("ACK must not disturb held data entries")
	}
}

func TestGROChargesNetdev(t *testing.T) {
	g := NewGRO(cpumodel.Default())
	var ch tally
	g.Receive(&ch, frame(1, 0, 1500), nil)
	g.Receive(&ch, frame(1, 1500, 1500), nil)
	if ch.got[cpumodel.Netdev] == 0 {
		t.Error("GRO work should charge Netdev")
	}
}

func TestGROCEPropagates(t *testing.T) {
	g := NewGRO(cpumodel.Default())
	ch := cpumodel.Discard{}
	g.Receive(ch, frame(1, 0, 1500), nil)
	f := frame(1, 1500, 1500)
	f.CE = true
	g.Receive(ch, f, nil)
	out := g.Flush(nil)
	if len(out) != 1 || !out[0].CE {
		t.Error("CE mark should survive merging")
	}
}

// Property: over any frame arrival pattern, GRO conserves bytes and frame
// counts, never merges across flows, never exceeds MaxGROSize, and every
// output skb covers a contiguous range.
func TestPropertyGROConservation(t *testing.T) {
	f := func(flows []uint8, lens []uint16) bool {
		g := NewGRO(cpumodel.Default())
		ch := cpumodel.Discard{}
		nextSeq := map[FlowID]int64{}
		inBytes := map[FlowID]units.Bytes{}
		inFrames := 0
		var outs []*SKB
		n := len(flows)
		if len(lens) < n {
			n = len(lens)
		}
		for i := 0; i < n; i++ {
			fl := FlowID(flows[i] % 12)
			l := units.Bytes(lens[i]%9000) + 1
			fr := frame(fl, nextSeq[fl], l)
			nextSeq[fl] += int64(l)
			inBytes[fl] += l
			inFrames++
			outs = append(outs, g.Receive(ch, fr, nil)...)
		}
		outs = append(outs, g.Flush(nil)...)
		outBytes := map[FlowID]units.Bytes{}
		outFrames := 0
		for _, s := range outs {
			if s.Len > MaxGROSize || s.Len <= 0 {
				return false
			}
			outBytes[s.Flow] += s.Len
			outFrames += s.Frames
		}
		if outFrames != inFrames {
			return false
		}
		for fl, b := range inBytes {
			if outBytes[fl] != b {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Interleaving many flows produces smaller aggregates than a single flow —
// the Fig. 8c effect at the GRO level.
func TestInterleavingShrinksAggregates(t *testing.T) {
	avg := func(nflows int) float64 {
		g := NewGRO(cpumodel.Default())
		ch := cpumodel.Discard{}
		seq := make([]int64, nflows)
		var outs []*SKB
		for round := 0; round < 240; round++ {
			fl := round % nflows
			outs = append(outs, g.Receive(ch, frame(FlowID(fl), seq[fl], 4096), nil)...)
			seq[fl] += 4096
			if round%16 == 15 { // NAPI poll boundary every 16 frames
				outs = append(outs, g.Flush(nil)...)
			}
		}
		outs = append(outs, g.Flush(nil)...)
		var total units.Bytes
		for _, s := range outs {
			total += s.Len
		}
		return float64(total) / float64(len(outs))
	}
	one := avg(1)
	many := avg(16)
	if one < 4*float64(many) {
		t.Errorf("single-flow aggregates (%.0fB) should dwarf 16-flow ones (%.0fB)", one, many)
	}
}

type tally struct{ got cpumodel.Breakdown }

func (t *tally) Charge(cat cpumodel.Category, c units.Cycles) { t.got.Add(cat, c) }

func TestPoolRecyclesSKBs(t *testing.T) {
	p := &Pool{}
	f := &Frame{Flow: 3, Seq: 100, Len: 500, CE: true,
		Pages: []mem.Page{{ID: 1}, {ID: 2}}, Born: 7}
	s := p.Get(f)
	if s.Flow != 3 || s.Seq != 100 || s.Len != 500 || !s.CE || s.Frames != 1 || s.Born != 7 {
		t.Fatalf("Get produced wrong skb: %+v", s)
	}
	if len(s.Pages) != 2 || s.Pages[0].ID != 1 {
		t.Fatalf("Get did not carry pages: %+v", s.Pages)
	}
	// Pool Gets copy the page refs; mutating the frame's slice must not
	// corrupt the SKB.
	f.Pages[0] = mem.Page{ID: 99}
	if s.Pages[0].ID != 1 {
		t.Error("Get aliased the frame's page slice")
	}
	p.Put(s)
	if p.Held() != 1 {
		t.Fatalf("Held = %d, want 1", p.Held())
	}
	s2 := p.Get(&Frame{Flow: 4, Seq: 0, Len: 10})
	if s2 != s {
		t.Error("Get did not reuse the pooled struct")
	}
	if s2.Ack != nil || s2.CE || len(s2.Pages) != 0 || s2.Flow != 4 {
		t.Errorf("recycled skb carries stale state: %+v", s2)
	}
	if p.Recycled != 1 || p.Fresh != 1 {
		t.Errorf("counters = recycled %d fresh %d, want 1/1", p.Recycled, p.Fresh)
	}
}

func TestPoolGetCopiesPages(t *testing.T) {
	p := &Pool{}
	p.Put(&SKB{}) // ensure the recycled path
	f := &Frame{Flow: 1, Len: 100, Pages: []mem.Page{{ID: 5}}}
	s := p.Get(f)
	f.Pages[0] = mem.Page{ID: 42}
	if s.Pages[0].ID != 5 {
		t.Error("pooled Get aliased the frame's page slice")
	}
}

func TestNilPoolsFallBack(t *testing.T) {
	var p *Pool
	var fp *FramePool
	f := &Frame{Flow: 1, Seq: 10, Len: 20}
	s := p.Get(f)
	if s == nil || s.Flow != 1 {
		t.Fatal("nil Pool Get should fall back to FromFrame")
	}
	p.Put(s)  // no-op
	fp.Put(f) // no-op
	g := fp.Get()
	if g == nil {
		t.Fatal("nil FramePool Get should allocate")
	}
	if p.Held() != 0 || fp.Held() != 0 {
		t.Error("nil pools should report zero held")
	}
}

func TestFramePoolClearsState(t *testing.T) {
	fp := &FramePool{}
	f := &Frame{Flow: 9, Seq: 5, Len: 3, CE: true, Born: 11,
		Ack: &AckInfo{Cum: 1}, Pages: []mem.Page{{ID: 1}}}
	fp.Put(f)
	g := fp.Get()
	if g != f {
		t.Fatal("FramePool did not recycle the struct")
	}
	if g.Flow != 0 || g.Seq != 0 || g.Len != 0 || g.CE || g.Born != 0 || g.Ack != nil || len(g.Pages) != 0 {
		t.Errorf("recycled frame carries stale state: %+v", g)
	}
	if cap(g.Pages) == 0 {
		t.Error("recycled frame should keep its page-slice capacity")
	}
}

// GRO with pools: frames are recycled as they are absorbed and steady
// state allocates nothing once the pools are primed.
func TestGROPooledRecyclesFrames(t *testing.T) {
	skbs, frames := &Pool{}, &FramePool{}
	g := NewGROPooled(cpumodel.Default(), skbs, frames)
	ch := cpumodel.Discard{}
	var seq int64
	for i := 0; i < 10; i++ {
		f := frames.Get()
		f.Flow, f.Seq, f.Len = 1, seq, 8934
		seq += 8934
		for _, s := range g.Receive(ch, f, nil) {
			skbs.Put(s)
		}
	}
	for _, s := range g.Flush(nil) {
		skbs.Put(s)
	}
	// Each Receive recycles the frame and the next Get reuses it, so a
	// single Frame struct serves the whole stream.
	if frames.Held() != 1 {
		t.Errorf("frames held = %d, want 1 (one struct circulating)", frames.Held())
	}
	// Steady state: no allocations per frame.
	allocs := testing.AllocsPerRun(200, func() {
		f := frames.Get()
		f.Flow, f.Seq, f.Len = 1, seq, 8934
		seq += 8934
		for _, s := range g.Receive(ch, f, nil) {
			skbs.Put(s)
		}
	})
	if allocs != 0 {
		t.Errorf("pooled GRO fast path allocates %v per frame, want 0", allocs)
	}
}

// GRO merge output must be identical with and without pooling.
func TestGROPooledMatchesUnpooled(t *testing.T) {
	type rec struct {
		flow   FlowID
		seq    int64
		length units.Bytes
		frames int
	}
	run := func(pooled bool) []rec {
		var g *GRO
		skbs, fp := &Pool{}, &FramePool{}
		if pooled {
			g = NewGROPooled(cpumodel.Default(), skbs, fp)
		} else {
			g = NewGRO(cpumodel.Default())
		}
		ch := cpumodel.Discard{}
		var out []rec
		emit := func(ss []*SKB) {
			for _, s := range ss {
				out = append(out, rec{s.Flow, s.Seq, s.Len, s.Frames})
				if pooled {
					skbs.Put(s)
				}
			}
		}
		seqs := map[FlowID]int64{}
		for i := 0; i < 300; i++ {
			fl := FlowID(i % 11) // > MaxGROFlows: exercises eviction
			f := &Frame{Flow: fl, Seq: seqs[fl], Len: 4000}
			if !pooled {
				emit(g.Receive(ch, f, nil))
			} else {
				pf := fp.Get()
				pf.Flow, pf.Seq, pf.Len = f.Flow, f.Seq, f.Len
				emit(g.Receive(ch, pf, nil))
			}
			seqs[fl] += 4000
			if i%40 == 39 {
				emit(g.Flush(nil))
			}
		}
		emit(g.Flush(nil))
		return out
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("pooled GRO emitted %d skbs, unpooled %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("skb %d differs: unpooled %+v pooled %+v", i, a[i], b[i])
		}
	}
}
