// Package wire models the path between the two hosts' NICs: a full-duplex
// 100Gbps link as two independent unidirectional serializers, with
// propagation delay, an optional random-drop switch (the paper's Fig. 9
// in-network congestion experiment), and an optional ECN marking threshold
// (for DCTCP).
package wire

import (
	"time"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/units"
)

// Egress is a NIC's attachment point to the network: either a direct
// point-to-point Link (the two-host testbed) or a switch-fabric ingress
// port. Send consumes the frame without charging CPU (transmission is
// "hardware"); Rate is the attachment's line rate, which the NIC uses to
// pace its Tx pump one frame at a time.
type Egress interface {
	Send(f *skb.Frame)
	Rate() units.BitRate
}

// Stats counts link activity.
type Stats struct {
	Sent      int64       // frames accepted for transmission
	Delivered int64       // frames handed to the receiver
	Dropped   int64       // frames lost at the switch
	Marked    int64       // frames CE-marked
	TxBytes   units.Bytes // wire bytes serialized (including headers)

	// Payload-byte mirrors of the frame counters, kept so byte
	// conservation (sent = delivered + dropped + in flight) can be
	// audited without multiplying frame counts by an assumed size.
	SentPayload      units.Bytes
	DeliveredPayload units.Bytes
	DroppedPayload   units.Bytes
}

// Link is one direction of the inter-host path. Frames serialize in FIFO
// order at the link rate, then propagate for Delay before delivery.
type Link struct {
	eng      *sim.Engine
	rate     units.BitRate
	delay    time.Duration
	deliver  func(*skb.Frame)
	lossRate float64
	// ecnThreshold marks frames CE when the serializer backlog exceeds
	// this many bytes (a proxy for switch queue depth). 0 disables ECN.
	ecnThreshold units.Bytes
	nextFree     sim.Time
	stats        Stats
	tap          func(f *skb.Frame, dropped bool) // nil = capture off
	deliverTap   func(f *skb.Frame)               // nil = delivery observer off
	deliverEv    func(any)                        // bound deliverFrame, allocated once

	// Frames past the switch but not yet delivered (serializing or
	// propagating). Audited by the conservation checker.
	inflightFrames  int64
	inflightPayload units.Bytes
}

// NewLink builds a link delivering frames to deliver.
func NewLink(eng *sim.Engine, rate units.BitRate, delay time.Duration, deliver func(*skb.Frame)) *Link {
	if eng == nil || deliver == nil {
		panic("wire: nil engine or delivery callback")
	}
	if rate <= 0 {
		panic("wire: non-positive link rate")
	}
	if delay < 0 {
		panic("wire: negative delay")
	}
	l := &Link{eng: eng, rate: rate, delay: delay, deliver: deliver}
	l.deliverEv = l.deliverFrame
	return l
}

// SetLossRate configures the switch's Bernoulli drop probability.
func (l *Link) SetLossRate(p float64) {
	if p < 0 || p > 1 {
		panic("wire: loss rate outside [0,1]")
	}
	l.lossRate = p
}

// SetECNThreshold enables CE marking when the serializer backlog exceeds
// thresh bytes. Zero disables marking.
func (l *Link) SetECNThreshold(thresh units.Bytes) {
	if thresh < 0 {
		panic("wire: negative ECN threshold")
	}
	l.ecnThreshold = thresh
}

// SetTap installs a frame observer (nil detaches), invoked once for every
// frame accepted by Send — after the ECN-marking and switch-drop decisions,
// so the callback sees the frame exactly as the wire does (dropped reports
// the switch's verdict). The tap must be a pure read: it may not mutate or
// retain the frame (delivered frames are recycled by the receiver), so a
// tapped run follows the exact trajectory of an untapped one. With no tap
// attached, Send pays only a pointer test.
func (l *Link) SetTap(tap func(f *skb.Frame, dropped bool)) { l.tap = tap }

// AddTap composes tap after any observer already installed, so independent
// subsystems (the inspector's capture, the fabric observatory) can watch
// the same link without clobbering each other — the same chaining contract
// as Conn.AddProbe. The composed tap is subject to the SetTap purity rules.
func (l *Link) AddTap(tap func(f *skb.Frame, dropped bool)) {
	if tap == nil {
		panic("wire: nil tap")
	}
	if prev := l.tap; prev != nil {
		l.tap = func(f *skb.Frame, dropped bool) {
			prev(f, dropped)
			tap(f, dropped)
		}
		return
	}
	l.tap = tap
}

// SetDeliverTap installs a delivery observer (nil detaches), invoked once
// for every frame handed to the receiver, immediately before delivery —
// the egress-edge counterpart of SetTap's switch-edge view, giving an
// observer both ends of the hop. Like a tap it must be a pure read: the
// receiver may recycle the frame the moment delivery completes. With no
// observer attached, delivery pays only a pointer test.
func (l *Link) SetDeliverTap(tap func(f *skb.Frame)) { l.deliverTap = tap }

// Rate returns the link rate.
func (l *Link) Rate() units.BitRate { return l.rate }

// Delay returns the propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// Stats returns a copy of the counters.
func (l *Link) Stats() Stats { return l.stats }

// InFlight reports the frames (and their payload bytes) accepted past the
// switch but not yet handed to the receiver.
func (l *Link) InFlight() (int64, units.Bytes) {
	return l.inflightFrames, l.inflightPayload
}

// Backlog returns the bytes' worth of serialization time still queued.
func (l *Link) Backlog() units.Bytes {
	now := l.eng.Now()
	if l.nextFree <= now {
		return 0
	}
	return units.Bytes(int64(l.nextFree-now) * int64(l.rate) / (8 * int64(time.Second)))
}

// Send enqueues f for transmission. Loss and marking are evaluated at the
// switch, i.e. after the frame has consumed wire time.
func (l *Link) Send(f *skb.Frame) {
	if f == nil {
		panic("wire: nil frame")
	}
	l.stats.Sent++
	l.stats.SentPayload += f.Len
	now := l.eng.Now()
	start := l.nextFree
	if start < now {
		start = now
	}
	ser := l.rate.Serialize(f.WireSize())
	l.nextFree = start.Add(ser)
	l.stats.TxBytes += f.WireSize()
	if l.ecnThreshold > 0 && l.Backlog() > l.ecnThreshold {
		f.CE = true
		l.stats.Marked++
	}
	dropped := l.lossRate > 0 && l.eng.Rand().Float64() < l.lossRate
	if l.tap != nil {
		l.tap(f, dropped)
	}
	if dropped {
		l.stats.Dropped++
		l.stats.DroppedPayload += f.Len
		return // consumed wire time, then died at the switch
	}
	l.inflightFrames++
	l.inflightPayload += f.Len
	l.eng.AtArg(l.nextFree.Add(l.delay), l.deliverEv, f)
}

// deliverFrame is the wire-delivery event. In-flight frames are immutable
// (only the receiver mutates frames, after delivery), so f.Len here equals
// its value at Send — but it is read before l.deliver, which may recycle f.
func (l *Link) deliverFrame(a any) {
	f := a.(*skb.Frame)
	pl := f.Len
	l.stats.Delivered++
	l.stats.DeliveredPayload += pl
	l.inflightFrames--
	l.inflightPayload -= pl
	if l.deliverTap != nil {
		l.deliverTap(f)
	}
	l.deliver(f)
}
