package wire

import (
	"testing"
	"time"

	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/units"
)

func dataFrame(l units.Bytes) *skb.Frame {
	return &skb.Frame{Flow: 1, Len: l}
}

func TestDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	var at sim.Time
	// 1434B payload -> 1500B wire = 120ns at 100Gbps, +2us propagation.
	l := NewLink(eng, 100*units.Gbps, 2*time.Microsecond, func(f *skb.Frame) { at = eng.Now() })
	l.Send(dataFrame(1434))
	eng.Run(sim.Time(time.Millisecond))
	want := sim.Time(120 + 2000)
	if at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestSerializationQueueing(t *testing.T) {
	eng := sim.NewEngine(1)
	var times []sim.Time
	l := NewLink(eng, 100*units.Gbps, 0, func(f *skb.Frame) { times = append(times, eng.Now()) })
	// Two 1434B frames sent back to back: second waits for the first.
	l.Send(dataFrame(1434))
	l.Send(dataFrame(1434))
	eng.Run(sim.Time(time.Millisecond))
	if len(times) != 2 {
		t.Fatalf("delivered %d frames", len(times))
	}
	if times[0] != 120 || times[1] != 240 {
		t.Errorf("times = %v, want [120 240]", times)
	}
}

func TestFIFOOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	var got []skb.FlowID
	l := NewLink(eng, 100*units.Gbps, time.Microsecond, func(f *skb.Frame) { got = append(got, f.Flow) })
	for i := 0; i < 10; i++ {
		f := dataFrame(9000)
		f.Flow = skb.FlowID(i)
		l.Send(f)
	}
	eng.Run(sim.Time(time.Millisecond))
	for i, fl := range got {
		if int(fl) != i {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
}

func TestLossRate(t *testing.T) {
	eng := sim.NewEngine(7)
	delivered := 0
	l := NewLink(eng, 100*units.Gbps, 0, func(f *skb.Frame) { delivered++ })
	l.SetLossRate(0.1)
	const n = 20000
	for i := 0; i < n; i++ {
		l.Send(dataFrame(1434))
	}
	eng.Run(sim.Time(time.Second))
	st := l.Stats()
	if st.Sent != n {
		t.Fatalf("Sent = %d", st.Sent)
	}
	lossFrac := float64(st.Dropped) / float64(n)
	if lossFrac < 0.08 || lossFrac > 0.12 {
		t.Errorf("observed loss %.4f, want ~0.1", lossFrac)
	}
	if int64(delivered) != st.Delivered || st.Delivered+st.Dropped != n {
		t.Errorf("conservation: delivered %d + dropped %d != %d", st.Delivered, st.Dropped, n)
	}
}

func TestZeroLossDeliversAll(t *testing.T) {
	eng := sim.NewEngine(1)
	delivered := 0
	l := NewLink(eng, 100*units.Gbps, 0, func(f *skb.Frame) { delivered++ })
	for i := 0; i < 1000; i++ {
		l.Send(dataFrame(9000))
	}
	eng.Run(sim.Time(time.Second))
	if delivered != 1000 {
		t.Errorf("delivered %d/1000", delivered)
	}
}

func TestECNMarking(t *testing.T) {
	eng := sim.NewEngine(1)
	marked := 0
	l := NewLink(eng, 100*units.Gbps, 0, func(f *skb.Frame) {
		if f.CE {
			marked++
		}
	})
	l.SetECNThreshold(30 * units.KB)
	// Burst of 100 jumbo frames: the backlog quickly exceeds 30KB, so the
	// later frames must be marked.
	for i := 0; i < 100; i++ {
		l.Send(dataFrame(9000))
	}
	eng.Run(sim.Time(time.Second))
	if marked < 50 {
		t.Errorf("marked %d/100, want most of the burst tail", marked)
	}
	if l.Stats().Marked != int64(marked) {
		t.Error("Marked stat disagrees with delivered CE frames")
	}
}

func TestNoECNWithoutThreshold(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 100*units.Gbps, 0, func(f *skb.Frame) {
		if f.CE {
			t.Error("frame marked with ECN disabled")
		}
	})
	for i := 0; i < 50; i++ {
		l.Send(dataFrame(9000))
	}
	eng.Run(sim.Time(time.Second))
}

func TestBacklog(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 100*units.Gbps, 0, func(f *skb.Frame) {})
	if l.Backlog() != 0 {
		t.Error("fresh link should have no backlog")
	}
	for i := 0; i < 10; i++ {
		l.Send(dataFrame(9000 - 66))
	}
	// 10 frames x 9000B wire = 90KB backlog at t=0.
	got := l.Backlog()
	if got < 80*units.KB || got > 92*units.KB {
		t.Errorf("Backlog = %v, want ~90KB", got)
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	cb := func(f *skb.Frame) {}
	for name, fn := range map[string]func(){
		"nil engine":    func() { NewLink(nil, units.Gbps, 0, cb) },
		"nil callback":  func() { NewLink(eng, units.Gbps, 0, nil) },
		"zero rate":     func() { NewLink(eng, 0, 0, cb) },
		"neg delay":     func() { NewLink(eng, units.Gbps, -1, cb) },
		"bad loss":      func() { NewLink(eng, units.Gbps, 0, cb).SetLossRate(1.5) },
		"neg threshold": func() { NewLink(eng, units.Gbps, 0, cb).SetECNThreshold(-1) },
		"nil frame":     func() { NewLink(eng, units.Gbps, 0, cb).Send(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestThroughputAtLineRate(t *testing.T) {
	eng := sim.NewEngine(1)
	var bytes units.Bytes
	l := NewLink(eng, 100*units.Gbps, time.Microsecond, func(f *skb.Frame) { bytes += f.Len })
	// Keep the link saturated for 1ms: send the next frame upon delivery.
	var send func()
	sent := 0
	send = func() {
		if eng.Now() > sim.Time(time.Millisecond) {
			return
		}
		l.Send(dataFrame(9000 - 66))
		sent++
		eng.After(l.Rate().Serialize(9000), send)
	}
	eng.At(0, func() { send() })
	eng.Run(sim.Time(2 * time.Millisecond))
	rate := units.RateOf(bytes, time.Millisecond+2*time.Microsecond)
	if g := rate.Gigabits(); g < 95 || g > 101 {
		t.Errorf("goodput = %.1fGbps, want ~99 (line rate minus headers)", g)
	}
}
