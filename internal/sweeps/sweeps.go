// Package sweeps runs parameter sweeps over the simulator and emits CSV
// rows, for plotting the paper's sensitivity curves (Fig. 3e/3f style) or
// custom exploration. It is the engine behind cmd/sweep, factored out so
// sweeps are testable and can fan out across CPU cores: rows are always
// emitted in grid order, so the CSV is byte-identical at any parallelism.
package sweeps

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"hostsim"
)

// Params configures a sweep.
type Params struct {
	Kind     string // "ring", "rxbuf", "flows", "loss"
	Pattern  string // flows sweep only (e.g. "one-to-one", "incast")
	Seed     int64
	Warmup   time.Duration
	Duration time.Duration
	// Jobs is the number of simulations run concurrently (<= 1 = serial).
	// The emitted CSV is identical at any value.
	Jobs int
}

// Kinds lists the supported sweep kinds.
func Kinds() []string { return []string{"ring", "rxbuf", "flows", "loss"} }

func (p Params) config(s hostsim.Stack) hostsim.Config {
	return hostsim.Config{Stack: s, Warmup: p.Warmup, Duration: p.Duration, Seed: p.Seed}
}

// Run executes the sweep and writes header + rows as CSV to w.
func Run(w io.Writer, p Params) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()

	var (
		header []string
		jobs   []hostsim.Job
		render func(i int, r *hostsim.Result) []string
	)
	switch p.Kind {
	case "ring":
		header = []string{"rxbuf_kb", "ring", "thpt_gbps", "tpc_gbps", "miss_rate"}
		type pt struct {
			bufKB int64
			ring  int
		}
		var grid []pt
		for _, bufKB := range []int64{0, 3200, 6400} {
			for _, ring := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
				grid = append(grid, pt{bufKB, ring})
				s := hostsim.AllOptimizations()
				s.RcvBufBytes = bufKB << 10
				s.RxDescriptors = ring
				jobs = append(jobs, hostsim.Job{
					Config:   p.config(s),
					Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
				})
			}
		}
		render = func(i int, r *hostsim.Result) []string {
			return []string{
				strconv.FormatInt(grid[i].bufKB, 10), strconv.Itoa(grid[i].ring),
				f(r.ThroughputGbps), f(r.ThroughputPerCoreGbps),
				f(r.Receiver.CacheMissRate),
			}
		}
	case "rxbuf":
		header = []string{"rxbuf_kb", "thpt_gbps", "lat_avg_us", "lat_p99_us", "miss_rate"}
		kbs := []int64{100, 200, 400, 800, 1600, 3200, 6400, 12800}
		for _, kb := range kbs {
			s := hostsim.AllOptimizations()
			s.RcvBufBytes = kb << 10
			jobs = append(jobs, hostsim.Job{
				Config:   p.config(s),
				Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
			})
		}
		render = func(i int, r *hostsim.Result) []string {
			return []string{
				strconv.FormatInt(kbs[i], 10), f(r.ThroughputGbps),
				f(float64(r.Receiver.LatencyAvg) / 1e3),
				f(float64(r.Receiver.LatencyP99) / 1e3),
				f(r.Receiver.CacheMissRate),
			}
		}
	case "flows":
		header = []string{"flows", "thpt_gbps", "tpc_gbps", "miss_rate", "skb_avg_kb"}
		counts := []int{1, 2, 4, 8, 12, 16, 20, 24}
		for _, n := range counts {
			wl := hostsim.LongFlowWorkload(hostsim.Pattern(p.Pattern), n)
			if n == 1 {
				wl = hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
			}
			jobs = append(jobs, hostsim.Job{
				Config:   p.config(hostsim.AllOptimizations()),
				Workload: wl,
			})
		}
		render = func(i int, r *hostsim.Result) []string {
			return []string{
				strconv.Itoa(counts[i]), f(r.ThroughputGbps), f(r.ThroughputPerCoreGbps),
				f(r.Receiver.CacheMissRate), f(r.Receiver.SKBAvgBytes / 1024),
			}
		}
	case "loss":
		header = []string{"loss", "thpt_gbps", "tpc_gbps", "retransmits", "miss_rate"}
		rates := []float64{0, 1e-5, 1e-4, 1.5e-4, 1e-3, 1.5e-3, 5e-3, 1.5e-2}
		for _, lr := range rates {
			c := p.config(hostsim.AllOptimizations())
			c.LossRate = lr
			jobs = append(jobs, hostsim.Job{
				Config:   c,
				Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
			})
		}
		render = func(i int, r *hostsim.Result) []string {
			return []string{
				strconv.FormatFloat(rates[i], 'g', -1, 64), f(r.ThroughputGbps),
				f(r.ThroughputPerCoreGbps), strconv.FormatInt(r.Sender.Retransmits, 10),
				f(r.Receiver.CacheMissRate),
			}
		}
	default:
		return fmt.Errorf("sweeps: unknown kind %q (want one of %v)", p.Kind, Kinds())
	}

	workers := p.Jobs
	if workers <= 0 {
		workers = 1
	}
	results, err := hostsim.RunMany(jobs, hostsim.WithParallelism(workers))
	if err != nil {
		return err
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, r := range results {
		if err := cw.Write(render(i, r)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
