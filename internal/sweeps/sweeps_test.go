package sweeps

import (
	"strings"
	"testing"
	"time"
)

func quick(kind string, jobs int) Params {
	return Params{
		Kind:     kind,
		Pattern:  "one-to-one",
		Seed:     7,
		Warmup:   3 * time.Millisecond,
		Duration: 5 * time.Millisecond,
		Jobs:     jobs,
	}
}

func TestUnknownKind(t *testing.T) {
	var b strings.Builder
	if err := Run(&b, quick("bogus", 1)); err == nil {
		t.Fatal("expected an error for an unknown kind")
	}
}

// TestSweepDeterminismAcrossJobs: the emitted CSV must be byte-identical
// whatever the parallelism.
func TestSweepDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs sweeps twice")
	}
	for _, kind := range []string{"rxbuf", "loss"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			var serial, parallel strings.Builder
			if err := Run(&serial, quick(kind, 1)); err != nil {
				t.Fatal(err)
			}
			if err := Run(&parallel, quick(kind, 8)); err != nil {
				t.Fatal(err)
			}
			if serial.String() != parallel.String() {
				t.Errorf("CSV differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s--- jobs=8 ---\n%s",
					serial.String(), parallel.String())
			}
			lines := strings.Split(strings.TrimSpace(serial.String()), "\n")
			if len(lines) < 2 {
				t.Fatalf("sweep produced no data rows:\n%s", serial.String())
			}
		})
	}
}

func TestAllKindsEmitRows(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every sweep kind")
	}
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			var b strings.Builder
			if err := Run(&b, quick(kind, 4)); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(b.String()), "\n")
			if len(lines) < 2 {
				t.Fatalf("no data rows:\n%s", b.String())
			}
			cols := strings.Count(lines[0], ",")
			for i, l := range lines[1:] {
				if strings.Count(l, ",") != cols {
					t.Errorf("row %d has wrong arity: %q", i+1, l)
				}
			}
		})
	}
}
