package sweeps

import (
	"strings"
	"testing"
	"time"
)

func quick(kind string, jobs int) Params {
	return Params{
		Kind:     kind,
		Pattern:  "one-to-one",
		Seed:     7,
		Warmup:   3 * time.Millisecond,
		Duration: 5 * time.Millisecond,
		Jobs:     jobs,
	}
}

func TestUnknownKind(t *testing.T) {
	var b strings.Builder
	if err := Run(&b, quick("bogus", 1)); err == nil {
		t.Fatal("expected an error for an unknown kind")
	}
}

// TestSweepDeterminismAcrossJobs: the emitted CSV must be byte-identical
// whatever the parallelism.
func TestSweepDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs sweeps twice")
	}
	for _, kind := range []string{"rxbuf", "loss"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			var serial, parallel strings.Builder
			if err := Run(&serial, quick(kind, 1)); err != nil {
				t.Fatal(err)
			}
			if err := Run(&parallel, quick(kind, 8)); err != nil {
				t.Fatal(err)
			}
			if serial.String() != parallel.String() {
				t.Errorf("CSV differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s--- jobs=8 ---\n%s",
					serial.String(), parallel.String())
			}
			lines := strings.Split(strings.TrimSpace(serial.String()), "\n")
			if len(lines) < 2 {
				t.Fatalf("sweep produced no data rows:\n%s", serial.String())
			}
		})
	}
}

// ringGrid returns the ring sweep's grid points in emission order:
// rx-buffer sizes outer, descriptor counts inner.
func ringGrid() [][]string {
	var out [][]string
	for _, bufKB := range []string{"0", "3200", "6400"} {
		for _, ring := range []string{"128", "256", "512", "1024", "2048", "4096", "8192"} {
			out = append(out, []string{bufKB, ring})
		}
	}
	return out
}

func singles(vals ...string) [][]string {
	out := make([][]string, len(vals))
	for i, v := range vals {
		out[i] = []string{v}
	}
	return out
}

// TestGridOrderAndRowEmission is the sweep contract, table-driven per
// kind: the exact CSV header, one data row per grid point, rows in grid
// order (identified by their leading grid cells), and every metric cell
// populated. It covers all of Kinds() — a new kind without a case here
// fails the final completeness check.
func TestGridOrderAndRowEmission(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every sweep kind")
	}
	cases := []struct {
		kind   string
		header string
		grid   [][]string // expected leading cells of each row, in order
	}{
		{
			kind:   "ring",
			header: "rxbuf_kb,ring,thpt_gbps,tpc_gbps,miss_rate",
			grid:   ringGrid(),
		},
		{
			kind:   "rxbuf",
			header: "rxbuf_kb,thpt_gbps,lat_avg_us,lat_p99_us,miss_rate",
			grid:   singles("100", "200", "400", "800", "1600", "3200", "6400", "12800"),
		},
		{
			kind:   "flows",
			header: "flows,thpt_gbps,tpc_gbps,miss_rate,skb_avg_kb",
			grid:   singles("1", "2", "4", "8", "12", "16", "20", "24"),
		},
		{
			kind:   "loss",
			header: "loss,thpt_gbps,tpc_gbps,retransmits,miss_rate",
			grid:   singles("0", "1e-05", "0.0001", "0.00015", "0.001", "0.0015", "0.005", "0.015"),
		},
	}
	covered := map[string]bool{}
	for _, tc := range cases {
		tc := tc
		covered[tc.kind] = true
		t.Run(tc.kind, func(t *testing.T) {
			t.Parallel()
			var b strings.Builder
			if err := Run(&b, quick(tc.kind, 4)); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(b.String()), "\n")
			if lines[0] != tc.header {
				t.Fatalf("header = %q, want %q", lines[0], tc.header)
			}
			rows := lines[1:]
			if len(rows) != len(tc.grid) {
				t.Fatalf("emitted %d rows, want one per grid point (%d)", len(rows), len(tc.grid))
			}
			nCols := strings.Count(tc.header, ",") + 1
			for i, row := range rows {
				cells := strings.Split(row, ",")
				if len(cells) != nCols {
					t.Errorf("row %d has %d cells, want %d: %q", i, len(cells), nCols, row)
					continue
				}
				for j, want := range tc.grid[i] {
					if cells[j] != want {
						t.Errorf("row %d out of grid order: column %d = %q, want %q (row %q)",
							i, j, cells[j], want, row)
					}
				}
				for j := len(tc.grid[i]); j < nCols; j++ {
					if cells[j] == "" {
						t.Errorf("row %d metric column %d empty: %q", i, j, row)
					}
				}
			}
		})
	}
	for _, kind := range Kinds() {
		if !covered[kind] {
			t.Errorf("sweep kind %q has no grid-order case in this test", kind)
		}
	}
}
