package topology

import (
	"testing"

	"hostsim/internal/units"
)

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestDefaultMatchesPaperTestbed(t *testing.T) {
	m := Default()
	if m.NumCores() != 24 {
		t.Errorf("NumCores = %d, want 24", m.NumCores())
	}
	if m.NUMANodes != 4 || m.CoresPerNode != 6 {
		t.Errorf("geometry %dx%d, want 4x6", m.NUMANodes, m.CoresPerNode)
	}
	if m.Frequency != units.Frequency(3.4e9) {
		t.Errorf("Frequency = %d, want 3.4GHz", m.Frequency)
	}
	// DCA capacity ~3MB (paper: "DCA can only use 18% (~3 MB) of the L3").
	dca := m.DCACapacity()
	if dca < units.Bytes(3.5e6) || dca > units.Bytes(3.9e6) {
		t.Errorf("DCACapacity = %v, want ~3.6MB (18%% of 20MB)", dca)
	}
	if m.LinkRate != 100*units.Gbps {
		t.Errorf("LinkRate = %v, want 100Gbps", m.LinkRate)
	}
}

func TestNodeOf(t *testing.T) {
	m := Default()
	cases := []struct{ core, node int }{
		{0, 0}, {5, 0}, {6, 1}, {11, 1}, {12, 2}, {23, 3},
	}
	for _, c := range cases {
		if got := m.NodeOf(c.core); got != c.node {
			t.Errorf("NodeOf(%d) = %d, want %d", c.core, got, c.node)
		}
	}
}

func TestNodeOfPanicsOutOfRange(t *testing.T) {
	m := Default()
	for _, core := range []int{-1, 24} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NodeOf(%d) should panic", core)
				}
			}()
			m.NodeOf(core)
		}()
	}
}

func TestCoresOnNode(t *testing.T) {
	m := Default()
	got := m.CoresOnNode(1)
	want := []int{6, 7, 8, 9, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("CoresOnNode(1) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CoresOnNode(1)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNICLocal(t *testing.T) {
	m := Default()
	if !m.NICLocal(0) || !m.NICLocal(5) {
		t.Error("cores 0..5 should be NIC-local")
	}
	if m.NICLocal(6) || m.NICLocal(23) {
		t.Error("cores off node 0 should not be NIC-local")
	}
}

func TestPagesFor(t *testing.T) {
	m := Default()
	cases := []struct {
		b    units.Bytes
		want int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {4096, 1}, {4097, 2}, {9000, 3}, {65536, 16},
	}
	for _, c := range cases {
		if got := m.PagesFor(c.b); got != c.want {
			t.Errorf("PagesFor(%d) = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	mut := []func(*MachineSpec){
		func(m *MachineSpec) { m.NUMANodes = 0 },
		func(m *MachineSpec) { m.CoresPerNode = -1 },
		func(m *MachineSpec) { m.Frequency = 0 },
		func(m *MachineSpec) { m.L3PerNode = 0 },
		func(m *MachineSpec) { m.DCAFraction = 0 },
		func(m *MachineSpec) { m.DCAFraction = 1.5 },
		func(m *MachineSpec) { m.PageSize = 0 },
		func(m *MachineSpec) { m.NICNode = 4 },
		func(m *MachineSpec) { m.NICNode = -1 },
		func(m *MachineSpec) { m.LinkRate = 0 },
		func(m *MachineSpec) { m.OneWayDelay = -1 },
	}
	for i, f := range mut {
		m := Default()
		f(&m)
		if m.Validate() == nil {
			t.Errorf("mutation %d should invalidate spec", i)
		}
	}
}

// TestDefaultL3PerNode pins the testbed's L3 capacity: exactly 20MB per
// socket (the Xeon Gold 6234's 24.75MB rounded to the paper's working
// figure). Guards against the expression regressing into a silent
// scaling no-op again.
func TestDefaultL3PerNode(t *testing.T) {
	if got, want := Default().L3PerNode, 20*units.MB; got != want {
		t.Errorf("Default().L3PerNode = %v, want %v", got, want)
	}
}
