// Package topology describes the simulated machine: sockets, cores, NUMA
// nodes, cache geometry, and the access link. The default spec mirrors the
// paper's testbed — two 4-socket Intel Xeon Gold 6128 servers (6 cores per
// socket at 3.4GHz, 20MB L3 per socket), a 100Gbps NIC attached to NUMA
// node 0, and DDIO able to use ~18% of the NIC-local L3 (~3MB).
package topology

import (
	"fmt"

	"hostsim/internal/units"
)

// MachineSpec describes one host.
type MachineSpec struct {
	NUMANodes    int             // number of NUMA nodes (sockets)
	CoresPerNode int             // cores per node
	Frequency    units.Frequency // core clock
	L3PerNode    units.Bytes     // L3 capacity per node
	DCAFraction  float64         // fraction of NIC-local L3 usable by DDIO
	PageSize     units.Bytes     // kernel page size
	NICNode      int             // NUMA node the NIC is attached to
	LinkRate     units.BitRate   // access link bandwidth
	OneWayDelay  int64           // wire propagation one-way, nanoseconds
}

// Default returns the paper's testbed host.
func Default() MachineSpec {
	return MachineSpec{
		NUMANodes:    4,
		CoresPerNode: 6,
		Frequency:    units.Frequency(3.4e9),
		// 20MB per socket. (A historical `/ 4 * 4` here was a left-right
		// no-op — 20MB is already 4KB-page aligned — and is gone; the
		// value is pinned by TestDefaultL3PerNode.)
		L3PerNode:   20 * units.MB,
		DCAFraction: 0.18,
		PageSize:    4 * units.KB,
		NICNode:     0,
		LinkRate:    100 * units.Gbps,
		OneWayDelay: 2000, // 2us: direct-attached 100G link
	}
}

// Validate reports whether the spec is internally consistent.
func (m MachineSpec) Validate() error {
	switch {
	case m.NUMANodes <= 0:
		return fmt.Errorf("topology: NUMANodes = %d, want > 0", m.NUMANodes)
	case m.CoresPerNode <= 0:
		return fmt.Errorf("topology: CoresPerNode = %d, want > 0", m.CoresPerNode)
	case m.Frequency <= 0:
		return fmt.Errorf("topology: Frequency = %d, want > 0", m.Frequency)
	case m.L3PerNode <= 0:
		return fmt.Errorf("topology: L3PerNode = %d, want > 0", m.L3PerNode)
	case m.DCAFraction <= 0 || m.DCAFraction > 1:
		return fmt.Errorf("topology: DCAFraction = %v, want (0,1]", m.DCAFraction)
	case m.PageSize <= 0:
		return fmt.Errorf("topology: PageSize = %d, want > 0", m.PageSize)
	case m.NICNode < 0 || m.NICNode >= m.NUMANodes:
		return fmt.Errorf("topology: NICNode = %d, want 0..%d", m.NICNode, m.NUMANodes-1)
	case m.LinkRate <= 0:
		return fmt.Errorf("topology: LinkRate = %d, want > 0", m.LinkRate)
	case m.OneWayDelay < 0:
		return fmt.Errorf("topology: OneWayDelay = %d, want >= 0", m.OneWayDelay)
	}
	return nil
}

// NumCores returns the total core count.
func (m MachineSpec) NumCores() int { return m.NUMANodes * m.CoresPerNode }

// NodeOf returns the NUMA node of a core id. Cores are numbered
// node-major: cores [0, CoresPerNode) are node 0, and so on, matching how
// the paper pins applications.
func (m MachineSpec) NodeOf(core int) int {
	if core < 0 || core >= m.NumCores() {
		panic(fmt.Sprintf("topology: core %d out of range [0,%d)", core, m.NumCores()))
	}
	return core / m.CoresPerNode
}

// CoresOnNode returns the core ids belonging to a node.
func (m MachineSpec) CoresOnNode(node int) []int {
	if node < 0 || node >= m.NUMANodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", node, m.NUMANodes))
	}
	out := make([]int, m.CoresPerNode)
	for i := range out {
		out[i] = node*m.CoresPerNode + i
	}
	return out
}

// NICLocal reports whether core is on the NIC-attached NUMA node.
func (m MachineSpec) NICLocal(core int) bool { return m.NodeOf(core) == m.NICNode }

// DCACapacity returns the DDIO-usable bytes of the NIC-local L3.
func (m MachineSpec) DCACapacity() units.Bytes {
	return units.Bytes(float64(m.L3PerNode) * m.DCAFraction)
}

// PagesFor returns how many pages back a buffer of b bytes.
func (m MachineSpec) PagesFor(b units.Bytes) int {
	if b <= 0 {
		return 0
	}
	return int((b + m.PageSize - 1) / m.PageSize)
}
