// Package cpumodel defines the CPU accounting taxonomy and the calibrated
// per-operation cycle cost model used by the simulator.
//
// The taxonomy is Table 1 of the paper ("Understanding Host Network Stack
// Overheads", SIGCOMM 2021): every cycle a simulated core spends is charged
// to exactly one of eight categories, so the paper's CPU-breakdown figures
// can be regenerated directly from the accounting.
//
// The cost table holds effective cycle costs per operation or per byte.
// The constants are calibrated (see EXPERIMENTS.md) so that the paper's
// headline single-flow numbers land in-band — ~42Gbps throughput-per-core
// with data copy ~49% of receiver cycles — and all other results are left
// to emerge from the simulated mechanisms. Each constant carries a comment
// stating what it stands for and, where available, the Linux-measurement
// intuition behind its magnitude.
package cpumodel

import (
	"fmt"
	"math"
	"reflect"
	"sort"

	"hostsim/internal/units"
)

// Category is one bucket of the paper's Table-1 CPU usage taxonomy.
type Category int

// The eight categories of Table 1.
const (
	// DataCopy covers copy_user_enhanced_fast_string and friends: payload
	// transfer between userspace and kernel buffers.
	DataCopy Category = iota
	// TCPIP covers all packet processing in the TCP/IP layers.
	TCPIP
	// Netdev covers the network device subsystem and driver operations:
	// NAPI polling, GSO/GRO, qdisc.
	Netdev
	// SKBMgmt covers functions that build, split and release skbs.
	SKBMgmt
	// Memory covers skb and page allocation/deallocation, page-pool and
	// IOMMU map/unmap work.
	Memory
	// Lock covers lock-related operations (socket spinlocks etc).
	Lock
	// Sched covers scheduling and context switching among threads.
	Sched
	// Etc covers the remaining functions: IRQ handling, syscall
	// entry/exit, timers.
	Etc

	// NumCategories is the number of accounting buckets.
	NumCategories int = iota
)

var categoryNames = [NumCategories]string{
	"data_copy", "tcp/ip", "netdev", "skb_mgmt", "memory", "lock", "sched", "etc",
}

func (c Category) String() string {
	if c < 0 || int(c) >= NumCategories {
		return "invalid"
	}
	return categoryNames[c]
}

// Categories lists all categories in display order.
func Categories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// A Charger receives cycle charges. The exec package's work context
// implements it; lower-level subsystems (memory, cache, skb) charge costs
// through this interface so they stay decoupled from CPU scheduling.
type Charger interface {
	Charge(cat Category, c units.Cycles)
}

// Discard is a Charger that drops all charges; useful in tests and for
// warm-up phases that should not pollute accounting.
type Discard struct{}

// Charge implements Charger by doing nothing.
func (Discard) Charge(Category, units.Cycles) {}

// Costs is the calibrated cycle-cost table. All scalar costs are in CPU
// cycles at the machine frequency; per-byte costs are fractional cycles
// per byte.
type Costs struct {
	// ---- Data copy (per byte). A DDIO hit streams from L3; misses go to
	// DRAM; a copy whose source pages live on a remote NUMA node pays the
	// interconnect. SenderWarm is the sender-side copy of an
	// application buffer that is resident in the local cache.
	CopyHit        units.PerByte // userspace copy, source in local L3 (DDIO hit)
	CopyMissLocal  units.PerByte // userspace copy, source in local-node DRAM
	CopyMissRemote units.PerByte // userspace copy, source in remote-node DRAM
	CopySenderWarm units.PerByte // sender-side copy user->kernel, warm cache

	// ---- TCP/IP protocol processing (per skb handed to/from the stack).
	TCPRxPerSKB   units.Cycles // tcp_v4_rcv fast path, per skb delivered up
	TCPTxPerSKB   units.Cycles // tcp_sendmsg/tcp_write_xmit path, per skb
	TCPRxOOO      units.Cycles // out-of-order queueing extra, per OOO skb
	ACKGenerate   units.Cycles // building + sending an ACK at the receiver
	ACKProcess    units.Cycles // processing one (possibly cumulative) ACK
	DupACKExtra   units.Cycles // extra work for a duplicate ACK w/ SACK info
	Retransmit    units.Cycles // retransmission bookkeeping per segment
	CCUpdate      units.Cycles // congestion-control hook per ACK (cubic etc)
	RxBufAutotune units.Cycles // receive-buffer DRS evaluation, per RTT

	// ---- Netdevice subsystem / driver.
	RPSSteer      units.Cycles // software steering: backlog enqueue + IPI to the target core
	NAPIPollBase  units.Cycles // fixed NAPI poll invocation overhead
	NAPIPerFrame  units.Cycles // per-frame driver Rx work within a poll
	GROMergeFrame units.Cycles // merging one frame into a GRO skb
	GRONewFlow    units.Cycles // starting a fresh GRO entry / flush probe
	GSOSegment    units.Cycles // software-segmenting one MTU chunk (TSO off)
	QdiscEnqueue  units.Cycles // qdisc/driver Tx enqueue per skb
	TxDoorbell    units.Cycles // ringing the NIC doorbell / DMA mapping per skb
	TxComplete    units.Cycles // Tx completion softirq batch (TSQ free)
	PacerRelease  units.Cycles // qdisc pacing timer release (BBR), per burst

	// ---- skb management.
	SKBBuild   units.Cycles // build_skb/init from a DMA buffer, per frame
	SKBSplit   units.Cycles // splitting an skb (GSO path), per fragment
	SKBRelease units.Cycles // tearing down an skb, per skb

	// ---- Memory management.
	SKBAlloc        units.Cycles // kmem_cache alloc of skb head, per skb
	SKBFree         units.Cycles // kmem_cache free, per skb
	PageAllocPCP    units.Cycles // page from per-core pageset
	PageAllocGlobal units.Cycles // page from global buddy allocator
	PageFreePCP     units.Cycles // page returned to per-core pageset
	PageFreeGlobal  units.Cycles // page returned to buddy
	PageFreeRemote  units.Cycles // extra cost freeing a remote-node page
	IOMMUMap        units.Cycles // IOMMU domain insert, per page
	IOMMUUnmap      units.Cycles // IOMMU unmap + IOTLB flush share, per page
	ZCTxPin         units.Cycles // MSG_ZEROCOPY get_user_pages, per page
	ZCTxComplete    units.Cycles // MSG_ZEROCOPY completion notification, per send
	ZCRxMap         units.Cycles // TCP receive zerocopy page remap, per page

	// ---- Locking.
	SockLockFast      units.Cycles // uncontended socket lock/unlock pair
	SockLockContended units.Cycles // contended lock (softirq vs app core)

	// ---- Scheduling.
	ContextSwitch units.Cycles // __schedule + switch_to, per switch
	Wakeup        units.Cycles // try_to_wake_up + enqueue, charged to waker
	IdleWake      units.Cycles // waking an idle core (IPI + exit idle)
	WakeCheck     units.Cycles // wake_up on an already-running task (waitqueue walk)

	// ---- Etc.
	IRQEntry    units.Cycles // hardware IRQ entry/exit + dispatch
	SyscallBase units.Cycles // syscall entry/exit + VFS/socket glue
	TimerFire   units.Cycles // hrtimer/softirq timer dispatch
}

// Default returns the calibrated cost table for the paper's testbed CPU
// (Xeon Gold 6128 at 3.4GHz). See EXPERIMENTS.md for the calibration
// audit trail.
func Default() *Costs {
	return &Costs{
		// 42Gbps/core with ~49% copy share and ~49% miss rate requires the
		// blended copy cost ≈ 0.32 cycles/B (see DESIGN.md §3.7).
		CopyHit:        0.16,
		CopyMissLocal:  0.52,
		CopyMissRemote: 0.70,
		CopySenderWarm: 0.155,

		TCPRxPerSKB:   3400,
		TCPTxPerSKB:   2000,
		TCPRxOOO:      2600,
		ACKGenerate:   650,
		ACKProcess:    1100,
		DupACKExtra:   700,
		Retransmit:    3800,
		CCUpdate:      150,
		RxBufAutotune: 400,

		RPSSteer:      700,
		NAPIPollBase:  400,
		NAPIPerFrame:  260,
		GROMergeFrame: 240,
		GRONewFlow:    180,
		GSOSegment:    450,
		QdiscEnqueue:  500,
		TxDoorbell:    400,
		TxComplete:    450,
		PacerRelease:  600,

		SKBBuild:   260,
		SKBSplit:   300,
		SKBRelease: 120,

		SKBAlloc:        180,
		SKBFree:         140,
		PageAllocPCP:    60,
		PageAllocGlobal: 420,
		PageFreePCP:     60,
		PageFreeGlobal:  380,
		PageFreeRemote:  260,
		IOMMUMap:        340,
		IOMMUUnmap:      400,
		ZCTxPin:         240,
		ZCTxComplete:    600,
		ZCRxMap:         550,

		SockLockFast:      120,
		SockLockContended: 1400,

		ContextSwitch: 3200,
		Wakeup:        1000,
		IdleWake:      1600,
		WakeCheck:     700,

		IRQEntry:    1500,
		SyscallBase: 1200,
		TimerFire:   500,
	}
}

// CostNames lists every scalar knob of the cost table in sorted order —
// the Costs struct field names. These are the valid keys for Scale and
// for the public CostScale configuration.
func CostNames() []string {
	t := reflect.TypeOf(Costs{})
	out := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		out = append(out, t.Field(i).Name)
	}
	sort.Strings(out)
	return out
}

// IsCostName reports whether name is a Costs field.
func IsCostName(name string) bool {
	_, ok := reflect.TypeOf(Costs{}).FieldByName(name)
	return ok
}

// Scale multiplies the named cost by factor. Per-byte costs scale
// exactly; per-op cycle costs round to the nearest whole cycle. Unknown
// names and non-finite or negative factors are errors, so a sensitivity
// sweep cannot silently perturb nothing.
func (c *Costs) Scale(name string, factor float64) error {
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor < 0 {
		return fmt.Errorf("cpumodel: cost scale %q = %v (want a finite factor >= 0)", name, factor)
	}
	f := reflect.ValueOf(c).Elem().FieldByName(name)
	if !f.IsValid() {
		return fmt.Errorf("cpumodel: unknown cost %q (valid: %v)", name, CostNames())
	}
	switch v := f.Interface().(type) {
	case units.PerByte:
		f.Set(reflect.ValueOf(units.PerByte(float64(v) * factor)))
	case units.Cycles:
		f.Set(reflect.ValueOf(units.Cycles(math.Round(float64(v) * factor))))
	default:
		return fmt.Errorf("cpumodel: cost %q has unsupported type %T", name, v)
	}
	return nil
}

// Breakdown is a per-category cycle tally.
type Breakdown [NumCategories]units.Cycles

// Add accumulates c cycles into category cat.
func (b *Breakdown) Add(cat Category, c units.Cycles) { b[cat] += c }

// Total returns the sum over all categories.
func (b *Breakdown) Total() units.Cycles {
	var t units.Cycles
	for _, c := range b {
		t += c
	}
	return t
}

// Fractions returns each category's share of the total (zeros if empty).
func (b *Breakdown) Fractions() [NumCategories]float64 {
	var out [NumCategories]float64
	t := b.Total()
	if t == 0 {
		return out
	}
	for i, c := range b {
		out[i] = float64(c) / float64(t)
	}
	return out
}

// Merge adds other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for i := range b {
		b[i] += other[i]
	}
}
