package cpumodel

import (
	"testing"

	"hostsim/internal/units"
)

func TestCategoryNames(t *testing.T) {
	want := map[Category]string{
		DataCopy: "data_copy",
		TCPIP:    "tcp/ip",
		Netdev:   "netdev",
		SKBMgmt:  "skb_mgmt",
		Memory:   "memory",
		Lock:     "lock",
		Sched:    "sched",
		Etc:      "etc",
	}
	for cat, name := range want {
		if cat.String() != name {
			t.Errorf("%d.String() = %q, want %q", cat, cat.String(), name)
		}
	}
	if Category(-1).String() != "invalid" || Category(99).String() != "invalid" {
		t.Error("out-of-range categories should stringify as invalid")
	}
}

func TestCategoriesOrder(t *testing.T) {
	cats := Categories()
	if len(cats) != NumCategories {
		t.Fatalf("Categories() returned %d, want %d", len(cats), NumCategories)
	}
	for i, c := range cats {
		if int(c) != i {
			t.Errorf("Categories()[%d] = %v", i, c)
		}
	}
}

func TestDefaultCostsArePositive(t *testing.T) {
	c := Default()
	perByte := []struct {
		name string
		v    units.PerByte
	}{
		{"CopyHit", c.CopyHit},
		{"CopyMissLocal", c.CopyMissLocal},
		{"CopyMissRemote", c.CopyMissRemote},
		{"CopySenderWarm", c.CopySenderWarm},
	}
	for _, p := range perByte {
		if p.v <= 0 {
			t.Errorf("%s = %v, want > 0", p.name, p.v)
		}
	}
	cyc := map[string]units.Cycles{
		"TCPRxPerSKB": c.TCPRxPerSKB, "TCPTxPerSKB": c.TCPTxPerSKB,
		"ACKGenerate": c.ACKGenerate, "ACKProcess": c.ACKProcess,
		"NAPIPollBase": c.NAPIPollBase, "NAPIPerFrame": c.NAPIPerFrame,
		"GROMergeFrame": c.GROMergeFrame, "GSOSegment": c.GSOSegment,
		"SKBBuild": c.SKBBuild, "SKBAlloc": c.SKBAlloc,
		"PageAllocPCP": c.PageAllocPCP, "PageAllocGlobal": c.PageAllocGlobal,
		"IOMMUMap": c.IOMMUMap, "IOMMUUnmap": c.IOMMUUnmap,
		"SockLockFast": c.SockLockFast, "SockLockContended": c.SockLockContended,
		"ContextSwitch": c.ContextSwitch, "Wakeup": c.Wakeup,
		"IRQEntry": c.IRQEntry, "SyscallBase": c.SyscallBase,
	}
	for name, v := range cyc {
		if v <= 0 {
			t.Errorf("%s = %d, want > 0", name, v)
		}
	}
}

func TestCostOrderingInvariants(t *testing.T) {
	c := Default()
	if c.CopyHit >= c.CopyMissLocal {
		t.Error("an L3 hit copy must be cheaper than a DRAM copy")
	}
	if c.CopyMissLocal >= c.CopyMissRemote {
		t.Error("a local-DRAM copy must be cheaper than a remote-DRAM copy")
	}
	if c.PageAllocPCP >= c.PageAllocGlobal {
		t.Error("pageset allocation must be cheaper than global")
	}
	if c.PageFreePCP >= c.PageFreeGlobal {
		t.Error("pageset free must be cheaper than global")
	}
	if c.SockLockFast >= c.SockLockContended {
		t.Error("uncontended lock must be cheaper than contended")
	}
}

// The blended copy cost at the paper's observed 49% miss rate must sit near
// 0.32 cycles/B so that data copy is ~49% of a 0.65 c/B total budget
// (42Gbps on one 3.4GHz core). This pins the calibration. See DESIGN.md.
func TestCopyCalibrationBudget(t *testing.T) {
	c := Default()
	blended := 0.51*float64(c.CopyHit) + 0.49*float64(c.CopyMissLocal)
	if blended < 0.28 || blended > 0.36 {
		t.Errorf("blended copy cost at 49%% miss = %.3f c/B, want 0.28..0.36", blended)
	}
}

func TestBreakdownAddTotal(t *testing.T) {
	var b Breakdown
	b.Add(DataCopy, 100)
	b.Add(TCPIP, 50)
	b.Add(DataCopy, 25)
	if b[DataCopy] != 125 {
		t.Errorf("DataCopy = %d, want 125", b[DataCopy])
	}
	if b.Total() != 175 {
		t.Errorf("Total = %d, want 175", b.Total())
	}
}

func TestBreakdownFractions(t *testing.T) {
	var b Breakdown
	f := b.Fractions()
	for i, v := range f {
		if v != 0 {
			t.Errorf("empty breakdown fraction[%d] = %v, want 0", i, v)
		}
	}
	b.Add(DataCopy, 75)
	b.Add(Lock, 25)
	f = b.Fractions()
	if f[DataCopy] != 0.75 || f[Lock] != 0.25 {
		t.Errorf("fractions = %v, want 0.75/0.25", f)
	}
	var sum float64
	for _, v := range f {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
}

func TestBreakdownMerge(t *testing.T) {
	var a, b Breakdown
	a.Add(Sched, 10)
	b.Add(Sched, 5)
	b.Add(Etc, 7)
	a.Merge(&b)
	if a[Sched] != 15 || a[Etc] != 7 {
		t.Errorf("merge = %v", a)
	}
}

func TestCostNamesCoverEveryField(t *testing.T) {
	names := CostNames()
	if len(names) == 0 {
		t.Fatal("CostNames returned nothing")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("CostNames not sorted: %q before %q", names[i-1], names[i])
		}
	}
	for _, n := range names {
		if !IsCostName(n) {
			t.Errorf("IsCostName(%q) = false for a listed name", n)
		}
	}
	if IsCostName("NotACost") {
		t.Error("IsCostName accepted an unknown name")
	}
}

func TestScale(t *testing.T) {
	c := Default()
	if err := c.Scale("CopyHit", 2); err != nil {
		t.Fatal(err)
	}
	if want := units.PerByte(0.32); c.CopyHit != want {
		t.Errorf("CopyHit after x2 = %v, want %v", c.CopyHit, want)
	}
	if err := c.Scale("TCPRxPerSKB", 1.5); err != nil {
		t.Fatal(err)
	}
	if want := units.Cycles(5100); c.TCPRxPerSKB != want {
		t.Errorf("TCPRxPerSKB after x1.5 = %v, want %v", c.TCPRxPerSKB, want)
	}
	// Unchanged fields keep the calibrated defaults.
	if def := Default(); c.ContextSwitch != def.ContextSwitch {
		t.Errorf("ContextSwitch moved to %v without being scaled", c.ContextSwitch)
	}
	if err := c.Scale("NoSuchKnob", 2); err == nil {
		t.Error("unknown cost name accepted")
	}
	if err := c.Scale("CopyHit", -1); err == nil {
		t.Error("negative factor accepted")
	}
	// Every listed knob is scalable.
	fresh := Default()
	for _, n := range CostNames() {
		if err := fresh.Scale(n, 1.25); err != nil {
			t.Errorf("Scale(%q) failed: %v", n, err)
		}
	}
}
