package workload

import (
	"hostsim/internal/core"
	"hostsim/internal/exec"
	"hostsim/internal/units"
)

// RPCClient is one netperf-style ping-pong client: it writes a request of
// Size bytes, waits for the full Size-byte response, and repeats, over a
// long-running connection.
type RPCClient struct {
	EP        *core.Endpoint
	Size      units.Bytes
	Completed int64 // responses fully received

	th        *exec.Thread
	awaiting  units.Bytes // response bytes still expected
	writeOwed units.Bytes // request bytes not yet accepted by the socket
}

// StartRPCClient attaches a ping-pong client to ep and starts it.
func StartRPCClient(ep *core.Endpoint, size units.Bytes) *RPCClient {
	if size <= 0 {
		panic("workload: non-positive RPC size")
	}
	c := &RPCClient{EP: ep, Size: size}
	cCore := ep.Host().Sys.Core(ep.AppCore())
	c.th = cCore.NewThread("rpc-client", c.step)
	ep.SetNotify(core.Notify{
		Readable: func(ctx *exec.Ctx, _ *core.Endpoint) { ctx.Wake(c.th) },
		Writable: func(ctx *exec.Ctx, _ *core.Endpoint) { ctx.Wake(c.th) },
	})
	c.th.Wake()
	return c
}

func (c *RPCClient) step(ctx *exec.Ctx) {
	// Finish an in-progress request write first.
	if c.writeOwed > 0 {
		w := c.EP.Write(ctx, c.writeOwed)
		c.writeOwed -= w
		if c.writeOwed > 0 {
			ctx.Block() // wait for sndbuf space
		}
		return
	}
	// Await the response.
	if c.awaiting > 0 {
		n := c.EP.Read(ctx, c.awaiting)
		c.awaiting -= n
		if c.awaiting > 0 {
			ctx.Block()
			return
		}
		c.Completed++
	}
	// Issue the next request.
	c.awaiting = c.Size
	w := c.EP.Write(ctx, c.Size)
	if w < c.Size {
		c.writeOwed = c.Size - w
		ctx.Block()
	}
}

// RPCServer serves ping-pong requests, echoing a Size-byte response per
// Size-byte request. Like netperf, each connection is served by its own
// process — so every request wakes a different thread and pays a context
// switch, exactly the per-RPC scheduling cost the paper's short-flow
// breakdowns show.
type RPCServer struct {
	Size   units.Bytes
	Served int64 // responses fully written

	workers []*rpcWorker
}

// rpcWorker is one per-connection server process.
type rpcWorker struct {
	srv     *RPCServer
	ep      *core.Endpoint
	th      *exec.Thread
	pending units.Bytes // request bytes received, not yet answered
	owed    units.Bytes // response bytes still to write
	wrote   units.Bytes // response bytes written so far
	counted int64
}

// StartRPCServer attaches per-connection server threads on serverCore of
// host h, serving the given endpoints (all must be bound to serverCore).
func StartRPCServer(h *core.Host, serverCore int, size units.Bytes, eps []*core.Endpoint) *RPCServer {
	if size <= 0 {
		panic("workload: non-positive RPC size")
	}
	s := &RPCServer{Size: size}
	for _, ep := range eps {
		if ep.AppCore() != serverCore {
			panic("workload: server endpoint bound to a different core")
		}
		w := &rpcWorker{srv: s, ep: ep}
		w.th = h.Sys.Core(serverCore).NewThread("netserver", w.step)
		ep.SetNotify(core.Notify{
			Readable: func(ctx *exec.Ctx, _ *core.Endpoint) { ctx.Wake(w.th) },
			Writable: func(ctx *exec.Ctx, _ *core.Endpoint) {
				if w.owed > 0 {
					ctx.Wake(w.th)
				}
			},
		})
		s.workers = append(s.workers, w)
	}
	return s
}

func (w *rpcWorker) step(ctx *exec.Ctx) {
	progressed := false
	if n := w.ep.Read(ctx, ReadChunk); n > 0 {
		w.pending += n
		progressed = true
	}
	for w.pending >= w.srv.Size {
		w.pending -= w.srv.Size
		w.owed += w.srv.Size
	}
	if w.owed > 0 {
		if n := w.ep.Write(ctx, w.owed); n > 0 {
			w.owed -= n
			w.wrote += n
			done := int64(w.wrote / w.srv.Size)
			w.srv.Served += done - w.counted
			w.counted = done
			progressed = true
		}
	}
	if !progressed {
		ctx.Block()
	}
}

// RPCIncast builds the paper's short-flow scenario (§3.7): nClients
// client threads on distinct cores of host a, all ping-ponging RPCs of
// size bytes against a single server thread on serverCore of host b.
func RPCIncast(a, b *core.Host, nClients, serverCore int, size units.Bytes) ([]*RPCClient, *RPCServer) {
	clients := make([]*RPCClient, 0, nClients)
	serverEPs := make([]*core.Endpoint, 0, nClients)
	for i := 0; i < nClients; i++ {
		cEP, sEP := core.OpenConn(a, i, b, serverCore)
		serverEPs = append(serverEPs, sEP)
		clients = append(clients, StartRPCClient(cEP, size))
	}
	srv := StartRPCServer(b, serverCore, size, serverEPs)
	return clients, srv
}

// MixedOnCore builds the Fig. 11 scenario: one long flow between core
// longCore of a and b, plus nShort 4KB-style RPC connections whose
// clients share the sender core and whose server thread shares the
// receiver core.
func MixedOnCore(a, b *core.Host, longCore int, nShort int, size units.Bytes) (*LongFlow, []*RPCClient, *RPCServer) {
	return MixedSplit(a, b, longCore, longCore, nShort, size)
}

// MixedSplit is MixedOnCore with the short flows' applications placed on
// shortCore instead — the paper's §4 "schedule long-flow and short-flow
// applications on separate CPU cores" proposal when shortCore differs
// from longCore.
func MixedSplit(a, b *core.Host, longCore, shortCore int, nShort int, size units.Bytes) (*LongFlow, []*RPCClient, *RPCServer) {
	sEP, rEP := core.OpenConn(a, longCore, b, longCore)
	lf := StartLongFlow(sEP, rEP)
	if nShort == 0 {
		return lf, nil, nil
	}
	clients := make([]*RPCClient, 0, nShort)
	serverEPs := make([]*core.Endpoint, 0, nShort)
	for i := 0; i < nShort; i++ {
		cEP, svEP := core.OpenConn(a, shortCore, b, shortCore)
		serverEPs = append(serverEPs, svEP)
		clients = append(clients, StartRPCClient(cEP, size))
	}
	srv := StartRPCServer(b, shortCore, size, serverEPs)
	return lf, clients, srv
}
