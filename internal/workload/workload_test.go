package workload

import (
	"testing"
	"time"

	"hostsim/internal/core"
	"hostsim/internal/cpumodel"
	"hostsim/internal/sim"
	"hostsim/internal/topology"
	"hostsim/internal/units"
)

func newPair(t *testing.T) (*sim.Engine, *core.Host, *core.Host) {
	t.Helper()
	eng := sim.NewEngine(1)
	costs := cpumodel.Default()
	spec := topology.Default()
	a := core.NewHost("a", eng, spec, costs, core.AllOpts())
	b := core.NewHost("b", eng, spec, costs, core.AllOpts())
	core.Connect(a, b)
	return eng, a, b
}

func TestPatternPairs(t *testing.T) {
	cases := []struct {
		p      Pattern
		n      int
		want   int
		first  [2]int
		spread bool // receiver cores all distinct
	}{
		{Single, 0, 1, [2]int{0, 0}, true},
		{OneToOne, 8, 8, [2]int{0, 0}, true},
		{Incast, 8, 8, [2]int{0, 0}, false},
		{Outcast, 8, 8, [2]int{0, 0}, true},
		{AllToAll, 4, 16, [2]int{0, 0}, false},
	}
	for _, c := range cases {
		pairs := PatternPairs(24, c.p, c.n)
		if len(pairs) != c.want {
			t.Errorf("%v: %d pairs, want %d", c.p, len(pairs), c.want)
			continue
		}
		if pairs[0] != c.first {
			t.Errorf("%v: first pair %v", c.p, pairs[0])
		}
		if c.spread {
			seen := map[int]bool{}
			for _, pr := range pairs {
				if seen[pr[1]] {
					t.Errorf("%v: receiver core %d reused", c.p, pr[1])
				}
				seen[pr[1]] = true
			}
		}
	}
	// Incast: one receiver core.
	for _, pr := range PatternPairs(24, Incast, 8) {
		if pr[1] != 0 {
			t.Error("incast must target core 0")
		}
	}
	// Outcast: one sender core.
	for _, pr := range PatternPairs(24, Outcast, 8) {
		if pr[0] != 0 {
			t.Error("outcast must source core 0")
		}
	}
	// All-to-all covers the full grid.
	grid := map[[2]int]bool{}
	for _, pr := range PatternPairs(24, AllToAll, 3) {
		grid[pr] = true
	}
	if len(grid) != 9 {
		t.Errorf("3x3 all-to-all covered %d cells", len(grid))
	}
}

func TestPatternPairsPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d should panic", n)
				}
			}()
			PatternPairs(24, OneToOne, n)
		}()
	}
}

func TestPatternString(t *testing.T) {
	names := map[Pattern]string{
		Single: "single", OneToOne: "one-to-one", Incast: "incast",
		Outcast: "outcast", AllToAll: "all-to-all", Pattern(99): "invalid",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestLongFlowMovesData(t *testing.T) {
	eng, a, b := newPair(t)
	flows := LongFlows(a, b, Single, 1)
	eng.Run(sim.Time(20 * time.Millisecond))
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	st := flows[0].Receiver.Conn().Stats()
	if st.DeliveredBytes < 10*units.MB {
		t.Errorf("long flow delivered only %v in 20ms", st.DeliveredBytes)
	}
	// Copied lags Delivered by exactly the un-read receive queue.
	if b.Copied()+flows[0].Receiver.Readable() != st.DeliveredBytes {
		t.Errorf("copied %v + queued %v != delivered %v",
			b.Copied(), flows[0].Receiver.Readable(), st.DeliveredBytes)
	}
}

func TestRPCPingPong(t *testing.T) {
	eng, a, b := newPair(t)
	clients, srv := RPCIncast(a, b, 4, 0, 4096)
	eng.Run(sim.Time(20 * time.Millisecond))
	var completed int64
	for _, c := range clients {
		if c.Completed == 0 {
			t.Error("a client completed no RPCs")
		}
		completed += c.Completed
	}
	if completed < 100 {
		t.Errorf("completed = %d, want many", completed)
	}
	// Server must have answered at least the completed count.
	if srv.Served < completed {
		t.Errorf("served %d < completed %d", srv.Served, completed)
	}
	// Conservation: client received exactly size bytes per completion
	// (plus possibly one in-flight response).
	for _, c := range clients {
		got := c.EP.Conn().Stats().DeliveredBytes
		min := units.Bytes(c.Completed) * c.Size
		if got < min || got > min+c.Size {
			t.Errorf("client delivered %v for %d completions of %v", got, c.Completed, c.Size)
		}
	}
}

func TestRPCLargeSize(t *testing.T) {
	eng, a, b := newPair(t)
	clients, _ := RPCIncast(a, b, 2, 0, 65536)
	eng.Run(sim.Time(20 * time.Millisecond))
	for _, c := range clients {
		if c.Completed == 0 {
			t.Error("64KB RPC client stalled")
		}
	}
}

func TestMixedOnCore(t *testing.T) {
	eng, a, b := newPair(t)
	lf, clients, srv := MixedOnCore(a, b, 0, 4, 4096)
	eng.Run(sim.Time(20 * time.Millisecond))
	if lf.Receiver.Conn().Stats().DeliveredBytes == 0 {
		t.Error("long flow starved completely")
	}
	var completed int64
	for _, c := range clients {
		completed += c.Completed
	}
	if completed == 0 {
		t.Error("short flows starved completely")
	}
	if srv == nil {
		t.Fatal("server missing")
	}
}

func TestMixedZeroShorts(t *testing.T) {
	eng, a, b := newPair(t)
	lf, clients, srv := MixedOnCore(a, b, 0, 0, 4096)
	if clients != nil || srv != nil {
		t.Error("no shorts requested, none expected")
	}
	eng.Run(sim.Time(5 * time.Millisecond))
	if lf.Receiver.Conn().Stats().DeliveredBytes == 0 {
		t.Error("long flow alone should run")
	}
}

func TestMixingDegradesLongFlow(t *testing.T) {
	eng1, a1, b1 := newPair(t)
	lfAlone, _, _ := MixedOnCore(a1, b1, 0, 0, 4096)
	eng1.Run(sim.Time(20 * time.Millisecond))
	alone := lfAlone.Receiver.Conn().Stats().DeliveredBytes

	eng2, a2, b2 := newPair(t)
	lfMixed, _, _ := MixedOnCore(a2, b2, 0, 16, 4096)
	eng2.Run(sim.Time(20 * time.Millisecond))
	mixed := lfMixed.Receiver.Conn().Stats().DeliveredBytes

	if mixed >= alone*8/10 {
		t.Errorf("mixing with 16 shorts should cost the long flow >20%%: alone %v, mixed %v", alone, mixed)
	}
}

func TestStartRPCServerValidation(t *testing.T) {
	_, a, b := newPair(t)
	cEP, sEP := core.OpenConn(a, 0, b, 0)
	_ = cEP
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero size should panic")
			}
		}()
		StartRPCServer(b, 0, 0, []*core.Endpoint{sEP})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong core should panic")
			}
		}()
		StartRPCServer(b, 5, 4096, []*core.Endpoint{sEP})
	}()
}

func TestStartRPCClientValidation(t *testing.T) {
	_, a, b := newPair(t)
	cEP, _ := core.OpenConn(a, 0, b, 0)
	defer func() {
		if recover() == nil {
			t.Error("zero size should panic")
		}
	}()
	StartRPCClient(cEP, 0)
}
