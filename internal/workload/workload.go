// Package workload implements the applications the paper drives its
// measurements with — iPerf-style long flows and netperf-style ping-pong
// RPCs — plus the five traffic patterns of Fig. 2 (single flow,
// one-to-one, incast, outcast, all-to-all).
//
// Applications are exec threads pinned to cores, performing read/write
// syscalls against core.Endpoints and blocking/waking exactly like their
// real counterparts; all scheduling overhead is accounted by exec.
package workload

import (
	"fmt"

	"hostsim/internal/core"
	"hostsim/internal/exec"
	"hostsim/internal/units"
)

// Chunk sizes match the tools the paper uses: iPerf writes and reads in
// 128KB buffers.
const (
	WriteChunk units.Bytes = 128 * units.KB
	ReadChunk  units.Bytes = 128 * units.KB
)

// LongFlow is one iPerf-style bulk transfer: a sender thread pumping an
// endless stream and a receiver thread draining it.
type LongFlow struct {
	Sender   *core.Endpoint
	Receiver *core.Endpoint
	sendTh   *exec.Thread
	recvTh   *exec.Thread
}

// StartLongFlow attaches sender/receiver applications to an open
// connection and starts them.
func StartLongFlow(sender, receiver *core.Endpoint) *LongFlow {
	lf := &LongFlow{Sender: sender, Receiver: receiver}

	sCore := sender.Host().Sys.Core(sender.AppCore())
	lf.sendTh = sCore.NewThread("iperf-send", func(ctx *exec.Ctx) {
		if w := sender.Write(ctx, WriteChunk); w == 0 {
			ctx.Block()
		}
	})
	sender.SetNotify(core.Notify{
		Writable: func(ctx *exec.Ctx, ep *core.Endpoint) { ctx.Wake(lf.sendTh) },
	})

	rCore := receiver.Host().Sys.Core(receiver.AppCore())
	lf.recvTh = rCore.NewThread("iperf-recv", func(ctx *exec.Ctx) {
		if n := receiver.Read(ctx, ReadChunk); n == 0 {
			ctx.Block()
		}
	})
	receiver.SetNotify(core.Notify{
		Readable: func(ctx *exec.Ctx, ep *core.Endpoint) { ctx.Wake(lf.recvTh) },
	})

	lf.sendTh.Wake()
	return lf
}

// Pattern is a Fig. 2 traffic pattern.
type Pattern int

// The five patterns of Fig. 2.
const (
	Single Pattern = iota
	OneToOne
	Incast
	Outcast
	AllToAll
)

func (p Pattern) String() string {
	switch p {
	case Single:
		return "single"
	case OneToOne:
		return "one-to-one"
	case Incast:
		return "incast"
	case Outcast:
		return "outcast"
	case AllToAll:
		return "all-to-all"
	default:
		return "invalid"
	}
}

// LongFlows opens connections in the given pattern (senders on a,
// receivers on b) and starts a long flow on each. n is the per-pattern
// scale: flow count for one-to-one/incast/outcast, the grid side for
// all-to-all; ignored for Single.
func LongFlows(a, b *core.Host, p Pattern, n int) []*LongFlow {
	pairs := PatternPairs(a.Spec().NumCores(), p, n)
	flows := make([]*LongFlow, 0, len(pairs))
	for _, pr := range pairs {
		sEP, rEP := core.OpenConn(a, pr[0], b, pr[1])
		flows = append(flows, StartLongFlow(sEP, rEP))
	}
	return flows
}

// PatternPairs returns the (senderCore, receiverCore) assignments for a
// pattern, matching the paper's placements (cores filled node-major, so
// the first 6 are NIC-local).
func PatternPairs(numCores int, p Pattern, n int) [][2]int {
	check := func(k int) {
		if k < 1 || k > numCores {
			panic(fmt.Sprintf("workload: %v with n=%d outside [1,%d]", p, k, numCores))
		}
	}
	switch p {
	case Single:
		return [][2]int{{0, 0}}
	case OneToOne:
		check(n)
		out := make([][2]int, n)
		for i := range out {
			out[i] = [2]int{i, i}
		}
		return out
	case Incast:
		check(n)
		out := make([][2]int, n)
		for i := range out {
			out[i] = [2]int{i, 0}
		}
		return out
	case Outcast:
		check(n)
		out := make([][2]int, n)
		for i := range out {
			out[i] = [2]int{0, i}
		}
		return out
	case AllToAll:
		check(n)
		out := make([][2]int, 0, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				out = append(out, [2]int{i, j})
			}
		}
		return out
	default:
		panic("workload: invalid pattern")
	}
}
