package figures

import (
	"fmt"

	"hostsim"
)

func init() {
	register(Experiment{
		ID:    "fig9a",
		Title: "Single flow under random loss: throughput-per-core",
		Paper: "tpc drops ~24% at loss 0.015; slight gain at 1.5e-4 from better cache hits",
		Run:   fig9a,
	})
	register(Experiment{
		ID:    "fig9b",
		Title: "Single flow under random loss: CPU utilization",
		Paper: "Sender/receiver utilization gap narrows; total thpt falls below tpc",
		Run:   fig9b,
	})
	register(Experiment{
		ID:    "fig9c",
		Title: "Single flow under random loss: sender CPU breakdown",
		Paper: "ACK processing and retransmissions inflate TCP and netdev shares",
		Run:   func(rc RunConfig) (*Table, error) { return lossBreakdown(rc, "fig9c", true) },
	})
	register(Experiment{
		ID:    "fig9d",
		Title: "Single flow under random loss: receiver CPU breakdown",
		Paper: "Dup-ACK generation raises TCP share 4.9x at 0.015 loss",
		Run:   func(rc RunConfig) (*Table, error) { return lossBreakdown(rc, "fig9d", false) },
	})
	register(Experiment{
		ID:    "fig10a",
		Title: "16:1 RPC incast: throughput-per-core vs RPC size",
		Paper: "tpc grows with RPC size; ~6Gbps/core one-way at 4KB",
		Run:   fig10a,
	})
	register(Experiment{
		ID:    "fig10b",
		Title: "16:1 RPC incast: server CPU breakdown vs RPC size",
		Paper: "At 4KB copy is NOT dominant (TCP + scheduling are); by 64KB it is",
		Run:   fig10b,
	})
	register(Experiment{
		ID:    "fig10c",
		Title: "4KB RPC server on NIC-local vs NIC-remote NUMA",
		Paper: "Unlike long flows, short-flow throughput barely changes on remote NUMA",
		Run:   fig10c,
	})
	register(Experiment{
		ID:    "fig11a",
		Title: "Long flow mixed with short flows on one core: throughput-per-core",
		Paper: "tpc falls ~43% with 16 shorts; long 42->20Gbps, shorts ~6.15->2.6Gbps",
		Run:   fig11a,
	})
	register(Experiment{
		ID:    "fig11b",
		Title: "Mixed long+short flows: server CPU breakdown",
		Paper: "Copy still dominates, but TCP and scheduling shares grow with shorts",
		Run:   fig11b,
	})
	register(Experiment{
		ID:    "fig12a",
		Title: "DCA and IOMMU impact: throughput-per-core",
		Paper: "DCA off: -19%; IOMMU on: -26%",
		Run:   fig12a,
	})
	register(Experiment{
		ID:    "fig12b",
		Title: "DCA/IOMMU: sender CPU breakdown",
		Paper: "IOMMU inflates memory management on both sides",
		Run:   func(rc RunConfig) (*Table, error) { return dcaIOMMUBreakdown(rc, "fig12b", true) },
	})
	register(Experiment{
		ID:    "fig12c",
		Title: "DCA/IOMMU: receiver CPU breakdown",
		Paper: "IOMMU: memory management reaches ~30% of receiver cycles",
		Run:   func(rc RunConfig) (*Table, error) { return dcaIOMMUBreakdown(rc, "fig12c", false) },
	})
	register(Experiment{
		ID:    "fig13a",
		Title: "Congestion control: throughput-per-core",
		Paper: "CUBIC vs BBR vs DCTCP: minimal difference (receiver-driven bottleneck)",
		Run:   fig13a,
	})
	register(Experiment{
		ID:    "fig13b",
		Title: "Congestion control: sender CPU breakdown",
		Paper: "BBR pays extra scheduling for pacing-timer wakeups",
		Run:   func(rc RunConfig) (*Table, error) { return ccBreakdown(rc, "fig13b", true) },
	})
	register(Experiment{
		ID:    "fig13c",
		Title: "Congestion control: receiver CPU breakdown",
		Paper: "Receiver-side breakdowns are nearly identical across protocols",
		Run:   func(rc RunConfig) (*Table, error) { return ccBreakdown(rc, "fig13c", false) },
	})
}

var lossRates = []float64{0, 1.5e-4, 1.5e-3, 1.5e-2}

func lossName(r float64) string {
	if r == 0 {
		return "0"
	}
	return fmt.Sprintf("%.1e", r)
}

func lossResults(rc RunConfig) (map[float64]*hostsim.Result, error) {
	out := map[float64]*hostsim.Result{}
	for _, rate := range lossRates {
		cfg := rc.config(hostsim.AllOptimizations())
		cfg.LossRate = rate
		r, err := run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			return nil, err
		}
		out[rate] = r
	}
	return out, nil
}

func fig9a(rc RunConfig) (*Table, error) {
	results, err := lossResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9a",
		Title:   "Throughput-per-core vs loss rate",
		Columns: []string{"loss-rate", "thpt-per-core", "total-thpt", "retransmits"},
	}
	for _, rate := range lossRates {
		r := results[rate]
		t.Rows = append(t.Rows, []string{lossName(rate),
			gb(r.ThroughputPerCoreGbps), gb(r.ThroughputGbps),
			fmt.Sprintf("%d", r.Sender.Retransmits)})
	}
	t.Notes = append(t.Notes,
		"model divergence: with heavy loss the simulated cache-hit relief outweighs protocol overheads, so tpc does not fall as the paper's does (see EXPERIMENTS.md)")
	return t, nil
}

func fig9b(rc RunConfig) (*Table, error) {
	results, err := lossResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9b",
		Title:   "CPU utilization vs loss rate",
		Columns: []string{"loss-rate", "sender-cpu", "receiver-cpu", "miss-rate"},
	}
	for _, rate := range lossRates {
		r := results[rate]
		t.Rows = append(t.Rows, []string{lossName(rate),
			fmt.Sprintf("%.0f%%", r.Sender.BusyCores*100),
			fmt.Sprintf("%.0f%%", r.Receiver.BusyCores*100),
			pct(r.Receiver.CacheMissRate)})
	}
	return t, nil
}

func lossBreakdown(rc RunConfig, id string, sender bool) (*Table, error) {
	results, err := lossResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: "CPU breakdown vs loss rate", Columns: breakdownHeader("loss-rate")}
	for _, rate := range lossRates {
		bd := results[rate].Receiver.Breakdown
		if sender {
			bd = results[rate].Sender.Breakdown
		}
		t.Rows = append(t.Rows, breakdownRow(lossName(rate), bd))
	}
	return t, nil
}

var rpcSizes = []int64{4096, 16384, 32768, 65536}

func rpcResults(rc RunConfig) (map[int64]*hostsim.Result, error) {
	out := map[int64]*hostsim.Result{}
	for _, size := range rpcSizes {
		r, err := run(rc.config(hostsim.AllOptimizations()), hostsim.RPCIncastWorkload(16, size))
		if err != nil {
			return nil, err
		}
		out[size] = r
	}
	return out, nil
}

func fig10a(rc RunConfig) (*Table, error) {
	results, err := rpcResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10a",
		Title:   "RPC throughput-per-server-core vs size (one-way transaction bytes)",
		Columns: []string{"rpc-size-KB", "thpt-per-core", "total-thpt", "rpcs-per-sec"},
	}
	for _, size := range rpcSizes {
		r := results[size]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size>>10),
			gb(r.RPCGbps / r.Receiver.BusyCores),
			gb(r.ThroughputGbps),
			fmt.Sprintf("%.0f", float64(r.RPCCompleted)/r.Duration.Seconds()),
		})
	}
	t.Notes = append(t.Notes, "paper: ~6Gbps/core at 4KB, growing with size")
	return t, nil
}

func fig10b(rc RunConfig) (*Table, error) {
	results, err := rpcResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig10b", Title: "RPC server CPU breakdown vs size",
		Columns: breakdownHeader("rpc-size-KB")}
	for _, size := range rpcSizes {
		t.Rows = append(t.Rows, breakdownRow(fmt.Sprintf("%d", size>>10), results[size].Receiver.Breakdown))
	}
	return t, nil
}

func fig10c(rc RunConfig) (*Table, error) {
	local, err := run(rc.config(hostsim.AllOptimizations()), hostsim.RPCIncastWorkload(16, 4096))
	if err != nil {
		return nil, err
	}
	wl := hostsim.RPCIncastWorkload(16, 4096)
	wl.RemoteNUMA = true
	remote, err := run(rc.config(hostsim.AllOptimizations()), wl)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10c",
		Title:   "4KB RPC server on NIC-local vs NIC-remote NUMA",
		Columns: []string{"placement", "thpt-per-core", "miss-rate"},
		Rows: [][]string{
			{"NIC-local NUMA", gb(local.RPCGbps / local.Receiver.BusyCores), pct(local.Receiver.CacheMissRate)},
			{"NIC-remote NUMA", gb(remote.RPCGbps / remote.Receiver.BusyCores), pct(remote.Receiver.CacheMissRate)},
		},
	}
	t.Notes = append(t.Notes, "paper: only a marginal tpc difference for 4KB RPCs")
	return t, nil
}

var shortCounts = []int{0, 1, 4, 16}

func mixedResults(rc RunConfig) (map[int]*hostsim.Result, error) {
	out := map[int]*hostsim.Result{}
	for _, n := range shortCounts {
		r, err := run(rc.config(hostsim.AllOptimizations()), hostsim.MixedWorkload(n, 4096))
		if err != nil {
			return nil, err
		}
		out[n] = r
	}
	return out, nil
}

func fig11a(rc RunConfig) (*Table, error) {
	results, err := mixedResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig11a",
		Title:   "Mixed long+short flows on one core",
		Columns: []string{"short-flows", "thpt-per-core", "long-flow-gbps", "short-gbps(one-way)"},
	}
	for _, n := range shortCounts {
		r := results[n]
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n),
			gb(r.ThroughputPerCoreGbps), gb(r.LongFlowGbps), gb(r.RPCGbps)})
	}
	t.Notes = append(t.Notes, "paper: at 16 shorts the long flow falls 42->20, shorts ~6.15->2.6")
	return t, nil
}

func fig11b(rc RunConfig) (*Table, error) {
	results, err := mixedResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig11b", Title: "Mixed flows: receiver-core CPU breakdown",
		Columns: breakdownHeader("short-flows")}
	for _, n := range shortCounts {
		t.Rows = append(t.Rows, breakdownRow(fmt.Sprintf("%d", n), results[n].Receiver.Breakdown))
	}
	return t, nil
}

func dcaIOMMUConfigs() []struct {
	Name  string
	Stack hostsim.Stack
} {
	def := hostsim.AllOptimizations()
	noDCA := def
	noDCA.DCA = false
	iommu := def
	iommu.IOMMU = true
	return []struct {
		Name  string
		Stack hostsim.Stack
	}{
		{"Default", def},
		{"DCA Disabled", noDCA},
		{"IOMMU Enabled", iommu},
	}
}

func fig12a(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "fig12a",
		Title:   "DCA / IOMMU impact on single-flow throughput-per-core",
		Columns: []string{"config", "thpt-per-core", "miss-rate", "vs-default"},
	}
	var base float64
	for _, c := range dcaIOMMUConfigs() {
		r, err := run(rc.config(c.Stack), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			return nil, err
		}
		if c.Name == "Default" {
			base = r.ThroughputPerCoreGbps
		}
		t.Rows = append(t.Rows, []string{c.Name, gb(r.ThroughputPerCoreGbps),
			pct(r.Receiver.CacheMissRate),
			fmt.Sprintf("%+.0f%%", (r.ThroughputPerCoreGbps/base-1)*100)})
	}
	t.Notes = append(t.Notes, "paper: DCA off -19%, IOMMU on -26%")
	return t, nil
}

func dcaIOMMUBreakdown(rc RunConfig, id string, sender bool) (*Table, error) {
	t := &Table{ID: id, Title: "DCA / IOMMU CPU breakdown", Columns: breakdownHeader("config")}
	for _, c := range dcaIOMMUConfigs() {
		r, err := run(rc.config(c.Stack), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			return nil, err
		}
		bd := r.Receiver.Breakdown
		if sender {
			bd = r.Sender.Breakdown
		}
		t.Rows = append(t.Rows, breakdownRow(c.Name, bd))
	}
	return t, nil
}

var ccNames = []string{"cubic", "bbr", "dctcp"}

func ccResults(rc RunConfig) (map[string]*hostsim.Result, error) {
	out := map[string]*hostsim.Result{}
	for _, cc := range ccNames {
		s := hostsim.AllOptimizations()
		s.CC = cc
		cfg := rc.config(s)
		if cc == "dctcp" {
			cfg.ECNMarkKB = 256 // DCTCP needs a marking threshold
		}
		r, err := run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			return nil, err
		}
		out[cc] = r
	}
	return out, nil
}

func fig13a(rc RunConfig) (*Table, error) {
	results, err := ccResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig13a",
		Title:   "Congestion control impact on single-flow throughput-per-core",
		Columns: []string{"cc", "thpt-per-core", "total-thpt"},
	}
	for _, cc := range ccNames {
		r := results[cc]
		t.Rows = append(t.Rows, []string{cc, gb(r.ThroughputPerCoreGbps), gb(r.ThroughputGbps)})
	}
	t.Notes = append(t.Notes, "paper: no significant difference across protocols")
	return t, nil
}

func ccBreakdown(rc RunConfig, id string, sender bool) (*Table, error) {
	results, err := ccResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: "Congestion control CPU breakdown", Columns: breakdownHeader("cc")}
	for _, cc := range ccNames {
		bd := results[cc].Receiver.Breakdown
		if sender {
			bd = results[cc].Sender.Breakdown
		}
		t.Rows = append(t.Rows, breakdownRow(cc, bd))
	}
	return t, nil
}
