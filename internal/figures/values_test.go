package figures

import (
	"math"
	"testing"
)

func sampleTable() *Table {
	return &Table{
		ID:      "sample",
		Columns: []string{"rx-buffer", "ring", "thpt-gbps", "miss-rate", "latency"},
		Rows: [][]string{
			{"3200KB", "128", "60.45", "4.2%", "4µs"},
			{"3200KB", "256", "57.60", "8.1%", "52µs"},
			{"default", "128", "42.04", "59.5%", "1.413ms"},
		},
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"41.36", 41.36, true},
		{"1.5e-04", 1.5e-4, true},
		{"128", 128, true},
		{"62.8%", 0.628, true},
		{"+0%", 0, true},
		{"-16%", -0.16, true},
		{"532µs", 532e-6, true},
		{"5.739ms", 5.739e-3, true},
		{"true", 0, false},
		{"No Opt.", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseValue(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := sampleTable()
	if got := tbl.ColumnIndex("thpt-gbps"); got != 2 {
		t.Errorf("ColumnIndex = %d, want 2", got)
	}
	if got := tbl.ColumnIndex("nope"); got != -1 {
		t.Errorf("ColumnIndex(nope) = %d, want -1", got)
	}

	// Single-key lookup finds the first matching row.
	v, err := tbl.Value("thpt-gbps", "default")
	if err != nil || v != 42.04 {
		t.Errorf("Value(default) = %v, %v", v, err)
	}
	// Multi-key lookup disambiguates grid rows.
	v, err = tbl.Value("miss-rate", "3200KB", "256")
	if err != nil || math.Abs(v-0.081) > 1e-12 {
		t.Errorf("Value(3200KB,256) = %v, %v", v, err)
	}
	// Durations come back in seconds.
	v, err = tbl.Value("latency", "default")
	if err != nil || math.Abs(v-1.413e-3) > 1e-12 {
		t.Errorf("Value(latency) = %v, %v", v, err)
	}
	if _, err := tbl.Value("thpt-gbps", "9600KB"); err == nil {
		t.Error("missing row accepted")
	}
	if _, err := tbl.Value("nope", "default"); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := tbl.Cell("ring"); err == nil {
		t.Error("empty key accepted")
	}

	col, err := tbl.Column("thpt-gbps")
	if err != nil || len(col) != 3 || col[0] != 60.45 || col[2] != 42.04 {
		t.Errorf("Column = %v, %v", col, err)
	}
	if _, err := tbl.Column("rx-buffer"); err == nil {
		t.Error("non-numeric column parsed")
	}
	labels := tbl.Labels()
	if len(labels) != 3 || labels[0] != "3200KB" || labels[2] != "default" {
		t.Errorf("Labels = %v", labels)
	}
}

func TestIDsMatchRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs() returned %d ids for %d experiments", len(ids), len(All()))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
		if _, ok := ByID(id); !ok {
			t.Errorf("IDs lists %q but ByID misses it", id)
		}
	}
}
