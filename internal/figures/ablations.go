package figures

import (
	"fmt"
	"time"

	"hostsim"
)

// The abl* experiments isolate the simulator's own design choices — the
// mechanisms DESIGN.md §3 introduces to reproduce the paper — by turning
// each one off or sweeping its parameter. They double as regression
// anchors: if a refactor silently disables a mechanism, the ablation's
// contrast collapses.

func init() {
	register(Experiment{
		ID:    "abl1",
		Title: "Ablation: DCA descriptor-count eviction hazard (DESIGN.md 3.3)",
		Paper: "Fig. 3e's ring-size sensitivity requires the hazard; without it only buffer size matters",
		Run:   abl1Hazard,
	})
	register(Experiment{
		ID:    "abl2",
		Title: "Ablation: TCP small queues (DESIGN.md 3.5)",
		Paper: "TSQ bounds per-flow egress bursts; without it all-to-all skbs stay large",
		Run:   abl2TSQ,
	})
	register(Experiment{
		ID:    "abl3",
		Title: "Ablation: IRQ moderation delay (DESIGN.md 3.4)",
		Paper: "GRO batching depends on coalescing: tiny delays shrink aggregates and raise per-byte costs",
		Run:   abl3Moderation,
	})
	register(Experiment{
		ID:    "abl4",
		Title: "Ablation: scheduler wakeup granularity (DESIGN.md 3.2)",
		Paper: "Fig. 11's long/short split hinges on wakeup batching; tiny granularity starves the bulk flow",
		Run:   abl4Granularity,
	})
	register(Experiment{
		ID:    "abl5",
		Title: "Ablation: per-core pagesets (DESIGN.md 3.3)",
		Paper: "Fig. 5c's falling memory share requires pageset recycling; without it every page hits the global allocator",
		Run:   abl5Pageset,
	})
}

func abl1Hazard(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "abl1",
		Title:   "Miss rate at 3200KB buffer, ring 4096, with/without the hazard",
		Columns: []string{"hazard", "thpt-gbps", "miss-rate"},
	}
	for _, c := range []struct {
		name   string
		factor float64
	}{
		{"off", -1},
		{"default (0.035)", 0},
		{"2x (0.07)", 0.07},
	} {
		s := hostsim.AllOptimizations()
		s.RcvBufBytes = 3200 << 10
		s.RxDescriptors = 4096
		cfg := rc.config(s)
		cfg.Tuning = &hostsim.Tuning{DCAHazardFactor: c.factor}
		r, err := run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.name, gb(r.ThroughputGbps), pct(r.Receiver.CacheMissRate)})
	}
	t.Notes = append(t.Notes, "with the hazard off, a large ring no longer hurts a small-buffer flow — Fig. 3e's x-axis flattens")
	return t, nil
}

func abl2TSQ(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "abl2",
		Title:   "All-to-all 8x8 with varying TSQ budgets",
		Columns: []string{"tsq", "thpt-per-core", "avg-skb-KB"},
	}
	for _, c := range []struct {
		name  string
		bytes int64
	}{
		{"64KB", 64 << 10},
		{"256KB (default)", 0},
		{"16MB (effectively off)", 16 << 20},
	} {
		cfg := rc.config(hostsim.AllOptimizations())
		cfg.Tuning = &hostsim.Tuning{TSQBytes: c.bytes}
		r, err := run(cfg, hostsim.LongFlowWorkload(hostsim.PatternAllToAll, 8))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.name, gb(r.ThroughputPerCoreGbps),
			fmt.Sprintf("%.1f", r.Receiver.SKBAvgBytes/1024)})
	}
	t.Notes = append(t.Notes, "a huge TSQ budget lets windows balloon into the qdisc and inflates latency without improving skb sizes")
	return t, nil
}

func abl3Moderation(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "abl3",
		Title:   "Single flow with varying IRQ moderation delay",
		Columns: []string{"moderation", "thpt-per-core", "avg-skb-KB", "64KB-share"},
	}
	for _, c := range []struct {
		name string
		d    time.Duration
	}{
		{"1us", time.Microsecond},
		{"12us (default)", 0},
		{"50us", 50 * time.Microsecond},
	} {
		cfg := rc.config(hostsim.AllOptimizations())
		cfg.Tuning = &hostsim.Tuning{ModerationDelay: c.d}
		r, err := run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.name, gb(r.ThroughputPerCoreGbps),
			fmt.Sprintf("%.1f", r.Receiver.SKBAvgBytes/1024), pct(r.Receiver.SKB64KBShare)})
	}
	return t, nil
}

func abl4Granularity(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "abl4",
		Title:   "Mixed long+16 shorts with varying scheduler granularity",
		Columns: []string{"granularity", "long-gbps", "short-gbps", "tpc"},
	}
	for _, c := range []struct {
		name string
		d    time.Duration
	}{
		{"25us", 25 * time.Microsecond},
		{"250us (default)", 0},
		{"1ms", time.Millisecond},
	} {
		cfg := rc.config(hostsim.AllOptimizations())
		cfg.Tuning = &hostsim.Tuning{SchedGranularity: c.d}
		r, err := run(cfg, hostsim.MixedWorkload(16, 4096))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.name, gb(r.LongFlowGbps), gb(r.RPCGbps),
			gb(r.ThroughputPerCoreGbps)})
	}
	t.Notes = append(t.Notes, "small granularity lets RPC threads preempt constantly and starves the bulk flow; large granularity throttles the RPCs")
	return t, nil
}

func abl5Pageset(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "abl5",
		Title:   "One-to-one 8 flows with and without per-core pagesets",
		Columns: []string{"pageset", "thpt-per-core", "rcv-memory-share"},
	}
	for _, c := range []struct {
		name string
		cap  int
	}{
		{"512 pages (default)", 0},
		{"disabled", -1},
	} {
		cfg := rc.config(hostsim.AllOptimizations())
		cfg.Tuning = &hostsim.Tuning{PagesetCap: c.cap}
		r, err := run(cfg, hostsim.LongFlowWorkload(hostsim.PatternOneToOne, 8))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.name, gb(r.ThroughputPerCoreGbps),
			pct(r.Receiver.Breakdown["memory"])})
	}
	t.Notes = append(t.Notes, "without recycling, every page allocation and free pays the buddy-allocator cost")
	return t, nil
}
