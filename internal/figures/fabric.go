package figures

import (
	"fmt"
	"sync"
	"time"

	"hostsim"
)

// The fab* experiments move the paper's traffic patterns from a host
// pair onto the switch-fabric topology: N hosts on a ToR with per-port
// egress buffers, an optional shared buffer pool with dynamic-threshold
// admission, and per-port ECN marking. They quantify the §3.4 incast
// collapse and the §3.5 pattern shapes at cluster scale instead of
// core scale.

func init() {
	register(Experiment{
		ID:    "fab1",
		Title: "Incast scaling on a switch fabric: N-1 hosts into one",
		Paper: "§3.4: with incast 'per-flow throughput reduces'; receiver CPU and scheduling dominate as senders multiply",
		Run:   fab1Incast,
	})
	register(Experiment{
		ID:    "fab2",
		Title: "Outcast scaling on a switch fabric: one host into N-1",
		Paper: "§3.5: the sender-side mirror of incast — one host's TX path fans out to N-1 receivers",
		Run:   fab2Outcast,
	})
	register(Experiment{
		ID:    "fab3",
		Title: "All-to-all on a switch fabric: every host to every host",
		Paper: "§3.5: all-to-all stresses both directions of every host; throughput is fairly shared at saturation",
		Run:   fab3AllToAll,
	})
	register(Experiment{
		ID:    "fab4",
		Title: "Shared switch buffer under 15:1 incast: dynamic-threshold drops and ECN",
		Paper: "§3.4/§5: shallow-buffered switches drop (or CE-mark) under incast; DCTCP trades drops for marks",
		Run:   fab4Buffer,
	})
	register(Experiment{
		ID:    "fab5",
		Title: "Microbursts under 15:1 incast: the observatory's burst ladder",
		Paper: "§3.4: incast pressure lives in the switch queue; buffer bounds trade microburst depth (and hop latency) for drops",
		Run:   fab5Bursts,
	})
	register(Experiment{
		ID:    "fab6",
		Title: "Exact drop/mark attribution across loss regimes",
		Paper: "§3.4/§5: every lost or marked frame classified — shared-buffer admission vs wire loss vs CE mark — with a zero-gap conservation ledger",
		Run:   fab6Attribution,
	})
}

// fabOpts returns a canonical *hostsim.FabricOptions per parameter tuple.
// The run memo keys on "%+v" of the config, which renders pointer fields
// as addresses — a shared pointer per tuple keeps keys stable so repeated
// scenarios dedupe instead of re-running.
type fabKey struct {
	hosts, bufKB int
	alpha        float64
}

var (
	fabMu   sync.Mutex
	fabPool = map[fabKey]*hostsim.FabricOptions{}
)

func fabOpts(o hostsim.FabricOptions) *hostsim.FabricOptions {
	k := fabKey{o.Hosts, o.SharedBufferKB, o.Alpha}
	fabMu.Lock()
	defer fabMu.Unlock()
	p, ok := fabPool[k]
	if !ok {
		o := o
		p = &o
		fabPool[k] = p
	}
	return p
}

// fabObsOpts canonicalizes *hostsim.FabricObsOptions the same way
// fabOpts does FabricOptions, keeping the run memo's "%+v" keys stable.
var fabObsPool = map[int]*hostsim.FabricObsOptions{}

func fabObsOpts(burstKB int) *hostsim.FabricObsOptions {
	fabMu.Lock()
	defer fabMu.Unlock()
	p, ok := fabObsPool[burstKB]
	if !ok {
		p = &hostsim.FabricObsOptions{BurstThresholdKB: burstKB}
		fabObsPool[burstKB] = p
	}
	return p
}

// fabricScales is the host-count ladder shared by fab1 and fab2.
var fabricScales = []int{2, 4, 8, 16, 64}

func fab1Incast(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "fab1",
		Title: "Incast: hosts 1..N-1 each send one flow into host 0",
		Columns: []string{"hosts", "flows", "total-thpt", "per-flow",
			"fairness", "rcv-busy-cores", "rcv-max-util"},
	}
	specs := make([]runSpec, len(fabricScales))
	for i, h := range fabricScales {
		cfg := rc.config(hostsim.AllOptimizations())
		cfg.Fabric = fabOpts(hostsim.FabricOptions{Hosts: h})
		specs[i] = runSpec{cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)}
	}
	results, err := runBatch(rc, specs)
	if err != nil {
		return nil, err
	}
	for i, h := range fabricScales {
		r := results[i]
		flows := h - 1
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h), fmt.Sprintf("%d", flows),
			gb(r.ThroughputGbps), gb(r.ThroughputGbps / float64(flows)),
			fmt.Sprintf("%.3f", r.FairnessIndex),
			fmt.Sprintf("%.2f", r.Receiver.BusyCores), pct(r.Receiver.MaxCoreUtil),
		})
	}
	t.Notes = append(t.Notes,
		"per-flow throughput collapses as senders multiply against one receiving host (§3.4)",
		"the receiving host is the bottleneck: its busy cores rise with N while total throughput stays link-bound")
	return t, nil
}

func fab2Outcast(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "fab2",
		Title: "Outcast: host 0 sends one flow to each of hosts 1..N-1",
		Columns: []string{"hosts", "flows", "total-thpt", "per-flow",
			"fairness", "snd-busy-cores", "snd-max-util"},
	}
	specs := make([]runSpec, len(fabricScales))
	for i, h := range fabricScales {
		cfg := rc.config(hostsim.AllOptimizations())
		cfg.Fabric = fabOpts(hostsim.FabricOptions{Hosts: h})
		specs[i] = runSpec{cfg, hostsim.LongFlowWorkload(hostsim.PatternOutcast, 0)}
	}
	results, err := runBatch(rc, specs)
	if err != nil {
		return nil, err
	}
	for i, h := range fabricScales {
		r := results[i]
		flows := h - 1
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h), fmt.Sprintf("%d", flows),
			gb(r.ThroughputGbps), gb(r.ThroughputGbps / float64(flows)),
			fmt.Sprintf("%.3f", r.FairnessIndex),
			fmt.Sprintf("%.2f", r.Sender.BusyCores), pct(r.Sender.MaxCoreUtil),
		})
	}
	t.Notes = append(t.Notes,
		"the TX path scales further than RX: segmentation offload leaves the sender fewer per-byte cycles than the receiver's copies",
		"fan-out shares the sending host's single egress port; per-flow throughput falls as 1/(N-1)")
	return t, nil
}

func fab3AllToAll(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "fab3",
		Title: "All-to-all: one flow per ordered host pair",
		Columns: []string{"hosts", "flows", "total-thpt", "per-flow",
			"fairness", "bottleneck-util"},
	}
	scales := []int{2, 4, 8}
	specs := make([]runSpec, len(scales))
	for i, h := range scales {
		cfg := rc.config(hostsim.AllOptimizations())
		cfg.Fabric = fabOpts(hostsim.FabricOptions{Hosts: h})
		specs[i] = runSpec{cfg, hostsim.LongFlowWorkload(hostsim.PatternAllToAll, 0)}
	}
	results, err := runBatch(rc, specs)
	if err != nil {
		return nil, err
	}
	for i, h := range scales {
		r := results[i]
		flows := h * (h - 1)
		var maxUtil float64
		for _, hs := range r.Hosts {
			if hs.MaxCoreUtil > maxUtil {
				maxUtil = hs.MaxCoreUtil
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h), fmt.Sprintf("%d", flows),
			gb(r.ThroughputGbps), gb(r.ThroughputGbps / float64(flows)),
			fmt.Sprintf("%.3f", r.FairnessIndex), pct(maxUtil),
		})
	}
	t.Notes = append(t.Notes,
		"every host runs both directions at once; aggregate throughput grows with the host count, per-flow falls",
		"fairness stays high: no single port is oversubscribed, so flows share evenly (§3.2)")
	return t, nil
}

// fab4Ladder is the shared-buffer ladder for the 16-host incast; 0 is
// the unbounded reference.
var fab4Ladder = []int{0, 4096, 1024, 256, 64}

func fab4Buffer(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "fab4",
		Title: "16-host incast vs shared switch buffer (dynamic threshold, alpha=1)",
		Columns: []string{"cc", "buffer-kb", "ecn-kb", "buf-drops",
			"marked", "retransmits", "total-thpt", "fairness"},
	}
	type variant struct {
		cc    string
		ecnKB int
		bufKB int
	}
	var variants []variant
	for _, kb := range fab4Ladder {
		variants = append(variants, variant{"cubic", 0, kb})
	}
	// DCTCP with per-port CE marking on the unbounded and tightest pools:
	// marks replace drops where the buffer allows.
	variants = append(variants,
		variant{"dctcp", 64, 0},
		variant{"dctcp", 64, 256},
	)
	specs := make([]runSpec, len(variants))
	for i, v := range variants {
		s := hostsim.AllOptimizations()
		s.CC = v.cc
		cfg := rc.config(s)
		cfg.ECNMarkKB = v.ecnKB
		cfg.Fabric = fabOpts(hostsim.FabricOptions{Hosts: 16, SharedBufferKB: v.bufKB})
		specs[i] = runSpec{cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)}
	}
	results, err := runBatch(rc, specs)
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		r := results[i]
		var retrans int64
		for _, h := range r.Hosts {
			retrans += h.Retransmits
		}
		t.Rows = append(t.Rows, []string{
			v.cc, fmt.Sprintf("%d", v.bufKB), fmt.Sprintf("%d", v.ecnKB),
			fmt.Sprintf("%d", r.Fabric.BufferDrops), fmt.Sprintf("%d", r.Fabric.Marked),
			fmt.Sprintf("%d", retrans), gb(r.ThroughputGbps),
			fmt.Sprintf("%.3f", r.FairnessIndex),
		})
	}
	t.Notes = append(t.Notes,
		"the unbounded pool never drops; every bounded pool drops under 15:1 pressure and a sliver of buffer costs goodput (§3.4 collapse)",
		"total drops over the window are not monotone in buffer size — TCP's feedback loop backs off harder when the pool is tighter",
		"DCTCP with an unbounded pool converts queue pressure into CE marks and holds full goodput with zero drops")
	return t, nil
}

// fab5Ladder is the shared-buffer ladder for the microburst table; 0 is
// the unbounded reference, 64KB sits below the 64KB burst threshold so
// the dynamic threshold forbids bursts outright.
var fab5Ladder = []int{0, 1024, 256, 64}

func fab5Bursts(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "fab5",
		Title: "16-host incast microbursts vs shared buffer (observatory armed, 64KB burst threshold)",
		Columns: []string{"buffer-kb", "bursts", "peak-backlog-kb", "longest-burst-us",
			"burst-frames", "adm-drops", "hop-p99-us", "port0-util"},
	}
	specs := make([]runSpec, len(fab5Ladder))
	for i, kb := range fab5Ladder {
		cfg := rc.config(hostsim.AllOptimizations())
		cfg.Fabric = fabOpts(hostsim.FabricOptions{Hosts: 16, SharedBufferKB: kb})
		cfg.FabricObs = fabObsOpts(64)
		specs[i] = runSpec{cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)}
	}
	results, err := runBatch(rc, specs)
	if err != nil {
		return nil, err
	}
	for i, kb := range fab5Ladder {
		r := results[i]
		p0 := r.PortReports[0] // incast: every data frame egresses port 0
		var longest time.Duration
		var frames int64
		for _, b := range r.BurstEvents {
			if b.Duration > longest {
				longest = b.Duration
			}
			if b.Frames > frames {
				frames = b.Frames
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", kb), fmt.Sprintf("%d", p0.Bursts),
			fmt.Sprintf("%d", p0.PeakBacklog/1024),
			fmt.Sprintf("%.1f", longest.Seconds()*1e6),
			fmt.Sprintf("%d", frames), fmt.Sprintf("%d", r.Fabric.BufferDrops),
			fmt.Sprintf("%.1f", p0.HopLatencyP99.Seconds()*1e6), pct(p0.Utilization),
		})
	}
	t.Notes = append(t.Notes,
		"the unbounded pool lets the incast queue grow deepest; each buffer bound clips peak backlog at its dynamic threshold",
		"hop p99 tracks peak backlog: shallow buffers bound switch latency, the price paid in admission drops",
		"a 64KB pool cannot reach the 64KB burst threshold — the dynamic threshold forbids the microburst regime outright")
	return t, nil
}

func fab6Attribution(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "fab6",
		Title: "8-host incast: exact drop/mark attribution across loss regimes",
		Columns: []string{"cc", "buffer-kb", "loss-pct", "ecn-kb", "adm-drops",
			"wire-drops", "marks", "delivered", "ledger-gap"},
	}
	type variant struct {
		cc      string
		bufKB   int
		lossPct float64
		ecnKB   int
	}
	variants := []variant{
		{"cubic", 0, 0, 0},     // clean: nothing to attribute
		{"cubic", 256, 0, 0},   // shared-buffer admission drops only
		{"cubic", 256, 0.1, 0}, // admission drops + Bernoulli wire loss
		{"dctcp", 0, 0, 64},    // CE marks only
		{"dctcp", 256, 0, 64},  // marks + admission drops
	}
	specs := make([]runSpec, len(variants))
	for i, v := range variants {
		s := hostsim.AllOptimizations()
		s.CC = v.cc
		cfg := rc.config(s)
		cfg.ECNMarkKB = v.ecnKB
		cfg.LossRate = v.lossPct / 100
		cfg.Fabric = fabOpts(hostsim.FabricOptions{Hosts: 8, SharedBufferKB: v.bufKB})
		cfg.FabricObs = fabObsOpts(0)
		specs[i] = runSpec{cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)}
	}
	results, err := runBatch(rc, specs)
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		r := results[i]
		var adm, wire, marks, del, gap int64
		for _, p := range r.PortReports {
			adm += p.AdmissionDrops
			wire += p.WireLossDrops
			marks += p.ECNMarks
			del += p.Delivered
			gap += (p.InFrames - p.Forwarded - p.AdmissionDrops) +
				(p.Enqueued - p.Delivered - p.WireLossDrops - p.InFlight)
		}
		t.Rows = append(t.Rows, []string{
			v.cc, fmt.Sprintf("%d", v.bufKB), fmt.Sprintf("%g", v.lossPct),
			fmt.Sprintf("%d", v.ecnKB), fmt.Sprintf("%d", adm),
			fmt.Sprintf("%d", wire), fmt.Sprintf("%d", marks),
			fmt.Sprintf("%d", del), fmt.Sprintf("%d", gap),
		})
	}
	t.Notes = append(t.Notes,
		"every loss regime lights up exactly its own attribution class; the clean run attributes nothing",
		"ledger-gap sums both conservation identities over all ports — zero means every frame the switch saw is accounted for exactly")
	return t, nil
}
