package figures

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// This file gives tables a programmatic surface: hypotheses in
// internal/validate read regenerated figure values through these
// accessors instead of re-parsing rendered text. Cells stay strings in
// the Table (rendering is the source of truth for goldens); ParseValue
// recovers the number a cell encodes.

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(col string) int {
	for i, c := range t.Columns {
		if c == col {
			return i
		}
	}
	return -1
}

// Row returns the first row whose leading cells equal key (one or more
// cells, matched in order from the first column). Tables whose rows are
// identified by a single label use one key; grids like fig3e
// (rx-buffer x ring) use two.
func (t *Table) Row(key ...string) ([]string, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("figures: %s: empty row key", t.ID)
	}
outer:
	for _, row := range t.Rows {
		if len(row) < len(key) {
			continue
		}
		for i, k := range key {
			if row[i] != k {
				continue outer
			}
		}
		return row, nil
	}
	return nil, fmt.Errorf("figures: %s: no row %v", t.ID, key)
}

// Cell returns the named column's cell in the row identified by key.
func (t *Table) Cell(col string, key ...string) (string, error) {
	i := t.ColumnIndex(col)
	if i < 0 {
		return "", fmt.Errorf("figures: %s: no column %q (have %v)", t.ID, col, t.Columns)
	}
	row, err := t.Row(key...)
	if err != nil {
		return "", err
	}
	if i >= len(row) {
		return "", fmt.Errorf("figures: %s: row %v has no cell %d", t.ID, key, i)
	}
	return row[i], nil
}

// Value parses the named column's cell in the row identified by key; see
// ParseValue for the cell grammar.
func (t *Table) Value(col string, key ...string) (float64, error) {
	cell, err := t.Cell(col, key...)
	if err != nil {
		return 0, err
	}
	v, err := ParseValue(cell)
	if err != nil {
		return 0, fmt.Errorf("figures: %s: column %q row %v: %w", t.ID, col, key, err)
	}
	return v, nil
}

// Column returns every row's parsed value of the named column, in row
// order.
func (t *Table) Column(col string) ([]float64, error) {
	i := t.ColumnIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("figures: %s: no column %q (have %v)", t.ID, col, t.Columns)
	}
	out := make([]float64, 0, len(t.Rows))
	for _, row := range t.Rows {
		if i >= len(row) {
			return nil, fmt.Errorf("figures: %s: ragged row %v", t.ID, row)
		}
		v, err := ParseValue(row[i])
		if err != nil {
			return nil, fmt.Errorf("figures: %s: column %q: %w", t.ID, col, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Labels returns the first column's cells in row order — the row keys of
// a single-key table.
func (t *Table) Labels() []string {
	out := make([]string, len(t.Rows))
	for i, row := range t.Rows {
		if len(row) > 0 {
			out[i] = row[0]
		}
	}
	return out
}

// ParseValue recovers the number a rendered cell encodes:
//
//   - "62.8%"  -> 0.628 (percentages become fractions)
//   - "532µs"  -> 5.32e-4 (durations become seconds)
//   - "41.36", "1.5e-04", "128" -> the plain float
//
// Anything else (row labels, booleans) is an error; compare those with
// Cell instead.
func ParseValue(cell string) (float64, error) {
	s := strings.TrimSpace(cell)
	if s == "" {
		return 0, fmt.Errorf("empty cell")
	}
	if strings.HasSuffix(s, "%") {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			return 0, fmt.Errorf("bad percentage %q", cell)
		}
		return v / 100, nil
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	return 0, fmt.Errorf("cell %q is not numeric", cell)
}
