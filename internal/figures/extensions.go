package figures

import (
	"fmt"

	"hostsim"
)

// The ext* experiments go beyond the paper's evaluation and quantify the
// §4 "Future Directions" proposals inside the same simulator: zero-copy
// mechanisms, the full flow-steering design space (Table 2's software
// variants), and class-segregated CPU scheduling.

func init() {
	register(Experiment{
		ID:    "ext1",
		Title: "Flow steering design space: aRFS vs software RFS/RPS vs RSS vs worst-case",
		Paper: "§2.1/Table 2: aRFS co-locates IRQ, TCP and app; software steering adds a forwarding hop",
		Run:   ext1Steering,
	})
	register(Experiment{
		ID:    "ext2",
		Title: "Zero-copy mechanisms (§4): MSG_ZEROCOPY and mmap-based receive",
		Paper: "§4: sender-side ZC alone cannot help a receiver-bound flow; receiver-side ZC removes the dominant overhead",
		Run:   ext2ZeroCopy,
	})
	register(Experiment{
		ID:    "ext3",
		Title: "Class-segregated scheduling (§4): long and short flows on separate cores",
		Paper: "§4: scheduling long-flow and short-flow applications on separate cores improves CPU efficiency",
		Run:   ext3Segregation,
	})
	register(Experiment{
		ID:    "ext4",
		Title: "Access-link bandwidth scaling: where the single core stops keeping up",
		Paper: "§1/§3.1: 'for 10-40Gbps access link bandwidths, a single thread was able to saturate the network'",
		Run:   ext4Bandwidth,
	})
	register(Experiment{
		ID:    "ext5",
		Title: "Per-flow fairness across traffic patterns",
		Paper: "§3.2: at saturation 'throughput ends up getting fairly shared among all cores'",
		Run:   ext5Fairness,
	})
	register(Experiment{
		ID:    "ext6",
		Title: "DCA-aware receive autotuning (§4): buffer sizing that knows the L3",
		Paper: "§4: 'window size tuning should take into account not only latency and throughput but also L3 sizes'",
		Run:   ext6DCAAwareDRS,
	})
	register(Experiment{
		ID:    "ext7",
		Title: "Receiver-driven scheduling (§4): bounding concurrent incast senders",
		Paper: "§3.3/§4: receiver-driven protocols can control the number of active flows per core",
		Run:   ext7RcvScheduler,
	})
}

func ext1Steering(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "ext1",
		Title: "Single-flow performance per steering mechanism",
		Columns: []string{"steering", "thpt-per-core", "total-thpt",
			"miss-rate", "lock-share", "rcv-busy-cores"},
	}
	for _, mode := range []string{"arfs", "same-numa", "rfs", "rps", "rss", "worst"} {
		s := hostsim.AllOptimizations()
		s.Steering = mode
		r, err := run(rc.config(s), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			mode, gb(r.ThroughputPerCoreGbps), gb(r.ThroughputGbps),
			pct(r.Receiver.CacheMissRate), pct(r.Receiver.Breakdown["lock"]),
			fmt.Sprintf("%.2f", r.Receiver.BusyCores),
		})
	}
	t.Notes = append(t.Notes,
		"aRFS wins per-core: one core runs IRQ+TCP+app with warm caches and uncontended locks",
		"software RFS reaches the app's core but pays the backlog/IPI hop; RPS additionally keeps locks contended",
		"plain RSS pipelines across two cores: higher total, lower per-core efficiency")
	return t, nil
}

func ext2ZeroCopy(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "ext2",
		Title: "Zero-copy transmit/receive on the single-flow baseline",
		Columns: []string{"config", "thpt-per-core", "snd-busy", "rcv-busy",
			"rcv-copy-share", "rcv-memory-share"},
	}
	cases := []struct {
		name   string
		zt, zr bool
	}{
		{"baseline (copies)", false, false},
		{"MSG_ZEROCOPY (tx)", true, false},
		{"mmap receive (rx)", false, true},
		{"both", true, true},
	}
	for _, c := range cases {
		s := hostsim.AllOptimizations()
		s.ZeroCopyTx, s.ZeroCopyRx = c.zt, c.zr
		r, err := run(rc.config(s), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name, gb(r.ThroughputPerCoreGbps),
			fmt.Sprintf("%.2f", r.Sender.BusyCores),
			fmt.Sprintf("%.2f", r.Receiver.BusyCores),
			pct(r.Receiver.Breakdown["data_copy"]),
			pct(r.Receiver.Breakdown["memory"]),
		})
	}
	t.Notes = append(t.Notes,
		"tx zero-copy halves sender CPU but cannot raise a receiver-bound flow's throughput (the paper's §4 argument)",
		"rx zero-copy removes the dominant overhead; remaining per-skb protocol costs keep it below line rate")
	return t, nil
}

func ext3Segregation(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "ext3",
		Title: "One long flow + 16 short flows: shared core vs segregated cores",
		Columns: []string{"placement", "long-gbps", "short-gbps(one-way)",
			"rcv-busy-cores", "long+short-per-core"},
	}
	for _, c := range []struct {
		name string
		seg  bool
	}{
		{"shared core (Fig. 11)", false},
		{"segregated cores (§4)", true},
	} {
		wl := hostsim.MixedWorkload(16, 4096)
		wl.Segregate = c.seg
		r, err := run(rc.config(hostsim.AllOptimizations()), wl)
		if err != nil {
			return nil, err
		}
		perCore := 0.0
		if r.Receiver.BusyCores > 0 {
			perCore = (r.LongFlowGbps + r.RPCGbps) / r.Receiver.BusyCores
		}
		t.Rows = append(t.Rows, []string{
			c.name, gb(r.LongFlowGbps), gb(r.RPCGbps),
			fmt.Sprintf("%.2f", r.Receiver.BusyCores), gb(perCore),
		})
	}
	t.Notes = append(t.Notes,
		"segregation restores each class to near its isolated efficiency — the paper's application-aware scheduling proposal quantified")
	return t, nil
}

func ext4Bandwidth(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "ext4",
		Title: "Single flow vs access-link bandwidth",
		Columns: []string{"link", "thpt-gbps", "link-utilization",
			"rcv-busy-cores", "bottleneck"},
	}
	for _, gbps := range []int{10, 25, 40, 100, 200, 400} {
		cfg := rc.config(hostsim.AllOptimizations())
		cfg.LinkGbps = gbps
		r, err := run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			return nil, err
		}
		bottleneck := "host CPU"
		if r.ThroughputGbps > 0.9*float64(gbps) {
			bottleneck = "link"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dG", gbps), gb(r.ThroughputGbps),
			pct(r.ThroughputGbps / float64(gbps)),
			fmt.Sprintf("%.2f", r.Receiver.BusyCores), bottleneck,
		})
	}
	t.Notes = append(t.Notes,
		"reproduces the paper's motivation: one core saturates 10-40G links; from 100G the host CPU is the bottleneck",
		"the Terabit-Ethernet trend (§5) only widens the gap")
	return t, nil
}

func ext5Fairness(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "ext5",
		Title:   "Jain's fairness index over per-flow goodput",
		Columns: []string{"pattern", "flows", "total-thpt", "fairness", "min-flow", "max-flow"},
	}
	cases := []struct {
		p hostsim.Pattern
		n int
	}{
		{hostsim.PatternOneToOne, 8},
		{hostsim.PatternOneToOne, 24},
		{hostsim.PatternIncast, 8},
		{hostsim.PatternOutcast, 8},
		{hostsim.PatternAllToAll, 8},
	}
	for _, c := range cases {
		r, err := run(rc.config(hostsim.AllOptimizations()), hostsim.LongFlowWorkload(c.p, c.n))
		if err != nil {
			return nil, err
		}
		lo, hi := r.FlowGbps[0], r.FlowGbps[0]
		for _, f := range r.FlowGbps {
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		t.Rows = append(t.Rows, []string{
			string(c.p), fmt.Sprintf("%d", len(r.FlowGbps)), gb(r.ThroughputGbps),
			fmt.Sprintf("%.3f", r.FairnessIndex), gb(lo), gb(hi),
		})
	}
	t.Notes = append(t.Notes,
		"saturated patterns share the link fairly (index near 1); outcast is TSQ/egress-fair by construction")
	return t, nil
}

func ext6DCAAwareDRS(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "ext6",
		Title:   "Single flow: default vs DCA-aware receive autotuning vs hand tuning",
		Columns: []string{"autotuning", "thpt-per-core", "miss-rate", "napi->copy avg"},
	}
	cases := []struct {
		name string
		mut  func(*hostsim.Stack)
	}{
		{"default DRS (to 6MB)", func(*hostsim.Stack) {}},
		{"DCA-aware DRS", func(s *hostsim.Stack) { s.DCAAwareDRS = true }},
		{"hand-tuned 3200KB", func(s *hostsim.Stack) { s.RcvBufBytes = 3200 << 10; s.RxDescriptors = 256 }},
	}
	for _, c := range cases {
		s := hostsim.AllOptimizations()
		c.mut(&s)
		r, err := run(rc.config(s), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.name, gb(r.ThroughputPerCoreGbps),
			pct(r.Receiver.CacheMissRate), r.Receiver.LatencyAvg.Round(1000).String()})
	}
	t.Notes = append(t.Notes,
		"capping autotuning at the DDIO capacity recovers nearly all of the hand-tuned gain with no manual parameters")
	return t, nil
}

func ext7RcvScheduler(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "ext7",
		Title: "8-flow incast: sender-driven TCP vs receiver-driven scheduling",
		Columns: []string{"receiver control", "thpt-per-core", "miss-rate",
			"napi->copy avg", "fairness"},
	}
	cases := []struct {
		name string
		k    int
	}{
		{"none (plain TCP)", 0},
		{"K=1 active flow", 1},
		{"K=2 active flows", 2},
		{"K=4 active flows", 4},
	}
	for _, c := range cases {
		s := hostsim.AllOptimizations()
		s.RcvSchedulerK = c.k
		r, err := run(rc.config(s), hostsim.LongFlowWorkload(hostsim.PatternIncast, 8))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.name, gb(r.ThroughputPerCoreGbps),
			pct(r.Receiver.CacheMissRate), r.Receiver.LatencyAvg.Round(1000).String(),
			fmt.Sprintf("%.3f", r.FairnessIndex)})
	}
	t.Notes = append(t.Notes,
		"bounding concurrent senders bounds DDIO occupancy: cache hits return, host latency collapses, fairness holds via rotation",
		"this is the §3.3 implication quantified — sender-driven TCP denies the receiver this control")
	return t, nil
}
