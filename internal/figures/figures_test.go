package figures

import (
	"strings"
	"testing"
	"time"
)

// quick returns a fast measurement window for tests.
func quick() RunConfig {
	return RunConfig{Seed: 3, Warmup: 6 * time.Millisecond, Duration: 8 * time.Millisecond}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f",
		"fig4",
		"fig5a", "fig5b", "fig5c",
		"fig6a", "fig6b", "fig6c",
		"fig7a", "fig7b", "fig7c",
		"fig8a", "fig8b", "fig8c",
		"fig9a", "fig9b", "fig9c", "fig9d",
		"fig10a", "fig10b", "fig10c",
		"fig11a", "fig11b",
		"fig12a", "fig12b", "fig12c",
		"fig13a", "fig13b", "fig13c",
		"table2",
		"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7",
		"abl1", "abl2", "abl3", "abl4", "abl5",
		"app1", "app2", "app3", "app4", "app5",
		"fab1", "fab2", "fab3", "fab4", "fab5", "fab6",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("All()[%d] = %s, want %s (paper order)", i, got[i].ID, id)
		}
	}
	for _, e := range got {
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig3a"); !ok {
		t.Error("fig3a not found")
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("fig99 should not exist")
	}
}

// Every experiment must run end to end and produce a consistent table.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	ClearCache()
	rc := quick()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(rc)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
				t.Fatal("empty table")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("row %d has %d cells, want %d", i, len(row), len(tbl.Columns))
				}
			}
			s := tbl.String()
			if !strings.Contains(s, e.ID) || !strings.Contains(s, tbl.Columns[0]) {
				t.Error("rendered table missing header")
			}
		})
	}
}

func TestRunCache(t *testing.T) {
	ClearCache()
	rc := quick()
	if _, err := fig3a(rc); err != nil {
		t.Fatal(err)
	}
	n := CacheSize()
	if n == 0 {
		t.Fatal("cache empty after a run")
	}
	// Re-running the same figure must not add entries.
	if _, err := fig3a(rc); err != nil {
		t.Fatal(err)
	}
	if CacheSize() != n {
		t.Errorf("cache grew on identical rerun: %d -> %d", n, CacheSize())
	}
	// fig3b shares fig3a's ladder runs.
	if _, err := fig3b(rc); err != nil {
		t.Fatal(err)
	}
	if CacheSize() != n {
		t.Errorf("fig3b should fully reuse fig3a's runs (%d -> %d)", n, CacheSize())
	}
	ClearCache()
	if CacheSize() != 0 {
		t.Error("ClearCache left entries")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"wide-cell-value", "1"}},
		Notes:   []string{"hello"},
	}
	s := tbl.String()
	for _, want := range []string{"== x: demo ==", "wide-cell-value", "long-column", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d", len(lines))
	}
}

func TestCSVAndMarkdownRendering(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"v,1", `say "hi"`}, {"2", "3"}},
		Notes:   []string{"a note"},
	}
	csv := tbl.CSV()
	wantCSV := "a,b\n\"v,1\",\"say \"\"hi\"\"\"\n2,3\n"
	if csv != wantCSV {
		t.Errorf("CSV:\n%q\nwant:\n%q", csv, wantCSV)
	}
	md := tbl.Markdown()
	for _, want := range []string{"### x: demo", "| a | b |", "|---|---|", "| 2 | 3 |", "*a note*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestOrdering(t *testing.T) {
	cases := []struct {
		a, b string
	}{
		{"fig3a", "fig3b"},
		{"fig3f", "fig4"},
		{"fig9d", "fig10a"},
		{"fig13c", "table2"},
	}
	for _, c := range cases {
		if !less(c.a, c.b) {
			t.Errorf("%s should sort before %s", c.a, c.b)
		}
		if less(c.b, c.a) {
			t.Errorf("%s should not sort before %s", c.b, c.a)
		}
	}
}
