package figures

import (
	"fmt"
	"time"

	"hostsim"
)

func init() {
	register(Experiment{
		ID:    "fig3a",
		Title: "Single flow: throughput-per-core by optimization level",
		Paper: "No-opt a few Gbps; all optimizations reach ~42Gbps/core; each step helps",
		Run:   fig3a,
	})
	register(Experiment{
		ID:    "fig3b",
		Title: "Single flow: sender/receiver CPU utilization by optimization level",
		Paper: "Receiver-side CPU is always the bottleneck; aRFS halves receiver utilization",
		Run:   fig3b,
	})
	register(Experiment{
		ID:    "fig3c",
		Title: "Single flow: sender CPU breakdown",
		Paper: "With all optimizations data copy dominates the sender",
		Run:   fig3c,
	})
	register(Experiment{
		ID:    "fig3d",
		Title: "Single flow: receiver CPU breakdown",
		Paper: "With all optimizations data copy takes ~49% of receiver cycles",
		Run:   fig3d,
	})
	register(Experiment{
		ID:    "fig3e",
		Title: "Cache miss rate and throughput vs NIC ring size and TCP Rx buffer",
		Paper: "Miss rate rises with ring size and buffer size; 3200KB + small ring is optimal (~55Gbps)",
		Run:   fig3e,
	})
	register(Experiment{
		ID:    "fig3f",
		Title: "NAPI-to-copy latency vs TCP Rx buffer size",
		Paper: "Latency rises rapidly beyond 1600KB buffers (to milliseconds)",
		Run:   fig3f,
	})
}

func singleFlowLadder(rc RunConfig) (map[string]*hostsim.Result, []string, error) {
	steps := ladder()
	specs := make([]runSpec, len(steps))
	order := make([]string, len(steps))
	for i, step := range steps {
		specs[i] = runSpec{rc.config(step.Stack), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)}
		order[i] = step.Name
	}
	results, err := runBatch(rc, specs)
	if err != nil {
		return nil, nil, err
	}
	out := map[string]*hostsim.Result{}
	for i, r := range results {
		out[order[i]] = r
	}
	return out, order, nil
}

func fig3a(rc RunConfig) (*Table, error) {
	results, order, err := singleFlowLadder(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3a",
		Title:   "Single flow throughput-per-core (Gbps)",
		Columns: []string{"config", "thpt-per-core", "total-thpt"},
	}
	for _, name := range order {
		r := results[name]
		t.Rows = append(t.Rows, []string{name, gb(r.ThroughputPerCoreGbps), gb(r.ThroughputGbps)})
	}
	abs := ablations()
	specs := make([]runSpec, len(abs))
	for i, ab := range abs {
		specs[i] = runSpec{rc.config(ab.Stack), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)}
	}
	abRes, err := runBatch(rc, specs)
	if err != nil {
		return nil, err
	}
	for i, ab := range abs {
		r := abRes[i]
		t.Rows = append(t.Rows, []string{ab.Name, gb(r.ThroughputPerCoreGbps), gb(r.ThroughputGbps)})
	}
	t.Notes = append(t.Notes, "paper: ~42Gbps/core with all optimizations")
	return t, nil
}

func fig3b(rc RunConfig) (*Table, error) {
	results, order, err := singleFlowLadder(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3b",
		Title:   "Single flow CPU utilization (% of one core)",
		Columns: []string{"config", "sender-cpu", "receiver-cpu"},
	}
	for _, name := range order {
		r := results[name]
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.0f%%", r.Sender.BusyCores*100),
			fmt.Sprintf("%.0f%%", r.Receiver.BusyCores*100),
		})
	}
	t.Notes = append(t.Notes, "paper: receiver CPU always exceeds sender CPU")
	return t, nil
}

func fig3c(rc RunConfig) (*Table, error) {
	return ladderBreakdown(rc, "fig3c", "Sender CPU breakdown by optimization level", true)
}

func fig3d(rc RunConfig) (*Table, error) {
	return ladderBreakdown(rc, "fig3d", "Receiver CPU breakdown by optimization level", false)
}

func ladderBreakdown(rc RunConfig, id, title string, sender bool) (*Table, error) {
	results, order, err := singleFlowLadder(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title, Columns: breakdownHeader("config")}
	for _, name := range order {
		r := results[name]
		bd := r.Receiver.Breakdown
		if sender {
			bd = r.Sender.Breakdown
		}
		t.Rows = append(t.Rows, breakdownRow(name, bd))
	}
	return t, nil
}

func fig3e(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "fig3e",
		Title:   "Throughput and receiver cache miss rate vs ring size x Rx buffer",
		Columns: []string{"rx-buffer", "ring", "thpt-gbps", "miss-rate"},
	}
	buffers := []struct {
		name  string
		bytes int64
	}{
		{"3200KB", 3200 << 10},
		{"6400KB", 6400 << 10},
		{"default", 0}, // autotuned
	}
	rings := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	var specs []runSpec
	var labels [][2]string
	for _, buf := range buffers {
		for _, ring := range rings {
			s := hostsim.AllOptimizations()
			s.RcvBufBytes = buf.bytes
			s.RxDescriptors = ring
			specs = append(specs, runSpec{rc.config(s), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)})
			labels = append(labels, [2]string{buf.name, fmt.Sprintf("%d", ring)})
		}
	}
	results, err := runBatch(rc, specs)
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.Rows = append(t.Rows, []string{
			labels[i][0], labels[i][1],
			gb(r.ThroughputGbps), pct(r.Receiver.CacheMissRate),
		})
	}
	t.Notes = append(t.Notes,
		"paper: miss rate rises with ring size and with buffer size; 3200KB + <=512 descriptors is optimal")
	return t, nil
}

func fig3f(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "fig3f",
		Title:   "Latency from NAPI to start of data copy vs Rx buffer size",
		Columns: []string{"rx-buffer-KB", "avg-latency", "p99-latency", "thpt-gbps"},
	}
	kbs := []int64{100, 200, 400, 800, 1600, 3200, 6400, 12800}
	specs := make([]runSpec, len(kbs))
	for i, kb := range kbs {
		s := hostsim.AllOptimizations()
		s.RcvBufBytes = kb << 10
		specs[i] = runSpec{rc.config(s), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)}
	}
	results, err := runBatch(rc, specs)
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", kbs[i]),
			r.Receiver.LatencyAvg.Round(time.Microsecond).String(),
			r.Receiver.LatencyP99.Round(time.Microsecond).String(),
			gb(r.ThroughputGbps),
		})
	}
	t.Notes = append(t.Notes, "paper: avg and p99 rise rapidly beyond 1600KB")
	return t, nil
}
