package figures

import (
	"fmt"

	"hostsim/internal/nic"
	"hostsim/internal/skb"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Receiver-side flow steering mechanisms",
		Paper: "RSS hashes the 4-tuple; RFS/aRFS find the application's core",
		Run:   table2,
	})
}

// table2 demonstrates the core-selection behaviour of the steering
// mechanisms of Table 2 for a set of flows whose applications run on
// known cores.
func table2(rc RunConfig) (*Table, error) {
	appCores := map[skb.FlowID]int{1: 3, 2: 9, 3: 15, 4: 21}
	all := make([]int, 24)
	for i := range all {
		all[i] = i
	}
	rss := nic.RSS{Cores: all}
	arfs := nic.Pinned{Table: map[skb.FlowID]int{}, Fallback: rss}
	for f, c := range appCores {
		arfs.Table[f] = c
	}
	// The paper's deterministic "aRFS disabled" worst case: IRQs pinned
	// to a single remote core.
	worst := nic.FixedCore(6)

	t := &Table{
		ID:    "table2",
		Title: "Core selected for IRQ processing per mechanism",
		Columns: []string{"flow", "app-core", "RSS(hash)", "aRFS(app core)",
			"worst-case pin", "aRFS==app"},
	}
	for f := skb.FlowID(1); f <= 4; f++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", f),
			fmt.Sprintf("%d", appCores[f]),
			fmt.Sprintf("%d", rss.QueueFor(f)),
			fmt.Sprintf("%d", arfs.QueueFor(f)),
			fmt.Sprintf("%d", worst.QueueFor(f)),
			fmt.Sprintf("%v", arfs.QueueFor(f) == appCores[f]),
		})
	}
	t.Notes = append(t.Notes,
		"RPS/RFS are the software analogues of RSS/aRFS: same core selection, performed by the kernel instead of the NIC")
	return t, nil
}
