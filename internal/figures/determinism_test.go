package figures

import (
	"strings"
	"testing"
)

// renderAll regenerates the given experiments from a cold cache at the
// given parallelism and returns the concatenated text and CSV renderings
// — exactly what cmd/figures would print.
func renderAll(t *testing.T, ids []string, jobs int) (text, csv string) {
	t.Helper()
	ClearCache()
	rc := quick()
	rc.Jobs = jobs
	var exps []Experiment
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		exps = append(exps, e)
	}
	tables, err := RunAll(rc, exps)
	if err != nil {
		t.Fatal(err)
	}
	var tb, cb strings.Builder
	for _, tbl := range tables {
		tb.WriteString(tbl.String())
		cb.WriteString(tbl.CSV())
	}
	return tb.String(), cb.String()
}

// TestDeterminismAcrossJobs is the parallelism contract: regenerating
// figures at -jobs 8 produces byte-identical text and CSV output to
// -jobs 1. The set below mixes memo-sharing sub-figures (3a-3d share the
// ladder runs), a large grid sweep (3e) and a buffer sweep (3f).
func TestDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments twice")
	}
	ids := []string{"fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f"}
	text1, csv1 := renderAll(t, ids, 1)
	text8, csv8 := renderAll(t, ids, 8)
	if text1 != text8 {
		t.Errorf("text output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", text1, text8)
	}
	if csv1 != csv8 {
		t.Errorf("CSV output differs between -jobs 1 and -jobs 8")
	}
	if !strings.Contains(text1, "fig3e") || !strings.Contains(csv1, "rx-buffer") {
		t.Error("rendered output suspiciously incomplete")
	}
}
