package figures

import (
	"fmt"

	"hostsim"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Single flow on NIC-local vs NIC-remote NUMA node",
		Paper: "NIC-remote NUMA costs ~20% throughput-per-core; miss rate jumps",
		Run:   fig4,
	})
	register(Experiment{
		ID:    "fig5a",
		Title: "One-to-one: throughput-per-core vs flow count",
		Paper: "Throughput-per-core drops 64% from 1 to 24 flows; link saturates at 8",
		Run:   fig5a,
	})
	register(Experiment{
		ID:    "fig5b",
		Title: "One-to-one: sender CPU breakdown vs flow count",
		Paper: "Data-copy share falls, scheduling share rises with flows",
		Run:   func(rc RunConfig) (*Table, error) { return flowsBreakdown(rc, "fig5b", hostsim.PatternOneToOne, true) },
	})
	register(Experiment{
		ID:    "fig5c",
		Title: "One-to-one: receiver CPU breakdown vs flow count",
		Paper: "Memory share falls (page recycling), scheduling share rises (idling)",
		Run:   func(rc RunConfig) (*Table, error) { return flowsBreakdown(rc, "fig5c", hostsim.PatternOneToOne, false) },
	})
	register(Experiment{
		ID:    "fig6a",
		Title: "Incast: throughput-per-core vs flow count",
		Paper: "~19% throughput-per-core drop at 8 flows vs single flow",
		Run:   fig6a,
	})
	register(Experiment{
		ID:    "fig6b",
		Title: "Incast: receiver CPU breakdown vs flow count",
		Paper: "Breakdown stays stable: no categorical shift, only per-byte copy cost grows",
		Run:   func(rc RunConfig) (*Table, error) { return flowsBreakdown(rc, "fig6b", hostsim.PatternIncast, false) },
	})
	register(Experiment{
		ID:    "fig6c",
		Title: "Incast: receiver cache miss rate vs flow count",
		Paper: "Miss rate climbs 48% -> 78% from 1 to 8 flows, tracking the tpc loss",
		Run:   fig6c,
	})
	register(Experiment{
		ID:    "fig7a",
		Title: "Outcast: throughput-per-sender-core vs flow count",
		Paper: "Sender pipeline reaches ~89Gbps per core at 8 flows (2.1x the incast receiver)",
		Run:   fig7a,
	})
	register(Experiment{
		ID:    "fig7b",
		Title: "Outcast: sender CPU breakdown vs flow count",
		Paper: "Data copy remains the dominant consumer even at the sender",
		Run:   func(rc RunConfig) (*Table, error) { return flowsBreakdown(rc, "fig7b", hostsim.PatternOutcast, true) },
	})
	register(Experiment{
		ID:    "fig7c",
		Title: "Outcast: CPU utilization and sender cache miss",
		Paper: "Sender core saturates from 8 flows; sender misses stay low (~11%)",
		Run:   fig7c,
	})
	register(Experiment{
		ID:    "fig8a",
		Title: "All-to-all: throughput-per-core vs grid size",
		Paper: "~67% throughput-per-core loss from 1x1 to 24x24",
		Run:   fig8a,
	})
	register(Experiment{
		ID:    "fig8b",
		Title: "All-to-all: receiver CPU breakdown vs grid size",
		Paper: "TCP/IP share rises (smaller skbs), memory falls, scheduling rises",
		Run:   fig8b,
	})
	register(Experiment{
		ID:    "fig8c",
		Title: "All-to-all: post-GRO skb size distribution",
		Paper: "The 64KB skb share collapses as flow count grows",
		Run:   fig8c,
	})
}

var flowCounts = []int{1, 8, 16, 24}

func fig4(rc RunConfig) (*Table, error) {
	local, err := run(rc.config(hostsim.AllOptimizations()), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
	if err != nil {
		return nil, err
	}
	remote, err := run(rc.config(hostsim.AllOptimizations()),
		hostsim.Workload{Kind: "long", Pattern: hostsim.PatternSingle, RemoteNUMA: true})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4",
		Title:   "NIC-local vs NIC-remote NUMA placement (single flow)",
		Columns: []string{"placement", "thpt-per-core", "miss-rate"},
		Rows: [][]string{
			{"NIC-local NUMA", gb(local.ThroughputPerCoreGbps), pct(local.Receiver.CacheMissRate)},
			{"NIC-remote NUMA", gb(remote.ThroughputPerCoreGbps), pct(remote.Receiver.CacheMissRate)},
		},
	}
	drop := 1 - remote.ThroughputPerCoreGbps/local.ThroughputPerCoreGbps
	t.Notes = append(t.Notes, fmt.Sprintf("throughput-per-core drop: %.0f%% (paper ~20%%)", drop*100))
	return t, nil
}

// patternFlows runs a pattern at each flow count with all optimizations.
func patternFlows(rc RunConfig, p hostsim.Pattern) (map[int]*hostsim.Result, error) {
	out := map[int]*hostsim.Result{}
	for _, n := range flowCounts {
		wl := hostsim.LongFlowWorkload(p, n)
		if n == 1 {
			wl = hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
		}
		r, err := run(rc.config(hostsim.AllOptimizations()), wl)
		if err != nil {
			return nil, err
		}
		out[n] = r
	}
	return out, nil
}

func fig5a(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "fig5a",
		Title:   "One-to-one throughput-per-core by optimization level and flow count",
		Columns: []string{"flows", "no-opt", "+tso/gro", "+jumbo", "+arfs", "total-thpt(all)"},
	}
	for _, n := range flowCounts {
		row := []string{fmt.Sprintf("%d", n)}
		var all *hostsim.Result
		for _, step := range ladder() {
			wl := hostsim.LongFlowWorkload(hostsim.PatternOneToOne, n)
			if n == 1 {
				wl = hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
			}
			r, err := run(rc.config(step.Stack), wl)
			if err != nil {
				return nil, err
			}
			row = append(row, gb(r.ThroughputPerCoreGbps))
			all = r
		}
		row = append(row, gb(all.ThroughputGbps))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: tpc decreases 64% by 24 flows despite one flow per core")
	return t, nil
}

func flowsBreakdown(rc RunConfig, id string, p hostsim.Pattern, sender bool) (*Table, error) {
	results, err := patternFlows(rc, p)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: "CPU breakdown vs flow count (" + string(p) + ")",
		Columns: breakdownHeader("flows")}
	for _, n := range flowCounts {
		bd := results[n].Receiver.Breakdown
		if sender {
			bd = results[n].Sender.Breakdown
		}
		t.Rows = append(t.Rows, breakdownRow(fmt.Sprintf("%d", n), bd))
	}
	return t, nil
}

func fig6a(rc RunConfig) (*Table, error) {
	results, err := patternFlows(rc, hostsim.PatternIncast)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6a",
		Title:   "Incast throughput-per-core vs flow count",
		Columns: []string{"flows", "thpt-per-core", "total-thpt"},
	}
	for _, n := range flowCounts {
		r := results[n]
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n),
			gb(r.ThroughputPerCoreGbps), gb(r.ThroughputGbps)})
	}
	return t, nil
}

func fig6c(rc RunConfig) (*Table, error) {
	results, err := patternFlows(rc, hostsim.PatternIncast)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6c",
		Title:   "Incast receiver cache miss rate vs flow count",
		Columns: []string{"flows", "miss-rate", "thpt-per-core"},
	}
	for _, n := range flowCounts {
		r := results[n]
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n),
			pct(r.Receiver.CacheMissRate), gb(r.ThroughputPerCoreGbps)})
	}
	t.Notes = append(t.Notes, "paper: miss growth correlates with tpc degradation")
	return t, nil
}

func fig7a(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:      "fig7a",
		Title:   "Outcast throughput-per-sender-core by optimization level and flow count",
		Columns: []string{"flows", "no-opt", "+tso/gro", "+jumbo", "+arfs", "total-thpt(all)"},
	}
	for _, n := range flowCounts {
		row := []string{fmt.Sprintf("%d", n)}
		var all *hostsim.Result
		for _, step := range ladder() {
			wl := hostsim.LongFlowWorkload(hostsim.PatternOutcast, n)
			if n == 1 {
				wl = hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
			}
			r, err := run(rc.config(step.Stack), wl)
			if err != nil {
				return nil, err
			}
			row = append(row, gb(r.ThroughputGbps/r.Sender.BusyCores))
			all = r
		}
		row = append(row, gb(all.ThroughputGbps))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: ~89Gbps per sender core at 8 flows")
	return t, nil
}

func fig7c(rc RunConfig) (*Table, error) {
	results, err := patternFlows(rc, hostsim.PatternOutcast)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig7c",
		Title:   "Outcast CPU utilization and sender-side copy cache behaviour",
		Columns: []string{"flows", "sender-cpu", "receiver-cpu", "sender-copy-share"},
	}
	for _, n := range flowCounts {
		r := results[n]
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f%%", r.Sender.BusyCores*100),
			fmt.Sprintf("%.0f%%", r.Receiver.BusyCores*100),
			pct(r.Sender.Breakdown["data_copy"])})
	}
	t.Notes = append(t.Notes, "paper: sender core underutilised at 1 flow, saturated from 8")
	return t, nil
}

func allToAllResults(rc RunConfig) (map[int]*hostsim.Result, error) {
	out := map[int]*hostsim.Result{}
	for _, n := range flowCounts {
		wl := hostsim.LongFlowWorkload(hostsim.PatternAllToAll, n)
		if n == 1 {
			wl = hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
		}
		r, err := run(rc.config(hostsim.AllOptimizations()), wl)
		if err != nil {
			return nil, err
		}
		out[n] = r
	}
	return out, nil
}

func fig8a(rc RunConfig) (*Table, error) {
	results, err := allToAllResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8a",
		Title:   "All-to-all throughput-per-core vs grid size",
		Columns: []string{"flows", "thpt-per-core", "total-thpt"},
	}
	for _, n := range flowCounts {
		r := results[n]
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%dx%d", n, n),
			gb(r.ThroughputPerCoreGbps), gb(r.ThroughputGbps)})
	}
	t.Notes = append(t.Notes, "paper: ~67% tpc reduction from 1x1 to 24x24")
	return t, nil
}

func fig8b(rc RunConfig) (*Table, error) {
	results, err := allToAllResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig8b", Title: "All-to-all receiver CPU breakdown",
		Columns: breakdownHeader("flows")}
	for _, n := range flowCounts {
		t.Rows = append(t.Rows, breakdownRow(fmt.Sprintf("%dx%d", n, n), results[n].Receiver.Breakdown))
	}
	return t, nil
}

func fig8c(rc RunConfig) (*Table, error) {
	results, err := allToAllResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8c",
		Title:   "Post-GRO skb sizes vs grid size",
		Columns: []string{"flows", "avg-skb-KB", "64KB-share"},
	}
	for _, n := range flowCounts {
		r := results[n]
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%dx%d", n, n),
			fmt.Sprintf("%.1f", r.Receiver.SKBAvgBytes/1024),
			pct(r.Receiver.SKB64KBShare)})
	}
	t.Notes = append(t.Notes, "paper: the 64KB fraction collapses as flows multiply")
	return t, nil
}
