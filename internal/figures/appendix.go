package figures

import (
	"fmt"

	"hostsim"
)

// The app* experiments regenerate the breakdowns the paper's figures
// reference with "see [7]" (the authors' extended technical report):
// sender-side incast, receiver-side outcast, and the client-side views of
// the RPC and mixed workloads.

func init() {
	register(Experiment{
		ID:    "app1",
		Title: "Appendix: incast sender-side CPU breakdown",
		Paper: "Fig. 6 caption: 'See [7] for sender-side CPU breakdown'",
		Run: func(rc RunConfig) (*Table, error) {
			return flowsBreakdown(rc, "app1", hostsim.PatternIncast, true)
		},
	})
	register(Experiment{
		ID:    "app2",
		Title: "Appendix: outcast receiver-side CPU breakdown",
		Paper: "Fig. 7 caption: 'Refer to [7] for receiver-side CPU breakdown'",
		Run: func(rc RunConfig) (*Table, error) {
			return flowsBreakdown(rc, "app2", hostsim.PatternOutcast, false)
		},
	})
	register(Experiment{
		ID:    "app3",
		Title: "Appendix: RPC client-side CPU breakdown vs size",
		Paper: "Fig. 10 caption: 'See [7] for client-side CPU breakdown'",
		Run:   app3RPCClients,
	})
	register(Experiment{
		ID:    "app4",
		Title: "Appendix: mixed-workload client-side CPU breakdown",
		Paper: "Fig. 11 caption: 'refer to [7] for client-side CPU breakdown'",
		Run:   app4MixedClients,
	})
	register(Experiment{
		ID:    "app5",
		Title: "Appendix: all-to-all sender-side CPU breakdown",
		Paper: "Fig. 8 caption: 'See [7] for sender-side CPU breakdown'",
		Run:   app5AllToAllSenders,
	})
}

func app3RPCClients(rc RunConfig) (*Table, error) {
	results, err := rpcResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "app3", Title: "RPC client-host CPU breakdown vs size",
		Columns: breakdownHeader("rpc-size-KB")}
	for _, size := range rpcSizes {
		t.Rows = append(t.Rows, breakdownRow(fmt.Sprintf("%d", size>>10), results[size].Sender.Breakdown))
	}
	t.Notes = append(t.Notes, "clients mirror the server's shift from protocol+scheduling to copy as RPCs grow")
	return t, nil
}

func app4MixedClients(rc RunConfig) (*Table, error) {
	results, err := mixedResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "app4", Title: "Mixed workload: sender-host (client-side) CPU breakdown",
		Columns: breakdownHeader("short-flows")}
	for _, n := range shortCounts {
		t.Rows = append(t.Rows, breakdownRow(fmt.Sprintf("%d", n), results[n].Sender.Breakdown))
	}
	return t, nil
}

func app5AllToAllSenders(rc RunConfig) (*Table, error) {
	results, err := allToAllResults(rc)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "app5", Title: "All-to-all sender-side CPU breakdown",
		Columns: breakdownHeader("flows")}
	for _, n := range flowCounts {
		t.Rows = append(t.Rows, breakdownRow(fmt.Sprintf("%dx%d", n, n), results[n].Sender.Breakdown))
	}
	t.Notes = append(t.Notes, "sender-side scheduling share grows with thread count per core, as §3.5 describes")
	return t, nil
}
