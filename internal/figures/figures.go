// Package figures regenerates every table and figure of the paper's
// evaluation (§3, Figs. 3-13 and Table 2) from the simulator. Each
// experiment produces text tables with the same rows/series the paper
// plots; cmd/figures renders them and bench_test.go wraps each in a
// benchmark.
package figures

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hostsim"
	"hostsim/internal/runner"
)

// RunConfig controls simulation length and seeding for all experiments.
type RunConfig struct {
	Seed     int64
	Warmup   time.Duration
	Duration time.Duration
	// Jobs is the number of simulations run concurrently (within an
	// experiment's batched sweeps and across experiments in RunAll).
	// <= 1 means serial. Output is byte-identical at any value: results
	// are always assembled in submission order and each run is an
	// isolated, seeded simulation.
	Jobs int
	// Check runs every simulation with the conservation-law invariant
	// checker armed (fail-fast). Audits are pure reads, so checked runs
	// produce byte-identical tables.
	Check bool
	// CostScale perturbs individual per-operation cycle costs (see
	// hostsim.Config.CostScale); the validate sensitivity sweeps use it
	// to regenerate tables under a perturbed cost model. The run memo
	// keys on the rendered config, so runs at different scales never
	// alias.
	CostScale map[string]float64
}

// checkOpts is the one CheckOptions value shared by every checked run.
// A single package-level pointer keeps the run memo's "%+v" keys stable:
// the pointer field renders as the same address for every config.
var checkOpts = &hostsim.CheckOptions{}

// jobs returns the effective parallelism degree.
func (rc RunConfig) jobs() int {
	if rc.Jobs <= 1 {
		return 1
	}
	return rc.Jobs
}

// Default returns the standard measurement window.
func Default() RunConfig {
	return RunConfig{Seed: 7, Warmup: 15 * time.Millisecond, Duration: 25 * time.Millisecond}
}

func (rc RunConfig) config(s hostsim.Stack) hostsim.Config {
	cfg := hostsim.Config{Stack: s, Seed: rc.Seed, Warmup: rc.Warmup, Duration: rc.Duration,
		CostScale: rc.CostScale}
	if rc.Check {
		cfg.Check = checkOpts
	}
	return cfg
}

// Table is one rendered figure/table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// CSV renders the table as comma-separated values (header + rows).
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment regenerates one paper figure.
type Experiment struct {
	ID    string // e.g. "fig3a"
	Title string
	Paper string // the paper's reported takeaway, for EXPERIMENTS.md
	Run   func(rc RunConfig) (*Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return less(out[i].ID, out[j].ID) })
	return out
}

// Less reports whether id a sorts before id b in paper order; consumers
// (validate) use it to keep derived id lists in the same order as All().
func Less(a, b string) bool { return less(a, b) }

// less orders figure ids naturally (fig3a < fig3e < fig10a < table2).
func less(a, b string) bool {
	na, sa := splitID(a)
	nb, sb := splitID(b)
	if na != nb {
		return na < nb
	}
	return sa < sb
}

func splitID(id string) (int, string) {
	digits, suffix := "", ""
	for i := 0; i < len(id); i++ {
		if id[i] >= '0' && id[i] <= '9' {
			digits += string(id[i])
		} else if digits != "" {
			suffix = id[i:]
			break
		}
	}
	var n int
	fmt.Sscanf(digits, "%d", &n)
	if strings.HasPrefix(id, "table") {
		n += 100 // tables sort after figures
	}
	if strings.HasPrefix(id, "ext") {
		n += 200 // extensions after tables
	}
	if strings.HasPrefix(id, "abl") {
		n += 300 // ablations after extensions
	}
	if strings.HasPrefix(id, "app") {
		n += 400 // appendix breakdowns last
	}
	if strings.HasPrefix(id, "fab") {
		n += 500 // fabric topologies after appendix
	}
	return n, suffix
}

// IDs lists every registered experiment id in paper order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// Shared run helpers. Runs are memoized per (config, workload) so that
// sub-figures sharing scenarios (3a-3d, 9a-9d, ...) pay once. The memo is
// a singleflight: when experiments run concurrently (RunAll with Jobs > 1)
// the first caller of a key executes the simulation and everyone else
// blocks on its completion, so no scenario ever runs twice.

type memoEntry struct {
	once sync.Once
	res  *hostsim.Result
	err  error
}

var (
	cacheMu  sync.Mutex
	runCache = map[string]*memoEntry{}
)

func run(cfg hostsim.Config, wl hostsim.Workload) (*hostsim.Result, error) {
	key := fmt.Sprintf("%+v|%+v", cfg, wl)
	cacheMu.Lock()
	e, ok := runCache[key]
	if !ok {
		e = &memoEntry{}
		runCache[key] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() { e.res, e.err = hostsim.Run(cfg, wl) })
	return e.res, e.err
}

// CacheSize returns the number of memoized runs (tests).
func CacheSize() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return len(runCache)
}

// ClearCache drops memoized runs (benchmarks use it to avoid reuse).
func ClearCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	runCache = map[string]*memoEntry{}
}

// runSpec names one simulation of a batched sweep.
type runSpec struct {
	cfg hostsim.Config
	wl  hostsim.Workload
}

// runBatch evaluates every spec — rc.Jobs at a time — and returns the
// results in spec order. Shared scenarios still run once (the memo
// dedupes). The first error in spec order is returned, matching what a
// serial loop would have reported.
func runBatch(rc RunConfig, specs []runSpec) ([]*hostsim.Result, error) {
	res := runner.Map(specs, func(s runSpec) (*hostsim.Result, error) {
		return run(s.cfg, s.wl)
	}, runner.Options{Workers: rc.jobs()})
	out := make([]*hostsim.Result, len(res))
	for i, r := range res {
		if r.Err != nil {
			return nil, r.Err
		}
		out[i] = r.Value
	}
	return out, nil
}

// RunAll regenerates the given experiments — rc.Jobs at a time — and
// returns their tables in the experiments' order. Tables and errors land
// exactly as a serial loop would produce them; the memo ensures scenarios
// shared between concurrently-running experiments execute once.
func RunAll(rc RunConfig, exps []Experiment) ([]*Table, error) {
	res := runner.Map(exps, func(e Experiment) (*Table, error) {
		return e.Run(rc)
	}, runner.Options{Workers: rc.jobs()})
	out := make([]*Table, len(res))
	for i, r := range res {
		if r.Err != nil {
			return nil, fmt.Errorf("%s: %w", exps[i].ID, r.Err)
		}
		out[i] = r.Value
	}
	return out, nil
}

// ladder returns the paper's incremental optimization steps of Fig. 3a.
func ladder() []struct {
	Name  string
	Stack hostsim.Stack
} {
	noOpt := hostsim.NoOptimizations()
	tsogro := noOpt
	tsogro.TSO, tsogro.GSO, tsogro.GRO = true, true, true
	jumbo := tsogro
	jumbo.JumboFrames = true
	all := hostsim.AllOptimizations()
	return []struct {
		Name  string
		Stack hostsim.Stack
	}{
		{"No Opt.", noOpt},
		{"+TSO/GRO", tsogro},
		{"+Jumbo", jumbo},
		{"+aRFS (all)", all},
	}
}

// ablations returns Fig. 3a's leave-one-out columns.
func ablations() []struct {
	Name  string
	Stack hostsim.Stack
} {
	all := hostsim.AllOptimizations()
	noTSOGRO := all
	noTSOGRO.TSO, noTSOGRO.GRO = false, false // GSO stays on (kernel default)
	noJumbo := all
	noJumbo.JumboFrames = false
	return []struct {
		Name  string
		Stack hostsim.Stack
	}{
		{"All Opt.", all},
		{"w/o TSO/GRO", noTSOGRO},
		{"w/o Jumbo", noJumbo},
	}
}

// breakdownColumns is the Table-1 category order used in all breakdowns.
var breakdownColumns = []string{
	"data_copy", "tcp/ip", "netdev", "skb_mgmt", "memory", "lock", "sched", "etc",
}

func breakdownRow(name string, bd map[string]float64) []string {
	row := []string{name}
	for _, c := range breakdownColumns {
		row = append(row, fmt.Sprintf("%.3f", bd[c]))
	}
	return row
}

func breakdownHeader(first string) []string {
	return append([]string{first}, breakdownColumns...)
}

func gb(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
