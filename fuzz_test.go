package hostsim

import (
	"testing"
	"time"
)

// FuzzConfig explores the configuration space with the fail-fast
// invariant checker as its oracle: every generated config is sanitized
// into a valid one, so any Run error — in particular a conservation-law
// Failure — is a real bug. The fuzzer hunts for stack/workload/loss
// combinations whose interleavings leak buffers, drop cycles or corrupt
// TCP sequence state; `go test -fuzz=FuzzConfig` runs it open-ended and
// CI smokes it briefly on every push.
//
// Reproduce a crasher with:
//
//	go test -run 'FuzzConfig/<name>' .
//
// after copying the reported file into testdata/fuzz/FuzzConfig/.
func FuzzConfig(f *testing.F) {
	// seeds: the paper's headline scenarios, compressed; the last covers a
	// 16-host fabric incast against a tight shared buffer.
	f.Add(int64(1), uint16(2000), uint8(1), uint8(0), uint8(0), uint8(0), uint16(0), uint16(0), uint16(0), uint8(0), uint8(0xff), uint8(0), uint8(4), uint8(0), uint16(0), uint8(0))
	f.Add(int64(7), uint16(1500), uint8(8), uint8(2), uint8(2), uint8(1), uint16(150), uint16(256), uint16(400), uint8(90), uint8(0x3f), uint8(1), uint8(16), uint8(0), uint16(0), uint8(0))
	f.Add(int64(42), uint16(1000), uint8(3), uint8(4), uint8(3), uint8(4), uint16(0), uint16(1024), uint16(0), uint8(0), uint8(0x00), uint8(2), uint8(4), uint8(0), uint16(0), uint8(0))
	f.Add(int64(9), uint16(1200), uint8(2), uint8(2), uint8(0), uint8(1), uint16(0), uint16(0), uint16(0), uint8(0), uint8(0x77), uint8(0), uint8(4), uint8(16), uint16(512), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, durUS uint16, flows, patIdx, ccIdx, steerIdx uint8,
		lossTenthsPermille, ring, rxbufKB uint16, ecnKB, optBits, wlIdx, rpcKB uint8,
		fabHosts uint8, fabBufKB uint16, fabAlphaTenths uint8) {

		patterns := []Pattern{PatternSingle, PatternOneToOne, PatternIncast, PatternOutcast, PatternAllToAll}
		ccs := []string{"cubic", "reno", "dctcp", "bbr"}
		steerings := []string{"", "arfs", "rss", "rfs", "rps", "worst"}

		s := Stack{
			TSO:         optBits&1 != 0,
			GSO:         optBits&2 != 0,
			GRO:         optBits&4 != 0,
			LRO:         optBits&8 != 0,
			JumboFrames: optBits&16 != 0,
			ARFS:        optBits&32 != 0,
			DCA:         optBits&64 != 0,
			IOMMU:       optBits&128 != 0,
			CC:          ccs[int(ccIdx)%len(ccs)],
			Steering:    steerings[int(steerIdx)%len(steerings)],
		}
		if s.LRO {
			s.GRO = false // mutually exclusive
		}
		if ring > 0 {
			s.RxDescriptors = 16 + int(ring)%8177 // [16, 8192]
		}
		if rxbufKB > 0 {
			s.RcvBufBytes = int64(16+int(rxbufKB)%12785) * 1024 // [16KB, 12800KB]
		}

		cfg := Config{
			Stack:     s,
			Seed:      seed,
			LossRate:  float64(lossTenthsPermille%501) / 10000, // [0, 0.05]
			ECNMarkKB: int(ecnKB) % 201,                        // [0, 200]
			Warmup:    2 * time.Millisecond,
			Duration:  time.Duration(500+int(durUS)%2501) * time.Microsecond, // [0.5ms, 3ms]
			Check:     &CheckOptions{},                                       // fail fast: the oracle
		}

		var wl Workload
		switch wlIdx % 3 {
		case 0:
			p := patterns[int(patIdx)%len(patterns)]
			n := 1 + int(flows)%8
			if p == PatternAllToAll {
				n = 1 + n%3 // n^2 flows: keep the grid small
			}
			wl = LongFlowWorkload(p, n)
			wl.RemoteNUMA = p == PatternSingle && optBits&3 == 3
		case 1:
			wl = RPCIncastWorkload(1+int(flows)%16, int64(1+int(rpcKB)%64)*1024)
		case 2:
			wl = MixedWorkload(int(flows)%16, int64(1+int(rpcKB)%64)*1024)
		}

		// fabHosts >= 2 moves a long workload onto the switch fabric
		// (fabric mode supports only long workloads; RPC/mixed and
		// RemoteNUMA stay on the direct link). The same checker oracle
		// audits per-port conservation and the shared-buffer ledger.
		if fabHosts >= 2 && wl.Kind == "long" && !wl.RemoteNUMA {
			hosts := 2 + int(fabHosts)%63 // [2, 64]
			switch wl.Pattern {
			case PatternOneToOne:
				hosts &^= 1 // pairing needs an even host count
			case PatternAllToAll:
				hosts = 2 + hosts%7 // [2, 8]: flow count is quadratic
			}
			cfg.Fabric = &FabricOptions{
				Hosts:          hosts,
				SharedBufferKB: int(fabBufKB) % 4097,              // [0, 4096]
				Alpha:          float64(fabAlphaTenths%41) / 10.0, // [0, 4.0]
			}
		}

		res, err := Run(cfg, wl)
		if err != nil {
			t.Fatalf("sanitized config failed: %v\nconfig: %+v\nworkload: %+v", err, cfg, wl)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("violations escaped fail-fast mode: %v", res.Violations)
		}
	})
}
