module hostsim

go 1.22
