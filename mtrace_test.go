package hostsim_test

// End-to-end message tracing: the golden tail-attribution report for a
// pinned lossy RPC scenario, the pure-observer contract (a run with
// MsgTrace armed is bit-identical to one without), the metamorphic
// telescoping property over every completed message, and byte
// determinism of the report and span artifacts across parallelism.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hostsim"
)

// tailCfg is the pinned golden scenario: an 8-client 64KB RPC incast
// over a 1% lossy switch. Each request spans 8 MTU segments, so losses
// recover through both fast retransmit and the 10ms min-RTO, putting
// retransmission stalls squarely in the p99+ bands while the p50 band
// stays loss-free — the shape the tail report exists to expose.
func tailCfg() hostsim.Config {
	return hostsim.Config{
		Stack:    hostsim.AllOptimizations(),
		LossRate: 0.01,
		Seed:     7,
		Warmup:   2 * time.Millisecond,
		Duration: 20 * time.Millisecond,
		MsgTrace: &hostsim.MsgTraceOptions{Slowest: 8},
	}
}

func tailWL() hostsim.Workload { return hostsim.RPCIncastWorkload(8, 65536) }

// bandStageMean returns the mean dwell time of one stage within one
// percentile band of the report.
func bandStageMean(t *testing.T, ml *hostsim.MessageLatency, band, stage string) time.Duration {
	t.Helper()
	for _, b := range ml.Bands {
		if b.Band != band {
			continue
		}
		for _, s := range b.Stages {
			if s.Stage == stage {
				return s.Mean
			}
		}
	}
	t.Fatalf("report has no %s stage in band %s", stage, band)
	return 0
}

// TestTailReportGolden pins the tail-attribution report for the lossy
// RPC scenario against testdata/golden/tailreport.txt (regenerate with
// `go test -run TestTailReportGolden -update .`), with the invariant
// checker armed so the scenario doubles as a conservation-law audit.
// It also asserts the report's headline claim directly: the p99-p999
// band attributes more latency to the retransmission-wait stage than
// the p0-p50 band does.
func TestTailReportGolden(t *testing.T) {
	cfg := tailCfg()
	cfg.Check = &hostsim.CheckOptions{Collect: true}
	res, err := hostsim.Run(cfg, tailWL())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations in golden scenario: %v", res.Violations[0])
	}
	if res.MessageLatency == nil {
		t.Fatal("MsgTrace was set but Result.MessageLatency is nil")
	}

	p50 := bandStageMean(t, res.MessageLatency, "p0-p50", "retx_wait")
	p999 := bandStageMean(t, res.MessageLatency, "p99-p999", "retx_wait")
	if p999 <= p50 {
		t.Errorf("p99-p999 band retx_wait mean %v not above p0-p50 band's %v: tail not attributed to retransmission", p999, p50)
	}
	if p999 < 5*time.Millisecond {
		t.Errorf("p99-p999 band retx_wait mean %v: expected min-RTO-scale (>=5ms) stalls in this lossy scenario", p999)
	}

	var sb strings.Builder
	if err := res.WriteTailReport(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "golden", "tailreport.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (run `go test -run TestTailReportGolden -update .`): %v", err)
	}
	if got != string(want) {
		t.Errorf("tail report drifted from golden (rerun with -update if the change is intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMsgTraceObserverTransparency is the pure-observer contract: a
// checker-armed run with MsgTrace on produces exactly the physics of
// one with it off. The tracer only reads timestamps the data path
// already stamps; it must never perturb a simulation it observes.
func TestMsgTraceObserverTransparency(t *testing.T) {
	traced := tailCfg()
	traced.Check = &hostsim.CheckOptions{Collect: true}
	plain := traced
	plain.MsgTrace = nil

	a, err := hostsim.Run(plain, tailWL())
	if err != nil {
		t.Fatal(err)
	}
	b, err := hostsim.Run(traced, tailWL())
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := fingerprint(a), fingerprint(b); fa != fb {
		t.Errorf("MsgTrace perturbed the run:\n    off: %s\n     on: %s", fa, fb)
	}
	if a.MessageLatency != nil {
		t.Error("run without MsgTrace has a MessageLatency report")
	}
	if b.MessageLatency == nil {
		t.Error("run with MsgTrace has no MessageLatency report")
	}
}

// TestMsgTraceTelescoping is the metamorphic accounting property: for
// every completed message, in a lossy and a loss-free scenario alike,
// the per-stage deltas are non-negative and sum exactly to the
// end-to-end total — no latency invented, none lost. The report's
// quantiles must be monotone over the same population.
func TestMsgTraceTelescoping(t *testing.T) {
	lossless := tailCfg()
	lossless.LossRate = 0
	lossless.Seed = 11
	for name, cfg := range map[string]hostsim.Config{"lossy": tailCfg(), "lossless": lossless} {
		res, err := hostsim.Run(cfg, tailWL())
		if err != nil {
			t.Fatal(err)
		}
		recs := res.MessageRecords()
		if len(recs) == 0 {
			t.Fatalf("%s: no message records", name)
		}
		for _, r := range recs {
			var sum int64
			for i, d := range r.Stages {
				if d < 0 {
					t.Fatalf("%s: flow %d msg %d stage %d negative (%dns)", name, r.Flow, r.ID, i, d)
				}
				sum += d
			}
			if sum != r.Total {
				t.Fatalf("%s: flow %d msg %d stages sum to %dns, total %dns", name, r.Flow, r.ID, sum, r.Total)
			}
		}
		ml := res.MessageLatency
		if int64(len(recs)) != ml.Count-ml.Truncated {
			t.Errorf("%s: %d records vs count %d - truncated %d", name, len(recs), ml.Count, ml.Truncated)
		}
		qs := []time.Duration{ml.P50, ml.P90, ml.P99, ml.P999, ml.Max}
		for i := 1; i < len(qs); i++ {
			if qs[i] < qs[i-1] {
				t.Errorf("%s: quantiles not monotone: %v", name, qs)
			}
		}
	}
}

// mtraceArtifacts serializes everything `netsim -tail-report -mtrace-out`
// would write for a run: the text report plus the Chrome-trace span JSON.
func mtraceArtifacts(t *testing.T, r *hostsim.Result) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteTailReport(&sb); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSpans(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestMsgTraceDeterminismAcrossJobs is the parallelism contract for the
// new artifacts: running traced scenarios concurrently (-jobs 8) must
// produce byte-identical tail reports and span exports to running them
// serially — the tracer keeps no hidden shared state.
func TestMsgTraceDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run property")
	}
	seeded := func(seed int64) hostsim.Config {
		cfg := tailCfg()
		cfg.Seed = seed
		return cfg
	}
	chunked := tailCfg()
	chunked.MsgTrace.MsgBytes = 16384
	jobs := []hostsim.Job{
		{Config: seeded(7), Workload: tailWL()},
		{Config: seeded(8), Workload: tailWL()},
		{Config: chunked, Workload: tailWL()},
		{Config: seeded(9), Workload: hostsim.RPCIncastWorkload(4, 16384)},
	}
	serial, err := hostsim.RunMany(jobs, hostsim.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := hostsim.RunMany(jobs, hostsim.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		a, b := mtraceArtifacts(t, serial[i]), mtraceArtifacts(t, par[i])
		if a != b {
			t.Errorf("job %d artifacts diverged between -jobs 1 and -jobs 8:\n--- serial ---\n%s\n--- par8 ---\n%s", i, a, b)
		}
	}
}
